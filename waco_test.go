package waco_test

// Integration tests of the public facade: everything a downstream user
// touches, exercised through the root package only.

import (
	"bytes"
	"math/rand"
	"testing"

	"waco"
)

func randomMatrix(seed int64, rows, cols, nnz int) *waco.COO {
	rng := rand.New(rand.NewSource(seed))
	c := &waco.COO{Dims: []int{rows, cols}, Coords: make([][]int32, 2)}
	for p := 0; p < nnz; p++ {
		c.Coords[0] = append(c.Coords[0], int32(rng.Intn(rows)))
		c.Coords[1] = append(c.Coords[1], int32(rng.Intn(cols)))
		c.Vals = append(c.Vals, rng.Float32())
	}
	c.SortRowMajor()
	c.Dedup()
	return c
}

func TestFacadeCorpusAndWorkload(t *testing.T) {
	cfg := waco.DefaultCorpusConfig()
	cfg.Count = 4
	cfg.MaxDim = 128
	cfg.MaxNNZ = 1500
	mats := waco.Corpus(cfg)
	if len(mats) != 4 {
		t.Fatalf("corpus size %d", len(mats))
	}
	wl, err := waco.NewWorkload(waco.SpMM, mats[0].COO, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, bytes, err := wl.MeasureSchedule(waco.DefaultSchedule(waco.SpMM, 2), waco.DefaultProfile(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || bytes <= 0 {
		t.Fatalf("measurement %v/%d", d, bytes)
	}
}

func TestFacadeMatrixMarketRoundTrip(t *testing.T) {
	m := randomMatrix(1, 30, 40, 150)
	var buf bytes.Buffer
	if err := waco.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := waco.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() {
		t.Fatalf("round trip NNZ %d vs %d", back.NNZ(), m.NNZ())
	}
}

func TestFacadeEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test in -short mode")
	}
	corpus := waco.DefaultCorpusConfig()
	corpus.Count = 5
	corpus.MinDim = 64
	corpus.MaxDim = 160
	corpus.MaxNNZ = 2000
	cfg := waco.DefaultConfig(waco.SpMM)
	cfg.Collect.SchedulesPerMatrix = 8
	cfg.Collect.Repeats = 1
	cfg.Collect.DenseN = 8
	cfg.Train.Epochs = 2
	tuner, ds, err := waco.Build(waco.Corpus(corpus), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() == 0 {
		t.Fatal("no samples")
	}
	tuned, err := tuner.TuneTensor(randomMatrix(2, 200, 200, 3000))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.KernelSeconds <= 0 {
		t.Fatal("no kernel time")
	}
	if err := tuned.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}
