// Sparse attention scores: SDDMM with a banded (sliding-window) sparsity
// mask, the kernel at the heart of sparse transformer attention:
// scores[i,j] = mask[i,j] * (Q[i,:] . K[:,j]). The example shows WACO
// exploiting SDDMM's unique freedom (§5.2.1): it may parallelize over rows
// or columns of the sparse matrix, and choose row- or column-major formats
// accordingly.
//
//	go run ./examples/sddmm-attention
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waco"
	"waco/internal/generate"
)

func main() {
	log.SetFlags(0)

	// A sliding-window attention mask: each query attends to a window of
	// neighboring keys (banded), plus a few global tokens (dense columns).
	rng := rand.New(rand.NewSource(11))
	const seqLen = 1024
	const headDim = 32
	mask := generate.Banded(rng, seqLen, seqLen, 24, 0.9)
	for p := 0; p < mask.NNZ(); p++ { // keep values deterministic nonzero
		if mask.Vals[p] == 0 {
			mask.Vals[p] = 1
		}
	}
	fmt.Printf("attention mask: %d x %d, %d attended pairs, head dim %d\n",
		seqLen, seqLen, mask.NNZ(), headDim)

	corpus := waco.DefaultCorpusConfig()
	corpus.Count = 10
	corpus.MaxDim = 1024
	corpus.MaxNNZ = 50000
	cfg := waco.DefaultConfig(waco.SDDMM)
	cfg.Collect.DenseN = headDim
	cfg.Collect.SchedulesPerMatrix = 20
	cfg.Collect.Repeats = 3
	cfg.Train.Epochs = 6
	cfg.TopK = 8
	cfg.SearchEf = 64
	fmt.Println("building WACO pipeline for SDDMM...")
	tuner, _, err := waco.Build(waco.Corpus(corpus), cfg)
	if err != nil {
		log.Fatal(err)
	}

	tuned, err := tuner.TuneTensor(mask)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := waco.NewWorkload(waco.SDDMM, mask, headDim)
	if err != nil {
		log.Fatal(err)
	}
	csr, _, err := wl.MeasureSchedule(waco.DefaultSchedule(waco.SDDMM, 4), waco.DefaultProfile(), 0, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchosen SuperSchedule: %s\n", tuned.Schedule)
	par := "rows"
	if tuned.Schedule.Parallel.Mode == 1 {
		par = "columns (SDDMM-only freedom)"
	}
	fmt.Printf("parallelized over   : %s\n", par)
	fmt.Printf("per-SDDMM: WACO %.6fs vs Fixed CSR %.6fs (%.2fx)\n",
		tuned.KernelSeconds, csr.Seconds(), csr.Seconds()/tuned.KernelSeconds)
	fmt.Printf("tuning overhead     : %.3fs (amortized over every attention layer and training step)\n",
		tuned.TuningSeconds+tuned.ConvertSeconds)
}
