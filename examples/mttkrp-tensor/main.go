// Tensor decomposition step: MTTKRP on a 3-D sparse tensor, the workhorse
// of CP decomposition (D[i,j] = sum A[i,k,l] * B[k,j] * C[l,j]). WACO
// searches CSF-like level orders, splits, and compressed/uncompressed level
// formats for the 3-D operand — the paper's fourth algorithm, where it
// reports a 1.27x geomean over the format-selection baseline.
//
//	go run ./examples/mttkrp-tensor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waco"
	"waco/internal/generate"
)

func main() {
	log.SetFlags(0)

	// A 3-D interaction tensor (user x item x time, say): a clustered 2-D
	// base pattern extruded into sparse fibers along the third mode.
	rng := rand.New(rand.NewSource(13))
	base := generate.Clustered(rng, 512, 512, 60, 200, 6)
	tsr := generate.Tensor3D(rng, base, 64, 3)
	const rank = 8 // CP rank (the dense factor width |j|)
	fmt.Printf("tensor: %v, %d nonzeros, CP rank %d\n", tsr.Dims, tsr.NNZ(), rank)

	corpus := waco.DefaultCorpusConfig()
	corpus.Count = 12
	corpus.MaxDim = 512
	corpus.MaxNNZ = 20000
	// Bias the corpus toward the pattern families the query resembles.
	corpus.Include = []string{"clustered", "blockdense", "uniform", "powerlaw"}
	// MTTKRP needs a 3-D training corpus; extrude the 2-D population.
	var mats []waco.Matrix
	crng := rand.New(rand.NewSource(14))
	for _, m := range waco.Corpus(corpus) {
		mats = append(mats, waco.Matrix{
			Name:   m.Name + "-3d",
			Family: m.Family,
			COO:    generate.Tensor3D(crng, m.COO, 32, 2),
		})
	}

	cfg := waco.DefaultConfig(waco.MTTKRP)
	cfg.Collect.DenseN = rank
	cfg.Collect.SchedulesPerMatrix = 24
	cfg.Collect.Repeats = 2
	cfg.Train.Epochs = 10
	cfg.TopK = 12
	cfg.SearchEf = 96
	fmt.Println("building WACO pipeline for MTTKRP (3-D WACONet)...")
	tuner, _, err := waco.Build(mats, cfg)
	if err != nil {
		log.Fatal(err)
	}

	tuned, err := tuner.TuneTensor(tsr)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := waco.NewWorkload(waco.MTTKRP, tsr, rank)
	if err != nil {
		log.Fatal(err)
	}
	csf, _, err := wl.MeasureSchedule(waco.DefaultSchedule(waco.MTTKRP, 4), waco.DefaultProfile(), 0, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchosen SuperSchedule: %s\n", tuned.Schedule)
	fmt.Printf("per-MTTKRP: WACO %.6fs vs fixed CSF %.6fs (%.2fx)\n",
		tuned.KernelSeconds, csf.Seconds(), csf.Seconds()/tuned.KernelSeconds)
	fmt.Println("\na CP-ALS solver runs one MTTKRP per mode per iteration —")
	fmt.Printf("50 iterations x 3 modes = 150 calls; tuning costs %.3fs, saving %.3fs total\n",
		tuned.TuningSeconds+tuned.ConvertSeconds,
		150*(csf.Seconds()-tuned.KernelSeconds))
}
