// Quickstart: train a small WACO pipeline on a synthetic corpus and use it
// to co-optimize the format and schedule of an unseen sparse matrix.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waco"
	"waco/internal/generate"
)

func main() {
	log.SetFlags(0)

	// 1. A training corpus: synthetic sparsity patterns standing in for
	//    SuiteSparse (banded, blocked, power-law, graph, mesh, ...).
	corpus := waco.DefaultCorpusConfig()
	corpus.Count = 18
	corpus.MaxDim = 768
	corpus.MaxNNZ = 30000
	matrices := waco.Corpus(corpus)

	// 2. Build the pipeline: measure sampled SuperSchedules on every
	//    matrix, train the WACONet cost model with the ranking loss, and
	//    index the schedules' program embeddings in an HNSW graph.
	cfg := waco.DefaultConfig(waco.SpMM)
	cfg.Collect.SchedulesPerMatrix = 32
	cfg.Collect.Repeats = 3
	cfg.Train.Epochs = 10
	cfg.TopK = 8
	cfg.SearchEf = 64
	fmt.Println("building WACO pipeline (collect -> train -> index)...")
	tuner, ds, err := waco.Build(matrices, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d matrices, %d measured (matrix, schedule, runtime) tuples\n",
		len(ds.Entries), ds.NumSamples())
	last := tuner.TrainTrace.Epochs[len(tuner.TrainTrace.Epochs)-1]
	fmt.Printf("cost model: final train loss %.3f, val loss %.3f\n", last.TrainLoss, last.ValLoss)

	// 3. Tune an unseen matrix: ANNS retrieves the top candidates, the top-K
	//    are measured on this machine, the fastest wins.
	rng := rand.New(rand.NewSource(42))
	unseen := generate.PowerLawRows(rng, 1024, 1024, 60000, 1.1)
	fmt.Printf("\ntuning an unseen %dx%d power-law matrix with %d nonzeros...\n",
		unseen.Dims[0], unseen.Dims[1], unseen.NNZ())
	tuned, err := tuner.TuneTensor(unseen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best SuperSchedule: %s\n", tuned.Schedule)
	fmt.Printf("tuned kernel time : %.6fs\n", tuned.KernelSeconds)

	// 4. Compare against the Fixed CSR default (TACO's default schedule).
	wl, err := waco.NewWorkload(waco.SpMM, unseen, cfg.Collect.DenseN)
	if err != nil {
		log.Fatal(err)
	}
	csr, _, err := wl.MeasureSchedule(waco.DefaultSchedule(waco.SpMM, 4), waco.DefaultProfile(), 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fixed CSR kernel  : %.6fs\n", csr.Seconds())
	fmt.Printf("speedup           : %.2fx\n", csr.Seconds()/tuned.KernelSeconds)
}
