// GNN feature propagation: the Table 8 "GNN" scenario. A graph neural
// network multiplies the (fixed) graph adjacency by a dense feature matrix
// every layer of every epoch — thousands of SpMM invocations on one sparsity
// pattern — which is exactly the regime where WACO's one-off tuning cost
// amortizes.
//
//	go run ./examples/gnn-spmm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"waco"
	"waco/internal/generate"
)

func main() {
	log.SetFlags(0)

	// The "graph": an R-MAT adjacency with power-law degree distribution,
	// the canonical GNN input shape.
	rng := rand.New(rand.NewSource(7))
	adj := generate.RMAT(rng, 11, 80000, 0.57, 0.19, 0.19) // 2048 nodes
	const features = 32                                    // hidden width
	fmt.Printf("graph: %d nodes, %d edges; feature width %d\n", adj.Dims[0], adj.NNZ(), features)

	// Train a small WACO pipeline on generic patterns (offline, once).
	corpus := waco.DefaultCorpusConfig()
	corpus.Count = 14
	corpus.MaxDim = 1024
	corpus.MaxNNZ = 40000
	cfg := waco.DefaultConfig(waco.SpMM)
	cfg.Collect.DenseN = features
	cfg.Collect.SchedulesPerMatrix = 28
	cfg.Collect.Repeats = 3
	cfg.Train.Epochs = 8
	cfg.TopK = 8
	cfg.SearchEf = 64
	fmt.Println("building WACO pipeline...")
	tuner, _, err := waco.Build(waco.Corpus(corpus), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Tune the adjacency once.
	tuned, err := tuner.TuneTensor(adj)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := waco.NewWorkload(waco.SpMM, adj, features)
	if err != nil {
		log.Fatal(err)
	}
	csr, _, err := wl.MeasureSchedule(waco.DefaultSchedule(waco.SpMM, 4), waco.DefaultProfile(), 0, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchosen SuperSchedule: %s\n", tuned.Schedule)
	fmt.Printf("per-SpMM: WACO %.6fs vs Fixed CSR %.6fs (%.2fx)\n",
		tuned.KernelSeconds, csr.Seconds(), csr.Seconds()/tuned.KernelSeconds)
	overhead := tuned.TuningSeconds + tuned.ConvertSeconds
	fmt.Printf("one-off tuning + conversion: %.3fs\n", overhead)

	// End-to-end accounting for a training run (Table 8 methodology):
	// layers x epochs SpMM invocations on the same adjacency.
	fmt.Println("\nend-to-end (T_tuning + T_convert + N * T_kernel):")
	fmt.Printf("%10s  %12s  %12s  %s\n", "N_runs", "WACO", "FixedCSR", "winner")
	for _, n := range []float64{10, 100, 1000, 10000} {
		wacoTotal := overhead + n*tuned.KernelSeconds
		csrTotal := n * csr.Seconds()
		winner := "FixedCSR"
		if wacoTotal < csrTotal {
			winner = "WACO"
		}
		fmt.Printf("%10.0f  %11.4fs  %11.4fs  %s\n", n, wacoTotal, csrTotal, winner)
	}
	if tuned.KernelSeconds < csr.Seconds() {
		breakeven := overhead / (csr.Seconds() - tuned.KernelSeconds)
		fmt.Printf("\nWACO pays for itself after ~%.0f SpMM invocations\n", breakeven)
	}
}
