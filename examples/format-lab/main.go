// Format lab: a manual tour of the co-optimization space WACO searches
// automatically. For one matrix it assembles several named formats, shows
// their storage cost (including the explicit zeros of dense blocks), runs
// each under a concordant schedule, and then demonstrates the coupled
// format-schedule behavior of §3.1: the same format traversed discordantly
// pays binary searches and collapses.
//
//	go run ./examples/format-lab
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

func main() {
	log.SetFlags(0)

	rng := rand.New(rand.NewSource(3))
	// A matrix with mixed structure: dense 8x8 blocks plus scattered noise.
	coo := generate.BlockDense(rng, 2048, 2048, 8, 600, 0.9)
	noise := generate.Uniform(rng, 2048, 2048, 8000)
	for p := 0; p < noise.NNZ(); p++ {
		coo.Append(noise.Vals[p], noise.Coords[0][p], noise.Coords[1][p])
	}
	coo.SortRowMajor()
	coo.Dedup()
	fmt.Printf("matrix: 2048 x 2048, %d nonzeros (blocked + scattered)\n\n", coo.NNZ())

	wl, err := kernel.NewWorkload(schedule.SpMM, coo, 32)
	if err != nil {
		log.Fatal(err)
	}
	profile := kernel.DefaultProfile()

	formats := []struct {
		name string
		f    format.Format
	}{
		{"CSR", format.CSR()},
		{"CSC", format.CSC()},
		{"COO-like (DCSR)", format.COOLike(2)},
		{"BCSR 4x4", format.BCSR(4, 4)},
		{"BCSR 8x8", format.BCSR(8, 8)},
		{"BCSR 16x16", format.BCSR(16, 16)},
		{"Dense", format.Dense(2)},
	}

	fmt.Println("format vs storage vs runtime (concordant schedules, SpMM with 32 dense columns):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  format\tstored entries\tfill\tbytes\tkernel time")
	for _, fc := range formats {
		st, err := format.Assemble(coo.Clone(), fc.f, format.AssembleOptions{})
		if err != nil {
			fmt.Fprintf(tw, "  %s\texcluded: %v\n", fc.name, err)
			continue
		}
		ss := schedule.BestEffortSchedule(schedule.SpMM, fc.f, 2, 32)
		d, _, err := wl.MeasureSchedule(ss, profile, 0, 5)
		cell := "failed"
		if err == nil {
			cell = d.String()
		}
		fmt.Fprintf(tw, "  %s\t%d\t%.0f%%\t%d\t%s\n",
			fc.name, st.NNZStored(), 100*float64(coo.NNZ())/float64(st.NNZStored()), st.Bytes(), cell)
	}
	tw.Flush()

	// The coupled behavior: one format, two traversals.
	fmt.Println("\ncoupled format-schedule behavior (§3.1): CSR under different loop orders")
	concordant := schedule.ConcordantSchedule(schedule.SpMM, format.CSR(), 2, 32)
	dCon, _, err := wl.MeasureSchedule(concordant, profile, 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	discordant := concordant.Clone()
	// k-outer traversal of a row-major format: every (k, i) probe
	// binary-searches the compressed column level.
	discordant.ComputeOrder = []schedule.IVar{
		{Mode: 1}, {Mode: 0}, {Mode: 0, Inner: true}, {Mode: 1, Inner: true},
	}
	discordant.Parallel = schedule.IVar{Mode: 1}
	discordant.Threads = 1
	dDis, _, err := wl.MeasureSchedule(discordant, profile, 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  concordant (i-outer): %v\n", dCon)
	fmt.Printf("  discordant (k-outer): %v  (%.0fx slower: binary searches per probe)\n",
		dDis, dDis.Seconds()/dCon.Seconds())

	// Chunk size: the load-balancing knob of Table 3.
	fmt.Println("\ndynamic chunk size sweep (CSR, 2 workers):")
	for _, chunk := range []int{1, 8, 64, 512} {
		ss := schedule.DefaultSchedule(schedule.SpMM, 2)
		ss.Chunk = chunk
		d, _, err := wl.MeasureSchedule(ss, profile, 0, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  chunk %4d: %v\n", chunk, d)
	}
	fmt.Println("\nWACO searches this joint space automatically — see examples/quickstart.")
}
