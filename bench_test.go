package waco

// One benchmark per table and figure of the paper (see DESIGN.md's
// per-experiment index). Each runs the corresponding experiment at
// QuickScale — seconds per iteration — and reports a headline metric.
// cmd/waco-bench runs the same experiments at larger scales and renders the
// full tables recorded in EXPERIMENTS.md.

import (
	"math/rand"
	"strconv"
	"testing"

	"waco/internal/experiments"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

func reportGeomean(b *testing.B, cmp *experiments.ComparisonResult, baseline string) {
	b.Helper()
	sp := cmp.Speedups(baseline)
	if len(sp) > 0 {
		b.ReportMetric(experiments.Geomean(sp), "geomean_speedup_vs_"+baseline)
	}
}

func BenchmarkTable1_CoOptImpact(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.Table1CoOptImpact(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_PatternSensitivity(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2PatternSensitivity(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13_SpMMSpeedupCurves(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		_, cmp, err := experiments.Fig13SpMMCurves(s)
		if err != nil {
			b.Fatal(err)
		}
		reportGeomean(b, cmp, "FixedCSR")
	}
}

func BenchmarkTable4_VsAutotuners(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.Tables4And5(s)
		if err != nil {
			b.Fatal(err)
		}
		reportGeomean(b, results[schedule.SpMM], "BestFormat")
	}
}

func BenchmarkTable5_VsFixed(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunComparison(schedule.SpMM, s)
		if err != nil {
			b.Fatal(err)
		}
		reportGeomean(b, cmp, "FixedCSR")
		reportGeomean(b, cmp, "ASpT")
	}
}

func BenchmarkTable6_SpeedupFactors(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunComparison(schedule.SpMM, s)
		if err != nil {
			b.Fatal(err)
		}
		t := experiments.Table6SpeedupFactors(map[schedule.Algorithm]*experiments.ComparisonResult{schedule.SpMM: cmp})
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig14_BlockSizeHeuristic(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14BlockSizeHeuristic(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15_FeatureExtractors(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig15FeatureExtractors(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16a_SearchStrategies(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16aSearchStrategies(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16b_SearchBreakdown(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig16bSearchBreakdown(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7_CrossHardware(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7CrossHardware(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig17_TuningOverhead(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig17TuningOverhead(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable8_EndToEnd(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		_, results, err := experiments.Fig17TuningOverhead(s)
		if err != nil {
			b.Fatal(err)
		}
		t := experiments.Table8EndToEnd(results)
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkAblation_ExecutorOverhead(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationExecutorOverhead(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_RankingVsMSE(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRankingVsMSE(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ANNSRecall(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationANNSRecall(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ConcordantSampling(b *testing.B) {
	s := experiments.QuickScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationConcordantSampling(s); err != nil {
			b.Fatal(err)
		}
	}
}

// Raw kernel micro-benchmarks: the substrate itself, across formats and
// parallelism, so `-bench` also characterizes the executor.
func benchmarkKernel(b *testing.B, alg Algorithm, threads int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	var coo *COO
	if alg.SparseOrder() == 3 {
		base := generate.Uniform(rng, 256, 256, 4000)
		coo = generate.Tensor3D(rng, base, 32, 2)
	} else {
		coo = generate.Uniform(rng, 1024, 1024, 40000)
	}
	denseN := 32
	if alg == SpMV {
		denseN = 0
	}
	wl, err := kernel.NewWorkload(alg, coo, denseN)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := wl.Compile(DefaultSchedule(alg, threads), DefaultProfile(), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Run(plan); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(coo.NNZ()), "nnz")
}

func BenchmarkKernel(b *testing.B) {
	for _, alg := range []Algorithm{SpMV, SpMM, SDDMM, MTTKRP} {
		for _, threads := range []int{1, 4} {
			b.Run(alg.String()+"/threads="+strconv.Itoa(threads), func(b *testing.B) {
				benchmarkKernel(b, alg, threads)
			})
		}
	}
}
