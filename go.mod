module waco

go 1.22
