#!/bin/sh
# Runs the benchmark suites that CI tracks and writes each as a
# machine-readable JSON file next to the repo root, so a CI job — or a human
# comparing two branches — has a record to diff (scripts/benchdiff.sh):
#
#   BENCH_train.json   worker-scaling of training and index build
#                      (samples/sec, schedules/sec per worker count)
#   BENCH_search.json  the query path: forward-only batched search vs the
#                      tape-path baseline (queries/sec, allocs/op)
#   BENCH_kernel.json  partitioned-kernel SpMM on the skewed fixture vs the
#                      best single formats (runs/sec; benchdiff gates the
#                      partitioned speedup ratio)
#
# Parsing uses awk only; no jq or other tooling beyond a POSIX shell and the
# go toolchain.
#
# Usage: scripts/bench.sh [train_benchtime] [search_benchtime] [kernel_benchtime]
# Defaults: 1x for the scaling suite (it reports relative per-second metrics
# a single iteration already measures), 1s for the query suite (hundreds
# of queries per iteration set, so queries/sec is stable enough to diff),
# and 1s for the kernel suite (sub-millisecond kernels, thousands of runs).
set -eu
cd "$(dirname "$0")/.."

train_benchtime=${1:-1x}
search_benchtime=${2:-1s}
kernel_benchtime=${3:-1s}
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# run_suite <bench regexp> <benchtime> <output json> <packages...>
# Benchmark output lines look like:
#   BenchmarkTrainWorkers4-8  1  123456 ns/op  42.5 samples/sec
# Emit one JSON object per line keyed by benchmark name, with every
# unit-suffixed value captured as a field (units slugified: "/" -> "_per_").
run_suite() {
	pattern=$1
	benchtime=$2
	out=$3
	shift 3
	echo "==> go test -bench '$pattern' -benchtime $benchtime"
	go test -run '^$' -bench "$pattern" -benchtime "$benchtime" "$@" | tee "$raw"
	awk '
	BEGIN { printf "{\n  \"benchtime\": \"'"$benchtime"'\",\n  \"results\": [" ; n = 0 }
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
		if (n++) printf ","
		printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
		for (i = 3; i + 1 <= NF; i += 2) {
			unit = $(i + 1)
			gsub(/\//, "_per_", unit)
			gsub(/[^A-Za-z0-9_]/, "_", unit)
			printf ", \"%s\": %s", unit, $i
		}
		printf "}"
	}
	END { printf "\n  ]\n}\n" }
	' "$raw" >"$out"
	echo "wrote $out"
}

run_suite 'Workers[14N]$' "$train_benchtime" BENCH_train.json \
	./internal/costmodel/ ./internal/search/
run_suite 'SearchQuery' "$search_benchtime" BENCH_search.json \
	./internal/search/
run_suite 'PartSpMM' "$kernel_benchtime" BENCH_kernel.json \
	./internal/kernel/
