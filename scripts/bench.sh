#!/bin/sh
# Runs the worker-scaling benchmarks (parallel training and index build) and
# writes the results as BENCH_train.json next to this repo's root, so a CI
# job — or a human comparing two branches — has a machine-readable record of
# samples/sec and schedules/sec per worker count. Parsing uses awk only; no
# jq or other tooling beyond a POSIX shell and the go toolchain.
#
# Usage: scripts/bench.sh [benchtime]   (default 1x — the benchmarks are
# about relative scaling, not absolute numbers, and 1 iteration already
# reports the custom per-second metrics)
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1x}
out=BENCH_train.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench Workers -benchtime $benchtime"
go test -run '^$' -bench 'Workers[14N]$' -benchtime "$benchtime" \
	./internal/costmodel/ ./internal/search/ | tee "$raw"

# Benchmark output lines look like:
#   BenchmarkTrainWorkers4-8  1  123456 ns/op  42.5 samples/sec
# Emit one JSON object per line keyed by benchmark name, with every
# unit-suffixed value captured as a field.
awk '
BEGIN { printf "{\n  \"benchtime\": \"'"$benchtime"'\",\n  \"results\": [" ; n = 0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"iterations\": %s", name, $2
	for (i = 3; i + 1 <= NF; i += 2) {
		unit = $(i + 1)
		gsub(/\//, "_per_", unit)
		gsub(/[^A-Za-z0-9_]/, "_", unit)
		printf ", \"%s\": %s", unit, $i
	}
	printf "}"
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"

echo "wrote $out"
