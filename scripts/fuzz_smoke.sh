#!/bin/sh
# Fuzz-smoke: run every Fuzz target in the tree for a short burst, feeding
# the corpus-backed invariants (persistence loaders, framed-log recovery,
# tensor parsing) continuous adversarial input.
#
# The target list is derived ONCE from a single `go test -list` sweep; each
# package with targets is compiled ONCE into a coverage-instrumented test
# binary (-gcflags=all=-d=libfuzzer turns on the fuzz counters in prebuilt
# binaries), and every target of that package runs from the same binary.
# That replaces the old per-target `go test -fuzz` loop, which relinked the
# same package for every target. Failures stop the run immediately (set -e);
# a crasher lands in <pkg>/testdata/fuzz/<Target>/ where CI uploads it.
#
# FUZZTIME is the per-target budget: push/PR CI uses the 10s default, the
# nightly schedule raises it to 60s.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
FUZZCACHE="$(go env GOCACHE)/fuzz"
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT

# One sweep: "package target" pairs, targets listed before their ok line.
pairs=$(go test -list '^Fuzz' ./... | awk '
	/^Fuzz/ { names[n++] = $1 }
	/^ok/   { for (i = 0; i < n; i++) print $2, names[i]; n = 0 }')
if [ -z "$pairs" ]; then
	echo "no fuzz targets found" >&2
	exit 1
fi
echo "==> targets ($FUZZTIME each):"
echo "$pairs" | sed 's/^/    /'

for pkg in $(printf '%s\n' "$pairs" | awk '{ print $1 }' | sort -u); do
	bin="$bindir/$(printf '%s' "$pkg" | tr '/' '_').test"
	echo "==> build $pkg"
	go test -c -o "$bin" -gcflags=all=-d=libfuzzer "$pkg"
	dir=$(go list -f '{{.Dir}}' "$pkg")
	for target in $(printf '%s\n' "$pairs" | awk -v p="$pkg" '$1 == p { print $2 }'); do
		echo "==> fuzz $pkg $target"
		(cd "$dir" && "$bin" -test.run '^$' -test.fuzz "^${target}\$" \
			-test.fuzztime "$FUZZTIME" -test.fuzzcachedir "$FUZZCACHE")
	done
done

echo "fuzz smoke passed"
