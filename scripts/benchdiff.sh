#!/bin/sh
# Compares fresh benchmark JSON (written by scripts/bench.sh) against a
# committed baseline and fails on throughput regressions: any *_per_sec
# metric dropping more than BENCHDIFF_THRESHOLD percent (default 20) below
# its baseline value fails, as does a benchmark disappearing entirely.
#
# When the fresh file carries both query-path benchmarks, the forward/tape
# ratio is also enforced: the forward-only search must sustain at least 2x
# the tape path's queries/sec. Unlike the absolute comparison — which
# assumes the baseline was recorded on comparable hardware — the ratio gate
# is machine-independent, so it holds anywhere.
#
# POSIX shell + awk only, no jq.
#
# Usage: scripts/benchdiff.sh baseline.json fresh.json [baseline fresh ...]
set -u
cd "$(dirname "$0")/.."

threshold=${BENCHDIFF_THRESHOLD:-20}

if [ $# -lt 2 ] || [ $(($# % 2)) -ne 0 ]; then
	echo "usage: $0 baseline.json fresh.json [baseline fresh ...]" >&2
	exit 2
fi

status=0
while [ $# -ge 2 ]; do
	baseline=$1
	fresh=$2
	shift 2
	if [ ! -f "$baseline" ]; then
		echo "benchdiff: missing baseline $baseline" >&2
		status=1
		continue
	fi
	if [ ! -f "$fresh" ]; then
		echo "benchdiff: missing fresh results $fresh" >&2
		status=1
		continue
	fi
	echo "==> benchdiff $fresh vs $baseline (threshold ${threshold}%)"
	awk -v thr="$threshold" -v basefile="$baseline" -v freshfile="$fresh" '
	FNR == 1 { pass++ }
	/"name"/ {
		line = $0
		if (match(line, /"name": "[^"]+"/) == 0) next
		name = substr(line, RSTART + 9, RLENGTH - 10)
		# Every *_per_sec field on the line becomes one tracked metric.
		rest = line
		while (match(rest, /"[A-Za-z0-9_]+_per_sec": [0-9.eE+-]+/)) {
			kv = substr(rest, RSTART, RLENGTH)
			rest = substr(rest, RSTART + RLENGTH)
			sep = index(kv, "\": ")
			key = substr(kv, 2, sep - 2)
			val = substr(kv, sep + 3) + 0
			if (pass == 1) base[name "." key] = val
			else fresh[name "." key] = val
		}
	}
	END {
		bad = 0
		for (k in base) {
			if (!(k in fresh)) {
				printf "FAIL %s: present in %s but missing from %s\n", k, basefile, freshfile
				bad = 1
				continue
			}
			floor = base[k] * (1 - thr / 100)
			if (fresh[k] < floor) {
				printf "FAIL %s: %.4g below regression floor %.4g (baseline %.4g, -%d%%)\n",
					k, fresh[k], floor, base[k], thr
				bad = 1
			} else {
				printf "ok   %s: %.4g (baseline %.4g)\n", k, fresh[k], base[k]
			}
		}
		fwd = fresh["BenchmarkSearchQueryForward.queries_per_sec"]
		tape = fresh["BenchmarkSearchQueryTape.queries_per_sec"]
		if (fwd > 0 && tape > 0) {
			if (fwd < 2 * tape) {
				printf "FAIL query-path speedup: forward %.4g q/s is %.2fx tape %.4g q/s, contract requires >= 2x\n",
					fwd, fwd / tape, tape
				bad = 1
			} else {
				printf "ok   query-path speedup: forward %.4g q/s = %.2fx tape %.4g q/s\n", fwd, fwd / tape, tape
			}
		}
		exit bad
	}
	' "$baseline" "$fresh" || status=1
done

if [ "$status" -eq 0 ]; then
	echo "benchdiff passed"
else
	echo "benchdiff failed" >&2
fi
exit $status
