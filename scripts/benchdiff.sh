#!/bin/sh
# Compares fresh benchmark JSON (written by scripts/bench.sh) against a
# committed baseline and fails on throughput regressions: any *_per_sec
# metric dropping more than BENCHDIFF_THRESHOLD percent (default 20) below
# its baseline value fails, as does a benchmark disappearing entirely.
#
# When the fresh file carries the query-path benchmarks, machine-independent
# ratio gates are also enforced (unlike the absolute comparison, which
# assumes the baseline was recorded on comparable hardware):
#   - forward >= 2x tape queries/sec (the forward-only rewrite's contract)
#   - quantized+prefilter >= 1.3x forward queries/sec (the fast path's
#     contract from the int8 head + asymptotic-cost pre-filter; measured
#     ~1.5-2x, gated with headroom for noisy shared runners)
#   - quantized alone >= 0.7x forward (pure-Go int8 buys a 4x smaller
#     artifact and less per-candidate memory traffic, not SIMD throughput
#     — scalar int8 mat-vecs run ~0.8x of float32 on amd64; the floor
#     catches the quantized path rotting, not a speedup claim)
#   - the pre-filter must keep pruning: pruned_frac >= 0.5 on the
#     quant+prefilter benchmark fixture
#
# When the fresh file carries the partitioned-kernel benchmarks, one more
# ratio gate applies:
#   - partitioned SpMM >= 1.2x the best single-format plan (CSR or BCSR) on
#     the skewed fixture (the composable-format contract; measured ~1.4x,
#     gated with headroom for noisy shared runners)
#
# POSIX shell + awk only, no jq.
#
# Usage: scripts/benchdiff.sh baseline.json fresh.json [baseline fresh ...]
set -u
cd "$(dirname "$0")/.."

threshold=${BENCHDIFF_THRESHOLD:-20}

if [ $# -lt 2 ] || [ $(($# % 2)) -ne 0 ]; then
	echo "usage: $0 baseline.json fresh.json [baseline fresh ...]" >&2
	exit 2
fi

status=0
while [ $# -ge 2 ]; do
	baseline=$1
	fresh=$2
	shift 2
	if [ ! -f "$baseline" ]; then
		echo "benchdiff: missing baseline $baseline" >&2
		status=1
		continue
	fi
	if [ ! -f "$fresh" ]; then
		echo "benchdiff: missing fresh results $fresh" >&2
		status=1
		continue
	fi
	echo "==> benchdiff $fresh vs $baseline (threshold ${threshold}%)"
	awk -v thr="$threshold" -v basefile="$baseline" -v freshfile="$fresh" '
	FNR == 1 { pass++ }
	/"name"/ {
		line = $0
		if (match(line, /"name": "[^"]+"/) == 0) next
		name = substr(line, RSTART + 9, RLENGTH - 10)
		# Every *_per_sec field on the line becomes one tracked metric.
		rest = line
		while (match(rest, /"([A-Za-z0-9_]+_per_sec|pruned_frac)": [0-9.eE+-]+/)) {
			kv = substr(rest, RSTART, RLENGTH)
			rest = substr(rest, RSTART + RLENGTH)
			sep = index(kv, "\": ")
			key = substr(kv, 2, sep - 2)
			val = substr(kv, sep + 3) + 0
			# pruned_frac is a fraction, not a throughput: it feeds the
			# ratio gates below, never the percent-regression floor.
			if (key == "pruned_frac") { if (pass == 2) frac[name] = val }
			else if (pass == 1) base[name "." key] = val
			else fresh[name "." key] = val
		}
	}
	END {
		bad = 0
		for (k in base) {
			if (!(k in fresh)) {
				printf "FAIL %s: present in %s but missing from %s\n", k, basefile, freshfile
				bad = 1
				continue
			}
			floor = base[k] * (1 - thr / 100)
			if (fresh[k] < floor) {
				printf "FAIL %s: %.4g below regression floor %.4g (baseline %.4g, -%d%%)\n",
					k, fresh[k], floor, base[k], thr
				bad = 1
			} else {
				printf "ok   %s: %.4g (baseline %.4g)\n", k, fresh[k], base[k]
			}
		}
		fwd = fresh["BenchmarkSearchQueryForward.queries_per_sec"]
		tape = fresh["BenchmarkSearchQueryTape.queries_per_sec"]
		if (fwd > 0 && tape > 0) {
			if (fwd < 2 * tape) {
				printf "FAIL query-path speedup: forward %.4g q/s is %.2fx tape %.4g q/s, contract requires >= 2x\n",
					fwd, fwd / tape, tape
				bad = 1
			} else {
				printf "ok   query-path speedup: forward %.4g q/s = %.2fx tape %.4g q/s\n", fwd, fwd / tape, tape
			}
		}
		qp = fresh["BenchmarkSearchQueryQuantPrefilter.queries_per_sec"]
		if (fwd > 0 && qp > 0) {
			if (qp < 1.3 * fwd) {
				printf "FAIL fast-path speedup: quant+prefilter %.4g q/s is %.2fx forward %.4g q/s, contract requires >= 1.3x\n",
					qp, qp / fwd, fwd
				bad = 1
			} else {
				printf "ok   fast-path speedup: quant+prefilter %.4g q/s = %.2fx forward %.4g q/s\n", qp, qp / fwd, fwd
			}
		}
		qz = fresh["BenchmarkSearchQueryQuantized.queries_per_sec"]
		if (fwd > 0 && qz > 0) {
			if (qz < 0.7 * fwd) {
				printf "FAIL quantized head: %.4g q/s is %.2fx forward %.4g q/s, floor is 0.7x\n",
					qz, qz / fwd, fwd
				bad = 1
			} else {
				printf "ok   quantized head: %.4g q/s = %.2fx forward %.4g q/s\n", qz, qz / fwd, fwd
			}
		}
		part = fresh["BenchmarkPartSpMMPartitioned.runs_per_sec"]
		csr = fresh["BenchmarkPartSpMMSingleCSR.runs_per_sec"]
		bcsr = fresh["BenchmarkPartSpMMSingleBCSR.runs_per_sec"]
		best = (csr > bcsr) ? csr : bcsr
		if (part > 0 && best > 0) {
			if (part < 1.2 * best) {
				printf "FAIL partitioned speedup: %.4g runs/s is %.2fx best single format %.4g runs/s, contract requires >= 1.2x\n",
					part, part / best, best
				bad = 1
			} else {
				printf "ok   partitioned speedup: %.4g runs/s = %.2fx best single format %.4g runs/s\n", part, part / best, best
			}
		}
		if ("BenchmarkSearchQueryQuantPrefilter" in frac) {
			pf = frac["BenchmarkSearchQueryQuantPrefilter"]
			if (pf < 0.5) {
				printf "FAIL pre-filter coverage: pruned_frac %.4f below 0.5 floor\n", pf
				bad = 1
			} else {
				printf "ok   pre-filter coverage: pruned_frac %.4f\n", pf
			}
		}
		exit bad
	}
	' "$baseline" "$fresh" || status=1
done

if [ "$status" -eq 0 ]; then
	echo "benchdiff passed"
else
	echo "benchdiff failed" >&2
fi
exit $status
