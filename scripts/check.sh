#!/bin/sh
# One gate for the repo: build, vet (standard + project-specific), format,
# and race-test the concurrency-bearing packages. CI and pre-commit both run
# exactly this script, so "checks passed" here means the same thing there.
#
# SKIP_WACO_VET=1 skips the project analyzers: CI runs them in a dedicated
# static-analysis job (the escape-analysis gate compiles the annotated
# packages with inlining off, which deserves its own cache and parallelism),
# so the check job can skip the duplicate run. Local runs keep the default.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

if [ "${SKIP_WACO_VET:-0}" = "1" ]; then
	echo "==> waco-vet (skipped: SKIP_WACO_VET=1)"
else
	echo "==> waco-vet"
	go run ./cmd/waco-vet ./...
fi

# Race-test every package that actually bears concurrency, derived from the
# import graph instead of a hand-maintained list (which had gone stale and
# silently skipped packages). Derived from ./... — not ./internal/... — so
# the concurrency-bearing cmd/* entry points (waco-router's fan-out,
# waco-serve's drain) are covered too; those reach sync only through
# internal/serve and internal/cluster, so bearing propagates to fixpoint
# through module-internal imports: a package bears concurrency if it (or its
# tests) imports sync or sync/atomic directly, or imports a module package
# that bears it.
race_pkgs=$(go list -f '{{.ImportPath}}: {{join .Imports " "}} {{join .TestImports " "}}' ./... |
	awk -F': ' '
	{ pkg[$1] = $2 }
	END {
		changed = 1
		while (changed) {
			changed = 0
			for (p in pkg) {
				if (bear[p]) continue
				n = split(pkg[p], imp, " ")
				for (i = 1; i <= n; i++)
					if (imp[i] == "sync" || imp[i] == "sync/atomic" || ((imp[i] in pkg) && bear[imp[i]])) {
						bear[p] = 1
						changed = 1
						break
					}
			}
		}
		for (p in pkg) if (bear[p]) print p
	}' | sort)
echo "==> go test -race:" $race_pkgs
# shellcheck disable=SC2086 — the package list is intentionally word-split.
go test -race $race_pkgs

echo "checks passed"
