#!/bin/sh
# One gate for the repo: build, vet (standard + project-specific), format,
# and race-test the concurrency-bearing packages. CI and pre-commit both run
# exactly this script, so "checks passed" here means the same thing there.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> waco-vet"
go run ./cmd/waco-vet ./...

# Race-test every package that actually bears concurrency, derived from the
# import graph instead of a hand-maintained list (which had gone stale and
# silently skipped packages): anything importing sync, sync/atomic, or the
# worker-pool package, in the package proper or its tests.
race_pkgs=$(go list -f '{{.ImportPath}}: {{join .Imports " "}} {{join .TestImports " "}}' ./internal/... |
	awk -F': ' '{
		n = split($2, imp, " ")
		for (i = 1; i <= n; i++)
			if (imp[i] == "sync" || imp[i] == "sync/atomic" || imp[i] == "waco/internal/parallelism") {
				print $1
				break
			}
	}')
echo "==> go test -race:" $race_pkgs
# shellcheck disable=SC2086 — the package list is intentionally word-split.
go test -race $race_pkgs

echo "checks passed"
