#!/bin/sh
# Static checks: vet everything, fail on any file gofmt would rewrite.
set -eu
cd "$(dirname "$0")/.."

go vet ./...

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi
echo "checks passed"
