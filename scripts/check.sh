#!/bin/sh
# One gate for the repo: build, vet (standard + project-specific), format,
# and race-test the concurrency-bearing packages. CI and pre-commit both run
# exactly this script, so "checks passed" here means the same thing there.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build"
go build ./...

echo "==> go vet"
go vet ./...

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> waco-vet"
go run ./cmd/waco-vet ./...

echo "==> go test -race (serve, metrics, costmodel, parallelism, search, hnsw, dataset)"
go test -race ./internal/serve/... ./internal/metrics/... ./internal/costmodel/... \
	./internal/parallelism/... ./internal/search/... ./internal/hnsw/... \
	./internal/dataset/...

echo "checks passed"
