package costmodel

import (
	"fmt"
	"math"
	"math/rand"

	"waco/internal/dataset"
	"waco/internal/nn"
)

// LossKind selects the training objective.
type LossKind string

const (
	// LossRank is the paper's pairwise hinge ranking loss.
	LossRank LossKind = "rank"
	// LossMSE regresses standardized log-runtimes (the ablation baseline).
	LossMSE LossKind = "mse"
)

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs         int
	PairsPerMatrix int // schedule pairs per matrix per epoch (paper: batch 32)
	LR             float32
	Seed           int64
	Loss           LossKind
	// MinRatio drops ranking pairs whose runtimes differ by less than this
	// factor (e.g. 1.1 = 10%). On microsecond-scale reduced workloads the
	// measurement noise would otherwise drown the ranking signal; the
	// paper's second-scale kernels did not need this. 0 disables filtering.
	MinRatio float64
	// Verbose, if non-nil, receives one line per epoch.
	Verbose func(string)
}

// DefaultTrainConfig uses the paper's Adam optimizer with reduced-scale
// epochs and a raised learning rate suited to the smaller networks (the
// paper trains 70 epochs at 1e-4 on far larger datasets).
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 10, PairsPerMatrix: 16, LR: 1e-3, Seed: 1, Loss: LossRank, MinRatio: 1.1}
}

// EpochStats records one epoch's losses (Figure 15's curves).
type EpochStats struct {
	TrainLoss float64
	ValLoss   float64
}

// TrainResult is the full training trace.
type TrainResult struct {
	Epochs []EpochStats
}

// Train fits the model on the training entries, evaluating the loss on the
// validation entries after every epoch. Patterns are converted and cached on
// first use; the pattern feature is extracted once per matrix per epoch and
// shared across all pairs, exactly as the cost model is used in search.
func Train(m *Model, train, val []*dataset.Entry, cfg TrainConfig) (TrainResult, error) {
	if cfg.Epochs < 1 {
		return TrainResult{}, fmt.Errorf("costmodel: %d epochs", cfg.Epochs)
	}
	if cfg.Loss == "" {
		cfg.Loss = LossRank
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR, m.Params()...)

	trainPats := makePatterns(train)
	valPats := makePatterns(val)
	logMean, logStd := logRuntimeStats(train)

	var result TrainResult
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(len(train))
		var lossSum float64
		var lossCount int
		for _, mi := range order {
			entry := train[mi]
			if len(entry.Samples) < 2 {
				continue
			}
			var tape nn.Tape
			feat, err := m.Extractor.Extract(&tape, trainPats[mi])
			if err != nil {
				return result, fmt.Errorf("costmodel: extract %s: %w", entry.Name, err)
			}
			l, n := m.lossOnEntry(&tape, feat, entry, cfg, rng, logMean, logStd)
			lossSum += l
			lossCount += n
			tape.Backward()
			opt.Step()
		}
		stats := EpochStats{TrainLoss: safeDiv(lossSum, lossCount)}
		stats.ValLoss = m.evalLoss(val, valPats, cfg, rng, logMean, logStd)
		result.Epochs = append(result.Epochs, stats)
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf("epoch %d: train loss %.4f, val loss %.4f", epoch, stats.TrainLoss, stats.ValLoss))
		}
	}
	return result, nil
}

// lossOnEntry accumulates the configured loss over sampled pairs (rank) or
// sampled schedules (mse) of one matrix, writing gradients when tape != nil.
func (m *Model) lossOnEntry(tape *nn.Tape, feat *nn.Grad, entry *dataset.Entry, cfg TrainConfig, rng *rand.Rand, logMean, logStd float64) (float64, int) {
	var lossSum float64
	var count int
	if cfg.Loss == LossMSE {
		for q := 0; q < cfg.PairsPerMatrix; q++ {
			s := &entry.Samples[rng.Intn(len(entry.Samples))]
			pred := m.PredictWith(tape, feat, m.Embedder.EmbedSchedule(tape, s.SS))
			target := float32((math.Log(s.Seconds) - logMean) / logStd)
			lossSum += float64(nn.MSELoss(pred, target))
			count++
		}
		return lossSum, count
	}
	for q := 0; q < cfg.PairsPerMatrix; q++ {
		a := &entry.Samples[rng.Intn(len(entry.Samples))]
		b := &entry.Samples[rng.Intn(len(entry.Samples))]
		if a == b {
			continue // same sample drawn twice: nothing to rank
		}
		if a.Seconds < b.Seconds {
			a, b = b, a // a is the slower schedule
		}
		if a.Seconds <= b.Seconds {
			continue // exactly tied measurements cannot be ranked
		}
		if cfg.MinRatio > 1 && a.Seconds < cfg.MinRatio*b.Seconds {
			continue // too close to call under measurement noise
		}
		pa := m.PredictWith(tape, feat, m.Embedder.EmbedSchedule(tape, a.SS))
		pb := m.PredictWith(tape, feat, m.Embedder.EmbedSchedule(tape, b.SS))
		lossSum += float64(nn.HingeRankLoss(pa, pb))
		count++
	}
	return lossSum, count
}

// evalLoss computes the average loss over entries without training.
func (m *Model) evalLoss(entries []*dataset.Entry, pats []*Pattern, cfg TrainConfig, rng *rand.Rand, logMean, logStd float64) float64 {
	var lossSum float64
	var count int
	for i, entry := range entries {
		if len(entry.Samples) < 2 {
			continue
		}
		feat, err := m.Extractor.Extract(nil, pats[i])
		if err != nil {
			continue
		}
		l, n := m.lossOnEntry(nil, feat, entry, cfg, rng, logMean, logStd)
		lossSum += l
		count += n
	}
	return safeDiv(lossSum, count)
}

// PairAccuracy measures the fraction of schedule pairs whose predicted order
// matches the measured order — the metric that matters for search quality.
// Pairs whose runtimes differ by less than 10% are skipped as noise.
func PairAccuracy(m *Model, entries []*dataset.Entry, pairsPerMatrix int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	pats := makePatterns(entries)
	correct, total := 0, 0
	for i, entry := range entries {
		if len(entry.Samples) < 2 {
			continue
		}
		feat, err := m.Extractor.Extract(nil, pats[i])
		if err != nil {
			return 0, err
		}
		for q := 0; q < pairsPerMatrix; q++ {
			a := &entry.Samples[rng.Intn(len(entry.Samples))]
			b := &entry.Samples[rng.Intn(len(entry.Samples))]
			hi, lo := a.Seconds, b.Seconds
			if hi < lo {
				hi, lo = lo, hi
			}
			if hi < 1.1*lo {
				continue
			}
			pa := m.PredictWith(nil, feat, m.Embedder.EmbedSchedule(nil, a.SS))
			pb := m.PredictWith(nil, feat, m.Embedder.EmbedSchedule(nil, b.SS))
			if (pa.V[0] > pb.V[0]) == (a.Seconds > b.Seconds) {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("costmodel: no comparable pairs")
	}
	return float64(correct) / float64(total), nil
}

func makePatterns(entries []*dataset.Entry) []*Pattern {
	out := make([]*Pattern, len(entries))
	for i, e := range entries {
		out[i] = NewPattern(e.COO)
	}
	return out
}

func logRuntimeStats(entries []*dataset.Entry) (mean, std float64) {
	var sum, sumSq float64
	var n int
	for _, e := range entries {
		for _, s := range e.Samples {
			l := math.Log(s.Seconds)
			sum += l
			sumSq += l * l
			n++
		}
	}
	if n == 0 {
		return 0, 1
	}
	mean = sum / float64(n)
	v := sumSq/float64(n) - mean*mean
	if v < 1e-12 {
		return mean, 1
	}
	return mean, math.Sqrt(v)
}

func safeDiv(a float64, b int) float64 {
	if b == 0 {
		return 0
	}
	return a / float64(b)
}
