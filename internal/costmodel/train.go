package costmodel

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"waco/internal/dataset"
	"waco/internal/nn"
	"waco/internal/parallelism"
)

// LossKind selects the training objective.
type LossKind string

const (
	// LossRank is the paper's pairwise hinge ranking loss.
	LossRank LossKind = "rank"
	// LossMSE regresses standardized log-runtimes (the ablation baseline).
	LossMSE LossKind = "mse"
)

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs         int
	PairsPerMatrix int // schedule pairs per matrix per epoch (paper: batch 32)
	LR             float32
	Seed           int64
	Loss           LossKind
	// MinRatio drops ranking pairs whose runtimes differ by less than this
	// factor (e.g. 1.1 = 10%). On microsecond-scale reduced workloads the
	// measurement noise would otherwise drown the ranking signal; the
	// paper's second-scale kernels did not need this. 0 disables filtering.
	MinRatio float64
	// Workers bounds the goroutines that compute per-matrix gradients and
	// validation losses. <= 0 means one per CPU. The result is bit-identical
	// for every worker count: work is sharded per matrix with per-shard
	// random streams, and gradients merge in canonical matrix order (see
	// BatchMatrices).
	Workers int
	// BatchMatrices is the number of matrices whose gradients are computed
	// against the same weights and applied in one optimizer step — the unit
	// of parallelism. <= 0 means 1: one step per matrix, the classic
	// sequential cadence, which leaves nothing to fan out. Raising it trades
	// step count for intra-step parallelism; determinism does not depend on
	// it, but changing it changes the canonical result (it is part of the
	// training schedule, like the seed).
	BatchMatrices int
	// HeadOnly freezes the feature extractor and schedule embedder and
	// adapts only the predictor head — COGNATE-style few-shot transfer. A
	// frozen embedder keeps every precomputed schedule embedding (and hence
	// the HNSW index geometry) valid, so a transfer retrain can reuse the
	// incumbent index instead of rebuilding it. Determinism is unchanged:
	// the frozen layers' gradients are still computed and merged in
	// canonical order, the optimizer just never applies them.
	HeadOnly bool
	// Metrics, when non-nil, receives worker-pool and per-phase series.
	Metrics *parallelism.Metrics
	// Verbose, if non-nil, receives one line per epoch.
	Verbose func(string)
}

// DefaultTrainConfig uses the paper's Adam optimizer with reduced-scale
// epochs and a raised learning rate suited to the smaller networks (the
// paper trains 70 epochs at 1e-4 on far larger datasets). BatchMatrices 8
// enables the parallel gradient fan-out without making steps too coarse at
// reduced corpus sizes.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 10, PairsPerMatrix: 16, LR: 1e-3, Seed: 1, Loss: LossRank, MinRatio: 1.1, BatchMatrices: 8}
}

// EpochStats records one epoch's losses (Figure 15's curves).
type EpochStats struct {
	TrainLoss float64
	ValLoss   float64
}

// TrainResult is the full training trace.
type TrainResult struct {
	Epochs []EpochStats
}

// Train fits the model on the training entries, evaluating the loss on the
// validation entries after every epoch. See TrainContext.
func Train(m *Model, train, val []*dataset.Entry, cfg TrainConfig) (TrainResult, error) {
	return TrainContext(context.Background(), m, train, val, cfg)
}

// TrainContext is Train with cancellation and worker fan-out. Patterns are
// converted and cached on first use; the pattern feature is extracted once
// per matrix per epoch and shared across all pairs, exactly as the cost
// model is used in search.
//
// Determinism contract: the result depends only on (model weights, data,
// cfg.Seed, cfg.BatchMatrices) — never on cfg.Workers or scheduling. Each
// epoch derives an epoch seed from cfg.Seed; the visit order is a
// permutation drawn from it; every matrix draws its schedule pairs from its
// own parallelism.ShardRand stream keyed by matrix index; and each batch's
// gradients are computed against frozen weights on per-worker replicas
// (weights shared, gradient buffers private — each worker records on its
// own nn.Tape, which is single-goroutine), then accumulated into the
// canonical parameters in batch order before the one Adam step for that
// batch. Floating-point accumulation order is therefore fixed.
func TrainContext(ctx context.Context, m *Model, train, val []*dataset.Entry, cfg TrainConfig) (TrainResult, error) {
	if cfg.Epochs < 1 {
		return TrainResult{}, fmt.Errorf("costmodel: %d epochs", cfg.Epochs)
	}
	if cfg.Loss == "" {
		cfg.Loss = LossRank
	}
	workers := parallelism.Workers(cfg.Workers)
	batch := cfg.BatchMatrices
	if batch < 1 {
		batch = 1
	}
	optParams := m.Params()
	if cfg.HeadOnly {
		optParams = m.Head.Params()
	}
	opt := nn.NewAdam(cfg.LR, optParams...)

	trainPats := makePatterns(train)
	valPats := makePatterns(val)
	logMean, logStd := logRuntimeStats(train)

	// Per-worker model replicas: weights aliased to m (read-only while a
	// batch is in flight), gradient buffers private. With one worker (or
	// batch 1) the single replica runs the same code path inline, so the
	// sequential result is the parallel result by construction.
	nRep := workers
	if nRep > batch {
		nRep = batch
	}
	reps := make([]*replica, nRep)
	for i := range reps {
		r, err := newReplica(m)
		if err != nil {
			return TrainResult{}, err
		}
		reps[i] = r
	}
	canonical := m.Params()
	// Frozen parameters (HeadOnly mode) still accumulate merged gradients —
	// Adam only zeroes the G of its own registered params after Step, so the
	// frozen ones must be cleared by hand or they would grow across batches.
	var frozen []*nn.Param
	if cfg.HeadOnly {
		frozen = canonical[:len(canonical)-len(m.Head.Params())]
	}

	// itemResult carries one matrix's contribution out of the pool; grads
	// is nil for skipped matrices (fewer than two samples).
	type itemResult struct {
		grads [][]float32
		loss  float64
		count int
	}

	var result TrainResult
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return result, err
		}
		epochSeed := parallelism.ShardSeed(cfg.Seed, int64(epoch))
		order := rand.New(rand.NewSource(epochSeed)).Perm(len(train))
		var lossSum float64
		var lossCount int
		for lo := 0; lo < len(order); lo += batch {
			hi := lo + batch
			if hi > len(order) {
				hi = len(order)
			}
			items := order[lo:hi]
			results := make([]itemResult, len(items))
			err := parallelism.ForEach(ctx, cfg.Metrics, parallelism.PhaseTrain, len(items), workers, func(worker, k int) error {
				mi := items[k]
				entry := train[mi]
				if len(entry.Samples) < 2 {
					return nil
				}
				rep := reps[worker]
				var tape nn.Tape
				feat, err := rep.model.Extractor.Extract(&tape, trainPats[mi])
				if err != nil {
					return fmt.Errorf("costmodel: extract %s: %w", entry.Name, err)
				}
				rng := parallelism.ShardRand(epochSeed, 1+int64(mi))
				l, n := rep.model.lossOnEntry(&tape, feat, entry, cfg, rng, logMean, logStd)
				tape.Backward()
				results[k] = itemResult{grads: rep.takeGrads(), loss: l, count: n}
				return nil
			})
			if err != nil {
				return result, err
			}
			// Merge in batch order — the canonical accumulation order — and
			// take one optimizer step over the whole batch.
			stepped := false
			for _, r := range results {
				if r.grads == nil {
					continue
				}
				for pi, g := range r.grads {
					dst := canonical[pi].G
					for j, v := range g {
						dst[j] += v
					}
				}
				lossSum += r.loss
				lossCount += r.count
				stepped = true
			}
			if stepped {
				opt.Step()
				for _, p := range frozen {
					p.ZeroGrad()
				}
			}
		}
		stats := EpochStats{TrainLoss: safeDiv(lossSum, lossCount)}
		valLoss, err := m.evalLoss(ctx, val, valPats, cfg, epochSeed, logMean, logStd, workers)
		if err != nil {
			return result, err
		}
		stats.ValLoss = valLoss
		result.Epochs = append(result.Epochs, stats)
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf("epoch %d: train loss %.4f, val loss %.4f", epoch, stats.TrainLoss, stats.ValLoss))
		}
	}
	return result, nil
}

// lossOnEntry accumulates the configured loss over sampled pairs (rank) or
// sampled schedules (mse) of one matrix, writing gradients when tape != nil.
func (m *Model) lossOnEntry(tape *nn.Tape, feat *nn.Grad, entry *dataset.Entry, cfg TrainConfig, rng *rand.Rand, logMean, logStd float64) (float64, int) {
	var lossSum float64
	var count int
	if cfg.Loss == LossMSE {
		for q := 0; q < cfg.PairsPerMatrix; q++ {
			s := &entry.Samples[rng.Intn(len(entry.Samples))]
			pred := m.PredictWith(tape, feat, m.Embedder.EmbedSchedule(tape, s.SS))
			target := float32((math.Log(s.Seconds) - logMean) / logStd)
			lossSum += float64(nn.MSELoss(pred, target))
			count++
		}
		return lossSum, count
	}
	for q := 0; q < cfg.PairsPerMatrix; q++ {
		a := &entry.Samples[rng.Intn(len(entry.Samples))]
		b := &entry.Samples[rng.Intn(len(entry.Samples))]
		if a == b {
			continue // same sample drawn twice: nothing to rank
		}
		if a.Seconds < b.Seconds {
			a, b = b, a // a is the slower schedule
		}
		if a.Seconds <= b.Seconds {
			continue // exactly tied measurements cannot be ranked
		}
		if cfg.MinRatio > 1 && a.Seconds < cfg.MinRatio*b.Seconds {
			continue // too close to call under measurement noise
		}
		pa := m.PredictWith(tape, feat, m.Embedder.EmbedSchedule(tape, a.SS))
		pb := m.PredictWith(tape, feat, m.Embedder.EmbedSchedule(tape, b.SS))
		lossSum += float64(nn.HingeRankLoss(pa, pb))
		count++
	}
	return lossSum, count
}

// evalLoss computes the average loss over entries without training,
// fanning the (read-only, nil-tape) per-entry evaluations across workers.
// Entry i draws from the shard stream keyed -1-i, disjoint from the
// non-negative training shards, and the loss sums reduce in entry order.
func (m *Model) evalLoss(ctx context.Context, entries []*dataset.Entry, pats []*Pattern, cfg TrainConfig, epochSeed int64, logMean, logStd float64, workers int) (float64, error) {
	type entryLoss struct {
		loss  float64
		count int
	}
	res := make([]entryLoss, len(entries))
	err := parallelism.ForEach(ctx, cfg.Metrics, parallelism.PhaseEval, len(entries), workers, func(_, i int) error {
		entry := entries[i]
		if len(entry.Samples) < 2 {
			return nil
		}
		feat, err := m.Extractor.Extract(nil, pats[i])
		if err != nil {
			return nil // unscorable entry: contributes nothing, as in search
		}
		rng := parallelism.ShardRand(epochSeed, -1-int64(i))
		l, n := m.lossOnEntry(nil, feat, entry, cfg, rng, logMean, logStd)
		res[i] = entryLoss{loss: l, count: n}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var lossSum float64
	var count int
	for _, r := range res {
		lossSum += r.loss
		count += r.count
	}
	return safeDiv(lossSum, count), nil
}

// PairAccuracy measures the fraction of schedule pairs whose predicted order
// matches the measured order — the metric that matters for search quality.
// Pairs whose runtimes differ by less than 10% are skipped as noise.
func PairAccuracy(m *Model, entries []*dataset.Entry, pairsPerMatrix int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	pats := makePatterns(entries)
	correct, total := 0, 0
	for i, entry := range entries {
		if len(entry.Samples) < 2 {
			continue
		}
		feat, err := m.Extractor.Extract(nil, pats[i])
		if err != nil {
			return 0, err
		}
		for q := 0; q < pairsPerMatrix; q++ {
			a := &entry.Samples[rng.Intn(len(entry.Samples))]
			b := &entry.Samples[rng.Intn(len(entry.Samples))]
			hi, lo := a.Seconds, b.Seconds
			if hi < lo {
				hi, lo = lo, hi
			}
			if hi < 1.1*lo {
				continue
			}
			pa := m.PredictWith(nil, feat, m.Embedder.EmbedSchedule(nil, a.SS))
			pb := m.PredictWith(nil, feat, m.Embedder.EmbedSchedule(nil, b.SS))
			if (pa.V[0] > pb.V[0]) == (a.Seconds > b.Seconds) {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("costmodel: no comparable pairs")
	}
	return float64(correct) / float64(total), nil
}

func makePatterns(entries []*dataset.Entry) []*Pattern {
	out := make([]*Pattern, len(entries))
	for i, e := range entries {
		out[i] = NewPattern(e.COO)
	}
	return out
}

func logRuntimeStats(entries []*dataset.Entry) (mean, std float64) {
	var sum, sumSq float64
	var n int
	for _, e := range entries {
		for _, s := range e.Samples {
			l := math.Log(s.Seconds)
			sum += l
			sumSq += l * l
			n++
		}
	}
	if n == 0 {
		return 0, 1
	}
	mean = sum / float64(n)
	v := sumSq/float64(n) - mean*mean
	if v < 1e-12 {
		return mean, 1
	}
	return mean, math.Sqrt(v)
}

func safeDiv(a float64, b int) float64 {
	if b == 0 {
		return 0
	}
	return a / float64(b)
}
