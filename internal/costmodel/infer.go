package costmodel

import (
	"sync"

	"waco/internal/nn"
	"waco/internal/schedule"
)

// InferBuffers is the per-goroutine scratch of the forward-only inference
// path: one arena for layer activations plus the persistent state of the
// batched predictor head. The forward-only path produces bit-identical
// predictions to the tape path (pinned by TestInferParity*) while allocating
// nothing in steady state, which is what keeps the query-path search —
// hundreds of head evaluations per query — off the garbage collector.
//
// Ownership follows nn.Arena: one InferBuffers per goroutine at a time,
// never shared concurrently. Reset (or CostWith, which resets) starts a new
// query and invalidates every slice the previous query obtained. serve and
// search recycle buffers through sync.Pools; standalone callers can use
// GetInferBuffers/PutInferBuffers.
type InferBuffers struct {
	arena nn.Arena

	// Prepared head state: the query-constant partial product of the first
	// head layer. The first layer sees concat(feat, emb); its bias plus the
	// feature half of the mat-vec is the same for every candidate of a
	// query, so it is hoisted out of the per-candidate loop. Accumulation
	// order is unchanged (bias, then feature terms, then embedding terms),
	// so scores match the tape path bit for bit.
	model   *Model
	featPtr *float32
	featLen int
	featGen uint64    // arena generation the prepared feature lives in
	pre     []float32 // pre[o] = B[o] + W[o, :featLen] . feat

	hid  [2][]float32 // ping-pong hidden activations of the head
	qhid []int8       // quantized hidden activations of the int8 head
}

// NewInferBuffers returns empty buffers; they size themselves on first use.
func NewInferBuffers() *InferBuffers { return &InferBuffers{} }

// Reset begins a new query: recycles the arena and drops the prepared head
// state (whose feature slice lived on the arena). Every slice returned by
// ExtractInfer/EmbedScheduleInfer since the last Reset becomes invalid.
//
//waco:allocfree
func (b *InferBuffers) Reset() {
	b.arena.Reset()
	b.model = nil
	b.featPtr = nil
	b.featLen = 0
}

// Arena exposes the underlying arena for composing with the nn/sparseconv
// forward-only helpers directly.
func (b *InferBuffers) Arena() *nn.Arena { return &b.arena }

// inferPool recycles buffers for entry points that do not thread their own
// (Model.Cost and the serve layer's per-request cost check).
var inferPool = sync.Pool{New: func() any { return NewInferBuffers() }}

// GetInferBuffers takes recycled buffers from the package pool.
func GetInferBuffers() *InferBuffers { return inferPool.Get().(*InferBuffers) }

// PutInferBuffers resets and returns buffers to the package pool. The caller
// must not hold on to any slice obtained through them.
func PutInferBuffers(b *InferBuffers) {
	b.Reset()
	inferPool.Put(b)
}

// grow returns s resized to n, reallocating only when capacity is short.
// Contents are unspecified; callers overwrite every element.
func grow(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// prepare computes the query-constant head state for feat, skipping the work
// when the same feature (by identity) is already prepared. feat must stay
// unmodified while prepared — the search path extracts it once per query and
// never writes it.
//
// Identity alone (address + length) is not enough: features live on the
// arena, and an arena reset recycles addresses, so a NEW feature extracted
// after a reset can land exactly where the old one was. The memo therefore
// also keys on the arena generation, which Reset bumps (pinned by
// TestPrepareInvalidatedByArenaReset).
//
//waco:allocfree
func (b *InferBuffers) prepare(m *Model, feat []float32) {
	var fp *float32
	if len(feat) > 0 {
		fp = &feat[0]
	}
	if b.model == m && b.featPtr == fp && b.featLen == len(feat) && b.featGen == b.arena.Gen() {
		return
	}
	l0 := m.Head.Layers[0]
	fd := len(feat)
	nn.CheckShape("head feature", fd, l0.In-m.Cfg.EmbDim)
	b.pre = grow(b.pre, l0.Out)
	for o := 0; o < l0.Out; o++ {
		row := l0.W.W[o*l0.In : o*l0.In+fd]
		acc := l0.B.W[o]
		for i, xi := range feat {
			acc += row[i] * xi
		}
		b.pre[o] = acc
	}
	b.model, b.featPtr, b.featLen, b.featGen = m, fp, fd, b.arena.Gen()
}

// score runs the head on one embedding against the prepared feature,
// allocating nothing. Bit-identical to Head.Apply over concat(feat, emb).
//
//waco:allocfree
func (b *InferBuffers) score(m *Model, emb []float32) float64 {
	layers := m.Head.Layers
	l0 := layers[0]
	nn.CheckShape("head embedding", b.featLen+len(emb), l0.In)
	x := grow(b.hid[0], l0.Out)
	b.hid[0] = x
	fd := b.featLen
	for o := 0; o < l0.Out; o++ {
		row := l0.W.W[o*l0.In+fd : (o+1)*l0.In]
		acc := b.pre[o]
		for j, xj := range emb {
			acc += row[j] * xj
		}
		x[o] = acc
	}
	cur := 0
	for li := 1; li < len(layers); li++ {
		nn.ReLUInPlace(x)
		l := layers[li]
		y := grow(b.hid[1-cur], l.Out)
		b.hid[1-cur] = y
		l.InferInto(y, x)
		x = y
		cur = 1 - cur
	}
	return float64(x[0])
}

// PredictHeadInto scores a whole batch of schedule embeddings against one
// extracted pattern feature, writing out[i] for embs[i] — the query path's
// batched counterpart of PredictWith, sized to an HNSW adjacency list. It
// allocates nothing in steady state and counts one head evaluation per
// embedding.
//
//waco:allocfree
func (m *Model) PredictHeadInto(b *InferBuffers, feat []float32, embs [][]float32, out []float64) {
	if len(out) != len(embs) {
		nn.CheckShape("head batch output", len(out), len(embs))
	}
	b.prepare(m, feat)
	for i, emb := range embs {
		out[i] = b.score(m, emb)
	}
	m.headEvals.Add(uint64(len(embs)))
}

// PredictHead scores one embedding against an extracted feature on the
// forward-only path (the batch-of-one case of PredictHeadInto).
//
//waco:allocfree
func (m *Model) PredictHead(b *InferBuffers, feat, emb []float32) float64 {
	b.prepare(m, feat)
	m.headEvals.Add(1)
	return b.score(m, emb)
}

// ExtractInfer extracts the pattern feature forward-only, memoizing it on the
// pattern: the first call per (pattern, extractor) runs the network with b's
// arena and copies the result off it; later calls return the cached copy
// without touching b. The returned slice is owned by the pattern (valid for
// its lifetime, not just until b resets) and must not be modified.
func (m *Model) ExtractInfer(b *InferBuffers, p *Pattern) ([]float32, error) {
	if p.featKey == m.Extractor && p.featVal != nil {
		return p.featVal, nil
	}
	feat, err := m.Extractor.ExtractInfer(&b.arena, p)
	if err != nil {
		return nil, err
	}
	p.featVal = append([]float32(nil), feat...)
	p.featKey = m.Extractor
	return p.featVal, nil
}

// EmbedScheduleInfer embeds a schedule forward-only into b's arena. Callers
// that store the embedding beyond the query (index build) must copy it out.
func (m *Model) EmbedScheduleInfer(b *InferBuffers, ss *schedule.SuperSchedule) []float32 {
	return m.Embedder.EmbedScheduleInfer(&b.arena, ss)
}

// CostWith is Cost with caller-owned buffers: it resets b and scores one
// (pattern, schedule) pair entirely on the forward-only path.
func (m *Model) CostWith(b *InferBuffers, p *Pattern, ss *schedule.SuperSchedule) (float64, error) {
	b.Reset()
	feat, err := m.ExtractInfer(b, p)
	if err != nil {
		return 0, err
	}
	emb := m.EmbedScheduleInfer(b, ss)
	return m.PredictHead(b, feat, emb), nil
}
