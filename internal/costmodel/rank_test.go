package costmodel

import (
	"math"
	"testing"

	"waco/internal/schedule"
)

func TestSpearmanProperties(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	if rho := Spearman(a, b); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("monotone vectors: rho = %v, want 1", rho)
	}
	rev := []float64{50, 40, 30, 20, 10}
	if rho := Spearman(a, rev); math.Abs(rho+1) > 1e-12 {
		t.Fatalf("reversed vectors: rho = %v, want -1", rho)
	}
	flat := []float64{7, 7, 7, 7, 7}
	if rho := Spearman(a, flat); rho != 0 {
		t.Fatalf("constant vector: rho = %v, want 0 (order undefined)", rho)
	}
	if rho := Spearman(a, a[:3]); rho != 0 {
		t.Fatalf("length mismatch: rho = %v, want 0", rho)
	}
	// Ties share averaged ranks: {1,1,2} vs {3,3,4} is still perfectly
	// concordant.
	if rho := Spearman([]float64{1, 1, 2}, []float64{3, 3, 4}); math.Abs(rho-1) > 1e-12 {
		t.Fatalf("tied concordant vectors: rho = %v, want 1", rho)
	}
}

func TestRankQualityMeasuresOrdering(t *testing.T) {
	entries := syntheticEntries(t, 3)
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	rho, err := RankQuality(m, entries)
	if err != nil {
		t.Fatal(err)
	}
	if rho < -1 || rho > 1 {
		t.Fatalf("rank quality %v outside [-1, 1]", rho)
	}
	// Deterministic: same model, same entries, same score.
	again, err := RankQuality(m, entries)
	if err != nil {
		t.Fatal(err)
	}
	if rho != again {
		t.Fatalf("rank quality not deterministic: %v vs %v", rho, again)
	}
	// Entries too small to rank are rejected, not silently scored.
	for _, e := range entries {
		e.Samples = e.Samples[:2]
	}
	if _, err := RankQuality(m, entries); err == nil {
		t.Fatal("expected error with <3 samples per entry")
	}
}

func TestQuantRankFidelityOnEntries(t *testing.T) {
	entries := syntheticEntries(t, 2)
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	// Calibrate against the entries' own features and schedule embeddings —
	// the same data the fidelity score runs over.
	b := NewInferBuffers()
	var feats, embs [][]float32
	for _, e := range entries {
		b.Reset()
		feat, err := m.ExtractInfer(b, NewPattern(e.COO))
		if err != nil {
			t.Fatal(err)
		}
		feats = append(feats, append([]float32(nil), feat...))
		for i := range e.Samples {
			b.Reset()
			embs = append(embs, append([]float32(nil), m.EmbedScheduleInfer(b, e.Samples[i].SS)...))
		}
	}
	q, err := QuantizeHead(m, feats, embs)
	if err != nil {
		t.Fatal(err)
	}
	rho, err := QuantRankFidelity(m, q, entries)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.98 {
		t.Fatalf("quantized fidelity on calibration data = %v, want >= 0.98", rho)
	}
}

// TestHeadOnlyFreezesBackbone pins the COGNATE transfer contract: HeadOnly
// training must leave every extractor and embedder weight bit-identical
// (so precomputed index embeddings stay valid) while still moving the head.
func TestHeadOnlyFreezesBackbone(t *testing.T) {
	entries := syntheticEntries(t, 3)
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)

	frozenBefore := make(map[string][]float32)
	for _, p := range m.Extractor.Params() {
		frozenBefore[p.Name] = append([]float32(nil), p.W...)
	}
	for _, p := range m.Embedder.Params() {
		frozenBefore[p.Name] = append([]float32(nil), p.W...)
	}
	headBefore := make(map[string][]float32)
	for _, p := range m.Head.Params() {
		headBefore[p.Name] = append([]float32(nil), p.W...)
	}

	cfg := TrainConfig{Epochs: 3, PairsPerMatrix: 8, LR: 1e-2, Seed: 1, Loss: LossRank, HeadOnly: true, BatchMatrices: 2}
	if _, err := Train(m, entries, nil, cfg); err != nil {
		t.Fatal(err)
	}

	for _, p := range append(m.Extractor.Params(), m.Embedder.Params()...) {
		for j, w := range p.W {
			if w != frozenBefore[p.Name][j] {
				t.Fatalf("frozen parameter %q moved at %d: %v -> %v", p.Name, j, frozenBefore[p.Name][j], w)
			}
		}
		for j, g := range p.G {
			if g != 0 {
				t.Fatalf("frozen parameter %q has residual gradient at %d: %v", p.Name, j, g)
			}
		}
	}
	moved := false
	for _, p := range m.Head.Params() {
		for j, w := range p.W {
			if w != headBefore[p.Name][j] {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("HeadOnly training did not move any head weight")
	}
}

// TestHeadOnlyDeterministicAcrossWorkers: the determinism contract holds in
// transfer mode too — worker count must not change the result.
func TestHeadOnlyDeterministicAcrossWorkers(t *testing.T) {
	entries := syntheticEntries(t, 3)
	cfg := TrainConfig{Epochs: 2, PairsPerMatrix: 8, LR: 1e-2, Seed: 5, Loss: LossRank, HeadOnly: true, BatchMatrices: 3}

	run := func(workers int) []float32 {
		m := tinyModel(t, schedule.SpMM, KindHumanFeature)
		c := cfg
		c.Workers = workers
		if _, err := Train(m, entries, nil, c); err != nil {
			t.Fatal(err)
		}
		var flat []float32
		for _, p := range m.Params() {
			flat = append(flat, p.W...)
		}
		return flat
	}
	w1, w4 := run(1), run(4)
	for i := range w1 {
		if w1[i] != w4[i] {
			t.Fatalf("weight %d differs across worker counts: %v vs %v", i, w1[i], w4[i])
		}
	}
}
