package costmodel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"waco/internal/generate"
	"waco/internal/nn"
	"waco/internal/schedule"
)

// equalBits fails the test if two float32 vectors differ in any bit.
func equalBits(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (bits %#08x), want %v (bits %#08x)",
				what, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// TestInferParityAllExtractors pins the tentpole guarantee: the forward-only
// path (arena scratch, no tape) produces bit-identical features, embeddings,
// and predictions to the tape path, for every extractor kind, both with a nil
// tape and with a live recording tape.
func TestInferParityAllExtractors(t *testing.T) {
	alg := schedule.SpMM
	rng := rand.New(rand.NewSource(11))
	coo := generate.Uniform(rng, 96, 80, 600)
	for _, kind := range ExtractorKinds {
		t.Run(string(kind), func(t *testing.T) {
			m := tinyModel(t, alg, kind)
			p := NewPattern(coo)
			b := NewInferBuffers()
			srng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 5; trial++ {
				ss := m.Space.Sample(srng)

				featTape, err := m.Extractor.Extract(nil, p)
				if err != nil {
					t.Fatal(err)
				}
				b.Reset()
				featFwd, err := m.ExtractInfer(b, p)
				if err != nil {
					t.Fatal(err)
				}
				equalBits(t, "feature", featFwd, featTape.V)

				embTape := m.Embedder.EmbedSchedule(nil, ss)
				embFwd := m.EmbedScheduleInfer(b, ss)
				equalBits(t, "embedding", embFwd, embTape.V)

				wantNil := float64(m.PredictWith(nil, featTape, embTape).V[0])
				var tape nn.Tape
				wantTape, err := m.Predict(&tape, p, ss)
				if err != nil {
					t.Fatal(err)
				}
				got := m.PredictHead(b, featFwd, embFwd)
				if got != wantNil {
					t.Fatalf("PredictHead = %v, nil-tape PredictWith = %v", got, wantNil)
				}
				if float64(wantTape.V[0]) != wantNil {
					t.Fatalf("recording-tape Predict = %v, nil-tape = %v", wantTape.V[0], wantNil)
				}
				cost, err := m.CostWith(b, p, ss)
				if err != nil {
					t.Fatal(err)
				}
				if cost != wantNil {
					t.Fatalf("CostWith = %v, want %v", cost, wantNil)
				}
			}
		})
	}
}

// TestInferParityAfterSaveLoad verifies the forward-only path of a reloaded
// model matches the tape path of the original model bit for bit, so sealed
// artifacts served forward-only rank schedules exactly as trained.
func TestInferParityAfterSaveLoad(t *testing.T) {
	alg := schedule.SpMM
	m := tinyModel(t, alg, KindWACONet)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	coo := generate.Uniform(rng, 64, 64, 400)
	srng := rand.New(rand.NewSource(22))
	b := NewInferBuffers()
	for trial := 0; trial < 4; trial++ {
		ss := m.Space.Sample(srng)
		want, err := m.Predict(nil, NewPattern(coo), ss)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.CostWith(b, NewPattern(coo), ss)
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(want.V[0]) {
			t.Fatalf("trial %d: loaded forward-only = %v, original tape = %v", trial, got, want.V[0])
		}
	}
}

// TestPredictHeadIntoMatchesPredictWith pins the batched entry point against
// per-candidate tape evaluation and checks the head-eval accounting.
func TestPredictHeadIntoMatchesPredictWith(t *testing.T) {
	alg := schedule.SpMM
	m := tinyModel(t, alg, KindHumanFeature)
	rng := rand.New(rand.NewSource(31))
	coo := generate.Uniform(rng, 64, 64, 300)
	p := NewPattern(coo)

	feat, err := m.Extractor.Extract(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 9
	embs := make([][]float32, batch)
	want := make([]float64, batch)
	srng := rand.New(rand.NewSource(32))
	for i := range embs {
		eg := m.Embedder.EmbedSchedule(nil, m.Space.Sample(srng))
		embs[i] = eg.V
		want[i] = float64(m.PredictWith(nil, feat, eg).V[0])
	}

	b := NewInferBuffers()
	b.Reset()
	featFwd, err := m.ExtractInfer(b, p)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, batch)
	before := m.HeadEvals()
	m.PredictHeadInto(b, featFwd, embs, out)
	if got := m.HeadEvals() - before; got != batch {
		t.Fatalf("batched scoring counted %d head evals, want %d", got, batch)
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("batch element %d = %v, want %v", i, out[i], want[i])
		}
	}
}

// TestPrepareInvalidatedByArenaReset is the regression test for the stale
// prepared-head memoization bug: prepare memoized the hoisted layer-0 feature
// partial on (model, feature address, feature length) alone. Features live on
// the buffer's arena, and an arena reset recycles addresses, so a NEW feature
// written after a reset can land exactly where the old one was — and the head
// kept scoring every candidate with the OLD feature's partial. The fix keys
// the memo on the arena generation, which Reset bumps.
//
// The test allocates the feature from the arena directly (the first
// allocation after a reset always reuses the same address), which reproduces
// the aliasing deterministically — the same shape extractors hit when
// consecutive same-sized patterns recycle one buffer.
func TestPrepareInvalidatedByArenaReset(t *testing.T) {
	alg := schedule.SpMM
	m := tinyModel(t, alg, KindHumanFeature)
	featDim := headIn(m) - m.Cfg.EmbDim
	srng := rand.New(rand.NewSource(52))
	ss := m.Space.Sample(srng)

	b := NewInferBuffers()
	b.Reset()
	emb := append([]float32(nil), m.EmbedScheduleInfer(b, ss)...)

	fill := func(dst []float32, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := range dst {
			dst[i] = rng.Float32()*2 - 1
		}
	}
	// Oracle: each feature scored with a fresh buffer set.
	oracle := func(seed int64) float64 {
		fb := NewInferBuffers()
		fb.Reset()
		feat := fb.Arena().Alloc(featDim)
		fill(feat, seed)
		return m.PredictHead(fb, feat, emb)
	}
	want1, want2 := oracle(53), oracle(54)
	if want1 == want2 {
		t.Fatal("test features score identically; pick different seeds")
	}

	b.Reset()
	feat1 := b.Arena().Alloc(featDim)
	fill(feat1, 53)
	if got := m.PredictHead(b, feat1, emb); got != want1 {
		t.Fatalf("first feature scored %v, want %v", got, want1)
	}

	// Reset the arena WITHOUT clearing the buffer's memo fields — the
	// recycling path a caller holding only the arena can legitimately take.
	b.Arena().Reset()
	feat2 := b.Arena().Alloc(featDim)
	fill(feat2, 54)
	if &feat2[0] != &feat1[0] {
		t.Fatal("arena did not recycle the first allocation's address; fixture broken")
	}
	if got := m.PredictHead(b, feat2, emb); got != want2 {
		t.Fatalf("after arena reset, second feature scored %v (stale prepared head), want %v", got, want2)
	}
}

// TestInferSteadyStateAllocs verifies the forward-only query path reaches
// zero heap allocations once the arena has warmed up.
func TestInferSteadyStateAllocs(t *testing.T) {
	alg := schedule.SpMM
	m := tinyModel(t, alg, KindWACONet)
	rng := rand.New(rand.NewSource(41))
	coo := generate.Uniform(rng, 96, 96, 700)
	p := NewPattern(coo)
	srng := rand.New(rand.NewSource(42))
	b := NewInferBuffers()
	// Stored embeddings, copied off the arena — the shape of the search index,
	// whose query path scores precomputed embeddings against a fresh feature.
	embs := make([][]float32, 8)
	for i := range embs {
		b.Reset()
		embs[i] = append([]float32(nil), m.EmbedScheduleInfer(b, m.Space.Sample(srng))...)
	}
	out := make([]float64, len(embs))

	cycle := func() {
		b.Reset()
		feat, err := m.ExtractInfer(b, p)
		if err != nil {
			t.Fatal(err)
		}
		m.PredictHeadInto(b, feat, embs, out)
	}
	cycle() // warmup: arena and geometry caches size themselves

	if allocs := testing.AllocsPerRun(20, cycle); allocs > 0 {
		t.Fatalf("steady-state forward-only query path allocates %.1f times per cycle, want 0", allocs)
	}
}
