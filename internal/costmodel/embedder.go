package costmodel

import (
	"fmt"
	"math/rand"

	"waco/internal/nn"
	"waco/internal/schedule"
)

// Embedder maps a SuperSchedule encoding to a dense program embedding
// (Figure 11): each categorical parameter passes through a learnable lookup
// table; each permutation parameter is expanded into a permutation matrix
// and passed through linear-ReLU layers; everything is concatenated and
// fused by a final MLP.
type Embedder struct {
	Space  schedule.Space
	CatDim int
	EmbDim int

	cats    []*nn.Embedding
	perms   []*nn.MLP
	fuse    *nn.MLP
	permDim int
	catIn   int // width of the fused concat input
}

// NewEmbedder builds an embedder for the space with the given output width.
func NewEmbedder(space schedule.Space, embDim int, rng *rand.Rand) *Embedder {
	e := &Embedder{Space: space, CatDim: 4, EmbDim: embDim, permDim: 8}
	total := 0
	for i, size := range space.CatSizes() {
		e.cats = append(e.cats, nn.NewEmbedding(fmt.Sprintf("emb.cat%d", i), size, e.CatDim, rng))
		total += e.CatDim
	}
	for i, size := range space.PermSizes() {
		e.perms = append(e.perms, nn.NewMLP(fmt.Sprintf("emb.perm%d", i), []int{size * size, 16, e.permDim}, rng))
		total += e.permDim
	}
	e.catIn = total
	e.fuse = nn.NewMLP("emb.fuse", []int{total, embDim, embDim}, rng)
	return e
}

// Params returns all trainable parameters.
func (e *Embedder) Params() []*nn.Param {
	var out []*nn.Param
	for _, c := range e.cats {
		out = append(out, c.Params()...)
	}
	for _, p := range e.perms {
		out = append(out, p.Params()...)
	}
	return append(out, e.fuse.Params()...)
}

// Embed produces the program embedding for an encoded SuperSchedule.
func (e *Embedder) Embed(t *nn.Tape, enc schedule.Encoded) *nn.Grad {
	parts := make([]*nn.Grad, 0, len(e.cats)+len(e.perms))
	for i, idx := range enc.Cats {
		parts = append(parts, e.cats[i].Apply(t, idx))
	}
	for i, perm := range enc.Perms {
		n := len(perm)
		mat := nn.NewGrad(make([]float32, n*n))
		for pos, v := range perm {
			mat.V[pos*n+v] = 1
		}
		parts = append(parts, e.perms[i].Apply(t, mat))
	}
	return e.fuse.Apply(t, nn.Concat(t, parts...))
}

// EmbedSchedule encodes and embeds in one step.
func (e *Embedder) EmbedSchedule(t *nn.Tape, ss *schedule.SuperSchedule) *nn.Grad {
	return e.Embed(t, e.Space.Encode(ss))
}

// EmbedInfer is the forward-only Embed: the same concatenation order and
// arithmetic (bit-identical output), with every intermediate drawn from the
// arena. The result is valid until the arena resets.
func (e *Embedder) EmbedInfer(a *nn.Arena, enc schedule.Encoded) []float32 {
	cat := a.Alloc(e.catIn)
	off := 0
	for i, idx := range enc.Cats {
		copy(cat[off:off+e.CatDim], e.cats[i].Lookup(idx))
		off += e.CatDim
	}
	for i, perm := range enc.Perms {
		n := len(perm)
		mat := a.Alloc(n * n)
		for pos, v := range perm {
			mat[pos*n+v] = 1
		}
		out := e.perms[i].Infer(a, mat)
		copy(cat[off:off+len(out)], out)
		off += len(out)
	}
	nn.CheckShape("embedder concat", off, e.catIn)
	return e.fuse.Infer(a, cat)
}

// EmbedScheduleInfer encodes and embeds forward-only in one step.
func (e *Embedder) EmbedScheduleInfer(a *nn.Arena, ss *schedule.SuperSchedule) []float32 {
	return e.EmbedInfer(a, e.Space.Encode(ss))
}
