package costmodel

import (
	"fmt"
	"runtime"
	"testing"

	"waco/internal/schedule"
)

// benchTrain runs full trainings at a fixed worker count and reports
// samples/sec, where a sample is one (matrix, epoch) gradient computation —
// the unit the pool distributes. Comparing Workers=1 against Workers=4/N
// gives the parallel-training speedup on this machine; the equivalence
// suite guarantees the answers are bit-identical, so the speedup is free.
func benchTrain(b *testing.B, workers int) {
	ds := tinyDataset(b, schedule.SpMM, 8)
	cfg := TrainConfig{Epochs: 4, PairsPerMatrix: 24, LR: 1e-3, Seed: 1,
		Loss: LossRank, BatchMatrices: 8, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := tinyModel(b, schedule.SpMM, KindWACONet)
		if _, err := Train(m, ds.Entries, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
	gradComputations := float64(b.N) * float64(cfg.Epochs) * float64(len(ds.Entries))
	b.ReportMetric(gradComputations/b.Elapsed().Seconds(), "samples/sec")
}

func BenchmarkTrainWorkers1(b *testing.B) { benchTrain(b, 1) }
func BenchmarkTrainWorkers4(b *testing.B) { benchTrain(b, 4) }

// BenchmarkTrainWorkersN uses one worker per CPU (the -workers default).
func BenchmarkTrainWorkersN(b *testing.B) {
	b.Run(fmt.Sprintf("n=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchTrain(b, runtime.GOMAXPROCS(0))
	})
}
