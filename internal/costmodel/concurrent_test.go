package costmodel

import (
	"math/rand"
	"sync"
	"testing"

	"waco/internal/generate"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
	"waco/internal/tensor"
)

// TestConcurrentInference audits the serving-path contract documented on
// Model: with a nil tape, concurrent Cost calls on one shared Model (each
// goroutine holding its own Pattern) are read-only on the weights — run
// under -race, and checked for determinism against a serial baseline.
func TestConcurrentInference(t *testing.T) {
	alg := schedule.SpMM
	space := schedule.DefaultSpace(alg)
	m, err := New(space, Config{
		Extractor: KindWACONet,
		ConvCfg:   sparseconv.Config{Dim: 2, Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 8},
		EmbDim:    8,
		HeadDims:  []int{12},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	rng := rand.New(rand.NewSource(2))
	coos := make([]*tensor.COO, goroutines)
	scheds := make([]*schedule.SuperSchedule, goroutines)
	want := make([]float64, goroutines)
	for g := range coos {
		coos[g] = generate.Uniform(rng, 48, 48, 400)
		scheds[g] = space.Sample(rng)
		c, err := m.Cost(NewPattern(coos[g]), scheds[g])
		if err != nil {
			t.Fatal(err)
		}
		want[g] = c
	}

	var wg sync.WaitGroup
	got := make([]float64, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Fresh per-goroutine Pattern over the shared model; repeat to
			// widen the race window.
			for r := 0; r < 4; r++ {
				c, err := m.Cost(NewPattern(coos[g]), scheds[g])
				if err != nil {
					errs[g] = err
					return
				}
				got[g] = c
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if got[g] != want[g] {
			t.Fatalf("goroutine %d: concurrent cost %v != serial cost %v", g, got[g], want[g])
		}
	}
}
