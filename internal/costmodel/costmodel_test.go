package costmodel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"waco/internal/dataset"
	"waco/internal/generate"
	"waco/internal/nn"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
)

func tinyConvCfg(dim int) sparseconv.Config {
	return sparseconv.Config{Dim: dim, Channels: 4, Depth: 3, FirstKernel: 3, OutDim: 12}
}

func tinyModel(t testing.TB, alg schedule.Algorithm, kind ExtractorKind) *Model {
	t.Helper()
	cfg := Config{Extractor: kind, ConvCfg: tinyConvCfg(alg.SparseOrder()), EmbDim: 12, HeadDims: []int{16}, Seed: 3}
	m, err := New(schedule.DefaultSpace(alg), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tinyDataset(t testing.TB, alg schedule.Algorithm, nMat int) *dataset.Dataset {
	t.Helper()
	cc := generate.DefaultCorpusConfig()
	cc.Count = nMat
	cc.MinDim = 64
	cc.MaxDim = 160
	cc.MaxNNZ = 2500
	cfg := dataset.DefaultCollectConfig(alg)
	cfg.SchedulesPerMatrix = 10
	cfg.Repeats = 1
	cfg.DenseN = 8
	sp := schedule.DefaultSpace(alg)
	sp.SplitChoices = []int32{1, 2, 4, 8}
	sp.ThreadChoices = []int{1, 4}
	cfg.Space = sp
	ds, err := dataset.Collect(generate.Corpus(cc), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAllExtractorsProduceFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coo := generate.Uniform(rng, 64, 64, 300)
	p := NewPattern(coo)
	for _, kind := range ExtractorKinds {
		ex, err := NewExtractor(kind, tinyConvCfg(2), rng)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Name() != string(kind) {
			t.Errorf("name %q", ex.Name())
		}
		var tape nn.Tape
		feat, err := ex.Extract(&tape, p)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(feat.V) != ex.Dim() {
			t.Fatalf("%s: dim %d, want %d", kind, len(feat.V), ex.Dim())
		}
		for i := range feat.D {
			feat.D[i] = 1
		}
		tape.Backward()
		if len(ex.Params()) == 0 {
			t.Fatalf("%s: no parameters", kind)
		}
		var any bool
		for _, pp := range ex.Params() {
			for _, g := range pp.G {
				if g != 0 {
					any = true
				}
				if math.IsNaN(float64(g)) {
					t.Fatalf("%s: NaN gradient", kind)
				}
			}
		}
		if !any {
			t.Fatalf("%s: gradient did not reach parameters", kind)
		}
	}
	if _, err := NewExtractor("bogus", tinyConvCfg(2), rng); err == nil {
		t.Fatal("accepted unknown extractor kind")
	}
}

func TestPatternCaches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPattern(generate.Uniform(rng, 50, 50, 200))
	a, err := p.SparseMap()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.SparseMap()
	if a != b {
		t.Fatal("sparse map not cached")
	}
	if p.Downsampled(8) != p.Downsampled(8) {
		t.Fatal("downsample not cached")
	}
	if len(p.HumanFeatures()) == 0 {
		t.Fatal("no human features")
	}
}

func TestEmbedderDistinguishes(t *testing.T) {
	sp := schedule.DefaultSpace(schedule.SpMM)
	rng := rand.New(rand.NewSource(3))
	e := NewEmbedder(sp, 16, rng)
	a := sp.Sample(rng)
	b := a.Clone()
	b.Threads = pick(sp.ThreadChoices, a.Threads)
	ea := e.EmbedSchedule(nil, a)
	eb := e.EmbedSchedule(nil, b)
	var diff float64
	for i := range ea.V {
		diff += math.Abs(float64(ea.V[i] - eb.V[i]))
	}
	if diff == 0 {
		t.Fatal("embeddings identical for different schedules")
	}
	// Same schedule, same embedding.
	ec := e.EmbedSchedule(nil, a.Clone())
	for i := range ea.V {
		if ea.V[i] != ec.V[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func pick(choices []int, not int) int {
	for _, c := range choices {
		if c != not {
			return c
		}
	}
	return not
}

func TestModelPredictAndSaveLoad(t *testing.T) {
	m := tinyModel(t, schedule.SpMM, KindWACONet)
	rng := rand.New(rand.NewSource(4))
	p := NewPattern(generate.Uniform(rng, 48, 48, 200))
	ss := schedule.DefaultSchedule(schedule.SpMM, 2)
	c1, err := m.Cost(p, ss)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := tinyModel(t, schedule.SpMM, KindWACONet)
	// Perturb m2 then restore.
	m2.Params()[0].W[0] += 10
	if err := m2.LoadParams(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	c2, err := m2.Cost(NewPattern(p.COO), ss)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c1-c2) > 1e-6 {
		t.Fatalf("prediction changed after save/load: %g vs %g", c1, c2)
	}
}

// TestSaveBytesDeterministic pins the byte-level reproducibility of model
// serialization: the same weights must always serialize to the same bytes
// (gob map fields would break this — maps encode in randomized iteration
// order — so parameters are persisted as a name-sorted slice). This is what
// lets `cmp` on two model files or sealed artifacts stand in for a weight
// comparison in the parallel-vs-sequential equivalence story.
func TestSaveBytesDeterministic(t *testing.T) {
	m := tinyModel(t, schedule.SpMM, KindWACONet)
	var a, b, pa, pb bytes.Buffer
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two Save calls on the same model produced different bytes")
	}
	if err := m.SaveParams(&pa); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveParams(&pb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa.Bytes(), pb.Bytes()) {
		t.Error("two SaveParams calls on the same model produced different bytes")
	}
}

func TestLoadParamsRejectsMismatchedModel(t *testing.T) {
	m := tinyModel(t, schedule.SpMM, KindWACONet)
	var buf bytes.Buffer
	if err := m.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	other := tinyModel(t, schedule.SpMM, KindHumanFeature)
	if err := other.LoadParams(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loaded mismatched parameters")
	}
}

func TestTrainReducesRankingLoss(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 6)
	train, val := ds.Split(0.34, 5)
	if len(val) == 0 || len(train) == 0 {
		t.Fatalf("bad split %d/%d", len(train), len(val))
	}
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	cfg := TrainConfig{Epochs: 12, PairsPerMatrix: 24, LR: 3e-3, Seed: 6, Loss: LossRank}
	res, err := Train(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != cfg.Epochs {
		t.Fatalf("%d epoch stats", len(res.Epochs))
	}
	first, last := res.Epochs[0].TrainLoss, res.Epochs[len(res.Epochs)-1].TrainLoss
	if !(last < first) {
		t.Fatalf("training loss did not decrease: %g -> %g", first, last)
	}
}

func TestTrainMSE(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 4)
	train, val := ds.Split(0.25, 7)
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	cfg := TrainConfig{Epochs: 6, PairsPerMatrix: 16, LR: 1e-3, Seed: 8, Loss: LossMSE}
	res, err := Train(m, train, val, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Epochs[0].TrainLoss, res.Epochs[len(res.Epochs)-1].TrainLoss
	if !(last < first) {
		t.Fatalf("MSE loss did not decrease: %g -> %g", first, last)
	}
}

func TestPairAccuracyAboveChance(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 8)
	train, _ := ds.Split(0, 9)
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	cfg := TrainConfig{Epochs: 25, PairsPerMatrix: 32, LR: 3e-3, Seed: 10, Loss: LossRank}
	if _, err := Train(m, train, nil, cfg); err != nil {
		t.Fatal(err)
	}
	acc, err := PairAccuracy(m, train, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.58 {
		t.Fatalf("train-set ranking accuracy %.3f, want > 0.58", acc)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	if _, err := Train(m, nil, nil, TrainConfig{Epochs: 0}); err == nil {
		t.Fatal("accepted zero epochs")
	}
}

func TestWACONetExtractorOn3D(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	base := generate.Uniform(rng, 32, 32, 100)
	t3 := generate.Tensor3D(rng, base, 8, 1)
	ex, err := NewExtractor(KindWACONet, tinyConvCfg(3), rng)
	if err != nil {
		t.Fatal(err)
	}
	feat, err := ex.Extract(nil, NewPattern(t3))
	if err != nil {
		t.Fatal(err)
	}
	if len(feat.V) != ex.Dim() {
		t.Fatal("wrong 3-D feature dim")
	}
}
