package costmodel

import (
	"testing"

	"waco/internal/schedule"
)

// TestNewModelDeterministicFromSeed locks in init determinism: every weight
// of a fresh model is drawn from the Config.Seed-derived generator, so two
// constructions from the same config must agree bit for bit — the property
// that makes sealed tuner artifacts and training runs replayable.
func TestNewModelDeterministicFromSeed(t *testing.T) {
	sp := schedule.DefaultSpace(schedule.SpMM)
	cfg := Config{Extractor: KindWACONet, ConvCfg: tinyConvCfg(schedule.SpMM.SparseOrder()), EmbDim: 12, HeadDims: []int{16}, Seed: 7}

	m1, err := New(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}

	p1, p2 := m1.Params(), m2.Params()
	if len(p1) != len(p2) {
		t.Fatalf("parameter counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Name != p2[i].Name {
			t.Fatalf("parameter %d name %q vs %q", i, p1[i].Name, p2[i].Name)
		}
		for j := range p1[i].W {
			if p1[i].W[j] != p2[i].W[j] {
				t.Fatalf("parameter %q weight %d diverged between same-seed models: %v vs %v",
					p1[i].Name, j, p1[i].W[j], p2[i].W[j])
			}
		}
	}
}

// TestNewModelSeedChangesWeights guards against the seed being ignored.
func TestNewModelSeedChangesWeights(t *testing.T) {
	sp := schedule.DefaultSpace(schedule.SpMM)
	cfg := Config{Extractor: KindWACONet, ConvCfg: tinyConvCfg(schedule.SpMM.SparseOrder()), EmbDim: 12, HeadDims: []int{16}, Seed: 7}
	cfg2 := cfg
	cfg2.Seed = 8

	m1, err := New(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(sp, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		for j := range p1[i].W {
			if p1[i].W[j] != p2[i].W[j] {
				return // seeds observably differ, as they must
			}
		}
	}
	t.Fatal("every weight identical across different seeds; Config.Seed is not reaching initialization")
}
