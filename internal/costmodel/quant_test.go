package costmodel

import (
	"bytes"
	"math/rand"
	"testing"

	"waco/internal/generate"
	"waco/internal/schedule"
)

// quantFixture builds a tiny model plus a calibrated quantized head from
// sampled schedules and patterns, returning everything a scoring test needs.
func quantFixture(t *testing.T, kind ExtractorKind, nSched int) (*Model, *QuantizedHead, *Pattern, [][]float32) {
	t.Helper()
	m := tinyModel(t, schedule.SpMM, kind)
	rng := rand.New(rand.NewSource(61))
	p := NewPattern(generate.Uniform(rng, 96, 80, 600))

	b := NewInferBuffers()
	srng := rand.New(rand.NewSource(62))
	embs := make([][]float32, nSched)
	for i := range embs {
		b.Reset()
		embs[i] = append([]float32(nil), m.EmbedScheduleInfer(b, m.Space.Sample(srng))...)
	}
	b.Reset()
	feat, err := m.ExtractInfer(b, p)
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]float32{append([]float32(nil), feat...)}

	q, err := QuantizeHead(m, feats, embs)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := q.CompatibleWith(m); err != nil {
		t.Fatal(err)
	}
	return m, q, p, embs
}

// scoreBoth runs the float and quantized heads over the same embeddings.
func scoreBoth(t *testing.T, m *Model, q *QuantizedHead, p *Pattern, embs [][]float32) (flt, qnt []float64) {
	t.Helper()
	b := NewInferBuffers()
	b.Reset()
	feat, err := m.ExtractInfer(b, p)
	if err != nil {
		t.Fatal(err)
	}
	flt = make([]float64, len(embs))
	m.PredictHeadInto(b, feat, embs, flt)

	qembs := make([][]int8, len(embs))
	for i, e := range embs {
		qembs[i] = make([]int8, len(e))
		q.QuantizeEmbedding(qembs[i], e)
	}
	qnt = make([]float64, len(embs))
	m.PredictHeadIntoQuantized(b, q, feat, qembs, qnt)
	return flt, qnt
}

// TestQuantizedHeadRankCorrelation pins the serving contract of the int8
// head for every extractor kind: candidate ORDER survives quantization.
// WACO's ranking loss means only order matters, so Spearman >= 0.98 against
// the float oracle is the acceptance gate.
func TestQuantizedHeadRankCorrelation(t *testing.T) {
	for _, kind := range ExtractorKinds {
		t.Run(string(kind), func(t *testing.T) {
			m, q, p, embs := quantFixture(t, kind, 48)
			flt, qnt := scoreBoth(t, m, q, p, embs)
			if rho := Spearman(flt, qnt); rho < 0.98 {
				t.Fatalf("quantized/float Spearman = %.4f, want >= 0.98\nfloat: %v\nquant: %v", rho, flt, qnt)
			}
		})
	}
}

// TestQuantizedHeadEvalAccounting: quantized scoring counts head evals on the
// same meter as the float path, so §5.4-style breakdowns stay comparable.
func TestQuantizedHeadEvalAccounting(t *testing.T) {
	m, q, p, embs := quantFixture(t, KindHumanFeature, 7)
	before := m.HeadEvals()
	scoreBoth(t, m, q, p, embs)
	if got := m.HeadEvals() - before; got != uint64(2*len(embs)) {
		t.Fatalf("float+quantized scoring counted %d head evals, want %d", got, 2*len(embs))
	}
}

// TestQuantizedHeadSaveLoadRoundTrip: a reloaded section scores bit-identically
// to the in-memory head — sealed artifacts serve exactly what was calibrated.
func TestQuantizedHeadSaveLoadRoundTrip(t *testing.T) {
	m, q, p, embs := quantFixture(t, KindWACONet, 16)
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuantizedHead(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.CompatibleWith(m); err != nil {
		t.Fatal(err)
	}
	_, want := scoreBoth(t, m, q, p, embs)
	_, got := scoreBoth(t, m, loaded, p, embs)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("embedding %d: reloaded head scores %v, original %v", i, got[i], want[i])
		}
	}
}

// TestQuantizeHeadRejectsBadCalibration: calibration inputs with the wrong
// shape fail loudly instead of sealing a head that mis-scores at serve time.
func TestQuantizeHeadRejectsBadCalibration(t *testing.T) {
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	featDim := headIn(m) - m.Cfg.EmbDim
	goodFeat := make([]float32, featDim)
	goodEmb := make([]float32, m.Cfg.EmbDim)
	cases := map[string]struct {
		feats, embs [][]float32
	}{
		"no feats":   {nil, [][]float32{goodEmb}},
		"no embs":    {[][]float32{goodFeat}, nil},
		"short feat": {[][]float32{goodFeat[:featDim-1]}, [][]float32{goodEmb}},
		"long emb":   {[][]float32{goodFeat}, [][]float32{append([]float32(nil), append(goodEmb, 0)...)}},
	}
	for name, c := range cases {
		if _, err := QuantizeHead(m, c.feats, c.embs); err == nil {
			t.Fatalf("%s: QuantizeHead accepted bad calibration input", name)
		}
	}
	if _, err := QuantizeHead(m, [][]float32{goodFeat}, [][]float32{goodEmb}); err != nil {
		t.Fatalf("all-zero but well-shaped calibration must succeed (scales default to 1): %v", err)
	}
}

// TestQuantizedHeadCompatibleWithRejectsMismatch: a head sealed against one
// architecture refuses to serve another.
func TestQuantizedHeadCompatibleWithRejectsMismatch(t *testing.T) {
	_, q, _, _ := quantFixture(t, KindHumanFeature, 4)
	// Same extractor, narrower hidden head layer: the shapes cannot line up.
	cfg := Config{Extractor: KindHumanFeature, ConvCfg: tinyConvCfg(schedule.SpMM.SparseOrder()), EmbDim: 12, HeadDims: []int{8}, Seed: 4}
	other, err := New(schedule.DefaultSpace(schedule.SpMM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.CompatibleWith(other); err == nil {
		t.Fatal("CompatibleWith accepted a head built for a different architecture")
	}
}

// TestQuantizedSteadyStateAllocs mirrors TestInferSteadyStateAllocs for the
// int8 path: once warm, a query cycle allocates nothing.
func TestQuantizedSteadyStateAllocs(t *testing.T) {
	m, q, p, embs := quantFixture(t, KindWACONet, 8)
	qembs := make([][]int8, len(embs))
	for i, e := range embs {
		qembs[i] = make([]int8, len(e))
		q.QuantizeEmbedding(qembs[i], e)
	}
	out := make([]float64, len(qembs))
	b := NewInferBuffers()
	cycle := func() {
		b.Reset()
		feat, err := m.ExtractInfer(b, p)
		if err != nil {
			t.Fatal(err)
		}
		m.PredictHeadIntoQuantized(b, q, feat, qembs, out)
	}
	cycle() // warmup: arena and scratch size themselves

	if allocs := testing.AllocsPerRun(20, cycle); allocs > 0 {
		t.Fatalf("steady-state quantized query path allocates %.1f times per cycle, want 0", allocs)
	}
}

// FuzzLoadQuantizedHead: no input — truncated, oversized, bit-flipped, or
// dimension-mismatched — may panic the loader, and anything it accepts must
// validate clean.
func FuzzLoadQuantizedHead(f *testing.F) {
	m := tinyModel(f, schedule.SpMM, KindHumanFeature)
	featDim := headIn(m) - m.Cfg.EmbDim
	feat := make([]float32, featDim)
	emb := make([]float32, m.Cfg.EmbDim)
	for i := range feat {
		feat[i] = float32(i%5) - 2
	}
	for i := range emb {
		emb[i] = float32(i%7) - 3
	}
	q, err := QuantizeHead(m, [][]float32{feat}, [][]float32{emb})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte(nil))
	f.Add([]byte("WACOQNT8"))
	f.Add(append(append([]byte(nil), valid...), valid...))
	corrupt := append([]byte(nil), valid...)
	for i := 16; i < len(corrupt); i += 13 {
		corrupt[i] ^= 0x5a
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := LoadQuantizedHead(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("LoadQuantizedHead returned an invalid head: %v", verr)
		}
	})
}
