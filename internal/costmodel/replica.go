package costmodel

import (
	"fmt"

	"waco/internal/nn"
)

// replica is a worker-private view of a Model for parallel training: the
// replica's parameters alias the canonical model's weight slices (so each
// batch's forward passes read the post-step weights without copying) but
// keep their own gradient accumulators, so concurrent backward passes never
// race. One replica belongs to one worker goroutine at a time; its tape and
// gradient buffers are as single-goroutine as any nn.Tape.
type replica struct {
	model  *Model
	params []*nn.Param
}

// newReplica clones m's architecture and aliases its weights. The clone is
// built from m's own Space and Cfg, so the parameter lists correspond
// one-to-one; any mismatch means the model was hand-assembled inconsistently
// and is reported rather than silently mistrained.
func newReplica(m *Model) (*replica, error) {
	clone, err := New(m.Space, m.Cfg)
	if err != nil {
		return nil, fmt.Errorf("costmodel: replica: %w", err)
	}
	cp, mp := clone.Params(), m.Params()
	if len(cp) != len(mp) {
		return nil, fmt.Errorf("costmodel: replica has %d params, model %d", len(cp), len(mp))
	}
	for i := range cp {
		if cp[i].Name != mp[i].Name {
			return nil, fmt.Errorf("costmodel: replica param %d is %q, model has %q", i, cp[i].Name, mp[i].Name)
		}
		if len(cp[i].W) != len(mp[i].W) {
			return nil, fmt.Errorf("costmodel: replica param %q has %d weights, model %d", cp[i].Name, len(cp[i].W), len(mp[i].W))
		}
		cp[i].W = mp[i].W // alias canonical weights; G/m/v stay private
	}
	return &replica{model: clone, params: cp}, nil
}

// takeGrads snapshots the replica's accumulated gradients in canonical
// parameter order and zeroes them for the next item. The snapshot is what
// the training loop folds into the canonical model in fixed batch order.
func (r *replica) takeGrads() [][]float32 {
	out := make([][]float32, len(r.params))
	for i, p := range r.params {
		out[i] = append([]float32(nil), p.G...)
		p.ZeroGrad()
	}
	return out
}
