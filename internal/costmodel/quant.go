package costmodel

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"waco/internal/nn"
)

// This file is the int8 predictor head: a quantized twin of the float
// PredictHeadInto path. WACO's ranking loss trains the head for ORDER, not
// absolute runtime, so the serving contract for a quantized head is rank
// fidelity — the Spearman rank-correlation suite in quant_test.go pins the
// quantized scores against the float oracle for every extractor kind. The
// float path remains the default and the ground truth; the quantized path is
// an opt-in throughput lever on the query path (see search.Index).
//
// Split mirrors the float fast path exactly: the first head layer sees
// concat(feature, embedding). The feature half is query-constant and already
// hoisted into InferBuffers.prepare as a float partial; only the embedding
// half of layer 0 — the part that runs once per candidate — and the
// remaining layers are quantized. Stored index embeddings are quantized once
// (per artifact, under EmbScale), so a candidate evaluation is pure int8*int8
// dot products on int32 accumulators plus one float rescale per output
// channel.

// QuantizedHead is the int8 form of a model's predictor head plus the
// calibration constants needed to run it: per-output-channel weight scales
// (inside each nn.QuantizedLinear), the shared embedding input scale, and
// one calibrated activation scale per downstream layer.
type QuantizedHead struct {
	FeatDim int // feature width of the concat input (float half)
	EmbDim  int // embedding width of the concat input (quantized half)

	// L0Emb is the embedding-column half of head layer 0: no bias — the
	// float feature partial from InferBuffers.prepare is the base.
	L0Emb *nn.QuantizedLinear
	// Layers are head layers 1..n fully quantized, with float biases.
	Layers []*nn.QuantizedLinear
	// EmbScale quantizes schedule embeddings (symmetric, per-tensor).
	EmbScale float32
	// ActScales[i] quantizes the (post-ReLU) input of Layers[i].
	ActScales []float32
}

// QuantizeHead builds the int8 head from a trained model with a calibration
// pass: embScale comes from the largest embedding magnitude in embs, and
// each activation scale from the largest post-ReLU activation the float head
// produces over all (feat, emb) calibration pairs. Deterministic in its
// inputs. feats and embs must be non-empty; every feat must have the
// model's feature width and every emb the model's embedding width.
func QuantizeHead(m *Model, feats, embs [][]float32) (*QuantizedHead, error) {
	layers := m.Head.Layers
	if len(layers) == 0 {
		return nil, fmt.Errorf("costmodel: model has no head layers")
	}
	if len(feats) == 0 || len(embs) == 0 {
		return nil, fmt.Errorf("costmodel: quantization calibration needs at least one feature and one embedding")
	}
	l0 := layers[0]
	embDim := m.Cfg.EmbDim
	featDim := l0.In - embDim
	for i, f := range feats {
		if len(f) != featDim {
			return nil, fmt.Errorf("costmodel: calibration feature %d has width %d, head expects %d", i, len(f), featDim)
		}
	}
	embMax := float32(0)
	for i, e := range embs {
		if len(e) != embDim {
			return nil, fmt.Errorf("costmodel: calibration embedding %d has width %d, head expects %d", i, len(e), embDim)
		}
		if a := nn.MaxAbs(e); a > embMax {
			embMax = a
		}
	}
	if embMax == 0 {
		embMax = 1
	}

	q := &QuantizedHead{
		FeatDim:   featDim,
		EmbDim:    embDim,
		L0Emb:     nn.QuantizeLinearCols(l0, featDim, l0.In),
		EmbScale:  embMax / nn.QuantMax,
		ActScales: make([]float32, len(layers)-1),
	}
	for _, l := range layers[1:] {
		q.Layers = append(q.Layers, nn.QuantizeLinear(l))
	}

	// Activation calibration: run the float head over the cross product of
	// calibration features and embeddings, recording the post-ReLU peak that
	// feeds each downstream layer.
	actMax := make([]float32, len(layers)-1)
	b := NewInferBuffers()
	for _, feat := range feats {
		b.Reset()
		b.prepare(m, feat)
		for _, emb := range embs {
			x := make([]float32, l0.Out)
			fd := featDim
			for o := 0; o < l0.Out; o++ {
				row := l0.W.W[o*l0.In+fd : (o+1)*l0.In]
				acc := b.pre[o]
				for j, xj := range emb {
					acc += row[j] * xj
				}
				x[o] = acc
			}
			for li := 1; li < len(layers); li++ {
				nn.ReLUInPlace(x)
				if a := nn.MaxAbs(x); a > actMax[li-1] {
					actMax[li-1] = a
				}
				y := make([]float32, layers[li].Out)
				layers[li].InferInto(y, x)
				x = y
			}
		}
	}
	for i, a := range actMax {
		if a == 0 {
			a = 1
		}
		q.ActScales[i] = a / nn.QuantMax
	}
	return q, nil
}

// Validate checks the head's internal consistency — the gate behind
// LoadQuantizedHead, exercised by FuzzLoadQuantizedHead against truncated,
// oversized, and dimension-mismatched sections.
func (q *QuantizedHead) Validate() error {
	if q.FeatDim < 0 || q.EmbDim <= 0 {
		return fmt.Errorf("costmodel: quantized head dims feat=%d emb=%d", q.FeatDim, q.EmbDim)
	}
	if q.L0Emb == nil {
		return fmt.Errorf("costmodel: quantized head missing layer-0 embedding half")
	}
	if err := q.L0Emb.Validate(); err != nil {
		return err
	}
	if q.L0Emb.B != nil {
		return fmt.Errorf("costmodel: layer-0 embedding half must not carry a bias")
	}
	if q.L0Emb.In != q.EmbDim {
		return fmt.Errorf("costmodel: layer-0 embedding half is %d wide, embeddings are %d", q.L0Emb.In, q.EmbDim)
	}
	if !(q.EmbScale > 0) {
		return fmt.Errorf("costmodel: embedding scale must be positive and finite")
	}
	if len(q.ActScales) != len(q.Layers) {
		return fmt.Errorf("costmodel: %d activation scales for %d quantized layers", len(q.ActScales), len(q.Layers))
	}
	in := q.L0Emb.Out
	for i, l := range q.Layers {
		if l == nil {
			return fmt.Errorf("costmodel: quantized layer %d is nil", i+1)
		}
		if err := l.Validate(); err != nil {
			return fmt.Errorf("costmodel: quantized layer %d: %w", i+1, err)
		}
		if l.B == nil {
			return fmt.Errorf("costmodel: quantized layer %d has no bias", i+1)
		}
		if l.In != in {
			return fmt.Errorf("costmodel: quantized layer %d input %d, previous output %d", i+1, l.In, in)
		}
		if !(q.ActScales[i] > 0) {
			return fmt.Errorf("costmodel: activation scale %d must be positive and finite", i)
		}
		in = l.Out
	}
	if in != 1 {
		return fmt.Errorf("costmodel: quantized head ends in %d outputs, want 1", in)
	}
	return nil
}

// CompatibleWith reports whether the quantized head was built from a head of
// the model's shape — the reload-time check that keeps a sealed quantized
// section from silently serving against a different architecture.
func (q *QuantizedHead) CompatibleWith(m *Model) error {
	layers := m.Head.Layers
	if len(layers) == 0 || q.FeatDim+q.EmbDim != layers[0].In || q.EmbDim != m.Cfg.EmbDim {
		return fmt.Errorf("costmodel: quantized head shaped %d+%d, model head takes %d (+emb %d)",
			q.FeatDim, q.EmbDim, headIn(m), m.Cfg.EmbDim)
	}
	if q.L0Emb.Out != layers[0].Out || len(q.Layers) != len(layers)-1 {
		return fmt.Errorf("costmodel: quantized head has %d downstream layers, model head %d", len(q.Layers), len(layers)-1)
	}
	for i, l := range q.Layers {
		if l.In != layers[i+1].In || l.Out != layers[i+1].Out {
			return fmt.Errorf("costmodel: quantized layer %d is %dx%d, model layer is %dx%d",
				i+1, l.Out, l.In, layers[i+1].Out, layers[i+1].In)
		}
	}
	return nil
}

func headIn(m *Model) int {
	if len(m.Head.Layers) == 0 {
		return 0
	}
	return m.Head.Layers[0].In
}

// QuantizeEmbedding quantizes one schedule embedding under the calibrated
// embedding scale. dst must have EmbDim capacity; the index quantizes every
// stored embedding once at enable time, so query-path candidates cost no
// per-query quantization.
//
//waco:allocfree
func (q *QuantizedHead) QuantizeEmbedding(dst []int8, emb []float32) {
	nn.QuantizeSlice(dst, emb, q.EmbScale)
}

// growI8 returns s resized to n, reallocating only when capacity is short.
// Contents are unspecified; callers overwrite every element.
func growI8(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

// scoreQuantized runs the int8 head on one quantized embedding against the
// prepared float feature partial, allocating nothing in steady state.
//
//waco:allocfree
func (b *InferBuffers) scoreQuantized(q *QuantizedHead, qemb []int8) float64 {
	x := grow(b.hid[0], q.L0Emb.Out)
	b.hid[0] = x
	q.L0Emb.InferInto(x, b.pre, qemb, q.EmbScale)
	cur := 0
	for li, l := range q.Layers {
		xq := growI8(b.qhid, l.In)
		b.qhid = xq
		nn.QuantizeReLUSlice(xq, x, q.ActScales[li])
		y := grow(b.hid[1-cur], l.Out)
		b.hid[1-cur] = y
		l.InferInto(y, l.B, xq, q.ActScales[li])
		x = y
		cur = 1 - cur
	}
	return float64(x[0])
}

// PredictHeadIntoQuantized scores a batch of pre-quantized schedule
// embeddings against one extracted pattern feature on the int8 path — the
// quantized counterpart of PredictHeadInto. The feature half of layer 0 runs
// in float (it is query-constant and shared with the float path's prepare),
// the per-candidate work is int8 dot products with int32 accumulators. Each
// embedding counts as one head evaluation, same as the float path.
//
//waco:allocfree
func (m *Model) PredictHeadIntoQuantized(b *InferBuffers, q *QuantizedHead, feat []float32, qembs [][]int8, out []float64) {
	if len(out) != len(qembs) {
		nn.CheckShape("quantized head batch output", len(out), len(qembs))
	}
	b.prepare(m, feat)
	for i, qe := range qembs {
		out[i] = b.scoreQuantized(q, qe)
	}
	m.headEvals.Add(uint64(len(qembs)))
}

// PredictHeadQuantized scores one quantized embedding (the batch-of-one case
// of PredictHeadIntoQuantized).
//
//waco:allocfree
func (m *Model) PredictHeadQuantized(b *InferBuffers, q *QuantizedHead, feat []float32, qemb []int8) float64 {
	b.prepare(m, feat)
	m.headEvals.Add(1)
	return b.scoreQuantized(q, qemb)
}

// Sealed quantized-head section. The envelope is versioned independently of
// the artifact that carries it, so the quantization scheme can evolve
// without a full artifact format bump.
const (
	quantMagic   = "WACOQNT8"
	quantVersion = uint32(1)
)

// quantDisk is the gob payload after the magic + version header.
type quantDisk struct {
	FeatDim, EmbDim int
	L0Emb           quantLinearDisk
	Layers          []quantLinearDisk
	EmbScale        float32
	ActScales       []float32
}

// quantLinearDisk flattens one quantized layer for gob.
type quantLinearDisk struct {
	In, Out int
	W       []int8
	Scale   []float32
	B       []float32
}

func toDisk(l *nn.QuantizedLinear) quantLinearDisk {
	return quantLinearDisk{In: l.In, Out: l.Out, W: l.W, Scale: l.Scale, B: l.B}
}

func fromDisk(d quantLinearDisk) *nn.QuantizedLinear {
	return &nn.QuantizedLinear{In: d.In, Out: d.Out, W: d.W, Scale: d.Scale, B: d.B}
}

// Save writes the quantized head as a self-contained versioned section:
// sealing it next to the float model means quantized serving needs no
// startup calibration pass.
func (q *QuantizedHead) Save(w io.Writer) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, quantMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, quantVersion); err != nil {
		return err
	}
	d := quantDisk{
		FeatDim:   q.FeatDim,
		EmbDim:    q.EmbDim,
		L0Emb:     toDisk(q.L0Emb),
		EmbScale:  q.EmbScale,
		ActScales: q.ActScales,
	}
	for _, l := range q.Layers {
		d.Layers = append(d.Layers, toDisk(l))
	}
	return gob.NewEncoder(w).Encode(d)
}

// LoadQuantizedHead reads a section written by Save, validating every shape
// before returning — truncated weights, oversized scales, and mismatched
// dims all surface as errors, never panics (FuzzLoadQuantizedHead).
func LoadQuantizedHead(r io.Reader) (*QuantizedHead, error) {
	magic := make([]byte, len(quantMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("costmodel: reading quantized-head magic: %w", err)
	}
	if string(magic) != quantMagic {
		return nil, fmt.Errorf("costmodel: bad quantized-head magic %q", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("costmodel: reading quantized-head version: %w", err)
	}
	if version != quantVersion {
		return nil, fmt.Errorf("costmodel: quantized-head version %d, this build reads %d", version, quantVersion)
	}
	var d quantDisk
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("costmodel: decoding quantized head: %w", err)
	}
	q := &QuantizedHead{
		FeatDim:   d.FeatDim,
		EmbDim:    d.EmbDim,
		L0Emb:     fromDisk(d.L0Emb),
		EmbScale:  d.EmbScale,
		ActScales: d.ActScales,
	}
	for _, l := range d.Layers {
		q.Layers = append(q.Layers, fromDisk(l))
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
