// Package costmodel implements WACO's learned cost model (§4.1): a sparsity
// pattern feature extractor, a SuperSchedule program embedder, and a runtime
// predictor head, trained with the pairwise hinge ranking loss on measured
// (matrix, SuperSchedule, runtime) tuples. Four interchangeable feature
// extractors reproduce the Figure 15 comparison: HumanFeature, DenseConv,
// MinkowskiNet-like, and WACONet.
package costmodel

import (
	"fmt"
	"math/rand"

	"waco/internal/nn"
	"waco/internal/sparseconv"
	"waco/internal/tensor"
)

// Pattern wraps a sparse tensor with lazily built, cached views consumed by
// the different extractors, so a matrix converted once can be scored against
// thousands of schedules. The lazy caches make a Pattern single-goroutine:
// concurrent queries must each wrap their own Pattern (the Model itself is
// read-only during inference; see Model's doc comment).
type Pattern struct {
	COO *tensor.COO

	sm    *sparseconv.SparseMap
	down  map[int]*sparseconv.SparseMap
	human []float32

	// Extracted-feature memo (Model.ExtractInfer): the learned feature vector
	// is as much a deterministic view of the pattern as the sparse map or the
	// human statistics, and repeated queries of one pattern — top-k retrieval
	// plus candidate re-scoring, quantized and float passes over the same
	// matrix — would otherwise re-run the extractor network each time. Keyed
	// by extractor identity so a pattern scored against two models never
	// serves one model the other's features.
	featKey FeatureExtractor
	featVal []float32
}

// NewPattern wraps a tensor.
func NewPattern(c *tensor.COO) *Pattern {
	return &Pattern{COO: c, down: make(map[int]*sparseconv.SparseMap)}
}

// SparseMap returns the raw-coordinate sparse map (cached).
func (p *Pattern) SparseMap() (*sparseconv.SparseMap, error) {
	if p.sm == nil {
		sm, err := sparseconv.FromCOO(p.COO)
		if err != nil {
			return nil, err
		}
		p.sm = sm
	}
	return p.sm, nil
}

// Downsampled returns the gridSize-downsampled map (cached per size).
func (p *Pattern) Downsampled(gridSize int) *sparseconv.SparseMap {
	if d, ok := p.down[gridSize]; ok {
		return d
	}
	d := sparseconv.Downsample(p.COO, gridSize)
	p.down[gridSize] = d
	return d
}

// HumanFeatures returns the hand-crafted statistics vector (cached).
func (p *Pattern) HumanFeatures() []float32 {
	if p.human == nil {
		st := tensor.ComputeStats(p.COO)
		p.human = st.FeatureVector()
	}
	return p.human
}

// FeatureExtractor turns a sparsity pattern into a learned feature vector.
// Extract is the tape path (training); ExtractInfer is the forward-only path
// (serving), which must produce bit-identical values while drawing scratch
// from the arena — the parity tests compare the two element for element.
type FeatureExtractor interface {
	Name() string
	Dim() int
	Extract(t *nn.Tape, p *Pattern) (*nn.Grad, error)
	ExtractInfer(a *nn.Arena, p *Pattern) ([]float32, error)
	Params() []*nn.Param
}

// ExtractorKind names the four Figure 15 alternatives.
type ExtractorKind string

const (
	KindWACONet      ExtractorKind = "waconet"
	KindMinkowski    ExtractorKind = "minkowski"
	KindDenseConv    ExtractorKind = "denseconv"
	KindHumanFeature ExtractorKind = "human"
)

// ExtractorKinds lists all kinds in Figure 15 order.
var ExtractorKinds = []ExtractorKind{KindHumanFeature, KindDenseConv, KindMinkowski, KindWACONet}

// NewExtractor builds an extractor of the given kind. dim is the sparse
// tensor order (2 or 3); cfg sizes the convolutional variants.
func NewExtractor(kind ExtractorKind, cfg sparseconv.Config, rng *rand.Rand) (FeatureExtractor, error) {
	switch kind {
	case KindWACONet:
		return &waconetExtractor{net: sparseconv.NewWACONet(cfg, rng)}, nil
	case KindMinkowski:
		return &minkowskiExtractor{net: sparseconv.NewMinkowskiLike(cfg, rng)}, nil
	case KindDenseConv:
		return newDenseConvExtractor(cfg, rng), nil
	case KindHumanFeature:
		return &humanExtractor{
			mlp: nn.NewMLP("human", []int{tensor.HumanFeatureDim, cfg.OutDim, cfg.OutDim}, rng),
			dim: cfg.OutDim,
		}, nil
	}
	return nil, fmt.Errorf("costmodel: unknown extractor kind %q", kind)
}

type waconetExtractor struct{ net *sparseconv.WACONet }

func (w *waconetExtractor) Name() string        { return string(KindWACONet) }
func (w *waconetExtractor) Dim() int            { return w.net.OutDim() }
func (w *waconetExtractor) Params() []*nn.Param { return w.net.Params() }
func (w *waconetExtractor) Extract(t *nn.Tape, p *Pattern) (*nn.Grad, error) {
	sm, err := p.SparseMap()
	if err != nil {
		return nil, err
	}
	return w.net.Extract(t, cloneForPass(sm)), nil
}
func (w *waconetExtractor) ExtractInfer(a *nn.Arena, p *Pattern) ([]float32, error) {
	sm, err := p.SparseMap()
	if err != nil {
		return nil, err
	}
	// No cloneForPass: the forward pass only reads the cached map's features.
	return w.net.ExtractInfer(a, sm), nil
}

type minkowskiExtractor struct{ net *sparseconv.MinkowskiLike }

func (m *minkowskiExtractor) Name() string        { return string(KindMinkowski) }
func (m *minkowskiExtractor) Dim() int            { return m.net.OutDim() }
func (m *minkowskiExtractor) Params() []*nn.Param { return m.net.Params() }
func (m *minkowskiExtractor) Extract(t *nn.Tape, p *Pattern) (*nn.Grad, error) {
	sm, err := p.SparseMap()
	if err != nil {
		return nil, err
	}
	return m.net.Extract(t, cloneForPass(sm)), nil
}
func (m *minkowskiExtractor) ExtractInfer(a *nn.Arena, p *Pattern) ([]float32, error) {
	sm, err := p.SparseMap()
	if err != nil {
		return nil, err
	}
	return m.net.ExtractInfer(a, sm), nil
}

// denseConvExtractor is the prior-work baseline (§3.2.1): downsample the
// matrix to a fixed grid and run a conventional CNN over it.
type denseConvExtractor struct {
	grid  int
	convs []*sparseconv.Conv
	proj  *nn.MLP
	dim   int
}

func newDenseConvExtractor(cfg sparseconv.Config, rng *rand.Rand) *denseConvExtractor {
	d := &denseConvExtractor{grid: 32, dim: cfg.OutDim}
	cin := 1
	depth := 3
	if cfg.Depth < depth {
		depth = cfg.Depth
	}
	for i := 0; i < depth; i++ {
		d.convs = append(d.convs, sparseconv.NewConv(fmt.Sprintf("dense.conv%d", i), cfg.Dim, cin, cfg.Channels, 3, 2, rng))
		cin = cfg.Channels
	}
	d.proj = nn.NewMLP("dense.proj", []int{cfg.Channels, cfg.OutDim, cfg.OutDim}, rng)
	return d
}

func (d *denseConvExtractor) Name() string { return string(KindDenseConv) }
func (d *denseConvExtractor) Dim() int     { return d.dim }
func (d *denseConvExtractor) Params() []*nn.Param {
	var out []*nn.Param
	for _, c := range d.convs {
		out = append(out, c.Params()...)
	}
	return append(out, d.proj.Params()...)
}
func (d *denseConvExtractor) Extract(t *nn.Tape, p *Pattern) (*nn.Grad, error) {
	x := cloneForPass(p.Downsampled(d.grid))
	for _, c := range d.convs {
		x = sparseconv.ReLUMap(t, c.Apply(t, x))
	}
	return d.proj.Apply(t, sparseconv.GlobalAvgPool(t, x)), nil
}
func (d *denseConvExtractor) ExtractInfer(a *nn.Arena, p *Pattern) ([]float32, error) {
	x := p.Downsampled(d.grid)
	for _, c := range d.convs {
		x = sparseconv.ReLUMapInPlace(c.Infer(a, x))
	}
	pooled := a.Alloc(x.C)
	sparseconv.GlobalAvgPoolInto(pooled, x)
	return d.proj.Infer(a, pooled), nil
}

// humanExtractor feeds the hand-crafted statistics through an MLP.
type humanExtractor struct {
	mlp *nn.MLP
	dim int
}

func (h *humanExtractor) Name() string        { return string(KindHumanFeature) }
func (h *humanExtractor) Dim() int            { return h.dim }
func (h *humanExtractor) Params() []*nn.Param { return h.mlp.Params() }
func (h *humanExtractor) Extract(t *nn.Tape, p *Pattern) (*nn.Grad, error) {
	return h.mlp.Apply(t, nn.NewGrad(append([]float32(nil), p.HumanFeatures()...))), nil
}
func (h *humanExtractor) ExtractInfer(a *nn.Arena, p *Pattern) ([]float32, error) {
	// MLP.Infer never writes its input, so the cached feature vector is safe
	// to feed directly.
	return h.mlp.Infer(a, p.HumanFeatures()), nil
}

// cloneForPass shallow-copies a sparse map so per-pass gradient buffers do
// not accumulate across training steps; coordinates and the site index are
// shared, features are copied.
func cloneForPass(sm *sparseconv.SparseMap) *sparseconv.SparseMap {
	c := sm.ShallowClone()
	return c
}
