package costmodel

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"waco/internal/metrics"
	"waco/internal/parallelism"
	"waco/internal/schedule"
)

// cloneWeights snapshots every parameter tensor.
func cloneWeights(m *Model) [][]float32 {
	ps := m.Params()
	out := make([][]float32, len(ps))
	for i, p := range ps {
		out[i] = append([]float32(nil), p.W...)
	}
	return out
}

// TestTrainWorkersBitIdentical is the training half of the
// parallel-vs-sequential equivalence suite: for a fixed seed and batch
// size, Train with 1, 2, and 8 workers must produce bit-identical weights
// and bit-identical EpochStats. It runs for both losses and for a
// convolutional extractor, whose gradient path covers the sparse-conv
// stack.
func TestTrainWorkersBitIdentical(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 5)
	train, val := ds.Split(0.25, 3)
	if len(train) < 3 || len(val) < 1 {
		t.Fatalf("bad split %d/%d", len(train), len(val))
	}
	for _, tc := range []struct {
		name string
		kind ExtractorKind
		loss LossKind
	}{
		{"rank-human", KindHumanFeature, LossRank},
		{"mse-human", KindHumanFeature, LossMSE},
		{"rank-waconet", KindWACONet, LossRank},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := TrainConfig{Epochs: 2, PairsPerMatrix: 6, LR: 1e-3, Seed: 11,
				Loss: tc.loss, BatchMatrices: 3}

			var wantW [][]float32
			var wantRes TrainResult
			for _, workers := range []int{1, 2, 8} {
				m := tinyModel(t, schedule.SpMM, tc.kind)
				cfg.Workers = workers
				res, err := Train(m, train, val, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				w := cloneWeights(m)
				if wantW == nil {
					wantW, wantRes = w, res
					continue
				}
				if !reflect.DeepEqual(res, wantRes) {
					t.Fatalf("workers=%d: EpochStats diverged:\n%+v\nvs workers=1:\n%+v", workers, res, wantRes)
				}
				for pi := range w {
					for j := range w[pi] {
						if w[pi][j] != wantW[pi][j] {
							t.Fatalf("workers=%d: weight [%d][%d] = %v, workers=1 has %v",
								workers, pi, j, w[pi][j], wantW[pi][j])
						}
					}
				}
			}
		})
	}
}

// TestTrainSameSeedReplays pins replayability under the new sharded RNG
// scheme: two runs with identical config and fresh same-seed models agree
// bit for bit.
func TestTrainSameSeedReplays(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 4)
	cfg := TrainConfig{Epochs: 2, PairsPerMatrix: 8, LR: 1e-3, Seed: 4, Loss: LossRank, BatchMatrices: 4, Workers: 4}
	m1 := tinyModel(t, schedule.SpMM, KindHumanFeature)
	m2 := tinyModel(t, schedule.SpMM, KindHumanFeature)
	r1, err := Train(m1, ds.Entries, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Train(m2, ds.Entries, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed traces differ: %+v vs %+v", r1, r2)
	}
	w1, w2 := cloneWeights(m1), cloneWeights(m2)
	if !reflect.DeepEqual(w1, w2) {
		t.Fatal("same-seed weights differ")
	}
}

// TestTrainSeedChangesResult guards against the shard derivation collapsing
// to a constant: a different seed must observably change training.
func TestTrainSeedChangesResult(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 4)
	run := func(seed int64) TrainResult {
		m := tinyModel(t, schedule.SpMM, KindHumanFeature)
		res, err := Train(m, ds.Entries, nil,
			TrainConfig{Epochs: 2, PairsPerMatrix: 8, LR: 1e-3, Seed: seed, Loss: LossRank, BatchMatrices: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if reflect.DeepEqual(run(1), run(2)) {
		t.Fatal("different seeds produced identical traces; the seed is not reaching the shard streams")
	}
}

// TestTrainContextCancellation: a cancelled context stops training between
// batches and surfaces as the context error.
func TestTrainContextCancellation(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 3)
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := TrainContext(ctx, m, ds.Entries, nil,
		TrainConfig{Epochs: 50, PairsPerMatrix: 8, LR: 1e-3, Seed: 1, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestTrainRecordsPoolMetrics wires the pool instrumentation through a real
// training run.
func TestTrainRecordsPoolMetrics(t *testing.T) {
	ds := tinyDataset(t, schedule.SpMM, 3)
	train, val := ds.Entries[:2], ds.Entries[2:]
	pm := parallelism.NewMetrics(metrics.NewRegistry())
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	cfg := TrainConfig{Epochs: 2, PairsPerMatrix: 4, LR: 1e-3, Seed: 1, BatchMatrices: 2, Workers: 2, Metrics: pm}
	if _, err := Train(m, train, val, cfg); err != nil {
		t.Fatal(err)
	}
	if got := pm.PhaseItems(parallelism.PhaseTrain); got != 4 {
		t.Fatalf("train phase items %v, want 4 (2 epochs x 2 matrices)", got)
	}
	if got := pm.PhaseItems(parallelism.PhaseEval); got != 2 {
		t.Fatalf("eval phase items %v, want 2 (2 epochs x 1 val matrix)", got)
	}
	if pm.PhaseWallSeconds(parallelism.PhaseTrain) <= 0 {
		t.Fatal("train phase wall seconds not recorded")
	}
}
