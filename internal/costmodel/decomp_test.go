package costmodel

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"waco/internal/generate"
	"waco/internal/schedule"
)

// legacySpace strips the decomposition dimension the way a gob-decoded
// pre-decomposition artifact arrives: the DecompChoices field simply absent
// (nil). Everything downstream — CatSizes, encoding, samplers — must treat
// such a space exactly as before the dimension existed.
func legacySpace(alg schedule.Algorithm) schedule.Space {
	sp := schedule.DefaultSpace(alg)
	sp.DecompChoices = nil
	return sp
}

// TestLegacySpaceEncodingUnchanged pins artifact compatibility: a legacy
// space must produce the pre-decomposition categorical layout, so model
// snapshots saved before the decomposition dimension restore parameter-for-
// parameter (the embedder's emb.catN tables and emb.fuse input width are
// derived from CatSizes).
func TestLegacySpaceEncodingUnchanged(t *testing.T) {
	for _, alg := range []schedule.Algorithm{schedule.SpMV, schedule.SpMM, schedule.SDDMM, schedule.MTTKRP} {
		legacy := legacySpace(alg)
		modern := schedule.DefaultSpace(alg)
		lc, mc := legacy.CatSizes(), modern.CatSizes()
		if schedule.SupportsDecomposition(alg) {
			if len(mc) != len(lc)+1 {
				t.Fatalf("%v: modern space has %d categories, legacy %d — want exactly one more", alg, len(mc), len(lc))
			}
		} else if len(mc) != len(lc) {
			t.Fatalf("%v: unsupported algorithm grew a decomposition category", alg)
		}
		for i := range lc {
			if lc[i] != mc[i] {
				t.Fatalf("%v: category %d size %d, legacy %d — legacy prefix must be stable", alg, i, mc[i], lc[i])
			}
		}
		rng := rand.New(rand.NewSource(9))
		ss := legacy.Sample(rng)
		if ss.Decomp != schedule.DecompNone {
			t.Fatalf("%v: legacy space sampled decomposition %v", alg, ss.Decomp)
		}
		if got := len(legacy.Encode(ss).Cats); got != len(lc) {
			t.Fatalf("%v: legacy encoding has %d cats, CatSizes says %d", alg, got, len(lc))
		}
	}
}

// TestLegacyModelSnapshotLoads saves a model built on a legacy space and
// loads it with today's code: restoreParams matches by name, so a missing
// emb.catN or a differently-shaped emb.fuse would fail here.
func TestLegacyModelSnapshotLoads(t *testing.T) {
	cfg := Config{Extractor: KindHumanFeature, ConvCfg: tinyConvCfg(2), EmbDim: 12, HeadDims: []int{16}, Seed: 5}
	m, err := New(legacySpace(schedule.SpMM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	p := NewPattern(generate.Uniform(rng, 40, 40, 160))
	ss := schedule.DefaultSchedule(schedule.SpMM, 2)
	want, err := m.Cost(p, ss)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	got, err := loaded.Cost(NewPattern(p.COO), ss)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-got) > 1e-9 {
		t.Fatalf("legacy snapshot prediction drifted: %g vs %g", got, want)
	}
	// A legacy model can still score decomposed schedules — the encoder
	// snaps the unknown choice to index 0 rather than faulting.
	dec := ss.Clone()
	dec.Decomp = schedule.DecompFull
	if _, err := loaded.Cost(NewPattern(p.COO), dec); err != nil {
		t.Fatalf("legacy model rejected a decomposed schedule: %v", err)
	}
}

// TestEmbedderDistinguishesDecomposition: the tuner can only learn the
// decomposition choice if schedules differing solely in it embed apart.
func TestEmbedderDistinguishesDecomposition(t *testing.T) {
	sp := schedule.DefaultSpace(schedule.SpMM)
	rng := rand.New(rand.NewSource(7))
	e := NewEmbedder(sp, 16, rng)
	base := schedule.DefaultSchedule(schedule.SpMM, 2)
	prev := e.EmbedSchedule(nil, base)
	for _, dec := range schedule.Decompositions[1:] {
		ss := base.Clone()
		ss.Decomp = dec
		cur := e.EmbedSchedule(nil, ss)
		var diff float64
		for i := range prev.V {
			diff += math.Abs(float64(cur.V[i] - prev.V[i]))
		}
		if diff == 0 {
			t.Fatalf("%v embeds identically to the previous choice", dec)
		}
		prev = cur
	}
}

// TestModernModelRoundTripWithDecomp pins that the widened space itself
// save/loads, so new artifacts are stable going forward.
func TestModernModelRoundTripWithDecomp(t *testing.T) {
	cfg := Config{Extractor: KindHumanFeature, ConvCfg: tinyConvCfg(2), EmbDim: 12, HeadDims: []int{16}, Seed: 8}
	m, err := New(schedule.DefaultSpace(schedule.SDDMM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Space.DecompChoices) != len(schedule.DecompositionChoices(schedule.SDDMM)) {
		t.Fatalf("decomposition choices lost in round trip: %v", loaded.Space.DecompChoices)
	}
}
