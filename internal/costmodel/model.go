package costmodel

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync/atomic"

	"waco/internal/nn"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
)

// Model is WACO's cost model (Figure 6): feature extractor + program
// embedder + runtime predictor head. Predictions are unitless costs trained
// only for ranking, not absolute runtime.
//
// Concurrency: inference (any Predict/Cost call with a nil *nn.Tape) only
// reads parameter weights — layers allocate fresh output buffers and a nil
// tape records no backward closures — so one Model serves concurrent
// queries safely, which is what internal/serve relies on. Training mutates
// weights and gradients and must not overlap with inference. A Pattern is
// NOT safe for concurrent use (it caches converted views lazily); give each
// goroutine its own.
type Model struct {
	Space     schedule.Space
	Cfg       Config
	Extractor FeatureExtractor
	Embedder  *Embedder
	Head      *nn.MLP

	// headEvals counts predictor-head forward passes over the model's
	// lifetime (atomic; not persisted). It is the ground truth behind the
	// §5.4 "evals" breakdown: the search layer's per-query counts must add
	// up to deltas of this counter, which tests and the metrics exporter
	// both rely on.
	headEvals atomic.Uint64
}

// Config sizes a cost model.
type Config struct {
	Extractor ExtractorKind
	ConvCfg   sparseconv.Config
	EmbDim    int
	HeadDims  []int // hidden widths of the predictor head
	Seed      int64
}

// DefaultConfig is the reduced-scale model for the given algorithm.
func DefaultConfig(alg schedule.Algorithm) Config {
	return Config{
		Extractor: KindWACONet,
		ConvCfg:   sparseconv.DefaultConfig(alg.SparseOrder()),
		EmbDim:    32,
		HeadDims:  []int{64, 32},
		Seed:      1,
	}
}

// New builds a cost model for the search space.
func New(space schedule.Space, cfg Config) (*Model, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ex, err := NewExtractor(cfg.Extractor, cfg.ConvCfg, rng)
	if err != nil {
		return nil, err
	}
	emb := NewEmbedder(space, cfg.EmbDim, rng)
	dims := append([]int{ex.Dim() + cfg.EmbDim}, cfg.HeadDims...)
	dims = append(dims, 1)
	return &Model{
		Space:     space,
		Cfg:       cfg,
		Extractor: ex,
		Embedder:  emb,
		Head:      nn.NewMLP("head", dims, rng),
	}, nil
}

// namedParam is one parameter tensor in a serialized model. Weights are
// persisted as a name-sorted slice, not a map: gob writes map entries in
// Go's randomized iteration order, which made saving the same weights
// produce different bytes on every run and broke byte-level comparison of
// model files and sealed artifacts.
type namedParam struct {
	Name string
	W    []float32
}

// sortedParams flattens the model's parameters into name order, rejecting
// duplicate names (which would silently lose weights on load).
func (m *Model) sortedParams() ([]namedParam, error) {
	ps := m.Params()
	seen := make(map[string]bool, len(ps))
	out := make([]namedParam, 0, len(ps))
	for _, p := range ps {
		if seen[p.Name] {
			return nil, fmt.Errorf("costmodel: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
		out = append(out, namedParam{Name: p.Name, W: p.W})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// restoreParams copies saved weights into the model's parameters by name.
func (m *Model) restoreParams(saved []namedParam, what string) error {
	byName := make(map[string][]float32, len(saved))
	for _, np := range saved {
		byName[np.Name] = np.W
	}
	for _, p := range m.Params() {
		w, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("costmodel: %s missing parameter %q", what, p.Name)
		}
		if len(w) != len(p.W) {
			return fmt.Errorf("costmodel: %s parameter %q has %d weights, model expects %d", what, p.Name, len(w), len(p.W))
		}
		copy(p.W, w)
	}
	return nil
}

// snapshot is the serialized form of a model: enough to reconstruct the
// architecture plus all weights.
type snapshot struct {
	Space  schedule.Space
	Cfg    Config
	Params []namedParam
}

// Save serializes the model's architecture configuration and weights.
// Identical weights always serialize to identical bytes, so model files and
// sealed artifacts can be compared with cmp/sha256 across runs and worker
// counts.
func (m *Model) Save(w io.Writer) error {
	params, err := m.sortedParams()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(snapshot{Space: m.Space, Cfg: m.Cfg, Params: params})
}

// Clone deep-copies the model through its own serialization: the copy can
// fine-tune without touching the original's weights (the online learning
// loop clones the incumbent before retraining a candidate).
func (m *Model) Clone() (*Model, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return LoadModel(&buf)
}

// LoadModel reconstructs a model saved by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, err
	}
	m, err := New(s.Space, s.Cfg)
	if err != nil {
		return nil, err
	}
	if err := m.restoreParams(s.Params, "snapshot"); err != nil {
		return nil, err
	}
	return m, nil
}

// Params returns every trainable parameter.
func (m *Model) Params() []*nn.Param {
	out := m.Extractor.Params()
	out = append(out, m.Embedder.Params()...)
	return append(out, m.Head.Params()...)
}

// PredictWith scores a schedule embedding against an already extracted
// pattern feature. During search the pattern feature is computed once and
// reused for every candidate (§5.4, "search time breakdown").
func (m *Model) PredictWith(t *nn.Tape, feat *nn.Grad, emb *nn.Grad) *nn.Grad {
	m.headEvals.Add(1)
	return m.Head.Apply(t, nn.Concat(t, feat, emb))
}

// HeadEvals returns the lifetime number of predictor-head evaluations.
func (m *Model) HeadEvals() uint64 { return m.headEvals.Load() }

// Predict scores one (pattern, schedule) pair end to end.
func (m *Model) Predict(t *nn.Tape, p *Pattern, ss *schedule.SuperSchedule) (*nn.Grad, error) {
	feat, err := m.Extractor.Extract(t, p)
	if err != nil {
		return nil, err
	}
	return m.PredictWith(t, feat, m.Embedder.EmbedSchedule(t, ss)), nil
}

// Cost returns the scalar predicted cost in inference mode. It runs on the
// forward-only path with pooled scratch; predictions are bit-identical to
// Predict with a nil tape (pinned by the inference parity tests).
func (m *Model) Cost(p *Pattern, ss *schedule.SuperSchedule) (float64, error) {
	b := GetInferBuffers()
	defer PutInferBuffers(b)
	return m.CostWith(b, p, ss)
}

// SaveParams writes all parameter tensors (gob of name-sorted weights,
// byte-deterministic like Save). Only weights are persisted; optimizer
// state is not.
func (m *Model) SaveParams(w io.Writer) error {
	params, err := m.sortedParams()
	if err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(params)
}

// LoadParams restores weights saved by SaveParams into an identically
// configured model.
func (m *Model) LoadParams(r io.Reader) error {
	var params []namedParam
	if err := gob.NewDecoder(r).Decode(&params); err != nil {
		return err
	}
	return m.restoreParams(params, "saved model")
}
