package costmodel

import (
	"fmt"
	"math"
	"sort"

	"waco/internal/dataset"
)

// Ranks assigns average ranks (ties share the mean of their positions), the
// standard preprocessing for Spearman correlation.
func Ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && v[idx[j]] == v[idx[i]] { //waco:nolint floatcmp -- rank ties are defined by exact equality; nearly-equal values are distinct ranks by design
			j++
		}
		avg := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			r[idx[k]] = avg
		}
		i = j
	}
	return r
}

// Spearman computes the Spearman rank correlation between two score vectors.
// It returns 0 when either vector is constant (order is undefined). WACO's
// ranking loss means only candidate ORDER matters, so this is the repo's
// universal quality metric: the quantized-head fidelity gate, the retrain
// promotion gate, and the transfer-budget experiment all report it.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := Ranks(a), Ranks(b)
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= float64(len(ra))
	mb /= float64(len(rb))
	var num, da, db float64
	for i := range ra {
		x, y := ra[i]-ma, rb[i]-mb
		num += x * y
		da += x * x
		db += y * y
	}
	if da == 0 || db == 0 {
		return 0
	}
	return num / math.Sqrt(da*db)
}

// RankQuality scores how well the model orders measured schedules: for every
// entry with at least three samples it predicts a cost per sampled schedule
// and correlates predictions against measured runtimes, returning the
// sample-weighted mean Spearman over all rankable entries. This is the
// promotion-gate metric cmd/waco-retrain uses — candidate and incumbent are
// both scored on the same held-out obslog slice and the candidate must not
// rank worse.
func RankQuality(m *Model, entries []*dataset.Entry) (float64, error) {
	b := NewInferBuffers()
	var weighted float64
	var weight int
	for _, e := range entries {
		if len(e.Samples) < 3 {
			continue // two points always correlate perfectly; no signal
		}
		b.Reset()
		feat, err := m.ExtractInfer(b, NewPattern(e.COO))
		if err != nil {
			continue // unscorable entry contributes nothing, as in search
		}
		feat = append([]float32(nil), feat...)
		preds := make([]float64, len(e.Samples))
		secs := make([]float64, len(e.Samples))
		embs := make([][]float32, len(e.Samples))
		for i := range e.Samples {
			b.Reset()
			embs[i] = append([]float32(nil), m.EmbedScheduleInfer(b, e.Samples[i].SS)...)
			secs[i] = e.Samples[i].Seconds
		}
		b.Reset()
		m.PredictHeadInto(b, feat, embs, preds)
		rho := Spearman(preds, secs)
		weighted += rho * float64(len(e.Samples))
		weight += len(e.Samples)
	}
	if weight == 0 {
		return 0, fmt.Errorf("costmodel: no rankable entries (need >= 3 samples per entry)")
	}
	return weighted / float64(weight), nil
}

// QuantRankFidelity correlates the float and int8 heads over the entries'
// measured schedules, sample-weighted like RankQuality. A candidate sealed
// with -quantize must keep this at or above the established 0.98 gate: a
// fine-tune that moves the weights outside the calibrated quantization range
// would silently degrade every quantized serving query.
func QuantRankFidelity(m *Model, q *QuantizedHead, entries []*dataset.Entry) (float64, error) {
	if err := q.CompatibleWith(m); err != nil {
		return 0, err
	}
	b := NewInferBuffers()
	var weighted float64
	var weight int
	for _, e := range entries {
		if len(e.Samples) < 3 {
			continue
		}
		b.Reset()
		feat, err := m.ExtractInfer(b, NewPattern(e.COO))
		if err != nil {
			continue
		}
		feat = append([]float32(nil), feat...)
		embs := make([][]float32, len(e.Samples))
		qembs := make([][]int8, len(e.Samples))
		for i := range e.Samples {
			b.Reset()
			embs[i] = append([]float32(nil), m.EmbedScheduleInfer(b, e.Samples[i].SS)...)
			qembs[i] = make([]int8, len(embs[i]))
			q.QuantizeEmbedding(qembs[i], embs[i])
		}
		flt := make([]float64, len(embs))
		qnt := make([]float64, len(embs))
		b.Reset()
		m.PredictHeadInto(b, feat, embs, flt)
		m.PredictHeadIntoQuantized(b, q, feat, qembs, qnt)
		rho := Spearman(flt, qnt)
		weighted += rho * float64(len(e.Samples))
		weight += len(e.Samples)
	}
	if weight == 0 {
		return 0, fmt.Errorf("costmodel: no rankable entries for quantized fidelity")
	}
	return weighted / float64(weight), nil
}
