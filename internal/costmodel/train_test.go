package costmodel

import (
	"bytes"
	"testing"

	"waco/internal/dataset"
	"waco/internal/schedule"
)

// syntheticEntries builds dataset entries with controlled runtimes so loss
// behavior can be asserted without measurement noise.
func syntheticEntries(t *testing.T, n int) []*dataset.Entry {
	t.Helper()
	ds := tinyDataset(t, schedule.SpMM, n)
	return ds.Entries
}

func TestMinRatioFiltersClosePairs(t *testing.T) {
	entries := syntheticEntries(t, 3)
	// Force every sample of an entry to nearly identical runtimes: with
	// MinRatio 1.5 no pair qualifies and the rank loss contributes nothing.
	for _, e := range entries {
		for i := range e.Samples {
			e.Samples[i].Seconds = 1.0 + 1e-9*float64(i)
		}
	}
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	cfg := TrainConfig{Epochs: 2, PairsPerMatrix: 16, LR: 1e-3, Seed: 1, Loss: LossRank, MinRatio: 1.5}
	res, err := Train(m, entries, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ep := range res.Epochs {
		if ep.TrainLoss != 0 {
			t.Fatalf("filtered training produced loss %g", ep.TrainLoss)
		}
	}
}

func TestTrainVerboseCallback(t *testing.T) {
	entries := syntheticEntries(t, 2)
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	var lines int
	cfg := TrainConfig{Epochs: 3, PairsPerMatrix: 4, LR: 1e-3, Seed: 1, Loss: LossRank,
		Verbose: func(string) { lines++ }}
	if _, err := Train(m, entries, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if lines != 3 {
		t.Fatalf("verbose called %d times, want 3", lines)
	}
}

func TestTrainSkipsSingleSampleEntries(t *testing.T) {
	entries := syntheticEntries(t, 2)
	for _, e := range entries {
		e.Samples = e.Samples[:1]
	}
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	res, err := Train(m, entries, nil, TrainConfig{Epochs: 1, PairsPerMatrix: 4, LR: 1e-3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs[0].TrainLoss != 0 {
		t.Fatal("single-sample entries should contribute no loss")
	}
}

func TestPairAccuracyNoComparablePairs(t *testing.T) {
	entries := syntheticEntries(t, 1)
	for _, e := range entries {
		for i := range e.Samples {
			e.Samples[i].Seconds = 2.0 // all identical: no pair differs by >=10%
		}
	}
	m := tinyModel(t, schedule.SpMM, KindHumanFeature)
	if _, err := PairAccuracy(m, entries, 10, 1); err == nil {
		t.Fatal("expected error when no pairs are comparable")
	}
}

func TestModelSnapshotRoundTrip(t *testing.T) {
	m := tinyModel(t, schedule.SpMM, KindWACONet)
	entries := syntheticEntries(t, 2)
	p := NewPattern(entries[0].COO)
	ss := entries[0].Samples[0].SS
	before, err := m.Cost(p, ss)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	after, err := back.Cost(NewPattern(entries[0].COO), ss)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("snapshot changed prediction: %g vs %g", before, after)
	}
}
