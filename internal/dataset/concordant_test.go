package dataset

import (
	"math/rand"
	"testing"

	"waco/internal/schedule"
)

// concordantKey reports whether a schedule's loop order follows its format's
// level order exactly.
func isConcordant(ss *schedule.SuperSchedule) bool {
	for i, l := range ss.AFormat.Levels {
		v := ss.ComputeOrder[i]
		if v.Mode != l.Mode || v.Inner != l.Inner {
			return false
		}
	}
	return true
}

func TestConcordantFracMixesSamples(t *testing.T) {
	cfg := quickCfg(schedule.SpMM)
	cfg.SchedulesPerMatrix = 60
	cfg.ConcordantFrac = 0.5
	cfg.Dedup = false
	rng := rand.New(rand.NewSource(17))
	m := smallCorpus(1)[0]
	entry, err := CollectEntry(m, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	concordant := 0
	for _, s := range entry.Samples {
		if isConcordant(s.SS) {
			concordant++
		}
	}
	// Roughly half the samples should be concordant (allowing for the
	// hoisted-parallel variant, which breaks exact concordance, and random
	// samples that happen to be concordant).
	if concordant < len(entry.Samples)/5 {
		t.Fatalf("only %d/%d concordant samples with frac 0.5", concordant, len(entry.Samples))
	}

	cfg.ConcordantFrac = 0
	rng = rand.New(rand.NewSource(18))
	entry0, err := CollectEntry(m, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	concordant0 := 0
	for _, s := range entry0.Samples {
		if isConcordant(s.SS) {
			concordant0++
		}
	}
	if concordant0 >= concordant {
		t.Fatalf("uniform sampling produced %d concordant vs %d stratified", concordant0, concordant)
	}
}

func TestCollectEntryRespectsMaxWork(t *testing.T) {
	cfg := quickCfg(schedule.SpMM)
	cfg.MaxWork = 1 // everything excluded statically
	rng := rand.New(rand.NewSource(19))
	entry, err := CollectEntry(smallCorpus(1)[0], cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(entry.Samples) != 0 {
		t.Fatalf("MaxWork=1 still collected %d samples", len(entry.Samples))
	}
}
