package dataset

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

func smallCorpus(n int) []generate.Matrix {
	cfg := generate.DefaultCorpusConfig()
	cfg.Count = n
	cfg.MinDim = 64
	cfg.MaxDim = 192
	cfg.MaxNNZ = 3000
	return generate.Corpus(cfg)
}

func quickCfg(alg schedule.Algorithm) CollectConfig {
	cfg := DefaultCollectConfig(alg)
	cfg.SchedulesPerMatrix = 6
	cfg.Repeats = 1
	cfg.DenseN = 8
	sp := schedule.DefaultSpace(alg)
	sp.SplitChoices = []int32{1, 2, 4, 8}
	sp.ThreadChoices = []int{1, 2}
	cfg.Space = sp
	return cfg
}

func TestCollectSpMM(t *testing.T) {
	ds, err := Collect(smallCorpus(5), quickCfg(schedule.SpMM))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Entries) == 0 {
		t.Fatal("no entries collected")
	}
	if ds.NumSamples() == 0 {
		t.Fatal("no samples collected")
	}
	for _, e := range ds.Entries {
		for _, s := range e.Samples {
			if s.Seconds <= 0 {
				t.Fatalf("%s: non-positive runtime %g", e.Name, s.Seconds)
			}
			if s.Bytes <= 0 {
				t.Fatalf("%s: non-positive bytes", e.Name)
			}
			if err := s.SS.Validate(); err != nil {
				t.Fatalf("%s: invalid schedule in dataset: %v", e.Name, err)
			}
		}
	}
}

func TestCollectSkipsWrongOrder(t *testing.T) {
	ds, err := Collect(smallCorpus(3), quickCfg(schedule.MTTKRP))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Entries) != 0 {
		t.Fatal("collected 2-D matrices for MTTKRP")
	}
}

func TestCollectMTTKRP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := generate.Uniform(rng, 48, 48, 300)
	t3 := generate.Tensor3D(rng, base, 16, 2)
	cfg := quickCfg(schedule.MTTKRP)
	cfg.DenseN = 4
	ds, err := Collect([]generate.Matrix{{Name: "t3", Family: "synthetic", COO: t3}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() == 0 {
		t.Fatal("no 3-D samples")
	}
}

func TestSlowLimitExcludes(t *testing.T) {
	cfg := quickCfg(schedule.SpMM)
	cfg.SlowLimit = time.Nanosecond // everything is too slow
	ds, err := Collect(smallCorpus(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 0 {
		t.Fatalf("slow limit failed: %d samples", ds.NumSamples())
	}
}

func TestStorageLimitExcludes(t *testing.T) {
	cfg := quickCfg(schedule.SpMM)
	cfg.MaxEntries = 10 // nothing fits
	ds, err := Collect(smallCorpus(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 0 {
		t.Fatalf("storage limit failed: %d samples", ds.NumSamples())
	}
}

func TestSplit(t *testing.T) {
	ds := &Dataset{}
	for i := 0; i < 10; i++ {
		ds.Entries = append(ds.Entries, &Entry{Name: string(rune('a' + i))})
	}
	train, val := ds.Split(0.2, 42)
	if len(val) != 2 || len(train) != 8 {
		t.Fatalf("split %d/%d", len(train), len(val))
	}
	// Deterministic.
	t2, v2 := ds.Split(0.2, 42)
	for i := range val {
		if val[i].Name != v2[i].Name {
			t.Fatal("split not deterministic")
		}
	}
	for i := range train {
		if train[i].Name != t2[i].Name {
			t.Fatal("split not deterministic")
		}
	}
	// No overlap.
	seen := map[string]bool{}
	for _, e := range train {
		seen[e.Name] = true
	}
	for _, e := range val {
		if seen[e.Name] {
			t.Fatal("entry in both splits")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds, err := Collect(smallCorpus(3), quickCfg(schedule.SpMM))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != ds.NumSamples() || len(back.Entries) != len(ds.Entries) {
		t.Fatal("round trip changed sample counts")
	}
	if back.Alg != ds.Alg {
		t.Fatal("round trip changed algorithm")
	}
	for i, e := range back.Entries {
		if e.COO.NNZ() != ds.Entries[i].COO.NNZ() {
			t.Fatal("round trip changed matrices")
		}
		for j, s := range e.Samples {
			if s.SS.String() != ds.Entries[i].Samples[j].SS.String() {
				t.Fatal("round trip changed schedules")
			}
		}
	}
}

func TestDedupAvoidsRepeats(t *testing.T) {
	cfg := quickCfg(schedule.SpMM)
	cfg.SchedulesPerMatrix = 40
	cfg.Space.SplitChoices = []int32{1} // tiny space to force collisions
	cfg.Space.ThreadChoices = []int{1}
	cfg.Space.ChunkChoices = []int{8}
	rng := rand.New(rand.NewSource(9))
	m := smallCorpus(1)[0]
	entry, err := CollectEntry(m, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range entry.Samples {
		k := s.SS.String()
		if seen[k] {
			t.Fatalf("duplicate schedule %s", k)
		}
		seen[k] = true
	}
}

func TestMeasureSampleProfileRespected(t *testing.T) {
	m := smallCorpus(1)[0]
	wl, err := kernel.NewWorkload(schedule.SpMM, m.COO, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(schedule.SpMM)
	cfg.Profile = kernel.MachineProfile{Name: "uni", ThreadCap: 1}
	ss := schedule.DefaultSchedule(schedule.SpMM, 8)
	s, ok, err := MeasureSample(wl, ss, cfg)
	if err != nil || !ok {
		t.Fatalf("measure: ok=%v err=%v", ok, err)
	}
	if s.Seconds <= 0 {
		t.Fatal("bad runtime")
	}
}
