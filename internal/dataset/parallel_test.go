package dataset

import (
	"context"
	"errors"
	"testing"

	"waco/internal/kernel"
	"waco/internal/metrics"
	"waco/internal/parallelism"
	"waco/internal/schedule"
)

// TestCollectWorkersSameSchedules is the collection part of the equivalence
// suite. Measured runtimes are hardware noise and can never be pinned, but
// everything else — which matrices survive, in what order, and which
// schedules were sampled and kept for each — must be identical for every
// worker count, because each matrix owns a (Seed, corpus position) stream.
func TestCollectWorkersSameSchedules(t *testing.T) {
	mats := smallCorpus(6)
	cfg := quickCfg(schedule.SpMM)
	cfg.SlowLimit = 0 // timing-dependent exclusions would differ across runs

	type shape struct {
		name   string
		scheds []string
		bytes  []int64
	}
	var want []shape
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		ds, err := Collect(mats, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var got []shape
		for _, e := range ds.Entries {
			s := shape{name: e.Name}
			for _, smp := range e.Samples {
				s.scheds = append(s.scheds, smp.SS.String())
				s.bytes = append(s.bytes, smp.Bytes)
			}
			got = append(got, s)
		}
		if want == nil {
			want = got
			if len(want) == 0 {
				t.Fatal("sequential collection produced no entries")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d entries, sequential had %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i].name != want[i].name {
				t.Fatalf("workers=%d: entry %d is %s, sequential had %s", workers, i, got[i].name, want[i].name)
			}
			if len(got[i].scheds) != len(want[i].scheds) {
				t.Fatalf("workers=%d: %s has %d samples, sequential had %d",
					workers, got[i].name, len(got[i].scheds), len(want[i].scheds))
			}
			for j := range got[i].scheds {
				if got[i].scheds[j] != want[i].scheds[j] || got[i].bytes[j] != want[i].bytes[j] {
					t.Fatalf("workers=%d: %s sample %d = (%s, %d bytes), sequential had (%s, %d bytes)",
						workers, got[i].name, j, got[i].scheds[j], got[i].bytes[j],
						want[i].scheds[j], want[i].bytes[j])
				}
			}
		}
	}
}

// TestCollectCancellation: a cancelled context aborts collection.
func TestCollectCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickCfg(schedule.SpMM)
	cfg.Workers = 2
	if _, err := CollectContext(ctx, smallCorpus(3), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCollectRecordsMetrics wires both instrument families through a real
// collection: the pool's "collect" phase and the per-measurement kernel
// counters.
func TestCollectRecordsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	cfg := quickCfg(schedule.SpMM)
	cfg.Workers = 2
	cfg.PoolMetrics = parallelism.NewMetrics(reg)
	cfg.KernelMetrics = kernel.NewMetrics(reg)
	ds, err := Collect(smallCorpus(3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.PoolMetrics.PhaseItems(parallelism.PhaseCollect); got != 3 {
		t.Fatalf("collect phase items %v, want 3", got)
	}
	if cfg.PoolMetrics.PhaseWallSeconds(parallelism.PhaseCollect) <= 0 {
		t.Fatal("collect phase wall seconds not recorded")
	}
	if ds.NumSamples() > 0 && cfg.KernelMetrics.Measurements.Value() == 0 {
		t.Fatal("kernel measurements not recorded through CollectConfig.KernelMetrics")
	}
}
