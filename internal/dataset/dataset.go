// Package dataset implements WACO's training-data pipeline (§4.1.3): for
// each matrix in a corpus, sample SuperSchedules uniformly from the search
// space, execute each on the kernel substrate, and record the median
// wall-clock runtime, producing (sparse matrix, SuperSchedule, ground-truth
// runtime) tuples. Configurations whose formats blow past the storage budget
// or whose first run exceeds the slow-run limit are excluded, mirroring the
// paper's exclusion of >1-minute configurations.
package dataset

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"time"

	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/parallelism"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// Sample is one measured (SuperSchedule, runtime) pair.
type Sample struct {
	SS      *schedule.SuperSchedule
	Seconds float64
	Bytes   int64 // assembled storage footprint
}

// Entry groups the samples measured on one matrix.
type Entry struct {
	Name    string
	Family  string
	COO     *tensor.COO
	Samples []Sample
}

// Dataset is a collection of measured tuples for one algorithm.
type Dataset struct {
	Alg     schedule.Algorithm
	DenseN  int
	Profile kernel.MachineProfile
	Entries []*Entry
}

// CollectConfig controls data generation.
type CollectConfig struct {
	Alg                schedule.Algorithm
	Space              schedule.Space
	SchedulesPerMatrix int
	Repeats            int // runs per measurement; the median is recorded
	Seed               int64
	DenseN             int
	MaxEntries         int64         // per-array assembly budget
	SlowLimit          time.Duration // exclude configurations slower than this (0 = no limit)
	// MaxWork excludes plans whose statically estimated body-visit count
	// exceeds it before running them (0 = kernel.DefaultWorkLimit). This is
	// the static half of the paper's >1-minute exclusion: a pathological
	// discordant plan cannot be interrupted mid-run, so it must be rejected
	// up front.
	MaxWork float64
	Profile kernel.MachineProfile
	// Dedup drops repeated SuperSchedules sampled for the same matrix.
	Dedup bool
	// ConcordantFrac is the fraction of samples drawn with a traversal
	// concordant with the sampled format (see Space.SampleConcordant).
	ConcordantFrac float64

	// Workers bounds the per-matrix measurement fan-out (<1 = one per CPU).
	// Every matrix draws its schedules from a private stream derived from
	// (Seed, corpus position), so the collected dataset is identical for
	// every worker count — though measured runtimes are always hardware
	// noise, and concurrent measurement adds contention noise on top (see
	// DESIGN.md); use Workers=1 when measurement fidelity matters more than
	// collection speed.
	Workers int
	// PoolMetrics, when non-nil, records the fan-out under the "collect"
	// phase of the pool instruments. Never persisted.
	PoolMetrics *parallelism.Metrics
	// KernelMetrics, when non-nil, is attached to every workload so each
	// measurement is recorded. Never persisted.
	KernelMetrics *kernel.Metrics
}

// DefaultCollectConfig returns reduced-scale defaults: 24 schedules per
// matrix, 5 repetitions, 100 ms slow-run limit.
func DefaultCollectConfig(alg schedule.Algorithm) CollectConfig {
	denseN := 0
	switch alg {
	case schedule.SpMM, schedule.SDDMM:
		denseN = 32
	case schedule.MTTKRP:
		denseN = 16
	}
	return CollectConfig{
		Alg:                alg,
		Space:              schedule.DefaultSpace(alg),
		SchedulesPerMatrix: 24,
		Repeats:            5,
		Seed:               1,
		DenseN:             denseN,
		MaxEntries:         0, // format.DefaultMaxEntries
		SlowLimit:          100 * time.Millisecond,
		Profile:            kernel.DefaultProfile(),
		Dedup:              true,
		ConcordantFrac:     0.34,
	}
}

// Collect measures cfg.SchedulesPerMatrix sampled SuperSchedules on every
// matrix. Matrices whose order does not match the algorithm are skipped.
func Collect(matrices []generate.Matrix, cfg CollectConfig) (*Dataset, error) {
	return CollectContext(context.Background(), matrices, cfg)
}

// CollectContext is Collect with cancellation and a worker pool: eligible
// matrices are measured concurrently, each drawing schedules from its own
// rand stream keyed by (cfg.Seed, corpus position), and the finished entries
// join the dataset in corpus order — so the schedules collected (not their
// measured runtimes, which are always noisy) are independent of Workers.
func CollectContext(ctx context.Context, matrices []generate.Matrix, cfg CollectConfig) (*Dataset, error) {
	ds := &Dataset{Alg: cfg.Alg, DenseN: cfg.DenseN, Profile: cfg.Profile}
	type job struct {
		m     generate.Matrix
		shard int64 // corpus position, stable under eligibility filtering
	}
	var jobs []job
	for i, m := range matrices {
		if m.COO.Order() != cfg.Alg.SparseOrder() {
			continue
		}
		jobs = append(jobs, job{m: m, shard: int64(i)})
	}
	entries := make([]*Entry, len(jobs))
	workers := parallelism.Workers(cfg.Workers)
	err := parallelism.ForEach(ctx, cfg.PoolMetrics, parallelism.PhaseCollect, len(jobs), workers,
		func(_, i int) error {
			rng := parallelism.ShardRand(cfg.Seed, jobs[i].shard)
			entry, err := CollectEntry(jobs[i].m, cfg, rng)
			if err != nil {
				return fmt.Errorf("matrix %s: %w", jobs[i].m.Name, err)
			}
			entries[i] = entry
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	for _, entry := range entries {
		if len(entry.Samples) > 0 {
			ds.Entries = append(ds.Entries, entry)
		}
	}
	return ds, nil
}

// CollectEntry measures one matrix, drawing its schedules from rng.
func CollectEntry(m generate.Matrix, cfg CollectConfig, rng *rand.Rand) (*Entry, error) {
	wl, err := kernel.NewWorkload(cfg.Alg, m.COO, cfg.DenseN)
	if err != nil {
		return nil, err
	}
	wl.Metrics = cfg.KernelMetrics
	entry := &Entry{Name: m.Name, Family: m.Family, COO: m.COO}
	seen := make(map[string]bool, cfg.SchedulesPerMatrix)
	for n := 0; n < cfg.SchedulesPerMatrix; n++ {
		var ss *schedule.SuperSchedule
		if cfg.ConcordantFrac > 0 && rng.Float64() < cfg.ConcordantFrac {
			ss = cfg.Space.SampleConcordant(rng)
		} else {
			ss = cfg.Space.Sample(rng)
		}
		if cfg.Dedup {
			k := ss.String()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		sample, ok, err := MeasureSample(wl, ss, cfg)
		if err != nil {
			return nil, err
		}
		if ok {
			entry.Samples = append(entry.Samples, sample)
		}
	}
	return entry, nil
}

// MeasureSample runs one SuperSchedule under the exclusion rules. ok=false
// means the configuration was excluded (storage blowup or too slow).
func MeasureSample(wl *kernel.Workload, ss *schedule.SuperSchedule, cfg CollectConfig) (Sample, bool, error) {
	plan, err := wl.Compile(ss, cfg.Profile, cfg.MaxEntries)
	if err != nil {
		if format.IsStorageLimit(err) {
			return Sample{}, false, nil
		}
		return Sample{}, false, err
	}
	if plan.CheckWork(cfg.MaxWork) != nil {
		return Sample{}, false, nil // statically hopeless: excluded
	}
	// Exclusion probe: one untimed-budget run.
	start := time.Now()
	if _, err := wl.Run(plan); err != nil {
		return Sample{}, false, err
	}
	first := time.Since(start)
	if cfg.SlowLimit > 0 && first > cfg.SlowLimit {
		return Sample{}, false, nil
	}
	med, err := wl.Measure(plan, cfg.Repeats)
	if err != nil {
		return Sample{}, false, err
	}
	return Sample{SS: ss, Seconds: med.Seconds(), Bytes: plan.StoredBytes()}, true, nil
}

// Split partitions entries into train and validation sets (80:20 in the
// paper) deterministically by seed.
func (d *Dataset) Split(valFrac float64, seed int64) (train, val []*Entry) {
	idx := rand.New(rand.NewSource(seed)).Perm(len(d.Entries))
	nVal := int(float64(len(d.Entries)) * valFrac)
	for i, j := range idx {
		if i < nVal {
			val = append(val, d.Entries[j])
		} else {
			train = append(train, d.Entries[j])
		}
	}
	return train, val
}

// NumSamples returns the total tuple count.
func (d *Dataset) NumSamples() int {
	n := 0
	for _, e := range d.Entries {
		n += len(e.Samples)
	}
	return n
}

// Save serializes the dataset with gob.
func (d *Dataset) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(d)
}

// Load deserializes a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, err
	}
	return &d, nil
}
