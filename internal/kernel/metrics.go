package kernel

import (
	"time"

	"waco/internal/metrics"
)

// Metrics instruments kernel measurement — the dominant cost of a tuning
// request (candidate probing plus the final median protocol). Attach one to
// a Workload to record every Measure call against it.
type Metrics struct {
	Measurements *metrics.Counter   // Measure calls (one per candidate or final protocol)
	Runs         *metrics.Counter   // individual kernel executions across all repeats
	Repeats      *metrics.Histogram // repeats per Measure call
	RunSeconds   *metrics.Histogram // wall seconds of each kernel execution
	BusySeconds  *metrics.Counter   // total wall seconds spent executing kernels
}

// NewMetrics registers the kernel instruments on reg. Call once at startup
// (the waco-vet metricreg check holds registration to init/constructors).
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		Measurements: reg.NewCounter("waco_kernel_measurements_total",
			"Measure calls: one median-of-repeats measurement of one (matrix, schedule) pair.", nil),
		Runs: reg.NewCounter("waco_kernel_runs_total",
			"Individual kernel executions, summed over all measurement repeats.", nil),
		Repeats: reg.NewHistogram("waco_kernel_repeats",
			"Repeats per Measure call (the paper's median-of-N protocol, 4.1.3).",
			metrics.ExpBuckets(1, 2, 8), nil),
		RunSeconds: reg.NewHistogram("waco_kernel_run_seconds",
			"Wall-clock seconds of each individual kernel execution.",
			metrics.MicroBuckets(), nil),
		BusySeconds: reg.NewCounter("waco_kernel_busy_seconds_total",
			"Total wall-clock seconds spent executing kernels.", nil),
	}
}

// GobEncode makes Metrics persistence-inert: instrument handles are runtime
// wiring, so configs that embed one (dataset.CollectConfig inside a sealed
// tuner artifact) serialize it as nothing.
func (m *Metrics) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores a persistence-inert Metrics as an inactive handle.
func (m *Metrics) GobDecode([]byte) error { return nil }

// observeMeasure records one completed Measure call; nil receivers no-op so
// offline pipelines (dataset collection, experiments) pay nothing.
func (m *Metrics) observeMeasure(repeats int, runs []time.Duration) {
	if m == nil || m.Measurements == nil { // nil or gob-revived inactive handle
		return
	}
	m.Measurements.Inc()
	m.Repeats.Observe(float64(repeats))
	for _, d := range runs {
		m.Runs.Inc()
		m.RunSeconds.Observe(d.Seconds())
		m.BusySeconds.Add(d.Seconds())
	}
}
