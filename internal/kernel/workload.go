package kernel

import (
	"fmt"
	"sort"
	"time"

	"waco/internal/format"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// Workload bundles a sparse operand with deterministic dense operands and
// pre-allocated outputs for one algorithm, so many SuperSchedules can be
// measured against the same inputs.
type Workload struct {
	Alg    schedule.Algorithm
	COO    *tensor.COO
	DenseN int // inner dense dimension (N for SpMM, K for SDDMM, J for MTTKRP)

	// Metrics, when non-nil, records every Measure call (repeats, per-run
	// seconds, total kernel busy time). Attached by the serving path;
	// offline pipelines leave it nil.
	Metrics *Metrics

	bVec   []float32
	outVec []float32
	bMat   *tensor.Dense
	cMat   *tensor.Dense
	outMat *tensor.Dense
}

// NewWorkload prepares operands for the algorithm. denseN is ignored for
// SpMV. The dense operands are filled with a deterministic pattern.
func NewWorkload(alg schedule.Algorithm, coo *tensor.COO, denseN int) (*Workload, error) {
	if coo.Order() != alg.SparseOrder() {
		return nil, fmt.Errorf("kernel: order-%d tensor for %v", coo.Order(), alg)
	}
	wl := &Workload{Alg: alg, COO: coo, DenseN: denseN}
	rows, cols := coo.Dims[0], coo.Dims[1]
	switch alg {
	case schedule.SpMV:
		wl.bVec = make([]float32, cols)
		for i := range wl.bVec {
			h := uint32(i*2654435761) ^ 0x9e3779b9
			h ^= h >> 13
			wl.bVec[i] = float32(h%1024)/1024 - 0.5
		}
		wl.outVec = make([]float32, rows)
	case schedule.SpMM:
		wl.bMat = tensor.NewDense(cols, denseN)
		wl.bMat.FillIota()
		wl.outMat = tensor.NewDense(rows, denseN)
	case schedule.SDDMM:
		wl.bMat = tensor.NewDense(rows, denseN)
		wl.bMat.FillIota()
		wl.cMat = tensor.NewDense(cols, denseN) // C^T
		wl.cMat.FillIota()
	case schedule.MTTKRP:
		wl.bMat = tensor.NewDense(cols, denseN)
		wl.bMat.FillIota()
		wl.cMat = tensor.NewDense(coo.Dims[2], denseN)
		wl.cMat.FillIota()
		wl.outMat = tensor.NewDense(rows, denseN)
	}
	return wl, nil
}

// Compile assembles the sparse operand in the schedule's format and builds
// an executable. A schedule with a decomposition yields a PartitionedPlan
// (per-region storage and sub-plans); otherwise a single-format Plan.
// maxEntries bounds assembly (0 = format.DefaultMaxEntries); formats whose
// storage blows past it return format.ErrStorageLimit, which the dataset
// pipeline treats as "excluded configuration".
func (wl *Workload) Compile(ss *schedule.SuperSchedule, profile MachineProfile, maxEntries int64) (Executable, error) {
	if ss.Alg != wl.Alg {
		return nil, fmt.Errorf("kernel: %v schedule for %v workload", ss.Alg, wl.Alg)
	}
	if ss.Decomp != schedule.DecompNone {
		pp, err := CompilePartitioned(ss, wl.COO, profile, maxEntries)
		if err != nil {
			return nil, err
		}
		return pp, nil
	}
	st, err := format.Assemble(wl.COO, ss.AFormat, format.AssembleOptions{MaxEntries: maxEntries})
	if err != nil {
		return nil, err
	}
	p, err := Compile(ss, st, profile)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Run executes the plan once against the workload operands and returns the
// SDDMM output values slice when applicable (outputs for the other
// algorithms are retrievable via OutVec/OutMat).
func (wl *Workload) Run(p Executable) ([]float32, error) {
	switch wl.Alg {
	case schedule.SpMV:
		return nil, p.RunSpMV(wl.bVec, wl.outVec)
	case schedule.SpMM:
		return nil, p.RunSpMM(wl.bMat, wl.outMat)
	case schedule.SDDMM:
		out := make([]float32, p.StoredVals())
		return out, p.RunSDDMM(wl.bMat, wl.cMat, out)
	case schedule.MTTKRP:
		return nil, p.RunMTTKRP(wl.bMat, wl.cMat, wl.outMat)
	}
	return nil, fmt.Errorf("kernel: unknown algorithm %v", wl.Alg)
}

// OutVec returns the SpMV output buffer.
func (wl *Workload) OutVec() []float32 { return wl.outVec }

// OutMat returns the SpMM/MTTKRP output buffer.
func (wl *Workload) OutMat() *tensor.Dense { return wl.outMat }

// BVec returns the SpMV input vector.
func (wl *Workload) BVec() []float32 { return wl.bVec }

// BMat and CMat return the dense operands.
func (wl *Workload) BMat() *tensor.Dense { return wl.bMat }

// CMat returns the second dense operand (SDDMM: C transposed).
func (wl *Workload) CMat() *tensor.Dense { return wl.cMat }

// Measure runs the plan repeats times and returns the median wall-clock
// duration — the paper's ground-truth runtime protocol (§4.1.3 uses the
// median of 50 rounds; reduced-scale runs use fewer).
func (wl *Workload) Measure(p Executable, repeats int) (time.Duration, error) {
	if repeats < 1 {
		repeats = 1
	}
	times := make([]time.Duration, repeats)
	for r := range times {
		start := time.Now()
		if _, err := wl.Run(p); err != nil {
			return 0, err
		}
		times[r] = time.Since(start)
	}
	wl.Metrics.observeMeasure(repeats, times)
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[len(times)/2], nil
}

// MeasureSchedule assembles, compiles, and measures in one step, returning
// the median kernel time and the assembled storage footprint. Assembly and
// compile time are excluded from the runtime (they are the format-conversion
// cost, accounted separately in the end-to-end experiments).
func (wl *Workload) MeasureSchedule(ss *schedule.SuperSchedule, profile MachineProfile, maxEntries int64, repeats int) (time.Duration, int64, error) {
	p, err := wl.Compile(ss, profile, maxEntries)
	if err != nil {
		return 0, 0, err
	}
	d, err := wl.Measure(p, repeats)
	if err != nil {
		return 0, 0, err
	}
	return d, p.StoredBytes(), nil
}
