package kernel

import (
	"errors"
	"testing"

	"waco/internal/format"
	"waco/internal/schedule"
)

func TestEstimateWorkConcordantIsNNZScale(t *testing.T) {
	coo := testMatrix(50, 200, 200, 3000)
	wl, _ := NewWorkload(schedule.SpMM, coo, 4)
	p, err := wl.Compile(schedule.DefaultSchedule(schedule.SpMM, 1), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := p.EstimateWork()
	nnz := float64(coo.NNZ())
	// Concordant CSR visits each nonzero once; the estimate may include the
	// row loop but must stay within a small factor of nnz.
	if w < nnz/4 || w > 8*nnz {
		t.Fatalf("CSR work estimate %g for nnz %g", w, nnz)
	}
}

func TestEstimateWorkDenseLoopsMultiply(t *testing.T) {
	coo := testMatrix(51, 64, 64, 200)
	wl, _ := NewWorkload(schedule.SpMM, coo, 4)
	// Discordant schedule: CSR storage traversed k-outer densely.
	ss := schedule.DefaultSchedule(schedule.SpMM, 1)
	ss.ComputeOrder = []schedule.IVar{
		{Mode: 1}, {Mode: 0}, {Mode: 0, Inner: true}, {Mode: 1, Inner: true},
	}
	ss.Parallel = schedule.IVar{Mode: 1}
	p, err := wl.Compile(ss, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Dense loops over k (64) and i (64): roughly 4096 probe visits.
	if w := p.EstimateWork(); w < 2048 {
		t.Fatalf("discordant work estimate %g, expected thousands", w)
	}
	conc, err := wl.Compile(schedule.DefaultSchedule(schedule.SpMM, 1), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstimateWork() <= conc.EstimateWork() {
		t.Fatal("discordant plan should estimate more work than concordant")
	}
}

func TestCheckWorkLimit(t *testing.T) {
	coo := testMatrix(52, 64, 64, 200)
	wl, _ := NewWorkload(schedule.SpMM, coo, 4)
	p, err := wl.Compile(schedule.DefaultSchedule(schedule.SpMM, 1), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckWork(0); err != nil {
		t.Fatalf("default limit rejected concordant CSR: %v", err)
	}
	if err := p.CheckWork(1); !errors.Is(err, ErrWorkLimit) {
		t.Fatalf("limit 1 accepted: %v", err)
	}
}

func TestDefaultWorkLimitScales(t *testing.T) {
	if DefaultWorkLimit(0) <= 0 {
		t.Fatal("zero base limit")
	}
	if DefaultWorkLimit(1000) >= DefaultWorkLimit(100000) {
		t.Fatal("limit does not scale with stored size")
	}
}

func TestEstimateWorkStoredZerosCount(t *testing.T) {
	// Dense formats store every cell; the estimate must reflect that.
	coo := testMatrix(53, 32, 32, 100)
	wl, _ := NewWorkload(schedule.SpMM, coo, 4)
	dense := schedule.DefaultSchedule(schedule.SpMM, 1)
	for l := range dense.AFormat.Levels {
		dense.AFormat.Levels[l].Kind = format.Uncompressed
	}
	p, err := wl.Compile(dense, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if w := p.EstimateWork(); w < 1024-64 {
		t.Fatalf("dense work estimate %g, want ~1024", w)
	}
}
