package kernel

import (
	"waco/internal/tensor"
)

// Reference implementations: straightforward COO-driven computations used as
// ground truth in tests. They are deliberately schedule-free.

// RefSpMV computes out = A*b directly from coordinates.
func RefSpMV(a *tensor.COO, b []float32) []float32 {
	out := make([]float32, a.Dims[0])
	for p := 0; p < a.NNZ(); p++ {
		out[a.Coords[0][p]] += a.Vals[p] * b[a.Coords[1][p]]
	}
	return out
}

// RefSpMM computes out = A*b for dense row-major b.
func RefSpMM(a *tensor.COO, b *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(a.Dims[0], b.NumCols)
	for p := 0; p < a.NNZ(); p++ {
		i, k := a.Coords[0][p], a.Coords[1][p]
		v := a.Vals[p]
		br := b.Row(int(k))
		or := out.Row(int(i))
		for j := range or {
			or[j] += v * br[j]
		}
	}
	return out
}

// RefSDDMM computes, for each nonzero (i,j) of A, A[i,j] * (B[i,:] . C[:,j]),
// with C supplied transposed (ct). The result maps "i,j" keys to values.
func RefSDDMM(a *tensor.COO, b, ct *tensor.Dense) map[[2]int32]float32 {
	out := make(map[[2]int32]float32, a.NNZ())
	for p := 0; p < a.NNZ(); p++ {
		i, j := a.Coords[0][p], a.Coords[1][p]
		br := b.Row(int(i))
		cr := ct.Row(int(j))
		var acc float32
		for q := range br {
			acc += br[q] * cr[q]
		}
		out[[2]int32{i, j}] = a.Vals[p] * acc
	}
	return out
}

// RefMTTKRP computes out[i,j] = sum_{k,l} A[i,k,l] * b[k,j] * c[l,j].
func RefMTTKRP(a *tensor.COO, b, c *tensor.Dense) *tensor.Dense {
	out := tensor.NewDense(a.Dims[0], b.NumCols)
	for p := 0; p < a.NNZ(); p++ {
		i, k, l := a.Coords[0][p], a.Coords[1][p], a.Coords[2][p]
		v := a.Vals[p]
		br := b.Row(int(k))
		cr := c.Row(int(l))
		or := out.Row(int(i))
		for j := range or {
			or[j] += v * br[j] * cr[j]
		}
	}
	return out
}
