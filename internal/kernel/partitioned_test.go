package kernel

import (
	"math"
	"testing"

	"math/rand"
	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// skewedMatrix builds the region-mix workload the decomposition targets:
// dense tiles, a few heavy rows, and a scattered tail.
func skewedMatrix(seed int64, n int) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	c := generate.BlockDense(rng, n, n, 4, n/12, 1.0)
	for r := 0; r < 2; r++ {
		row := int32((n / 3) * (r + 1))
		for k := int32(0); k < int32(n); k += 2 {
			c.Append(float32(k%5)+1, row, k)
		}
	}
	sc := generate.Uniform(rng, n, n, n)
	for p := 0; p < sc.NNZ(); p++ {
		c.Append(sc.Vals[p], sc.Coords[0][p], sc.Coords[1][p])
	}
	c.SortRowMajor()
	c.Dedup()
	return c
}

func decompSS(alg schedule.Algorithm, dec schedule.Decomposition, threads int) *schedule.SuperSchedule {
	ss := schedule.DefaultSchedule(alg, threads)
	ss.Decomp = dec
	return ss
}

func TestCompilePartitionedRegions(t *testing.T) {
	coo := skewedMatrix(21, 48)
	ss := decompSS(schedule.SpMM, schedule.DecompFull, 2)
	pp, err := CompilePartitioned(ss, coo, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pp.RegionPlans()); got != 3 {
		t.Fatalf("full decomposition built %d region plans, want 3", got)
	}
	if pp.Algorithm() != schedule.SpMM || pp.Super() != ss {
		t.Fatal("plan metadata wrong")
	}
	if err := pp.Part.Validate(); err != nil {
		t.Fatalf("assembled partition invalid: %v", err)
	}
	// Stored accounting is consistent with the regions.
	vals := 0
	var bytes int64
	for _, reg := range pp.Part.Regions {
		vals += len(reg.Stored.Vals)
		bytes += reg.Stored.Bytes()
	}
	if pp.StoredVals() != vals || pp.StoredBytes() != bytes {
		t.Fatalf("accounting: vals %d/%d bytes %d/%d", pp.StoredVals(), vals, pp.StoredBytes(), bytes)
	}
	// The tail sub-plan runs the SuperSchedule's own format; extraction
	// regions run their archetypes.
	plans := pp.RegionPlans()
	tail := plans[len(plans)-1]
	if tail.SS.AFormat.String() != ss.AFormat.String() {
		t.Fatalf("tail format %v, want schedule's %v", tail.SS.AFormat, ss.AFormat)
	}
	if tail.SS.Decomp != schedule.DecompNone {
		t.Fatal("tail sub-schedule still carries a decomposition")
	}
}

func TestCompilePartitionedRejects(t *testing.T) {
	coo := skewedMatrix(22, 32)
	// A non-decomposed schedule has no partition to build.
	if _, err := CompilePartitioned(schedule.DefaultSchedule(schedule.SpMM, 1), coo, DefaultProfile(), 0); err == nil {
		t.Fatal("accepted DecompNone")
	}
	// Decomposition on an unsupported algorithm fails schedule validation.
	bad := schedule.DefaultSchedule(schedule.SpMV, 1)
	bad.Decomp = schedule.DecompFull
	if _, err := CompilePartitioned(bad, coo, DefaultProfile(), 0); err == nil {
		t.Fatal("accepted SpMV decomposition")
	}
	// Workload.Compile routes the same validation error.
	wl, _ := NewWorkload(schedule.SpMV, coo, 0)
	if _, err := wl.Compile(bad, DefaultProfile(), 0); err == nil {
		t.Fatal("workload accepted SpMV decomposition")
	}
}

func TestPartitionedEmptyRegions(t *testing.T) {
	// A banded matrix has no dense 8x8 tiles and no heavy rows: both
	// extraction regions are empty, everything lands in the tail, and
	// execution still matches the reference.
	rng := rand.New(rand.NewSource(23))
	coo := generate.Banded(rng, 40, 40, 1, 0.6)
	ss := decompSS(schedule.SpMM, schedule.DecompFull, 2)
	wl, err := NewWorkload(schedule.SpMM, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := wl.Compile(ss, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pp := e.(*PartitionedPlan)
	for _, reg := range pp.Part.Regions[:len(pp.Part.Regions)-1] {
		if reg.Stored.NNZStored() != 0 {
			t.Fatalf("%v region holds %d stored entries for a banded matrix", reg.Class, reg.Stored.NNZStored())
		}
	}
	if _, err := wl.Run(pp); err != nil {
		t.Fatal(err)
	}
	if d := wl.OutMat().MaxAbsDiff(RefSpMM(coo, wl.BMat())); d > testTol {
		t.Fatalf("empty-region execution differs by %g", d)
	}
}

// TestEstimateWorkFiniteOnEmptyLevels is the regression test for the
// work-estimate NaN: a compressed level above an empty level made the
// per-parent average 0/0 = NaN, and since NaN compares false against any
// limit, CheckWork silently accepted every plan over an empty tensor or
// empty partition region. The estimate must stay finite.
func TestEstimateWorkFiniteOnEmptyLevels(t *testing.T) {
	empty := tensor.NewCOO([]int{16, 16}, 0)
	wl, err := NewWorkload(schedule.SpMM, empty, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compileSingle(wl, schedule.DefaultSchedule(schedule.SpMM, 1), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if w := p.EstimateWork(); math.IsNaN(w) || math.IsInf(w, 0) {
		t.Fatalf("empty-tensor estimate = %v", w)
	}
	// Partitioned plans over matrices with empty regions sum the region
	// estimates, so one NaN would poison the total.
	pp, err := CompilePartitioned(decompSS(schedule.SpMM, schedule.DecompFull, 1), empty, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if w := pp.EstimateWork(); math.IsNaN(w) || math.IsInf(w, 0) {
		t.Fatalf("partitioned empty estimate = %v", w)
	}
	// The static exclusion must actually fire against a tiny limit on a
	// non-trivial plan; with the NaN it never did.
	coo := skewedMatrix(24, 48)
	pp2, err := CompilePartitioned(decompSS(schedule.SpMM, schedule.DecompFull, 1), coo, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pp2.CheckWork(1); err == nil {
		t.Fatal("CheckWork(1) accepted a plan with real work")
	}
	if err := pp2.CheckWork(0); err != nil {
		t.Fatalf("CheckWork(default) rejected a healthy plan: %v", err)
	}
}

func TestPartitionedLocateStored(t *testing.T) {
	coo := skewedMatrix(25, 48)
	pp, err := CompilePartitioned(decompSS(schedule.SDDMM, schedule.DecompFull, 1), coo, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool, coo.NNZ())
	for p := 0; p < coo.NNZ(); p++ {
		pos, ok := pp.LocateStored([]int32{coo.Coords[0][p], coo.Coords[1][p]})
		if !ok {
			t.Fatalf("nonzero (%d,%d) unlocatable", coo.Coords[0][p], coo.Coords[1][p])
		}
		if pos < 0 || pos >= int64(pp.StoredVals()) {
			t.Fatalf("position %d outside [0,%d)", pos, pp.StoredVals())
		}
		if seen[pos] {
			t.Fatalf("two nonzeros share stored position %d", pos)
		}
		seen[pos] = true
	}
}

func TestPartitionedWrongAlgorithmAndShapes(t *testing.T) {
	coo := skewedMatrix(26, 32)
	pp, err := CompilePartitioned(decompSS(schedule.SpMM, schedule.DecompRowBlocks, 1), coo, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pp.RunSpMV(make([]float32, 32), make([]float32, 32)); err == nil {
		t.Fatal("partitioned plan accepted SpMV")
	}
	if err := pp.RunMTTKRP(nil, nil, nil); err == nil {
		t.Fatal("partitioned plan accepted MTTKRP")
	}
	if err := pp.RunSDDMM(tensor.NewDense(32, 4), tensor.NewDense(32, 4), nil); err == nil {
		t.Fatal("SDDMM on an SpMM partitioned plan succeeded")
	}
	if err := pp.RunSpMM(tensor.NewDense(7, 4), tensor.NewDense(32, 4)); err == nil {
		t.Fatal("accepted mis-shaped operand")
	}
	if err := pp.RunSpMM(tensor.NewDense(32, 4), tensor.NewDense(32, 5)); err == nil {
		t.Fatal("accepted mismatched output width")
	}
	sd, err := CompilePartitioned(decompSS(schedule.SDDMM, schedule.DecompRowBlocks, 1), coo, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.RunSDDMM(tensor.NewDense(32, 4), tensor.NewDense(32, 4), make([]float32, sd.StoredVals()+1)); err == nil {
		t.Fatal("accepted wrong output length")
	}
}

// TestPartitionedDeterministicAcrossRuns pins run-to-run and thread-count
// determinism of the partitioned path: regions execute in canonical order
// and accumulate identically, so outputs are bit-stable.
func TestPartitionedDeterministicAcrossRuns(t *testing.T) {
	coo := skewedMatrix(27, 64)
	wl, err := NewWorkload(schedule.SpMM, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := wl.Compile(decompSS(schedule.SpMM, schedule.DecompFull, 1), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Run(e1); err != nil {
		t.Fatal(err)
	}
	base := wl.OutMat().Clone()
	for rep := 0; rep < 3; rep++ {
		if _, err := wl.Run(e1); err != nil {
			t.Fatal(err)
		}
		if d := wl.OutMat().MaxAbsDiff(base); d != 0 {
			t.Fatalf("rep %d differs by %g from first run", rep, d)
		}
	}
	// Thread-count variation must stay within tolerance of the serial
	// result (reassociation only).
	e4, err := wl.Compile(decompSS(schedule.SpMM, schedule.DecompFull, 4), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Run(e4); err != nil {
		t.Fatal(err)
	}
	if d := wl.OutMat().MaxAbsDiff(base); d > testTol {
		t.Fatalf("4-thread run differs by %g", d)
	}
}

// TestPartitionedStorageBudget verifies the per-region assembly budget
// surfaces as the dataset pipeline's exclusion error.
func TestPartitionedStorageBudget(t *testing.T) {
	coo := skewedMatrix(28, 64)
	wl, err := NewWorkload(schedule.SpMM, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = wl.Compile(decompSS(schedule.SpMM, schedule.DecompFull, 1), DefaultProfile(), 4)
	if !format.IsStorageLimit(err) {
		t.Fatalf("4-entry budget: got %v, want storage-limit error", err)
	}
}
