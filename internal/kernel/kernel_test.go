package kernel

import (
	"errors"
	"math/rand"
	"testing"

	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/metrics"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

const testTol = 2e-3

func testMatrix(seed int64, rows, cols, nnz int) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	return generate.Uniform(rng, rows, cols, nnz)
}

func TestSpMVDefaultScheduleMatchesReference(t *testing.T) {
	coo := testMatrix(1, 80, 60, 500)
	wl, err := NewWorkload(schedule.SpMV, coo, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := wl.Compile(schedule.DefaultSchedule(schedule.SpMV, 4), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Run(p); err != nil {
		t.Fatal(err)
	}
	ref := RefSpMV(coo, wl.BVec())
	if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
		t.Fatalf("SpMV differs from reference by %g", d)
	}
}

// The central correctness property: ANY sampled SuperSchedule computes the
// same result as the reference, across formats, loop orders, discordant
// traversals, blocked vector layouts, threads, and chunk sizes.
func TestSpMVRandomSchedulesMatchReference(t *testing.T) {
	coo := testMatrix(2, 70, 90, 600)
	wl, err := NewWorkload(schedule.SpMV, coo, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := RefSpMV(coo, wl.BVec())
	sp := spaceForTest(schedule.SpMV)
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		ss := sp.Sample(rng)
		p, err := wl.Compile(ss, DefaultProfile(), 1<<22)
		if errors.Is(err, format.ErrStorageLimit) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, ss, err)
		}
		if _, err := wl.Run(p); err != nil {
			t.Fatalf("trial %d (%s): %v", trial, ss, err)
		}
		if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
			t.Fatalf("trial %d differs by %g: %s", trial, d, ss)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("only %d/120 schedules were checkable", checked)
	}
}

func TestSpMMRandomSchedulesMatchReference(t *testing.T) {
	coo := testMatrix(4, 60, 50, 400)
	wl, err := NewWorkload(schedule.SpMM, coo, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := RefSpMM(coo, wl.BMat())
	sp := spaceForTest(schedule.SpMM)
	rng := rand.New(rand.NewSource(5))
	checked := 0
	for trial := 0; trial < 100; trial++ {
		ss := sp.Sample(rng)
		p, err := wl.Compile(ss, DefaultProfile(), 1<<22)
		if errors.Is(err, format.ErrStorageLimit) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, ss, err)
		}
		if _, err := wl.Run(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := wl.OutMat().MaxAbsDiff(ref); d > testTol {
			t.Fatalf("trial %d differs by %g: %s", trial, d, ss)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d/100 schedules were checkable", checked)
	}
}

func TestSDDMMRandomSchedulesMatchReference(t *testing.T) {
	coo := testMatrix(6, 50, 40, 300)
	wl, err := NewWorkload(schedule.SDDMM, coo, 12)
	if err != nil {
		t.Fatal(err)
	}
	ref := RefSDDMM(coo, wl.BMat(), wl.CMat())
	sp := spaceForTest(schedule.SDDMM)
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 100; trial++ {
		ss := sp.Sample(rng)
		p, err := wl.Compile(ss, DefaultProfile(), 1<<22)
		if errors.Is(err, format.ErrStorageLimit) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, ss, err)
		}
		out, err := wl.Run(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Check every original nonzero by locating its stored position.
		for q := 0; q < coo.NNZ(); q++ {
			ij := [2]int32{coo.Coords[0][q], coo.Coords[1][q]}
			pos, ok := p.LocateStored([]int32{ij[0], ij[1]})
			if !ok {
				t.Fatalf("trial %d: nonzero (%d,%d) missing from storage", trial, ij[0], ij[1])
			}
			d := out[pos] - ref[ij]
			if d < 0 {
				d = -d
			}
			if d > testTol {
				t.Fatalf("trial %d: D(%d,%d) = %g, want %g (%s)", trial, ij[0], ij[1], out[pos], ref[ij], ss)
			}
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d/100 schedules were checkable", checked)
	}
}

func TestMTTKRPRandomSchedulesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	base := generate.Uniform(rng, 40, 30, 250)
	coo := generate.Tensor3D(rng, base, 20, 2)
	wl, err := NewWorkload(schedule.MTTKRP, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref := RefMTTKRP(coo, wl.BMat(), wl.CMat())
	sp := spaceForTest(schedule.MTTKRP)
	srng := rand.New(rand.NewSource(9))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		ss := sp.Sample(srng)
		p, err := wl.Compile(ss, DefaultProfile(), 1<<22)
		if errors.Is(err, format.ErrStorageLimit) {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, ss, err)
		}
		if _, err := wl.Run(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if d := wl.OutMat().MaxAbsDiff(ref); d > testTol {
			t.Fatalf("trial %d differs by %g: %s", trial, d, ss)
		}
		checked++
	}
	if checked < 25 {
		t.Fatalf("only %d/60 schedules were checkable", checked)
	}
}

// spaceForTest shrinks split choices so random formats usually fit the
// assembly budget on small test matrices.
func spaceForTest(alg schedule.Algorithm) schedule.Space {
	sp := schedule.DefaultSpace(alg)
	sp.SplitChoices = []int32{1, 2, 4, 8, 16}
	sp.ThreadChoices = []int{1, 2, 4}
	return sp
}

func TestCompileRejectsMismatches(t *testing.T) {
	coo := testMatrix(10, 20, 20, 50)
	ssMM := schedule.DefaultSchedule(schedule.SpMM, 2)
	stored, err := format.Assemble(coo, ssMM.AFormat, format.AssembleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mismatched format.
	other := ssMM.Clone()
	other.AFormat.Levels[1].Kind = format.Uncompressed
	if _, err := Compile(other, stored, DefaultProfile()); err == nil {
		t.Fatal("accepted format mismatch")
	}
	// Invalid schedule.
	bad := ssMM.Clone()
	bad.Chunk = 0
	if _, err := Compile(bad, stored, DefaultProfile()); err == nil {
		t.Fatal("accepted invalid schedule")
	}
}

func TestWorkloadRejectsMismatches(t *testing.T) {
	coo := testMatrix(11, 20, 20, 50)
	if _, err := NewWorkload(schedule.MTTKRP, coo, 8); err == nil {
		t.Fatal("accepted 2-D tensor for MTTKRP")
	}
	wl, err := NewWorkload(schedule.SpMM, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Compile(schedule.DefaultSchedule(schedule.SpMV, 2), DefaultProfile(), 0); err == nil {
		t.Fatal("accepted SpMV schedule on SpMM workload")
	}
}

func TestRunWrongAlgorithm(t *testing.T) {
	coo := testMatrix(12, 20, 20, 50)
	wl, _ := NewWorkload(schedule.SpMM, coo, 4)
	p, err := wl.Compile(schedule.DefaultSchedule(schedule.SpMM, 2), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RunSpMV(make([]float32, 20), make([]float32, 20)); err == nil {
		t.Fatal("RunSpMV accepted SpMM plan")
	}
	if err := p.RunSpMM(tensor.NewDense(5, 4), tensor.NewDense(20, 4)); err == nil {
		t.Fatal("accepted wrong operand shape")
	}
}

func TestMachineProfileCapsThreads(t *testing.T) {
	coo := testMatrix(13, 64, 64, 400)
	wl, _ := NewWorkload(schedule.SpMM, coo, 8)
	ss := schedule.DefaultSchedule(schedule.SpMM, 8)
	p, err := compileSingle(wl, ss, MachineProfile{Name: "tiny", ThreadCap: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.threads != 2 {
		t.Fatalf("threads = %d, want 2", p.threads)
	}
	// Capped execution is still correct.
	if _, err := wl.Run(p); err != nil {
		t.Fatal(err)
	}
	ref := RefSpMM(coo, wl.BMat())
	if d := wl.OutMat().MaxAbsDiff(ref); d > testTol {
		t.Fatalf("capped run differs by %g", d)
	}
}

func TestMeasureSchedule(t *testing.T) {
	coo := testMatrix(14, 128, 128, 1000)
	wl, _ := NewWorkload(schedule.SpMM, coo, 8)
	d, bytes, err := wl.MeasureSchedule(schedule.DefaultSchedule(schedule.SpMM, 2), DefaultProfile(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("measured duration %v", d)
	}
	if bytes <= 0 {
		t.Fatalf("storage bytes %d", bytes)
	}
	// Storage-limit exclusion propagates.
	dense := schedule.DefaultSchedule(schedule.SpMM, 2)
	for l := range dense.AFormat.Levels {
		dense.AFormat.Levels[l].Kind = format.Uncompressed
	}
	if _, _, err := wl.MeasureSchedule(dense, DefaultProfile(), 100, 1); !errors.Is(err, format.ErrStorageLimit) {
		t.Fatalf("expected storage limit, got %v", err)
	}
}

// TestMeasureRecordsMetrics checks the serving-side instrumentation: an
// attached kernel.Metrics sees every Measure call with exact repeat and run
// totals, and an unattached workload pays nothing (nil receiver no-op).
func TestMeasureRecordsMetrics(t *testing.T) {
	coo := testMatrix(15, 96, 96, 800)
	wl, err := NewWorkload(schedule.SpMM, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	wl.Metrics = NewMetrics(metrics.NewRegistry())
	p, err := wl.Compile(schedule.DefaultSchedule(schedule.SpMM, 2), DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Measure(p, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Measure(p, 5); err != nil {
		t.Fatal(err)
	}
	m := wl.Metrics
	if got := m.Measurements.Value(); got != 2 {
		t.Fatalf("measurements = %v, want 2", got)
	}
	if got := m.Runs.Value(); got != 8 {
		t.Fatalf("runs = %v, want 3+5", got)
	}
	if m.Repeats.Count() != 2 || m.Repeats.Sum() != 8 {
		t.Fatalf("repeats histogram count=%d sum=%v, want 2/8", m.Repeats.Count(), m.Repeats.Sum())
	}
	if m.RunSeconds.Count() != 8 || m.BusySeconds.Value() <= 0 {
		t.Fatalf("run seconds count=%d busy=%v", m.RunSeconds.Count(), m.BusySeconds.Value())
	}

	// Unattached workload: Measure still works.
	wl.Metrics = nil
	if _, err := wl.Measure(p, 1); err != nil {
		t.Fatal(err)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, chunk := range []int{1, 3, 16, 1000} {
			n := int64(257)
			hits := make([]int32, n)
			ParallelFor(n, chunk, workers, func(id int, lo, hi int64) {
				for i := lo; i < hi; i++ {
					hits[i]++ // disjoint ranges: no race
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d chunk=%d: index %d hit %d times", workers, chunk, i, h)
				}
			}
		}
	}
	// Empty and negative ranges are no-ops.
	ParallelFor(0, 4, 4, func(int, int64, int64) { t.Fatal("called on empty range") })
	ParallelFor(-5, 4, 4, func(int, int64, int64) { t.Fatal("called on negative range") })
}

func TestDeterministicAcrossThreadCounts(t *testing.T) {
	// The same schedule executed serially and in parallel produces identical
	// results (each output location is owned by one worker).
	coo := testMatrix(15, 96, 96, 800)
	wl, _ := NewWorkload(schedule.SpMM, coo, 8)
	serial := schedule.DefaultSchedule(schedule.SpMM, 1)
	pSerial, err := wl.Compile(serial, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wl.Run(pSerial); err != nil {
		t.Fatal(err)
	}
	want := wl.OutMat().Clone()
	par := schedule.DefaultSchedule(schedule.SpMM, 4)
	par.Chunk = 3
	pPar, err := wl.Compile(par, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		if _, err := wl.Run(pPar); err != nil {
			t.Fatal(err)
		}
		if d := wl.OutMat().MaxAbsDiff(want); d != 0 {
			t.Fatalf("parallel result differs by %g on repeat %d", d, rep)
		}
	}
}
