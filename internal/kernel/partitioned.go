package kernel

import (
	"fmt"

	"waco/internal/format"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// PartitionedPlan executes a sparse tensor program over a decomposed tensor:
// one sub-plan per region, each compiled for the region's own storage.
// SpMM regions accumulate partial sums into the shared dense output; SDDMM
// regions write disjoint segments of the concatenated stored-values output.
// SpMV and MTTKRP do not support decomposition (schedule validation rejects
// such SuperSchedules before one is built).
type PartitionedPlan struct {
	Alg  schedule.Algorithm
	SS   *schedule.SuperSchedule
	Part *format.Partitioned

	plans     []*Plan // parallel to Part.Regions
	dims      []int32 // per mode
	totalVals int
}

// regionChunk picks the dynamic chunk size for a region's schedule: the
// heavy-row region has few, expensive rows, so it balances at chunk 1; the
// other regions keep the SuperSchedule's chunk.
func regionChunk(class format.RegionClass, chunk int) int {
	if class == format.RegionHeavy {
		return 1
	}
	return chunk
}

// CompilePartitioned decomposes the tensor by the schedule's rule, assembles
// each region (the tail in ss.AFormat, extraction regions in their archetype
// formats), and compiles one plan per region. The tail region runs the
// SuperSchedule's own compute order; extraction regions run the best-effort
// concordant schedule for their archetype format with the SuperSchedule's
// thread count, since their formats are fixed by the rule rather than
// searched.
func CompilePartitioned(ss *schedule.SuperSchedule, coo *tensor.COO, profile MachineProfile, maxEntries int64) (*PartitionedPlan, error) {
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	if ss.Decomp == schedule.DecompNone {
		return nil, fmt.Errorf("kernel: CompilePartitioned needs a decomposed schedule")
	}
	part, err := format.Decompose(coo, ss.Decomp.Rule())
	if err != nil {
		return nil, err
	}
	pt, err := part.Assemble(
		format.AssembleOptions{MaxEntries: maxEntries},
		map[format.RegionClass]format.Format{format.RegionTail: ss.AFormat},
	)
	if err != nil {
		return nil, err
	}
	pp := &PartitionedPlan{
		Alg:  ss.Alg,
		SS:   ss,
		Part: pt,
		dims: make([]int32, len(pt.Dims)),
	}
	for m, d := range pt.Dims {
		pp.dims[m] = int32(d)
	}
	for _, reg := range pt.Regions {
		var rss *schedule.SuperSchedule
		if reg.Class == format.RegionTail {
			rss = ss.Clone()
			rss.Decomp = schedule.DecompNone
		} else {
			rss = schedule.BestEffortSchedule(ss.Alg, reg.Stored.Fmt, ss.Threads, regionChunk(reg.Class, ss.Chunk))
		}
		plan, err := Compile(rss, reg.Stored, profile)
		if err != nil {
			return nil, fmt.Errorf("kernel: compiling %v region: %w", reg.Class, err)
		}
		pp.plans = append(pp.plans, plan)
		pp.totalVals += len(reg.Stored.Vals)
	}
	return pp, nil
}

// RegionPlans returns the per-region sub-plans, parallel to Part.Regions.
func (pp *PartitionedPlan) RegionPlans() []*Plan { return pp.plans }

// Algorithm returns the compiled algorithm.
func (pp *PartitionedPlan) Algorithm() schedule.Algorithm { return pp.Alg }

// Super returns the decomposed SuperSchedule the plan was compiled from.
func (pp *PartitionedPlan) Super() *schedule.SuperSchedule { return pp.SS }

// EstimateWork sums the regions' body visit estimates.
func (pp *PartitionedPlan) EstimateWork() float64 {
	total := 0.0
	for _, p := range pp.plans {
		total += p.EstimateWork()
	}
	return total
}

// CheckWork returns ErrWorkLimit when the summed region estimate exceeds
// maxWork (<= 0 applies DefaultWorkLimit relative to the total stored size).
func (pp *PartitionedPlan) CheckWork(maxWork float64) error {
	limit := maxWork
	if limit <= 0 {
		limit = DefaultWorkLimit(pp.totalVals)
	}
	if w := pp.EstimateWork(); w > limit {
		return fmt.Errorf("%w: estimated %.3g body visits (limit %.3g)", ErrWorkLimit, w, limit)
	}
	return nil
}

// StoredBytes sums the regions' storage footprints.
func (pp *PartitionedPlan) StoredBytes() int64 { return pp.Part.Bytes() }

// StoredVals returns the total stored-entry count across regions.
func (pp *PartitionedPlan) StoredVals() int { return pp.totalVals }

// LocateStored returns the position of the given coordinates in the
// concatenated region values arrays.
func (pp *PartitionedPlan) LocateStored(coords []int32) (int64, bool) {
	return pp.Part.Locate(coords)
}

// RunSpMV is unsupported for partitioned plans.
func (pp *PartitionedPlan) RunSpMV(b, out []float32) error {
	return fmt.Errorf("kernel: RunSpMV on partitioned %v plan", pp.Alg)
}

// RunMTTKRP is unsupported for partitioned plans.
func (pp *PartitionedPlan) RunMTTKRP(b, c, out *tensor.Dense) error {
	return fmt.Errorf("kernel: RunMTTKRP on partitioned %v plan", pp.Alg)
}

// RunSpMM computes out = A*b by zeroing out once and accumulating each
// region's partial product. Regions execute sequentially; each region's plan
// parallelizes internally per its schedule.
func (pp *PartitionedPlan) RunSpMM(b, out *tensor.Dense) error {
	if pp.Alg != schedule.SpMM {
		return fmt.Errorf("kernel: RunSpMM on %v plan", pp.Alg)
	}
	if b.NumRows != int(pp.dims[1]) || out.NumRows != int(pp.dims[0]) || b.NumCols != out.NumCols {
		return fmt.Errorf("kernel: SpMM shapes A=%dx%d b=%dx%d out=%dx%d",
			pp.dims[0], pp.dims[1], b.NumRows, b.NumCols, out.NumRows, out.NumCols)
	}
	out.Zero()
	for _, p := range pp.plans {
		p.runSpMM(b, out)
	}
	return nil
}

// RunSDDMM computes the sampled dense-dense product into the concatenation
// of the regions' stored-values arrays: region r's stored position q lands
// at offset(r) + q, which is the addressing Part.Locate reports. outVals
// must have length StoredVals().
func (pp *PartitionedPlan) RunSDDMM(b, ct *tensor.Dense, outVals []float32) error {
	if pp.Alg != schedule.SDDMM {
		return fmt.Errorf("kernel: RunSDDMM on %v plan", pp.Alg)
	}
	if b.NumRows != int(pp.dims[0]) || ct.NumRows != int(pp.dims[1]) || b.NumCols != ct.NumCols {
		return fmt.Errorf("kernel: SDDMM shapes A=%dx%d b=%dx%d ct=%dx%d",
			pp.dims[0], pp.dims[1], b.NumRows, b.NumCols, ct.NumRows, ct.NumCols)
	}
	if len(outVals) != pp.totalVals {
		return fmt.Errorf("kernel: SDDMM output length %d, want %d", len(outVals), pp.totalVals)
	}
	for i := range outVals {
		outVals[i] = 0
	}
	off := 0
	for _, p := range pp.plans {
		n := len(p.A.Vals)
		p.runSDDMM(b, ct, outVals[off:off+n])
		off += n
	}
	return nil
}
