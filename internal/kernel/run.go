package kernel

import (
	"fmt"

	"waco/internal/format"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// rootDomain returns the iteration count of the outermost loop.
func (p *Plan) rootDomain() int64 {
	lp := &p.loops[0]
	if lp.drives == 0 {
		lvl := &p.A.Levels[0]
		if lvl.Kind == format.Compressed {
			return lvl.PosCount
		}
		return int64(lvl.Extent)
	}
	return int64(lp.extent)
}

// execRoot runs the outermost loop over sub-range [lo, hi) of its domain.
func (w *worker) execRoot(lo, hi int64) {
	p := w.p
	lp := &p.loops[0]
	last := len(p.loops) == 1
	if lp.drives == 0 {
		lvl := &p.A.Levels[0]
		if lvl.Kind == format.Compressed {
			for q := lo; q < hi; q++ {
				w.coord[lp.cix] = lvl.Crd[q]
				w.pos[0] = q
				if len(lp.resolve) > 0 && !w.resolveAt(0) {
					continue
				}
				if last {
					w.body()
				} else {
					w.exec(1)
				}
			}
			return
		}
		for x := lo; x < hi; x++ {
			w.coord[lp.cix] = int32(x)
			w.pos[0] = x
			if len(lp.resolve) > 0 && !w.resolveAt(0) {
				continue
			}
			if last {
				w.body()
			} else {
				w.exec(1)
			}
		}
		return
	}
	for x := lo; x < hi; x++ {
		w.coord[lp.cix] = int32(x)
		if len(lp.resolve) > 0 && !w.resolveAt(0) {
			continue
		}
		if last {
			w.body()
		} else {
			w.exec(1)
		}
	}
}

// run executes the plan with the given operand setup applied to each worker.
func (p *Plan) run(setup func(w *worker)) {
	n := p.rootDomain()
	workers := make([]*worker, p.threads)
	for i := range workers {
		workers[i] = p.newWorker()
		setup(workers[i])
	}
	ParallelFor(n, p.chunk, p.threads, func(id int, lo, hi int64) {
		workers[id].execRoot(lo, hi)
	})
}

// RunSpMV computes out = A*b. b has length NumCols, out length NumRows.
// Blocked vector layouts from the SuperSchedule are applied internally
// (repacking is part of the measured kernel, mirroring the locality cost of
// a non-canonical dense layout).
func (p *Plan) RunSpMV(b, out []float32) error {
	if p.Alg != schedule.SpMV {
		return fmt.Errorf("kernel: RunSpMV on %v plan", p.Alg)
	}
	if len(b) != int(p.dims[1]) || len(out) != int(p.dims[0]) {
		return fmt.Errorf("kernel: SpMV operand lengths %d/%d, want %d/%d", len(b), len(out), p.dims[1], p.dims[0])
	}
	bBuf := b
	if p.bSwap {
		bBuf = make([]float32, int64(p.bBlocks)*int64(p.splits[1]))
		s := int64(p.splits[1])
		for k := int64(0); k < int64(p.dims[1]); k++ {
			bBuf[(k%s)*int64(p.bBlocks)+k/s] = b[k]
		}
	}
	cBuf := out
	if p.cSwap {
		cBuf = make([]float32, int64(p.cBlocks)*int64(p.splits[0]))
	} else {
		for i := range cBuf {
			cBuf[i] = 0
		}
	}
	p.run(func(w *worker) { w.bVec, w.cVec = bBuf, cBuf })
	if p.cSwap {
		s := int64(p.splits[0])
		for i := int64(0); i < int64(p.dims[0]); i++ {
			out[i] = cBuf[(i%s)*int64(p.cBlocks)+i/s]
		}
	}
	return nil
}

// RunSpMM computes out = A*b for dense row-major b (NumCols x N) and out
// (NumRows x N).
func (p *Plan) RunSpMM(b, out *tensor.Dense) error {
	if p.Alg != schedule.SpMM {
		return fmt.Errorf("kernel: RunSpMM on %v plan", p.Alg)
	}
	if b.NumRows != int(p.dims[1]) || out.NumRows != int(p.dims[0]) || b.NumCols != out.NumCols {
		return fmt.Errorf("kernel: SpMM shapes A=%dx%d b=%dx%d out=%dx%d",
			p.dims[0], p.dims[1], b.NumRows, b.NumCols, out.NumRows, out.NumCols)
	}
	out.Zero()
	p.runSpMM(b, out)
	return nil
}

// runSpMM accumulates A*b into out without zeroing it first — the body only
// ever adds, so per-region plans of a partitioned tensor can share one
// output, each contributing its region's partial sums.
func (p *Plan) runSpMM(b, out *tensor.Dense) {
	p.run(func(w *worker) { w.bMat, w.outMat, w.denseN = b.Data, out.Data, b.NumCols })
}

// RunSDDMM computes outVals[p] = A.Vals[p] * (B[i,:] . C[:,j]) for every
// stored position p of A at coordinates (i, j). b is row-major NumRows x K;
// ct is C transposed, row-major NumCols x K. outVals must have length
// len(A.Vals) (the stored positions of the plan's format).
func (p *Plan) RunSDDMM(b, ct *tensor.Dense, outVals []float32) error {
	if p.Alg != schedule.SDDMM {
		return fmt.Errorf("kernel: RunSDDMM on %v plan", p.Alg)
	}
	if b.NumRows != int(p.dims[0]) || ct.NumRows != int(p.dims[1]) || b.NumCols != ct.NumCols {
		return fmt.Errorf("kernel: SDDMM shapes A=%dx%d b=%dx%d ct=%dx%d",
			p.dims[0], p.dims[1], b.NumRows, b.NumCols, ct.NumRows, ct.NumCols)
	}
	if len(outVals) != len(p.A.Vals) {
		return fmt.Errorf("kernel: SDDMM output length %d, want %d", len(outVals), len(p.A.Vals))
	}
	for i := range outVals {
		outVals[i] = 0
	}
	p.runSDDMM(b, ct, outVals)
	return nil
}

// runSDDMM accumulates into a pre-zeroed outVals slice of length
// len(p.A.Vals); a partitioned execution hands each region plan its segment
// of the concatenated output.
func (p *Plan) runSDDMM(b, ct *tensor.Dense, outVals []float32) {
	p.run(func(w *worker) { w.bMat, w.cMat, w.outVals, w.denseN = b.Data, ct.Data, outVals, b.NumCols })
}

// RunMTTKRP computes out[i,j] += A[i,k,l] * b[k,j] * c[l,j] for dense
// row-major b (dims[1] x J) and c (dims[2] x J), out (dims[0] x J).
func (p *Plan) RunMTTKRP(b, c, out *tensor.Dense) error {
	if p.Alg != schedule.MTTKRP {
		return fmt.Errorf("kernel: RunMTTKRP on %v plan", p.Alg)
	}
	if b.NumRows != int(p.dims[1]) || c.NumRows != int(p.dims[2]) || out.NumRows != int(p.dims[0]) ||
		b.NumCols != out.NumCols || c.NumCols != out.NumCols {
		return fmt.Errorf("kernel: MTTKRP shapes b=%dx%d c=%dx%d out=%dx%d for A dims %v",
			b.NumRows, b.NumCols, c.NumRows, c.NumCols, out.NumRows, out.NumCols, p.dims)
	}
	out.Zero()
	p.run(func(w *worker) { w.bMat, w.cMat, w.outMat, w.denseN = b.Data, c.Data, out.Data, b.NumCols })
	return nil
}
