package kernel

import (
	"math/rand"
	"testing"

	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// ucuFormat is the Figure 14 one-dimensional dense-block SpMV format:
// i1:U k1:C i0:U (k0 trivially U).
func ucuFormat(b int32) format.Format {
	return format.Format{
		Splits: []int32{b, 1},
		Levels: []format.Level{
			{Mode: 0, Kind: format.Uncompressed},
			{Mode: 1, Kind: format.Compressed},
			{Mode: 0, Inner: true, Kind: format.Uncompressed},
			{Mode: 1, Inner: true, Kind: format.Uncompressed},
		},
	}
}

func TestFastPathEngagesForBlockedSpMV(t *testing.T) {
	coo := testMatrix(40, 100, 90, 700)
	wl, err := NewWorkload(schedule.SpMV, coo, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref := RefSpMV(coo, wl.BVec())

	cases := []struct {
		name string
		f    format.Format
		want fastKind
	}{
		{"UCU i-blocked", ucuFormat(8), fastITail},
		{"BCSR", format.BCSR(4, 4), fastKTail},
		{"dense rows", format.Format{ // i1:U k1:U -> full dense row dot
			Splits: []int32{1, 1},
			Levels: []format.Level{
				{Mode: 0, Kind: format.Uncompressed},
				{Mode: 1, Kind: format.Uncompressed},
				{Mode: 0, Inner: true, Kind: format.Uncompressed},
				{Mode: 1, Inner: true, Kind: format.Uncompressed},
			},
		}, fastKTail},
		{"CSR (compressed tail: gather dot)", format.CSR(), fastKTailC},
	}
	for _, tc := range cases {
		ss := schedule.BestEffortSchedule(schedule.SpMV, tc.f, 2, 16)
		p, err := compileSingle(wl, ss, DefaultProfile(), 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.fastMode != tc.want {
			t.Errorf("%s: fastMode = %d, want %d", tc.name, p.fastMode, tc.want)
		}
		if _, err := wl.Run(p); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
			t.Fatalf("%s: differs from reference by %g", tc.name, d)
		}
	}
}

func TestFastPathCSCConcordant(t *testing.T) {
	// A concordant column-major traversal gets the scatter-axpy tail; the
	// best-effort parallel traversal of the same format is discordant
	// (locates into the i1 level) and must not.
	coo := testMatrix(44, 90, 80, 600)
	wl, _ := NewWorkload(schedule.SpMV, coo, 0)
	ref := RefSpMV(coo, wl.BVec())

	conc := schedule.ConcordantSchedule(schedule.SpMV, format.CSC(), 1, 16)
	p, err := compileSingle(wl, conc, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.fastMode != fastITailC {
		t.Fatalf("concordant CSC fastMode = %d, want %d", p.fastMode, fastITailC)
	}
	if _, err := wl.Run(p); err != nil {
		t.Fatal(err)
	}
	if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
		t.Fatalf("concordant CSC differs by %g", d)
	}

	// Hand-hoisted i1-parallel traversal of the column-major format: i1 is a
	// Compressed level located per iteration, so no fast tail applies.
	hoisted := schedule.ConcordantSchedule(schedule.SpMV, format.CSC(), 2, 16)
	hoisted.ComputeOrder = []schedule.IVar{
		{Mode: 0}, {Mode: 1}, {Mode: 1, Inner: true}, {Mode: 0, Inner: true},
	}
	hoisted.Parallel = schedule.IVar{Mode: 0}
	hoisted.Threads = 2
	p2, err := compileSingle(wl, hoisted, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.fastMode != fastNone {
		t.Fatalf("discordant CSC fastMode = %d, want none", p2.fastMode)
	}
	if _, err := wl.Run(p2); err != nil {
		t.Fatal(err)
	}
	if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
		t.Fatalf("discordant CSC differs by %g", d)
	}
}

func TestFastPathDisabledBySwappedLayouts(t *testing.T) {
	coo := testMatrix(41, 64, 64, 400)
	wl, _ := NewWorkload(schedule.SpMV, coo, 0)
	ref := RefSpMV(coo, wl.BVec())

	// BCSR fast path is a dot over b: a swapped b layout must disable it but
	// stay correct.
	ss := schedule.BestEffortSchedule(schedule.SpMV, format.BCSR(4, 4), 1, 16)
	ss.BLayout = schedule.Swapped
	p, err := compileSingle(wl, ss, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.fastMode != fastNone {
		t.Fatalf("fastMode = %d despite swapped b", p.fastMode)
	}
	if _, err := wl.Run(p); err != nil {
		t.Fatal(err)
	}
	if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
		t.Fatalf("swapped layout differs by %g", d)
	}

	// Swapped c layout on the UCU i-blocked format likewise.
	ss2 := schedule.BestEffortSchedule(schedule.SpMV, ucuFormat(8), 1, 16)
	ss2.CLayout = schedule.Swapped
	p2, err := compileSingle(wl, ss2, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.fastMode != fastNone {
		t.Fatalf("fastMode = %d despite swapped c", p2.fastMode)
	}
	if _, err := wl.Run(p2); err != nil {
		t.Fatal(err)
	}
	if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
		t.Fatalf("swapped c differs by %g", d)
	}
}

func TestFastPathPaddingClamped(t *testing.T) {
	// Dimensions deliberately not divisible by the block size: the fast loop
	// must clamp at the matrix boundary.
	rng := rand.New(rand.NewSource(42))
	coo := generate.Uniform(rng, 61, 53, 500)
	wl, _ := NewWorkload(schedule.SpMV, coo, 0)
	ref := RefSpMV(coo, wl.BVec())
	for _, f := range []format.Format{ucuFormat(8), format.BCSR(8, 8), format.BCSR(3, 7)} {
		ss := schedule.BestEffortSchedule(schedule.SpMV, f, 2, 8)
		p, err := compileSingle(wl, ss, DefaultProfile(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wl.Run(p); err != nil {
			t.Fatal(err)
		}
		if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
			t.Fatalf("%v: padding clamp broken, differs by %g", f, d)
		}
	}
}

func TestFastPathParallelSafe(t *testing.T) {
	coo := testMatrix(43, 128, 128, 1500)
	wl, _ := NewWorkload(schedule.SpMV, coo, 0)
	ref := RefSpMV(coo, wl.BVec())
	ss := schedule.BestEffortSchedule(schedule.SpMV, ucuFormat(16), 4, 2)
	p, err := compileSingle(wl, ss, DefaultProfile(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.fastMode != fastITail {
		t.Fatalf("fastMode = %d", p.fastMode)
	}
	for rep := 0; rep < 10; rep++ {
		if _, err := wl.Run(p); err != nil {
			t.Fatal(err)
		}
		if d := tensor.VecMaxAbsDiff(wl.OutVec(), ref); d > testTol {
			t.Fatalf("parallel fast path differs by %g on rep %d", d, rep)
		}
	}
}
