// Package kernel executes sparse tensor programs (SpMV, SpMM, SDDMM,
// MTTKRP) for any SuperSchedule: any split sizes, any storage level order
// and level formats for the sparse operand, any compute loop order, and
// OpenMP-style dynamic parallelism.
//
// It plays the role TACO's code generator plays in the paper. Rather than
// emitting C, Compile turns a (schedule, stored tensor) pair into a Plan — a
// loop-nest interpreter specialized at plan time: each compute loop either
// *drives* a storage level (concordant traversal: walk the level's pos/crd
// arrays directly) or iterates its coordinate space densely, with discordant
// storage levels resolved by locate operations (binary search on Compressed
// levels) exactly where TACO-generated code would perform them. Measured
// wall-clock times of Plans are the ground-truth runtimes used to train
// WACO's cost model.
package kernel

import (
	"errors"
	"fmt"
	"runtime"

	"waco/internal/format"
	"waco/internal/schedule"
)

// MachineProfile models the execution machine for an experiment. Different
// profiles stand in for the paper's Intel-vs-AMD hardware study (§5.5): a
// profile caps the usable worker count, which shifts which load-balancing
// and blocking configurations win.
type MachineProfile struct {
	Name      string
	ThreadCap int // maximum effective workers; 0 means runtime.NumCPU()
}

// DefaultProfile uses every available CPU.
func DefaultProfile() MachineProfile {
	return MachineProfile{Name: "default", ThreadCap: runtime.NumCPU()}
}

func (mp MachineProfile) cap() int {
	if mp.ThreadCap <= 0 {
		return runtime.NumCPU()
	}
	return mp.ThreadCap
}

// resolveStep locates storage level level once the loop at its depth has
// bound coordinate cix.
type resolveStep struct {
	level int
	cix   int
}

// loopPlan is one loop of the compiled nest.
type loopPlan struct {
	cix     int   // canonical index of this loop's variable (2*mode+inner)
	extent  int32 // iteration extent for dense loops
	drives  int   // storage level driven by this loop, or -1
	resolve []resolveStep
}

// Plan is a compiled (algorithm, SuperSchedule, stored tensor) triple, ready
// to execute repeatedly.
type Plan struct {
	Alg schedule.Algorithm
	SS  *schedule.SuperSchedule
	A   *format.Stored

	loops   []loopPlan
	nLevels int
	splits  []int32 // per mode
	dims    []int32 // per mode
	threads int
	chunk   int

	// SpMV vector layouts.
	bSwap, cSwap     bool
	bBlocks, cBlocks int32 // outer extents for swapped layouts

	// SpMV dense-tail fast path: when the deepest non-trivial loop drives a
	// trailing Uncompressed level whose positions (and the corresponding
	// dense-vector elements) are contiguous, the innermost iteration runs as
	// a tight dot-product / axpy loop — the code TACO emits for dense
	// blocks and dense rows, and the reason dense-block formats pay off on
	// real backends (Figure 14).
	fastMode  fastKind
	fastDepth int
	fastInner bool // the fast level is a mode's inner (split) part
}

type fastKind uint8

const (
	fastNone    fastKind = iota
	fastKTail            // SpMV dense tail over the reduction mode: dot product
	fastITail            // SpMV dense tail over the output mode: axpy
	fastKTailC           // SpMV compressed tail over the reduction mode: gather dot
	fastITailC           // SpMV compressed tail over the output mode: scatter axpy
	fastKTailMM          // SpMM dense tail over the reduction mode: fused row axpys
)

// Compile builds an execution plan. A must have been assembled in
// ss.AFormat. The profile caps the worker count.
func Compile(ss *schedule.SuperSchedule, a *format.Stored, profile MachineProfile) (*Plan, error) {
	if err := ss.Validate(); err != nil {
		return nil, err
	}
	if !a.Fmt.Equal(ss.AFormat) {
		return nil, fmt.Errorf("kernel: stored tensor format %v does not match schedule format %v", a.Fmt, ss.AFormat)
	}
	n := ss.Alg.SparseOrder()
	p := &Plan{
		Alg:     ss.Alg,
		SS:      ss,
		A:       a,
		nLevels: 2 * n,
		splits:  append([]int32(nil), ss.AFormat.Splits...),
		dims:    make([]int32, n),
		threads: ss.Threads,
		chunk:   ss.Chunk,
	}
	if c := profile.cap(); p.threads > c {
		p.threads = c
	}
	for m := 0; m < n; m++ {
		p.dims[m] = int32(a.Dims[m])
	}

	// Loop depth of each canonical variable.
	depthOf := make([]int, 2*n)
	p.loops = make([]loopPlan, 2*n)
	for d, v := range ss.ComputeOrder {
		cix := canonIx(v)
		depthOf[cix] = d
		ext := p.splits[v.Mode]
		if !v.Inner {
			ext = (p.dims[v.Mode] + ext - 1) / p.splits[v.Mode]
		}
		p.loops[d] = loopPlan{cix: cix, extent: ext, drives: -1}
	}

	// Classify every storage level as driven or located (§3.1: discordant
	// traversal needs searches over Compressed levels).
	resolvedAt := -1 // D(l-1): depth at which the previous level is resolved
	for l, lv := range ss.AFormat.Levels {
		cix := canonIx(schedule.IVar{Mode: lv.Mode, Inner: lv.Inner})
		d := depthOf[cix]
		if d > resolvedAt {
			// All ancestors resolve strictly earlier: this loop walks the
			// level directly.
			p.loops[d].drives = l
			resolvedAt = d
		} else {
			// Discordant: locate once the latest of {ancestors, this
			// coordinate} is bound.
			p.loops[resolvedAt].resolve = append(p.loops[resolvedAt].resolve, resolveStep{level: l, cix: cix})
		}
	}

	switch ss.Alg {
	case schedule.SpMV:
		p.bSwap = ss.BLayout == schedule.Swapped && p.splits[1] > 1
		p.cSwap = ss.CLayout == schedule.Swapped && p.splits[0] > 1
		p.bBlocks = (p.dims[1] + p.splits[1] - 1) / p.splits[1]
		p.cBlocks = (p.dims[0] + p.splits[0] - 1) / p.splits[0]
		p.detectFastPath()
	case schedule.SpMM:
		p.detectFastPathSpMM()
	}
	return p, nil
}

// tailLoopDepth finds the deepest non-trivial loop whose storage tail is
// contiguous: starting from the deepest loop, skip trivial tails (extent-1
// loops with no locates); the loop reached must drive a storage level below
// which every level is a trivial U (so consecutive iterations touch
// consecutive value positions). Returns -1 when no such loop exists. Depth 0
// is excluded: the parallel loop keeps its chunking exact.
func (p *Plan) tailLoopDepth() int {
	d := len(p.loops) - 1
	for d >= 0 {
		lp := &p.loops[d]
		if len(lp.resolve) > 0 {
			return -1
		}
		trivial := false
		if lp.drives >= 0 {
			lvl := &p.A.Levels[lp.drives]
			trivial = lvl.Kind == format.Uncompressed && lvl.Extent == 1
		} else {
			trivial = lp.extent == 1
		}
		if !trivial {
			break
		}
		d--
	}
	if d < 1 {
		return -1
	}
	lp := &p.loops[d]
	if lp.drives < 0 {
		return -1
	}
	lvl := &p.A.Levels[lp.drives]
	if lvl.Kind == format.Uncompressed && lvl.Extent <= 1 {
		return -1
	}
	for l := lp.drives + 1; l < p.nLevels; l++ {
		if p.A.Levels[l].Kind != format.Uncompressed || p.A.Levels[l].Extent != 1 {
			return -1
		}
	}
	return d
}

// detectFastPath finds the SpMV dense-tail specialization: the tail loop's
// coordinate must also advance the dense vector contiguously (an inner split
// part, or an outer part with split 1).
func (p *Plan) detectFastPath() {
	d := p.tailLoopDepth()
	if d < 0 {
		return
	}
	lp := &p.loops[d]
	lvl := &p.A.Levels[lp.drives]
	flv := p.SS.AFormat.Levels[lp.drives]
	contiguous := flv.Inner || p.splits[flv.Mode] == 1
	if !contiguous {
		return
	}
	compressed := lvl.Kind == format.Compressed
	switch flv.Mode {
	case 1: // reduction mode: dot product over b
		if p.bSwap {
			return
		}
		if compressed {
			p.fastMode = fastKTailC
		} else {
			p.fastMode = fastKTail
		}
	case 0: // output mode: axpy into c
		if p.cSwap {
			return
		}
		if compressed {
			p.fastMode = fastITailC
		} else {
			p.fastMode = fastITail
		}
	default:
		return
	}
	p.fastDepth = d
	p.fastInner = flv.Inner
}

// detectFastPathSpMM finds the SpMM dense-reduction-tail specialization: the
// tail loop drives an Uncompressed level over the reduction mode whose
// coordinate advances B's rows contiguously. Its body fuses the per-nonzero
// row axpys of one dense chunk and skips explicit padding zeros — the tight
// loop TACO emits for dense blocks, and what makes block/ELL region storage
// pay off for partitioned execution.
func (p *Plan) detectFastPathSpMM() {
	d := p.tailLoopDepth()
	if d < 0 {
		return
	}
	lp := &p.loops[d]
	if p.A.Levels[lp.drives].Kind != format.Uncompressed {
		return
	}
	flv := p.SS.AFormat.Levels[lp.drives]
	if flv.Mode != 1 {
		return
	}
	if !flv.Inner && p.splits[1] != 1 {
		return
	}
	p.fastMode = fastKTailMM
	p.fastDepth = d
	p.fastInner = flv.Inner
}

// fastSpMMTail executes the SpMM dense-tail specialization for the loop at
// fastDepth: one output row accumulates extent consecutive nonzeros' axpys
// against consecutive rows of B. Entries whose stored value is exactly zero
// are dense-interior padding and contribute nothing, so they are skipped
// before touching B.
func (w *worker) fastSpMMTail(base int64, extent int32) {
	p := w.p
	i := w.coord[0]*p.splits[0] + w.coord[1]
	if i >= p.dims[0] {
		return
	}
	kBase := int64(0)
	if p.fastInner {
		kBase = int64(w.coord[2]) * int64(p.splits[1])
	}
	ext := int64(extent)
	if kBase+ext > int64(p.dims[1]) {
		ext = int64(p.dims[1]) - kBase
		if ext <= 0 {
			return
		}
	}
	vals := p.A.Vals[base : base+ext]
	n := int64(w.denseN)
	cr := w.outMat[int64(i)*n : int64(i)*n+n]
	for x, v := range vals {
		if v == 0 {
			continue
		}
		br := w.bMat[(kBase+int64(x))*n : (kBase+int64(x))*n+n]
		for j, bv := range br {
			cr[j] += v * bv
		}
	}
}

// fastSpMVC executes the compressed-tail specialization: a tight gather dot
// product or scatter axpy over one segment of the level's crd/vals arrays
// (compressed levels never contain padding, so only the Uncompressed-derived
// coordinates need boundary guards).
func (w *worker) fastSpMVC(lvl *format.StoredLevel, parent int64) {
	p := w.p
	lo, hi := lvl.Pos[parent], lvl.Pos[parent+1]
	if lo >= hi {
		return
	}
	crd := lvl.Crd[lo:hi]
	vals := p.A.Vals[lo:hi]
	if p.fastMode == fastKTailC {
		i := w.coord[0]*p.splits[0] + w.coord[1]
		if i >= p.dims[0] {
			return
		}
		kBase := int64(0)
		if p.fastInner {
			kBase = int64(w.coord[2]) * int64(p.splits[1])
		}
		b := w.bVec[kBase:]
		var acc float32
		for x, v := range vals {
			acc += v * b[crd[x]]
		}
		ci := int64(i)
		if p.cSwap {
			ci = int64(i%p.splits[0])*int64(p.cBlocks) + int64(i/p.splits[0])
		}
		w.cVec[ci] += acc
		return
	}
	// fastITailC
	k := w.coord[2]*p.splits[1] + w.coord[3]
	if k >= p.dims[1] {
		return
	}
	bi := int64(k)
	if p.bSwap {
		bi = int64(k%p.splits[1])*int64(p.bBlocks) + int64(k/p.splits[1])
	}
	bk := w.bVec[bi]
	c := w.cVec
	iBase := int64(0)
	if p.fastInner {
		iBase = int64(w.coord[0]) * int64(p.splits[0])
	}
	for x, v := range vals {
		c[iBase+int64(crd[x])] += v * bk
	}
}

// fastSpMV executes the dense-tail specialization for the loop at fastDepth
// with the given contiguous value base position and level extent.
func (w *worker) fastSpMV(base int64, extent int32) {
	p := w.p
	if p.fastMode == fastKTail {
		i := w.coord[0]*p.splits[0] + w.coord[1]
		if i >= p.dims[0] {
			return
		}
		kBase := int64(0)
		if p.fastInner {
			kBase = int64(w.coord[2]) * int64(p.splits[1])
		}
		ext := int64(extent)
		if kBase+ext > int64(p.dims[1]) {
			ext = int64(p.dims[1]) - kBase
			if ext <= 0 {
				return
			}
		}
		vals := p.A.Vals[base : base+ext]
		bseg := w.bVec[kBase : kBase+ext]
		var acc float32
		for x, v := range vals {
			acc += v * bseg[x]
		}
		ci := int64(i)
		if p.cSwap {
			ci = int64(i%p.splits[0])*int64(p.cBlocks) + int64(i/p.splits[0])
		}
		w.cVec[ci] += acc
		return
	}
	// fastITail
	k := w.coord[2]*p.splits[1] + w.coord[3]
	if k >= p.dims[1] {
		return
	}
	bi := int64(k)
	if p.bSwap {
		bi = int64(k%p.splits[1])*int64(p.bBlocks) + int64(k/p.splits[1])
	}
	bk := w.bVec[bi]
	iBase := int64(0)
	if p.fastInner {
		iBase = int64(w.coord[0]) * int64(p.splits[0])
	}
	ext := int64(extent)
	if iBase+ext > int64(p.dims[0]) {
		ext = int64(p.dims[0]) - iBase
		if ext <= 0 {
			return
		}
	}
	vals := p.A.Vals[base : base+ext]
	cseg := w.cVec[iBase : iBase+ext]
	for x, v := range vals {
		cseg[x] += v * bk
	}
}

// EstimateWork predicts the loop-nest body visit count of one execution: the
// product of dense-loop extents and the average fan-out of driven storage
// levels. A fully concordant plan estimates ~nnz; discordant plans that
// densely iterate large split extents estimate orders of magnitude more.
// Callers use it to exclude configurations that would run unboundedly long —
// the static analog of the paper's >1-minute exclusion rule, needed because
// a single execution cannot be interrupted once started.
func (p *Plan) EstimateWork() float64 {
	work := 1.0
	for d := range p.loops {
		lp := &p.loops[d]
		if lp.drives >= 0 {
			lvl := &p.A.Levels[lp.drives]
			parentCount := 1.0
			if lp.drives > 0 {
				parentCount = float64(p.A.Levels[lp.drives-1].PosCount)
			}
			// An empty parent level means the subtree is never entered (an
			// empty tensor, or an empty region of a partitioned one); without
			// the guard the fan-out average is 0/0 = NaN, which poisons the
			// whole estimate and defeats CheckWork — NaN compares false
			// against any limit.
			avg := 1.0
			if parentCount > 0 {
				avg = float64(lvl.PosCount) / parentCount
			}
			if avg < 1 {
				avg = 1
			}
			work *= avg
		} else {
			work *= float64(lp.extent)
		}
	}
	return work
}

// ErrWorkLimit reports a plan excluded by the work estimate.
var ErrWorkLimit = errors.New("kernel: estimated work exceeds limit")

// CheckWork returns ErrWorkLimit when the plan's estimated work exceeds
// maxWork (<= 0 applies DefaultWorkLimit relative to the stored size).
func (p *Plan) CheckWork(maxWork float64) error {
	limit := maxWork
	if limit <= 0 {
		limit = DefaultWorkLimit(len(p.A.Vals))
	}
	if w := p.EstimateWork(); w > limit {
		return fmt.Errorf("%w: estimated %.3g body visits (limit %.3g)", ErrWorkLimit, w, limit)
	}
	return nil
}

// DefaultWorkLimit allows generous redundancy over the stored entry count
// before a configuration is considered hopeless (a schedule doing 64x
// redundant traversal work never wins).
func DefaultWorkLimit(storedEntries int) float64 {
	return 2e6 + 64*float64(storedEntries)
}

func canonIx(v schedule.IVar) int {
	ix := 2 * v.Mode
	if v.Inner {
		ix++
	}
	return ix
}

// worker holds one goroutine's traversal state plus the operand references.
type worker struct {
	p     *Plan
	pos   []int64 // current position per storage level
	coord []int32 // current coordinate per canonical variable

	// Operands; which fields are set depends on the algorithm.
	bVec, cVec []float32 // SpMV: input vector, output vector (layout applied)
	bMat       []float32 // row-major dense operand, rowLen bCols
	cMat       []float32 // second dense operand (SDDMM: C^T; MTTKRP: C)
	outMat     []float32 // dense output, row-major
	outVals    []float32 // SDDMM sparse output values (parallel to A.Vals)
	denseN     int       // inner dense dimension (row length)
}

func (p *Plan) newWorker() *worker {
	return &worker{
		p:     p,
		pos:   make([]int64, p.nLevels),
		coord: make([]int32, p.nLevels),
	}
}

// resolveAt performs the locate steps attached to depth d. It reports false
// when a Compressed locate misses, meaning this coordinate combination has
// no stored entry.
func (w *worker) resolveAt(d int) bool {
	steps := w.p.loops[d].resolve
	for s := range steps {
		st := &steps[s]
		var parent int64
		if st.level > 0 {
			parent = w.pos[st.level-1]
		}
		lvl := &w.p.A.Levels[st.level]
		coord := w.coord[st.cix]
		if lvl.Kind == format.Uncompressed {
			w.pos[st.level] = parent*int64(lvl.Extent) + int64(coord)
		} else {
			q, ok := lvl.LocateC(parent, coord)
			if !ok {
				return false
			}
			w.pos[st.level] = q
		}
	}
	return true
}

// exec runs loop depth d and everything below it.
func (w *worker) exec(d int) {
	p := w.p
	lp := &p.loops[d]
	last := d == len(p.loops)-1
	if lv := lp.drives; lv >= 0 {
		level := &p.A.Levels[lv]
		var parent int64
		if lv > 0 {
			parent = w.pos[lv-1]
		}
		if level.Kind == format.Uncompressed {
			base := parent * int64(level.Extent)
			if p.fastMode != fastNone && d == p.fastDepth {
				if p.fastMode == fastKTailMM {
					w.fastSpMMTail(base, level.Extent)
				} else {
					w.fastSpMV(base, level.Extent)
				}
				return
			}
			for x := int32(0); x < level.Extent; x++ {
				w.coord[lp.cix] = x
				w.pos[lv] = base + int64(x)
				if len(lp.resolve) > 0 && !w.resolveAt(d) {
					continue
				}
				if last {
					w.body()
				} else {
					w.exec(d + 1)
				}
			}
		} else {
			if p.fastMode != fastNone && d == p.fastDepth {
				w.fastSpMVC(level, parent)
				return
			}
			for q := level.Pos[parent]; q < level.Pos[parent+1]; q++ {
				w.coord[lp.cix] = level.Crd[q]
				w.pos[lv] = q
				if len(lp.resolve) > 0 && !w.resolveAt(d) {
					continue
				}
				if last {
					w.body()
				} else {
					w.exec(d + 1)
				}
			}
		}
		return
	}
	for x := int32(0); x < lp.extent; x++ {
		w.coord[lp.cix] = x
		if len(lp.resolve) > 0 && !w.resolveAt(d) {
			continue
		}
		if last {
			w.body()
		} else {
			w.exec(d + 1)
		}
	}
}

// body dispatches the innermost computation. All storage levels are resolved;
// w.pos[nLevels-1] is the values position.
func (w *worker) body() {
	p := w.p
	switch p.Alg {
	case schedule.SpMV:
		i := w.coord[0]*p.splits[0] + w.coord[1]
		k := w.coord[2]*p.splits[1] + w.coord[3]
		if i >= p.dims[0] || k >= p.dims[1] {
			return
		}
		v := p.A.Vals[w.pos[p.nLevels-1]]
		bi, ci := int64(k), int64(i)
		if p.bSwap {
			bi = int64(k%p.splits[1])*int64(p.bBlocks) + int64(k/p.splits[1])
		}
		if p.cSwap {
			ci = int64(i%p.splits[0])*int64(p.cBlocks) + int64(i/p.splits[0])
		}
		w.cVec[ci] += v * w.bVec[bi]

	case schedule.SpMM:
		i := w.coord[0]*p.splits[0] + w.coord[1]
		k := w.coord[2]*p.splits[1] + w.coord[3]
		if i >= p.dims[0] || k >= p.dims[1] {
			return
		}
		v := p.A.Vals[w.pos[p.nLevels-1]]
		n := w.denseN
		br := w.bMat[int(k)*n : int(k)*n+n]
		cr := w.outMat[int(i)*n : int(i)*n+n]
		for j := range cr {
			cr[j] += v * br[j]
		}

	case schedule.SDDMM:
		i := w.coord[0]*p.splits[0] + w.coord[1]
		j := w.coord[2]*p.splits[1] + w.coord[3]
		if i >= p.dims[0] || j >= p.dims[1] {
			return
		}
		pv := w.pos[p.nLevels-1]
		a := p.A.Vals[pv]
		n := w.denseN
		br := w.bMat[int(i)*n : int(i)*n+n]
		ct := w.cMat[int(j)*n : int(j)*n+n]
		var acc float32
		for q := range br {
			acc += br[q] * ct[q]
		}
		w.outVals[pv] += a * acc

	case schedule.MTTKRP:
		i := w.coord[0]*p.splits[0] + w.coord[1]
		k := w.coord[2]*p.splits[1] + w.coord[3]
		l := w.coord[4]*p.splits[2] + w.coord[5]
		if i >= p.dims[0] || k >= p.dims[1] || l >= p.dims[2] {
			return
		}
		v := p.A.Vals[w.pos[p.nLevels-1]]
		n := w.denseN
		br := w.bMat[int(k)*n : int(k)*n+n]
		cr := w.cMat[int(l)*n : int(l)*n+n]
		dr := w.outMat[int(i)*n : int(i)*n+n]
		for j := range dr {
			dr[j] += v * br[j] * cr[j]
		}
	}
}
