package kernel

import (
	"waco/internal/schedule"
)

// compileSingle compiles a schedule known to be non-decomposed and returns
// the concrete *Plan so tests can inspect interpreter internals (fast-path
// mode, resolved thread count). It panics via the type assertion if the
// schedule unexpectedly yields a partitioned plan.
func compileSingle(wl *Workload, ss *schedule.SuperSchedule, profile MachineProfile, maxEntries int64) (*Plan, error) {
	e, err := wl.Compile(ss, profile, maxEntries)
	if err != nil {
		return nil, err
	}
	return e.(*Plan), nil
}
