package kernel

import (
	"sync"
	"sync/atomic"
)

// ParallelFor executes fn over [0, n) split into fixed-size chunks that
// workers claim dynamically from a shared atomic counter — the semantics of
// OpenMP's schedule(dynamic, chunk), which the paper's SuperSchedule
// parallelize directive maps to. fn receives the worker id and a [lo, hi)
// sub-range. With workers <= 1 the range runs inline on worker 0.
func ParallelFor(n int64, chunk, workers int, fn func(worker int, lo, hi int64)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	nChunks := (n + int64(chunk) - 1) / int64(chunk)
	if workers > int(nChunks) {
		workers = int(nChunks)
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(id int) {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= nChunks {
					return
				}
				lo := c * int64(chunk)
				hi := lo + int64(chunk)
				if hi > n {
					hi = n
				}
				fn(id, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}
