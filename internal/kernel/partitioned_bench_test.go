package kernel

import (
	"math/rand"
	"testing"

	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// benchSkewedMatrix is the partitioned-kernel benchmark fixture: a matrix
// whose mass matches the decomposition presets' rules — most nonzeros in
// fully dense 8x8 tiles, a handful of very heavy rows (well past 4x the row
// mean), and a scattered tail. A single BCSR pays padding blowup on the
// scatter and heavy rows; a single CSR pays per-entry interpreter overhead
// on the dense mass; the partitioned plan runs each region's own fast path.
func benchSkewedMatrix() *tensor.COO {
	rng := rand.New(rand.NewSource(77))
	dim := 768
	c := generate.BlockDense(rng, dim, dim, 8, 160, 1.0)
	for r := 0; r < 6; r++ {
		row := int32(100*r + 50)
		for k := int32(0); k < int32(dim); k += 2 {
			c.Append(float32(k%11)+1, row, k)
		}
	}
	sc := generate.Uniform(rng, dim, dim, 2500)
	for p := 0; p < sc.NNZ(); p++ {
		c.Append(sc.Vals[p], sc.Coords[0][p], sc.Coords[1][p])
	}
	c.SortRowMajor()
	c.Dedup()
	return c
}

const benchDenseN = 32

func benchSpMM(b *testing.B, ss *schedule.SuperSchedule) {
	coo := benchSkewedMatrix()
	wl, err := NewWorkload(schedule.SpMM, coo, benchDenseN)
	if err != nil {
		b.Fatal(err)
	}
	p, err := wl.Compile(ss, DefaultProfile(), 0)
	if err != nil {
		b.Fatal(err)
	}
	// Correctness guard: a benchmark of a wrong kernel is worse than none.
	if _, err := wl.Run(p); err != nil {
		b.Fatal(err)
	}
	if d := wl.OutMat().MaxAbsDiff(RefSpMM(coo, wl.BMat())); d > testTol {
		b.Fatalf("kernel differs from reference by %g", d)
	}
	b.SetBytes(p.StoredBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wl.Run(p); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs_per_sec")
}

// BenchmarkPartSpMMPartitioned runs the full decomposition: blocks in BCSR,
// heavy rows in ELL-like storage, tail in CSR.
func BenchmarkPartSpMMPartitioned(b *testing.B) {
	ss := schedule.DefaultSchedule(schedule.SpMM, 4)
	ss.Decomp = schedule.DecompFull
	benchSpMM(b, ss)
}

// BenchmarkPartSpMMSingleCSR is the best row-compressed single format.
func BenchmarkPartSpMMSingleCSR(b *testing.B) {
	benchSpMM(b, schedule.DefaultSchedule(schedule.SpMM, 4))
}

// BenchmarkPartSpMMSingleBCSR stores the whole matrix in 8x8 blocks.
func BenchmarkPartSpMMSingleBCSR(b *testing.B) {
	benchSpMM(b, schedule.BestEffortSchedule(schedule.SpMM, format.BCSR(8, 8), 4, 32))
}
