package difftest

import (
	"fmt"
	"testing"

	"waco/internal/format"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

// TestDifferentialSpMM sweeps the full zoo across every decomposition preset
// and serial/parallel execution, checking each run against the dense
// reference and the single-format path.
func TestDifferentialSpMM(t *testing.T) {
	profile := kernel.DefaultProfile()
	for _, tc := range Zoo(101) {
		for _, dec := range schedule.Decompositions {
			if dec == schedule.DecompNone {
				continue // the single-format path is the oracle, not the subject
			}
			for _, threads := range []int{1, 4} {
				name := fmt.Sprintf("%s/%v/t%d", tc.Name, dec, threads)
				t.Run(name, func(t *testing.T) {
					ss := decompSchedule(schedule.SpMM, dec, threads)
					if err := CheckSpMM(tc.COO, ss, 8, profile); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestDifferentialSDDMM is the SDDMM sweep, compared per original nonzero.
func TestDifferentialSDDMM(t *testing.T) {
	profile := kernel.DefaultProfile()
	for _, tc := range Zoo(202) {
		for _, dec := range schedule.Decompositions {
			if dec == schedule.DecompNone {
				continue
			}
			for _, threads := range []int{1, 4} {
				name := fmt.Sprintf("%s/%v/t%d", tc.Name, dec, threads)
				t.Run(name, func(t *testing.T) {
					ss := decompSchedule(schedule.SDDMM, dec, threads)
					if err := CheckSDDMM(tc.COO, ss, 8, profile); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestDifferentialAlternateTailFormats re-runs the mixed-skew workload with
// non-CSR tail formats, since the schedule's AFormat governs only the tail
// region of a partitioned plan.
func TestDifferentialAlternateTailFormats(t *testing.T) {
	profile := kernel.DefaultProfile()
	zoo := Zoo(303)
	var mixed Case
	for _, tc := range zoo {
		if tc.Name == "mixedskew" {
			mixed = tc
		}
	}
	if mixed.COO == nil {
		t.Fatal("zoo lost its mixedskew case")
	}
	for _, f := range []struct {
		name string
		fmt  format.Format
	}{
		{"CSC", format.CSC()},
		{"COOLike", format.COOLike(2)},
		{"BCSR", format.BCSR(2, 2)},
	} {
		t.Run(f.name, func(t *testing.T) {
			ss := schedule.BestEffortSchedule(schedule.SpMM, f.fmt, 2, 16)
			ss.Decomp = schedule.DecompFull
			if err := CheckSpMM(mixed.COO, ss, 8, profile); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestZooShape pins the zoo's degenerate coverage so a refactor cannot
// silently drop the edge cases the harness exists for.
func TestZooShape(t *testing.T) {
	zoo := Zoo(1)
	want := map[string]bool{
		"empty": false, "single": false, "allinblocks": false,
		"allheavy": false, "adversarialtail": false, "mixedskew": false,
	}
	for _, tc := range zoo {
		if _, ok := want[tc.Name]; ok {
			want[tc.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("zoo is missing the %q case", name)
		}
	}
	for _, tc := range zoo {
		if tc.Name == "empty" && tc.COO.NNZ() != 0 {
			t.Errorf("empty case has %d nonzeros", tc.COO.NNZ())
		}
		if tc.Name == "single" && tc.COO.NNZ() != 1 {
			t.Errorf("single case has %d nonzeros", tc.COO.NNZ())
		}
	}
}
