// Package difftest is the differential correctness harness for partitioned
// kernel execution: every workload in a generator zoo is run through a
// decomposed SuperSchedule and compared against two oracles — the dense
// reference kernels (kernel.RefSpMM / kernel.RefSDDMM) and the single-format
// execution path obtained by stripping the schedule's decomposition. The zoo
// deliberately includes the degenerate shapes that break partition logic:
// empty matrices, a single nonzero, and matrices whose nonzeros land entirely
// in one region.
package difftest

import (
	"fmt"
	"math/rand"

	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// Tol is the absolute comparison tolerance. Partial sums accumulate in a
// different order per region than the reference's row-major walk, so
// float32 results differ in the low bits; the operand fill patterns keep
// magnitudes small enough that 2e-3 absolute (the kernel package's own test
// tolerance) covers reassociation while still catching any dropped or
// double-counted nonzero, whose error is O(1) or larger.
const Tol = 2e-3

// Case is one zoo workload.
type Case struct {
	Name string
	COO  *tensor.COO
}

// Zoo returns the generator families the harness checks, seeded
// deterministically. Every family stresses a different region mix: banded
// (no extraction fires), power-law (heavy rows), block-dense (dense tiles),
// mixed skew (all three regions), plus the degenerate cases.
func Zoo(seed int64) []Case {
	rng := rand.New(rand.NewSource(seed))
	cases := []Case{
		{"banded", generate.Banded(rng, 48, 48, 2, 0.8)},
		{"powerlaw", generate.PowerLawRows(rng, 64, 48, 600, 1.4)},
		{"blockdense", generate.BlockDense(rng, 48, 48, 4, 6, 0.95)},
		{"uniform", generate.Uniform(rng, 56, 40, 300)},
		{"mesh", generate.Mesh2D(7)},
	}
	// Mixed skew: dense tiles plus a few very heavy rows plus scatter.
	mixed := generate.BlockDense(rng, 64, 64, 4, 4, 1.0)
	for r := 0; r < 2; r++ {
		row := int32(20 + 25*r)
		for k := int32(0); k < 64; k += 2 {
			mixed.Append(float32(k%7)+1, row, k)
		}
	}
	scatter := generate.Uniform(rng, 64, 64, 80)
	for p := 0; p < scatter.NNZ(); p++ {
		mixed.Append(scatter.Vals[p], scatter.Coords[0][p], scatter.Coords[1][p])
	}
	mixed.SortRowMajor()
	mixed.Dedup()
	cases = append(cases, Case{"mixedskew", mixed})

	// Degenerate: empty matrix.
	cases = append(cases, Case{"empty", tensor.NewCOO([]int{16, 16}, 0)})

	// Degenerate: a single nonzero.
	single := tensor.NewCOO([]int{16, 16}, 0)
	single.Append(2.5, 9, 3)
	cases = append(cases, Case{"single", single})

	// Degenerate: everything in the blocks region (one fully dense tile).
	oneBlock := tensor.NewCOO([]int{16, 16}, 0)
	for i := int32(8); i < 12; i++ {
		for k := int32(4); k < 8; k++ {
			oneBlock.Append(float32(i+k)/8, i, k)
		}
	}
	cases = append(cases, Case{"allinblocks", oneBlock})

	// Degenerate: everything heavy (uniform rows all at the mean).
	allHeavy := tensor.NewCOO([]int{12, 24}, 0)
	for i := int32(0); i < 12; i++ {
		for k := int32(0); k < 24; k += 3 {
			allHeavy.Append(float32(i%5)+1, i, k)
		}
	}
	cases = append(cases, Case{"allheavy", allHeavy})

	// Adversarial tail: one nonzero per row far apart, so extraction finds
	// nothing and the tail carries the whole matrix.
	tail := tensor.NewCOO([]int{40, 40}, 0)
	for i := int32(0); i < 40; i++ {
		tail.Append(float32(i%9)+1, i, (i*13)%40)
	}
	cases = append(cases, Case{"adversarialtail", tail})
	return cases
}

// decompSchedule is the partitioned schedule under test: the fixed-CSR
// default with the given decomposition, thread count, and dense width.
func decompSchedule(alg schedule.Algorithm, dec schedule.Decomposition, threads int) *schedule.SuperSchedule {
	ss := schedule.DefaultSchedule(alg, threads)
	ss.Decomp = dec
	return ss
}

// CheckSpMM compiles ss (partitioned when it carries a decomposition) for
// the matrix, runs it, and compares the output against the dense reference
// and against the single-format path with the decomposition stripped. A nil
// return means both oracles agree within Tol.
func CheckSpMM(coo *tensor.COO, ss *schedule.SuperSchedule, denseN int, profile kernel.MachineProfile) error {
	wl, err := kernel.NewWorkload(schedule.SpMM, coo, denseN)
	if err != nil {
		return err
	}
	p, err := wl.Compile(ss, profile, 0)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	if _, err := wl.Run(p); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	got := wl.OutMat().Clone()
	if ref := kernel.RefSpMM(coo, wl.BMat()); got.MaxAbsDiff(ref) > Tol {
		return fmt.Errorf("differs from dense reference by %g", got.MaxAbsDiff(ref))
	}
	single := ss.Clone()
	single.Decomp = schedule.DecompNone
	sp, err := wl.Compile(single, profile, 0)
	if err != nil {
		return fmt.Errorf("single-format compile: %w", err)
	}
	if _, err := wl.Run(sp); err != nil {
		return fmt.Errorf("single-format run: %w", err)
	}
	if d := got.MaxAbsDiff(wl.OutMat()); d > Tol {
		return fmt.Errorf("differs from single-format path by %g", d)
	}
	return nil
}

// CheckSDDMM is CheckSpMM for the sampled dense-dense product. Outputs are
// compared per original nonzero through each executable's own stored-value
// addressing, since the partitioned and single-format value layouts differ.
func CheckSDDMM(coo *tensor.COO, ss *schedule.SuperSchedule, denseN int, profile kernel.MachineProfile) error {
	wl, err := kernel.NewWorkload(schedule.SDDMM, coo, denseN)
	if err != nil {
		return err
	}
	p, err := wl.Compile(ss, profile, 0)
	if err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	out, err := wl.Run(p)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	single := ss.Clone()
	single.Decomp = schedule.DecompNone
	sp, err := wl.Compile(single, profile, 0)
	if err != nil {
		return fmt.Errorf("single-format compile: %w", err)
	}
	sout, err := wl.Run(sp)
	if err != nil {
		return fmt.Errorf("single-format run: %w", err)
	}
	ref := kernel.RefSDDMM(coo, wl.BMat(), wl.CMat())
	for q := 0; q < coo.NNZ(); q++ {
		ij := [2]int32{coo.Coords[0][q], coo.Coords[1][q]}
		pos, ok := p.LocateStored([]int32{ij[0], ij[1]})
		if !ok {
			return fmt.Errorf("nonzero (%d,%d) missing from partitioned storage", ij[0], ij[1])
		}
		if d := abs(out[pos] - ref[ij]); d > Tol {
			return fmt.Errorf("D(%d,%d) = %g, reference %g (diff %g)", ij[0], ij[1], out[pos], ref[ij], d)
		}
		spos, ok := sp.LocateStored([]int32{ij[0], ij[1]})
		if !ok {
			return fmt.Errorf("nonzero (%d,%d) missing from single-format storage", ij[0], ij[1])
		}
		if d := abs(out[pos] - sout[spos]); d > Tol {
			return fmt.Errorf("D(%d,%d): partitioned %g, single-format %g", ij[0], ij[1], out[pos], sout[spos])
		}
	}
	return nil
}

func abs(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
