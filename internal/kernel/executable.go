package kernel

import (
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// Executable is a compiled sparse tensor program ready to run repeatedly:
// either a single-format *Plan or a *PartitionedPlan executing one plan per
// region of a decomposed tensor. The Run methods of the algorithms a value
// does not implement return an error, mirroring Plan's behavior when invoked
// with the wrong algorithm.
type Executable interface {
	// Algorithm returns the compiled algorithm.
	Algorithm() schedule.Algorithm
	// Super returns the SuperSchedule the executable was compiled from.
	Super() *schedule.SuperSchedule
	// EstimateWork predicts the loop-nest body visit count of one execution.
	EstimateWork() float64
	// CheckWork returns ErrWorkLimit when the estimated work exceeds maxWork
	// (<= 0 applies DefaultWorkLimit relative to the stored size).
	CheckWork(maxWork float64) error
	// StoredBytes returns the sparse operand's storage footprint.
	StoredBytes() int64
	// StoredVals returns the stored-entry count (padding included); it is the
	// length RunSDDMM's output must have.
	StoredVals() int
	// LocateStored returns the global values position of the entry at the
	// given original coordinates, if any region stores that coordinate path.
	LocateStored(coords []int32) (int64, bool)

	RunSpMV(b, out []float32) error
	RunSpMM(b, out *tensor.Dense) error
	RunSDDMM(b, ct *tensor.Dense, outVals []float32) error
	RunMTTKRP(b, c, out *tensor.Dense) error
}

var (
	_ Executable = (*Plan)(nil)
	_ Executable = (*PartitionedPlan)(nil)
)

// Algorithm returns the compiled algorithm.
func (p *Plan) Algorithm() schedule.Algorithm { return p.Alg }

// Super returns the SuperSchedule the plan was compiled from.
func (p *Plan) Super() *schedule.SuperSchedule { return p.SS }

// StoredBytes returns the stored tensor's footprint.
func (p *Plan) StoredBytes() int64 { return p.A.Bytes() }

// StoredVals returns the stored-entry count (padding included).
func (p *Plan) StoredVals() int { return len(p.A.Vals) }

// LocateStored returns the values position of the entry at the given
// original coordinates.
func (p *Plan) LocateStored(coords []int32) (int64, bool) { return p.A.Locate(coords) }
