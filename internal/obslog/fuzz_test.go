package obslog

import (
	"bytes"
	"testing"

	"waco/internal/schedule"
)

// FuzzObslogOpen throws arbitrary bytes at the framed reader. The contract
// under fuzz: Read never panics, never errors on inputs carrying a valid
// header, never reports goodBytes past the input, and every record it does
// return is Validate-clean. Seeds include a well-formed two-record log and
// assorted truncations/corruptions of it.
func FuzzObslogOpen(f *testing.F) {
	var valid bytes.Buffer
	if err := writeHeader(&valid); err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec := &Record{
			Fingerprint: "fuzz-seed",
			Dims:        []int{4, 4},
			Coords:      [][]int32{{0, 1, 2}, {1, 2, 3}},
			Schedule:    schedule.DefaultSchedule(schedule.SpMM, 1),
			Decomp:      "none",
			Seconds:     1e-6,
			Host:        "h",
			UnixNano:    1,
		}
		if err := encodeFrame(&valid, rec); err != nil {
			f.Fatal(err)
		}
	}
	whole := valid.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)-3])               // torn tail
	f.Add(whole[:headerSize])                 // header only
	f.Add(whole[:headerSize-2])               // torn header
	f.Add([]byte{})                           // empty log
	f.Add([]byte("WACOOBSLxxxxgarbage"))      // bad version bytes
	f.Add([]byte("NOTMAGIC\x01\x00\x00\x00")) // wrong magic
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)/2] ^= 0xa5
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := Read(bytes.NewReader(data))
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("goodBytes %d outside input of %d bytes", good, len(data))
		}
		if err != nil {
			if len(recs) != 0 || good != 0 {
				t.Fatalf("error %v alongside %d records / %d goodBytes", err, len(recs), good)
			}
			return
		}
		for i, rec := range recs {
			if verr := rec.Validate(); verr != nil {
				t.Fatalf("record %d fails validation after Read accepted it: %v", i, verr)
			}
		}
		// The intact prefix must re-read to the same records.
		if good > 0 {
			again, good2, err2 := Read(bytes.NewReader(data[:good]))
			if err2 != nil || good2 != good || len(again) != len(recs) {
				t.Fatalf("prefix re-read diverged: %d/%d records, %d/%d bytes, err %v",
					len(again), len(recs), good2, good, err2)
			}
		}
	})
}
