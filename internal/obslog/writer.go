package obslog

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Options configures an open measurement log.
type Options struct {
	// Host tags every appended record with the measuring machine. Defaults
	// to os.Hostname (best effort; empty on failure).
	Host string
	// Buffer bounds the records queued between Append and the background
	// writer. A full buffer drops (and counts) new records rather than
	// blocking the serving hot path. Default 256.
	Buffer int
}

func (o Options) withDefaults() Options {
	if o.Host == "" {
		o.Host, _ = os.Hostname() //waco:nolint errdrop -- best-effort tag; the field is documented to stay empty on failure
	}
	if o.Buffer <= 0 {
		o.Buffer = 256
	}
	return o
}

// item is one unit of writer-goroutine work: a record to append, or (when
// ack is non-nil) a flush barrier — everything enqueued before it is forced
// to stable storage before ack closes.
type item struct {
	rec *Record
	ack chan error
}

// Log is an open measurement log accepting concurrent appends. One
// background goroutine owns the file: it drains the bounded buffer in
// batches and fsyncs once per batch, so no request ever waits on disk.
type Log struct {
	path string
	opts Options
	f    *os.File
	ch   chan item
	done chan struct{}

	// mu serializes Append admission against Close: Close takes the write
	// half, waits out in-flight Appends, and marks the log closed before
	// closing the channel, so a send can never race the close.
	mu     sync.RWMutex
	closed bool

	existing int64
	appended atomic.Uint64
	dropped  atomic.Uint64
	synced   atomic.Uint64

	// wedged flips once the writer hits a write/sync error; later appends
	// are dropped up front instead of being counted as durable.
	wedged  atomic.Bool
	errMu   sync.Mutex
	lastErr error
}

// Open validates (and, if needed, repairs) the log at path and opens it for
// appending. An existing file is scanned from the start; a torn or corrupt
// tail — the signature of a crash mid-append — is truncated away so the
// file resumes from its intact prefix. A missing file is created with a
// fresh header.
func Open(path string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	existing, err := repair(f)
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing: %v)", err, cerr)
		}
		return nil, err
	}
	l := &Log{
		path:     path,
		opts:     opts,
		f:        f,
		ch:       make(chan item, opts.Buffer),
		done:     make(chan struct{}),
		existing: existing,
	}
	go l.run()
	return l, nil
}

// repair scans f from the start, truncates any torn or corrupt tail, and
// leaves the offset positioned for appending. It returns the intact record
// count; on error the caller owns closing f.
func repair(f *os.File) (int64, error) {
	recs, good, err := Read(f)
	if err != nil {
		return 0, err
	}
	if good < int64(headerSize) {
		// New or header-torn file: rewrite from scratch.
		if err := f.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := f.Seek(0, 0); err != nil {
			return 0, err
		}
		if err := writeHeader(f); err != nil {
			return 0, err
		}
		good = int64(headerSize)
	} else if err := f.Truncate(good); err != nil {
		return 0, err
	}
	if _, err := f.Seek(good, 0); err != nil {
		return 0, err
	}
	return int64(len(recs)), nil
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Existing returns how many intact records the file already held at Open.
func (l *Log) Existing() int64 { return l.existing }

// Appended returns records accepted by Append over this Log's lifetime
// (enqueued; durability lags by at most one batch until Flush/Close).
func (l *Log) Appended() uint64 { return l.appended.Load() }

// Dropped returns records rejected because the buffer was full, the log was
// closed, or a write error had already wedged the file.
func (l *Log) Dropped() uint64 { return l.dropped.Load() }

// Syncs returns how many batch fsyncs the writer has issued.
func (l *Log) Syncs() uint64 { return l.synced.Load() }

// Err returns the first write/sync error the background writer hit, if any.
func (l *Log) Err() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.lastErr
}

func (l *Log) setErr(err error) {
	l.errMu.Lock()
	if l.lastErr == nil {
		l.lastErr = err
	}
	l.errMu.Unlock()
	l.wedged.Store(true)
}

// Append enqueues one record, filling Host and UnixNano when unset. It
// never blocks: false means the record was dropped (buffer full or log
// closed) and counted in Dropped.
func (l *Log) Append(rec Record) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.closed || l.wedged.Load() {
		l.dropped.Add(1)
		return false
	}
	if err := rec.Validate(); err != nil {
		// An invalid record would end the readable prefix at its frame (Read
		// stops at the first invalid record), silently hiding everything
		// appended after it. Refuse it here instead.
		l.dropped.Add(1)
		return false
	}
	if rec.Host == "" {
		rec.Host = l.opts.Host
	}
	if rec.UnixNano == 0 {
		rec.UnixNano = now()
	}
	select {
	case l.ch <- item{rec: &rec}:
		l.appended.Add(1)
		return true
	default:
		l.dropped.Add(1)
		return false
	}
}

// Flush blocks until every record enqueued before the call is written and
// fsynced, and returns the writer's sticky error state. Called on serving
// drain so a shutdown never strands buffered measurements.
func (l *Log) Flush() error {
	l.mu.RLock()
	if l.closed {
		l.mu.RUnlock()
		return l.Err()
	}
	ack := make(chan error, 1)
	// Blocking send on purpose: Flush is not the hot path, and the barrier
	// must land behind every prior Append.
	l.ch <- item{ack: ack} //waco:nolint lockhold -- the writer goroutine drains ch without touching mu, so the send always completes; the read-lock only fences Close's channel-close
	l.mu.RUnlock()
	return <-ack
}

// Close flushes, fsyncs, and closes the file. Appends racing Close complete
// or are dropped; appends after Close are dropped. Close is idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return l.Err()
	}
	l.closed = true
	close(l.ch)
	l.mu.Unlock()
	<-l.done
	if err := l.f.Close(); err != nil {
		l.setErr(err)
	}
	return l.Err()
}

// run is the background writer: it batches whatever has accumulated in the
// buffer into one write + one fsync, so the per-record serving cost is a
// channel send and the disk sees large sequential appends.
func (l *Log) run() {
	defer close(l.done)
	var batch bytes.Buffer
	var acks []chan error
	flush := func() {
		if batch.Len() > 0 {
			if _, err := l.f.Write(batch.Bytes()); err != nil {
				l.setErr(fmt.Errorf("obslog: append: %w", err))
			} else if err := l.f.Sync(); err != nil {
				l.setErr(fmt.Errorf("obslog: sync: %w", err))
			} else {
				l.synced.Add(1)
			}
			batch.Reset()
		}
		err := l.Err()
		for _, ack := range acks {
			ack <- err
		}
		acks = acks[:0]
	}
	for it := range l.ch {
		l.consume(&batch, &acks, it)
		// Drain whatever else is already queued into the same batch.
	drain:
		for {
			select {
			case more, ok := <-l.ch:
				if !ok {
					flush()
					return
				}
				l.consume(&batch, &acks, more)
			default:
				break drain
			}
		}
		flush()
	}
	flush()
}

// consume folds one item into the pending batch.
func (l *Log) consume(batch *bytes.Buffer, acks *[]chan error, it item) {
	if it.ack != nil {
		*acks = append(*acks, it.ack)
		return
	}
	if err := encodeFrame(batch, it.rec); err != nil {
		// An unencodable record (oversized payload) is dropped, not fatal:
		// one pathological matrix must not wedge the log.
		l.appended.Add(^uint64(0)) // undo the optimistic count
		l.dropped.Add(1)
		l.setErr(err)
	}
}
