package obslog

import (
	"fmt"
	"math/rand"
	"sort"

	"waco/internal/dataset"
)

// Entries replays log records into dataset entries, grouping by fingerprint
// — all measurements of the same sparsity pattern become one entry's sample
// set, exactly the (matrix, SuperSchedule, runtime) triples the trainer
// consumes. Entry order is deterministic: fingerprints in first-appearance
// order of the record stream, samples in record order. Records whose
// pattern fails to rebuild are skipped and counted, never fatal — one bad
// record must not block a retrain over thousands of good ones.
func Entries(recs []*Record) (entries []*dataset.Entry, skipped int) {
	byFP := make(map[string]*dataset.Entry)
	for _, rec := range recs {
		e, ok := byFP[rec.Fingerprint]
		if !ok {
			coo, err := rec.COO()
			if err != nil {
				skipped++
				continue
			}
			e = &dataset.Entry{
				Name:   "obs-" + shortFP(rec.Fingerprint),
				Family: "serving",
				COO:    coo,
			}
			byFP[rec.Fingerprint] = e
			entries = append(entries, e)
		}
		e.Samples = append(e.Samples, dataset.Sample{SS: rec.Schedule, Seconds: rec.Seconds})
	}
	return entries, skipped
}

// shortFP abbreviates a fingerprint for entry names.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// SplitHoldout deterministically partitions replayed entries into a
// fine-tune set and a held-out gate slice: frac of the entries (at least
// one, at most all but one) are held out, chosen by a seeded permutation.
// The held-out slice is what the promotion gate scores the candidate and
// the incumbent on — data neither model fine-tuned on.
func SplitHoldout(entries []*dataset.Entry, frac float64, seed int64) (train, holdout []*dataset.Entry, err error) {
	if len(entries) < 2 {
		return nil, nil, fmt.Errorf("obslog: %d replayed entries, need at least 2 to hold out a gate slice", len(entries))
	}
	n := int(float64(len(entries)) * frac)
	if n < 1 {
		n = 1
	}
	if n >= len(entries) {
		n = len(entries) - 1
	}
	idx := rand.New(rand.NewSource(seed)).Perm(len(entries))
	held := make(map[int]bool, n)
	// Prefer holding out entries with enough samples to rank (>= 3): a
	// holdout of single-sample entries gates nothing.
	ranked := append([]int(nil), idx...)
	sort.SliceStable(ranked, func(a, b int) bool {
		return len(entries[ranked[a]].Samples) > len(entries[ranked[b]].Samples)
	})
	// Interleave: walk the seeded permutation, but guarantee the single
	// best-sampled entry is held out so the gate always has a rankable
	// slice.
	held[ranked[0]] = true
	for _, i := range idx {
		if len(held) >= n {
			break
		}
		held[i] = true
	}
	for i, e := range entries {
		if held[i] {
			holdout = append(holdout, e)
		} else {
			train = append(train, e)
		}
	}
	return train, holdout, nil
}
