package obslog

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"waco/internal/generate"
	"waco/internal/schedule"
)

// testRecord builds a valid record over a small random pattern.
func testRecord(t *testing.T, seed int64, fp string) Record {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := generate.Uniform(rng, 16, 16, 24)
	ss := schedule.DefaultSchedule(schedule.SpMM, 2)
	return Record{
		Fingerprint: fp,
		Dims:        coo.Dims,
		Coords:      coo.Coords,
		Schedule:    ss,
		Decomp:      ss.Decomp.String(),
		Seconds:     1e-5 * float64(1+seed%7),
		Stamp:       "deadbeef",
		Host:        "testhost",
		UnixNano:    123,
	}
}

func openTestLog(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.log")
	l := openTestLog(t, path, Options{Host: "h1"})
	const n = 20
	for i := 0; i < n; i++ {
		if !l.Append(testRecord(t, int64(i), fmt.Sprintf("fp-%d", i%5))) {
			t.Fatalf("append %d dropped", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Appended(); got != n {
		t.Fatalf("appended = %d, want %d", got, n)
	}
	if got := l.Dropped(); got != 0 {
		t.Fatalf("dropped = %d, want 0", got)
	}

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("read %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		want := testRecord(t, int64(i), fmt.Sprintf("fp-%d", i%5))
		if rec.Fingerprint != want.Fingerprint || rec.Seconds != want.Seconds ||
			rec.Schedule.String() != want.Schedule.String() || rec.Host != want.Host {
			t.Fatalf("record %d mismatch: got %+v", i, rec)
		}
		if _, err := rec.COO(); err != nil {
			t.Fatalf("record %d pattern does not rebuild: %v", i, err)
		}
	}

	// Reopen for append: existing records counted, new records land after.
	l2 := openTestLog(t, path, Options{})
	if got := l2.Existing(); got != n {
		t.Fatalf("existing = %d, want %d", got, n)
	}
	if !l2.Append(testRecord(t, 99, "fp-new")) {
		t.Fatal("append to reopened log dropped")
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n+1 || recs[n].Fingerprint != "fp-new" {
		t.Fatalf("after reopen: %d records, last %q", len(recs), recs[len(recs)-1].Fingerprint)
	}
}

// TestTornWriteRecovery is the crash-safety contract: truncate the file
// mid-record (simulating a crash between write and sync), reopen, and the
// intact prefix must survive while the torn tail is discarded — and the
// reopened log must keep accepting appends.
func TestTornWriteRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.log")
	l := openTestLog(t, path, Options{})
	const n = 8
	for i := 0; i < n; i++ {
		if !l.Append(testRecord(t, int64(i), fmt.Sprintf("fp-%d", i))) {
			t.Fatalf("append %d dropped", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, good, err := Read(bytes.NewReader(whole))
	if err != nil || len(recs) != n {
		t.Fatalf("pre-damage read: %d records, err %v", len(recs), err)
	}
	if good != int64(len(whole)) {
		t.Fatalf("goodBytes %d != file size %d", good, len(whole))
	}

	// Chop the file at every byte offset inside the last record's frame:
	// every prefix must recover exactly n-1 records (or n at the very end).
	_, prefixEnd, err := Read(bytes.NewReader(whole[:good-1]))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int64{prefixEnd + 1, prefixEnd + frameOverhead, prefixEnd + frameOverhead + 3, good - 1} {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2 := openTestLog(t, path, Options{})
		if got := l2.Existing(); got != n-1 {
			t.Fatalf("cut at %d: existing = %d, want %d", cut, got, n-1)
		}
		if !l2.Append(testRecord(t, 50, "fp-after-recovery")) {
			t.Fatal("append after recovery dropped")
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != n {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(recs), n)
		}
		for i := 0; i < n-1; i++ {
			if recs[i].Fingerprint != fmt.Sprintf("fp-%d", i) {
				t.Fatalf("cut at %d: record %d is %q", cut, i, recs[i].Fingerprint)
			}
		}
		if recs[n-1].Fingerprint != "fp-after-recovery" {
			t.Fatalf("cut at %d: recovered tail record is %q", cut, recs[n-1].Fingerprint)
		}
	}

	// Corrupt (rather than truncate) a byte inside the last record: the CRC
	// must reject it and recovery proceeds identically.
	damaged := append([]byte(nil), whole...)
	damaged[good-2] ^= 0xff
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	l3 := openTestLog(t, path, Options{})
	if got := l3.Existing(); got != n-1 {
		t.Fatalf("bit flip: existing = %d, want %d", got, n-1)
	}
	if err := l3.Close(); err != nil {
		t.Fatal(err)
	}

	// A header that is not an obslog file must refuse to open, not truncate
	// someone else's data.
	if err := os.WriteFile(path, []byte("NOTANOBSLOGFILE AT ALL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("opened a non-obslog file without error")
	}
}

func TestBoundedBufferDropsAndCounts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.log")
	l := openTestLog(t, path, Options{Buffer: 2})
	// Stall the writer by never yielding: enqueue from this goroutine only.
	// With a buffer of 2 the writer may drain some, so drops are not exact
	// — but appended + dropped must equal attempts, and a closed log drops
	// everything.
	const attempts = 500
	for i := 0; i < attempts; i++ {
		l.Append(testRecord(t, int64(i), "fp"))
	}
	if got := l.Appended() + l.Dropped(); got != attempts {
		t.Fatalf("appended+dropped = %d, want %d", got, attempts)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	before := l.Dropped()
	if l.Append(testRecord(t, 1, "fp")) {
		t.Fatal("append after Close succeeded")
	}
	if l.Dropped() != before+1 {
		t.Fatal("post-close append not counted as dropped")
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != l.Appended() {
		t.Fatalf("file has %d records, appended counter says %d", len(recs), l.Appended())
	}
}

func TestConcurrentAppendFlushClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.log")
	l := openTestLog(t, path, Options{Buffer: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Append(testRecord(t, int64(g*100+i), fmt.Sprintf("fp-%d", g)))
				if i%10 == 0 {
					_ = l.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(recs)) != l.Appended() {
		t.Fatalf("file has %d records, appended counter says %d (dropped %d)",
			len(recs), l.Appended(), l.Dropped())
	}
	if l.Syncs() == 0 {
		t.Fatal("writer never synced")
	}
}

func TestReplayEntriesAndHoldout(t *testing.T) {
	var recs []*Record
	for i := 0; i < 30; i++ {
		r := testRecord(t, int64(i%5), fmt.Sprintf("fp-%d", i%5))
		r.Seconds = 1e-5 + 1e-6*float64(i)
		recs = append(recs, &r)
	}
	// One poisoned record: pattern cannot rebuild.
	bad := testRecord(t, 3, "fp-bad")
	bad.Coords = [][]int32{{1}, {2, 3}}
	recs = append(recs, &bad)

	entries, skipped := Entries(recs)
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(entries) != 5 {
		t.Fatalf("entries = %d, want 5", len(entries))
	}
	total := 0
	for _, e := range entries {
		if e.COO == nil || len(e.Samples) == 0 {
			t.Fatalf("entry %s is hollow", e.Name)
		}
		total += len(e.Samples)
	}
	if total != 30 {
		t.Fatalf("replayed %d samples, want 30", total)
	}

	train, holdout, err := SplitHoldout(entries, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(holdout) != len(entries) || len(holdout) < 1 || len(train) < 1 {
		t.Fatalf("bad split: %d train, %d holdout", len(train), len(holdout))
	}
	// Deterministic in the seed.
	train2, holdout2, err := SplitHoldout(entries, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(train2) != len(train) || holdout2[0] != holdout[0] {
		t.Fatal("split is not deterministic in the seed")
	}

	if _, _, err := SplitHoldout(entries[:1], 0.5, 1); err == nil {
		t.Fatal("single-entry split should fail")
	}
}
