// Package obslog is the serving-observed measurement log: every completed
// /v1/tune measures ground-truth kernel runtimes, and this package persists
// the resulting (fingerprint, schedule, measured runtime) triples instead of
// throwing them away (ROADMAP item 4). The log is the bridge from serving
// back into training: cmd/waco-retrain replays it into dataset entries,
// fine-tunes the sealed cost model, and rotates a new artifact in behind the
// rank-quality promotion gates.
//
// The on-disk format is an append-only framed binary file built to survive
// crashes mid-write: an 8-byte magic plus a version header, then one frame
// per record — a little-endian payload length, a CRC-32 (IEEE) of the
// payload, and the gob-encoded payload itself, each record encoded with a
// fresh encoder so every frame is self-contained. Open validates the file
// from the start and truncates the first torn or corrupt frame and
// everything after it (a partially flushed tail must never poison a future
// replay), then appends after the intact prefix.
//
// Writing is batched off the serving hot path: Append enqueues into a
// bounded buffer and never blocks a request — when the buffer is full the
// record is dropped and counted (the drop counter is exported in /metrics).
// A background writer drains the buffer in batches, issuing one fsync per
// batch rather than per record; Flush and Close force the remaining buffer
// to stable storage.
package obslog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"waco/internal/schedule"
	"waco/internal/tensor"
)

const (
	logMagic   = "WACOOBSL"
	logVersion = uint32(1)
	// headerSize is the byte length of the magic + version prefix.
	headerSize = len(logMagic) + 4
	// frameOverhead is the per-record length + CRC prefix.
	frameOverhead = 8
	// maxRecordBytes bounds one frame's payload. A corrupt length field must
	// not make the reader allocate gigabytes; real records (a reduced-scale
	// matrix pattern plus one schedule) are kilobytes.
	maxRecordBytes = 16 << 20
)

// Record is one serving-observed measurement: the tuned matrix's sparsity
// pattern, the winning SuperSchedule, and the ground-truth runtime measured
// on the serving host, stamped with the artifact that chose the schedule and
// the host that measured it.
//
// The pattern is carried as dims + mode-major coordinates (values are
// irrelevant: WACO tunes the sparsity pattern) so a retrainer can rebuild
// the exact training input without access to the original request.
type Record struct {
	// Fingerprint is the serving cache key (serve.Fingerprint) of the
	// pattern — records with equal fingerprints describe the same matrix.
	Fingerprint string
	// Dims and Coords reconstruct the pattern (tensor.COO layout).
	Dims   []int
	Coords [][]int32
	// Schedule is the measured SuperSchedule (the tune's winner).
	Schedule *schedule.SuperSchedule
	// Decomp names the schedule's format decomposition ("none",
	// "rowblocks", ...) redundantly with Schedule.Decomp, so log analysis
	// can slice by decomposition without decoding schedules.
	Decomp string
	// Seconds is the measured median kernel runtime.
	Seconds float64
	// Stamp is the SHA-256 stamp of the sealed artifact that served the
	// tune (empty for in-process tuners).
	Stamp string
	// Host tags the measuring machine — measurements from different hosts
	// must not be mixed into one fine-tune (COGNATE adapts per machine).
	Host string
	// UnixNano is the append wall-clock time.
	UnixNano int64
}

// Validate checks structural integrity of a decoded record.
func (r *Record) Validate() error {
	if r.Fingerprint == "" {
		return errors.New("obslog: record has no fingerprint")
	}
	if len(r.Dims) < 2 || len(r.Dims) > 3 {
		return fmt.Errorf("obslog: record has %d dims, want 2 or 3", len(r.Dims))
	}
	if len(r.Coords) != len(r.Dims) {
		return fmt.Errorf("obslog: record has %d coord modes for %d dims", len(r.Coords), len(r.Dims))
	}
	nnz := len(r.Coords[0])
	if nnz == 0 {
		return errors.New("obslog: record has no nonzeros")
	}
	for m, cs := range r.Coords {
		if len(cs) != nnz {
			return fmt.Errorf("obslog: coord mode %d has %d points, mode 0 has %d", m, len(cs), nnz)
		}
	}
	if r.Schedule == nil {
		return errors.New("obslog: record has no schedule")
	}
	if err := r.Schedule.Validate(); err != nil {
		return fmt.Errorf("obslog: record schedule: %w", err)
	}
	if !(r.Seconds > 0) {
		return fmt.Errorf("obslog: non-positive measured runtime %v", r.Seconds)
	}
	return nil
}

// COO rebuilds the record's sparsity pattern (all values 1, like MatrixJSON
// bodies without vals). The returned tensor is validated.
func (r *Record) COO() (*tensor.COO, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	nnz := len(r.Coords[0])
	coo := tensor.NewCOO(r.Dims, nnz)
	point := make([]int32, len(r.Dims))
	for p := 0; p < nnz; p++ {
		for m := range r.Coords {
			point[m] = r.Coords[m][p]
		}
		coo.Append(1, point...)
	}
	if err := coo.Validate(); err != nil {
		return nil, err
	}
	return coo, nil
}

// encodeFrame appends one framed record to buf: length, CRC, payload.
func encodeFrame(buf *bytes.Buffer, rec *Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return fmt.Errorf("obslog: encoding record: %w", err)
	}
	if payload.Len() > maxRecordBytes {
		return fmt.Errorf("obslog: record payload %d bytes exceeds the %d frame limit", payload.Len(), maxRecordBytes)
	}
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload.Bytes()))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())
	return nil
}

// writeHeader writes the magic + version prefix.
func writeHeader(w io.Writer) error {
	if _, err := io.WriteString(w, logMagic); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, logVersion)
}

// Read decodes every intact record from r. It stops — without error — at
// the first torn or corrupt frame (short header, short payload, CRC
// mismatch, undecodable or invalid payload): a crash mid-append must yield
// the intact prefix, not a read failure. goodBytes is the file offset just
// past the last intact frame — the truncation point Open uses. An empty
// input is a valid empty log; a non-empty input that is not an obslog file
// (bad magic, unknown version) is an error.
func Read(r io.Reader) (recs []*Record, goodBytes int64, err error) {
	hdr := make([]byte, headerSize)
	n, err := io.ReadFull(r, hdr)
	if err == io.EOF && n == 0 {
		return nil, 0, nil
	}
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		// A file shorter than the header is a torn header write: treat the
		// whole file as tail.
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("obslog: reading header: %w", err)
	}
	if string(hdr[:len(logMagic)]) != logMagic {
		return nil, 0, fmt.Errorf("obslog: bad magic %q (not a measurement log)", hdr[:len(logMagic)])
	}
	if v := binary.LittleEndian.Uint32(hdr[len(logMagic):]); v != logVersion {
		return nil, 0, fmt.Errorf("obslog: log version %d, this build reads %d", v, logVersion)
	}
	goodBytes = int64(headerSize)

	var frame [frameOverhead]byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			return recs, goodBytes, nil // torn or clean EOF: intact prefix ends here
		}
		size := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if size == 0 || size > maxRecordBytes {
			return recs, goodBytes, nil
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, goodBytes, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, goodBytes, nil
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return recs, goodBytes, nil
		}
		if rec.Validate() != nil {
			return recs, goodBytes, nil
		}
		recs = append(recs, &rec)
		goodBytes += int64(frameOverhead) + int64(size)
	}
}

// ReadFile reads every intact record of the log at path. A missing file is
// an empty log, matching Open's semantics.
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	recs, _, err := Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return recs, err
}

// Now returns wall-clock nanoseconds for record timestamps; swapped in tests.
var now = func() int64 { return time.Now().UnixNano() }
