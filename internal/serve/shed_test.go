package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// blockPool occupies every worker slot so subsequent requests queue, and
// returns a release func. Tests use it to build deterministic queue depth.
func blockPool(t *testing.T, s *Server) (release func()) {
	t.Helper()
	for i := 0; i < cap(s.sem); i++ {
		s.sem <- struct{}{}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for i := 0; i < cap(s.sem); i++ {
				<-s.sem
			}
		})
	}
}

// TestShedByPriorityClass: with the pool wedged, cold tunes shed at a
// lower queue depth than predicts, and cached answers are never shed —
// the priority order the backpressure design promises.
func TestShedByPriorityClass(t *testing.T) {
	s := newTestServer(t, Options{
		MaxWorkers:       1,
		ShedTuneQueue:    1,
		ShedPredictQueue: 3,
	})
	// Warm the cache while the pool is free.
	warm := testMatrix(300)
	if _, err := s.Tune(context.Background(), warm); err != nil {
		t.Fatal(err)
	}

	release := blockPool(t, s)
	defer release()

	// Park one request in the queue so depth >= ShedTuneQueue.
	parked, parkCancel := context.WithCancel(context.Background())
	defer parkCancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Queued behind the wedged pool until the test cancels it.
		_, _ = s.Tune(parked, testMatrix(301))
	}()
	waitFor(t, func() bool { return s.QueueDepth() >= 1 })

	// Cold tune sheds at depth 1...
	if _, err := s.Tune(context.Background(), testMatrix(302)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("cold tune at shed depth: err = %v, want ErrOverloaded", err)
	}
	// ...but the cached matrix is still answered: cached work sheds last.
	res, err := s.Tune(context.Background(), warm)
	if err != nil || !res.Cached {
		t.Fatalf("cached tune during overload: res=%+v err=%v, want cached hit", res, err)
	}
	// Predict has headroom left at this depth (its threshold is higher) —
	// it queues rather than shedding, so give it a context we can abandon.
	predCtx, predCancel := context.WithCancel(context.Background())
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = s.Predict(predCtx, testMatrix(303), 2)
	}()
	waitFor(t, func() bool { return s.QueueDepth() >= 2 })
	predCancel()

	parkCancel()
	wg.Wait()

	st := s.Snapshot()
	if st.ShedTune == 0 {
		t.Fatalf("shed_tune = 0 after a shed tune: %+v", st)
	}
	if st.ShedPredict != 0 {
		t.Fatalf("predict shed below its threshold: %+v", st)
	}
}

// TestShedHTTPRetryAfter: a shed tune surfaces as 503 with a Retry-After
// header estimated from queue depth.
func TestShedHTTPRetryAfter(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 1, ShedTuneQueue: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := blockPool(t, s)
	defer release()

	// Queue one request so depth > 0, then hit the shed threshold.
	parked, parkCancel := context.WithCancel(context.Background())
	defer parkCancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = s.Predict(parked, testMatrix(310), 2)
	}()
	waitFor(t, func() bool { return s.QueueDepth() >= 1 })

	body := tuneBody(t, testMatrix(311))
	resp, err := http.Post(ts.URL+"/v1/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed tune over HTTP: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("503 without a usable Retry-After (%q)", ra)
	}
	parkCancel()
	<-done
}

// TestDrainSplitsHealthzFromReadyz: BeginDrain turns readiness off while
// liveness stays on — the router stops sending new work, the orchestrator
// does not kill the pod mid-drain.
func TestDrainSplitsHealthzFromReadyz(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	probe := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := probe("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d, want 200", resp.StatusCode)
	}
	s.BeginDrain()
	if resp := probe("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200 (still alive)", resp.StatusCode)
	}
	resp := probe("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz 503 without Retry-After")
	}
	if st := s.Snapshot(); !st.Draining {
		t.Fatal("stats do not report draining")
	}
	// Requests already admitted keep working through the drain window.
	if _, err := s.Tune(context.Background(), testMatrix(320)); err != nil {
		t.Fatalf("tune during drain (pre-close): %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
