package serve

import (
	"context"
	"path/filepath"
	"testing"

	"waco/internal/obslog"
)

// TestTunesFeedObservationLog: every actual search appends one measurement
// record per probed candidate — cache hits re-deliver without logging — and
// the records carry the serving artifact's stamp and rebuild the tuned
// pattern. Per-candidate records matter: they are what makes a replayed
// entry rankable (>= 2 samples to train on, >= 3 to gate on).
func TestTunesFeedObservationLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.log")
	l, err := obslog.Open(path, obslog.Options{Host: "test"})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{ObsLog: l})

	coo := testMatrix(41)
	if _, err := s.Tune(context.Background(), coo); err != nil {
		t.Fatal(err)
	}
	recsPerTune := int(l.Appended())
	if recsPerTune < 1 {
		t.Fatal("first tune logged nothing")
	}
	// Cached replay: no new records.
	if res, err := s.Tune(context.Background(), testMatrix(41)); err != nil || !res.Cached {
		t.Fatalf("expected cached result, got %+v err %v", res, err)
	}
	if got := int(l.Appended()); got != recsPerTune {
		t.Fatalf("cached replay grew the log: %d -> %d records", recsPerTune, got)
	}
	if _, err := s.Tune(context.Background(), testMatrix(42)); err != nil {
		t.Fatal(err)
	}

	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.ObsLogRecords != l.Appended() || st.ObsLogDropped != 0 {
		t.Fatalf("stats report %d records, %d dropped; want %d, 0", st.ObsLogRecords, st.ObsLogDropped, l.Appended())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obslog.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != int(l.Appended()) {
		t.Fatalf("log holds %d records, writer appended %d", len(recs), l.Appended())
	}
	stamp := s.Artifact().Stamp
	fps := make(map[string]int)
	scheds := make(map[string]map[string]bool)
	for i, rec := range recs {
		if rec.Fingerprint == "" || rec.Seconds <= 0 || rec.Host != "test" {
			t.Fatalf("record %d is degenerate: %+v", i, rec)
		}
		if rec.Stamp != stamp {
			t.Fatalf("record %d stamp %q, serving artifact %q", i, rec.Stamp, stamp)
		}
		back, err := rec.COO()
		if err != nil {
			t.Fatal(err)
		}
		if Fingerprint(back) != rec.Fingerprint {
			t.Fatalf("record %d pattern does not round-trip its fingerprint", i)
		}
		fps[rec.Fingerprint]++
		if scheds[rec.Fingerprint] == nil {
			scheds[rec.Fingerprint] = make(map[string]bool)
		}
		scheds[rec.Fingerprint][rec.Schedule.String()] = true
	}
	if len(fps) != 2 {
		t.Fatalf("log covers %d fingerprints, want 2 (one per actual search)", len(fps))
	}
	if fps[Fingerprint(coo)] != recsPerTune {
		t.Fatalf("first matrix holds %d records, first tune appended %d", fps[Fingerprint(coo)], recsPerTune)
	}
	if recsPerTune > 1 && len(scheds[Fingerprint(coo)]) < 2 {
		t.Fatalf("%d records for one pattern share a single schedule — candidates were not logged",
			recsPerTune)
	}
	if recs[0].Fingerprint != Fingerprint(coo) {
		t.Fatalf("first record is %q, want the first tuned matrix", recs[0].Fingerprint)
	}
}
