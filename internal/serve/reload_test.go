package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"waco/internal/core"
)

// sealedArtifact writes the shared quick tuner to a temp file the way
// waco-train -artifact would, returning the path.
func sealedArtifact(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spmm.tuner")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveTuner(f, quickTuner(t)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func newArtifactServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	path := sealedArtifact(t)
	tuner, err := core.LoadTunerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	opts.ArtifactPath = path
	s, err := NewServer(tuner, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

// TestReloadUnderLoad is the acceptance criterion for hot reload: while
// tune and predict traffic is running, /admin/reload swaps the artifact
// several times and not a single in-flight request fails. In-flight
// requests pin the tuner pointer once at entry and finish on it; new
// requests pick up the swapped one.
func TestReloadUnderLoad(t *testing.T) {
	s, _ := newArtifactServer(t, Options{
		MaxWorkers: 4,
		// Shedding off: this test measures swap correctness, not admission.
		ShedTuneQueue:    -1,
		ShedPredictQueue: -1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	errCh := make(chan error, 16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// A small rotating set of matrices: reloads flush the cache,
				// so the mix exercises both hit and miss paths mid-swap.
				coo := testMatrix(int64(200 + (w+i)%6))
				var err error
				if w%2 == 0 {
					_, err = s.Tune(context.Background(), coo)
				} else {
					_, err = s.Predict(context.Background(), coo, 2)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	const reloads = 3
	for i := 0; i < reloads; i++ {
		time.Sleep(15 * time.Millisecond)
		resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("request failed across reload: %v", err)
	}

	st := s.Snapshot()
	if st.ArtifactVersion != 1+reloads {
		t.Fatalf("artifact version = %d, want %d", st.ArtifactVersion, 1+reloads)
	}
	if st.Reloads != reloads {
		t.Fatalf("reload counter = %d, want %d", st.Reloads, reloads)
	}
	if st.ArtifactStamp == "" || len(st.ArtifactStamp) != 64 {
		t.Fatalf("artifact stamp %q is not a sha256 hex digest", st.ArtifactStamp)
	}
}

// TestReloadFailureKeepsOldArtifact: a bad artifact path 500s and the
// previous tuner keeps serving at its previous version — reload is
// all-or-nothing.
func TestReloadFailureKeepsOldArtifact(t *testing.T) {
	s, _ := newArtifactServer(t, Options{MaxWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	before := s.Artifact()
	body := bytes.NewBufferString(`{"artifact": "/nonexistent/nope.tuner"}`)
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("bad artifact path: status %d, want 500", resp.StatusCode)
	}
	after := s.Artifact()
	if after.Version != before.Version || after.Stamp != before.Stamp {
		t.Fatalf("failed reload changed the artifact: %+v -> %+v", before, after)
	}
	if _, err := s.Tune(context.Background(), testMatrix(7)); err != nil {
		t.Fatalf("server not serving after failed reload: %v", err)
	}

	// Malformed body is the client's fault, not a reload attempt.
	resp, err = http.Post(ts.URL+"/admin/reload", "application/json", strings.NewReader(`{"bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown reload field: status %d, want 400", resp.StatusCode)
	}
}

// TestReloadValidation: a tuner without a model/index, or for a different
// algorithm, is rejected before anything is swapped.
func TestReloadValidation(t *testing.T) {
	s := newTestServer(t, Options{})
	if _, err := s.Reload(nil); err == nil {
		t.Fatal("reload accepted a nil tuner")
	}
	if _, err := s.Reload(&core.Tuner{}); err == nil {
		t.Fatal("reload accepted a tuner with no model or index")
	}
}

// TestReloadEndpointsReportIdentity: readyz and stats both carry the
// artifact version and stamp a router or operator keys rotations on.
func TestReloadEndpointsReportIdentity(t *testing.T) {
	s, path := newArtifactServer(t, Options{MaxWorkers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/admin/reload", "application/json",
		strings.NewReader(`{"artifact": `+string(mustJSON(t, path))+`}`))
	if err != nil {
		t.Fatal(err)
	}
	var info ArtifactInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Version != 2 {
		t.Fatalf("reload: status %d info %+v, want 200 version 2", resp.StatusCode, info)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		Status  string `json:"status"`
		Version int    `json:"artifact_version"`
		Stamp   string `json:"artifact_stamp"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ready.Status != "ready" || ready.Version != 2 || ready.Stamp != info.Stamp {
		t.Fatalf("readyz after reload: %+v, want version 2 stamp %.16s", ready, info.Stamp)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
