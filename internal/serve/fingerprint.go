package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"waco/internal/tensor"
)

// Fingerprint returns a stable hex digest of a tensor's sparsity pattern:
// its dimensions and the set of stored coordinates, independent of the order
// the coordinates were appended in and of the stored values (WACO tunes the
// pattern, not the values). Two tensors with the same fingerprint get the
// same SuperSchedule, which is what makes the request cache sound.
func Fingerprint(c *tensor.COO) string {
	order := c.Order()
	nnz := c.NNZ()

	// Canonical point order (row-major over all modes) via an index
	// permutation, leaving the caller's COO untouched.
	perm := make([]int32, nnz)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		pa, pb := perm[a], perm[b]
		for m := 0; m < order; m++ {
			ca, cb := c.Coords[m][pa], c.Coords[m][pb]
			if ca != cb {
				return ca < cb
			}
		}
		return false
	})

	h := sha256.New()
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(order))
	h.Write(scratch[:])
	for _, d := range c.Dims {
		binary.LittleEndian.PutUint64(scratch[:], uint64(d))
		h.Write(scratch[:])
	}
	// Buffer coordinate tuples to limit Write-call overhead on large nnz.
	buf := make([]byte, 0, 4096)
	var prev int32 = -1
	for _, p := range perm {
		// Skip duplicate coordinates: the pattern is a set.
		if prev >= 0 && samePoint(c, prev, p) {
			continue
		}
		prev = p
		for m := 0; m < order; m++ {
			var cb [4]byte
			binary.LittleEndian.PutUint32(cb[:], uint32(c.Coords[m][p]))
			buf = append(buf, cb[:]...)
		}
		if len(buf) >= 4096-4*order {
			h.Write(buf)
			buf = buf[:0]
		}
	}
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil))
}

func samePoint(c *tensor.COO, a, b int32) bool {
	for m := 0; m < c.Order(); m++ {
		if c.Coords[m][a] != c.Coords[m][b] {
			return false
		}
	}
	return true
}
