package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a sharded LRU keyed by sparsity-pattern fingerprint. Sharding by
// the key's first byte keeps lock contention off the hot read path when many
// goroutines hit the cache concurrently; each shard holds its own LRU list.
type Cache struct {
	shards    []*cacheShard
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type cacheEntry struct {
	key string
	val any
}

// NewCache builds a cache holding up to capacity entries spread over
// nShards shards (both floored to sane minimums; nShards is rounded up to a
// power of two so shard selection is a mask).
func NewCache(capacity, nShards int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if nShards < 1 {
		nShards = 1
	}
	pow := 1
	for pow < nShards {
		pow *= 2
	}
	nShards = pow
	if nShards > capacity {
		nShards = 1
	}
	perShard := (capacity + nShards - 1) / nShards
	c := &Cache{shards: make([]*cacheShard, nShards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap: perShard,
			ll:  list.New(),
			m:   make(map[string]*list.Element, perShard),
		}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	// Inline FNV-1a so arbitrary key shapes spread evenly.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[int(h)&(len(c.shards)-1)]
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*cacheEntry).val, true
}

// Peek returns the cached value for key without touching the hit/miss
// counters or the LRU order. It exists for double-check lookups that already
// counted their outcome once (the server's pre-flight Get): counting the
// same request's miss twice would skew every hit-rate derived downstream.
func (c *Cache) Peek(key string) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return el.Value.(*cacheEntry).val, true
}

// Put inserts or refreshes key, evicting the shard's LRU entry when full.
func (c *Cache) Put(key string, val any) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.m[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Clear drops every entry (hot-reload invalidation: results computed by a
// swapped-out model must not outlive it). Hit/miss/eviction counters are
// lifetime totals and keep counting across the flush.
func (c *Cache) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.ll.Init()
		clear(s.m)
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Hits, Misses, and Evictions return the lifetime counters. Peek lookups are
// excluded by design; evictions count LRU displacements, not Put refreshes.
func (c *Cache) Hits() uint64      { return c.hits.Load() }
func (c *Cache) Misses() uint64    { return c.misses.Load() }
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }
