package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"waco/internal/tensor"
)

// Job states. A job is created running and reaches exactly one terminal
// state: done (result available), failed (the tune errored), or aborted
// (the server shut down hard while the job was running). Terminal jobs are
// retained for Options.JobTTL so clients can poll the outcome, then expire.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
	JobAborted = "aborted"
)

// Job is the /v1/jobs/{id} payload: one async tune's lifecycle. Result is
// set only in the done state; Error only in failed/aborted.
type Job struct {
	ID             string      `json:"id"`
	State          string      `json:"state"`
	Fingerprint    string      `json:"fingerprint"`
	Result         *TuneResult `json:"result,omitempty"`
	Error          string      `json:"error,omitempty"`
	CreatedAt      time.Time   `json:"created_at"`
	FinishedAt     time.Time   `json:"finished_at"`
	ElapsedSeconds float64     `json:"elapsed_seconds"`
}

// jobIDSep joins the routing fingerprint and the per-server sequence number
// in a job id: "<fingerprint>.<seq>". The fingerprint prefix is a protocol
// feature, not a convenience — a stateless router recovers the shard key
// from the id alone (JobKey) and polls the replica that owns the job.
const jobIDSep = "."

// JobKey extracts the consistent-hash routing key (the sparsity
// fingerprint) embedded in a job id. ok is false for malformed ids.
func JobKey(id string) (key string, ok bool) {
	fp, _, found := strings.Cut(id, jobIDSep)
	return fp, found && fp != ""
}

// jobStore is the bounded in-memory async job table. Terminal jobs are
// evicted oldest-first once the store is full or their TTL passes; running
// jobs are never evicted, so a full store of running jobs sheds new
// submissions instead of forgetting live work.
type jobStore struct {
	mu   sync.Mutex
	jobs map[string]*Job
	// terminalOrder holds terminal job ids oldest-finished-first, the
	// eviction queue. Running jobs are not in it.
	terminalOrder []string
	cap           int
	ttl           time.Duration
	seq           atomic.Uint64
	// pruneScanned counts terminalOrder entries examined by pruneLocked
	// (guarded by mu) — test instrumentation pinning the O(expired) scan
	// guarantee that keeps poll storms off TTL bookkeeping.
	pruneScanned uint64

	submitted atomic.Uint64
	done      atomic.Uint64
	failed    atomic.Uint64
	aborted   atomic.Uint64
	running   atomic.Int64
}

func newJobStore(capacity int, ttl time.Duration) *jobStore {
	return &jobStore{jobs: make(map[string]*Job), cap: capacity, ttl: ttl}
}

// create admits a new running job, evicting expired or surplus terminal
// jobs to make room. It fails with ErrOverloaded when the store is full of
// running jobs.
func (js *jobStore) create(fp string) (*Job, error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.pruneLocked(time.Now())
	for len(js.jobs) >= js.cap && len(js.terminalOrder) > 0 {
		js.evictOldestLocked()
	}
	if len(js.jobs) >= js.cap {
		return nil, ErrOverloaded
	}
	j := &Job{
		ID:          fp + jobIDSep + fmt.Sprintf("%d", js.seq.Add(1)),
		State:       JobRunning,
		Fingerprint: fp,
		CreatedAt:   time.Now(),
	}
	js.jobs[j.ID] = j
	js.submitted.Add(1)
	js.running.Add(1)
	return j, nil
}

// finish transitions a running job to its terminal state.
func (js *jobStore) finish(id, state string, res *TuneResult, errText string) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	if !ok || j.State != JobRunning {
		return
	}
	j.State = state
	j.Result = res
	j.Error = errText
	j.FinishedAt = time.Now()
	js.terminalOrder = append(js.terminalOrder, id)
	js.running.Add(-1)
	switch state {
	case JobDone:
		js.done.Add(1)
	case JobFailed:
		js.failed.Add(1)
	case JobAborted:
		js.aborted.Add(1)
	}
}

// get returns a snapshot of the job (so callers can serialize it without
// racing finish) and whether it exists.
func (js *jobStore) get(id string) (Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.pruneLocked(time.Now())
	j, ok := js.jobs[id]
	if !ok {
		return Job{}, false
	}
	out := *j
	if out.FinishedAt.IsZero() {
		out.ElapsedSeconds = time.Since(out.CreatedAt).Seconds()
	} else {
		out.ElapsedSeconds = out.FinishedAt.Sub(out.CreatedAt).Seconds()
	}
	return out, true
}

// Len returns resident jobs (running + retained terminal).
func (js *jobStore) Len() int {
	js.mu.Lock()
	defer js.mu.Unlock()
	return len(js.jobs)
}

// pruneLocked drops terminal jobs whose retention TTL has passed. It runs
// under the store mutex on every poll, so it must not scan what it will not
// evict: terminalOrder is oldest-finished-first (finish assigns FinishedAt
// under the same mutex that appends, so the queue is monotone in finish
// time), and the scan stops at the first unexpired entry. That keeps each
// call O(expired) — a poll storm against a store full of retained terminal
// jobs no longer serializes on full-table TTL sweeps (pinned by
// TestJobGetPruneScanIsConstant).
func (js *jobStore) pruneLocked(now time.Time) {
	i := 0
	for ; i < len(js.terminalOrder); i++ {
		js.pruneScanned++
		id := js.terminalOrder[i]
		j, ok := js.jobs[id]
		if !ok {
			continue // defensively skip an id evicted out of band
		}
		if now.Sub(j.FinishedAt) <= js.ttl {
			break
		}
		delete(js.jobs, id)
	}
	js.terminalOrder = js.terminalOrder[i:]
}

func (js *jobStore) evictOldestLocked() {
	id := js.terminalOrder[0]
	js.terminalOrder = js.terminalOrder[1:]
	delete(js.jobs, id)
}

// TuneAsync submits a tune as a detached job and returns immediately: the
// answer to "tuning takes seconds but a connection slot should not". The
// returned snapshot has state running (or already done, when the
// fingerprint was cached — cached answers are never shed and cost no pool
// slot). The job runs under the server's base context, counts toward the
// drain WaitGroup like a synchronous request, and lands in the same
// fingerprint cache, so a poll-then-retune round trip is O(1).
func (s *Server) TuneAsync(coo *tensor.COO) (Job, error) {
	if err := s.begin(); err != nil {
		return Job{}, err
	}
	s.tuneReqs.Add(1)
	if err := coo.Validate(); err != nil {
		s.end()
		s.errCount.Add(1)
		return Job{}, err
	}
	fp := Fingerprint(coo)

	// Cache hit: the job is born terminal, no goroutine, no pool traffic.
	if v, ok := s.cache.Get(fp); ok {
		defer s.end()
		j, err := s.jobs.create(fp)
		if err != nil {
			s.shedJobs.Add(1)
			s.errCount.Add(1)
			return Job{}, err
		}
		out := *v.(*TuneResult)
		out.Cached = true
		s.jobs.finish(j.ID, JobDone, &out, "")
		snap, _ := s.jobs.get(j.ID)
		return snap, nil
	}
	// Cold async tunes obey the same priority class as cold sync tunes.
	if err := s.shed(s.opts.ShedTuneQueue, &s.shedTune); err != nil {
		s.end()
		s.shedJobs.Add(1)
		s.errCount.Add(1)
		return Job{}, err
	}
	j, err := s.jobs.create(fp)
	if err != nil {
		s.end()
		s.shedJobs.Add(1)
		s.errCount.Add(1)
		return Job{}, err
	}
	snap := *j

	go func() {
		defer s.end()
		// Detached from the submitting request's context on purpose: the
		// 202 response ends that request, but the job must keep running.
		// The base context aborts it if a hard drain deadline passes.
		res, err := s.tune(s.baseCtx, coo, j.Fingerprint)
		if err != nil {
			s.errCount.Add(1)
		}
		state, msg := jobTerminalState(err, s.baseCtx.Err())
		s.jobs.finish(j.ID, state, res, msg)
	}()
	return snap, nil
}

// jobTerminalState classifies a finished async tune from the error the tune
// itself returned. Only a cancellation error while the server's base context
// is down counts as an abort — a genuine tune failure that happens to race a
// drain must still report "failed", not "aborted" (a drain in progress says
// nothing about why THIS tune ended; the old code checked only baseErr and
// misfiled every drain-time failure).
func jobTerminalState(err, baseErr error) (state, msg string) {
	if err == nil {
		return JobDone, ""
	}
	if baseErr != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return JobAborted, "server shut down before the tune finished: " + err.Error()
	}
	return JobFailed, err.Error()
}

// JobGet returns a job by id. It works during drain — polling a result is
// how a client learns its job survived — and never touches the pool.
func (s *Server) JobGet(id string) (Job, bool) {
	return s.jobs.get(id)
}
