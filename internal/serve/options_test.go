package serve

import (
	"context"
	"testing"

	"waco/internal/tensor"
)

// TestQuantizedServingRequiresSealedHead: asking for int8 serving against an
// artifact with no quantized head must fail at startup, not at query time.
func TestQuantizedServingRequiresSealedHead(t *testing.T) {
	tun := quickTuner(t)
	tun.Quantized = nil
	if _, err := NewServer(tun, Options{Quantized: true}); err == nil {
		t.Fatal("NewServer accepted quantized serving without a sealed quantized head")
	}
}

// TestQuantizedAndPrefilterServing: a server opted into the int8 head and the
// asymptotic pre-filter answers tunes, reports both in its stats, and a
// server created WITHOUT those options on the same tuner serves the float
// path again (options are per-server, not sticky index state).
func TestQuantizedAndPrefilterServing(t *testing.T) {
	tun := quickTuner(t)
	if tun.Quantized == nil {
		if err := tun.Quantize([]*tensor.COO{testMatrix(71), testMatrix(72)}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewServer(tun, Options{Quantized: true, PrefilterMargin: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Tune(context.Background(), testMatrix(73))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == "" {
		t.Fatalf("quantized tune returned no schedule: %+v", res)
	}
	st := s.Snapshot()
	if !st.Quantized {
		t.Fatal("stats do not report quantized serving")
	}
	if st.PrefilterMargin != 1.5 {
		t.Fatalf("stats report prefilter margin %v, want 1.5", st.PrefilterMargin)
	}

	// A plain server over the same tuner must reset the index to the float
	// path and disable the pre-filter.
	plain := newTestServer(t, Options{})
	pst := plain.Snapshot()
	if pst.Quantized || pst.PrefilterMargin != 0 {
		t.Fatalf("plain server inherited quantized=%v margin=%v from a previous server's options",
			pst.Quantized, pst.PrefilterMargin)
	}
}
