// Package serve exposes a trained WACO tuner as a long-lived, concurrent
// auto-tuning service. The paper measures search overhead amortized over
// repeated kernel executions (§5.4); serving makes that amortization
// literal: one process loads a sealed tuner artifact (cost model + HNSW
// index + SuperSchedule space) once and answers tuning queries over HTTP,
// with a fingerprint-keyed LRU cache so a matrix is only ever searched once,
// singleflight deduplication so concurrent requests for the same matrix
// share one search, and a bounded worker pool so tuning load cannot starve
// the host.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/kernel"
	"waco/internal/metrics"
	"waco/internal/search"
	"waco/internal/tensor"
)

// ErrShuttingDown is returned for requests arriving after Close began.
var ErrShuttingDown = errors.New("serve: server is shutting down")

// Options configures a Server.
type Options struct {
	// CacheSize bounds the fingerprint cache (entries). Default 1024.
	CacheSize int
	// CacheShards is the shard count of the LRU. Default 16.
	CacheShards int
	// MaxWorkers bounds concurrently executing tune/predict searches;
	// excess requests queue on the pool. Default 2.
	MaxWorkers int
	// RequestTimeout bounds one request's search + measurement work.
	// 0 disables the per-request deadline.
	RequestTimeout time.Duration
	// Registry receives the server's metrics (exposed at GET /metrics).
	// nil creates a private registry, retrievable via Server.Registry.
	Registry *metrics.Registry
	// Logger, when non-nil, receives one structured line per HTTP request
	// (request id, endpoint, status, duration, and for tune requests the
	// fingerprint and cached/deduped delivery path).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 2
	}
	return o
}

// TuneResult is the serving-path answer for one matrix. Cached and Deduped
// are per-request delivery metadata; the rest is what the underlying search
// produced (and what the cache stores).
type TuneResult struct {
	Fingerprint    string  `json:"fingerprint"`
	Schedule       string  `json:"schedule"`
	PredictedCost  float64 `json:"predicted_cost"`
	KernelSeconds  float64 `json:"kernel_seconds"`
	TuningSeconds  float64 `json:"tuning_seconds"`
	ConvertSeconds float64 `json:"convert_seconds"`
	Info           string  `json:"info,omitempty"`
	Cached         bool    `json:"cached"`
	Deduped        bool    `json:"deduped"`
}

// Predicted is one cost-model-ranked schedule from /v1/predict.
type Predicted struct {
	Schedule string  `json:"schedule"`
	Cost     float64 `json:"cost"`
}

// Server answers tuning and prediction queries against one sealed tuner.
// All methods are safe for concurrent use.
type Server struct {
	tuner  *core.Tuner
	opts   Options
	cache  *Cache
	flight *flightGroup
	sem    chan struct{}
	start  time.Time

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool

	tuneReqs    atomic.Uint64
	predictReqs atomic.Uint64
	searches    atomic.Uint64
	deduped     atomic.Uint64
	errCount    atomic.Uint64
	inFlight    atomic.Int64
	reqSeq      atomic.Uint64

	metrics *serverMetrics
	logger  *slog.Logger
}

// NewServer wraps a tuner (typically from core.LoadTuner) for serving. It
// instruments the tuner in place — the index's search breakdown and the
// workloads' kernel measurements report into the server's registry — so a
// tuner should back at most one server at a time.
func NewServer(t *core.Tuner, opts Options) (*Server, error) {
	if t == nil || t.Model == nil || t.Index == nil {
		return nil, fmt.Errorf("serve: tuner is missing a model or index")
	}
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		tuner:  t,
		opts:   opts,
		cache:  NewCache(opts.CacheSize, opts.CacheShards),
		flight: newFlightGroup(),
		sem:    make(chan struct{}, opts.MaxWorkers),
		start:  time.Now(),
		logger: opts.Logger,
	}
	s.metrics = newServerMetrics(reg, s)
	t.Index.Metrics = search.NewMetrics(reg)
	t.KernelMetrics = kernel.NewMetrics(reg)
	return s, nil
}

// Registry returns the server's metrics registry (the /metrics source).
func (s *Server) Registry() *metrics.Registry { return s.metrics.reg }

// Tuner returns the underlying tuner (read-only use).
func (s *Server) Tuner() *core.Tuner { return s.tuner }

// begin registers one in-flight request; it fails once Close has started so
// the drain in Close is not racing new arrivals.
func (s *Server) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShuttingDown
	}
	s.wg.Add(1)
	s.inFlight.Add(1)
	return nil
}

func (s *Server) end() {
	s.inFlight.Add(-1)
	s.wg.Done()
}

// acquire takes a worker-pool slot, abandoning the wait if ctx ends first.
// Successful waits are recorded in the queue-wait histogram — the signal
// that MaxWorkers, not search cost, is what requests are paying for.
func (s *Server) acquire(ctx context.Context) error {
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.metrics.queueWait.Observe(time.Since(start).Seconds())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// requestCtx applies the per-request timeout.
func (s *Server) requestCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.opts.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// Tune returns the best SuperSchedule for the matrix: from the fingerprint
// cache when this pattern was tuned before (O(1), no search), otherwise via
// one HNSW search + candidate measurement shared among all concurrent
// requests for the same fingerprint. Duplicates joining an in-progress
// search inherit its result — and its error, including cancellation of the
// owning request's context.
func (s *Server) Tune(ctx context.Context, coo *tensor.COO) (*TuneResult, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.tuneReqs.Add(1)

	if err := coo.Validate(); err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	fp := Fingerprint(coo)
	if v, ok := s.cache.Get(fp); ok {
		out := *v.(*TuneResult)
		out.Cached = true
		return &out, nil
	}

	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	v, err, shared := s.flight.Do(ctx, fp, func() (any, error) {
		// Double-check: a caller that missed the cache may have raced a
		// just-completed flight for the same fingerprint; the result it
		// cached makes a second search pointless. Peek, not Get: this
		// request's miss was already counted at the pre-flight lookup, and
		// counting it twice would halve every derived hit rate.
		if v, ok := s.cache.Peek(fp); ok {
			return v, nil
		}
		if err := s.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		s.searches.Add(1)
		tuned, err := s.tuner.TuneTensorContext(ctx, coo)
		if err != nil {
			return nil, err
		}
		cost, err := s.tuner.Model.Cost(costmodel.NewPattern(coo), tuned.Schedule)
		if err != nil {
			return nil, err
		}
		res := &TuneResult{
			Fingerprint:    fp,
			Schedule:       tuned.Schedule.String(),
			PredictedCost:  cost,
			KernelSeconds:  tuned.KernelSeconds,
			TuningSeconds:  tuned.TuningSeconds,
			ConvertSeconds: tuned.ConvertSeconds,
			Info:           tuned.Info,
		}
		s.cache.Put(fp, res)
		return res, nil
	})
	if shared {
		s.deduped.Add(1)
	}
	if err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	out := *v.(*TuneResult)
	out.Deduped = shared
	return &out, nil
}

// Predict runs a pure cost-model query: the top-k indexed SuperSchedules by
// predicted cost for the matrix, with no hardware measurement. It shares the
// tune path's worker pool but bypasses the cache (it is cheap relative to
// tuning and k varies per request).
func (s *Server) Predict(ctx context.Context, coo *tensor.COO, k int) ([]Predicted, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.predictReqs.Add(1)

	if err := coo.Validate(); err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	if k <= 0 {
		k = 5
	}
	if n := len(s.tuner.Index.Schedules); k > n {
		k = n
	}
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	defer s.release()

	ef := s.tuner.Cfg.SearchEf
	if ef < 6*k {
		ef = 6 * k
	}
	res, err := s.tuner.Index.Search(ctx, costmodel.NewPattern(coo), k, ef)
	if err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	out := make([]Predicted, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = Predicted{Schedule: c.SS.String(), Cost: c.Cost}
	}
	return out, nil
}

// Stats is the /v1/stats payload.
type Stats struct {
	Alg             string  `json:"alg"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	IndexSize       int     `json:"index_size"`
	BuildSeconds    float64 `json:"artifact_build_seconds"`
	TuneRequests    uint64  `json:"tune_requests"`
	PredictRequests uint64  `json:"predict_requests"`
	Searches        uint64  `json:"searches"`
	DedupedSearches uint64  `json:"deduped_searches"`
	FlightAbandoned uint64  `json:"flight_abandoned"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheEvictions  uint64  `json:"cache_evictions"`
	CacheEntries    int     `json:"cache_entries"`
	Errors          uint64  `json:"errors"`
	InFlight        int64   `json:"in_flight"`
}

// Snapshot returns current counters.
func (s *Server) Snapshot() Stats {
	return Stats{
		Alg:             s.tuner.Cfg.Alg.String(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		IndexSize:       len(s.tuner.Index.Schedules),
		BuildSeconds:    s.tuner.BuildSeconds,
		TuneRequests:    s.tuneReqs.Load(),
		PredictRequests: s.predictReqs.Load(),
		Searches:        s.searches.Load(),
		DedupedSearches: s.deduped.Load(),
		FlightAbandoned: s.flight.abandonedCount(),
		CacheHits:       s.cache.Hits(),
		CacheMisses:     s.cache.Misses(),
		CacheEvictions:  s.cache.Evictions(),
		CacheEntries:    s.cache.Len(),
		Errors:          s.errCount.Load(),
		InFlight:        s.inFlight.Load(),
	}
}

// Close stops admitting requests and drains the in-flight ones, returning
// early with ctx's error if the drain outlives the context.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
