// Package serve exposes a trained WACO tuner as a long-lived, concurrent
// auto-tuning service. The paper measures search overhead amortized over
// repeated kernel executions (§5.4); serving makes that amortization
// literal: one process loads a sealed tuner artifact (cost model + HNSW
// index + SuperSchedule space) once and answers tuning queries over HTTP,
// with a fingerprint-keyed LRU cache so a matrix is only ever searched once,
// singleflight deduplication so concurrent requests for the same matrix
// share one search, and a bounded worker pool so tuning load cannot starve
// the host.
//
// Beyond the synchronous query path the server carries the cluster-facing
// surface a fleet of replicas needs: an async job API so multi-second tunes
// never pin an HTTP connection on the bounded pool (POST /v1/tune?async=1
// returns 202 + a job id, GET /v1/jobs/{id} polls), hot artifact reload
// (POST /admin/reload or SIGHUP atomically swaps a freshly loaded sealed
// tuner behind an atomic pointer without dropping in-flight requests),
// split liveness/readiness health endpoints for router health checking, and
// queue-depth-driven load shedding with priority classes — cold tunes shed
// first, cheap cached answers never shed.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"waco/internal/baselines"
	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/kernel"
	"waco/internal/metrics"
	"waco/internal/obslog"
	"waco/internal/search"
	"waco/internal/tensor"
)

// ErrShuttingDown is returned for requests arriving after Close began.
var ErrShuttingDown = errors.New("serve: server is shutting down")

// ErrOverloaded is returned when load shedding rejects a request: the pool
// queue is deeper than the request's priority class tolerates, or the job
// store has no room. HTTP maps it to 503 with a Retry-After header.
var ErrOverloaded = errors.New("serve: overloaded, retry later")

// Options configures a Server.
type Options struct {
	// CacheSize bounds the fingerprint cache (entries). Default 1024.
	CacheSize int
	// CacheShards is the shard count of the LRU. Default 16.
	CacheShards int
	// MaxWorkers bounds concurrently executing tune/predict searches;
	// excess requests queue on the pool. Default 2.
	MaxWorkers int
	// RequestTimeout bounds one request's search + measurement work.
	// 0 disables the per-request deadline.
	RequestTimeout time.Duration
	// ShedTuneQueue is the pool queue depth at which cold (uncached) tune
	// requests — the most expensive class — are shed with ErrOverloaded.
	// Cached tunes are answered before the check and are never shed.
	// Default 4*MaxWorkers; negative disables shedding for the class.
	ShedTuneQueue int
	// ShedPredictQueue is the queue depth at which predict requests are
	// shed. Predicts are cheaper than tunes (no hardware measurement), so
	// they tolerate a deeper queue and shed later. Default 16*MaxWorkers;
	// negative disables shedding for the class.
	ShedPredictQueue int
	// MaxJobs bounds the async job store (running + retained terminal
	// jobs). Submissions beyond it are shed with ErrOverloaded once no
	// expired or surplus terminal job can be evicted. Default 256.
	MaxJobs int
	// JobTTL is how long a terminal (done/failed/aborted) job's result is
	// retained for polling before expiry. Default 10 minutes.
	JobTTL time.Duration
	// ArtifactPath, when set, is the sealed artifact file that
	// ReloadFromFile (the /admin/reload and SIGHUP paths) re-reads when no
	// explicit path is given.
	ArtifactPath string
	// Quantized serves predictor-head evaluations on the int8 quantized
	// path. Requires the artifact to carry a quantized head (version-2
	// sealed artifacts built with quantization); startup and reload fail
	// when it does not, so a rotation can never silently fall back to a
	// different numeric path. Default false: the float path is the oracle.
	Quantized bool
	// PrefilterMargin enables the asymptotic-cost pre-filter on the query
	// path with the given prune margin (log2 units — orders of magnitude of
	// asymptotic work). 0 disables.
	PrefilterMargin float64
	// ObsLog, when non-nil, receives one measurement record per completed
	// (uncached, undeduped) tune — the observe half of the online learning
	// loop. Appends are non-blocking: a full buffer drops the record and
	// bumps waco_obslog_dropped_total rather than slowing the request. The
	// server flushes the log on drain; the caller owns Open/Close.
	ObsLog *obslog.Log
	// Registry receives the server's metrics (exposed at GET /metrics).
	// nil creates a private registry, retrievable via Server.Registry.
	Registry *metrics.Registry
	// Logger, when non-nil, receives one structured line per HTTP request
	// (request id, endpoint, status, duration, and for tune requests the
	// fingerprint and cached/deduped delivery path).
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.CacheShards <= 0 {
		o.CacheShards = 16
	}
	if o.MaxWorkers <= 0 {
		o.MaxWorkers = 2
	}
	if o.ShedTuneQueue == 0 {
		o.ShedTuneQueue = 4 * o.MaxWorkers
	}
	if o.ShedPredictQueue == 0 {
		o.ShedPredictQueue = 16 * o.MaxWorkers
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 256
	}
	if o.JobTTL <= 0 {
		o.JobTTL = 10 * time.Minute
	}
	return o
}

// TuneResult is the serving-path answer for one matrix. Cached and Deduped
// are per-request delivery metadata; the rest is what the underlying search
// produced (and what the cache stores).
type TuneResult struct {
	Fingerprint    string  `json:"fingerprint"`
	Schedule       string  `json:"schedule"`
	PredictedCost  float64 `json:"predicted_cost"`
	KernelSeconds  float64 `json:"kernel_seconds"`
	TuningSeconds  float64 `json:"tuning_seconds"`
	ConvertSeconds float64 `json:"convert_seconds"`
	Info           string  `json:"info,omitempty"`
	Cached         bool    `json:"cached"`
	Deduped        bool    `json:"deduped"`
}

// Predicted is one cost-model-ranked schedule from /v1/predict.
type Predicted struct {
	Schedule string  `json:"schedule"`
	Cost     float64 `json:"cost"`
}

// ArtifactInfo identifies the sealed artifact currently serving: a
// monotonically increasing in-process version (1 = the artifact the server
// started with, bumped by every successful reload) and the artifact's
// SHA-256 stamp from core.LoadTuner (empty for in-process-built tuners).
type ArtifactInfo struct {
	Version  int       `json:"version"`
	Stamp    string    `json:"stamp,omitempty"`
	LoadedAt time.Time `json:"loaded_at"`
}

// Server answers tuning and prediction queries against one sealed tuner.
// All methods are safe for concurrent use. The tuner itself sits behind an
// atomic pointer so Reload can swap in a new artifact while requests are in
// flight: each request pins the pointer once on entry and uses that tuner
// throughout, so a swap never mixes two artifacts inside one request.
type Server struct {
	tuner    atomic.Pointer[core.Tuner]
	artifact atomic.Pointer[ArtifactInfo]
	opts     Options
	cache    *Cache
	flight   *flightGroup
	sem      chan struct{}
	start    time.Time
	jobs     *jobStore

	// searchMetrics and kernelMetrics are registered once in NewServer and
	// re-attached to every reloaded tuner, so instruments survive swaps and
	// registration never happens on a request path.
	searchMetrics *search.Metrics
	kernelMetrics *kernel.Metrics

	// baseCtx parents detached async job work; baseCancel fires when a
	// drain deadline expires so running jobs abort instead of leaking.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	draining atomic.Bool

	tuneReqs    atomic.Uint64
	predictReqs atomic.Uint64
	searches    atomic.Uint64
	deduped     atomic.Uint64
	errCount    atomic.Uint64
	inFlight    atomic.Int64
	queued      atomic.Int64
	reqSeq      atomic.Uint64
	shedTune    atomic.Uint64
	shedPredict atomic.Uint64
	shedJobs    atomic.Uint64
	reloads     atomic.Uint64
	// retiredHeadEvals accumulates head evals of swapped-out models so the
	// exported counter stays monotone across reloads.
	retiredHeadEvals atomic.Uint64

	metrics *serverMetrics
	logger  *slog.Logger
}

// NewServer wraps a tuner (typically from core.LoadTuner) for serving. It
// instruments the tuner in place — the index's search breakdown and the
// workloads' kernel measurements report into the server's registry — so a
// tuner should back at most one server at a time.
func NewServer(t *core.Tuner, opts Options) (*Server, error) {
	if t == nil || t.Model == nil || t.Index == nil {
		return nil, fmt.Errorf("serve: tuner is missing a model or index")
	}
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		opts:   opts,
		cache:  NewCache(opts.CacheSize, opts.CacheShards),
		flight: newFlightGroup(),
		sem:    make(chan struct{}, opts.MaxWorkers),
		start:  time.Now(),
		jobs:   newJobStore(opts.MaxJobs, opts.JobTTL),
		logger: opts.Logger,
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.searchMetrics = search.NewMetrics(reg)
	s.kernelMetrics = kernel.NewMetrics(reg)
	t.Index.Metrics = s.searchMetrics
	t.KernelMetrics = s.kernelMetrics
	if err := s.applyIndexOptions(t); err != nil {
		return nil, err
	}
	s.tuner.Store(t)
	s.artifact.Store(&ArtifactInfo{Version: 1, Stamp: t.ArtifactStamp, LoadedAt: time.Now()})
	s.metrics = newServerMetrics(reg, s)
	return s, nil
}

// applyIndexOptions configures a tuner's index for this server's serving
// options (int8 head, pre-filter) before it is swapped in.
func (s *Server) applyIndexOptions(t *core.Tuner) error {
	if s.opts.Quantized {
		if t.Quantized == nil {
			return fmt.Errorf("serve: quantized serving requested but the artifact carries no quantized head (seal one with quantization enabled)")
		}
		if err := t.Index.EnableQuantized(t.Quantized); err != nil {
			return err
		}
	} else if err := t.Index.EnableQuantized(nil); err != nil {
		return err
	}
	t.Index.EnablePrefilter(s.opts.PrefilterMargin)
	return nil
}

// Registry returns the server's metrics registry (the /metrics source).
func (s *Server) Registry() *metrics.Registry { return s.metrics.reg }

// Tuner returns the currently serving tuner (read-only use). Reload may
// swap it at any moment; callers needing consistency across several
// accesses should call once and keep the pointer.
func (s *Server) Tuner() *core.Tuner { return s.tuner.Load() }

// Artifact returns the identity of the currently serving sealed artifact.
func (s *Server) Artifact() ArtifactInfo { return *s.artifact.Load() }

// Reload atomically swaps in a new tuner, typically freshly loaded from a
// sealed artifact. In-flight requests finish on the tuner they pinned at
// entry — nothing is dropped — and new requests see the new one. The
// fingerprint cache is flushed: cached results rank schedules with the old
// model, and serving them past the swap would silently undo the rotation.
// The algorithm must match (a rotation changes weights, not the workload).
func (s *Server) Reload(t *core.Tuner) (ArtifactInfo, error) {
	if t == nil || t.Model == nil || t.Index == nil {
		return ArtifactInfo{}, fmt.Errorf("serve: reload: tuner is missing a model or index")
	}
	old := s.tuner.Load()
	if t.Cfg.Alg != old.Cfg.Alg {
		return ArtifactInfo{}, fmt.Errorf("serve: reload: artifact is a %v tuner, this server serves %v",
			t.Cfg.Alg, old.Cfg.Alg)
	}
	// Same instruments, new tuner: registration happened once in NewServer.
	t.Index.Metrics = s.searchMetrics
	t.KernelMetrics = s.kernelMetrics
	// Same serving options, new tuner; a failure (e.g. the new artifact lost
	// its quantized head) rejects the rotation with the old tuner untouched.
	if err := s.applyIndexOptions(t); err != nil {
		return ArtifactInfo{}, err
	}

	s.mu.Lock()
	s.retiredHeadEvals.Add(old.Model.HeadEvals())
	s.tuner.Store(t)
	info := ArtifactInfo{
		Version:  s.artifact.Load().Version + 1,
		Stamp:    t.ArtifactStamp,
		LoadedAt: time.Now(),
	}
	s.artifact.Store(&info)
	s.mu.Unlock()

	s.cache.Clear()
	s.reloads.Add(1)
	if s.logger != nil {
		s.logger.Info("artifact reloaded",
			slog.Int("version", info.Version), slog.String("stamp", info.Stamp),
			slog.Int("index_size", len(t.Index.Schedules)))
	}
	return info, nil
}

// ReloadFromFile loads the sealed artifact at path (or Options.ArtifactPath
// when path is empty) and swaps it in via Reload. A load or validation
// failure leaves the current tuner serving untouched.
func (s *Server) ReloadFromFile(path string) (ArtifactInfo, error) {
	if path == "" {
		path = s.opts.ArtifactPath
	}
	if path == "" {
		return ArtifactInfo{}, errors.New("serve: reload: no artifact path configured")
	}
	t, err := core.LoadTunerFile(path)
	if err != nil {
		return ArtifactInfo{}, err
	}
	return s.Reload(t)
}

// BeginDrain marks the server not-ready (readyz returns 503) while it keeps
// answering requests. Routers watching readiness stop sending new work
// before Close starts rejecting it — the standard pre-shutdown handoff.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain or Close has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// begin registers one in-flight request; it fails once Close has started so
// the drain in Close is not racing new arrivals.
func (s *Server) begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShuttingDown
	}
	s.wg.Add(1)
	s.inFlight.Add(1)
	return nil
}

func (s *Server) end() {
	s.inFlight.Add(-1)
	s.wg.Done()
}

// acquire takes a worker-pool slot, abandoning the wait if ctx ends first.
// Successful waits are recorded in the queue-wait histogram — the signal
// that MaxWorkers, not search cost, is what requests are paying for — and
// the waiting count is the queue depth that drives load shedding.
func (s *Server) acquire(ctx context.Context) error {
	s.queued.Add(1)
	defer s.queued.Add(-1)
	start := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.metrics.queueWait.Observe(time.Since(start).Seconds())
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// QueueDepth returns how many admitted requests are currently waiting for a
// worker-pool slot (not executing, not cached — waiting).
func (s *Server) QueueDepth() int64 { return s.queued.Load() }

// shed applies the priority-class backpressure policy: a request whose
// class tolerates at most limit queued requests is rejected when the pool
// queue is at least that deep. Negative limits disable shedding.
func (s *Server) shed(limit int, counter *atomic.Uint64) error {
	if limit < 0 {
		return nil
	}
	if s.queued.Load() >= int64(limit) {
		counter.Add(1)
		return ErrOverloaded
	}
	return nil
}

// retryAfterSeconds estimates how long a shed client should back off:
// roughly one queue drain at the current depth, bounded to keep herds from
// synchronizing on a huge value.
func (s *Server) retryAfterSeconds() int {
	depth := int(s.queued.Load())
	secs := 1 + depth/s.opts.MaxWorkers
	if secs > 30 {
		secs = 30
	}
	return secs
}

// requestCtx applies the per-request timeout.
func (s *Server) requestCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(ctx, s.opts.RequestTimeout)
	}
	return context.WithCancel(ctx)
}

// Tune returns the best SuperSchedule for the matrix: from the fingerprint
// cache when this pattern was tuned before (O(1), no search), otherwise via
// one HNSW search + candidate measurement shared among all concurrent
// requests for the same fingerprint. Duplicates joining an in-progress
// search inherit its result — and its error, including cancellation of the
// owning request's context.
func (s *Server) Tune(ctx context.Context, coo *tensor.COO) (*TuneResult, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.tuneReqs.Add(1)

	if err := coo.Validate(); err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	fp := Fingerprint(coo)
	res, err := s.tune(ctx, coo, fp)
	if err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	return res, nil
}

// tune is the shared cache → shed → singleflight → search path behind both
// the synchronous Tune and the async job runner. The caller owns admission
// (begin/end) and error accounting.
func (s *Server) tune(ctx context.Context, coo *tensor.COO, fp string) (*TuneResult, error) {
	if v, ok := s.cache.Get(fp); ok {
		out := *v.(*TuneResult)
		out.Cached = true
		return &out, nil
	}
	// Cold tunes are the most expensive class and shed first; the cache
	// lookup above means cached answers never reach this check.
	if err := s.shed(s.opts.ShedTuneQueue, &s.shedTune); err != nil {
		return nil, err
	}

	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	tun := s.tuner.Load()
	v, err, shared := s.flight.Do(ctx, fp, func() (any, error) {
		// Double-check: a caller that missed the cache may have raced a
		// just-completed flight for the same fingerprint; the result it
		// cached makes a second search pointless. Peek, not Get: this
		// request's miss was already counted at the pre-flight lookup, and
		// counting it twice would halve every derived hit rate.
		if v, ok := s.cache.Peek(fp); ok {
			return v, nil
		}
		if err := s.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		s.searches.Add(1)
		tuned, err := tun.TuneTensorContext(ctx, coo)
		if err != nil {
			return nil, err
		}
		cost, err := tun.Model.Cost(costmodel.NewPattern(coo), tuned.Schedule)
		if err != nil {
			return nil, err
		}
		res := &TuneResult{
			Fingerprint:    fp,
			Schedule:       tuned.Schedule.String(),
			PredictedCost:  cost,
			KernelSeconds:  tuned.KernelSeconds,
			TuningSeconds:  tuned.TuningSeconds,
			ConvertSeconds: tuned.ConvertSeconds,
			Info:           tuned.Info,
		}
		s.cache.Put(fp, res)
		s.observe(fp, coo, tun, tuned)
		return res, nil
	})
	if shared {
		s.deduped.Add(1)
	}
	if err != nil {
		return nil, err
	}
	out := *v.(*TuneResult)
	out.Deduped = shared
	return &out, nil
}

// observe appends a completed tune's measurements to the log — one record
// per probed candidate (the full rankable sample set a retrain needs), with
// the winner's final timing as a fallback when no probes were exposed.
// Called once per actual search (cache hits and deduped joiners re-deliver
// already-logged measurements), inside the flight so the tuner pinned for
// the search supplies the artifact stamp — a racing reload cannot mislabel
// the measurements. The pattern is copied once and shared across the
// records: they outlive the request in the writer's buffer.
func (s *Server) observe(fp string, coo *tensor.COO, tun *core.Tuner, tuned *baselines.Tuned) {
	l := s.opts.ObsLog
	if l == nil {
		return
	}
	coords := make([][]int32, len(coo.Coords))
	for m, cs := range coo.Coords {
		coords[m] = append([]int32(nil), cs...)
	}
	dims := append([]int(nil), coo.Dims...)
	measured := tuned.Measured
	if len(measured) == 0 {
		measured = []baselines.Measurement{{Schedule: tuned.Schedule, Seconds: tuned.KernelSeconds}}
	}
	for _, m := range measured {
		l.Append(obslog.Record{
			Fingerprint: fp,
			Dims:        dims,
			Coords:      coords,
			Schedule:    m.Schedule,
			Decomp:      m.Schedule.Decomp.String(),
			Seconds:     m.Seconds,
			Stamp:       tun.ArtifactStamp,
		})
	}
}

// Predict runs a pure cost-model query: the top-k indexed SuperSchedules by
// predicted cost for the matrix, with no hardware measurement. It shares the
// tune path's worker pool but bypasses the cache (it is cheap relative to
// tuning and k varies per request).
func (s *Server) Predict(ctx context.Context, coo *tensor.COO, k int) ([]Predicted, error) {
	if err := s.begin(); err != nil {
		return nil, err
	}
	defer s.end()
	s.predictReqs.Add(1)

	if err := coo.Validate(); err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	if err := s.shed(s.opts.ShedPredictQueue, &s.shedPredict); err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	tun := s.tuner.Load()
	if k <= 0 {
		k = 5
	}
	if n := len(tun.Index.Schedules); k > n {
		k = n
	}
	ctx, cancel := s.requestCtx(ctx)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	defer s.release()

	ef := tun.Cfg.SearchEf
	if ef < 6*k {
		ef = 6 * k
	}
	res, err := tun.Index.Search(ctx, costmodel.NewPattern(coo), k, ef)
	if err != nil {
		s.errCount.Add(1)
		return nil, err
	}
	out := make([]Predicted, len(res.Candidates))
	for i, c := range res.Candidates {
		out[i] = Predicted{Schedule: c.SS.String(), Cost: c.Cost}
	}
	return out, nil
}

// Stats is the /v1/stats payload.
type Stats struct {
	Alg             string  `json:"alg"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	IndexSize       int     `json:"index_size"`
	Quantized       bool    `json:"quantized"`
	PrefilterMargin float64 `json:"prefilter_margin,omitempty"`
	BuildSeconds    float64 `json:"artifact_build_seconds"`
	ArtifactVersion int     `json:"artifact_version"`
	ArtifactStamp   string  `json:"artifact_stamp,omitempty"`
	ArtifactAge     float64 `json:"artifact_age_seconds"`
	Reloads         uint64  `json:"artifact_reloads"`
	Draining        bool    `json:"draining"`
	TuneRequests    uint64  `json:"tune_requests"`
	PredictRequests uint64  `json:"predict_requests"`
	Searches        uint64  `json:"searches"`
	DedupedSearches uint64  `json:"deduped_searches"`
	FlightAbandoned uint64  `json:"flight_abandoned"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheEvictions  uint64  `json:"cache_evictions"`
	CacheEntries    int     `json:"cache_entries"`
	Errors          uint64  `json:"errors"`
	InFlight        int64   `json:"in_flight"`
	QueueDepth      int64   `json:"queue_depth"`
	ShedTune        uint64  `json:"shed_tune"`
	ShedPredict     uint64  `json:"shed_predict"`
	ShedJobs        uint64  `json:"shed_jobs"`
	JobsSubmitted   uint64  `json:"jobs_submitted"`
	JobsRunning     int64   `json:"jobs_running"`
	JobsDone        uint64  `json:"jobs_done"`
	JobsFailed      uint64  `json:"jobs_failed"`
	JobsAborted     uint64  `json:"jobs_aborted"`
	JobsStored      int     `json:"jobs_stored"`
	ObsLogPath      string  `json:"obslog_path,omitempty"`
	ObsLogRecords   uint64  `json:"obslog_records,omitempty"`
	ObsLogDropped   uint64  `json:"obslog_dropped,omitempty"`
}

// Snapshot returns current counters.
func (s *Server) Snapshot() Stats {
	tun := s.tuner.Load()
	art := s.artifact.Load()
	st := Stats{
		Alg:             tun.Cfg.Alg.String(),
		UptimeSeconds:   time.Since(s.start).Seconds(),
		IndexSize:       len(tun.Index.Schedules),
		Quantized:       tun.Index.Quantized() != nil,
		PrefilterMargin: tun.Index.PrefilterMargin(),
		BuildSeconds:    tun.BuildSeconds,
		ArtifactVersion: art.Version,
		ArtifactStamp:   art.Stamp,
		ArtifactAge:     time.Since(art.LoadedAt).Seconds(),
		Reloads:         s.reloads.Load(),
		Draining:        s.draining.Load(),
		TuneRequests:    s.tuneReqs.Load(),
		PredictRequests: s.predictReqs.Load(),
		Searches:        s.searches.Load(),
		DedupedSearches: s.deduped.Load(),
		FlightAbandoned: s.flight.abandonedCount(),
		CacheHits:       s.cache.Hits(),
		CacheMisses:     s.cache.Misses(),
		CacheEvictions:  s.cache.Evictions(),
		CacheEntries:    s.cache.Len(),
		Errors:          s.errCount.Load(),
		InFlight:        s.inFlight.Load(),
		QueueDepth:      s.queued.Load(),
		ShedTune:        s.shedTune.Load(),
		ShedPredict:     s.shedPredict.Load(),
		ShedJobs:        s.shedJobs.Load(),
		JobsSubmitted:   s.jobs.submitted.Load(),
		JobsRunning:     s.jobs.running.Load(),
		JobsDone:        s.jobs.done.Load(),
		JobsFailed:      s.jobs.failed.Load(),
		JobsAborted:     s.jobs.aborted.Load(),
		JobsStored:      s.jobs.Len(),
	}
	if l := s.opts.ObsLog; l != nil {
		st.ObsLogPath = l.Path()
		st.ObsLogRecords = l.Appended()
		st.ObsLogDropped = l.Dropped()
	}
	return st
}

// Close stops admitting requests and drains the in-flight ones — including
// detached async jobs, which count toward the same WaitGroup. If the drain
// outlives ctx, the server cancels the base context that parents async job
// work so running jobs abort (persisting a terminal "aborted" state instead
// of vanishing), briefly waits for that unwind, and reports ctx's error.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Drained cleanly: force buffered measurements to disk so a rolling
		// restart never strands the tail of the observation log.
		if l := s.opts.ObsLog; l != nil {
			_ = l.Flush() //waco:nolint errdrop -- a flush failure is sticky in Log.Err and counted in /metrics; drain success is about requests, not the advisory log
		}
		return nil
	case <-ctx.Done():
	}
	// Deadline missed: abort detached jobs and give the cancellation a
	// moment to unwind, so job states are terminal rather than dangling.
	s.baseCancel()
	grace := time.NewTimer(5 * time.Second)
	defer grace.Stop()
	select {
	case <-done:
	case <-grace.C:
	}
	if l := s.opts.ObsLog; l != nil {
		_ = l.Flush() //waco:nolint errdrop -- same as the clean-drain flush above: sticky in Log.Err, surfaced via /metrics
	}
	return ctx.Err()
}
