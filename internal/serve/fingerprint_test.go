package serve

import (
	"math/rand"
	"testing"

	"waco/internal/generate"
	"waco/internal/tensor"
)

func TestFingerprintIgnoresAppendOrderAndValues(t *testing.T) {
	a := tensor.NewCOO([]int{4, 4}, 3)
	a.Append(1, 0, 1)
	a.Append(1, 2, 3)
	a.Append(1, 1, 0)

	b := tensor.NewCOO([]int{4, 4}, 3)
	b.Append(9, 2, 3) // different values, different order
	b.Append(7, 1, 0)
	b.Append(3, 0, 1)

	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("same pattern fingerprints differ across append order / values")
	}
}

func TestFingerprintDistinguishesPatterns(t *testing.T) {
	a := tensor.NewCOO([]int{4, 4}, 1)
	a.Append(1, 0, 1)
	b := tensor.NewCOO([]int{4, 4}, 1)
	b.Append(1, 1, 0)
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("transposed point fingerprints collide")
	}

	// Same coordinates, different extents: a different tuning problem.
	c := tensor.NewCOO([]int{8, 8}, 1)
	c.Append(1, 0, 1)
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different dims fingerprints collide")
	}
}

func TestFingerprintCollapsesDuplicates(t *testing.T) {
	a := tensor.NewCOO([]int{4, 4}, 3)
	a.Append(1, 0, 1)
	a.Append(1, 0, 1)
	a.Append(1, 2, 2)
	b := tensor.NewCOO([]int{4, 4}, 2)
	b.Append(2, 0, 1)
	b.Append(1, 2, 2)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("duplicate coordinates change the fingerprint")
	}
}

func TestFingerprintDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	coo := generate.Uniform(rng, 64, 64, 300)
	before := coo.Clone()
	Fingerprint(coo)
	for m := range coo.Coords {
		for p := range coo.Coords[m] {
			if coo.Coords[m][p] != before.Coords[m][p] {
				t.Fatal("Fingerprint reordered the input COO")
			}
		}
	}
}

func TestFingerprint3D(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	coo2 := generate.Uniform(rng, 32, 32, 100)
	coo3 := generate.Tensor3D(rand.New(rand.NewSource(5)), coo2, 8, 2)
	fp := Fingerprint(coo3)
	if fp == "" || fp == Fingerprint(coo2) {
		t.Fatal("3-D fingerprint degenerate")
	}
}
