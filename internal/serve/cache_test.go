package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(8, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	v, ok := c.Get("a")
	if !ok || v.(int) != 1 {
		t.Fatalf("got %v, %v", v, ok)
	}
	c.Put("a", 2)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("Put did not refresh existing key")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// TestCachePeekDoesNotCount pins the non-counting lookup the server's
// in-flight double-check uses: Peek sees cached values but never moves the
// hit/miss counters, so each request's outcome is counted exactly once.
func TestCachePeekDoesNotCount(t *testing.T) {
	c := NewCache(8, 1)
	if _, ok := c.Peek("a"); ok {
		t.Fatal("peek hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Peek("a"); !ok || v.(int) != 1 {
		t.Fatalf("peek got %v, %v", v, ok)
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("peek moved counters: hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestCacheCountsEvictions(t *testing.T) {
	c := NewCache(2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 3) // refresh, not an eviction
	if c.Evictions() != 0 {
		t.Fatalf("evictions = %d before overflow", c.Evictions())
	}
	c.Put("c", 4)
	c.Put("d", 5)
	if c.Evictions() != 2 {
		t.Fatalf("evictions = %d, want 2", c.Evictions())
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2, 1)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now most recently used
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("new entry c missing")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
}

func TestCacheSharding(t *testing.T) {
	c := NewCache(256, 16)
	if len(c.shards) != 16 {
		t.Fatalf("%d shards, want 16", len(c.shards))
	}
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	for i := 0; i < 200; i++ {
		if v, ok := c.Get(fmt.Sprintf("key-%d", i)); !ok || v.(int) != i {
			t.Fatalf("key-%d: got %v, %v", i, v, ok)
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%64)
				c.Put(key, i)
				c.Get(key)
				c.Len()
			}
		}(g)
	}
	wg.Wait()
}

func TestFlightGroupDedups(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})
	const dups = 5

	var wg sync.WaitGroup
	results := make([]any, dups+1)
	shareds := make([]bool, dups+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, shared := g.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-release
			return 42, nil
		})
		results[0], shareds[0] = v, shared
	}()
	<-started // the owner is inside fn; joiners must share its flight
	for i := 1; i <= dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, shared := g.Do(context.Background(), "k", func() (any, error) { return -1, nil })
			results[i], shareds[i] = v, shared
		}(i)
	}
	// Joiners need to reach Do before release; poll the group's map.
	for {
		g.mu.Lock()
		c, ok := g.m["k"]
		n := 0
		if ok {
			n = c.dups
		}
		g.mu.Unlock()
		if n == dups {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if shareds[0] {
		t.Fatal("owner reported shared")
	}
	for i := 0; i <= dups; i++ {
		if results[i].(int) != 42 {
			t.Fatalf("caller %d got %v, want 42", i, results[i])
		}
		if i > 0 && !shareds[i] {
			t.Fatalf("duplicate caller %d did not share the flight", i)
		}
	}

	// The key is forgotten after completion: a fresh call runs its own fn.
	v, _, shared := g.Do(context.Background(), "k", func() (any, error) { return 7, nil })
	if shared || v.(int) != 7 {
		t.Fatalf("post-completion call: v=%v shared=%v", v, shared)
	}
}

// TestFlightFollowerHonorsContext is the satellite-bug regression: a deduped
// follower whose own context ends must return immediately with ctx.Err()
// instead of riding out the leader's full search — while the leader still
// completes and later followers still get its result.
func TestFlightFollowerHonorsContext(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	started := make(chan struct{})

	leaderDone := make(chan struct{})
	var leaderVal any
	go func() {
		defer close(leaderDone)
		leaderVal, _, _ = g.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started

	// Follower with an already-cancelled context: must not block on the
	// leader.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	followerReturned := make(chan struct{})
	var fv any
	var ferr error
	var fshared bool
	go func() {
		defer close(followerReturned)
		fv, ferr, fshared = g.Do(ctx, "k", func() (any, error) { return -1, nil })
	}()
	select {
	case <-followerReturned:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower still blocked on the leader's flight")
	}
	if !errors.Is(ferr, context.Canceled) {
		t.Fatalf("follower error = %v, want context.Canceled", ferr)
	}
	if fv != nil || !fshared {
		t.Fatalf("follower got v=%v shared=%v, want nil/true", fv, fshared)
	}
	if got := g.abandonedCount(); got != 1 {
		t.Fatalf("abandoned = %d, want 1", got)
	}

	// The leader is unaffected by the follower's departure.
	close(release)
	<-leaderDone
	if leaderVal.(int) != 42 {
		t.Fatalf("leader got %v, want 42", leaderVal)
	}
}
