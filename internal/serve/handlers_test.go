package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// brokenWriter fails every body write, as a hung-up client does.
type brokenWriter struct {
	header http.Header
	status int
}

func (w *brokenWriter) Header() http.Header       { return w.header }
func (w *brokenWriter) WriteHeader(status int)    { w.status = status }
func (w *brokenWriter) Write([]byte) (int, error) { return 0, errors.New("client went away") }

// TestWriteJSONLogsEncodeFailure pins down the behavior when the response
// body cannot be written: the status line is already gone, so the failure has
// to land in the log rather than vanish.
func TestWriteJSONLogsEncodeFailure(t *testing.T) {
	var logged string
	orig := logf
	logf = func(format string, args ...any) { logged = fmt.Sprintf(format, args...) }
	defer func() { logf = orig }()

	w := &brokenWriter{header: http.Header{}}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})

	if w.status != http.StatusOK {
		t.Fatalf("status %d written before body, want %d", w.status, http.StatusOK)
	}
	if !strings.Contains(logged, "client went away") {
		t.Fatalf("encode failure not logged; log captured %q", logged)
	}
}

// TestWriteJSONQuietOnSuccess makes sure the log hook stays silent when
// encoding succeeds.
func TestWriteJSONQuietOnSuccess(t *testing.T) {
	logged := false
	orig := logf
	logf = func(string, ...any) { logged = true }
	defer func() { logf = orig }()

	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]string{"status": "ok"})
	if logged {
		t.Fatal("successful encode produced a log line")
	}
}
