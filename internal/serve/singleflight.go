package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent calls with the same key: the first
// caller (the leader) runs fn, every concurrent duplicate (a follower)
// blocks and receives the same result (a minimal, dependency-free analog of
// x/sync/singleflight). A completed call is forgotten immediately, so
// sequential repeats re-run fn — in the server the LRU cache, not the flight
// group, is the memoization layer.
//
// A follower's wait is bounded by its own context: when ctx ends first the
// follower returns ctx.Err() immediately instead of riding out the leader's
// full search, releasing whatever accounting (request slots, drain
// WaitGroups) the caller holds. The leader is unaffected — it still
// completes, caches, and serves any followers that kept waiting.
type flightGroup struct {
	mu        sync.Mutex
	m         map[string]*flightCall
	abandoned atomic.Uint64 // followers that left via their own ctx
}

type flightCall struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
	dups int // followers that joined (guarded by flightGroup.mu)
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers. shared reports whether
// this caller joined another caller's flight (true even when the join was
// abandoned via ctx — the caller never ran its own search).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			g.abandoned.Add(1)
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// abandonedCount returns how many followers gave up waiting.
func (g *flightGroup) abandonedCount() uint64 { return g.abandoned.Load() }
