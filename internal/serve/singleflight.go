package serve

import "sync"

// flightGroup deduplicates concurrent calls with the same key: the first
// caller runs fn, every concurrent duplicate blocks and receives the same
// result (a minimal, dependency-free analog of x/sync/singleflight). A
// completed call is forgotten immediately, so sequential repeats re-run fn —
// in the server the LRU cache, not the flight group, is the memoization
// layer.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg   sync.WaitGroup
	val  any
	err  error
	dups int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do runs fn once per key among concurrent callers. shared reports whether
// this caller received another caller's result.
func (g *flightGroup) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
