package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// annotation carries per-request delivery metadata from a handler body back
// to the instrument middleware, which owns the access-log line. Handlers
// fill it after their service call succeeds; requests that fail before a
// result leave it empty.
type annotation struct {
	fingerprint string
	cached      bool
	deduped     bool
	has         bool
}

type annotationKey struct{}

func withAnnotation(ctx context.Context) (context.Context, *annotation) {
	ann := &annotation{}
	return context.WithValue(ctx, annotationKey{}, ann), ann
}

// annotate records delivery metadata for the in-flight request, if the
// request came through the instrument middleware.
func annotate(ctx context.Context, fingerprint string, cached, deduped bool) {
	if ann, ok := ctx.Value(annotationKey{}).(*annotation); ok {
		ann.fingerprint, ann.cached, ann.deduped, ann.has = fingerprint, cached, deduped, true
	}
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint handler with the serving telemetry: a
// monotonically increasing request id, the per-endpoint request/error
// counters and latency histogram, and one structured access-log line when a
// logger is configured.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoints[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqSeq.Add(1)
		start := time.Now()
		ctx, ann := withAnnotation(r.Context())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		elapsed := time.Since(start)

		em.requests.Inc()
		em.latency.Observe(elapsed.Seconds())
		if sw.status >= 400 {
			em.errors.Inc()
		}
		if s.logger != nil {
			attrs := []slog.Attr{
				slog.Uint64("id", id),
				slog.String("endpoint", endpoint),
				slog.Int("status", sw.status),
				slog.Duration("duration", elapsed),
			}
			if ann.has {
				attrs = append(attrs,
					slog.String("fingerprint", ann.fingerprint),
					slog.Bool("cached", ann.cached),
					slog.Bool("deduped", ann.deduped))
			}
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
		}
	}
}
