package serve

import (
	"time"

	"waco/internal/metrics"
)

// endpoints instrumented by the HTTP layer.
var endpointNames = []string{"tune", "predict", "stats", "healthz", "metrics"}

// endpointMetrics is one endpoint's request/error/latency triple.
type endpointMetrics struct {
	requests *metrics.Counter
	errors   *metrics.Counter
	latency  *metrics.Histogram
}

// serverMetrics holds the server's instruments. The shared totals that
// /v1/stats also reports (requests, searches, dedup, cache counters) are
// func-backed reads of the same atomics Snapshot uses, so the two surfaces
// cannot drift; only purely metric-native data (latency histograms, queue
// waits) lives here exclusively.
type serverMetrics struct {
	reg       *metrics.Registry
	endpoints map[string]*endpointMetrics
	queueWait *metrics.Histogram
}

// newServerMetrics registers every serving instrument on reg. Called once
// from NewServer — registration stays out of the request path (enforced by
// the waco-vet metricreg check).
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{reg: reg, endpoints: map[string]*endpointMetrics{}}
	for _, ep := range endpointNames {
		l := metrics.Labels{"endpoint": ep}
		m.endpoints[ep] = &endpointMetrics{
			requests: reg.NewCounter("waco_http_requests_total",
				"HTTP requests by endpoint.", l),
			errors: reg.NewCounter("waco_http_errors_total",
				"HTTP responses with status >= 400, by endpoint.", l),
			latency: reg.NewHistogram("waco_http_request_seconds",
				"HTTP request latency by endpoint.", metrics.DefBuckets(), l),
		}
	}
	m.queueWait = reg.NewHistogram("waco_pool_queue_wait_seconds",
		"Time requests wait for a worker-pool slot before their search starts.",
		metrics.MicroBuckets(), nil)

	counterFunc := func(name, help string, v func() uint64) {
		reg.NewCounterFunc(name, help, nil, func() float64 { return float64(v()) })
	}
	counterFunc("waco_tune_requests_total", "Tune requests admitted.", s.tuneReqs.Load)
	counterFunc("waco_predict_requests_total", "Predict requests admitted.", s.predictReqs.Load)
	counterFunc("waco_searches_total", "Full HNSW searches executed (cache and dedup absorbed the rest).", s.searches.Load)
	counterFunc("waco_deduped_searches_total", "Requests that joined another request's in-flight search.", s.deduped.Load)
	counterFunc("waco_flight_abandoned_total", "Deduped requests that abandoned their wait when their context ended.", s.flight.abandonedCount)
	counterFunc("waco_request_errors_total", "Requests that returned an error.", s.errCount.Load)
	counterFunc("waco_cache_hits_total", "Fingerprint-cache hits.", s.cache.Hits)
	counterFunc("waco_cache_misses_total", "Fingerprint-cache misses (one per uncached request; in-flight double-checks are not counted).", s.cache.Misses)
	counterFunc("waco_cache_evictions_total", "Fingerprint-cache LRU evictions.", s.cache.Evictions)
	counterFunc("waco_costmodel_head_evals_total", "Predictor-head forward passes over the process lifetime.", s.tuner.Model.HeadEvals)

	reg.NewGaugeFunc("waco_cache_entries", "Fingerprint-cache resident entries.", nil,
		func() float64 { return float64(s.cache.Len()) })
	reg.NewGaugeFunc("waco_in_flight_requests", "Requests currently inside Tune/Predict.", nil,
		func() float64 { return float64(s.inFlight.Load()) })
	reg.NewGaugeFunc("waco_index_size", "Indexed SuperSchedules.", nil,
		func() float64 { return float64(len(s.tuner.Index.Schedules)) })
	reg.NewGaugeFunc("waco_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	return m
}
