package serve

import (
	"sync/atomic"
	"time"

	"waco/internal/metrics"
)

// endpoints instrumented by the HTTP layer.
var endpointNames = []string{"tune", "predict", "jobs", "stats", "healthz", "readyz", "reload", "metrics"}

// endpointMetrics is one endpoint's request/error/latency triple.
type endpointMetrics struct {
	requests *metrics.Counter
	errors   *metrics.Counter
	latency  *metrics.Histogram
}

// serverMetrics holds the server's instruments. The shared totals that
// /v1/stats also reports (requests, searches, dedup, cache counters) are
// func-backed reads of the same atomics Snapshot uses, so the two surfaces
// cannot drift; only purely metric-native data (latency histograms, queue
// waits) lives here exclusively.
type serverMetrics struct {
	reg       *metrics.Registry
	endpoints map[string]*endpointMetrics
	queueWait *metrics.Histogram
}

// newServerMetrics registers every serving instrument on reg. Called once
// from NewServer — registration stays out of the request path (enforced by
// the waco-vet metricreg check).
func newServerMetrics(reg *metrics.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{reg: reg, endpoints: map[string]*endpointMetrics{}}
	for _, ep := range endpointNames {
		l := metrics.Labels{"endpoint": ep}
		m.endpoints[ep] = &endpointMetrics{
			requests: reg.NewCounter("waco_http_requests_total",
				"HTTP requests by endpoint.", l),
			errors: reg.NewCounter("waco_http_errors_total",
				"HTTP responses with status >= 400, by endpoint.", l),
			latency: reg.NewHistogram("waco_http_request_seconds",
				"HTTP request latency by endpoint.", metrics.DefBuckets(), l),
		}
	}
	m.queueWait = reg.NewHistogram("waco_pool_queue_wait_seconds",
		"Time requests wait for a worker-pool slot before their search starts.",
		metrics.MicroBuckets(), nil)

	counterFunc := func(name, help string, v func() uint64) {
		reg.NewCounterFunc(name, help, nil, func() float64 { return float64(v()) })
	}
	counterFunc("waco_tune_requests_total", "Tune requests admitted.", s.tuneReqs.Load)
	counterFunc("waco_predict_requests_total", "Predict requests admitted.", s.predictReqs.Load)
	counterFunc("waco_searches_total", "Full HNSW searches executed (cache and dedup absorbed the rest).", s.searches.Load)
	counterFunc("waco_deduped_searches_total", "Requests that joined another request's in-flight search.", s.deduped.Load)
	counterFunc("waco_flight_abandoned_total", "Deduped requests that abandoned their wait when their context ended.", s.flight.abandonedCount)
	counterFunc("waco_request_errors_total", "Requests that returned an error.", s.errCount.Load)
	counterFunc("waco_cache_hits_total", "Fingerprint-cache hits.", s.cache.Hits)
	counterFunc("waco_cache_misses_total", "Fingerprint-cache misses (one per uncached request; in-flight double-checks are not counted).", s.cache.Misses)
	counterFunc("waco_cache_evictions_total", "Fingerprint-cache LRU evictions.", s.cache.Evictions)
	counterFunc("waco_costmodel_head_evals_total", "Predictor-head forward passes over the process lifetime (monotone across artifact reloads).",
		func() uint64 { return s.retiredHeadEvals.Load() + s.tuner.Load().Model.HeadEvals() })
	counterFunc("waco_artifact_reloads_total", "Successful hot artifact reloads.", s.reloads.Load)
	counterFunc("waco_jobs_submitted_total", "Async tune jobs admitted.", s.jobs.submitted.Load)
	counterFunc("waco_jobs_done_total", "Async jobs that finished with a result.", s.jobs.done.Load)
	counterFunc("waco_jobs_failed_total", "Async jobs whose tune errored.", s.jobs.failed.Load)
	counterFunc("waco_jobs_aborted_total", "Async jobs aborted by a hard drain deadline.", s.jobs.aborted.Load)
	if l := s.opts.ObsLog; l != nil {
		counterFunc("waco_obslog_records_total", "Measurement records accepted into the observation log.", l.Appended)
		counterFunc("waco_obslog_dropped_total", "Measurement records dropped (buffer full, log closed, or write error).", l.Dropped)
		counterFunc("waco_obslog_syncs_total", "Batched fsyncs issued by the observation-log writer.", l.Syncs)
	}

	for _, c := range []struct {
		class string
		v     *atomic.Uint64
	}{{"tune", &s.shedTune}, {"predict", &s.shedPredict}, {"job", &s.shedJobs}} {
		v := c.v
		reg.NewCounterFunc("waco_shed_total",
			"Requests rejected by queue-depth load shedding, by priority class (cold tunes shed first, cached answers never).",
			metrics.Labels{"class": c.class}, func() float64 { return float64(v.Load()) })
	}

	reg.NewGaugeFunc("waco_cache_entries", "Fingerprint-cache resident entries.", nil,
		func() float64 { return float64(s.cache.Len()) })
	reg.NewGaugeFunc("waco_in_flight_requests", "Requests currently inside Tune/Predict.", nil,
		func() float64 { return float64(s.inFlight.Load()) })
	reg.NewGaugeFunc("waco_pool_queue_depth", "Admitted requests waiting for a worker-pool slot (the shedding signal).", nil,
		func() float64 { return float64(s.queued.Load()) })
	reg.NewGaugeFunc("waco_jobs_running", "Async jobs currently executing.", nil,
		func() float64 { return float64(s.jobs.running.Load()) })
	reg.NewGaugeFunc("waco_jobs_stored", "Resident jobs (running + retained terminal results).", nil,
		func() float64 { return float64(s.jobs.Len()) })
	reg.NewGaugeFunc("waco_index_size", "Indexed SuperSchedules.", nil,
		func() float64 { return float64(len(s.tuner.Load().Index.Schedules)) })
	reg.NewGaugeFunc("waco_artifact_version", "In-process version of the serving artifact (1 at startup, +1 per reload).", nil,
		func() float64 { return float64(s.artifact.Load().Version) })
	reg.NewGaugeFunc("waco_draining", "1 while the server is draining (readyz failing), else 0.", nil,
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.NewGaugeFunc("waco_uptime_seconds", "Seconds since the server started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	return m
}
