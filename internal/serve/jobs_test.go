package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestJobKey(t *testing.T) {
	for _, tc := range []struct {
		id  string
		key string
		ok  bool
	}{
		{"abc123.7", "abc123", true},
		{"abc123.7.extra", "abc123", true},
		{"noseparator", "", false},
		{".7", "", false},
		{"", "", false},
	} {
		key, ok := JobKey(tc.id)
		if ok != tc.ok || (ok && key != tc.key) {
			t.Errorf("JobKey(%q) = (%q, %v), want (%q, %v)", tc.id, key, ok, tc.key, tc.ok)
		}
	}
}

func TestJobStoreBoundsAndTTL(t *testing.T) {
	js := newJobStore(3, 50*time.Millisecond)

	// Fill with running jobs: nothing is evictable, the store sheds.
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := js.create(fmt.Sprintf("fp%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if _, err := js.create("fp-overflow"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("create on a store full of running jobs: err = %v, want ErrOverloaded", err)
	}

	// Finishing one makes it evictable; the next create displaces it.
	js.finish(ids[0], JobDone, &TuneResult{Fingerprint: "fp0"}, "")
	j, err := js.create("fp3")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := js.get(ids[0]); ok {
		t.Fatal("oldest terminal job not evicted to make room")
	}
	if got, ok := js.get(j.ID); !ok || got.State != JobRunning {
		t.Fatalf("new job missing or wrong state: %+v ok=%v", got, ok)
	}

	// Terminal jobs expire after the TTL; running jobs never do.
	js.finish(j.ID, JobFailed, nil, "boom")
	time.Sleep(80 * time.Millisecond)
	if _, ok := js.get(j.ID); ok {
		t.Fatal("terminal job survived its TTL")
	}
	if _, ok := js.get(ids[1]); !ok {
		t.Fatal("running job was expired")
	}
	if js.running.Load() != 2 {
		t.Fatalf("running = %d, want 2", js.running.Load())
	}
}

func TestAsyncTuneLifecycle(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 2})
	coo := testMatrix(41)

	job, err := s.TuneAsync(coo)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != JobRunning {
		t.Fatalf("fresh async job state = %q, want running", job.State)
	}
	if key, ok := JobKey(job.ID); !ok || key != job.Fingerprint {
		t.Fatalf("job id %q does not embed fingerprint %q", job.ID, job.Fingerprint)
	}

	final := waitForJob(t, s, job.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("job finished %q (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Schedule == "" {
		t.Fatalf("done job has no result: %+v", final)
	}

	// The job's search landed in the fingerprint cache: a synchronous tune
	// of the same matrix is a cache hit, and a second async submission is
	// born terminal.
	res, err := s.Tune(context.Background(), coo)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("sync tune after async job was not a cache hit")
	}
	again, err := s.TuneAsync(coo)
	if err != nil {
		t.Fatal(err)
	}
	if again.State != JobDone || again.Result == nil || !again.Result.Cached {
		t.Fatalf("cached async job not born done: %+v", again)
	}

	st := s.Snapshot()
	if st.JobsSubmitted != 2 || st.JobsDone != 2 || st.JobsRunning != 0 {
		t.Fatalf("job counters off: %+v", st)
	}
}

// TestDrainLetsRunningJobsFinish is the graceful half of the drain
// contract: Close with a generous deadline waits for detached jobs, and the
// job store answers polls truthfully afterwards.
func TestDrainLetsRunningJobsFinish(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 2})
	var ids []string
	for seed := int64(50); seed < 52; seed++ {
		job, err := s.TuneAsync(testMatrix(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain did not finish: %v", err)
	}
	for _, id := range ids {
		job, ok := s.JobGet(id)
		if !ok {
			t.Fatalf("job %s vanished across drain", id)
		}
		if job.State != JobDone {
			t.Fatalf("job %s drained to %q (%s), want done", id, job.State, job.Error)
		}
	}
	// The server rejects new work after Close, including async submissions.
	if _, err := s.TuneAsync(testMatrix(99)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-close submit: err = %v, want ErrShuttingDown", err)
	}
}

// TestHardDrainLeavesJobsTerminal is the forced half: when Close's deadline
// has already passed, running jobs are aborted via the base context and
// persist a terminal state — a poll never sees a job stuck "running" on a
// dead server.
func TestHardDrainLeavesJobsTerminal(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 1})
	// Occupy the only pool slot so every submitted job is provably still
	// waiting for a worker when the hard drain hits.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()

	var ids []string
	for seed := int64(60); seed < 63; seed++ {
		job, err := s.TuneAsync(testMatrix(seed))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already missed: hard drain
	if err := s.Close(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("hard drain err = %v, want context.Canceled", err)
	}
	for _, id := range ids {
		job, ok := s.JobGet(id)
		if !ok {
			t.Fatalf("job %s vanished across hard drain", id)
		}
		if job.State != JobAborted {
			t.Fatalf("job %s left in state %q after hard drain, want aborted", id, job.State)
		}
		if job.Error == "" {
			t.Fatalf("aborted job %s has no error text", id)
		}
	}
	st := s.Snapshot()
	if st.JobsAborted != 3 || st.JobsRunning != 0 {
		t.Fatalf("abort counters off: aborted=%d running=%d", st.JobsAborted, st.JobsRunning)
	}
}

// TestJobTerminalStateClassification is the regression test for the async
// terminal-state misclassification: the old code looked only at whether the
// base context was down, so a tune that failed for its own reasons while a
// drain happened to be in progress was filed as "aborted" — and a
// request-level cancellation with a healthy server had no classification at
// all. The state must follow the error the tune actually returned.
func TestJobTerminalStateClassification(t *testing.T) {
	down := context.Canceled // stand-in for baseCtx.Err() after baseCancel
	genuine := errors.New("taco compile exploded")
	for _, tc := range []struct {
		name      string
		err, base error
		want      string
		wantMsg   bool
	}{
		{"success", nil, nil, JobDone, false},
		{"success during drain", nil, down, JobDone, false},
		{"failure, healthy server", genuine, nil, JobFailed, true},
		{"failure during drain", genuine, down, JobFailed, true},
		{"cancelled by shutdown", fmt.Errorf("search: %w", context.Canceled), down, JobAborted, true},
		{"deadline during shutdown", fmt.Errorf("search: %w", context.DeadlineExceeded), down, JobAborted, true},
		{"cancellation error, healthy server", context.Canceled, nil, JobFailed, true},
	} {
		state, msg := jobTerminalState(tc.err, tc.base)
		if state != tc.want {
			t.Errorf("%s: state = %q, want %q", tc.name, state, tc.want)
		}
		if (msg != "") != tc.wantMsg {
			t.Errorf("%s: msg = %q, wantMsg = %v", tc.name, msg, tc.wantMsg)
		}
	}
}

// TestDrainTimeFailureReportsFailed drives the production path of the same
// bug: with the server's base context already down (hard drain), a tune that
// returns a genuine error must finish its job "failed", not "aborted".
func TestDrainTimeFailureReportsFailed(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 1})
	s.baseCancel() // the server is draining hard from now on

	j, err := s.jobs.create("fp-test")
	if err != nil {
		t.Fatal(err)
	}
	// The goroutine body of TuneAsync, with the tune's outcome pinned: the
	// classification must come from this error, not from the drain state.
	state, msg := jobTerminalState(errors.New("measurement failed"), s.baseCtx.Err())
	s.jobs.finish(j.ID, state, nil, msg)

	got, ok := s.JobGet(j.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.State != JobFailed {
		t.Fatalf("drain-time genuine failure filed as %q, want failed", got.State)
	}
	if got.Error != "measurement failed" {
		t.Fatalf("error text %q lost the tune's own failure", got.Error)
	}
}

// TestJobGetPruneScanIsConstant pins the poll-storm fix: polling a store full
// of retained (unexpired) terminal jobs must not rescan the whole retention
// queue per poll. The scan is O(expired): with nothing expired, each get
// examines at most one queue entry.
func TestJobGetPruneScanIsConstant(t *testing.T) {
	const jobs = 200
	js := newJobStore(jobs+1, time.Hour) // nothing expires during the test
	var ids []string
	for i := 0; i < jobs; i++ {
		j, err := js.create(fmt.Sprintf("fp%d", i))
		if err != nil {
			t.Fatal(err)
		}
		js.finish(j.ID, JobDone, nil, "")
		ids = append(ids, j.ID)
	}

	js.mu.Lock()
	js.pruneScanned = 0
	js.mu.Unlock()
	const polls = 500
	for i := 0; i < polls; i++ {
		if _, ok := js.get(ids[i%len(ids)]); !ok {
			t.Fatalf("job %s missing", ids[i%len(ids)])
		}
	}
	js.mu.Lock()
	scanned := js.pruneScanned
	js.mu.Unlock()
	if scanned > polls {
		t.Fatalf("%d polls scanned %d retention entries (O(retained) sweep); want <= %d (O(expired))",
			polls, scanned, polls)
	}

	// The early exit must not break expiry itself: age everything out and
	// confirm one poll reclaims the whole queue.
	js.mu.Lock()
	for _, j := range js.jobs {
		j.FinishedAt = j.FinishedAt.Add(-2 * time.Hour)
	}
	js.mu.Unlock()
	if _, ok := js.get(ids[0]); ok {
		t.Fatal("expired job still served")
	}
	if n := js.Len(); n != 0 {
		t.Fatalf("%d jobs retained after TTL, want 0", n)
	}
}

// BenchmarkJobGet measures one poll against a store retaining many terminal
// jobs — the hot path of a client poll storm.
func BenchmarkJobGet(b *testing.B) {
	const jobs = 4096
	js := newJobStore(jobs+1, time.Hour)
	var ids []string
	for i := 0; i < jobs; i++ {
		j, err := js.create(fmt.Sprintf("fp%d", i))
		if err != nil {
			b.Fatal(err)
		}
		js.finish(j.ID, JobDone, nil, "")
		ids = append(ids, j.ID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := js.get(ids[i%len(ids)]); !ok {
			b.Fatal("job missing")
		}
	}
}

func waitForJob(t *testing.T, s *Server, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		job, ok := s.JobGet(id)
		if !ok {
			t.Fatalf("job %s disappeared while polling", id)
		}
		if job.State != JobRunning {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s still running after %v", id, timeout)
	return Job{}
}
