package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	"waco/internal/tensor"
)

// MatrixJSON is the COO-JSON wire form of a sparse tensor: dims plus
// mode-major coordinate arrays (coords[m][p] is point p's coordinate along
// mode m), mirroring tensor.COO. Values are optional — WACO tunes the
// sparsity pattern — and default to 1.
type MatrixJSON struct {
	Dims   []int     `json:"dims"`
	Coords [][]int32 `json:"coords"`
	Vals   []float32 `json:"vals,omitempty"`
}

// TuneRequest is the /v1/tune body: exactly one matrix, as COO-JSON or as
// Matrix Market text.
type TuneRequest struct {
	Matrix       *MatrixJSON `json:"matrix,omitempty"`
	MatrixMarket string      `json:"matrix_market,omitempty"`
}

// PredictRequest is the /v1/predict body.
type PredictRequest struct {
	Matrix       *MatrixJSON `json:"matrix,omitempty"`
	MatrixMarket string      `json:"matrix_market,omitempty"`
	K            int         `json:"k,omitempty"`
}

// PredictResponse is the /v1/predict answer.
type PredictResponse struct {
	Schedules []Predicted `json:"schedules"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; a 100M-nonzero COO-JSON matrix is far
// larger than anything the reduced-scale kernels handle.
const maxBodyBytes = 64 << 20

// RequestFingerprint decodes the matrix from a tune/predict request body
// and returns its sparsity fingerprint — the consistent-hash routing key a
// stateless router needs before it can pick a replica. Decoding is lenient
// about extra fields (predict bodies carry "k"); full validation still
// happens on the replica.
func RequestFingerprint(body []byte) (string, error) {
	var req struct {
		Matrix       *MatrixJSON `json:"matrix"`
		MatrixMarket string      `json:"matrix_market"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("malformed request body: %w", err)
	}
	coo, err := decodeMatrix(req.Matrix, req.MatrixMarket)
	if err != nil {
		return "", err
	}
	return Fingerprint(coo), nil
}

// decodeMatrix turns either wire form into a validated COO.
func decodeMatrix(m *MatrixJSON, mm string) (*tensor.COO, error) {
	switch {
	case m != nil && mm != "":
		return nil, errors.New("provide either matrix or matrix_market, not both")
	case m != nil:
		return m.ToCOO()
	case mm != "":
		coo, err := tensor.ReadMatrixMarket(strings.NewReader(mm))
		if err != nil {
			return nil, err
		}
		return coo, nil
	default:
		return nil, errors.New("missing matrix: provide matrix (COO-JSON) or matrix_market")
	}
}

// ToCOO converts the wire form, validating shape consistency.
func (m *MatrixJSON) ToCOO() (*tensor.COO, error) {
	if len(m.Dims) < 2 || len(m.Dims) > 3 {
		return nil, fmt.Errorf("matrix must have 2 or 3 dims, got %d", len(m.Dims))
	}
	if len(m.Coords) != len(m.Dims) {
		return nil, fmt.Errorf("coords has %d modes, dims has %d", len(m.Coords), len(m.Dims))
	}
	nnz := len(m.Coords[0])
	for mode, cs := range m.Coords {
		if len(cs) != nnz {
			return nil, fmt.Errorf("coords mode %d has %d points, mode 0 has %d", mode, len(cs), nnz)
		}
	}
	if nnz == 0 {
		return nil, errors.New("matrix has no nonzeros")
	}
	if m.Vals != nil && len(m.Vals) != nnz {
		return nil, fmt.Errorf("vals has %d entries for %d nonzeros", len(m.Vals), nnz)
	}
	coo := tensor.NewCOO(m.Dims, nnz)
	point := make([]int32, len(m.Dims))
	for p := 0; p < nnz; p++ {
		for mode := range m.Coords {
			point[mode] = m.Coords[mode][p]
		}
		v := float32(1)
		if m.Vals != nil {
			v = m.Vals[p]
		}
		coo.Append(v, point...)
	}
	if err := coo.Validate(); err != nil {
		return nil, err
	}
	return coo, nil
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/tune          — tune one matrix, returns TuneResult; with
//	                         ?async=1, returns 202 + a Job immediately and
//	                         runs the tune as a detached job
//	POST /v1/predict       — top-k schedules by predicted cost, no measurement
//	GET  /v1/jobs/{id}     — poll one async job (works during drain)
//	GET  /healthz          — liveness (also /v1/healthz, the legacy path)
//	GET  /readyz           — readiness: artifact loaded and not draining;
//	                         what a router's health checker must watch
//	POST /admin/reload     — hot-swap the sealed artifact (body: optional
//	                         {"artifact": path}, default Options.ArtifactPath)
//	GET  /v1/stats         — counter snapshot (Stats)
//	GET  /metrics          — Prometheus text exposition of the same counters
//	                         plus latency/stage histograms
//
// Every endpoint runs under the instrument middleware (request counters,
// latency histograms, structured access log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tune", s.instrument("tune", s.handleTune))
	mux.HandleFunc("/v1/predict", s.instrument("predict", s.handlePredict))
	mux.HandleFunc("/v1/jobs/", s.instrument("jobs", s.handleJob))
	mux.HandleFunc("/v1/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("/admin/reload", s.instrument("reload", s.handleReload))
	mux.HandleFunc("/v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.metrics.reg.Handler().ServeHTTP))
	return mux
}

// logf reports serving-path faults that have no response channel left (the
// status line is already gone by the time encoding fails). Swapped out in
// tests.
var logf = log.Printf

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("serve: encoding %T response: %v", v, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	// Every 503 carries a Retry-After so shed/drained clients have a
	// backoff signal instead of a bare rejection. Handlers that can
	// estimate the queue drain set a better value first; "1" is the floor.
	if status == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeServiceError is writeError with the server's queue-depth-derived
// Retry-After estimate on 503s.
func (s *Server) writeServiceError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeError(w, status, err)
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrShuttingDown), errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request) (*T, bool) {
	defer r.Body.Close()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req T
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return nil, false
	}
	return &req, true
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	req, ok := decodeBody[TuneRequest](w, r)
	if !ok {
		return
	}
	coo, err := decodeMatrix(req.Matrix, req.MatrixMarket)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	alg := s.tuner.Load().Cfg.Alg
	if coo.Order() != alg.SparseOrder() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("order-%d tensor for a %v tuner", coo.Order(), alg))
		return
	}
	async := false
	if raw := r.URL.Query().Get("async"); raw != "" {
		v, err := strconv.ParseBool(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed async value %q", raw))
			return
		}
		async = v
	}
	if async {
		job, err := s.TuneAsync(coo)
		if err != nil {
			s.writeServiceError(w, err)
			return
		}
		annotate(r.Context(), job.Fingerprint, job.State == JobDone, false)
		writeJSON(w, http.StatusAccepted, job)
		return
	}
	res, err := s.Tune(r.Context(), coo)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	annotate(r.Context(), res.Fingerprint, res.Cached, res.Deduped)
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	req, ok := decodeBody[PredictRequest](w, r)
	if !ok {
		return
	}
	coo, err := decodeMatrix(req.Matrix, req.MatrixMarket)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	alg := s.tuner.Load().Cfg.Alg
	if coo.Order() != alg.SparseOrder() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("order-%d tensor for a %v tuner", coo.Order(), alg))
		return
	}
	scheds, err := s.Predict(r.Context(), coo, req.K)
	if err != nil {
		s.writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Schedules: scheds})
}

// handleJob serves GET /v1/jobs/{id}. Job lookups stay truthful across
// drain: they bypass request admission, so a client polling a job it
// submitted before the drain began still learns the outcome.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusBadRequest, errors.New("job id required: GET /v1/jobs/{id}"))
		return
	}
	job, ok := s.JobGet(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown or expired job %q", id))
		return
	}
	annotate(r.Context(), job.Fingerprint, false, false)
	writeJSON(w, http.StatusOK, job)
}

// handleHealthz is liveness: the process is up and answering. It stays 200
// through a drain — the process is alive; it is just not ready.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "alg": s.tuner.Load().Cfg.Alg.String()})
}

// handleReadyz is readiness: the artifact is loaded and the server is not
// draining. Routers health-check this endpoint, not /healthz — a draining
// replica must stop receiving new work while it finishes old work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	art := s.Artifact()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ready",
		"artifact_version": art.Version,
		"artifact_stamp":   art.Stamp,
	})
}

// reloadRequest is the optional /admin/reload body.
type reloadRequest struct {
	Artifact string `json:"artifact,omitempty"`
}

// handleReload hot-swaps the sealed artifact. A failed load leaves the old
// artifact serving and reports 500 — reload is all-or-nothing.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req reloadRequest
	if r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("malformed reload body: %w", err))
			return
		}
	}
	info, err := s.ReloadFromFile(req.Artifact)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}
