package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"

	"waco/internal/tensor"
)

// MatrixJSON is the COO-JSON wire form of a sparse tensor: dims plus
// mode-major coordinate arrays (coords[m][p] is point p's coordinate along
// mode m), mirroring tensor.COO. Values are optional — WACO tunes the
// sparsity pattern — and default to 1.
type MatrixJSON struct {
	Dims   []int     `json:"dims"`
	Coords [][]int32 `json:"coords"`
	Vals   []float32 `json:"vals,omitempty"`
}

// TuneRequest is the /v1/tune body: exactly one matrix, as COO-JSON or as
// Matrix Market text.
type TuneRequest struct {
	Matrix       *MatrixJSON `json:"matrix,omitempty"`
	MatrixMarket string      `json:"matrix_market,omitempty"`
}

// PredictRequest is the /v1/predict body.
type PredictRequest struct {
	Matrix       *MatrixJSON `json:"matrix,omitempty"`
	MatrixMarket string      `json:"matrix_market,omitempty"`
	K            int         `json:"k,omitempty"`
}

// PredictResponse is the /v1/predict answer.
type PredictResponse struct {
	Schedules []Predicted `json:"schedules"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds request bodies; a 100M-nonzero COO-JSON matrix is far
// larger than anything the reduced-scale kernels handle.
const maxBodyBytes = 64 << 20

// decodeMatrix turns either wire form into a validated COO.
func decodeMatrix(m *MatrixJSON, mm string) (*tensor.COO, error) {
	switch {
	case m != nil && mm != "":
		return nil, errors.New("provide either matrix or matrix_market, not both")
	case m != nil:
		return m.ToCOO()
	case mm != "":
		coo, err := tensor.ReadMatrixMarket(strings.NewReader(mm))
		if err != nil {
			return nil, err
		}
		return coo, nil
	default:
		return nil, errors.New("missing matrix: provide matrix (COO-JSON) or matrix_market")
	}
}

// ToCOO converts the wire form, validating shape consistency.
func (m *MatrixJSON) ToCOO() (*tensor.COO, error) {
	if len(m.Dims) < 2 || len(m.Dims) > 3 {
		return nil, fmt.Errorf("matrix must have 2 or 3 dims, got %d", len(m.Dims))
	}
	if len(m.Coords) != len(m.Dims) {
		return nil, fmt.Errorf("coords has %d modes, dims has %d", len(m.Coords), len(m.Dims))
	}
	nnz := len(m.Coords[0])
	for mode, cs := range m.Coords {
		if len(cs) != nnz {
			return nil, fmt.Errorf("coords mode %d has %d points, mode 0 has %d", mode, len(cs), nnz)
		}
	}
	if nnz == 0 {
		return nil, errors.New("matrix has no nonzeros")
	}
	if m.Vals != nil && len(m.Vals) != nnz {
		return nil, fmt.Errorf("vals has %d entries for %d nonzeros", len(m.Vals), nnz)
	}
	coo := tensor.NewCOO(m.Dims, nnz)
	point := make([]int32, len(m.Dims))
	for p := 0; p < nnz; p++ {
		for mode := range m.Coords {
			point[mode] = m.Coords[mode][p]
		}
		v := float32(1)
		if m.Vals != nil {
			v = m.Vals[p]
		}
		coo.Append(v, point...)
	}
	if err := coo.Validate(); err != nil {
		return nil, err
	}
	return coo, nil
}

// Handler returns the service's HTTP mux:
//
//	POST /v1/tune     — tune one matrix, returns TuneResult
//	POST /v1/predict  — top-k schedules by predicted cost, no measurement
//	GET  /v1/healthz  — liveness
//	GET  /v1/stats    — counter snapshot (Stats)
//	GET  /metrics     — Prometheus text exposition of the same counters plus
//	                    latency/stage histograms
//
// Every endpoint runs under the instrument middleware (request counters,
// latency histograms, structured access log).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tune", s.instrument("tune", s.handleTune))
	mux.HandleFunc("/v1/predict", s.instrument("predict", s.handlePredict))
	mux.HandleFunc("/v1/healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/metrics", s.instrument("metrics", s.metrics.reg.Handler().ServeHTTP))
	return mux
}

// logf reports serving-path faults that have no response channel left (the
// status line is already gone by the time encoding fails). Swapped out in
// tests.
var logf = log.Printf

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("serve: encoding %T response: %v", v, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func decodeBody[T any](w http.ResponseWriter, r *http.Request) (*T, bool) {
	defer r.Body.Close()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	var req T
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return nil, false
	}
	return &req, true
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	req, ok := decodeBody[TuneRequest](w, r)
	if !ok {
		return
	}
	coo, err := decodeMatrix(req.Matrix, req.MatrixMarket)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if coo.Order() != s.tuner.Cfg.Alg.SparseOrder() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("order-%d tensor for a %v tuner", coo.Order(), s.tuner.Cfg.Alg))
		return
	}
	res, err := s.Tune(r.Context(), coo)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	annotate(r.Context(), res.Fingerprint, res.Cached, res.Deduped)
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	req, ok := decodeBody[PredictRequest](w, r)
	if !ok {
		return
	}
	coo, err := decodeMatrix(req.Matrix, req.MatrixMarket)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if coo.Order() != s.tuner.Cfg.Alg.SparseOrder() {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("order-%d tensor for a %v tuner", coo.Order(), s.tuner.Cfg.Alg))
		return
	}
	scheds, err := s.Predict(r.Context(), coo, req.K)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{Schedules: scheds})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "alg": s.tuner.Cfg.Alg.String()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}
