package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/tensor"
)

// TestEndToEndHTTP drives the full CLI pipeline in-process: the waco-datagen
// + waco-train stages (core.Build over a generated corpus), artifact sealing
// (waco-train -artifact), a cold waco-serve start (core.LoadTuner), and an
// httptest round of the HTTP surface, including the malformed-input 400
// path.
func TestEndToEndHTTP(t *testing.T) {
	// Stage 1+2: datagen + train (shared quick tuner), then seal to disk as
	// waco-train -artifact would.
	built := quickTuner(t)
	artifact := filepath.Join(t.TempDir(), "spmm.tuner")
	af, err := os.Create(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.SaveTuner(af, built); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}

	// Stage 3: cold waco-serve start from the sealed artifact.
	rf, err := os.Open(artifact)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadTuner(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(loaded, Options{MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(21))
	coo := generate.Uniform(rng, 96, 96, 800)
	body := tuneBody(t, coo)

	// Healthz.
	resp := get(t, ts.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Cold tune.
	var first TuneResult
	postJSON(t, ts.URL+"/v1/tune", body, http.StatusOK, &first)
	if first.Cached || first.Schedule == "" || first.KernelSeconds <= 0 {
		t.Fatalf("cold tune degenerate: %+v", first)
	}

	// The served schedule must have the same quality as the in-process
	// core.Tuner path: the loaded artifact retrieves the identical candidate
	// set (deterministic), and the winner is drawn from it. (Exact winner
	// comparison would race measurement noise between two hardware runs.)
	k := built.Cfg.TopK
	directRes, err := built.Index.Search(context.Background(), newPattern(coo), k, built.Cfg.SearchEf)
	if err != nil {
		t.Fatal(err)
	}
	servedRes, err := loaded.Index.Search(context.Background(), newPattern(coo), k, built.Cfg.SearchEf)
	if err != nil {
		t.Fatal(err)
	}
	candidates := map[string]bool{}
	for i, c := range directRes.Candidates {
		if servedRes.Candidates[i].SS.String() != c.SS.String() {
			t.Fatalf("candidate %d differs between built and loaded tuners", i)
		}
		candidates[c.SS.String()] = true
	}
	if !candidates[first.Schedule] {
		t.Fatalf("served schedule is not among the top-%d candidates of the in-process path:\n  %s",
			k, first.Schedule)
	}

	// Warm tune: fingerprint cache, no second search.
	var second TuneResult
	postJSON(t, ts.URL+"/v1/tune", body, http.StatusOK, &second)
	if !second.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if second.Schedule != first.Schedule {
		t.Fatal("cached schedule differs")
	}

	// Stats confirm one search and one cache hit.
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Searches != 1 {
		t.Fatalf("stats: searches = %d, want 1", st.Searches)
	}
	if st.CacheHits != 1 {
		t.Fatalf("stats: cache hits = %d, want 1", st.CacheHits)
	}
	if st.TuneRequests != 2 {
		t.Fatalf("stats: tune requests = %d, want 2", st.TuneRequests)
	}
	if st.IndexSize != len(built.Index.Schedules) {
		t.Fatalf("stats: index size %d, want %d", st.IndexSize, len(built.Index.Schedules))
	}

	// Predict over the Matrix Market wire form.
	var mm bytes.Buffer
	if err := tensor.WriteMatrixMarket(&mm, coo); err != nil {
		t.Fatal(err)
	}
	preq, _ := json.Marshal(map[string]any{"matrix_market": mm.String(), "k": 3})
	var pres PredictResponse
	postJSON(t, ts.URL+"/v1/predict", preq, http.StatusOK, &pres)
	if len(pres.Schedules) != 3 {
		t.Fatalf("predict returned %d schedules, want 3", len(pres.Schedules))
	}

	// Malformed inputs: invalid JSON, inconsistent COO, wrong order, no body.
	for name, bad := range map[string]string{
		"truncated json":    `{"matrix": {"dims": [4, 4]`,
		"unknown field":     `{"matrixx": 3}`,
		"missing matrix":    `{}`,
		"ragged coords":     `{"matrix": {"dims": [4,4], "coords": [[0,1],[2]]}}`,
		"3d for 2d tuner":   `{"matrix": {"dims": [4,4,4], "coords": [[0],[1],[2]]}}`,
		"out of range":      `{"matrix": {"dims": [4,4], "coords": [[9],[0]]}}`,
		"empty matrix":      `{"matrix": {"dims": [4,4], "coords": [[],[]]}}`,
		"both wire forms":   `{"matrix": {"dims": [4,4], "coords": [[0],[1]]}, "matrix_market": "x"}`,
		"bad matrix market": `{"matrix_market": "not a header"}`,
	} {
		r, err := http.Post(ts.URL+"/v1/tune", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, r.StatusCode)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil || e.Error == "" {
			t.Fatalf("%s: 400 without a JSON error body (%v)", name, err)
		}
		r.Body.Close()
	}

	// Wrong methods.
	if r := get(t, ts.URL+"/v1/tune"); r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/tune: %d", r.StatusCode)
	} else {
		r.Body.Close()
	}
	r, err := http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats: %d", r.StatusCode)
	}
	r.Body.Close()
}

// TestMetricsEndpointAgreesWithStats is the acceptance check for the
// observability layer: after N distinct and M duplicate tune requests the
// Prometheus exposition on /metrics must report cache_misses == N and agree
// with /v1/stats on every shared total — the two surfaces read the same
// atomics, so any drift is a bug.
func TestMetricsEndpointAgreesWithStats(t *testing.T) {
	s, err := NewServer(quickTuner(t), Options{MaxWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const distinct = 3
	const dupsPer = 2
	tunePosts := 0
	for seed := int64(0); seed < distinct; seed++ {
		body := tuneBody(t, testMatrix(300+seed))
		for rep := 0; rep <= dupsPer; rep++ {
			var res TuneResult
			postJSON(t, ts.URL+"/v1/tune", body, http.StatusOK, &res)
			tunePosts++
			if rep > 0 && !res.Cached {
				t.Fatalf("seed %d rep %d not served from cache", seed, rep)
			}
		}
	}
	var pres PredictResponse
	preq, _ := json.Marshal(map[string]any{
		"matrix": &MatrixJSON{Dims: []int{4, 4}, Coords: [][]int32{{0, 1}, {1, 2}}, Vals: []float32{1, 2}},
		"k":      2,
	})
	postJSON(t, ts.URL+"/v1/predict", preq, http.StatusOK, &pres)

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)

	resp := get(t, ts.URL+"/metrics")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	mm := parsePrometheus(t, string(raw))

	// The headline acceptance numbers: exactly one miss per distinct matrix,
	// every repeat a hit, no dedup or abandonment under sequential load.
	for name, want := range map[string]uint64{
		"waco_cache_misses_total":     distinct,
		"waco_cache_hits_total":       distinct * dupsPer,
		"waco_searches_total":         distinct,
		"waco_deduped_searches_total": 0,
		"waco_flight_abandoned_total": 0,
		"waco_tune_requests_total":    distinct * (dupsPer + 1),
		"waco_predict_requests_total": 1,
		"waco_request_errors_total":   0,
		"waco_cache_evictions_total":  0,
	} {
		if got, ok := mm[name]; !ok || got != float64(want) {
			t.Fatalf("%s = %v (present=%v), want %d", name, got, ok, want)
		}
	}

	// Exposition and JSON stats are two views of the same counters.
	for name, want := range map[string]uint64{
		"waco_tune_requests_total":    st.TuneRequests,
		"waco_predict_requests_total": st.PredictRequests,
		"waco_searches_total":         st.Searches,
		"waco_deduped_searches_total": st.DedupedSearches,
		"waco_flight_abandoned_total": st.FlightAbandoned,
		"waco_cache_hits_total":       st.CacheHits,
		"waco_cache_misses_total":     st.CacheMisses,
		"waco_cache_evictions_total":  st.CacheEvictions,
		"waco_cache_entries":          uint64(st.CacheEntries),
		"waco_index_size":             uint64(st.IndexSize),
	} {
		if mm[name] != float64(want) {
			t.Fatalf("%s = %v disagrees with /v1/stats value %d", name, mm[name], want)
		}
	}

	// Per-endpoint HTTP counters and latency histograms saw every request.
	if got := mm[`waco_http_requests_total{endpoint="tune"}`]; got != float64(tunePosts) {
		t.Fatalf("http tune requests = %v, want %d", got, tunePosts)
	}
	if got := mm[`waco_http_request_seconds_count{endpoint="tune"}`]; got != float64(tunePosts) {
		t.Fatalf("http tune latency count = %v, want %d", got, tunePosts)
	}
	if got := mm[`waco_http_requests_total{endpoint="stats"}`]; got != 1 {
		t.Fatalf("http stats requests = %v, want 1", got)
	}
	if got := mm[`waco_http_errors_total{endpoint="tune"}`]; got != 0 {
		t.Fatalf("http tune errors = %v, want 0", got)
	}

	// Search-side 5.4 instruments observed one entry per executed search.
	if got := mm["waco_search_queries_total"]; got != distinct+1 { // +1 predict
		t.Fatalf("search queries = %v, want %d", got, distinct+1)
	}
	if got := mm["waco_search_evals_per_query_count"]; got != distinct+1 {
		t.Fatalf("evals-per-query observations = %v, want %d", got, distinct+1)
	}
	if mm["waco_costmodel_head_evals_total"] <= 0 {
		t.Fatal("no head evals exported")
	}
	// Kernel measurements ran once per full tune (the measured winner).
	if mm["waco_kernel_measurements_total"] <= 0 || mm["waco_kernel_runs_total"] <= 0 {
		t.Fatalf("kernel instruments empty: measurements=%v runs=%v",
			mm["waco_kernel_measurements_total"], mm["waco_kernel_runs_total"])
	}
}

// parsePrometheus reads text exposition format into series -> value, keyed by
// the full series name including its label set.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func newPattern(coo *tensor.COO) *costmodel.Pattern {
	return costmodel.NewPattern(coo.Clone())
}

func tuneBody(t *testing.T, coo *tensor.COO) []byte {
	t.Helper()
	m := MatrixJSON{Dims: coo.Dims, Coords: coo.Coords, Vals: coo.Vals}
	b, err := json.Marshal(TuneRequest{Matrix: &m})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp := get(t, url)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url string, body []byte, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("POST %s: %v: %s", url, err, raw)
		}
	}
}
