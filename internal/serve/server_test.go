package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
	"waco/internal/tensor"
)

// testTuner builds one small SpMM tuner, shared across the package's tests
// (training even a tiny model dominates test time otherwise).
var (
	tunerOnce sync.Once
	tuner     *core.Tuner
	tunerErr  error
)

func quickTuner(t *testing.T) *core.Tuner {
	t.Helper()
	tunerOnce.Do(func() {
		cfg := core.DefaultConfig(schedule.SpMM)
		cfg.Collect.SchedulesPerMatrix = 8
		cfg.Collect.Repeats = 1
		cfg.Collect.DenseN = 8
		sp := schedule.DefaultSpace(schedule.SpMM)
		sp.SplitChoices = []int32{1, 2, 4, 8}
		sp.ThreadChoices = []int{1, 2}
		cfg.Collect.Space = sp
		cfg.Model = costmodel.Config{
			Extractor: costmodel.KindHumanFeature,
			ConvCfg:   sparseconv.Config{Dim: 2, Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 12},
			EmbDim:    12,
			HeadDims:  []int{16},
			Seed:      1,
		}
		cfg.Train = costmodel.TrainConfig{Epochs: 3, PairsPerMatrix: 8, LR: 1e-3, Seed: 2, Loss: costmodel.LossRank}
		cfg.TopK = 3
		cfg.SearchEf = 24
		cc := generate.DefaultCorpusConfig()
		cc.Count = 5
		cc.MinDim, cc.MaxDim, cc.MaxNNZ = 64, 160, 2500
		tuner, _, tunerErr = core.Build(generate.Corpus(cc), cfg)
	})
	if tunerErr != nil {
		t.Fatal(tunerErr)
	}
	return tuner
}

func testMatrix(seed int64) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	return generate.Uniform(rng, 96, 96, 900)
}

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := NewServer(quickTuner(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTuneCachesByFingerprint(t *testing.T) {
	s := newTestServer(t, Options{})
	coo := testMatrix(1)

	first, err := s.Tune(context.Background(), coo)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Deduped {
		t.Fatalf("first request: cached=%v deduped=%v", first.Cached, first.Deduped)
	}
	if first.Schedule == "" || first.KernelSeconds <= 0 {
		t.Fatalf("degenerate result: %+v", first)
	}

	// Same pattern, different value distribution and append order: must be a
	// cache hit with no new search.
	clone := testMatrix(1)
	for i := range clone.Vals {
		clone.Vals[i] *= 3
	}
	second, err := s.Tune(context.Background(), clone)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat request was not served from the cache")
	}
	if second.Schedule != first.Schedule {
		t.Fatalf("cached schedule differs: %s vs %s", second.Schedule, first.Schedule)
	}

	st := s.Snapshot()
	if st.Searches != 1 {
		t.Fatalf("searches = %d, want 1", st.Searches)
	}
	// Exactly one miss for the one uncached request: the in-flight
	// double-check is a non-counting Peek, so the cold path no longer
	// counts twice.
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.TuneRequests != 2 {
		t.Fatalf("tune requests = %d, want 2", st.TuneRequests)
	}
}

// TestCacheCountsAreExact is the satellite-bug regression at the server
// level: after N distinct and M duplicate (sequential, so cache-served) tune
// requests, misses == N and hits == M — the totals any hit-rate dashboard
// divides.
func TestCacheCountsAreExact(t *testing.T) {
	s := newTestServer(t, Options{})
	const distinct = 3
	const repeatsPer = 2
	for seed := int64(0); seed < distinct; seed++ {
		for rep := 0; rep <= repeatsPer; rep++ {
			if _, err := s.Tune(context.Background(), testMatrix(200+seed)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Snapshot()
	if st.CacheMisses != distinct {
		t.Fatalf("cache misses = %d, want exactly %d (one per distinct matrix)", st.CacheMisses, distinct)
	}
	if st.CacheHits != distinct*repeatsPer {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, distinct*repeatsPer)
	}
	if st.Searches != distinct {
		t.Fatalf("searches = %d, want %d", st.Searches, distinct)
	}
	if st.DedupedSearches != 0 || st.FlightAbandoned != 0 {
		t.Fatalf("sequential requests deduped=%d abandoned=%d, want 0/0", st.DedupedSearches, st.FlightAbandoned)
	}
}

// TestConcurrentTuneMix is the -race exercised concurrency test: N
// goroutines with a mix of duplicate and distinct matrices. Whatever the
// interleaving, each distinct fingerprint must trigger exactly one search;
// every other request is absorbed by the cache or the flight group.
func TestConcurrentTuneMix(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 2})
	const goroutines = 24
	const distinct = 3

	var wg sync.WaitGroup
	results := make([]*TuneResult, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			coo := testMatrix(int64(100 + g%distinct))
			results[g], errs[g] = s.Tune(context.Background(), coo)
		}(g)
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	// Same fingerprint -> same schedule, regardless of delivery path.
	bySeed := map[int64]string{}
	for g, r := range results {
		seed := int64(100 + g%distinct)
		if prev, ok := bySeed[seed]; ok && prev != r.Schedule {
			t.Fatalf("seed %d got two schedules:\n  %s\n  %s", seed, prev, r.Schedule)
		}
		bySeed[seed] = r.Schedule
	}

	st := s.Snapshot()
	if st.Searches != distinct {
		t.Fatalf("searches = %d, want exactly %d (one per distinct fingerprint)", st.Searches, distinct)
	}
	// Conservation: every request was a fresh search, a flight join, or a
	// cache hit.
	if st.Searches+st.DedupedSearches+st.CacheHits != goroutines {
		t.Fatalf("searches %d + deduped %d + hits %d != %d requests",
			st.Searches, st.DedupedSearches, st.CacheHits, goroutines)
	}
	if st.Errors != 0 {
		t.Fatalf("errors = %d", st.Errors)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight = %d after drain", st.InFlight)
	}
}

func TestConcurrentPredict(t *testing.T) {
	s := newTestServer(t, Options{MaxWorkers: 4})
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scheds, err := s.Predict(context.Background(), testMatrix(int64(g)), 4)
			if err == nil && len(scheds) != 4 {
				err = fmt.Errorf("got %d schedules, want 4", len(scheds))
			}
			errs[g] = err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if st := s.Snapshot(); st.PredictRequests != 12 {
		t.Fatalf("predict requests = %d", st.PredictRequests)
	}
}

func TestPredictRanksAscending(t *testing.T) {
	s := newTestServer(t, Options{})
	scheds, err := s.Predict(context.Background(), testMatrix(7), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheds) == 0 {
		t.Fatal("no schedules")
	}
	for i := 1; i < len(scheds); i++ {
		if scheds[i-1].Cost > scheds[i].Cost {
			t.Fatalf("costs not ascending at %d: %v > %v", i, scheds[i-1].Cost, scheds[i].Cost)
		}
	}
}

func TestServerRejectsAfterClose(t *testing.T) {
	s := newTestServer(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tune(context.Background(), testMatrix(1)); err != ErrShuttingDown {
		t.Fatalf("got %v, want ErrShuttingDown", err)
	}
	if _, err := s.Predict(context.Background(), testMatrix(1), 3); err != ErrShuttingDown {
		t.Fatalf("got %v, want ErrShuttingDown", err)
	}
}

func TestTuneHonorsContext(t *testing.T) {
	s := newTestServer(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Tune(ctx, testMatrix(55)); err == nil {
		t.Fatal("cancelled tune succeeded")
	}
	if st := s.Snapshot(); st.Errors == 0 {
		t.Fatal("error not counted")
	}
}

func TestTuneRejectsInvalidMatrix(t *testing.T) {
	s := newTestServer(t, Options{})
	bad := tensor.NewCOO([]int{4, 4}, 1)
	bad.Append(1, 9, 0) // out of range
	if _, err := s.Tune(context.Background(), bad); err == nil {
		t.Fatal("accepted out-of-range coordinate")
	}
}
