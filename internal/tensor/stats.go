package tensor

import "math"

// Stats summarizes a sparsity pattern. These are the "human-crafted features"
// of §3.2.1: cheap statistics that prior work fed to shallow models, used
// here both by the HumanFeature extractor baseline and by the BestFormat
// classifier.
type Stats struct {
	NumRows, NumCols int
	NNZ              int
	Density          float64
	RowNNZMean       float64 // mean nonzeros per row
	RowNNZStd        float64 // standard deviation of nonzeros per row
	RowNNZMax        int
	EmptyRows        int
	AvgBandwidth     float64 // mean |i-j| over nonzeros
	DiagFraction     float64 // fraction of nonzeros with |i-j| <= 1
	BlockFill2       float64 // mean fill of nonempty 2x2 blocks
	BlockFill8       float64 // mean fill of nonempty 8x8 blocks
	SymmetryScore    float64 // fraction of nonzeros whose transpose position is also nonzero
}

// ComputeStats computes pattern statistics for an order-2 COO. The input is
// sorted row-major and deduplicated as a side effect.
func ComputeStats(c *COO) Stats {
	st := Stats{NumRows: c.Dims[0], NumCols: c.Dims[1]}
	c.SortRowMajor()
	c.Dedup()
	st.NNZ = c.NNZ()
	if st.NumRows == 0 || st.NumCols == 0 {
		return st
	}
	st.Density = float64(st.NNZ) / (float64(st.NumRows) * float64(st.NumCols))

	rowCount := make([]int, st.NumRows)
	var bandSum float64
	var diagCount int
	for p := 0; p < st.NNZ; p++ {
		i, j := c.Coords[0][p], c.Coords[1][p]
		rowCount[i]++
		d := int(i) - int(j)
		if d < 0 {
			d = -d
		}
		bandSum += float64(d)
		if d <= 1 {
			diagCount++
		}
	}
	var sum, sumSq float64
	for _, n := range rowCount {
		sum += float64(n)
		sumSq += float64(n) * float64(n)
		if n > st.RowNNZMax {
			st.RowNNZMax = n
		}
		if n == 0 {
			st.EmptyRows++
		}
	}
	mean := sum / float64(st.NumRows)
	st.RowNNZMean = mean
	st.RowNNZStd = math.Sqrt(maxf(0, sumSq/float64(st.NumRows)-mean*mean))
	if st.NNZ > 0 {
		st.AvgBandwidth = bandSum / float64(st.NNZ)
		st.DiagFraction = float64(diagCount) / float64(st.NNZ)
	}
	st.BlockFill2 = blockFill(c, 2)
	st.BlockFill8 = blockFill(c, 8)
	st.SymmetryScore = symmetryScore(c)
	return st
}

// blockFill returns the mean fill ratio of nonempty b x b blocks: NNZ divided
// by (number of touched blocks * b*b), the key statistic for deciding BCSR
// profitability.
func blockFill(c *COO, b int32) float64 {
	if c.NNZ() == 0 {
		return 0
	}
	blocks := make(map[int64]struct{}, c.NNZ()/int(b))
	cols64 := int64((int32(c.Dims[1]) + b - 1) / b)
	for p := 0; p < c.NNZ(); p++ {
		bi := int64(c.Coords[0][p] / b)
		bj := int64(c.Coords[1][p] / b)
		blocks[bi*cols64+bj] = struct{}{}
	}
	return float64(c.NNZ()) / (float64(len(blocks)) * float64(b) * float64(b))
}

// symmetryScore returns the fraction of off-diagonal nonzeros (i,j) for which
// (j,i) is also a stored nonzero. Square matrices only; 0 otherwise.
func symmetryScore(c *COO) float64 {
	if c.Dims[0] != c.Dims[1] || c.NNZ() == 0 {
		return 0
	}
	pos := make(map[int64]struct{}, c.NNZ())
	n := int64(c.Dims[1])
	for p := 0; p < c.NNZ(); p++ {
		pos[int64(c.Coords[0][p])*n+int64(c.Coords[1][p])] = struct{}{}
	}
	var offDiag, mirrored int
	for p := 0; p < c.NNZ(); p++ {
		i, j := c.Coords[0][p], c.Coords[1][p]
		if i == j {
			continue
		}
		offDiag++
		if _, ok := pos[int64(j)*n+int64(i)]; ok {
			mirrored++
		}
	}
	if offDiag == 0 {
		return 1
	}
	return float64(mirrored) / float64(offDiag)
}

// FeatureVector flattens the statistics into a fixed-length float32 vector
// for consumption by shallow learned models. Counts are log-scaled so the
// magnitudes stay comparable across matrix sizes.
func (s Stats) FeatureVector() []float32 {
	logf := func(x float64) float32 { return float32(math.Log1p(x)) }
	return []float32{
		logf(float64(s.NumRows)),
		logf(float64(s.NumCols)),
		logf(float64(s.NNZ)),
		float32(s.Density),
		logf(s.RowNNZMean),
		logf(s.RowNNZStd),
		logf(float64(s.RowNNZMax)),
		float32(float64(s.EmptyRows) / math.Max(1, float64(s.NumRows))),
		logf(s.AvgBandwidth),
		float32(s.DiagFraction),
		float32(s.BlockFill2),
		float32(s.BlockFill8),
		float32(s.SymmetryScore),
	}
}

// HumanFeatureDim is the length of Stats.FeatureVector.
const HumanFeatureDim = 13

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
