package tensor

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadMatrixMarket parses a MatrixMarket "coordinate" stream into a COO
// tensor. It supports the real, integer and pattern fields and the general
// and symmetric symmetry modes (symmetric entries are mirrored). Pattern
// entries get value 1. Coordinates in the file are 1-based, as per the
// format; the returned tensor is 0-based, sorted row-major and deduplicated.
func ReadMatrixMarket(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("tensor: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("tensor: bad MatrixMarket header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("tensor: unsupported MatrixMarket format %q (only coordinate)", header[2])
	}
	field, symmetry := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("tensor: unsupported MatrixMarket field %q", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("tensor: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("tensor: missing MatrixMarket size line")
	}
	sizes := strings.Fields(sizeLine)
	if len(sizes) != 3 {
		return nil, fmt.Errorf("tensor: bad MatrixMarket size line %q", sizeLine)
	}
	rows, err := strconv.Atoi(sizes[0])
	if err != nil {
		return nil, fmt.Errorf("tensor: bad row count: %w", err)
	}
	cols, err := strconv.Atoi(sizes[1])
	if err != nil {
		return nil, fmt.Errorf("tensor: bad column count: %w", err)
	}
	nnz, err := strconv.Atoi(sizes[2])
	if err != nil {
		return nil, fmt.Errorf("tensor: bad nnz count: %w", err)
	}

	out := NewCOO([]int{rows, cols}, nnz)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("tensor: short MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("tensor: bad row index %q: %w", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("tensor: bad column index %q: %w", fields[1], err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("tensor: bad value %q: %w", fields[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("tensor: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		out.Append(float32(v), int32(i-1), int32(j-1))
		if symmetry == "symmetric" && i != j {
			out.Append(float32(v), int32(j-1), int32(i-1))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tensor: reading MatrixMarket: %w", err)
	}
	out.SortRowMajor()
	out.Dedup()
	return out, nil
}

// WriteMatrixMarket serializes an order-2 COO in MatrixMarket coordinate real
// general format.
func WriteMatrixMarket(w io.Writer, c *COO) error {
	if c.Order() != 2 {
		return fmt.Errorf("%w: WriteMatrixMarket on order-%d tensor", ErrOrderMismatch, c.Order())
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		c.Dims[0], c.Dims[1], c.NNZ()); err != nil {
		return err
	}
	for p := 0; p < c.NNZ(); p++ {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", c.Coords[0][p]+1, c.Coords[1][p]+1, c.Vals[p]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
