package tensor

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestReadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
3 4 -1
2 2 7
`
	c, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Dims[0] != 3 || c.Dims[1] != 4 || c.NNZ() != 3 {
		t.Fatalf("dims %v nnz %d", c.Dims, c.NNZ())
	}
	// Sorted row-major: (0,0)=2.5, (1,1)=7, (2,3)=-1.
	if c.Vals[0] != 2.5 || c.Vals[1] != 7 || c.Vals[2] != -1 {
		t.Fatalf("values %v", c.Vals)
	}
}

func TestReadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5
3 3 1
`
	c, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 3 { // (1,0), (0,1) mirrored, (2,2) diagonal not duplicated
		t.Fatalf("NNZ = %d, want 3", c.NNZ())
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	c, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 2 || c.Vals[0] != 1 || c.Vals[1] != 1 {
		t.Fatalf("pattern read gave nnz=%d vals=%v", c.NNZ(), c.Vals)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "%%NotMM matrix coordinate real general\n1 1 0\n",
		"array format":  "%%MatrixMarket matrix array real general\n1 1\n",
		"bad size":      "%%MatrixMarket matrix coordinate real general\n1 1\n",
		"out of range":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"short entry":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"bad value":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"bad field":     "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symmetry":  "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"no size line":  "%%MatrixMarket matrix coordinate real general\n% only comments\n",
		"bad row index": "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := randomCOO(rng, 40, 30, 200)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != c.NNZ() {
		t.Fatalf("round trip NNZ %d, want %d", back.NNZ(), c.NNZ())
	}
	for p := 0; p < c.NNZ(); p++ {
		if back.Coords[0][p] != c.Coords[0][p] || back.Coords[1][p] != c.Coords[1][p] {
			t.Fatalf("coordinate mismatch at %d", p)
		}
		d := back.Vals[p] - c.Vals[p]
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("value mismatch at %d: %g vs %g", p, back.Vals[p], c.Vals[p])
		}
	}
}

func TestWriteMatrixMarketWrongOrder(t *testing.T) {
	c := NewCOO([]int{2, 2, 2}, 0)
	if err := WriteMatrixMarket(&bytes.Buffer{}, c); err == nil {
		t.Fatal("accepted order-3 tensor")
	}
}
