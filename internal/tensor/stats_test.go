package tensor

import (
	"math"
	"testing"
)

func TestComputeStatsDiagonal(t *testing.T) {
	n := 16
	c := NewCOO([]int{n, n}, n)
	for i := 0; i < n; i++ {
		c.Append(1, int32(i), int32(i))
	}
	st := ComputeStats(c)
	if st.NNZ != n {
		t.Fatalf("NNZ = %d", st.NNZ)
	}
	if st.DiagFraction != 1 {
		t.Fatalf("DiagFraction = %g, want 1", st.DiagFraction)
	}
	if st.AvgBandwidth != 0 {
		t.Fatalf("AvgBandwidth = %g, want 0", st.AvgBandwidth)
	}
	if st.RowNNZMean != 1 || st.RowNNZStd != 0 {
		t.Fatalf("row stats mean=%g std=%g", st.RowNNZMean, st.RowNNZStd)
	}
	if st.SymmetryScore != 1 { // no off-diagonal entries => vacuously symmetric
		t.Fatalf("SymmetryScore = %g, want 1", st.SymmetryScore)
	}
	if math.Abs(st.Density-1.0/float64(n)) > 1e-12 {
		t.Fatalf("Density = %g", st.Density)
	}
}

func TestComputeStatsDenseBlock(t *testing.T) {
	// One fully dense 8x8 block: BlockFill8 must be 1, BlockFill2 must be 1.
	c := NewCOO([]int{32, 32}, 64)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			c.Append(1, int32(i), int32(j))
		}
	}
	st := ComputeStats(c)
	if st.BlockFill8 != 1 {
		t.Fatalf("BlockFill8 = %g, want 1", st.BlockFill8)
	}
	if st.BlockFill2 != 1 {
		t.Fatalf("BlockFill2 = %g, want 1", st.BlockFill2)
	}
}

func TestComputeStatsScattered(t *testing.T) {
	// Nonzeros spaced far apart: each lives in its own 8x8 block => fill 1/64.
	c := NewCOO([]int{64, 64}, 4)
	for i := 0; i < 4; i++ {
		c.Append(1, int32(i*16), int32(i*16))
	}
	st := ComputeStats(c)
	if math.Abs(st.BlockFill8-1.0/64) > 1e-12 {
		t.Fatalf("BlockFill8 = %g, want %g", st.BlockFill8, 1.0/64)
	}
}

func TestComputeStatsSkew(t *testing.T) {
	// One heavy row of 30 nonzeros, others empty: std should be large and
	// RowNNZMax = 30.
	c := NewCOO([]int{10, 40}, 30)
	for j := 0; j < 30; j++ {
		c.Append(1, 0, int32(j))
	}
	st := ComputeStats(c)
	if st.RowNNZMax != 30 {
		t.Fatalf("RowNNZMax = %d", st.RowNNZMax)
	}
	if st.EmptyRows != 9 {
		t.Fatalf("EmptyRows = %d", st.EmptyRows)
	}
	if st.RowNNZStd < 5 {
		t.Fatalf("RowNNZStd = %g, expected strongly skewed", st.RowNNZStd)
	}
}

func TestSymmetryScoreAsymmetric(t *testing.T) {
	c := NewCOO([]int{4, 4}, 2)
	c.Append(1, 0, 1)
	c.Append(1, 0, 2)
	st := ComputeStats(c)
	if st.SymmetryScore != 0 {
		t.Fatalf("SymmetryScore = %g, want 0", st.SymmetryScore)
	}
}

func TestFeatureVectorLength(t *testing.T) {
	c := NewCOO([]int{8, 8}, 1)
	c.Append(1, 0, 0)
	v := ComputeStats(c).FeatureVector()
	if len(v) != HumanFeatureDim {
		t.Fatalf("FeatureVector length %d, want %d", len(v), HumanFeatureDim)
	}
	for i, x := range v {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatalf("feature %d is %g", i, x)
		}
	}
}

func TestDenseHelpers(t *testing.T) {
	d := NewDense(3, 4)
	d.Set(1, 2, 5)
	if d.At(1, 2) != 5 {
		t.Fatal("Set/At mismatch")
	}
	if len(d.Row(1)) != 4 || d.Row(1)[2] != 5 {
		t.Fatal("Row slice wrong")
	}
	e := d.Clone()
	e.Set(0, 0, 9)
	if d.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
	if diff := d.MaxAbsDiff(e); diff != 9 {
		t.Fatalf("MaxAbsDiff = %g", diff)
	}
	d.FillIota()
	var nonzero bool
	for _, v := range d.Data {
		if v != 0 {
			nonzero = true
		}
		if v < -0.5 || v > 0.5 {
			t.Fatalf("FillIota value %g outside [-0.5,0.5]", v)
		}
	}
	if !nonzero {
		t.Fatal("FillIota left matrix zero")
	}
	d.Zero()
	for _, v := range d.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}
