package tensor

import "fmt"

// CSR is a compressed sparse row matrix: the classic (RowPtr, ColIdx, Vals)
// triple. Column indices within each row are sorted ascending after
// COO.ToCSR.
type CSR struct {
	NumRows, NumCols int
	RowPtr           []int32 // length NumRows+1
	ColIdx           []int32 // length NNZ
	Vals             []float32
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Vals) }

// Row returns the column indices and values of row r as sub-slices of the
// matrix's storage (do not modify them structurally).
func (m *CSR) Row(r int) ([]int32, []float32) {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	return m.ColIdx[lo:hi], m.Vals[lo:hi]
}

// Validate checks the CSR invariants: monotone row pointers in range and
// in-range column indices.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.NumRows+1 {
		return fmt.Errorf("tensor: RowPtr length %d, want %d", len(m.RowPtr), m.NumRows+1)
	}
	if m.RowPtr[0] != 0 || int(m.RowPtr[m.NumRows]) != len(m.Vals) {
		return fmt.Errorf("tensor: RowPtr endpoints [%d,%d], want [0,%d]", m.RowPtr[0], m.RowPtr[m.NumRows], len(m.Vals))
	}
	if len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("tensor: %d column indices for %d values", len(m.ColIdx), len(m.Vals))
	}
	for r := 0; r < m.NumRows; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			return fmt.Errorf("tensor: RowPtr not monotone at row %d", r)
		}
	}
	for p, cix := range m.ColIdx {
		if cix < 0 || int(cix) >= m.NumCols {
			return fmt.Errorf("tensor: nnz %d column %d out of range [0,%d)", p, cix, m.NumCols)
		}
	}
	return nil
}

// ToCOO converts back to coordinate form (sorted row-major).
func (m *CSR) ToCOO() *COO {
	out := NewCOO([]int{m.NumRows, m.NumCols}, m.NNZ())
	for r := 0; r < m.NumRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			out.Append(m.Vals[p], int32(r), m.ColIdx[p])
		}
	}
	return out
}

// Transpose returns the CSC of the receiver represented as the CSR of its
// transpose.
func (m *CSR) Transpose() *CSR {
	out := &CSR{
		NumRows: m.NumCols,
		NumCols: m.NumRows,
		RowPtr:  make([]int32, m.NumCols+1),
		ColIdx:  make([]int32, m.NNZ()),
		Vals:    make([]float32, m.NNZ()),
	}
	for _, cix := range m.ColIdx {
		out.RowPtr[cix+1]++
	}
	for c := 0; c < m.NumCols; c++ {
		out.RowPtr[c+1] += out.RowPtr[c]
	}
	next := append([]int32(nil), out.RowPtr[:m.NumCols]...)
	for r := 0; r < m.NumRows; r++ {
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			cix := m.ColIdx[p]
			q := next[cix]
			next[cix]++
			out.ColIdx[q] = int32(r)
			out.Vals[q] = m.Vals[p]
		}
	}
	return out
}

// SpMV computes y = A*x for this matrix serially. It is the reference kernel
// used in correctness tests; tuned kernels live in internal/kernel.
func (m *CSR) SpMV(x, y []float32) {
	for r := 0; r < m.NumRows; r++ {
		var acc float32
		for p := m.RowPtr[r]; p < m.RowPtr[r+1]; p++ {
			acc += m.Vals[p] * x[m.ColIdx[p]]
		}
		y[r] = acc
	}
}
