package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCOO(rng *rand.Rand, rows, cols, nnz int) *COO {
	c := NewCOO([]int{rows, cols}, nnz)
	for p := 0; p < nnz; p++ {
		c.Append(rng.Float32()*2-1, int32(rng.Intn(rows)), int32(rng.Intn(cols)))
	}
	c.SortRowMajor()
	c.Dedup()
	return c
}

func TestAppendAndValidate(t *testing.T) {
	c := NewCOO([]int{4, 5}, 4)
	c.Append(1.5, 0, 0)
	c.Append(2.0, 3, 4)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", c.NNZ())
	}
	if got := c.At(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("At(1) = %v, want [3 4]", got)
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	c := NewCOO([]int{2, 2}, 1)
	c.Append(1, 2, 0) // row 2 out of range
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range coordinate")
	}
}

func TestSortRowMajor(t *testing.T) {
	c := NewCOO([]int{3, 3}, 3)
	c.Append(3, 2, 0)
	c.Append(1, 0, 1)
	c.Append(2, 0, 0)
	c.SortRowMajor()
	wantRows := []int32{0, 0, 2}
	wantCols := []int32{0, 1, 0}
	wantVals := []float32{2, 1, 3}
	for p := range wantVals {
		if c.Coords[0][p] != wantRows[p] || c.Coords[1][p] != wantCols[p] || c.Vals[p] != wantVals[p] {
			t.Fatalf("after sort p=%d: (%d,%d)=%g, want (%d,%d)=%g",
				p, c.Coords[0][p], c.Coords[1][p], c.Vals[p], wantRows[p], wantCols[p], wantVals[p])
		}
	}
}

func TestSortByModesColumnMajor(t *testing.T) {
	c := NewCOO([]int{3, 3}, 3)
	c.Append(1, 0, 2)
	c.Append(2, 1, 0)
	c.Append(3, 2, 0)
	c.SortByModes(1, 0)
	if c.Coords[1][0] != 0 || c.Coords[1][1] != 0 || c.Coords[1][2] != 2 {
		t.Fatalf("column-major sort got cols %v", c.Coords[1])
	}
	if c.Coords[0][0] != 1 || c.Coords[0][1] != 2 {
		t.Fatalf("column-major sort got rows %v", c.Coords[0])
	}
}

func TestDedupSums(t *testing.T) {
	c := NewCOO([]int{2, 2}, 4)
	c.Append(1, 0, 0)
	c.Append(2, 0, 0)
	c.Append(3, 1, 1)
	c.SortRowMajor()
	c.Dedup()
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", c.NNZ())
	}
	if c.Vals[0] != 3 {
		t.Fatalf("merged value = %g, want 3", c.Vals[0])
	}
}

func TestToCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := randomCOO(rng, 50, 40, 300)
	m, err := c.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("CSR Validate: %v", err)
	}
	back := m.ToCOO()
	if back.NNZ() != c.NNZ() {
		t.Fatalf("round trip NNZ %d, want %d", back.NNZ(), c.NNZ())
	}
	for p := 0; p < c.NNZ(); p++ {
		if back.Coords[0][p] != c.Coords[0][p] || back.Coords[1][p] != c.Coords[1][p] || back.Vals[p] != c.Vals[p] {
			t.Fatalf("round trip mismatch at %d", p)
		}
	}
}

func TestToCSRWrongOrder(t *testing.T) {
	c := NewCOO([]int{2, 2, 2}, 1)
	if _, err := c.ToCSR(); err == nil {
		t.Fatal("ToCSR accepted order-3 tensor")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := randomCOO(rng, 30, 60, 200)
	m, _ := c.ToCSR()
	tt := m.Transpose().Transpose()
	if err := tt.Validate(); err != nil {
		t.Fatalf("T(T(A)) invalid: %v", err)
	}
	a, b := m.ToCOO(), tt.ToCOO()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("NNZ changed: %d vs %d", a.NNZ(), b.NNZ())
	}
	for p := 0; p < a.NNZ(); p++ {
		if a.Coords[0][p] != b.Coords[0][p] || a.Coords[1][p] != b.Coords[1][p] || a.Vals[p] != b.Vals[p] {
			t.Fatalf("transpose involution mismatch at %d", p)
		}
	}
}

func TestTransposeSpMVAgree(t *testing.T) {
	// Property: y = A x computed via A equals computed via (A^T)^T structure:
	// (A^T) x' with x'=unit vectors gives columns; simpler: compare A*x with
	// manually accumulating over A^T.
	rng := rand.New(rand.NewSource(3))
	c := randomCOO(rng, 25, 35, 150)
	m, _ := c.ToCSR()
	mt := m.Transpose()
	x := make([]float32, m.NumCols)
	for i := range x {
		x[i] = rng.Float32()
	}
	y1 := make([]float32, m.NumRows)
	m.SpMV(x, y1)
	// y2[r] = sum over (c,r) in A^T of val * x[c]
	y2 := make([]float32, m.NumRows)
	for ctr := 0; ctr < mt.NumRows; ctr++ {
		for p := mt.RowPtr[ctr]; p < mt.RowPtr[ctr+1]; p++ {
			y2[mt.ColIdx[p]] += mt.Vals[p] * x[ctr]
		}
	}
	if d := VecMaxAbsDiff(y1, y2); d > 1e-4 {
		t.Fatalf("SpMV via transpose differs by %g", d)
	}
}

func TestPermuted(t *testing.T) {
	c := NewCOO([]int{2, 3, 4}, 2)
	c.Append(1, 1, 2, 3)
	p, err := c.Permuted([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims[0] != 4 || p.Dims[1] != 2 || p.Dims[2] != 3 {
		t.Fatalf("permuted dims %v", p.Dims)
	}
	if p.Coords[0][0] != 3 || p.Coords[1][0] != 1 || p.Coords[2][0] != 2 {
		t.Fatalf("permuted coords (%d,%d,%d)", p.Coords[0][0], p.Coords[1][0], p.Coords[2][0])
	}
	if _, err := c.Permuted([]int{0, 0, 1}); err == nil {
		t.Fatal("accepted invalid permutation")
	}
}

// Property test: sorting then deduping is idempotent and preserves the total
// value sum.
func TestQuickDedupPreservesSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		c := NewCOO([]int{rows, cols}, 50)
		var sum float64
		for p := 0; p < 50; p++ {
			v := rng.Float32()
			sum += float64(v)
			c.Append(v, int32(rng.Intn(rows)), int32(rng.Intn(cols)))
		}
		c.SortRowMajor()
		c.Dedup()
		var got float64
		for _, v := range c.Vals {
			got += float64(v)
		}
		if diff := got - sum; diff > 1e-3 || diff < -1e-3 {
			return false
		}
		before := c.NNZ()
		c.SortRowMajor()
		c.Dedup()
		return c.NNZ() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := NewCOO([]int{2, 2}, 1)
	c.Append(1, 0, 0)
	d := c.Clone()
	d.Coords[0][0] = 1
	d.Vals[0] = 9
	if c.Coords[0][0] != 0 || c.Vals[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}
