package tensor

import "fmt"

// Dense is a dense row-major matrix of float32.
type Dense struct {
	NumRows, NumCols int
	Data             []float32 // row-major, length NumRows*NumCols
}

// NewDense allocates a zeroed NumRows x NumCols dense matrix.
func NewDense(r, c int) *Dense {
	return &Dense{NumRows: r, NumCols: c, Data: make([]float32, r*c)}
}

// At returns element (r, c).
func (d *Dense) At(r, c int) float32 { return d.Data[r*d.NumCols+c] }

// Set writes element (r, c).
func (d *Dense) Set(r, c int, v float32) { d.Data[r*d.NumCols+c] = v }

// Row returns row r as a sub-slice of the matrix storage.
func (d *Dense) Row(r int) []float32 { return d.Data[r*d.NumCols : (r+1)*d.NumCols] }

// Zero sets every element to 0.
func (d *Dense) Zero() {
	for i := range d.Data {
		d.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{NumRows: d.NumRows, NumCols: d.NumCols, Data: append([]float32(nil), d.Data...)}
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// equally shaped matrices. It panics on shape mismatch.
//
//waco:nolint paniccall -- the diff helpers compare kernel outputs whose shapes the executor derived from one plan; a mismatch is a verification-harness bug, not request input
func (d *Dense) MaxAbsDiff(o *Dense) float32 {
	if d.NumRows != o.NumRows || d.NumCols != o.NumCols {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %dx%d vs %dx%d", d.NumRows, d.NumCols, o.NumRows, o.NumCols))
	}
	var m float32
	for i, v := range d.Data {
		diff := v - o.Data[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > m {
			m = diff
		}
	}
	return m
}

// FillIota fills the matrix with a deterministic, well-conditioned pattern
// (useful for tests and examples): element (r,c) = small pseudo-random value
// derived from its position.
func (d *Dense) FillIota() {
	for r := 0; r < d.NumRows; r++ {
		row := d.Row(r)
		for c := range row {
			// Cheap position hash mapped into [-0.5, 0.5].
			h := uint32(r*2654435761) ^ uint32(c*40503)
			h ^= h >> 13
			row[c] = float32(h%1024)/1024 - 0.5
		}
	}
}

// VecMaxAbsDiff returns the largest absolute element-wise difference between
// two equal-length vectors.
//
//waco:nolint paniccall -- the diff helpers compare kernel outputs whose shapes the executor derived from one plan; a mismatch is a verification-harness bug, not request input
func VecMaxAbsDiff(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: VecMaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	var m float32
	for i, v := range a {
		diff := v - b[i]
		if diff < 0 {
			diff = -diff
		}
		if diff > m {
			m = diff
		}
	}
	return m
}
