// COO round-trip fuzzing lives in an external test package: it drives
// format.Assemble, and format imports tensor.
package tensor_test

import (
	"testing"

	"waco/internal/format"
	"waco/internal/tensor"
)

// FuzzCOORoundTrip asserts that assembling a canonical COO tensor into any
// format and walking the storage back out reproduces the tensor exactly.
// The fuzz input packs (dims, format selector, block shape) plus a byte
// stream of nonzeros; values are built strictly positive so the round trip
// cannot confuse a stored entry with dense-block padding (ToCOO drops exact
// zeros by design).
func FuzzCOORoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(0), uint8(1), uint8(1), []byte{0, 0, 1, 1, 1, 2, 7, 7, 3})
	f.Add(uint8(16), uint8(5), uint8(1), uint8(2), uint8(2), []byte{3, 4, 250, 3, 4, 250})
	f.Add(uint8(63), uint8(63), uint8(2), uint8(7), uint8(3), []byte{62, 62, 1, 0, 62, 2, 62, 0, 3})
	f.Add(uint8(4), uint8(4), uint8(3), uint8(1), uint8(1), []byte{1, 2, 3})
	f.Add(uint8(9), uint8(9), uint8(4), uint8(1), uint8(1), []byte{8, 0, 5, 0, 8, 6})
	f.Add(uint8(6), uint8(6), uint8(5), uint8(4), uint8(1), []byte{5, 5, 3, 9, 0, 1, 2, 1, 0, 3, 2, 8})
	f.Fuzz(func(t *testing.T, rows, cols, fsel, br, bc uint8, data []byte) {
		order := 2
		var fm format.Format
		switch fsel % 6 {
		case 0:
			fm = format.CSR()
		case 1:
			fm = format.CSC()
		case 2:
			fm = format.BCSR(int32(br%8)+1, int32(bc%8)+1)
		case 3:
			fm = format.COOLike(2)
		case 4:
			fm = format.Dense(2)
		case 5:
			fm = format.CSF(3)
			order = 3
		}
		dims := []int{int(rows%64) + 1, int(cols%64) + 1}
		if order == 3 {
			dims = append(dims, int(bc%16)+1)
		}

		stride := order + 1
		coo := tensor.NewCOO(dims, len(data)/stride)
		coords := make([]int32, order)
		for i := 0; i+stride <= len(data); i += stride {
			for m := 0; m < order; m++ {
				coords[m] = int32(int(data[i+m]) % dims[m])
			}
			// Values are small positive integers, so duplicate sums are
			// exact in float32 and never cancel to zero.
			coo.Append(float32(data[i+order])+1, coords...)
		}
		if err := coo.Validate(); err != nil {
			t.Fatalf("constructed COO invalid: %v", err)
		}
		coo.SortRowMajor()
		coo.Dedup()
		want := coo.Clone()

		st, err := format.Assemble(coo, fm, format.AssembleOptions{MaxEntries: 1 << 18})
		if err != nil {
			if format.IsStorageLimit(err) {
				t.Skip("format exceeds the assembly budget for these dims")
			}
			t.Fatalf("assemble %v: %v", fm, err)
		}
		got := st.ToCOO()
		if err := got.Validate(); err != nil {
			t.Fatalf("round-tripped COO invalid: %v", err)
		}
		if got.NNZ() != want.NNZ() {
			t.Fatalf("format %v: round trip has %d nonzeros, want %d", fm, got.NNZ(), want.NNZ())
		}
		for p := 0; p < want.NNZ(); p++ {
			for m := 0; m < order; m++ {
				if got.Coords[m][p] != want.Coords[m][p] {
					t.Fatalf("format %v: nnz %d mode %d coord %d, want %d",
						fm, p, m, got.Coords[m][p], want.Coords[m][p])
				}
			}
			if got.Vals[p] != want.Vals[p] {
				t.Fatalf("format %v: nnz %d value %v, want %v", fm, p, got.Vals[p], want.Vals[p])
			}
		}
	})
}
