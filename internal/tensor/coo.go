// Package tensor provides the sparse and dense tensor substrate used by the
// WACO reproduction: coordinate (COO) tensors of arbitrary order, compressed
// sparse row/column matrices, dense matrices and vectors, Matrix Market I/O,
// and sparsity-pattern statistics.
//
// Values are single precision (float32) throughout, matching the paper's
// evaluation setup.
package tensor

import (
	"errors"
	"fmt"
	"sort"
)

// COO is a sparse tensor of arbitrary order in coordinate form.
//
// Coords is mode-major: Coords[m][p] is the coordinate of nonzero p along
// mode m. All coordinate slices and Vals have equal length. A COO is not
// required to be sorted or duplicate-free; use SortByModes and Dedup to
// canonicalize.
type COO struct {
	Dims   []int     // extent of each mode
	Coords [][]int32 // Coords[mode][nnz]
	Vals   []float32 // values, parallel to Coords[*]
}

// NewCOO returns an empty COO tensor with the given mode extents and capacity
// hint for the number of nonzeros.
func NewCOO(dims []int, nnzCap int) *COO {
	c := &COO{Dims: append([]int(nil), dims...)}
	c.Coords = make([][]int32, len(dims))
	for m := range c.Coords {
		c.Coords[m] = make([]int32, 0, nnzCap)
	}
	c.Vals = make([]float32, 0, nnzCap)
	return c
}

// Order returns the number of modes (2 for a matrix, 3 for a 3-D tensor).
func (c *COO) Order() int { return len(c.Dims) }

// NNZ returns the number of stored entries (including any duplicates).
func (c *COO) NNZ() int { return len(c.Vals) }

// Append adds one nonzero. The number of coordinates must equal the order.
//
//waco:nolint paniccall -- Append runs per nonzero on the ingest hot path; the arity of the coords the caller passes is fixed by its own code, not by request data, and serve validates decoded tensors before appending
func (c *COO) Append(val float32, coords ...int32) {
	if len(coords) != len(c.Dims) {
		panic(fmt.Sprintf("tensor: Append got %d coords for order-%d tensor", len(coords), len(c.Dims)))
	}
	for m, x := range coords {
		c.Coords[m] = append(c.Coords[m], x)
	}
	c.Vals = append(c.Vals, val)
}

// At returns the coordinates of nonzero p as a freshly allocated slice.
func (c *COO) At(p int) []int32 {
	out := make([]int32, c.Order())
	for m := range out {
		out[m] = c.Coords[m][p]
	}
	return out
}

// Validate checks structural invariants: consistent slice lengths and
// in-range coordinates. It returns a descriptive error for the first
// violation found.
func (c *COO) Validate() error {
	if len(c.Coords) != len(c.Dims) {
		return fmt.Errorf("tensor: %d coordinate modes for %d dims", len(c.Coords), len(c.Dims))
	}
	for m, cs := range c.Coords {
		if len(cs) != len(c.Vals) {
			return fmt.Errorf("tensor: mode %d has %d coords, want %d", m, len(cs), len(c.Vals))
		}
		d := c.Dims[m]
		for p, x := range cs {
			if x < 0 || int(x) >= d {
				return fmt.Errorf("tensor: nnz %d coord %d out of range [0,%d) in mode %d", p, x, d, m)
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (c *COO) Clone() *COO {
	out := &COO{
		Dims:   append([]int(nil), c.Dims...),
		Coords: make([][]int32, len(c.Coords)),
		Vals:   append([]float32(nil), c.Vals...),
	}
	for m := range c.Coords {
		out.Coords[m] = append([]int32(nil), c.Coords[m]...)
	}
	return out
}

// cooSorter sorts a COO lexicographically by the given mode order.
type cooSorter struct {
	c     *COO
	order []int
}

func (s *cooSorter) Len() int { return s.c.NNZ() }

func (s *cooSorter) Less(i, j int) bool {
	for _, m := range s.order {
		a, b := s.c.Coords[m][i], s.c.Coords[m][j]
		if a != b {
			return a < b
		}
	}
	return false
}

func (s *cooSorter) Swap(i, j int) {
	for m := range s.c.Coords {
		cs := s.c.Coords[m]
		cs[i], cs[j] = cs[j], cs[i]
	}
	v := s.c.Vals
	v[i], v[j] = v[j], v[i]
}

// SortByModes sorts nonzeros lexicographically by the given mode order,
// e.g. SortByModes(0, 1) is row-major for a matrix and SortByModes(1, 0) is
// column-major. Modes omitted from the order do not participate in the key.
func (c *COO) SortByModes(order ...int) {
	sort.Stable(&cooSorter{c: c, order: order})
}

// SortRowMajor sorts nonzeros by (mode0, mode1, ..., modeN-1).
func (c *COO) SortRowMajor() {
	order := make([]int, c.Order())
	for i := range order {
		order[i] = i
	}
	c.SortByModes(order...)
}

// Dedup merges duplicate coordinates by summing their values. The tensor must
// already be sorted (by any total order that makes duplicates adjacent);
// SortRowMajor suffices. It operates in place.
func (c *COO) Dedup() {
	if c.NNZ() == 0 {
		return
	}
	w := 0
	for p := 1; p < c.NNZ(); p++ {
		same := true
		for m := range c.Coords {
			if c.Coords[m][p] != c.Coords[m][w] {
				same = false
				break
			}
		}
		if same {
			c.Vals[w] += c.Vals[p]
		} else {
			w++
			for m := range c.Coords {
				c.Coords[m][w] = c.Coords[m][p]
			}
			c.Vals[w] = c.Vals[p]
		}
	}
	w++
	for m := range c.Coords {
		c.Coords[m] = c.Coords[m][:w]
	}
	c.Vals = c.Vals[:w]
}

// ErrOrderMismatch reports an operation applied to a tensor of the wrong order.
var ErrOrderMismatch = errors.New("tensor: order mismatch")

// ToCSR converts an order-2 COO to CSR. The receiver is sorted and
// deduplicated as a side effect.
func (c *COO) ToCSR() (*CSR, error) {
	if c.Order() != 2 {
		return nil, fmt.Errorf("%w: ToCSR on order-%d tensor", ErrOrderMismatch, c.Order())
	}
	c.SortRowMajor()
	c.Dedup()
	out := &CSR{
		NumRows: c.Dims[0],
		NumCols: c.Dims[1],
		RowPtr:  make([]int32, c.Dims[0]+1),
		ColIdx:  append([]int32(nil), c.Coords[1]...),
		Vals:    append([]float32(nil), c.Vals...),
	}
	for _, r := range c.Coords[0] {
		out.RowPtr[r+1]++
	}
	for r := 0; r < c.Dims[0]; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	return out, nil
}

// Permuted returns a new COO whose mode m holds the coordinates of the
// receiver's mode perm[m]; dims are permuted accordingly. It shares no
// storage with the receiver.
func (c *COO) Permuted(perm []int) (*COO, error) {
	if len(perm) != c.Order() {
		return nil, fmt.Errorf("%w: permutation of length %d for order-%d tensor", ErrOrderMismatch, len(perm), c.Order())
	}
	out := &COO{
		Dims:   make([]int, c.Order()),
		Coords: make([][]int32, c.Order()),
		Vals:   append([]float32(nil), c.Vals...),
	}
	seen := make([]bool, c.Order())
	for m, src := range perm {
		if src < 0 || src >= c.Order() || seen[src] {
			return nil, fmt.Errorf("tensor: invalid permutation %v", perm)
		}
		seen[src] = true
		out.Dims[m] = c.Dims[src]
		out.Coords[m] = append([]int32(nil), c.Coords[src]...)
	}
	return out, nil
}
