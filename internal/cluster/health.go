package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"time"
)

// ReplicaHealth is one replica's view in RouterStats.
type ReplicaHealth struct {
	URL       string    `json:"url"`
	Healthy   bool      `json:"healthy"`
	LastError string    `json:"last_error,omitempty"`
	LastProbe time.Time `json:"last_probe"`
	InFlight  int64     `json:"in_flight"`
	Forwarded uint64    `json:"forwarded"`
	Errors    uint64    `json:"errors"`
}

// healthChecker probes each replica's /readyz on an interval and lets the
// proxy path mark a replica down the moment a transport error surfaces
// (passive detection beats waiting out a probe period when a replica dies
// mid-request). Readiness — not liveness — is deliberately the probe: a
// draining replica answers /healthz 200 while finishing old work, and
// routing new work at it would strand that work at shutdown.
type healthChecker struct {
	client   *http.Client
	interval time.Duration
	timeout  time.Duration

	mu    sync.Mutex
	state map[string]*replicaState

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type replicaState struct {
	healthy   bool
	lastError string
	lastProbe time.Time
}

func newHealthChecker(replicas []string, client *http.Client, interval, timeout time.Duration) *healthChecker {
	hc := &healthChecker{
		client:   client,
		interval: interval,
		timeout:  timeout,
		state:    make(map[string]*replicaState, len(replicas)),
		stop:     make(chan struct{}),
	}
	for _, r := range replicas {
		// Optimistic start: a replica is assumed ready until a probe or a
		// proxy attempt says otherwise, so a cold router forwards
		// immediately instead of 503ing until the first probe round.
		hc.state[r] = &replicaState{healthy: true}
	}
	return hc
}

// run probes every replica once immediately, then on the interval, until
// stopped. ctx bounds each probe round's outstanding requests.
func (hc *healthChecker) run(ctx context.Context) {
	hc.wg.Add(1)
	go func() {
		defer hc.wg.Done()
		hc.probeAll(ctx)
		t := time.NewTicker(hc.interval)
		defer t.Stop()
		for {
			select {
			case <-hc.stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				hc.probeAll(ctx)
			}
		}
	}()
}

func (hc *healthChecker) close() {
	hc.stopOnce.Do(func() { close(hc.stop) })
	hc.wg.Wait()
}

func (hc *healthChecker) replicas() []string {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	out := make([]string, 0, len(hc.state))
	for r := range hc.state {
		out = append(out, r)
	}
	return out
}

func (hc *healthChecker) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range hc.replicas() {
		wg.Add(1)
		go func(replica string) {
			defer wg.Done()
			hc.probe(ctx, replica)
		}(r)
	}
	wg.Wait()
}

// probe hits one replica's /readyz and records the verdict.
func (hc *healthChecker) probe(ctx context.Context, replica string) {
	ctx, cancel := context.WithTimeout(ctx, hc.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, replica+"/readyz", nil)
	if err != nil {
		hc.record(replica, false, err.Error())
		return
	}
	resp, err := hc.client.Do(req)
	if err != nil {
		hc.record(replica, false, err.Error())
		return
	}
	// Drain so the transport can reuse the connection.
	_, copyErr := io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	closeErr := resp.Body.Close()
	if copyErr != nil || closeErr != nil {
		hc.record(replica, false, "reading readyz body failed")
		return
	}
	if resp.StatusCode != http.StatusOK {
		hc.record(replica, false, "readyz returned "+resp.Status)
		return
	}
	hc.record(replica, true, "")
}

func (hc *healthChecker) record(replica string, healthy bool, lastErr string) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	st, ok := hc.state[replica]
	if !ok {
		return
	}
	st.healthy = healthy
	st.lastError = lastErr
	st.lastProbe = time.Now()
}

// markDown is the passive path: a proxy attempt saw a transport error, so
// the replica stops receiving new keys now; the next successful probe
// revives it.
func (hc *healthChecker) markDown(replica string, reason string) {
	hc.record(replica, false, reason)
}

func (hc *healthChecker) isHealthy(replica string) bool {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	st, ok := hc.state[replica]
	return ok && st.healthy
}

func (hc *healthChecker) healthyCount() int {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	n := 0
	for _, st := range hc.state {
		if st.healthy {
			n++
		}
	}
	return n
}

func (hc *healthChecker) view(replica string) (healthy bool, lastErr string, lastProbe time.Time) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	st, ok := hc.state[replica]
	if !ok {
		return false, "unknown replica", time.Time{}
	}
	return st.healthy, st.lastError, st.lastProbe
}
