// Package cluster is WACO's horizontal serving tier: a stateless HTTP
// router that spreads tuning traffic over N serve replicas by
// consistent-hashing the sparsity fingerprint — the SHA-256 pattern digest
// internal/serve already keys its LRU cache on. Same fingerprint, same
// replica, so each replica's cache stays hot and the fleet's effective
// cache is the union, not N copies, of one working set. Replica add/remove
// moves only the keys that must move (~1/N), health checks track replica
// readiness (not liveness — a draining replica is alive but must stop
// getting work), and transient failures retry on the next ring replica
// with jittered exponential backoff. Everything is stdlib net/http; there
// is no coordination state, so any number of routers can front the same
// fleet.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Each member is hashed
// onto the ring at VNodes points; a key routes to the first member point at
// or clockwise after the key's hash. With enough virtual nodes the keyspace
// splits near-evenly, and removing a member remaps only the ~1/N of keys
// that landed on its points — every other key keeps its replica, which is
// exactly what keeps the per-replica fingerprint caches warm through
// topology changes.
//
// All methods are safe for concurrent use; lookups take a read lock only.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVNodes balances lookup cost against distribution evenness; at 64
// points per member the max/min member share over random keys is within a
// few tens of percent, plenty for cache affinity.
const DefaultVNodes = 64

// NewRing builds a ring with vnodes virtual nodes per member (DefaultVNodes
// when <= 0).
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, members: make(map[string]bool)}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256. Fingerprint keys
// are already SHA-256 hex, but member#vnode labels are not, and one strong
// hash for both sides keeps the ring unbiased.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (no-op if present).
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:   hash64(member + "#" + strconv.Itoa(v)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its virtual nodes (no-op if absent).
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member set in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Preference returns up to n distinct members in ring order starting at
// key's position: the key's owner first, then the members that would own it
// if earlier ones disappeared. This is the retry order — falling to the
// next preference on failure hits exactly the replica that inherits the key
// if the failure becomes permanent, so retried work lands where future
// requests for the same fingerprint will go.
func (r *Ring) Preference(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for range r.points {
		p := r.points[i%len(r.points)]
		i++
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Owner returns the member owning key, or an error on an empty ring.
func (r *Ring) Owner(key string) (string, error) {
	pref := r.Preference(key, 1)
	if len(pref) == 0 {
		return "", fmt.Errorf("cluster: ring has no members")
	}
	return pref[0], nil
}
