package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waco/internal/serve"
)

// stubReplica is a fake waco-serve: it answers readiness, counts the tune
// and predict requests it receives, and serves a configurable job set.
type stubReplica struct {
	name  string
	ts    *httptest.Server
	hits  atomic.Uint64
	jobs  sync.Map // id -> bool
	delay time.Duration
}

func newStubReplica(t *testing.T, name string) *stubReplica {
	t.Helper()
	sr := &stubReplica{name: name}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"status":"ready"}`)
	})
	handle := func(w http.ResponseWriter, r *http.Request) {
		sr.hits.Add(1)
		if sr.delay > 0 {
			time.Sleep(sr.delay)
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"replica":"`+sr.name+`"}`)
	}
	mux.HandleFunc("/v1/tune", handle)
	mux.HandleFunc("/v1/predict", handle)
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		if _, ok := sr.jobs.Load(id); !ok {
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":"unknown job"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"id":"`+id+`","state":"done"}`)
	})
	sr.ts = httptest.NewServer(mux)
	t.Cleanup(sr.ts.Close)
	return sr
}

func stubFleet(t *testing.T, n int) ([]*stubReplica, []string) {
	t.Helper()
	stubs := make([]*stubReplica, n)
	urls := make([]string, n)
	for i := range stubs {
		stubs[i] = newStubReplica(t, fmt.Sprintf("replica-%d", i))
		urls[i] = stubs[i].ts.URL
	}
	return stubs, urls
}

func newTestRouter(t *testing.T, urls []string, tweak func(*Options)) *Router {
	t.Helper()
	opts := Options{
		Replicas: urls,
		// Long probe period: tests drive health transitions themselves via
		// the passive markDown path or explicit probes.
		HealthInterval: time.Hour,
		RetryBase:      time.Millisecond,
		RetryMax:       4 * time.Millisecond,
		Seed:           1,
	}
	if tweak != nil {
		tweak(&opts)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// tuneBody returns a valid /v1/tune payload whose matrix varies with seed,
// plus the fingerprint the router will route it on.
func tuneBody(t *testing.T, seed int) ([]byte, string) {
	t.Helper()
	m := serve.MatrixJSON{
		Dims:   []int{16, 16},
		Coords: [][]int32{{int32(seed % 16), int32((seed / 16) % 16), 3}, {1, int32(seed % 16), 5}},
	}
	body, err := json.Marshal(serve.TuneRequest{Matrix: &m})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := serve.RequestFingerprint(body)
	if err != nil {
		t.Fatal(err)
	}
	return body, fp
}

func postTune(t *testing.T, h http.Handler, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/tune", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestRouterFingerprintAffinity: identical matrices land on one replica,
// different matrices spread, and the replica matches the ring's owner.
func TestRouterFingerprintAffinity(t *testing.T) {
	stubs, urls := stubFleet(t, 3)
	rt := newTestRouter(t, urls, nil)
	h := rt.Handler()

	body, fp := tuneBody(t, 7)
	want, err := rt.ring.Owner(fp)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	for i := 0; i < 5; i++ {
		rec := postTune(t, h, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("tune %d: status %d: %s", i, rec.Code, rec.Body)
		}
		replica := rec.Header().Get("X-Waco-Replica")
		if got == "" {
			got = replica
		}
		if replica != got {
			t.Fatalf("same fingerprint bounced between replicas: %s then %s", got, replica)
		}
	}
	if got != want {
		t.Fatalf("fingerprint %s served by %s, ring owner is %s", fp, got, want)
	}

	// All five identical requests hit exactly one stub.
	total := uint64(0)
	for _, s := range stubs {
		total += s.hits.Load()
	}
	if total != 5 {
		t.Fatalf("stub fleet saw %d requests, want 5", total)
	}

	// Enough distinct matrices touch every replica.
	for seed := 0; seed < 40; seed++ {
		body, _ := tuneBody(t, 100+seed)
		postTune(t, h, body)
	}
	for _, s := range stubs {
		if s.hits.Load() == 0 {
			t.Errorf("replica %s received no traffic across 40 distinct matrices", s.name)
		}
	}
}

// TestRouterRetriesDeadReplica: when a fingerprint's owner is down at the
// transport level, the request lands on the next ring preference and the
// dead replica is marked unhealthy for subsequent traffic.
func TestRouterRetriesDeadReplica(t *testing.T) {
	stubs, urls := stubFleet(t, 3)
	rt := newTestRouter(t, urls, nil)
	h := rt.Handler()

	body, fp := tuneBody(t, 11)
	pref := rt.ring.Preference(fp, 3)
	owner := pref[0]
	for _, s := range stubs {
		if s.ts.URL == owner {
			s.ts.Close() // dies before the first request
		}
	}

	rec := postTune(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("tune with dead owner: status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Waco-Replica"); got != pref[1] {
		t.Fatalf("request served by %s, want next preference %s", got, pref[1])
	}
	if rt.health.isHealthy(owner) {
		t.Fatal("dead replica still marked healthy after a transport error")
	}
	st := rt.Stats()
	if st.Retries == 0 || st.TransportErrors == 0 {
		t.Fatalf("retry accounting missing: %+v", st)
	}
	// With the owner known-dead, the next request goes straight to the heir.
	before := st.Retries
	rec = postTune(t, h, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("second tune: status %d", rec.Code)
	}
	if rt.Stats().Retries != before {
		t.Fatal("router retried through a replica it already knows is down")
	}
}

// TestRouterNoHealthyReplica: everything down means a fast 503 with a
// Retry-After, not a hang or a 502 storm.
func TestRouterNoHealthyReplica(t *testing.T) {
	stubs, urls := stubFleet(t, 2)
	rt := newTestRouter(t, urls, nil)
	for _, s := range stubs {
		s.ts.Close()
	}
	// Force a probe round now rather than waiting out the interval.
	rt.health.probeAll(context.Background())

	rec := postTune(t, rt.Handler(), mustTuneBody(t))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("no healthy replicas: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Router readiness mirrors the fleet.
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	resp := httptest.NewRecorder()
	rt.Handler().ServeHTTP(resp, req)
	if resp.Code != http.StatusServiceUnavailable {
		t.Fatalf("router readyz with dead fleet: %d, want 503", resp.Code)
	}
	if st := rt.Stats(); st.NoReplica == 0 || st.HealthyReplicas != 0 {
		t.Fatalf("stats after dead-fleet request: %+v", st)
	}
}

func mustTuneBody(t *testing.T) []byte {
	t.Helper()
	body, _ := tuneBody(t, 1)
	return body
}

// TestRouterRejectsAtTheEdge: malformed bodies and job ids 400 without a
// single replica round trip.
func TestRouterRejectsAtTheEdge(t *testing.T) {
	stubs, urls := stubFleet(t, 2)
	rt := newTestRouter(t, urls, nil)
	h := rt.Handler()

	for _, body := range []string{`{"matrix": "not an object"}`, `not json`, `{}`} {
		rec := postTune(t, h, []byte(body))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("malformed body %q: status %d, want 400", body, rec.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/no-separator-here", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed job id: status %d, want 400", rec.Code)
	}
	for _, s := range stubs {
		if s.hits.Load() != 0 {
			t.Errorf("replica %s was consulted for an edge-rejected request", s.name)
		}
	}
	if st := rt.Stats(); st.BadRequests != 4 {
		t.Errorf("bad_requests = %d, want 4", st.BadRequests)
	}
}

// TestRouterJobLookupWalksPreferences: a job poll 404s on replicas that do
// not hold the job and is retried down the preference list until the
// holder answers — the recovery path after a topology change moved the
// fingerprint's owner.
func TestRouterJobLookupWalksPreferences(t *testing.T) {
	stubs, urls := stubFleet(t, 3)
	rt := newTestRouter(t, urls, nil)
	h := rt.Handler()

	_, fp := tuneBody(t, 23)
	jobID := fp + ".1"
	pref := rt.ring.Preference(fp, 3)
	// Park the job on the LAST preference: the router must walk through
	// two 404s to find it.
	var holder *stubReplica
	for _, s := range stubs {
		if s.ts.URL == pref[len(pref)-1] {
			holder = s
		}
	}
	holder.jobs.Store(jobID, true)

	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+jobID, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("job lookup: status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Waco-Replica"); got != holder.ts.URL {
		t.Fatalf("job served by %s, holder is %s", got, holder.ts.URL)
	}

	// A job nobody holds surfaces the final 404 instead of swallowing it.
	req = httptest.NewRequest(http.MethodGet, "/v1/jobs/"+fp+".404", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", rec.Code)
	}
}

// TestRouterReplicaDiesMidFanout hammers the router from many goroutines
// while one replica is torn down mid-traffic. Run under -race. Every
// response must be a terminal verdict (200 from a survivor or a 5xx) —
// never a hang or a torn write.
func TestRouterReplicaDiesMidFanout(t *testing.T) {
	stubs, urls := stubFleet(t, 3)
	for _, s := range stubs {
		s.delay = time.Millisecond // keep requests in flight during the kill
	}
	rt := newTestRouter(t, urls, nil)
	srv := httptest.NewServer(rt.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	var bad atomic.Uint64
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := tuneBody(t, g*1000+i%50)
				resp, err := http.Post(srv.URL+"/v1/tune", "application/json", bytes.NewReader(body))
				if err != nil {
					bad.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK &&
					resp.StatusCode != http.StatusBadGateway &&
					resp.StatusCode != http.StatusServiceUnavailable {
					bad.Add(1)
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	stubs[1].ts.Close() // dies with requests in flight
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := bad.Load(); n != 0 {
		t.Fatalf("%d requests got a non-terminal or transport-failed response", n)
	}
	// The fleet shrank but the router kept answering: after the kill the
	// dead replica is unhealthy and survivors own its keys.
	if rt.health.isHealthy(stubs[1].ts.URL) {
		// The kill may have raced ahead of any request that would mark it
		// down; force a probe round to settle the verdict.
		rt.health.probeAll(context.Background())
	}
	if rt.health.isHealthy(stubs[1].ts.URL) {
		t.Fatal("killed replica still healthy after traffic and a probe round")
	}
	rec := postTune(t, rt.Handler(), mustTuneBody(t))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-kill tune: status %d", rec.Code)
	}
}

// TestRouterValidation covers constructor input checking.
func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(Options{}); err == nil {
		t.Fatal("router built with no replicas")
	}
	if _, err := NewRouter(Options{Replicas: []string{"http://a", "http://a/"}}); err == nil {
		t.Fatal("router accepted duplicate replicas")
	}
	if _, err := NewRouter(Options{Replicas: []string{""}}); err == nil {
		t.Fatal("router accepted an empty replica URL")
	}
}
