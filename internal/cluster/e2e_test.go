package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/schedule"
	"waco/internal/serve"
	"waco/internal/sparseconv"
)

// e2eTuner builds one small SpMM tuner and seals it, shared across the e2e
// tests; each replica gets its own LoadTuner copy of the sealed bytes, the
// way a fleet shares one artifact file.
var (
	e2eOnce   sync.Once
	e2eSealed []byte
	e2eErr    error
)

func sealedTunerBytes(t *testing.T) []byte {
	t.Helper()
	e2eOnce.Do(func() {
		cfg := core.DefaultConfig(schedule.SpMM)
		cfg.Collect.SchedulesPerMatrix = 8
		cfg.Collect.Repeats = 1
		cfg.Collect.DenseN = 8
		sp := schedule.DefaultSpace(schedule.SpMM)
		sp.SplitChoices = []int32{1, 2, 4, 8}
		sp.ThreadChoices = []int{1, 2}
		cfg.Collect.Space = sp
		cfg.Model = costmodel.Config{
			Extractor: costmodel.KindHumanFeature,
			ConvCfg:   sparseconv.Config{Dim: 2, Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 12},
			EmbDim:    12,
			HeadDims:  []int{16},
			Seed:      1,
		}
		cfg.Train = costmodel.TrainConfig{Epochs: 3, PairsPerMatrix: 8, LR: 1e-3, Seed: 2, Loss: costmodel.LossRank}
		cfg.TopK = 3
		cfg.SearchEf = 24
		cc := generate.DefaultCorpusConfig()
		cc.Count = 5
		cc.MinDim, cc.MaxDim, cc.MaxNNZ = 64, 160, 2500
		var tuner *core.Tuner
		tuner, _, e2eErr = core.Build(generate.Corpus(cc), cfg)
		if e2eErr != nil {
			return
		}
		var buf bytes.Buffer
		e2eErr = core.SaveTuner(&buf, tuner)
		e2eSealed = buf.Bytes()
	})
	if e2eErr != nil {
		t.Fatal(e2eErr)
	}
	return e2eSealed
}

// replicaFleet stands up n independent serve.Servers, each on its own
// tuner copy, behind httptest listeners — a real sharded fleet in-process.
func replicaFleet(t *testing.T, n int) (servers []*serve.Server, urls []string) {
	t.Helper()
	sealed := sealedTunerBytes(t)
	for i := 0; i < n; i++ {
		tuner, err := core.LoadTuner(bytes.NewReader(sealed))
		if err != nil {
			t.Fatal(err)
		}
		s, err := serve.NewServer(tuner, serve.Options{MaxWorkers: 2})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		servers = append(servers, s)
		urls = append(urls, ts.URL)
	}
	return servers, urls
}

func e2eMatrixBody(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := generate.Uniform(rng, 96, 96, 900)
	m := serve.MatrixJSON{Dims: coo.Dims, Coords: coo.Coords, Vals: coo.Vals}
	body, err := json.Marshal(serve.TuneRequest{Matrix: &m})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestClusterEndToEnd is the acceptance path for the serving tier: a
// router over three real replicas routes an async tune (202 well under
// 100ms while the search runs), the job poll reaches done through the
// router, fingerprint affinity yields a replica cache hit on the second
// request, and killing a replica re-routes without client-visible failure.
func TestClusterEndToEnd(t *testing.T) {
	servers, urls := replicaFleet(t, 3)
	rt := newTestRouter(t, urls, func(o *Options) {
		o.HealthInterval = 50 * time.Millisecond
	})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	body := e2eMatrixBody(t, 400)

	// Async tune through the router: accepted immediately, not when done.
	start := time.Now()
	resp, err := http.Post(front.URL+"/v1/tune?async=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	accepted := time.Since(start)
	var job serve.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async tune: status %d, want 202", resp.StatusCode)
	}
	if accepted >= 100*time.Millisecond {
		t.Fatalf("async tune acknowledged in %v, want <100ms", accepted)
	}
	owner := resp.Header.Get("X-Waco-Replica")
	if owner == "" {
		t.Fatal("no X-Waco-Replica on the async response")
	}

	// Poll the job through the router until the tune lands.
	deadline := time.Now().Add(60 * time.Second)
	var final serve.Job
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at deadline", job.ID, final.State)
		}
		resp, err := http.Get(front.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Waco-Replica"); got != owner {
			t.Fatalf("job poll routed to %s, job lives on %s", got, owner)
		}
		if final.State != serve.JobRunning {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != serve.JobDone || final.Result == nil {
		t.Fatalf("job finished %q (%s), want done with a result", final.State, final.Error)
	}

	// Affinity pays off: the synchronous retune of the same matrix goes to
	// the same replica and is answered from its fingerprint cache.
	resp, err = http.Post(front.URL+"/v1/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res serve.TuneResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Waco-Replica"); got != owner {
		t.Fatalf("sync tune routed to %s, fingerprint owner is %s", got, owner)
	}
	if !res.Cached {
		t.Fatal("second tune of the same matrix was not a cache hit")
	}
	var ownerSrv *serve.Server
	for i, u := range urls {
		if u == owner {
			ownerSrv = servers[i]
		}
	}
	if st := ownerSrv.Snapshot(); st.CacheHits < 1 {
		t.Fatalf("owning replica reports %d cache hits, want >= 1", st.CacheHits)
	}
	// The other replicas never saw this fingerprint.
	for i, u := range urls {
		if u == owner {
			continue
		}
		if st := servers[i].Snapshot(); st.TuneRequests != 0 {
			t.Errorf("replica %s saw %d tune requests for another replica's key", u, st.TuneRequests)
		}
	}

	// Drain the owner: readiness flips, the prober notices, and the same
	// fingerprint re-routes to a survivor without a client-visible error.
	ownerSrv.BeginDrain()
	waitForCluster(t, func() bool { return !rt.health.isHealthy(owner) })
	resp, err = http.Post(front.URL+"/v1/tune", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	reRouted := resp.Header.Get("X-Waco-Replica")
	code := resp.StatusCode
	resp.Body.Close()
	if code != http.StatusOK {
		t.Fatalf("tune after owner drain: status %d", code)
	}
	if reRouted == owner || reRouted == "" {
		t.Fatalf("request after drain served by %q, want a surviving replica", reRouted)
	}
}

func waitForCluster(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("cluster condition not reached in time")
}

// TestClusterSpreadsDistinctMatrices sanity-checks that a fleet actually
// shards: across many distinct matrices every replica serves some, and the
// totals add up (no request answered twice or dropped).
func TestClusterSpreadsDistinctMatrices(t *testing.T) {
	servers, urls := replicaFleet(t, 3)
	rt := newTestRouter(t, urls, nil)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const n = 12
	for seed := int64(0); seed < n; seed++ {
		body := e2eMatrixBody(t, 500+seed)
		resp, err := http.Post(front.URL+"/v1/tune", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tune seed %d: status %d", seed, resp.StatusCode)
		}
	}
	total := uint64(0)
	for i := range servers {
		st := servers[i].Snapshot()
		total += st.TuneRequests
		if st.TuneRequests == 0 {
			t.Logf("replica %d served no matrices (possible with %d keys; not an error)", i, n)
		}
	}
	if total != n {
		t.Fatalf("fleet served %d tune requests, want %d", total, n)
	}
	if st := rt.Stats(); st.Forwarded != n {
		t.Fatalf("router forwarded %d, want %d", st.Forwarded, n)
	}
}
