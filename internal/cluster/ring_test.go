package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real routing keys: hex fingerprints vary per matrix.
		keys[i] = fmt.Sprintf("fingerprint-%04x", i)
	}
	return keys
}

func TestRingDeterministicOwnership(t *testing.T) {
	a := NewRing(DefaultVNodes, "r1", "r2", "r3")
	b := NewRing(DefaultVNodes, "r3", "r1", "r2") // insertion order must not matter
	for _, k := range ringKeys(200) {
		oa, err := a.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := b.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		if oa != ob {
			t.Fatalf("key %s: owner %s on ring a, %s on ring b", k, oa, ob)
		}
		// Repeat lookups are stable.
		if again, _ := a.Owner(k); again != oa {
			t.Fatalf("key %s: owner changed between lookups (%s -> %s)", k, oa, again)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(DefaultVNodes, "r1", "r2", "r3")
	counts := map[string]int{}
	keys := ringKeys(3000)
	for _, k := range keys {
		o, err := r.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		counts[o]++
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 members own keys: %v", len(counts), counts)
	}
	// With 64 vnodes the split is not perfect, but no member should own
	// less than half or more than double its fair share.
	fair := len(keys) / 3
	for m, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("member %s owns %d keys, fair share is %d: %v", m, c, fair, counts)
		}
	}
}

// TestRingRemovalRemapsMinority is the acceptance criterion: dropping 1 of
// 3 replicas remaps strictly less than 50% of keys (expected ~1/3), and
// every key that does move lands on a surviving member while keys owned by
// survivors stay put — that is what keeps their caches warm.
func TestRingRemovalRemapsMinority(t *testing.T) {
	r := NewRing(DefaultVNodes, "r1", "r2", "r3")
	keys := ringKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Remove("r2")
	if got := r.Members(); len(got) != 2 {
		t.Fatalf("members after removal: %v", got)
	}
	moved := 0
	for _, k := range keys {
		after, err := r.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		if after == "r2" {
			t.Fatalf("key %s still owned by removed member", k)
		}
		if before[k] == "r2" {
			moved++ // had to move; any survivor is fine
			continue
		}
		if after != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, before[k], after)
		}
	}
	if moved == 0 || moved >= len(keys)/2 {
		t.Fatalf("removal remapped %d of %d keys, want >0 and <50%%", moved, len(keys))
	}
}

func TestRingPreference(t *testing.T) {
	r := NewRing(DefaultVNodes, "r1", "r2", "r3")
	for _, k := range ringKeys(50) {
		pref := r.Preference(k, 3)
		if len(pref) != 3 {
			t.Fatalf("key %s: preference %v, want all 3 members", k, pref)
		}
		seen := map[string]bool{}
		for _, m := range pref {
			if seen[m] {
				t.Fatalf("key %s: duplicate member in preference %v", k, pref)
			}
			seen[m] = true
		}
		// The first preference is the owner, and the second is who inherits
		// the key if the owner leaves.
		owner, _ := r.Owner(k)
		if pref[0] != owner {
			t.Fatalf("key %s: preference head %s != owner %s", k, pref[0], owner)
		}
		r2 := NewRing(DefaultVNodes, "r1", "r2", "r3")
		r2.Remove(owner)
		heir, _ := r2.Owner(k)
		if pref[1] != heir {
			t.Fatalf("key %s: preference[1] = %s, but %s inherits after %s leaves", k, pref[1], heir, owner)
		}
	}
	// Asking for more members than exist truncates.
	if pref := r.Preference("x", 10); len(pref) != 3 {
		t.Fatalf("over-asking preference returned %v", pref)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(8)
	if _, err := empty.Owner("k"); err == nil {
		t.Fatal("empty ring returned an owner")
	}
	if pref := empty.Preference("k", 3); pref != nil {
		t.Fatalf("empty ring preference = %v, want nil", pref)
	}

	one := NewRing(8, "only")
	for _, k := range ringKeys(10) {
		o, err := one.Owner(k)
		if err != nil || o != "only" {
			t.Fatalf("single-member ring: owner(%s) = %s, %v", k, o, err)
		}
	}

	// Add/Remove round trip restores the original mapping exactly.
	r := NewRing(DefaultVNodes, "r1", "r2", "r3")
	keys := ringKeys(300)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	r.Remove("r3")
	r.Add("r3")
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after != before[k] {
			t.Fatalf("key %s: owner %s before remove/add cycle, %s after", k, before[k], after)
		}
	}
}
