package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestReloadAllRotatesFleet: a fleet-wide /admin/reload swaps every replica
// to the promoted artifact and reports the per-replica post-swap identity.
func TestReloadAllRotatesFleet(t *testing.T) {
	servers, urls := replicaFleet(t, 3)
	promoted := filepath.Join(t.TempDir(), "model.v2.waco")
	if err := os.WriteFile(promoted, sealedTunerBytes(t), 0o644); err != nil {
		t.Fatal(err)
	}

	results, err := ReloadAll(context.Background(), nil, urls, promoted)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("replica %d: %s", i, r.Err)
		}
		if r.Version != 2 {
			t.Fatalf("replica %d at version %d after rotation, want 2", i, r.Version)
		}
		if got := servers[i].Artifact().Stamp; got != r.Stamp {
			t.Fatalf("replica %d reports stamp %.8s, server holds %.8s", i, r.Stamp, got)
		}
	}
}

// TestReloadAllReportsPartialFailure: a dead replica fails the rotation
// loudly while the healthy ones still swap — the caller learns exactly which
// replica is stale.
func TestReloadAllReportsPartialFailure(t *testing.T) {
	servers, urls := replicaFleet(t, 2)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on
	promoted := filepath.Join(t.TempDir(), "model.v2.waco")
	if err := os.WriteFile(promoted, sealedTunerBytes(t), 0o644); err != nil {
		t.Fatal(err)
	}

	results, err := ReloadAll(context.Background(), nil, append(urls, dead.URL), promoted)
	if err == nil {
		t.Fatal("rotation with a dead replica reported success")
	}
	if results[2].Err == "" {
		t.Fatal("dead replica's result carries no error")
	}
	for i := range servers {
		if results[i].Err != "" {
			t.Fatalf("healthy replica %d failed: %s", i, results[i].Err)
		}
		if servers[i].Artifact().Version != 2 {
			t.Fatalf("healthy replica %d did not swap", i)
		}
	}
}
