package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// ReloadResult is one replica's outcome in a fleet-wide artifact rotation.
type ReloadResult struct {
	Replica string `json:"replica"`
	// Version and Stamp echo the replica's post-swap serve.ArtifactInfo.
	Version int    `json:"version,omitempty"`
	Stamp   string `json:"stamp,omitempty"`
	Err     string `json:"err,omitempty"`
}

// ReloadAll fans POST /admin/reload out to every replica concurrently,
// telling each to hot-swap to the sealed artifact at path (empty path = each
// replica's own configured -artifact file — the rolling-restart-free rotation
// after waco-retrain promotes a new version onto shared storage). Results
// come back in replica order. The error is non-nil when any replica failed;
// the others still swapped — artifact rotation is intentionally not atomic
// across the fleet (replicas already tolerate mixed versions mid-rotation,
// exactly like a rolling deploy), so one wedged replica must not leave the
// rest serving a stale model.
func ReloadAll(ctx context.Context, client *http.Client, replicas []string, path string) ([]ReloadResult, error) {
	if client == nil {
		client = http.DefaultClient
	}
	results := make([]ReloadResult, len(replicas))
	var wg sync.WaitGroup
	for i, replica := range replicas {
		wg.Add(1)
		go func(i int, replica string) {
			defer wg.Done()
			results[i] = reloadOne(ctx, client, strings.TrimRight(replica, "/"), path)
		}(i, replica)
	}
	wg.Wait()

	var failed []string
	for _, r := range results {
		if r.Err != "" {
			failed = append(failed, fmt.Sprintf("%s: %s", r.Replica, r.Err))
		}
	}
	if len(failed) > 0 {
		sort.Strings(failed)
		return results, fmt.Errorf("cluster: reload failed on %d/%d replicas: %s",
			len(failed), len(replicas), strings.Join(failed, "; "))
	}
	return results, nil
}

// ReloadAll rotates this router's replica set; see the package function.
func (rt *Router) ReloadAll(ctx context.Context, path string) ([]ReloadResult, error) {
	return ReloadAll(ctx, rt.client, rt.opts.Replicas, path)
}

func reloadOne(ctx context.Context, client *http.Client, replica, path string) ReloadResult {
	res := ReloadResult{Replica: replica}
	var body bytes.Buffer
	if path != "" {
		if err := json.NewEncoder(&body).Encode(map[string]string{"artifact": path}); err != nil {
			res.Err = err.Error()
			return res
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, replica+"/admin/reload", &body)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20)) //waco:nolint errdrop -- best-effort body for the error message; a short read only trims the quoted context
	if resp.StatusCode != http.StatusOK {
		res.Err = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
		return res
	}
	var info struct {
		Version int    `json:"version"`
		Stamp   string `json:"stamp"`
	}
	if err := json.Unmarshal(raw, &info); err != nil {
		res.Err = fmt.Sprintf("parsing response: %v", err)
		return res
	}
	res.Version = info.Version
	res.Stamp = info.Stamp
	return res
}
