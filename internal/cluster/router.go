package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"waco/internal/metrics"
	"waco/internal/serve"
)

// maxBodyBytes bounds proxied request bodies, mirroring the serve daemon's
// own limit so the router never buffers more than a replica would accept.
const maxBodyBytes = 64 << 20

// Options configures a Router.
type Options struct {
	// Replicas are the serve daemon base URLs ("http://host:port"), the
	// consistent-hash ring membership. Required, at least one.
	Replicas []string
	// VNodes is the virtual nodes per replica on the ring. Default 64.
	VNodes int
	// LoadFactor is the bounded-load consistent-hashing factor c: a replica
	// already carrying more than c times its fair share of the router's
	// in-flight requests is skipped in favor of the next ring preference,
	// trading a cache-affinity miss for not piling onto a hot spot.
	// Default 1.25; values <= 1 disable the bound.
	LoadFactor float64
	// Retries is the maximum number of distinct replicas one request may be
	// attempted on. Default: every replica.
	Retries int
	// RetryBase and RetryMax bound the jittered exponential backoff between
	// replica attempts. Defaults 25ms and 1s.
	RetryBase, RetryMax time.Duration
	// HealthInterval is the readiness probe period. Default 2s.
	HealthInterval time.Duration
	// ProbeTimeout bounds one readiness probe. Default 1s.
	ProbeTimeout time.Duration
	// ForwardTimeout bounds one proxied attempt (connect + full response).
	// 0 means no per-attempt deadline beyond the client request's own
	// context — tunes can run for seconds, so the default is 0.
	ForwardTimeout time.Duration
	// Client is the HTTP client for proxying and probing. Default: a
	// dedicated client with connection reuse.
	Client *http.Client
	// Seed seeds the backoff jitter RNG (project invariant: no global
	// rand). 0 uses a fixed seed; pass something process-unique (e.g. the
	// startup time) in production so router fleets don't jitter in step.
	Seed int64
	// Registry receives the router's metrics. nil creates a private one.
	Registry *metrics.Registry
	// Logger, when non-nil, receives one line per proxied request and per
	// health transition.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.LoadFactor == 0 {
		o.LoadFactor = 1.25
	}
	if o.Retries <= 0 || o.Retries > len(o.Replicas) {
		o.Retries = len(o.Replicas)
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Second
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// replicaCounters is one replica's live accounting: the in-flight gauge
// drives the bounded-load skip, the totals feed stats and metrics.
type replicaCounters struct {
	inFlight  atomic.Int64
	forwarded atomic.Uint64
	errors    atomic.Uint64
}

// Router fans tuning traffic out to serve replicas keyed on the sparsity
// fingerprint. It holds no request state — any number of routers can front
// the same replicas — and is safe for concurrent use.
type Router struct {
	opts   Options
	ring   *Ring
	health *healthChecker
	client *http.Client
	logger *slog.Logger

	replicas map[string]*replicaCounters // fixed key set after NewRouter

	rngMu sync.Mutex
	rng   *rand.Rand

	cancelHealth context.CancelFunc

	forwarded       atomic.Uint64
	retries         atomic.Uint64
	transportErrors atomic.Uint64
	noReplica       atomic.Uint64
	badRequests     atomic.Uint64

	reg       *metrics.Registry
	latency   *metrics.Histogram
	attempts  *metrics.Histogram
	reqSeq    atomic.Uint64
	startTime time.Time
}

// NewRouter builds a router over the replica set and starts its readiness
// prober. Close releases the prober.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Replicas) == 0 {
		return nil, errors.New("cluster: router needs at least one replica")
	}
	normalized := make([]string, len(opts.Replicas))
	seen := make(map[string]bool, len(opts.Replicas))
	for i, r := range opts.Replicas {
		r = strings.TrimRight(r, "/")
		if r == "" {
			return nil, fmt.Errorf("cluster: empty replica URL at position %d", i)
		}
		if seen[r] {
			return nil, fmt.Errorf("cluster: duplicate replica %s", r)
		}
		seen[r] = true
		normalized[i] = r
	}
	opts.Replicas = normalized
	opts = opts.withDefaults()

	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	rt := &Router{
		opts:      opts,
		ring:      NewRing(opts.VNodes, opts.Replicas...),
		client:    opts.Client,
		logger:    opts.Logger,
		replicas:  make(map[string]*replicaCounters, len(opts.Replicas)),
		rng:       rand.New(rand.NewSource(opts.Seed)),
		reg:       reg,
		startTime: time.Now(),
	}
	for _, r := range opts.Replicas {
		rt.replicas[r] = &replicaCounters{}
	}
	rt.health = newHealthChecker(opts.Replicas, opts.Client, opts.HealthInterval, opts.ProbeTimeout)
	var healthCtx context.Context
	healthCtx, rt.cancelHealth = context.WithCancel(context.Background())
	rt.health.run(healthCtx)
	rt.newInstruments(reg)
	return rt, nil
}

// Close stops the health prober. In-flight proxied requests finish.
func (rt *Router) Close() {
	rt.cancelHealth()
	rt.health.close()
}

// Handler returns the router's HTTP mux:
//
//	POST /v1/tune       — routed by the body's fingerprint (async included)
//	POST /v1/predict    — routed by the body's fingerprint
//	GET  /v1/jobs/{id}  — routed by the fingerprint embedded in the job id
//	GET  /v1/stats      — router stats (RouterStats), not a replica's
//	GET  /healthz       — router liveness
//	GET  /readyz        — readiness: at least one healthy replica
//	GET  /metrics       — Prometheus exposition of the router's instruments
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tune", rt.handleProxyPost)
	mux.HandleFunc("/v1/predict", rt.handleProxyPost)
	mux.HandleFunc("/v1/jobs/", rt.handleJob)
	mux.HandleFunc("/v1/stats", rt.handleStats)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.Handle("/metrics", rt.reg.Handler())
	return mux
}

type errorResponse struct {
	Error string `json:"error"`
}

// logf reports faults that have no response channel left (the status line
// is already gone when encoding fails). Swapped out in tests.
var logf = log.Printf

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// A client gone mid-write is its own problem; the status line is sent.
		logf("cluster: encoding %T response: %v", v, err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// handleProxyPost routes /v1/tune and /v1/predict: read the body, derive
// the fingerprint, forward to the fingerprint's replica. POSTs retry on the
// next ring preference only for transport errors — the tune/predict
// endpoints are idempotent by fingerprint (replicas cache and dedup), so a
// connection that died before or during a response is safe to replay.
func (rt *Router) handleProxyPost(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	key, err := serve.RequestFingerprint(body)
	if err != nil {
		// Reject malformed matrices at the edge: no replica round trip for
		// a request that every replica would 400 anyway.
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rt.forward(w, r, key, body, false)
}

// handleJob routes GET /v1/jobs/{id} by the fingerprint embedded in the job
// id (serve.JobKey). Job polls are idempotent reads, so they additionally
// retry past 404s and 5xxs down the preference list: after a topology
// change the job may live on the replica that owned the fingerprint under
// the previous ring, which is exactly the next preference.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	key, ok := serve.JobKey(id)
	if !ok {
		rt.badRequests.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed job id %q", id))
		return
	}
	rt.forward(w, r, key, nil, true)
}

// forward proxies one request to the key's replica, walking the ring
// preference list with jittered exponential backoff between attempts.
// retryStatuses extends retries beyond transport errors to 404/5xx replies
// (idempotent reads only).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte, retryStatuses bool) {
	id := rt.reqSeq.Add(1)
	start := time.Now()
	pref := rt.ring.Preference(key, rt.ring.Len())
	candidates := rt.pickCandidates(pref)
	if len(candidates) == 0 {
		rt.noReplica.Add(1)
		writeError(w, http.StatusServiceUnavailable, errors.New("no healthy replica"))
		return
	}
	if len(candidates) > rt.opts.Retries {
		candidates = candidates[:rt.opts.Retries]
	}

	var lastErr error
	for attempt, replica := range candidates {
		if attempt > 0 {
			rt.retries.Add(1)
			if err := rt.backoff(r.Context(), attempt); err != nil {
				writeError(w, http.StatusServiceUnavailable, err)
				return
			}
		}
		done, err := rt.attempt(w, r, replica, body, retryStatuses, attempt == len(candidates)-1)
		if done {
			rt.latency.Observe(time.Since(start).Seconds())
			rt.attempts.Observe(float64(attempt + 1))
			if rt.logger != nil {
				rt.logger.LogAttrs(r.Context(), slog.LevelInfo, "proxied",
					slog.Uint64("id", id),
					slog.String("path", r.URL.Path),
					slog.String("replica", replica),
					slog.Int("attempts", attempt+1),
					slog.Duration("duration", time.Since(start)))
			}
			return
		}
		lastErr = err
		rt.transportErrors.Add(1)
		rt.health.markDown(replica, err.Error())
		if rt.logger != nil {
			rt.logger.LogAttrs(r.Context(), slog.LevelWarn, "replica attempt failed",
				slog.Uint64("id", id),
				slog.String("replica", replica),
				slog.String("error", err.Error()))
		}
	}
	writeError(w, http.StatusBadGateway, fmt.Errorf("all replicas failed, last: %w", lastErr))
}

// pickCandidates filters the preference order down to healthy replicas,
// then applies the bounded-load rule: replicas carrying more than
// LoadFactor times their fair share of in-flight requests sink to the back
// of the order (skipped, not dropped — if every replica is hot, the
// preference order stands and the request queues on its owner).
func (rt *Router) pickCandidates(pref []string) []string {
	healthy := make([]string, 0, len(pref))
	for _, p := range pref {
		if rt.health.isHealthy(p) {
			healthy = append(healthy, p)
		}
	}
	if len(healthy) <= 1 || rt.opts.LoadFactor <= 1 {
		return healthy
	}
	total := int64(0)
	for _, c := range rt.replicas {
		total += c.inFlight.Load()
	}
	// Fair share of in-flight work per healthy replica, inflated by c.
	// +1 counts the request being placed.
	limit := int64(rt.opts.LoadFactor * float64(total+1) / float64(len(healthy)))
	if limit < 1 {
		limit = 1
	}
	within := make([]string, 0, len(healthy))
	var over []string
	for _, p := range healthy {
		if rt.replicas[p].inFlight.Load() <= limit {
			within = append(within, p)
		} else {
			over = append(over, p)
		}
	}
	return append(within, over...)
}

// attempt proxies the request to one replica. done=true means a response
// (or terminal error) was written to w; done=false with err means the
// attempt is retryable on the next replica. last marks the final candidate:
// retryable statuses are relayed rather than swallowed when nothing is left
// to try.
func (rt *Router) attempt(w http.ResponseWriter, r *http.Request, replica string, body []byte, retryStatuses, last bool) (done bool, err error) {
	ctx := r.Context()
	if rt.opts.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.opts.ForwardTimeout)
		defer cancel()
	}
	url := replica + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var bodyReader io.Reader
	if body != nil {
		bodyReader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, url, bodyReader)
	if err != nil {
		return false, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}

	rc := rt.replicas[replica]
	rc.inFlight.Add(1)
	resp, err := rt.client.Do(req)
	rc.inFlight.Add(-1)
	if err != nil {
		rc.errors.Add(1)
		// The client's own context ending is not a replica fault: stop.
		if r.Context().Err() != nil {
			writeError(w, http.StatusServiceUnavailable, r.Context().Err())
			return true, nil
		}
		return false, err
	}
	defer resp.Body.Close()

	if retryStatuses && !last &&
		(resp.StatusCode == http.StatusNotFound || resp.StatusCode >= 500) {
		rc.errors.Add(1)
		// Finish reading so the connection is reusable, then try the next
		// preference. A drain failure only costs connection reuse.
		if _, derr := io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes)); derr != nil {
			logf("cluster: draining retried response from %s: %v", replica, derr)
		}
		return false, fmt.Errorf("%s returned %s", replica, resp.Status)
	}

	// Relay the replica's answer: status, the headers clients act on, and
	// the body. X-Waco-Replica names the serving replica for debugging and
	// for the e2e affinity checks.
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Waco-Replica", replica)
	w.WriteHeader(resp.StatusCode)
	_, copyErr := io.Copy(w, resp.Body)
	if copyErr != nil && rt.logger != nil {
		rt.logger.LogAttrs(r.Context(), slog.LevelWarn, "relaying response body failed",
			slog.String("replica", replica), slog.String("error", copyErr.Error()))
	}
	rt.forwarded.Add(1)
	rc.forwarded.Add(1)
	if resp.StatusCode >= 500 {
		rc.errors.Add(1)
	}
	return true, nil
}

// backoff sleeps the jittered exponential delay before retry n (n >= 1),
// or returns early with ctx's error.
func (rt *Router) backoff(ctx context.Context, n int) error {
	d := rt.opts.RetryBase << (n - 1)
	if d > rt.opts.RetryMax {
		d = rt.opts.RetryMax
	}
	// Full jitter over [d/2, d): staggered retries, bounded wait.
	rt.rngMu.Lock()
	jittered := d/2 + time.Duration(rt.rng.Int63n(int64(d/2)+1))
	rt.rngMu.Unlock()
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ReplicaForKey exposes the routing decision (healthy-filtered preference
// order) for tests and debugging.
func (rt *Router) ReplicaForKey(key string) []string {
	return rt.pickCandidates(rt.ring.Preference(key, rt.ring.Len()))
}

// RouterStats is the router's /v1/stats payload.
type RouterStats struct {
	UptimeSeconds   float64         `json:"uptime_seconds"`
	Replicas        []ReplicaHealth `json:"replicas"`
	HealthyReplicas int             `json:"healthy_replicas"`
	Forwarded       uint64          `json:"forwarded"`
	Retries         uint64          `json:"retries"`
	TransportErrors uint64          `json:"transport_errors"`
	NoReplica       uint64          `json:"no_replica"`
	BadRequests     uint64          `json:"bad_requests"`
}

// Stats snapshots the router's counters and per-replica health.
func (rt *Router) Stats() RouterStats {
	st := RouterStats{
		UptimeSeconds:   time.Since(rt.startTime).Seconds(),
		HealthyReplicas: rt.health.healthyCount(),
		Forwarded:       rt.forwarded.Load(),
		Retries:         rt.retries.Load(),
		TransportErrors: rt.transportErrors.Load(),
		NoReplica:       rt.noReplica.Load(),
		BadRequests:     rt.badRequests.Load(),
	}
	for _, r := range rt.opts.Replicas {
		healthy, lastErr, lastProbe := rt.health.view(r)
		c := rt.replicas[r]
		st.Replicas = append(st.Replicas, ReplicaHealth{
			URL:       r,
			Healthy:   healthy,
			LastError: lastErr,
			LastProbe: lastProbe,
			InFlight:  c.inFlight.Load(),
			Forwarded: c.forwarded.Load(),
			Errors:    c.errors.Load(),
		})
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, rt.Stats())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: the router is ready when it can route somewhere.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	healthy := rt.health.healthyCount()
	if healthy == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("no healthy replica"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "healthy_replicas": healthy})
}

// newInstruments installs the router's instruments (once, at construction —
// never on the request path).
func (rt *Router) newInstruments(reg *metrics.Registry) {
	counterFunc := func(name, help string, v func() uint64) {
		reg.NewCounterFunc(name, help, nil, func() float64 { return float64(v()) })
	}
	counterFunc("waco_router_forwarded_total", "Requests proxied to a replica and answered.", rt.forwarded.Load)
	counterFunc("waco_router_retries_total", "Attempts beyond the first replica.", rt.retries.Load)
	counterFunc("waco_router_transport_errors_total", "Replica attempts that failed at the transport layer.", rt.transportErrors.Load)
	counterFunc("waco_router_no_replica_total", "Requests rejected because no replica was healthy.", rt.noReplica.Load)
	counterFunc("waco_router_bad_requests_total", "Requests rejected at the edge (malformed body or job id).", rt.badRequests.Load)
	reg.NewGaugeFunc("waco_router_healthy_replicas", "Replicas currently passing readiness.", nil,
		func() float64 { return float64(rt.health.healthyCount()) })
	reg.NewGaugeFunc("waco_router_replicas", "Configured replicas on the ring.", nil,
		func() float64 { return float64(rt.ring.Len()) })
	for _, r := range rt.opts.Replicas {
		c := rt.replicas[r]
		l := metrics.Labels{"replica": r}
		reg.NewCounterFunc("waco_router_replica_forwarded_total", "Requests answered by this replica.", l,
			func() float64 { return float64(c.forwarded.Load()) })
		reg.NewCounterFunc("waco_router_replica_errors_total", "Failed attempts against this replica.", l,
			func() float64 { return float64(c.errors.Load()) })
		reg.NewGaugeFunc("waco_router_replica_in_flight", "In-flight proxied requests on this replica.", l,
			func() float64 { return float64(c.inFlight.Load()) })
	}
	rt.latency = reg.NewHistogram("waco_router_request_seconds",
		"End-to-end proxied request latency, including retries.", metrics.DefBuckets(), nil)
	rt.attempts = reg.NewHistogram("waco_router_attempts_per_request",
		"Replica attempts per answered request (1 = no retry).",
		[]float64{1, 2, 3, 4, 8}, nil)
}
