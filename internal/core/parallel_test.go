package core

import (
	"reflect"
	"testing"

	"waco/internal/schedule"
)

// TestBuildWorkersEquivalent locks the whole offline pipeline end to end:
// Build with Workers=1 and Workers=3 must produce tuners with bit-identical
// model weights, the same indexed schedules, and the same graph adjacency.
// (Measured runtimes inside the dataset differ run to run, which is why the
// comparison is between the tuners, not the datasets — training consumes
// the runtimes, so this holds only because both builds share one dataset.)
func TestBuildWorkersEquivalent(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	cfg.Collect.SlowLimit = 0 // keep the sample set timing-independent
	mats := testCorpus(4)
	cfg.Workers = 1
	_, ds, err := Build(mats, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wantW [][]float32
	var wantKeys []string
	var wantLinks [][][]int32
	for _, workers := range []int{1, 3} {
		cfg.Workers = workers
		tuner, err := BuildFromDataset(ds, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var w [][]float32
		for _, p := range tuner.Model.Params() {
			w = append(w, append([]float32(nil), p.W...))
		}
		var keys []string
		for _, ss := range tuner.Index.Schedules {
			keys = append(keys, ss.String())
		}
		g := tuner.Index.Graph
		links := make([][][]int32, g.Len())
		for id := 0; id < g.Len(); id++ {
			for l := 0; l <= g.Level(id); l++ {
				links[id] = append(links[id], g.Neighbors(id, l))
			}
		}
		if wantW == nil {
			wantW, wantKeys, wantLinks = w, keys, links
			continue
		}
		if !reflect.DeepEqual(w, wantW) {
			t.Fatalf("workers=%d: model weights diverged from workers=1", workers)
		}
		if !reflect.DeepEqual(keys, wantKeys) {
			t.Fatalf("workers=%d: indexed schedules diverged from workers=1", workers)
		}
		if !reflect.DeepEqual(links, wantLinks) {
			t.Fatalf("workers=%d: index graph diverged from workers=1", workers)
		}
	}
}
