package core

import (
	"math/rand"
	"testing"

	"waco/internal/baselines"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
)

// quickConfig returns a pipeline configuration small enough for unit tests.
func quickConfig(alg schedule.Algorithm) Config {
	cfg := DefaultConfig(alg)
	cfg.Collect.SchedulesPerMatrix = 8
	cfg.Collect.Repeats = 1
	cfg.Collect.DenseN = 8
	sp := schedule.DefaultSpace(alg)
	sp.SplitChoices = []int32{1, 2, 4, 8}
	sp.ThreadChoices = []int{1, 2}
	cfg.Collect.Space = sp
	cfg.Model = costmodel.Config{
		Extractor: costmodel.KindHumanFeature,
		ConvCfg:   sparseconv.Config{Dim: alg.SparseOrder(), Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 12},
		EmbDim:    12,
		HeadDims:  []int{16},
		Seed:      1,
	}
	cfg.Train = costmodel.TrainConfig{Epochs: 3, PairsPerMatrix: 8, LR: 1e-3, Seed: 2, Loss: costmodel.LossRank}
	cfg.TopK = 3
	cfg.SearchEf = 24
	return cfg
}

func testCorpus(n int) []generate.Matrix {
	cc := generate.DefaultCorpusConfig()
	cc.Count = n
	cc.MinDim = 64
	cc.MaxDim = 160
	cc.MaxNNZ = 2500
	return generate.Corpus(cc)
}

func TestBuildAndTuneEndToEnd(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, ds, err := Build(testCorpus(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() == 0 {
		t.Fatal("empty dataset")
	}
	if len(tuner.TrainTrace.Epochs) != cfg.Train.Epochs {
		t.Fatalf("%d epochs traced", len(tuner.TrainTrace.Epochs))
	}

	// Tune an unseen matrix.
	rng := rand.New(rand.NewSource(99))
	coo := generate.Uniform(rng, 128, 128, 2000)
	tuned, err := tuner.TuneTensor(coo)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.KernelSeconds <= 0 {
		t.Fatal("no kernel time")
	}
	if tuned.TuningSeconds <= 0 {
		t.Fatal("no tuning time")
	}
	if err := tuned.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}

	// The tuner satisfies the baselines.Method interface and can be compared
	// uniformly against the baselines.
	var m baselines.Method = tuner
	if m.Name() != "WACO" || !m.Supports(schedule.SpMM) || m.Supports(schedule.SpMV) {
		t.Fatal("method interface misbehaves")
	}
}

func TestBuildFromDatasetRejectsEmpty(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	if _, err := BuildFromDataset(&dataset.Dataset{}, cfg); err == nil {
		t.Fatal("accepted empty dataset")
	}
}

func TestTuneRejectsWrongAlgorithm(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, _, err := Build(testCorpus(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	coo := generate.Uniform(rng, 64, 64, 500)
	wl, err := kernel.NewWorkload(schedule.SpMV, coo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.Tune(wl, kernel.DefaultProfile(), baselines.Config{Repeats: 1}); err == nil {
		t.Fatal("accepted SpMV workload on SpMM tuner")
	}
}

// WACO's tuned schedule should usually not be slower than the median random
// schedule from its own dataset — a weak sanity bound that holds even for a
// barely trained model because the top-K are measured on hardware.
func TestTunedScheduleIsReasonable(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	cfg.TopK = 5
	tuner, _, err := Build(testCorpus(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	coo := generate.Uniform(rng, 160, 160, 3000)
	wl, err := kernel.NewWorkload(schedule.SpMM, coo, 8)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := tuner.Tune(wl, cfg.Collect.Profile, baselines.Config{Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against 6 random schedules.
	srng := rand.New(rand.NewSource(8))
	worse := 0
	total := 0
	for i := 0; i < 6; i++ {
		ss := cfg.Collect.Space.Sample(srng)
		d, _, err := wl.MeasureSchedule(ss, cfg.Collect.Profile, 0, 3)
		if err != nil {
			continue
		}
		total++
		if d.Seconds() < tuned.KernelSeconds {
			worse++
		}
	}
	if total > 0 && worse == total {
		t.Fatalf("every random schedule beat the tuned one (%d/%d)", worse, total)
	}
}
