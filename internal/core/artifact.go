package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"waco/internal/costmodel"
	"waco/internal/hnsw"
	"waco/internal/schedule"
	"waco/internal/search"
)

// A sealed tuner artifact bundles everything a serving process needs to
// answer tuning queries without retraining or re-indexing: the pipeline
// configuration (including the SuperSchedule space and machine profile), the
// trained cost model, the HNSW graph with its frozen program embeddings, and
// the indexed SuperSchedules in graph-id order. waco-train writes one with
// -artifact; waco-tune and waco-serve load it for O(read) startup.
const (
	artifactMagic = "WACOTUNR"
	// artifactVersion 1 is the original envelope; version 2 adds the optional
	// quantized-head section (QuantBytes). SaveTuner writes version 1 when
	// the tuner carries no quantized head, so artifacts without one stay
	// readable by version-1 builds; LoadTuner accepts both.
	artifactVersion      = uint32(1)
	artifactVersionQuant = uint32(2)
)

// artifactDisk is the gob payload following the magic + version header. The
// model, graph, and quantized head keep their own self-describing encodings
// (costmodel snapshot, hnsw versioned format, quantized-head section) so
// their layouts can evolve independently of the envelope.
type artifactDisk struct {
	Cfg          Config
	ModelBytes   []byte
	GraphBytes   []byte
	Schedules    []*schedule.SuperSchedule
	BuildSeconds float64
	// QuantBytes is the sealed int8 head (costmodel.QuantizedHead.Save):
	// scales + int8 weights, so quantized serving needs no startup
	// calibration pass. Empty in version-1 artifacts.
	QuantBytes []byte
}

// SaveTuner seals the tuner into w. Cfg.Train.Verbose (a func) is dropped by
// gob; everything else round-trips.
func SaveTuner(w io.Writer, t *Tuner) error {
	if t.Model == nil || t.Index == nil {
		return fmt.Errorf("core: cannot seal a tuner without a model and an index")
	}
	if len(t.Index.Schedules) != t.Index.Graph.Len() {
		return fmt.Errorf("core: index has %d schedules but graph has %d vectors",
			len(t.Index.Schedules), t.Index.Graph.Len())
	}
	var model bytes.Buffer
	if err := t.Model.Save(&model); err != nil {
		return err
	}
	var graph bytes.Buffer
	if err := t.Index.Graph.Save(&graph); err != nil {
		return err
	}
	version := artifactVersion
	var quant bytes.Buffer
	if t.Quantized != nil {
		if err := t.Quantized.CompatibleWith(t.Model); err != nil {
			return err
		}
		if err := t.Quantized.Save(&quant); err != nil {
			return err
		}
		version = artifactVersionQuant
	}
	if _, err := io.WriteString(w, artifactMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, version); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(artifactDisk{
		Cfg:          t.Cfg,
		ModelBytes:   model.Bytes(),
		GraphBytes:   graph.Bytes(),
		Schedules:    t.Index.Schedules,
		BuildSeconds: t.BuildSeconds,
		QuantBytes:   quant.Bytes(),
	})
}

// LoadTuner reconstructs a tuner sealed by SaveTuner. The returned tuner's
// BuildSeconds is the original (offline) construction cost, preserved so
// callers can report the startup speedup of the cached path. ArtifactStamp
// is set to the SHA-256 of the bytes read, so two processes (or one process
// across a hot reload) can tell whether they serve the same sealed artifact
// without re-reading the file.
func LoadTuner(r io.Reader) (*Tuner, error) {
	digest := sha256.New()
	r = io.TeeReader(r, digest)
	magic := make([]byte, len(artifactMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("core: reading artifact magic: %w", err)
	}
	if string(magic) != artifactMagic {
		return nil, fmt.Errorf("core: bad magic %q (not a sealed tuner artifact)", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("core: reading artifact version: %w", err)
	}
	if version != artifactVersion && version != artifactVersionQuant {
		return nil, fmt.Errorf("core: artifact version %d, this build reads %d-%d",
			version, artifactVersion, artifactVersionQuant)
	}
	var d artifactDisk
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decoding artifact: %w", err)
	}
	model, err := costmodel.LoadModel(bytes.NewReader(d.ModelBytes))
	if err != nil {
		return nil, err
	}
	graph, err := hnsw.Load(bytes.NewReader(d.GraphBytes))
	if err != nil {
		return nil, err
	}
	if graph.Len() != len(d.Schedules) {
		return nil, fmt.Errorf("core: artifact graph has %d vectors but %d schedules",
			graph.Len(), len(d.Schedules))
	}
	for i, ss := range d.Schedules {
		if ss == nil {
			return nil, fmt.Errorf("core: artifact schedule %d is nil", i)
		}
		if err := ss.Validate(); err != nil {
			return nil, fmt.Errorf("core: artifact schedule %d: %w", i, err)
		}
	}
	var quant *costmodel.QuantizedHead
	if len(d.QuantBytes) > 0 {
		if quant, err = costmodel.LoadQuantizedHead(bytes.NewReader(d.QuantBytes)); err != nil {
			return nil, err
		}
		if err := quant.CompatibleWith(model); err != nil {
			return nil, err
		}
	}
	return &Tuner{
		Cfg:           d.Cfg,
		Model:         model,
		Index:         &search.Index{Model: model, Schedules: d.Schedules, Graph: graph},
		Quantized:     quant,
		BuildSeconds:  d.BuildSeconds,
		ArtifactStamp: hex.EncodeToString(digest.Sum(nil)),
	}, nil
}

// LoadTunerFile loads a sealed artifact from disk — the waco-serve startup
// and hot-reload path in one place, so both report the same errors.
func LoadTunerFile(path string) (*Tuner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	t, err := LoadTuner(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return t, nil
}
