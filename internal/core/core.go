// Package core assembles the full WACO pipeline (Figure 1): collect a
// training dataset of measured (matrix, SuperSchedule, runtime) tuples,
// train the cost model with the pairwise ranking loss, build the KNN graph
// over program embeddings of the dataset's SuperSchedules, and answer
// queries — for an input sparse tensor, retrieve the top-K SuperSchedules by
// approximate nearest neighbor search, measure them on the machine, and
// return the fastest (the paper's protocol in §5.2).
package core

import (
	"context"
	"fmt"
	"time"

	"waco/internal/baselines"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/hnsw"
	"waco/internal/kernel"
	"waco/internal/parallelism"
	"waco/internal/schedule"
	"waco/internal/search"
	"waco/internal/tensor"
)

// Config parameterizes the whole pipeline.
type Config struct {
	Alg     schedule.Algorithm
	Collect dataset.CollectConfig
	Model   costmodel.Config
	Train   costmodel.TrainConfig
	HNSW    hnsw.Config
	// TopK candidates are measured on the machine after the ANNS retrieval
	// (the paper reports the fastest of the top 10 from a ~2M-schedule
	// index). TopK <= 0 selects adaptively: max(10, indexSize/25), keeping
	// the measured fraction comparable at reduced index sizes.
	TopK int
	// SearchEf is the ANNS beam width; raised to 6*K when smaller.
	SearchEf int
	// ValFrac is the train/validation split (paper: 20%).
	ValFrac float64
	// Workers bounds the offline pipeline's parallelism (collection,
	// training, index construction). <1 means one worker per CPU. It is a
	// pure throughput knob: every stage is deterministic in (config, seed)
	// regardless of worker count. A stage whose own Workers field is set
	// explicitly (Collect.Workers, Train.Workers, HNSW.Workers) keeps it.
	Workers int
	// PoolMetrics, when non-nil, instruments the offline worker pool across
	// all stages. Runtime wiring; never persisted in sealed artifacts.
	PoolMetrics *parallelism.Metrics
}

// withWorkers resolves the pipeline-wide worker count into any stage that
// did not set its own, and fans the pool instruments out the same way.
func (cfg Config) withWorkers() Config {
	w := parallelism.Workers(cfg.Workers)
	if cfg.Collect.Workers == 0 {
		cfg.Collect.Workers = w
	}
	if cfg.Train.Workers == 0 {
		cfg.Train.Workers = w
	}
	if cfg.HNSW.Workers == 0 {
		cfg.HNSW.Workers = w
	}
	if cfg.PoolMetrics != nil {
		if cfg.Collect.PoolMetrics == nil {
			cfg.Collect.PoolMetrics = cfg.PoolMetrics
		}
		if cfg.Train.Metrics == nil {
			cfg.Train.Metrics = cfg.PoolMetrics
		}
	}
	return cfg
}

// DefaultConfig returns reduced-scale defaults for the algorithm.
func DefaultConfig(alg schedule.Algorithm) Config {
	return Config{
		Alg:      alg,
		Collect:  dataset.DefaultCollectConfig(alg),
		Model:    costmodel.DefaultConfig(alg),
		Train:    costmodel.DefaultTrainConfig(),
		HNSW:     hnsw.DefaultConfig(),
		TopK:     5,
		SearchEf: 64,
		ValFrac:  0.2,
	}
}

// Tuner is a trained WACO instance: cost model plus schedule index.
//
// A Tuner is safe for concurrent Tune/TuneContext calls: queries only read
// the model weights and the index graph (see the concurrency notes on
// costmodel.Model), and every call builds its own Pattern and Workload.
type Tuner struct {
	Cfg        Config
	Model      *costmodel.Model
	Index      *search.Index
	TrainTrace costmodel.TrainResult
	// Quantized is the calibrated int8 predictor head, if one has been built
	// (Quantize) or loaded from a version-2 sealed artifact. Carrying it here
	// does NOT switch the index to the int8 path — the serving layer opts in
	// via Index.EnableQuantized, keeping the float path the default oracle.
	Quantized *costmodel.QuantizedHead
	// BuildSeconds is the wall-clock cost of constructing this tuner
	// (training and/or index building). It is persisted in sealed artifacts
	// so the cached startup path can report its speedup.
	BuildSeconds float64
	// KernelMetrics, when non-nil, is attached to every workload the tuner
	// builds (TuneTensor/TuneTensorContext), so candidate probing and final
	// measurements are recorded. Serving-side instrumentation; never
	// persisted.
	KernelMetrics *kernel.Metrics
	// ArtifactStamp is the SHA-256 hex digest of the sealed artifact this
	// tuner was loaded from (set by LoadTuner). Empty for tuners built
	// in-process; never persisted — it identifies bytes on disk, not the
	// tuner's contents.
	ArtifactStamp string
}

// Build runs the full offline pipeline on a training corpus.
func Build(trainMatrices []generate.Matrix, cfg Config) (*Tuner, *dataset.Dataset, error) {
	return BuildContext(context.Background(), trainMatrices, cfg)
}

// BuildContext is Build with cancellation; cfg.Workers bounds every stage's
// parallelism without changing its output.
func BuildContext(ctx context.Context, trainMatrices []generate.Matrix, cfg Config) (*Tuner, *dataset.Dataset, error) {
	cfg = cfg.withWorkers()
	ds, err := dataset.CollectContext(ctx, trainMatrices, cfg.Collect)
	if err != nil {
		return nil, nil, err
	}
	t, err := BuildFromDatasetContext(ctx, ds, cfg)
	return t, ds, err
}

// BuildFromDataset trains the cost model and builds the index from an
// existing dataset (e.g. loaded from disk).
func BuildFromDataset(ds *dataset.Dataset, cfg Config) (*Tuner, error) {
	return BuildFromDatasetContext(context.Background(), ds, cfg)
}

// BuildFromDatasetContext is BuildFromDataset with cancellation and the
// pipeline-wide worker pool.
func BuildFromDatasetContext(ctx context.Context, ds *dataset.Dataset, cfg Config) (*Tuner, error) {
	cfg = cfg.withWorkers()
	t0 := time.Now()
	if len(ds.Entries) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	model, err := costmodel.New(cfg.Collect.Space, cfg.Model)
	if err != nil {
		return nil, err
	}
	train, val := ds.Split(cfg.ValFrac, cfg.Train.Seed)
	if len(train) == 0 {
		train = ds.Entries
	}
	trace, err := costmodel.TrainContext(ctx, model, train, val, cfg.Train)
	if err != nil {
		return nil, err
	}
	ix, err := buildIndex(ctx, model, ds, cfg)
	if err != nil {
		return nil, err
	}
	return &Tuner{Cfg: cfg, Model: model, Index: ix, TrainTrace: trace,
		BuildSeconds: time.Since(t0).Seconds()}, nil
}

// NewTuner wraps an already trained model with an index built from the
// dataset's SuperSchedules (no retraining) — used by cmd/waco-tune with a
// model file produced by cmd/waco-train.
func NewTuner(model *costmodel.Model, ds *dataset.Dataset, cfg Config) (*Tuner, error) {
	return NewTunerContext(context.Background(), model, ds, cfg)
}

// NewTunerContext is NewTuner with cancellation and the worker pool.
func NewTunerContext(ctx context.Context, model *costmodel.Model, ds *dataset.Dataset, cfg Config) (*Tuner, error) {
	cfg = cfg.withWorkers()
	t0 := time.Now()
	ix, err := buildIndex(ctx, model, ds, cfg)
	if err != nil {
		return nil, err
	}
	return &Tuner{Cfg: cfg, Model: model, Index: ix,
		BuildSeconds: time.Since(t0).Seconds()}, nil
}

// buildIndex indexes every SuperSchedule appearing in the dataset.
func buildIndex(ctx context.Context, model *costmodel.Model, ds *dataset.Dataset, cfg Config) (*search.Index, error) {
	var scheds []*schedule.SuperSchedule
	for _, e := range ds.Entries {
		for _, s := range e.Samples {
			scheds = append(scheds, s.SS)
		}
	}
	return search.BuildIndexContext(ctx, model, scheds, cfg.HNSW,
		search.BuildOptions{Workers: cfg.Workers, Metrics: cfg.PoolMetrics})
}

// quantCalibEmbs bounds the stored embeddings sampled for activation
// calibration; the cross product with the calibration features runs through
// the float head once per pair.
const quantCalibEmbs = 256

// Quantize calibrates an int8 predictor head and attaches it to the tuner:
// the sample tensors provide calibration features (one forward extraction
// each) and an evenly strided sample of the index's stored embeddings
// provides the activation statistics. The head is stored on the tuner (and
// sealed into version-2 artifacts by SaveTuner); serving opts in via
// Index.EnableQuantized.
func (t *Tuner) Quantize(samples []*tensor.COO) error {
	if len(samples) == 0 {
		return fmt.Errorf("core: quantization needs at least one calibration tensor")
	}
	b := costmodel.NewInferBuffers()
	feats := make([][]float32, 0, len(samples))
	for _, c := range samples {
		b.Reset()
		f, err := t.Model.ExtractInfer(b, costmodel.NewPattern(c))
		if err != nil {
			return err
		}
		feats = append(feats, append([]float32(nil), f...))
	}
	n := t.Index.Graph.Len()
	stride := n / quantCalibEmbs
	if stride < 1 {
		stride = 1
	}
	embs := make([][]float32, 0, quantCalibEmbs+1)
	for id := 0; id < n; id += stride {
		embs = append(embs, t.Index.Graph.Vector(id))
	}
	q, err := costmodel.QuantizeHead(t.Model, feats, embs)
	if err != nil {
		return err
	}
	t.Quantized = q
	return nil
}

// Name implements baselines.Method.
func (t *Tuner) Name() string { return "WACO" }

// Supports implements baselines.Method.
func (t *Tuner) Supports(alg schedule.Algorithm) bool { return alg == t.Cfg.Alg }

// Tune implements baselines.Method: ANNS retrieval of TopK candidates, then
// on-machine measurement of each, returning the fastest. Tuning time covers
// feature extraction, graph search, and candidate measurement; conversion
// time is the winning format's assembly.
func (t *Tuner) Tune(wl *kernel.Workload, profile kernel.MachineProfile, cfg baselines.Config) (*baselines.Tuned, error) {
	return t.TuneContext(context.Background(), wl, profile, cfg)
}

// TuneContext is Tune with cancellation: the context is checked before the
// ANNS search and between candidate measurements, so a server can bound a
// request's tuning time. A single kernel measurement is never interrupted
// mid-run (the executor has no preemption points), which bounds cancellation
// latency to one candidate's measurement.
func (t *Tuner) TuneContext(ctx context.Context, wl *kernel.Workload, profile kernel.MachineProfile, cfg baselines.Config) (*baselines.Tuned, error) {
	if wl.Alg != t.Cfg.Alg {
		return nil, fmt.Errorf("core: %v tuner on %v workload", t.Cfg.Alg, wl.Alg)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pattern := costmodel.NewPattern(wl.COO)
	k := t.Cfg.TopK
	if k <= 0 {
		k = len(t.Index.Schedules) / 25
		if k < 10 {
			k = 10
		}
	}
	ef := t.Cfg.SearchEf
	if ef < 6*k {
		ef = 6 * k
	}
	res, err := t.Index.Search(ctx, pattern, k, ef)
	if err != nil {
		return nil, err
	}
	tuning := res.FeatureTime + res.SearchTime

	var best *schedule.SuperSchedule
	var bestTime time.Duration
	var bestConvert time.Duration
	measured := 0
	var probes []baselines.Measurement
	for _, cand := range res.Candidates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		plan, err := wl.Compile(cand.SS, profile, cfg.MaxEntries)
		if err != nil {
			if format.IsStorageLimit(err) {
				continue
			}
			return nil, err
		}
		if plan.CheckWork(0) != nil {
			continue // would run unboundedly long on this matrix
		}
		convert := time.Since(t0)
		// Median of 3 probe runs: candidate selection is noise-sensitive at
		// microsecond kernel scales.
		d, err := wl.Measure(plan, 3)
		if err != nil {
			return nil, err
		}
		tuning += convert + d
		measured++
		// Every probed candidate is a (pattern, schedule, runtime) triple;
		// probe timings share a repeat count, so they rank against each other.
		probes = append(probes, baselines.Measurement{Schedule: cand.SS, Seconds: d.Seconds()})
		if best == nil || d < bestTime {
			best, bestTime, bestConvert = cand.SS, d, convert
		}
	}
	if best == nil {
		return nil, fmt.Errorf("core: no retrieved candidate assembles under the storage budget")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := wl.Compile(best, profile, cfg.MaxEntries)
	if err != nil {
		return nil, err
	}
	med, err := wl.Measure(plan, cfg.Repeats)
	if err != nil {
		return nil, err
	}
	return &baselines.Tuned{
		Method:         "WACO",
		KernelSeconds:  med.Seconds(),
		TuningSeconds:  tuning.Seconds(),
		ConvertSeconds: bestConvert.Seconds(),
		Schedule:       best,
		Info:           fmt.Sprintf("measured %d of top-%d", measured, k),
		Measured:       probes,
	}, nil
}

// TuneTensor is the convenience entry point: builds a workload for the
// tensor and tunes it with default measurement settings.
func (t *Tuner) TuneTensor(coo *tensor.COO) (*baselines.Tuned, error) {
	return t.TuneTensorContext(context.Background(), coo)
}

// TuneTensorContext is TuneTensor with cancellation.
func (t *Tuner) TuneTensorContext(ctx context.Context, coo *tensor.COO) (*baselines.Tuned, error) {
	wl, err := kernel.NewWorkload(t.Cfg.Alg, coo, t.Cfg.Collect.DenseN)
	if err != nil {
		return nil, err
	}
	wl.Metrics = t.KernelMetrics
	repeats := t.Cfg.Collect.Repeats
	if repeats < 5 {
		repeats = 5
	}
	return t.TuneContext(ctx, wl, t.Cfg.Collect.Profile, baselines.Config{
		Repeats:    repeats,
		MaxEntries: t.Cfg.Collect.MaxEntries,
	})
}
