package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Artifact rotation: the retrain loop never overwrites a serving artifact in
// place. A model directory holds immutable versioned files —
//
//	model.v1.waco
//	model.v2.waco
//	current            ← JSON manifest naming the live version
//
// — and promotion writes the next model.v<N>.waco, fsyncs it, then atomically
// replaces `current` (tmp + rename on the same filesystem). A crash at any
// point leaves either the old or the new manifest, both naming an intact
// artifact; readers (waco-serve startup, /admin/reload) resolve `current` and
// load exactly one sealed file. The manifest is a plain file rather than a
// symlink so it can carry the stamp and promotion metadata, and so the scheme
// works on filesystems without symlink support.
const (
	manifestName   = "current"
	manifestFormat = "waco-manifest-v1"
)

// ManifestEntry is the persisted pointer to the live artifact version.
type ManifestEntry struct {
	Format string `json:"format"`
	// Version is the live model.v<N>.waco number.
	Version int `json:"version"`
	// Stamp is the SHA-256 of the live artifact's bytes — the same value
	// LoadTuner reports as ArtifactStamp, so a serving process can verify it
	// loaded what the manifest promised.
	Stamp string `json:"stamp"`
	// PromotedUnix is the promotion wall-clock time (seconds).
	PromotedUnix int64 `json:"promoted_unix"`
	// Note records why this version was promoted (gate scores, trigger).
	Note string `json:"note,omitempty"`
}

// Manifest manages a versioned artifact directory.
type Manifest struct {
	dir string
}

// OpenManifest prepares dir as a versioned artifact directory, creating it if
// missing. An existing `current` file is validated lazily by Current.
func OpenManifest(dir string) (*Manifest, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Manifest{dir: dir}, nil
}

// Dir returns the managed directory.
func (m *Manifest) Dir() string { return m.dir }

// VersionPath returns the artifact path for a version number.
func (m *Manifest) VersionPath(v int) string {
	return filepath.Join(m.dir, fmt.Sprintf("model.v%d.waco", v))
}

// Current reads the manifest. A directory with no `current` file returns
// (nil, nil): nothing promoted yet.
func (m *Manifest) Current() (*ManifestEntry, error) {
	raw, err := os.ReadFile(filepath.Join(m.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var e ManifestEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("core: manifest %s: %w", m.dir, err)
	}
	if e.Format != manifestFormat {
		return nil, fmt.Errorf("core: manifest %s has format %q, this build reads %q", m.dir, e.Format, manifestFormat)
	}
	if e.Version < 1 {
		return nil, fmt.Errorf("core: manifest %s names version %d", m.dir, e.Version)
	}
	return &e, nil
}

// CurrentPath resolves the live artifact file, or "" when nothing has been
// promoted.
func (m *Manifest) CurrentPath() (string, error) {
	e, err := m.Current()
	if err != nil || e == nil {
		return "", err
	}
	p := m.VersionPath(e.Version)
	if _, err := os.Stat(p); err != nil {
		return "", fmt.Errorf("core: manifest names version %d but %s is unreadable: %w", e.Version, p, err)
	}
	return p, nil
}

// Versions lists the version numbers present in the directory, ascending.
func (m *Manifest) Versions() ([]int, error) {
	ents, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, de := range ents {
		var v int
		//waco:nolint errdrop -- Sscanf's error is the non-matching-name case; n == 1 already gates on it
		if n, _ := fmt.Sscanf(de.Name(), "model.v%d.waco", &v); n == 1 && v >= 1 &&
			de.Name() == fmt.Sprintf("model.v%d.waco", v) {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// NextVersion returns 1 + the highest version on disk (promoted or not).
func (m *Manifest) NextVersion() (int, error) {
	vs, err := m.Versions()
	if err != nil {
		return 0, err
	}
	if len(vs) == 0 {
		return 1, nil
	}
	return vs[len(vs)-1] + 1, nil
}

// Promote seals t as the next model.v<N>.waco and rotates `current` to it.
// The artifact is written to a temp file, fsynced, and renamed into place
// before the manifest moves — a crash between the two steps strands an
// unreferenced versioned file, never a manifest naming a torn artifact.
// Returns the promoted entry (with the new version and stamp).
func (m *Manifest) Promote(t *Tuner, note string) (*ManifestEntry, error) {
	v, err := m.NextVersion()
	if err != nil {
		return nil, err
	}
	// Seal into memory first: stamping needs the exact bytes, and a
	// serialization failure must not consume a version number's file name.
	blob, err := sealTuner(t)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(blob)
	stamp := hex.EncodeToString(sum[:])

	if err := writeFileAtomic(m.VersionPath(v), blob); err != nil {
		return nil, err
	}
	e := &ManifestEntry{
		Format:       manifestFormat,
		Version:      v,
		Stamp:        stamp,
		PromotedUnix: time.Now().Unix(),
		Note:         note,
	}
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(m.dir, manifestName), append(raw, '\n')); err != nil {
		return nil, err
	}
	return e, nil
}

// sealTuner serializes t exactly as SaveTuner would write it to disk.
func sealTuner(t *Tuner) ([]byte, error) {
	var buf sealBuffer
	if err := SaveTuner(&buf, t); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// sealBuffer is a minimal io.Writer; bytes.Buffer would work but this keeps
// the seal path free of the Buffer's growth copying for large graphs.
type sealBuffer struct{ b []byte }

func (s *sealBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// writeFileAtomic writes data to path via a same-directory temp file with an
// fsync before and after the rename, the standard crash-safe publish.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-"+filepath.Base(path)+"-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	err = func() error {
		if _, err := tmp.Write(data); err != nil {
			return err
		}
		return tmp.Sync()
	}()
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	// fsync the directory so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync() //waco:nolint errdrop -- advisory: some filesystems reject directory fsync, and the data file is already synced; the read-only Close below has nothing to flush
		_ = d.Close()
	}
	return nil
}
