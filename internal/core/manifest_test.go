package core

import (
	"os"
	"path/filepath"
	"testing"

	"waco/internal/schedule"
)

func TestManifestRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "models")
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Empty directory: nothing promoted, nothing to resolve.
	if e, err := m.Current(); err != nil || e != nil {
		t.Fatalf("fresh manifest: entry %+v, err %v", e, err)
	}
	if p, err := m.CurrentPath(); err != nil || p != "" {
		t.Fatalf("fresh manifest path %q, err %v", p, err)
	}

	cfg := quickConfig(schedule.SpMM)
	tuner, _, err := Build(testCorpus(4), cfg)
	if err != nil {
		t.Fatal(err)
	}

	e1, err := m.Promote(tuner, "initial seal")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Version != 1 || e1.Stamp == "" {
		t.Fatalf("first promotion: %+v", e1)
	}

	// The manifest stamp must match what LoadTuner computes from the file —
	// the cross-check serving uses to verify it loaded the promised bytes.
	p, err := m.CurrentPath()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTunerFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ArtifactStamp != e1.Stamp {
		t.Fatalf("manifest stamp %s, loaded artifact stamp %s", e1.Stamp, loaded.ArtifactStamp)
	}

	// Second promotion rotates to v2 and leaves v1 intact.
	e2, err := m.Promote(tuner, "retrain")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Version != 2 {
		t.Fatalf("second promotion got version %d", e2.Version)
	}
	vs, err := m.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 2 {
		t.Fatalf("versions on disk: %v", vs)
	}
	cur, err := m.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur.Version != 2 || cur.Note != "retrain" {
		t.Fatalf("current after rotation: %+v", cur)
	}
	if _, err := os.Stat(m.VersionPath(1)); err != nil {
		t.Fatalf("v1 removed by rotation: %v", err)
	}

	// Reopening the directory sees the same state.
	m2, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := m2.NextVersion()
	if err != nil {
		t.Fatal(err)
	}
	if nv != 3 {
		t.Fatalf("next version after reopen: %d", nv)
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Garbage manifest: loud error, not a silent empty state.
	if err := os.WriteFile(filepath.Join(dir, "current"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Current(); err == nil {
		t.Fatal("corrupt manifest read without error")
	}
	// Wrong format marker.
	if err := os.WriteFile(filepath.Join(dir, "current"), []byte(`{"format":"other","version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Current(); err == nil {
		t.Fatal("foreign-format manifest read without error")
	}
	// Manifest naming a missing artifact file.
	if err := os.WriteFile(filepath.Join(dir, "current"),
		[]byte(`{"format":"waco-manifest-v1","version":7,"stamp":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CurrentPath(); err == nil {
		t.Fatal("manifest naming a missing version resolved without error")
	}
	// Stray files are not mistaken for versions.
	for _, name := range []string{"model.vX.waco", "model.v2.waco.bak", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := m.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("stray files counted as versions: %v", vs)
	}
}
