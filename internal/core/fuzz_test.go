package core

import (
	"bytes"
	"math/rand"
	"testing"

	"waco/internal/costmodel"
	"waco/internal/schedule"
	"waco/internal/search"
)

// sealedTunerBytes builds the smallest valid artifact: an untrained model
// over a handful of sampled schedules (training is irrelevant to the
// serialization surface under test).
func sealedTunerBytes(f *testing.F) []byte {
	f.Helper()
	cfg := quickConfig(schedule.SpMM)
	model, err := costmodel.New(cfg.Collect.Space, cfg.Model)
	if err != nil {
		f.Fatal(err)
	}
	sp := cfg.Collect.Space
	rng := rand.New(rand.NewSource(5))
	var scheds []*schedule.SuperSchedule
	for i := 0; i < 12; i++ {
		scheds = append(scheds, sp.Sample(rng))
	}
	ix, err := search.BuildIndex(model, scheds, cfg.HNSW)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTuner(&buf, &Tuner{Cfg: cfg, Model: model, Index: ix}); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadTuner feeds LoadTuner corrupt, truncated, and bit-flipped sealed
// artifacts: it must either return a working tuner or an error, never
// panic. The seed corpus covers the interesting prefixes (bad magic, bad
// version, truncated header, truncated payload) plus a pristine artifact so
// mutations explore the gob payload too.
func FuzzLoadTuner(f *testing.F) {
	valid := sealedTunerBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])  // magic only
	f.Add(valid[:10]) // magic + partial version
	f.Add([]byte("WACOTUNRtrailing-garbage"))
	f.Add([]byte("NOTMAGIC"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0xff
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		tuner, err := LoadTuner(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted artifact must uphold the invariants serving relies on.
		if tuner.Model == nil || tuner.Index == nil {
			t.Fatal("LoadTuner accepted an artifact without model or index")
		}
		if len(tuner.Index.Schedules) != tuner.Index.Graph.Len() {
			t.Fatalf("LoadTuner accepted %d schedules over a %d-node graph",
				len(tuner.Index.Schedules), tuner.Index.Graph.Len())
		}
	})
}
