package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"testing"
	"time"

	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

func TestArtifactRoundTrip(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, _, err := Build(testCorpus(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tuner.BuildSeconds <= 0 {
		t.Fatal("BuildSeconds not recorded")
	}

	var buf bytes.Buffer
	if err := SaveTuner(&buf, tuner); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTuner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.BuildSeconds != tuner.BuildSeconds {
		t.Fatalf("BuildSeconds %v != %v", loaded.BuildSeconds, tuner.BuildSeconds)
	}
	if len(loaded.Index.Schedules) != len(tuner.Index.Schedules) {
		t.Fatalf("loaded %d schedules, want %d", len(loaded.Index.Schedules), len(tuner.Index.Schedules))
	}

	// The ANNS retrieval must be identical: same embeddings, same graph, same
	// model weights, so the same candidates in the same order.
	rng := rand.New(rand.NewSource(42))
	coo := generate.Uniform(rng, 96, 96, 1200)
	p1 := costmodel.NewPattern(coo)
	p2 := costmodel.NewPattern(coo)
	r1, err := tuner.Index.Search(context.Background(), p1, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Index.Search(context.Background(), p2, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Candidates) != len(r2.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(r1.Candidates), len(r2.Candidates))
	}
	for i := range r1.Candidates {
		if r1.Candidates[i].SS.String() != r2.Candidates[i].SS.String() {
			t.Fatalf("candidate %d differs:\n  %s\n  %s", i,
				r1.Candidates[i].SS, r2.Candidates[i].SS)
		}
		if r1.Candidates[i].Cost != r2.Candidates[i].Cost {
			t.Fatalf("candidate %d cost differs: %v vs %v", i,
				r1.Candidates[i].Cost, r2.Candidates[i].Cost)
		}
	}

	// And the loaded tuner must tune end to end.
	tuned, err := loaded.TuneTensor(coo)
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestArtifactQuantizedRoundTrip: a tuner carrying a calibrated int8 head
// seals as a version-2 artifact, reloads with the head intact, and the
// reloaded head serves bit-identical quantized predictions. A tuner without
// one keeps writing the version-1 envelope old builds read.
func TestArtifactQuantizedRoundTrip(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, ds, err := Build(testCorpus(5), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// No quantized head: the envelope stays at version 1 for old readers.
	var plain bytes.Buffer
	if err := SaveTuner(&plain, tuner); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(plain.Bytes()[8:12]); v != 1 {
		t.Fatalf("artifact without quantized head sealed as version %d, want 1", v)
	}

	samples := make([]*tensor.COO, 0, len(ds.Entries))
	for _, e := range ds.Entries {
		samples = append(samples, e.COO)
	}
	if err := tuner.Quantize(samples); err != nil {
		t.Fatal(err)
	}
	if tuner.Quantized == nil {
		t.Fatal("Quantize left no head on the tuner")
	}

	var buf bytes.Buffer
	if err := SaveTuner(&buf, tuner); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[8:12]); v != 2 {
		t.Fatalf("artifact with quantized head sealed as version %d, want 2", v)
	}
	loaded, err := LoadTuner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Quantized == nil {
		t.Fatal("reloaded artifact lost its quantized head")
	}

	// Same weights, same scales, same int8 arithmetic: searches on the
	// quantized path must agree bit for bit across the round trip.
	if err := tuner.Index.EnableQuantized(tuner.Quantized); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Index.EnableQuantized(loaded.Quantized); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	coo := generate.Uniform(rng, 96, 96, 1200)
	r1, err := tuner.Index.Search(context.Background(), costmodel.NewPattern(coo), 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Index.Search(context.Background(), costmodel.NewPattern(coo), 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Candidates) != len(r2.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(r1.Candidates), len(r2.Candidates))
	}
	for i := range r1.Candidates {
		if r1.Candidates[i].SS.String() != r2.Candidates[i].SS.String() ||
			r1.Candidates[i].Cost != r2.Candidates[i].Cost {
			t.Fatalf("quantized candidate %d differs across round trip:\n  %s %v\n  %s %v", i,
				r1.Candidates[i].SS, r1.Candidates[i].Cost, r2.Candidates[i].SS, r2.Candidates[i].Cost)
		}
	}
}

// TestQuantizeRejectsEmptyCalibration: sealing a head calibrated on nothing
// must fail rather than produce garbage scales.
func TestQuantizeRejectsEmptyCalibration(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, _, err := Build(testCorpus(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tuner.Quantize(nil); err == nil {
		t.Fatal("Quantize accepted an empty calibration set")
	}
	if tuner.Quantized != nil {
		t.Fatal("failed Quantize left a head behind")
	}
}

func TestLoadTunerRejectsBadInput(t *testing.T) {
	if _, err := LoadTuner(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := LoadTuner(bytes.NewReader([]byte("JUNKJUNKJUNKJUNK"))); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestTuneContextCancellation(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, _, err := Build(testCorpus(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(13))
	coo := generate.Uniform(rng, 96, 96, 1000)
	if _, err := tuner.TuneTensorContext(ctx, coo); err == nil {
		t.Fatal("cancelled tune returned no error")
	}

	// An ample deadline must not interfere.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := tuner.TuneTensorContext(ctx2, coo); err != nil {
		t.Fatal(err)
	}
}
