package core

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"time"

	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/schedule"
)

func TestArtifactRoundTrip(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, _, err := Build(testCorpus(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tuner.BuildSeconds <= 0 {
		t.Fatal("BuildSeconds not recorded")
	}

	var buf bytes.Buffer
	if err := SaveTuner(&buf, tuner); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTuner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.BuildSeconds != tuner.BuildSeconds {
		t.Fatalf("BuildSeconds %v != %v", loaded.BuildSeconds, tuner.BuildSeconds)
	}
	if len(loaded.Index.Schedules) != len(tuner.Index.Schedules) {
		t.Fatalf("loaded %d schedules, want %d", len(loaded.Index.Schedules), len(tuner.Index.Schedules))
	}

	// The ANNS retrieval must be identical: same embeddings, same graph, same
	// model weights, so the same candidates in the same order.
	rng := rand.New(rand.NewSource(42))
	coo := generate.Uniform(rng, 96, 96, 1200)
	p1 := costmodel.NewPattern(coo)
	p2 := costmodel.NewPattern(coo)
	r1, err := tuner.Index.Search(context.Background(), p1, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Index.Search(context.Background(), p2, 4, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Candidates) != len(r2.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(r1.Candidates), len(r2.Candidates))
	}
	for i := range r1.Candidates {
		if r1.Candidates[i].SS.String() != r2.Candidates[i].SS.String() {
			t.Fatalf("candidate %d differs:\n  %s\n  %s", i,
				r1.Candidates[i].SS, r2.Candidates[i].SS)
		}
		if r1.Candidates[i].Cost != r2.Candidates[i].Cost {
			t.Fatalf("candidate %d cost differs: %v vs %v", i,
				r1.Candidates[i].Cost, r2.Candidates[i].Cost)
		}
	}

	// And the loaded tuner must tune end to end.
	tuned, err := loaded.TuneTensor(coo)
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTunerRejectsBadInput(t *testing.T) {
	if _, err := LoadTuner(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := LoadTuner(bytes.NewReader([]byte("JUNKJUNKJUNKJUNK"))); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestTuneContextCancellation(t *testing.T) {
	cfg := quickConfig(schedule.SpMM)
	tuner, _, err := Build(testCorpus(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(13))
	coo := generate.Uniform(rng, 96, 96, 1000)
	if _, err := tuner.TuneTensorContext(ctx, coo); err == nil {
		t.Fatal("cancelled tune returned no error")
	}

	// An ample deadline must not interfere.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := tuner.TuneTensorContext(ctx2, coo); err != nil {
		t.Fatal(err)
	}
}
