package asymcost

import (
	"math"
	"testing"

	"waco/internal/format"
	"waco/internal/schedule"
)

// stats for a 4096 x 4096 matrix with 40k nonzeros (density ~0.24%).
func sparseStats() Stats {
	return Stats{Dims: []int{4096, 4096}, NNZ: 40000}
}

func csrSerial() *schedule.SuperSchedule {
	return schedule.ConcordantSchedule(schedule.SpMM, format.CSR(), 1, 32)
}

// TestConcordantCompressedBoundedByNNZ: a concordant CSR traversal touches
// only stored coordinates, so its bound tracks nnz, far below the dense
// iteration space.
func TestConcordantCompressedBoundedByNNZ(t *testing.T) {
	st := sparseStats()
	csr := Precompute(csrSerial()).Bound(st)
	dense := Precompute(schedule.ConcordantSchedule(schedule.SpMM, format.Dense(2), 1, 32)).Bound(st)
	logz := math.Log2(float64(st.NNZ))
	logDense := math.Log2(float64(st.Dims[0])) + math.Log2(float64(st.Dims[1]))
	if csr > logz+1 {
		t.Fatalf("CSR bound %.1f, want <= log2(nnz)+1 = %.1f", csr, logz+1)
	}
	if dense < logDense-1 {
		t.Fatalf("dense bound %.1f, want >= %.1f", dense, logDense-1)
	}
	if csr >= dense {
		t.Fatalf("CSR bound %.1f not below dense bound %.1f", csr, dense)
	}
}

// TestDiscordantCompressedPaysLocate: traversing CSC storage row-major makes
// the compressed column level discordant — the bound must exceed both the
// concordant CSC traversal and the dense extent (locate multiplier).
func TestDiscordantCompressedPaysLocate(t *testing.T) {
	st := sparseStats()
	csc := format.CSC()
	concordant := schedule.ConcordantSchedule(schedule.SpMM, csc, 1, 32)
	discordant := concordant.Clone()
	// Swap the two outer loops: visit the compressed row level before the
	// uncompressed column root it is stored under.
	discordant.ComputeOrder[0], discordant.ComputeOrder[1] = discordant.ComputeOrder[1], discordant.ComputeOrder[0]
	discordant.Parallel = discordant.ComputeOrder[0]
	cb := Precompute(concordant).Bound(st)
	db := Precompute(discordant).Bound(st)
	if db <= cb {
		t.Fatalf("discordant bound %.1f not above concordant %.1f", db, cb)
	}
	logDense := math.Log2(float64(st.Dims[0])) + math.Log2(float64(st.Dims[1]))
	if db <= logDense {
		t.Fatalf("discordant bound %.1f missing locate penalty over dense extent %.1f", db, logDense)
	}
}

// TestParallelSpeedupAndOverhead: threads divide large bounds but cannot pay
// off on tiny ones, where dispatch/sync overhead dominates.
func TestParallelSpeedupAndOverhead(t *testing.T) {
	st := sparseStats()
	serial := Precompute(schedule.ConcordantSchedule(schedule.SpMM, format.Dense(2), 1, 32))
	par := Precompute(schedule.ConcordantSchedule(schedule.SpMM, format.Dense(2), 16, 32))
	sb, pb := serial.Bound(st), par.Bound(st)
	if pb >= sb {
		t.Fatalf("parallel bound %.1f not below serial %.1f on large work", pb, sb)
	}
	if sb-pb > math.Log2(16)+0.1 {
		t.Fatalf("parallel bound %.1f claims superlinear speedup over %.1f", pb, sb)
	}
	tiny := Stats{Dims: []int{4, 4}, NNZ: 4}
	st2, pt2 := serial.Bound(tiny), par.Bound(tiny)
	if pt2 <= st2 {
		t.Fatalf("parallel bound %.1f on tiny work not above serial %.1f (missing overhead)", pt2, st2)
	}
}

// TestBoundMonotoneInNNZ: more nonzeros never lower a bound.
func TestBoundMonotoneInNNZ(t *testing.T) {
	terms := Precompute(csrSerial())
	prev := math.Inf(-1)
	for _, z := range []int64{1, 100, 10000, 1 << 20} {
		b := terms.Bound(Stats{Dims: []int{4096, 4096}, NNZ: z})
		if b < prev {
			t.Fatalf("bound dropped from %.2f to %.2f as nnz rose to %d", prev, b, z)
		}
		prev = b
	}
}

// TestSplitsShrinkOuterExtent: splitting a mode moves extent from the outer
// to the inner level without inflating the dense product.
func TestSplitsShrinkOuterExtent(t *testing.T) {
	st := sparseStats()
	f := format.Dense(2)
	unsplit := Precompute(schedule.ConcordantSchedule(schedule.SpMM, f, 1, 32)).Bound(st)
	f2 := format.Dense(2)
	f2.Splits[0] = 16
	split := Precompute(schedule.ConcordantSchedule(schedule.SpMM, f2, 1, 32)).Bound(st)
	if math.Abs(split-unsplit) > 0.01 {
		t.Fatalf("splitting a dense mode changed the bound: %.3f vs %.3f", split, unsplit)
	}
}

// TestBoundAllocFree: the per-candidate fold must not allocate (it runs
// inside the query path's batch callback).
func TestBoundAllocFree(t *testing.T) {
	terms := Precompute(csrSerial())
	st := sparseStats()
	var sink float64
	allocs := testing.AllocsPerRun(100, func() { sink += terms.Bound(st) })
	if allocs != 0 {
		t.Fatalf("Bound allocated %.1f times per run", allocs)
	}
	_ = sink
}
