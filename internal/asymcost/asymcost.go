// Package asymcost computes closed-form asymptotic cost bounds for sparse
// tensor programs, after "An Asymptotic Cost Model for Autoscheduling Sparse
// Tensor Programs" (Ahrens & Kjolstad): the run time of a TACO-style loop
// nest is bounded by the number of iterations its loops can touch, times a
// locate multiplier for every compressed level the traversal accesses out of
// storage order, plus parallel dispatch/synchronization overhead.
//
// The model is deliberately crude — a handful of additions in log2 space per
// candidate — because its job on the query path is not prediction but
// domination pruning: a SuperSchedule whose bound exceeds the best bound
// seen so far by a wide margin (orders of magnitude of asymptotic work)
// cannot plausibly win, so the neural predictor head never needs to score
// it. The split mirrors the inference path's own: Precompute digests the
// pattern-independent structure of a schedule once at index-build time, and
// Terms.Bound folds in a pattern's shape/nnz statistics in O(levels) flops
// with zero allocations.
package asymcost

import (
	"math"

	"waco/internal/format"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// Stats is the per-pattern input of the bound: mode extents and the stored
// nonzero count. The zero value is invalid; use FromCOO or fill both fields.
type Stats struct {
	Dims []int // extent of each sparse-operand mode
	NNZ  int64 // stored nonzeros
}

// FromCOO digests a sparse tensor into bound inputs.
func FromCOO(c *tensor.COO) Stats {
	return Stats{Dims: c.Dims, NNZ: int64(c.NNZ())}
}

// step is one loop of the compute order with its storage facts resolved.
type step struct {
	mode       int
	inner      bool
	lsplit     float64 // log2 of the mode's split size
	compressed bool    // the (mode, part) level is stored Compressed
	concordant bool    // every level stored above it has already been visited
}

// Terms is the pattern-independent digest of one SuperSchedule, produced by
// Precompute and consumed by Bound. Terms are plain values; copying is fine.
type Terms struct {
	steps    []step
	lthreads float64 // log2(Threads); 0 when serial
	lchunk   float64 // log2(Chunk)
	parallel bool
}

// Precompute digests a schedule's loop structure. It never fails: malformed
// schedules (which BuildIndex already validates away) just yield pessimistic
// bounds. The result is immutable and safe for concurrent Bound calls.
func Precompute(ss *schedule.SuperSchedule) Terms {
	f := ss.AFormat
	// levelPos[(mode, inner)] = position in the storage hierarchy.
	type mp struct {
		mode  int
		inner bool
	}
	levelPos := make(map[mp]int, len(f.Levels))
	for i, l := range f.Levels {
		levelPos[mp{l.Mode, l.Inner}] = i
	}
	t := Terms{steps: make([]step, 0, len(ss.ComputeOrder))}
	visited := make([]bool, len(f.Levels))
	for _, v := range ss.ComputeOrder {
		s := step{mode: v.Mode, inner: v.Inner}
		if v.Mode >= 0 && v.Mode < len(f.Splits) {
			s.lsplit = math.Log2(float64(f.Splits[v.Mode]))
		}
		if pos, ok := levelPos[mp{v.Mode, v.Inner}]; ok {
			s.compressed = f.Levels[pos].Kind == format.Compressed
			// Concordant iff every ancestor level in the storage hierarchy
			// was already traversed: then the compressed level's stored
			// coordinates can be enumerated segment by segment. Otherwise
			// each visit must locate its coordinate (binary search).
			s.concordant = true
			for a := 0; a < pos; a++ {
				if !visited[a] {
					s.concordant = false
					break
				}
			}
			visited[pos] = true
		}
		t.steps = append(t.steps, s)
	}
	if ss.Threads > 1 {
		t.parallel = true
		t.lthreads = math.Log2(float64(ss.Threads))
		if ss.Chunk > 0 {
			t.lchunk = math.Log2(float64(ss.Chunk))
		}
	}
	return t
}

// Per-element constant costs in log2 space: a discordant compressed access
// pays a binary search (the log factor is folded in per level), parallel
// execution pays per-chunk dispatch and per-thread synchronization. The
// constants only need to be in the right ballpark — Bound feeds a margin
// comparison, not a predictor.
const (
	dispatchCost = 6.0 // ~64 ops to dispatch one dynamic chunk
	syncCost     = 8.0 // ~256 ops per thread join/reduction merge
)

// Bound returns log2 of the asymptotic operation bound for the schedule
// digest against a pattern's statistics. Lower is better; differences are
// orders of magnitude of asymptotic work. Allocation-free.
//
//waco:allocfree
func (t Terms) Bound(st Stats) float64 {
	nnz := st.NNZ
	if nnz < 1 {
		nnz = 1
	}
	logz := math.Log2(float64(nnz))
	work := 0.0   // log2 of the iteration count so far
	locate := 0.0 // log2 of the accumulated locate multiplier
	for _, s := range t.steps {
		var le float64 // log2 of this level's coordinate extent
		if s.inner {
			le = s.lsplit
		} else if s.mode >= 0 && s.mode < len(st.Dims) && st.Dims[s.mode] > 0 {
			le = math.Log2(float64(st.Dims[s.mode])) - s.lsplit
			if le < 0 {
				le = 0
			}
		}
		if s.compressed && s.concordant {
			// Enumerating a concordant compressed level caps the loop nest at
			// the stored nonzeros: iterations cannot exceed coordinate paths.
			work += le
			if work > logz {
				work = logz
			}
		} else {
			work += le
			if s.compressed {
				// Discordant compressed access: every iteration binary-searches
				// a segment of up to 2^le coordinates — a log2(extent) = le
				// comparison multiplier (at least 1).
				locate += math.Log2(1 + le)
			}
		}
	}
	total := work + locate
	if t.parallel {
		body := total - t.lthreads
		// Dispatch: one per dynamic chunk. Chunks divide the outermost loop,
		// whose log-extent is the first step's.
		var louter float64
		if len(t.steps) > 0 {
			s := t.steps[0]
			if s.inner {
				louter = s.lsplit
			} else if s.mode >= 0 && s.mode < len(st.Dims) && st.Dims[s.mode] > 0 {
				louter = math.Log2(float64(st.Dims[s.mode])) - s.lsplit
				if louter < 0 {
					louter = 0
				}
			}
		}
		dispatch := louter - t.lchunk
		if dispatch < 0 {
			dispatch = 0
		}
		dispatch += dispatchCost
		sync := t.lthreads + syncCost
		total = logSum(logSum(body, dispatch), sync)
	}
	return total
}

// logSum returns log2(2^a + 2^b) without leaving log space.
//
//waco:allocfree
func logSum(a, b float64) float64 {
	if b > a {
		a, b = b, a
	}
	return a + math.Log2(1+math.Exp2(b-a))
}
