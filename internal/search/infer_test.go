package search

import (
	"context"
	"testing"
	"time"

	"waco/internal/costmodel"
	"waco/internal/hnsw"
	"waco/internal/nn"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
)

func testModelKind(t testing.TB, kind costmodel.ExtractorKind) *costmodel.Model {
	t.Helper()
	cfg := costmodel.Config{
		Extractor: kind,
		ConvCfg:   sparseconv.Config{Dim: 2, Channels: 4, Depth: 3, FirstKernel: 3, OutDim: 12},
		EmbDim:    12,
		HeadDims:  []int{16},
		Seed:      1,
	}
	m, err := costmodel.New(schedule.DefaultSpace(schedule.SpMM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// searchTape is the historical tape-path query, kept verbatim as the parity
// oracle and benchmark baseline: feature extraction through the autodiff
// layers with a nil tape, a fresh map-backed memo, per-candidate PredictWith
// calls through Graph.Search, and candidate assembly from the memo. The
// forward-only Index.Search must reproduce its results bit for bit.
func searchTape(ix *Index, p *costmodel.Pattern, k, ef int) (*Result, error) {
	t0 := time.Now()
	feat, err := ix.Model.Extractor.Extract(nil, p)
	if err != nil {
		return nil, err
	}
	res := &Result{FeatureTime: time.Since(t0)}
	t1 := time.Now()
	best := inf()
	costs := make(map[int]float64, ef)
	dist := func(id int) float64 {
		if c, ok := costs[id]; ok {
			return c
		}
		e0 := time.Now()
		emb := nn.NewGrad(ix.Graph.Vector(id))
		c := float64(ix.Model.PredictWith(nil, feat, emb).V[0])
		res.EvalTime += time.Since(e0)
		costs[id] = c
		if c < best {
			best = c
		}
		res.Trace = append(res.Trace, best)
		return c
	}
	ids, _ := ix.Graph.Search(dist, k, ef)
	res.SearchTime = time.Since(t1)
	res.Evals = len(costs)
	for _, id := range ids {
		res.Candidates = append(res.Candidates, Candidate{SS: ix.Schedules[id], Cost: costs[id]})
	}
	return res, nil
}

// TestSearchForwardMatchesTape is the end-to-end parity pin for the query
// path: for every extractor kind, the forward-only Search retrieves the same
// schedules with bit-identical costs, the same evaluation count, and the same
// best-so-far trace as the tape-path reference.
func TestSearchForwardMatchesTape(t *testing.T) {
	for _, kind := range costmodel.ExtractorKinds {
		t.Run(string(kind), func(t *testing.T) {
			m := testModelKind(t, kind)
			ix, err := BuildIndex(m, sampleSchedules(200, 41), hnsw.Config{M: 8, EfConstruction: 48, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 3; trial++ {
				p := testPattern(int64(50 + trial))
				want, err := searchTape(ix, p, 8, 48)
				if err != nil {
					t.Fatal(err)
				}
				// Fresh pattern wrapper: both paths start from raw coordinates.
				got, err := ix.Search(context.Background(), testPattern(int64(50+trial)), 8, 48)
				if err != nil {
					t.Fatal(err)
				}
				if got.Evals != want.Evals {
					t.Fatalf("trial %d: forward path ran %d evals, tape path %d", trial, got.Evals, want.Evals)
				}
				if len(got.Candidates) != len(want.Candidates) {
					t.Fatalf("trial %d: %d candidates vs %d", trial, len(got.Candidates), len(want.Candidates))
				}
				for i := range got.Candidates {
					if got.Candidates[i].SS != want.Candidates[i].SS {
						t.Fatalf("trial %d: candidate %d is %v, tape path retrieved %v",
							trial, i, got.Candidates[i].SS, want.Candidates[i].SS)
					}
					if got.Candidates[i].Cost != want.Candidates[i].Cost {
						t.Fatalf("trial %d: candidate %d cost %v, tape path %v",
							trial, i, got.Candidates[i].Cost, want.Candidates[i].Cost)
					}
				}
				if len(got.Trace) != len(want.Trace) {
					t.Fatalf("trial %d: trace length %d vs %d", trial, len(got.Trace), len(want.Trace))
				}
				for i := range got.Trace {
					if got.Trace[i] != want.Trace[i] {
						t.Fatalf("trial %d: trace[%d] = %v, tape path %v", trial, i, got.Trace[i], want.Trace[i])
					}
				}
			}
		})
	}
}

// TestCandidateCostFallbackCounted pins the defensive re-evaluation branch:
// when candidate assembly has to score an id the traversal never saw, the
// evaluation must land in both Evals and EvalTime (the historical code
// counted it but left it out of the time breakdown).
func TestCandidateCostFallbackCounted(t *testing.T) {
	m := testModel(t)
	ix, err := BuildIndex(m, sampleSchedules(60, 61), hnsw.Config{M: 8, EfConstruction: 48, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	qs := ix.getScratch()
	defer ix.putScratch(qs)
	feat, err := ix.Model.ExtractInfer(qs.b, testPattern(63))
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{}
	before := m.HeadEvals()
	c := ix.candidateCost(qs, feat, 7, res)
	if res.Evals != 1 {
		t.Fatalf("fallback eval counted %d evals, want 1", res.Evals)
	}
	if res.EvalTime <= 0 {
		t.Fatal("fallback eval left EvalTime zero: the defensive branch must be timed like any other evaluation")
	}
	if got := m.HeadEvals() - before; got != 1 {
		t.Fatalf("fallback ran %d head evals, want 1", got)
	}
	// Second lookup is memoized: no new eval, no new time.
	evalTime := res.EvalTime
	if again := ix.candidateCost(qs, feat, 7, res); again != c {
		t.Fatalf("memoized cost %v, first evaluation %v", again, c)
	}
	if res.Evals != 1 || res.EvalTime != evalTime {
		t.Fatal("memoized candidateCost must not count or time a new evaluation")
	}
}

// TestSearchSteadyStateAllocsBounded keeps the query path honest: after
// warmup, a whole Search — feature extraction, traversal, hundreds of head
// evaluations, candidate assembly — allocates only the Result it returns
// (result struct, candidate slice, trace) plus pool bookkeeping, not
// per-evaluation garbage.
func TestSearchSteadyStateAllocsBounded(t *testing.T) {
	m := testModelKind(t, costmodel.KindWACONet)
	ix, err := BuildIndex(m, sampleSchedules(300, 71), hnsw.Config{M: 8, EfConstruction: 48, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	p := testPattern(73)
	query := func() {
		if _, err := ix.Search(context.Background(), p, 10, 64); err != nil {
			t.Fatal(err)
		}
	}
	query() // warmup: pools, arena, geometry caches
	allocs := testing.AllocsPerRun(10, query)
	// The tape path allocated several per head evaluation (hundreds per
	// query); the forward path's budget covers the returned Result and the
	// trace's growth reallocations only.
	if allocs > 32 {
		t.Fatalf("steady-state Search allocates %.0f times per query, want <= 32", allocs)
	}
}
