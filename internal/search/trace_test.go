package search

import (
	"context"
	"testing"
	"time"

	"waco/internal/schedule"
)

func TestEvalFractionEdgeCases(t *testing.T) {
	tr := &Trace{}
	if tr.EvalFraction() != 0 {
		t.Fatal("zero total should give zero fraction")
	}
	tr.Total = time.Second
	tr.EvalTime = 250 * time.Millisecond
	if f := tr.EvalFraction(); f < 0.24 || f > 0.26 {
		t.Fatalf("fraction %g", f)
	}
}

func TestStrategyNames(t *testing.T) {
	for _, c := range []struct {
		s    Strategy
		want string
	}{
		{RandomSearch{}, "Random"},
		{Annealing{}, "Annealing"},
		{TPE{}, "TPE"},
		{ANNSStrategy{}, "ANNS"},
	} {
		if c.s.Name() != c.want {
			t.Fatalf("name %q, want %q", c.s.Name(), c.want)
		}
	}
}

func TestSimilarityCountsMatches(t *testing.T) {
	sp := schedule.DefaultSpace(schedule.SpMM)
	ss := schedule.DefaultSchedule(schedule.SpMM, 2)
	if got := similarity(sp, ss, ss); got != len(sp.CatSizes()) {
		t.Fatalf("self-similarity %d, want %d", got, len(sp.CatSizes()))
	}
	other := ss.Clone()
	other.Chunk = 256
	if got := similarity(sp, ss, other); got >= len(sp.CatSizes()) {
		t.Fatal("different chunk should reduce similarity")
	}
}

func TestTPEDefaults(t *testing.T) {
	// Gamma and NumCands out of range fall back to sane defaults: the run
	// must still complete and respect the budget.
	m := testModel(t)
	p := testPattern(99)
	ev, err := NewEvaluator(m, p)
	if err != nil {
		t.Fatal(err)
	}
	tr := TPE{Gamma: 7, NumCands: -1}.Run(context.Background(), ev, schedule.DefaultSpace(schedule.SpMM), 40, 3)
	if tr.Evals != 40 {
		t.Fatalf("evals %d", tr.Evals)
	}
}

func TestAnnealingRestartPath(t *testing.T) {
	// A budget above the restart interval (200) exercises the restart
	// branch.
	m := testModel(t)
	p := testPattern(98)
	ev, err := NewEvaluator(m, p)
	if err != nil {
		t.Fatal(err)
	}
	tr := Annealing{InitTemp: 0.5}.Run(context.Background(), ev, schedule.DefaultSpace(schedule.SpMM), 250, 4)
	if tr.Evals != 250 || len(tr.Best) != 250 {
		t.Fatalf("evals %d traces %d", tr.Evals, len(tr.Best))
	}
}
