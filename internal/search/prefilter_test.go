package search

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"waco/internal/costmodel"
	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/hnsw"
	"waco/internal/schedule"
)

// prefilterCorpus mixes CSR-backed schedules (asymptotic work bounded by nnz)
// with dense-format schedules (full dense iteration space) across thread and
// chunk choices, so on a very sparse matrix their asymptotic bounds separate
// by orders of magnitude.
func prefilterCorpus() []*schedule.SuperSchedule {
	var out []*schedule.SuperSchedule
	for _, threads := range []int{1, 2, 4, 8} {
		for _, chunk := range []int{8, 16, 32, 64} {
			out = append(out, schedule.ConcordantSchedule(schedule.SpMM, format.CSR(), threads, chunk))
			out = append(out, schedule.ConcordantSchedule(schedule.SpMM, format.Dense(2), threads, chunk))
		}
	}
	return out
}

// sparsePattern is sparse enough (600 of 65536 cells) that dense-format
// bounds exceed CSR bounds by far more than the test margin.
func sparsePattern(seed int64) *costmodel.Pattern {
	rng := rand.New(rand.NewSource(seed))
	return costmodel.NewPattern(generate.Uniform(rng, 256, 256, 600))
}

// TestPrefilterPrunesDominatedCandidates: with the pre-filter on, dominated
// candidates are skipped (Pruned > 0, fewer head evals), yet the returned
// candidates still carry real predicted costs in sorted order — never the
// internal pruning sentinel.
func TestPrefilterPrunesDominatedCandidates(t *testing.T) {
	m := testModel(t)
	ix, err := BuildIndex(m, prefilterCorpus(), hnsw.Config{M: 8, EfConstruction: 48, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	p := sparsePattern(22)
	const k, ef = 5, 48

	base, err := ix.Search(context.Background(), p, k, ef)
	if err != nil {
		t.Fatal(err)
	}
	if base.Pruned != 0 || base.PrefilterTime != 0 {
		t.Fatalf("pre-filter disabled but Pruned=%d PrefilterTime=%v", base.Pruned, base.PrefilterTime)
	}

	ix.EnablePrefilter(2.0)
	if got := ix.PrefilterMargin(); got != 2.0 {
		t.Fatalf("PrefilterMargin = %v, want 2", got)
	}
	res, err := ix.Search(context.Background(), p, k, ef)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 {
		t.Fatal("pre-filter enabled on a corpus with order-of-magnitude bound gaps but pruned nothing")
	}
	if res.Evals >= base.Evals {
		t.Fatalf("pre-filtered query ran %d head evals, unfiltered ran %d", res.Evals, base.Evals)
	}
	if res.Evals+res.Pruned > len(ix.Schedules) {
		t.Fatalf("evals %d + pruned %d exceed corpus size %d", res.Evals, res.Pruned, len(ix.Schedules))
	}
	if len(res.Candidates) != k {
		t.Fatalf("got %d candidates, want %d", len(res.Candidates), k)
	}
	for i, c := range res.Candidates {
		if !(c.Cost < 1e280) {
			t.Fatalf("candidate %d cost %v is a pruning sentinel, not a prediction", i, c.Cost)
		}
		if i > 0 && res.Candidates[i-1].Cost > c.Cost {
			t.Fatal("candidates not sorted by predicted cost")
		}
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1] {
			t.Fatal("trace not monotone")
		}
	}

	// A margin wider than any bound gap must prune nothing and reproduce the
	// unfiltered evaluation count exactly.
	ix.EnablePrefilter(1e9)
	loose, err := ix.Search(context.Background(), p, k, ef)
	if err != nil {
		t.Fatal(err)
	}
	if loose.Pruned != 0 {
		t.Fatalf("margin 1e9 pruned %d candidates", loose.Pruned)
	}
	if loose.Evals != base.Evals {
		t.Fatalf("loose-margin query ran %d evals, unfiltered ran %d", loose.Evals, base.Evals)
	}

	// Non-positive margin disables the filter and frees the digests.
	ix.EnablePrefilter(0)
	if ix.PrefilterMargin() != 0 {
		t.Fatal("EnablePrefilter(0) did not disable")
	}
	off, err := ix.Search(context.Background(), p, k, ef)
	if err != nil {
		t.Fatal(err)
	}
	if off.Pruned != 0 || off.PrefilterTime != 0 {
		t.Fatalf("disabled pre-filter still reported Pruned=%d PrefilterTime=%v", off.Pruned, off.PrefilterTime)
	}
}

// calibratedHead quantizes the index's model head using the query feature and
// the index's own stored embeddings as the calibration set.
func calibratedHead(t testing.TB, ix *Index, p *costmodel.Pattern) *costmodel.QuantizedHead {
	t.Helper()
	b := costmodel.NewInferBuffers()
	b.Reset()
	feat, err := ix.Model.ExtractInfer(b, p)
	if err != nil {
		t.Fatal(err)
	}
	feats := [][]float32{append([]float32(nil), feat...)}
	embs := make([][]float32, ix.Graph.Len())
	for id := range embs {
		embs[id] = ix.Graph.Vector(id)
	}
	q, err := costmodel.QuantizeHead(ix.Model, feats, embs)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestQuantizedSearchPreservesRanking: searching on the int8 path succeeds,
// and the quantized scores of ALL indexed schedules rank-correlate with the
// float oracle at Spearman >= 0.98 — the serving gate for quantized indexes.
func TestQuantizedSearchPreservesRanking(t *testing.T) {
	m := testModel(t)
	ix, err := BuildIndex(m, sampleSchedules(200, 31), hnsw.Config{M: 10, EfConstruction: 60, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	p := testPattern(33)
	q := calibratedHead(t, ix, p)
	if err := ix.EnableQuantized(q); err != nil {
		t.Fatal(err)
	}
	if ix.Quantized() != q {
		t.Fatal("Quantized() does not report the enabled head")
	}

	res, err := ix.Search(context.Background(), p, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 10 {
		t.Fatalf("got %d candidates", len(res.Candidates))
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i-1].Cost > res.Candidates[i].Cost {
			t.Fatal("candidates not sorted by predicted cost")
		}
	}

	// Exhaustive float vs quantized scores over the whole index.
	b := costmodel.NewInferBuffers()
	b.Reset()
	feat, err := m.ExtractInfer(b, p)
	if err != nil {
		t.Fatal(err)
	}
	n := ix.Graph.Len()
	flt := make([]float64, n)
	qnt := make([]float64, n)
	qemb := make([]int8, q.EmbDim)
	for id := 0; id < n; id++ {
		flt[id] = m.PredictHead(b, feat, ix.Graph.Vector(id))
		q.QuantizeEmbedding(qemb, ix.Graph.Vector(id))
		qnt[id] = m.PredictHeadQuantized(b, q, feat, qemb)
	}
	if rho := costmodel.Spearman(flt, qnt); rho < 0.98 {
		t.Fatalf("quantized/float Spearman over the index = %.4f, want >= 0.98", rho)
	}

	// The quantized search's best candidate must still rank well under the
	// float oracle (same bar as the float search test: top 10%).
	best := math.Inf(1)
	for _, c := range res.Candidates {
		if c.Cost < best {
			best = c.Cost
		}
	}
	bestID := -1
	for id := 0; id < n; id++ {
		q.QuantizeEmbedding(qemb, ix.Graph.Vector(id))
		if m.PredictHeadQuantized(b, q, feat, qemb) == best {
			bestID = id
			break
		}
	}
	if bestID < 0 {
		t.Fatal("quantized best candidate not found in the index")
	}
	rank := 0
	for id := 0; id < n; id++ {
		if flt[id] < flt[bestID]-1e-9 {
			rank++
		}
	}
	if rank > n/10 {
		t.Fatalf("quantized best has float-oracle rank %d of %d", rank, n)
	}

	// Disabling restores the float path.
	if err := ix.EnableQuantized(nil); err != nil {
		t.Fatal(err)
	}
	if ix.Quantized() != nil {
		t.Fatal("EnableQuantized(nil) did not clear the head")
	}
}

// TestEnableQuantizedRejectsBadHeads: invalid or architecturally mismatched
// heads are refused before they can serve a single query.
func TestEnableQuantizedRejectsBadHeads(t *testing.T) {
	m := testModel(t)
	ix, err := BuildIndex(m, sampleSchedules(40, 41), hnsw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := testPattern(42)

	good := calibratedHead(t, ix, p)
	broken := *good
	broken.EmbScale = 0
	if err := ix.EnableQuantized(&broken); err == nil {
		t.Fatal("EnableQuantized accepted a head that fails Validate")
	}

	// A head calibrated for a different architecture (narrower hidden layer).
	cfg := costmodel.Config{
		Extractor: costmodel.KindHumanFeature,
		ConvCfg:   testModel(t).Cfg.ConvCfg,
		EmbDim:    12,
		HeadDims:  []int{8},
		Seed:      5,
	}
	other, err := costmodel.New(schedule.DefaultSpace(schedule.SpMM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	oix, err := BuildIndex(other, sampleSchedules(10, 43), hnsw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mismatched := calibratedHead(t, oix, p)
	if err := ix.EnableQuantized(mismatched); err == nil {
		t.Fatal("EnableQuantized accepted a head built for a different architecture")
	}
	if ix.Quantized() != nil {
		t.Fatal("rejected head left the index partially enabled")
	}
}
