package search

import (
	"context"
	"math"
	"math/rand"
	"time"

	"waco/internal/costmodel"
	"waco/internal/nn"
	"waco/internal/schedule"
)

// Evaluator scores SuperSchedules for one query matrix with the full cost
// model (embedder + head), extracting the pattern feature once. It is the
// black box the baseline strategies optimize, and it records the §5.4 time
// accounting: how much wall time goes into cost evaluation versus strategy
// metadata.
type Evaluator struct {
	Model    *costmodel.Model
	feature  *nn.Grad
	Evals    int
	EvalTime time.Duration
}

// NewEvaluator extracts the pattern feature once and returns the evaluator.
func NewEvaluator(m *costmodel.Model, p *costmodel.Pattern) (*Evaluator, error) {
	f, err := m.Extractor.Extract(nil, p)
	if err != nil {
		return nil, err
	}
	return &Evaluator{Model: m, feature: f}, nil
}

// Cost runs embedder + predictor head for one schedule.
func (e *Evaluator) Cost(ss *schedule.SuperSchedule) float64 {
	t0 := time.Now()
	emb := e.Model.Embedder.EmbedSchedule(nil, ss)
	c := float64(e.Model.PredictWith(nil, e.feature, emb).V[0])
	e.EvalTime += time.Since(t0)
	e.Evals++
	return c
}

// Trace records a strategy run: best-so-far predicted cost after each cost
// evaluation, plus wall-time accounting (Figure 16).
type Trace struct {
	Name         string
	Best         []float64
	BestSchedule *schedule.SuperSchedule
	BestCost     float64
	Total        time.Duration
	EvalTime     time.Duration
	Evals        int
}

// EvalFraction returns the share of total wall time spent evaluating the
// cost model (the paper reports 3.9% for HyperOpt, 8.1% for OpenTuner,
// 93.9% for ANNS).
func (t *Trace) EvalFraction() float64 {
	if t.Total <= 0 {
		return 0
	}
	return float64(t.EvalTime) / float64(t.Total)
}

// Strategy is a black-box schedule optimizer with a fixed evaluation budget.
// Run checks the context between cost evaluations and returns the
// best-so-far trace when it is cancelled, so a bounded request can stop a
// strategy mid-budget without losing the work already done.
type Strategy interface {
	Name() string
	Run(ctx context.Context, e *Evaluator, space schedule.Space, budget int, seed int64) *Trace
}

// RandomSearch samples the space uniformly.
type RandomSearch struct{}

// Name implements Strategy.
func (RandomSearch) Name() string { return "Random" }

// Run implements Strategy.
func (RandomSearch) Run(ctx context.Context, e *Evaluator, space schedule.Space, budget int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "Random", BestCost: math.Inf(1)}
	t0 := time.Now()
	for i := 0; i < budget && ctx.Err() == nil; i++ {
		ss := space.Sample(rng)
		c := e.Cost(ss)
		if c < tr.BestCost {
			tr.BestCost, tr.BestSchedule = c, ss
		}
		tr.Best = append(tr.Best, tr.BestCost)
	}
	tr.Total = time.Since(t0)
	tr.EvalTime = e.EvalTime
	tr.Evals = e.Evals
	return tr
}

// Annealing is the OpenTuner stand-in: simulated annealing over the
// SuperSchedule space using single-parameter mutations, with restart from
// the best-known configuration. Like OpenTuner's ensemble, it pays per-trial
// metadata costs (acceptance bookkeeping, temperature schedule, population
// copies).
type Annealing struct {
	InitTemp float64 // initial acceptance temperature (relative cost units)
}

// Name implements Strategy.
func (Annealing) Name() string { return "Annealing" }

// Run implements Strategy.
func (a Annealing) Run(ctx context.Context, e *Evaluator, space schedule.Space, budget int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Name: "Annealing", BestCost: math.Inf(1)}
	t0 := time.Now()
	temp := a.InitTemp
	if temp <= 0 {
		temp = 1
	}
	cur := space.Sample(rng)
	curCost := e.Cost(cur)
	tr.BestCost, tr.BestSchedule = curCost, cur
	tr.Best = append(tr.Best, tr.BestCost)
	for i := 1; i < budget && ctx.Err() == nil; i++ {
		cand := space.Mutate(rng, cur)
		c := e.Cost(cand)
		if c < tr.BestCost {
			tr.BestCost, tr.BestSchedule = c, cand
		}
		if c < curCost || rng.Float64() < math.Exp(-(c-curCost)/math.Max(temp, 1e-9)) {
			cur, curCost = cand, c
		}
		temp *= 0.995
		if i%200 == 199 { // periodic restart from the best known
			cur, curCost = tr.BestSchedule, tr.BestCost
		}
		tr.Best = append(tr.Best, tr.BestCost)
	}
	tr.Total = time.Since(t0)
	tr.EvalTime = e.EvalTime
	tr.Evals = e.Evals
	return tr
}

// TPE is the HyperOpt stand-in: a tree-structured-Parzen-flavored optimizer
// that keeps the observed configurations sorted by cost and proposes new
// candidates by mutating members of the good quantile, falling back to
// uniform sampling for exploration. Its per-trial metadata cost (sorting and
// quantile maintenance) models the surrogate bookkeeping of Bayesian
// optimizers.
type TPE struct {
	Gamma    float64 // good-quantile fraction (default 0.2)
	NumCands int     // candidates scored per proposal round (default 8)
}

// Name implements Strategy.
func (TPE) Name() string { return "TPE" }

// Run implements Strategy.
func (tp TPE) Run(ctx context.Context, e *Evaluator, space schedule.Space, budget int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	gamma := tp.Gamma
	if gamma <= 0 || gamma >= 1 {
		gamma = 0.2
	}
	nc := tp.NumCands
	if nc < 1 {
		nc = 8
	}
	tr := &Trace{Name: "TPE", BestCost: math.Inf(1)}
	var history []obs
	t0 := time.Now()
	for i := 0; i < budget && ctx.Err() == nil; i++ {
		var cand *schedule.SuperSchedule
		if len(history) < 8 || rng.Float64() < 0.2 {
			cand = space.Sample(rng)
		} else {
			// Metadata work: sort history, mutate a good-quantile member.
			sortObs(history)
			good := history[:maxInt(1, int(gamma*float64(len(history))))]
			cand = space.Mutate(rng, good[rng.Intn(len(good))].ss)
			// Score nc-1 additional proposals against the good set by
			// structural similarity (cheap surrogate), keeping the closest.
			bestSim := similarity(space, cand, good[0].ss)
			for j := 1; j < nc; j++ {
				alt := space.Mutate(rng, good[rng.Intn(len(good))].ss)
				if s := similarity(space, alt, good[0].ss); s > bestSim {
					cand, bestSim = alt, s
				}
			}
		}
		c := e.Cost(cand)
		history = append(history, obs{cand, c})
		if c < tr.BestCost {
			tr.BestCost, tr.BestSchedule = c, cand
		}
		tr.Best = append(tr.Best, tr.BestCost)
	}
	tr.Total = time.Since(t0)
	tr.EvalTime = e.EvalTime
	tr.Evals = e.Evals
	return tr
}

type obs struct {
	ss *schedule.SuperSchedule
	c  float64
}

func sortObs(h []obs) {
	// insertion sort: history stays mostly sorted between rounds
	for i := 1; i < len(h); i++ {
		for j := i; j > 0 && h[j].c < h[j-1].c; j-- {
			h[j], h[j-1] = h[j-1], h[j]
		}
	}
}

// similarity counts matching encoded categorical choices between schedules.
func similarity(sp schedule.Space, a, b *schedule.SuperSchedule) int {
	ea, eb := sp.Encode(a), sp.Encode(b)
	s := 0
	for i := range ea.Cats {
		if ea.Cats[i] == eb.Cats[i] {
			s++
		}
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ANNSStrategy adapts the index-based search to the Strategy interface so
// Figure 16 can compare it head-to-head with the black-box baselines. The
// budget maps to the HNSW ef parameter; evaluations are predictor-head runs.
type ANNSStrategy struct {
	Index *Index
	P     *costmodel.Pattern
	K     int
}

// Name implements Strategy.
func (ANNSStrategy) Name() string { return "ANNS" }

// Run implements Strategy. The evaluator is unused (the index keeps frozen
// embeddings); it is accepted for interface uniformity.
func (a ANNSStrategy) Run(ctx context.Context, _ *Evaluator, _ schedule.Space, budget int, _ int64) *Trace {
	k := a.K
	if k < 1 {
		k = 1
	}
	ef := budget / 4
	if ef < k {
		ef = k
	}
	res, err := a.Index.Search(ctx, a.P, k, ef)
	if err != nil {
		return &Trace{Name: "ANNS", BestCost: math.Inf(1)}
	}
	// Feature extraction is shared preprocessing for every strategy (the
	// black-box evaluator extracts it before Run as well), so the trace
	// accounts only the search itself, as the paper's Figure 16-(a) does.
	tr := &Trace{
		Name:     "ANNS",
		Best:     res.Trace,
		Total:    res.SearchTime,
		EvalTime: res.EvalTime,
		Evals:    res.Evals,
	}
	if len(res.Candidates) > 0 {
		tr.BestSchedule = res.Candidates[0].SS
		tr.BestCost = res.Candidates[0].Cost
	}
	return tr
}
