package search

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/hnsw"
	"waco/internal/metrics"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
)

func testModel(t testing.TB) *costmodel.Model {
	t.Helper()
	cfg := costmodel.Config{
		Extractor: costmodel.KindHumanFeature,
		ConvCfg:   sparseconv.Config{Dim: 2, Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 12},
		EmbDim:    12,
		HeadDims:  []int{16},
		Seed:      1,
	}
	m, err := costmodel.New(schedule.DefaultSpace(schedule.SpMM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sampleSchedules(n int, seed int64) []*schedule.SuperSchedule {
	sp := schedule.DefaultSpace(schedule.SpMM)
	rng := rand.New(rand.NewSource(seed))
	out := make([]*schedule.SuperSchedule, n)
	for i := range out {
		out[i] = sp.Sample(rng)
	}
	return out
}

func testPattern(seed int64) *costmodel.Pattern {
	rng := rand.New(rand.NewSource(seed))
	return costmodel.NewPattern(generate.Uniform(rng, 64, 64, 400))
}

func TestBuildIndexDedups(t *testing.T) {
	m := testModel(t)
	scheds := sampleSchedules(50, 2)
	scheds = append(scheds, scheds[0].Clone(), scheds[1].Clone())
	ix, err := BuildIndex(m, scheds, hnsw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Schedules) != 50 {
		t.Fatalf("index holds %d schedules, want 50 after dedup", len(ix.Schedules))
	}
	if ix.Graph.Len() != 50 {
		t.Fatalf("graph holds %d vectors", ix.Graph.Len())
	}
}

func TestBuildIndexEmpty(t *testing.T) {
	if _, err := BuildIndex(testModel(t), nil, hnsw.DefaultConfig()); err == nil {
		t.Fatal("accepted empty schedule set")
	}
}

func TestIndexSearchFindsNearOptimal(t *testing.T) {
	m := testModel(t)
	scheds := sampleSchedules(300, 3)
	ix, err := BuildIndex(m, scheds, hnsw.Config{M: 10, EfConstruction: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := testPattern(5)
	res, err := ix.Search(context.Background(), p, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 10 {
		t.Fatalf("got %d candidates", len(res.Candidates))
	}
	for i := 1; i < len(res.Candidates); i++ {
		if res.Candidates[i-1].Cost > res.Candidates[i].Cost {
			t.Fatal("candidates not sorted by predicted cost")
		}
	}
	if res.Evals <= 0 || res.Evals >= len(ix.Schedules) {
		t.Fatalf("evals = %d, want sublinear in %d", res.Evals, len(ix.Schedules))
	}
	if res.FeatureTime <= 0 || res.SearchTime <= 0 {
		t.Fatal("missing time breakdown")
	}
	// Compare against exhaustive scan: the retrieved best must rank in the
	// top 10% of all indexed schedules.
	ev, err := NewEvaluator(m, p)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Candidates[0].Cost
	rank := 0
	for _, ss := range ix.Schedules {
		if ev.Cost(ss) < best-1e-9 {
			rank++
		}
	}
	if rank > len(ix.Schedules)/10 {
		t.Fatalf("ANNS best has exhaustive rank %d of %d", rank, len(ix.Schedules))
	}
	// Best-so-far trace is monotone nonincreasing.
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i] > res.Trace[i-1] {
			t.Fatal("trace not monotone")
		}
	}
}

// TestSearchEvalsCountDistinctHeadEvals is the satellite-bug regression:
// assembling the returned candidates must reuse the costs the traversal
// already computed, so one query performs exactly Result.Evals predictor-head
// forward passes — no uncounted re-evaluations of the top-k (the model's
// lifetime HeadEvals counter is the ground truth).
func TestSearchEvalsCountDistinctHeadEvals(t *testing.T) {
	m := testModel(t)
	scheds := sampleSchedules(150, 13)
	ix, err := BuildIndex(m, scheds, hnsw.Config{M: 8, EfConstruction: 48, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	p := testPattern(15)
	const k = 8
	before := m.HeadEvals()
	res, err := ix.Search(context.Background(), p, k, 48)
	if err != nil {
		t.Fatal(err)
	}
	delta := m.HeadEvals() - before
	if uint64(res.Evals) != delta {
		t.Fatalf("Result.Evals = %d but the model ran %d head evaluations (candidate assembly must reuse memoized costs)",
			res.Evals, delta)
	}
	if res.Evals != len(res.Trace) {
		t.Fatalf("Evals = %d, trace length %d: every counted eval appends one trace point", res.Evals, len(res.Trace))
	}
	if len(res.Candidates) != k {
		t.Fatalf("got %d candidates", len(res.Candidates))
	}
	// The reused costs are the same values an independent recomputation
	// yields (inference is deterministic).
	ev, err := NewEvaluator(m, testPattern(15))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range res.Candidates {
		if got := ev.Cost(c.SS); got != c.Cost {
			t.Fatalf("candidate %d cost %v, recomputed %v", i, c.Cost, got)
		}
	}
}

// TestSearchMetricsObserve checks the 5.4 breakdown lands in the attached
// histograms once per completed query.
func TestSearchMetricsObserve(t *testing.T) {
	m := testModel(t)
	ix, err := BuildIndex(m, sampleSchedules(80, 21), hnsw.Config{M: 8, EfConstruction: 48, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	ix.Metrics = NewMetrics(metrics.NewRegistry())
	const queries = 3
	for i := 0; i < queries; i++ {
		if _, err := ix.Search(context.Background(), testPattern(int64(30+i)), 5, 32); err != nil {
			t.Fatal(err)
		}
	}
	sm := ix.Metrics
	if got := sm.Queries.Value(); got != queries {
		t.Fatalf("queries counter = %v, want %d", got, queries)
	}
	for name, h := range map[string]*metrics.Histogram{
		"feature":   sm.FeatureSeconds,
		"eval":      sm.EvalSeconds,
		"traversal": sm.TraversalSeconds,
		"evals":     sm.EvalsPerQuery,
	} {
		if h.Count() != queries {
			t.Fatalf("%s histogram has %d observations, want %d", name, h.Count(), queries)
		}
	}
	if sm.EvalsPerQuery.Sum() <= 0 {
		t.Fatal("evals-per-query histogram observed nothing")
	}
}

func TestStrategiesRespectBudgetAndMonotone(t *testing.T) {
	m := testModel(t)
	p := testPattern(6)
	sp := schedule.DefaultSpace(schedule.SpMM)
	const budget = 120
	for _, st := range []Strategy{RandomSearch{}, Annealing{}, TPE{}} {
		ev, err := NewEvaluator(m, p)
		if err != nil {
			t.Fatal(err)
		}
		tr := st.Run(context.Background(), ev, sp, budget, 7)
		if tr.Evals != budget {
			t.Fatalf("%s: %d evals, want %d", st.Name(), tr.Evals, budget)
		}
		if len(tr.Best) != budget {
			t.Fatalf("%s: trace length %d", st.Name(), len(tr.Best))
		}
		for i := 1; i < len(tr.Best); i++ {
			if tr.Best[i] > tr.Best[i-1] {
				t.Fatalf("%s: best-so-far increased", st.Name())
			}
		}
		if tr.BestSchedule == nil || math.IsInf(tr.BestCost, 1) {
			t.Fatalf("%s: no best found", st.Name())
		}
		if err := tr.BestSchedule.Validate(); err != nil {
			t.Fatalf("%s: invalid best schedule: %v", st.Name(), err)
		}
		if tr.EvalFraction() <= 0 || tr.EvalFraction() > 1 {
			t.Fatalf("%s: eval fraction %g", st.Name(), tr.EvalFraction())
		}
	}
}

func TestGuidedStrategiesBeatEarlyRandom(t *testing.T) {
	// With equal budgets, annealing/TPE should not end up much worse than
	// random; all three must improve on their own first sample.
	m := testModel(t)
	p := testPattern(8)
	sp := schedule.DefaultSpace(schedule.SpMM)
	for _, st := range []Strategy{RandomSearch{}, Annealing{}, TPE{}} {
		ev, _ := NewEvaluator(m, p)
		tr := st.Run(context.Background(), ev, sp, 200, 9)
		if !(tr.Best[len(tr.Best)-1] <= tr.Best[0]) {
			t.Fatalf("%s did not improve over first sample", st.Name())
		}
	}
}

func TestANNSStrategyAdapter(t *testing.T) {
	m := testModel(t)
	scheds := sampleSchedules(200, 10)
	ix, err := BuildIndex(m, scheds, hnsw.Config{M: 8, EfConstruction: 48, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p := testPattern(12)
	st := ANNSStrategy{Index: ix, P: p, K: 5}
	tr := st.Run(context.Background(), nil, schedule.Space{}, 200, 0)
	if tr.Name != "ANNS" {
		t.Fatal("wrong name")
	}
	if tr.BestSchedule == nil {
		t.Fatal("no best schedule")
	}
	if tr.Evals <= 0 {
		t.Fatal("no evals recorded")
	}
	for i := 1; i < len(tr.Best); i++ {
		if tr.Best[i] > tr.Best[i-1] {
			t.Fatal("ANNS trace not monotone")
		}
	}
}
