package search

import (
	"context"
	"errors"
	"testing"

	"waco/internal/hnsw"
	"waco/internal/schedule"
)

// TestSearchCancelledContext locks in the ctxflow contract: a cancelled
// context must surface as its error, not as a truncated result.
func TestSearchCancelledContext(t *testing.T) {
	m := testModel(t)
	ix, err := BuildIndex(m, sampleSchedules(30, 2), hnsw.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.Search(ctx, testPattern(3), 5, 16); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search on cancelled context returned %v, want context.Canceled", err)
	}
}

// TestStrategiesStopOnCancel checks every Strategy honors the interface
// contract of returning promptly with the best-so-far trace once its context
// is cancelled — here before any evaluation happens.
func TestStrategiesStopOnCancel(t *testing.T) {
	m := testModel(t)
	sp := schedule.DefaultSpace(schedule.SpMM)
	ev, err := NewEvaluator(m, testPattern(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, st := range []Strategy{&RandomSearch{}, &Annealing{}, &TPE{}} {
		tr := st.Run(ctx, ev, sp, 100, 9)
		if tr == nil {
			t.Fatalf("%T returned nil trace on cancelled context", st)
		}
		// Annealing evaluates its start point before entering the loop, so
		// allow at most one evaluation.
		if n := len(tr.Best); n > 1 {
			t.Fatalf("%T ran %d evaluations after cancellation", st, n)
		}
	}
}
