package search

import (
	"context"
	"testing"

	"waco/internal/hnsw"
	"waco/internal/schedule"
)

// TestWidenedSpaceCoversDecomposition pins that the determinism suite's
// sampled schedules genuinely exercise the decomposition dimension (the
// worker-equivalence test above indexes the same widened space), and that
// the index dedup key separates schedules differing only in it.
func TestWidenedSpaceCoversDecomposition(t *testing.T) {
	scheds := sampleSchedules(200, 7)
	seen := make(map[schedule.Decomposition]int)
	for _, ss := range scheds {
		seen[ss.Decomp]++
	}
	if len(seen) < 3 {
		t.Fatalf("200 samples hit only %d decomposition choices: %v", len(seen), seen)
	}
	if seen[schedule.DecompNone] == 0 {
		t.Fatal("widened space stopped sampling the single-format path")
	}

	// Two schedules identical except for the decomposition must index as two
	// distinct entries: the dedup key carries |dec= only when one is set, so
	// legacy keys are unchanged while decomposed variants stay distinct.
	base := schedule.DefaultSchedule(schedule.SpMM, 2)
	dec := base.Clone()
	dec.Decomp = schedule.DecompFull
	if base.String() == dec.String() {
		t.Fatal("dedup key ignores the decomposition")
	}
	ix, err := BuildIndexContext(context.Background(), testModel(t),
		[]*schedule.SuperSchedule{base, dec, base.Clone(), dec.Clone()},
		hnsw.Config{M: 8, EfConstruction: 20, Seed: 2}, BuildOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Schedules) != 2 {
		t.Fatalf("indexed %d schedules, want 2 (base + decomposed)", len(ix.Schedules))
	}
}
