package search

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"waco/internal/hnsw"
	"waco/internal/metrics"
	"waco/internal/parallelism"
)

// indexFingerprint captures everything BuildIndex produces that a worker
// count could conceivably disturb: schedule order, embedding bits, and the
// full graph adjacency.
func indexFingerprint(t *testing.T, ix *Index) ([]string, [][]float32, [][][]int32) {
	t.Helper()
	keys := make([]string, len(ix.Schedules))
	for i, ss := range ix.Schedules {
		keys[i] = ss.String()
	}
	vecs := make([][]float32, ix.Graph.Len())
	links := make([][][]int32, ix.Graph.Len())
	for id := 0; id < ix.Graph.Len(); id++ {
		vecs[id] = append([]float32(nil), ix.Graph.Vector(id)...)
		for l := 0; l <= ix.Graph.Level(id); l++ {
			links[id] = append(links[id], ix.Graph.Neighbors(id, l))
		}
	}
	return keys, vecs, links
}

// TestBuildIndexWorkersIdentical is the index half of the equivalence
// suite: BuildIndexContext with 1, 2, and 8 workers must yield the same
// schedules in the same order, bit-identical embeddings, and the same
// neighbors per node.
func TestBuildIndexWorkersIdentical(t *testing.T) {
	m := testModel(t)
	scheds := sampleSchedules(200, 7)
	scheds = append(scheds, scheds[3].Clone(), scheds[0].Clone()) // dedup must also be order-stable

	var wantKeys []string
	var wantVecs [][]float32
	var wantLinks [][][]int32
	for _, workers := range []int{1, 2, 8} {
		ix, err := BuildIndexContext(context.Background(), m, scheds,
			hnsw.Config{M: 10, EfConstruction: 40, Seed: 4}, BuildOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		keys, vecs, links := indexFingerprint(t, ix)
		if wantKeys == nil {
			wantKeys, wantVecs, wantLinks = keys, vecs, links
			if len(keys) != 200 {
				t.Fatalf("indexed %d schedules, want 200 after dedup", len(keys))
			}
			continue
		}
		if !reflect.DeepEqual(keys, wantKeys) {
			t.Fatalf("workers=%d: schedule order diverged", workers)
		}
		if !reflect.DeepEqual(vecs, wantVecs) {
			t.Fatalf("workers=%d: embeddings diverged", workers)
		}
		if !reflect.DeepEqual(links, wantLinks) {
			t.Fatalf("workers=%d: graph adjacency diverged", workers)
		}
	}
}

// TestBuildIndexCancellation: a cancelled context aborts the build instead
// of returning a partial index.
func TestBuildIndexCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BuildIndexContext(ctx, testModel(t), sampleSchedules(20, 1),
		hnsw.DefaultConfig(), BuildOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestBuildIndexRecordsPoolMetrics wires the "index" phase instruments
// through a real build.
func TestBuildIndexRecordsPoolMetrics(t *testing.T) {
	pm := parallelism.NewMetrics(metrics.NewRegistry())
	_, err := BuildIndexContext(context.Background(), testModel(t), sampleSchedules(30, 2),
		hnsw.DefaultConfig(), BuildOptions{Workers: 2, Metrics: pm})
	if err != nil {
		t.Fatal(err)
	}
	if got := pm.PhaseItems(parallelism.PhaseIndex); got != 30 {
		t.Fatalf("index phase items %v, want 30", got)
	}
	if pm.PhaseWallSeconds(parallelism.PhaseIndex) <= 0 {
		t.Fatal("index phase wall seconds not recorded")
	}
}

func benchBuildIndex(b *testing.B, workers int) {
	m := testModel(b)
	scheds := sampleSchedules(400, 5)
	cfg := hnsw.Config{M: 12, EfConstruction: 48, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildIndexContext(context.Background(), m, scheds, cfg,
			BuildOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(scheds))/b.Elapsed().Seconds(), "schedules/sec")
}

func BenchmarkBuildIndexWorkers1(b *testing.B) { benchBuildIndex(b, 1) }
func BenchmarkBuildIndexWorkers4(b *testing.B) { benchBuildIndex(b, 4) }

// BenchmarkBuildIndexWorkersN uses one worker per CPU (the default).
func BenchmarkBuildIndexWorkersN(b *testing.B) {
	b.Run(fmt.Sprintf("n=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		benchBuildIndex(b, runtime.GOMAXPROCS(0))
	})
}
