// Package search implements WACO's schedule retrieval (§4.2): an index of
// candidate SuperSchedules whose program embeddings form an HNSW graph built
// on L2, searched at query time with the cost model's predicted runtime as
// the distance — plus the black-box baselines of Figure 16 (random search, a
// simulated-annealing OpenTuner stand-in, and a TPE-style HyperOpt
// stand-in), all driving the same cost model.
package search

import (
	"context"
	"fmt"
	"sync"
	"time"

	"waco/internal/asymcost"
	"waco/internal/costmodel"
	"waco/internal/hnsw"
	"waco/internal/parallelism"
	"waco/internal/schedule"
)

// Index holds the candidate SuperSchedules, their frozen program embeddings,
// and the KNN graph over them (Figure 1-(b)). Because the embeddings are
// memorized at build time, a query only runs the cost model's final
// predictor head per candidate — the reason ANNS spends almost all its time
// in cost evaluation (§5.4).
type Index struct {
	Model     *costmodel.Model
	Schedules []*schedule.SuperSchedule
	Graph     *hnsw.Graph

	// Metrics, when non-nil, receives the §5.4 per-query breakdown
	// (feature/eval/traversal time, evals per query) as histograms. It is
	// serving-side instrumentation attached by serve.NewServer, never
	// persisted in sealed artifacts.
	Metrics *Metrics

	// scratch recycles per-query working memory (inference buffers, graph
	// scratch, cost memo) so concurrent steady-state queries allocate
	// nothing. Unexported and zero-value-ready: Index literals elsewhere in
	// the tree keep working, and gob never sees it.
	scratch sync.Pool

	// Quantized-head state (EnableQuantized): when quant is non-nil the
	// traversal scores candidates on the int8 path against qembs, the stored
	// embeddings quantized once under the head's embedding scale. The float
	// path stays the default and the oracle.
	quant *costmodel.QuantizedHead
	qembs [][]int8

	// Pre-filter state (EnablePrefilter): per-candidate asymptotic-cost
	// digests, folded against the query pattern's stats to prune candidates
	// whose bound is dominated by the best bound seen by more than margin
	// (in log2 units — orders of magnitude of asymptotic work).
	prefilterMargin float64
	terms           []asymcost.Terms
}

// EnableQuantized switches the index's head evaluations to the int8 path:
// the quantized head is checked against the model, and every stored
// embedding is quantized once under its embedding scale so queries pay no
// per-candidate quantization. Passing nil restores the float path. Must be
// called before the index serves queries (it is not synchronized with
// Search).
func (ix *Index) EnableQuantized(q *costmodel.QuantizedHead) error {
	if q == nil {
		ix.quant, ix.qembs = nil, nil
		return nil
	}
	if err := q.Validate(); err != nil {
		return err
	}
	if err := q.CompatibleWith(ix.Model); err != nil {
		return err
	}
	n := ix.Graph.Len()
	backing := make([]int8, n*q.EmbDim)
	qe := make([][]int8, n)
	for id := 0; id < n; id++ {
		dst := backing[id*q.EmbDim : (id+1)*q.EmbDim : (id+1)*q.EmbDim]
		q.QuantizeEmbedding(dst, ix.Graph.Vector(id))
		qe[id] = dst
	}
	ix.quant, ix.qembs = q, qe
	return nil
}

// Quantized returns the active quantized head, nil when the float path is
// serving.
func (ix *Index) Quantized() *costmodel.QuantizedHead { return ix.quant }

// EnablePrefilter turns on the analytic asymptotic-cost pre-filter with the
// given prune margin (log2 units: a candidate is skipped when its bound
// exceeds the best bound seen this query by more than margin). The
// per-candidate digests are precomputed here, once. margin <= 0 disables.
// Must be called before the index serves queries.
func (ix *Index) EnablePrefilter(margin float64) {
	if !(margin > 0) {
		ix.prefilterMargin, ix.terms = 0, nil
		return
	}
	terms := make([]asymcost.Terms, len(ix.Schedules))
	for i, ss := range ix.Schedules {
		terms[i] = asymcost.Precompute(ss)
	}
	ix.prefilterMargin, ix.terms = margin, terms
}

// PrefilterMargin returns the active prune margin, 0 when disabled.
func (ix *Index) PrefilterMargin() float64 { return ix.prefilterMargin }

// queryScratch is everything one Search needs that outlives no query:
// forward-only inference buffers, HNSW traversal scratch, and the
// slice-backed cost memo keyed by graph id (seen[id] guards costs[id] — a
// map here cost a hash per head evaluation and churned on every query).
type queryScratch struct {
	b     *costmodel.InferBuffers
	sc    hnsw.Scratch
	seen  []bool
	costs []float64
	fresh []int32
	embs  [][]float32
	qembs [][]int8
	out   []float64

	// Pre-filter memo, sized only when the pre-filter is enabled: bseen[id]
	// guards bounds[id] exactly as seen guards costs.
	bseen  []bool
	bounds []float64
}

// getScratch takes recycled query scratch sized for the graph.
func (ix *Index) getScratch() *queryScratch {
	qs, _ := ix.scratch.Get().(*queryScratch)
	if qs == nil {
		qs = &queryScratch{b: costmodel.NewInferBuffers()}
	}
	n := ix.Graph.Len()
	if cap(qs.seen) < n {
		qs.seen = make([]bool, n)
		qs.costs = make([]float64, n)
	}
	qs.seen = qs.seen[:n]
	qs.costs = qs.costs[:n]
	clear(qs.seen)
	if ix.prefilterMargin > 0 {
		if cap(qs.bseen) < n {
			qs.bseen = make([]bool, n)
			qs.bounds = make([]float64, n)
		}
		qs.bseen = qs.bseen[:n]
		qs.bounds = qs.bounds[:n]
		clear(qs.bseen)
	}
	return qs
}

func (ix *Index) putScratch(qs *queryScratch) {
	qs.b.Reset()
	ix.scratch.Put(qs)
}

// growF64 returns buf resized to n, reallocating only when capacity is
// short. Contents are unspecified; callers overwrite every element. Growth
// lives here — outside the //waco:allocfree traversal — so the escape
// analysis gate attributes the (warmup-only) allocation to this helper.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// BuildOptions tunes how BuildIndexContext spends the machine; none of its
// fields can change the index that comes out.
type BuildOptions struct {
	// Workers bounds the embedding fan-out (and, unless cfg.Workers is
	// already set, the HNSW batch evaluator). <1 means one per CPU.
	Workers int
	// Metrics, when non-nil, records the embedding fan-out under the
	// "index" phase of the pool instruments.
	Metrics *parallelism.Metrics
}

// BuildIndex embeds and indexes the given schedules, deduplicating by
// canonical key. In the paper the index holds the SuperSchedules that
// appeared in the training dataset.
func BuildIndex(m *costmodel.Model, schedules []*schedule.SuperSchedule, cfg hnsw.Config) (*Index, error) {
	return BuildIndexContext(context.Background(), m, schedules, cfg, BuildOptions{})
}

// BuildIndexContext is BuildIndex with cancellation and a worker pool. The
// pipeline is: deduplicate in input order, embed every unique schedule
// concurrently (nil-tape inference only reads frozen weights, so workers
// share the model), then insert the embeddings into the HNSW graph strictly
// in input order. Insertion order and Config.Seed fully determine the graph,
// so the result is bit-identical for every worker count.
func BuildIndexContext(ctx context.Context, m *costmodel.Model, schedules []*schedule.SuperSchedule, cfg hnsw.Config, opts BuildOptions) (*Index, error) {
	seen := make(map[string]bool, len(schedules))
	unique := make([]*schedule.SuperSchedule, 0, len(schedules))
	for _, ss := range schedules {
		key := ss.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		unique = append(unique, ss)
	}
	if len(unique) == 0 {
		return nil, fmt.Errorf("search: no schedules to index")
	}

	workers := parallelism.Workers(opts.Workers)
	embs := make([][]float32, len(unique))
	bufs := make([]*costmodel.InferBuffers, workers)
	err := parallelism.ForEach(ctx, opts.Metrics, parallelism.PhaseIndex, len(unique), workers,
		func(w, i int) error {
			b := bufs[w]
			if b == nil {
				b = costmodel.NewInferBuffers()
				bufs[w] = b
			}
			b.Reset()
			// Forward-only embedding, bit-identical to the tape path (pinned
			// by the costmodel parity tests), so the graph — determined by
			// embedding bytes and insertion order — is unchanged. The arena
			// owns the embedding; copy it out to keep.
			embs[i] = append([]float32(nil), m.EmbedScheduleInfer(b, unique[i])...)
			return nil
		})
	if err != nil {
		return nil, err
	}

	if cfg.Workers == 0 {
		cfg.Workers = workers
	}
	ix := &Index{Model: m, Graph: hnsw.New(cfg), Schedules: unique}
	for _, emb := range embs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ix.Graph.Add(emb)
	}
	return ix, nil
}

// Candidate is one retrieved schedule with its predicted cost.
type Candidate struct {
	SS   *schedule.SuperSchedule
	Cost float64
}

// Result is the outcome of one ANNS query, with the §5.4 time breakdown.
type Result struct {
	Candidates  []Candidate // ascending by predicted cost
	Evals       int         // cost-model head evaluations
	FeatureTime time.Duration
	// SearchTime covers everything after feature extraction: graph traversal,
	// head evaluations, and candidate assembly (including any defensive
	// fallback evaluations, so EvalTime ⊆ SearchTime always holds and the
	// derived traversal time can never go negative).
	SearchTime time.Duration
	// EvalTime is the portion of SearchTime spent inside predictor-head
	// evaluations (the rest is graph traversal bookkeeping).
	EvalTime time.Duration
	// Pruned counts candidates the asymptotic-cost pre-filter skipped: their
	// bound exceeded the best bound seen this query by more than the margin,
	// so the predictor head never scored them. Zero when the pre-filter is
	// disabled.
	Pruned int
	// PrefilterTime is the portion of SearchTime spent computing asymptotic
	// bounds (disjoint from EvalTime; both are subsets of SearchTime).
	PrefilterTime time.Duration
	// Best-so-far predicted cost after each head evaluation.
	Trace []float64
}

// Search retrieves the top-k SuperSchedules for the pattern: the sparsity
// feature is extracted once, then the HNSW graph is traversed with
// dist(s) = head(feature, embedding(s)). Everything runs on the forward-only
// inference path with pooled scratch — predictions are bit-identical to the
// tape path (pinned by the parity tests) and a steady-state query performs
// zero heap allocations beyond its Result. The graph hands the batch
// evaluator whole adjacency lists, which the batched predictor head scores
// against the query-constant feature partial in one pass.
//
// The context is checked before feature extraction and between evaluation
// batches — once it is done, the remaining traversal degenerates to
// constant-time bookkeeping and Search returns the context's error, so a
// cancelled request never keeps burning cost-model time.
func (ix *Index) Search(ctx context.Context, p *costmodel.Pattern, k, ef int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qs := ix.getScratch()
	defer ix.putScratch(qs)
	t0 := time.Now()
	qs.b.Reset()
	feat, err := ix.Model.ExtractInfer(qs.b, p)
	if err != nil {
		return nil, err
	}
	res := &Result{FeatureTime: time.Since(t0)}

	t1 := time.Now()
	ids, cancelled := ix.searchForward(ctx, qs, feat, asymcost.FromCOO(p.COO), k, ef, res)
	if cancelled {
		return nil, ctx.Err()
	}
	res.Candidates = make([]Candidate, 0, len(ids))
	for _, id := range ids {
		res.Candidates = append(res.Candidates, Candidate{SS: ix.Schedules[id], Cost: ix.candidateCost(qs, feat, id, res)})
	}
	res.SearchTime = time.Since(t1)
	ix.Metrics.observe(res)
	return res, nil
}

// searchForward is the traversal core of one query: it walks the HNSW graph
// with dist(s) = head(feature, embedding(s)), memoizing every head
// evaluation in qs and recording the best-so-far trace into res. It returns
// the retrieved graph ids (owned by qs.sc, valid until its next search) and
// whether the context was cancelled mid-traversal.
//
// With the pre-filter enabled, each unseen candidate's asymptotic bound is
// folded (and memoized) first; candidates dominated by the best bound seen
// so far by more than the margin are marked seen with a sentinel cost and
// never reach the head. With the quantized head enabled, evaluations run on
// the int8 path against the pre-quantized stored embeddings.
//
//waco:allocfree
func (ix *Index) searchForward(ctx context.Context, qs *queryScratch, feat []float32, ast asymcost.Stats, k, ef int, res *Result) ([]int, bool) {
	best := inf()
	bestBound := inf()
	cancelled := false
	evals := 0
	prefilter := ix.prefilterMargin > 0
	// qs.seen/qs.costs memoize the head evaluation per candidate id, so
	// assembling Candidates in Search reuses what the traversal already
	// computed instead of re-running the predictor head — and Evals counts
	// exactly the distinct evaluations (post-cancellation sentinel returns
	// and pruned candidates are not evals).
	record := func(id int32, c float64) {
		qs.seen[id] = true
		qs.costs[id] = c
		evals++
		if c < best {
			best = c
		}
		res.Trace = append(res.Trace, best)
	}
	// prune reports whether the pre-filter rejects id, memoizing its bound
	// and tightening bestBound as a side effect. Only called on unseen ids
	// with the pre-filter enabled.
	prune := func(id int32) bool {
		b := qs.bounds[id]
		if !qs.bseen[id] {
			b = ix.terms[id].Bound(ast)
			qs.bseen[id] = true
			qs.bounds[id] = b
			if b < bestBound {
				bestBound = b
			}
		}
		if b > bestBound+ix.prefilterMargin {
			qs.seen[id] = true
			qs.costs[id] = prunedCost()
			res.Pruned++
			return true
		}
		return false
	}
	dist := func(id int) float64 {
		if qs.seen[id] {
			return qs.costs[id]
		}
		if cancelled || ctx.Err() != nil {
			cancelled = true
			return inf()
		}
		if prefilter {
			p0 := time.Now()
			pruned := prune(int32(id))
			res.PrefilterTime += time.Since(p0)
			if pruned {
				return prunedCost()
			}
		}
		e0 := time.Now()
		var c float64
		if ix.quant != nil {
			c = ix.Model.PredictHeadQuantized(qs.b, ix.quant, feat, ix.qembs[id])
		} else {
			c = ix.Model.PredictHead(qs.b, feat, ix.Graph.Vector(id))
		}
		res.EvalTime += time.Since(e0)
		record(int32(id), c)
		return c
	}
	batch := func(ids []int32, out []float64) {
		if prefilter && !cancelled {
			p0 := time.Now()
			for _, id := range ids {
				if !qs.seen[id] {
					prune(id)
				}
			}
			res.PrefilterTime += time.Since(p0)
		}
		fresh := qs.fresh[:0]
		embs := qs.embs[:0]
		qembs := qs.qembs[:0]
		for _, id := range ids {
			if !qs.seen[id] {
				fresh = append(fresh, id)
				if ix.quant != nil {
					qembs = append(qembs, ix.qembs[id])
				} else {
					embs = append(embs, ix.Graph.Vector(int(id)))
				}
			}
		}
		if len(fresh) > 0 && !cancelled {
			if ctx.Err() != nil {
				cancelled = true
			} else {
				qs.out = growF64(qs.out, len(fresh))
				fout := qs.out
				e0 := time.Now()
				if ix.quant != nil {
					ix.Model.PredictHeadIntoQuantized(qs.b, ix.quant, feat, qembs, fout)
				} else {
					ix.Model.PredictHeadInto(qs.b, feat, embs, fout)
				}
				res.EvalTime += time.Since(e0)
				// Record in ids order: the trace of best-so-far costs matches
				// the sequential dist path exactly.
				for i, id := range fresh {
					record(id, fout[i])
				}
			}
		}
		qs.fresh, qs.embs, qs.qembs = fresh, embs, qembs
		for i, id := range ids {
			if qs.seen[id] {
				out[i] = qs.costs[id]
			} else {
				out[i] = inf()
			}
		}
	}
	ids := ix.Graph.SearchWith(dist, batch, k, ef, &qs.sc)
	res.Evals = evals
	return ids, cancelled
}

// candidateCost returns the memoized predicted cost of a returned id. Every
// id the graph returns was scored during traversal, so the fallback only runs
// if that invariant ever breaks — or if a pruned candidate survived into the
// top-k (possible only when the filter pruned so hard that fewer than k
// candidates were scored); either way the candidate gets a real head
// evaluation here, timed and counted like any other, so reported Costs are
// never sentinels and Evals/EvalTime stay consistent.
func (ix *Index) candidateCost(qs *queryScratch, feat []float32, id int, res *Result) float64 {
	if qs.seen[id] && qs.costs[id] < prunedCost() {
		return qs.costs[id]
	}
	e0 := time.Now()
	var c float64
	if ix.quant != nil {
		c = ix.Model.PredictHeadQuantized(qs.b, ix.quant, feat, ix.qembs[id])
	} else {
		c = ix.Model.PredictHead(qs.b, feat, ix.Graph.Vector(id))
	}
	res.EvalTime += time.Since(e0)
	res.Evals++
	qs.seen[id] = true
	qs.costs[id] = c
	return c
}

func inf() float64 { return 1e308 }

// prunedCost is the memoized cost of a pre-filter-pruned candidate: far
// above any real prediction so the traversal never expands it, but below
// inf() so cancellation sentinels stay distinguishable.
func prunedCost() float64 { return 1e290 }
