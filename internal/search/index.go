// Package search implements WACO's schedule retrieval (§4.2): an index of
// candidate SuperSchedules whose program embeddings form an HNSW graph built
// on L2, searched at query time with the cost model's predicted runtime as
// the distance — plus the black-box baselines of Figure 16 (random search, a
// simulated-annealing OpenTuner stand-in, and a TPE-style HyperOpt
// stand-in), all driving the same cost model.
package search

import (
	"context"
	"fmt"
	"time"

	"waco/internal/costmodel"
	"waco/internal/hnsw"
	"waco/internal/nn"
	"waco/internal/parallelism"
	"waco/internal/schedule"
)

// Index holds the candidate SuperSchedules, their frozen program embeddings,
// and the KNN graph over them (Figure 1-(b)). Because the embeddings are
// memorized at build time, a query only runs the cost model's final
// predictor head per candidate — the reason ANNS spends almost all its time
// in cost evaluation (§5.4).
type Index struct {
	Model     *costmodel.Model
	Schedules []*schedule.SuperSchedule
	Graph     *hnsw.Graph

	// Metrics, when non-nil, receives the §5.4 per-query breakdown
	// (feature/eval/traversal time, evals per query) as histograms. It is
	// serving-side instrumentation attached by serve.NewServer, never
	// persisted in sealed artifacts.
	Metrics *Metrics
}

// BuildOptions tunes how BuildIndexContext spends the machine; none of its
// fields can change the index that comes out.
type BuildOptions struct {
	// Workers bounds the embedding fan-out (and, unless cfg.Workers is
	// already set, the HNSW batch evaluator). <1 means one per CPU.
	Workers int
	// Metrics, when non-nil, records the embedding fan-out under the
	// "index" phase of the pool instruments.
	Metrics *parallelism.Metrics
}

// BuildIndex embeds and indexes the given schedules, deduplicating by
// canonical key. In the paper the index holds the SuperSchedules that
// appeared in the training dataset.
func BuildIndex(m *costmodel.Model, schedules []*schedule.SuperSchedule, cfg hnsw.Config) (*Index, error) {
	return BuildIndexContext(context.Background(), m, schedules, cfg, BuildOptions{})
}

// BuildIndexContext is BuildIndex with cancellation and a worker pool. The
// pipeline is: deduplicate in input order, embed every unique schedule
// concurrently (nil-tape inference only reads frozen weights, so workers
// share the model), then insert the embeddings into the HNSW graph strictly
// in input order. Insertion order and Config.Seed fully determine the graph,
// so the result is bit-identical for every worker count.
func BuildIndexContext(ctx context.Context, m *costmodel.Model, schedules []*schedule.SuperSchedule, cfg hnsw.Config, opts BuildOptions) (*Index, error) {
	seen := make(map[string]bool, len(schedules))
	unique := make([]*schedule.SuperSchedule, 0, len(schedules))
	for _, ss := range schedules {
		key := ss.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		unique = append(unique, ss)
	}
	if len(unique) == 0 {
		return nil, fmt.Errorf("search: no schedules to index")
	}

	workers := parallelism.Workers(opts.Workers)
	embs := make([][]float32, len(unique))
	err := parallelism.ForEach(ctx, opts.Metrics, parallelism.PhaseIndex, len(unique), workers,
		func(_, i int) error {
			embs[i] = m.Embedder.EmbedSchedule(nil, unique[i]).V
			return nil
		})
	if err != nil {
		return nil, err
	}

	if cfg.Workers == 0 {
		cfg.Workers = workers
	}
	ix := &Index{Model: m, Graph: hnsw.New(cfg), Schedules: unique}
	for _, emb := range embs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ix.Graph.Add(emb)
	}
	return ix, nil
}

// Candidate is one retrieved schedule with its predicted cost.
type Candidate struct {
	SS   *schedule.SuperSchedule
	Cost float64
}

// Result is the outcome of one ANNS query, with the §5.4 time breakdown.
type Result struct {
	Candidates  []Candidate // ascending by predicted cost
	Evals       int         // cost-model head evaluations
	FeatureTime time.Duration
	SearchTime  time.Duration
	// EvalTime is the portion of SearchTime spent inside predictor-head
	// evaluations (the rest is graph traversal bookkeeping).
	EvalTime time.Duration
	// Best-so-far predicted cost after each head evaluation.
	Trace []float64
}

// Search retrieves the top-k SuperSchedules for the pattern: the sparsity
// feature is extracted once, then the HNSW graph is traversed with
// dist(s) = head(feature, embedding(s)). The context is checked before
// feature extraction and between predictor-head evaluations — once it is
// done, the remaining traversal degenerates to constant-time bookkeeping and
// Search returns the context's error, so a cancelled request never keeps
// burning cost-model time.
func (ix *Index) Search(ctx context.Context, p *costmodel.Pattern, k, ef int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	feat, err := ix.Model.Extractor.Extract(nil, p)
	if err != nil {
		return nil, err
	}
	res := &Result{FeatureTime: time.Since(t0)}

	t1 := time.Now()
	best := inf()
	cancelled := false
	// costs memoizes the head evaluation per candidate id, so assembling
	// Candidates below reuses what the traversal already computed instead of
	// re-running the predictor head — and Evals counts exactly the distinct
	// evaluations (post-cancellation sentinel returns are not evals).
	costs := make(map[int]float64, ef)
	dist := func(id int) float64 {
		if c, ok := costs[id]; ok {
			return c
		}
		if cancelled || ctx.Err() != nil {
			cancelled = true
			return inf()
		}
		e0 := time.Now()
		emb := nn.NewGrad(ix.Graph.Vector(id))
		c := float64(ix.Model.PredictWith(nil, feat, emb).V[0])
		res.EvalTime += time.Since(e0)
		costs[id] = c
		if c < best {
			best = c
		}
		res.Trace = append(res.Trace, best)
		return c
	}
	ids, _ := ix.Graph.Search(dist, k, ef)
	res.SearchTime = time.Since(t1)
	res.Evals = len(costs)
	if cancelled {
		return nil, ctx.Err()
	}
	for _, id := range ids {
		cost, ok := costs[id]
		if !ok {
			// Defensive: every returned id was scored by dist during the
			// traversal, so this path only runs if the graph ever returns an
			// unvisited id.
			emb := nn.NewGrad(ix.Graph.Vector(id))
			cost = float64(ix.Model.PredictWith(nil, feat, emb).V[0])
			costs[id] = cost
			res.Evals++
		}
		res.Candidates = append(res.Candidates, Candidate{SS: ix.Schedules[id], Cost: cost})
	}
	ix.Metrics.observe(res)
	return res, nil
}

func inf() float64 { return 1e308 }
