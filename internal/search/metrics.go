package search

import (
	"waco/internal/metrics"
)

// Metrics is the §5.4 search-time breakdown as histograms: where an ANNS
// query's time goes (sparsity-feature extraction vs. predictor-head
// evaluation vs. graph-traversal bookkeeping) and how many head evaluations
// each query costs. One Metrics instance aggregates every query against the
// Index it is attached to.
type Metrics struct {
	FeatureSeconds   *metrics.Histogram
	EvalSeconds      *metrics.Histogram
	TraversalSeconds *metrics.Histogram
	PrefilterSeconds *metrics.Histogram
	EvalsPerQuery    *metrics.Histogram
	PrunedPerQuery   *metrics.Histogram
	Queries          *metrics.Counter
	Pruned           *metrics.Counter
}

// NewMetrics registers the search histograms on reg. Call once at startup
// (the waco-vet metricreg check holds registration to init/constructors).
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		FeatureSeconds: reg.NewHistogram("waco_search_feature_seconds",
			"Sparsity-feature extraction time per ANNS query (5.4 breakdown).",
			metrics.MicroBuckets(), nil),
		EvalSeconds: reg.NewHistogram("waco_search_eval_seconds",
			"Total predictor-head evaluation time per ANNS query (5.4 breakdown).",
			metrics.MicroBuckets(), nil),
		TraversalSeconds: reg.NewHistogram("waco_search_traversal_seconds",
			"Graph-traversal bookkeeping time per ANNS query: search time minus head evaluations.",
			metrics.MicroBuckets(), nil),
		PrefilterSeconds: reg.NewHistogram("waco_search_prefilter_seconds",
			"Asymptotic-cost pre-filter time per ANNS query (5.4 breakdown).",
			metrics.MicroBuckets(), nil),
		EvalsPerQuery: reg.NewHistogram("waco_search_evals_per_query",
			"Distinct predictor-head evaluations per ANNS query.",
			metrics.ExpBuckets(1, 2, 14), nil),
		PrunedPerQuery: reg.NewHistogram("waco_search_pruned_per_query",
			"Candidates skipped by the asymptotic-cost pre-filter per ANNS query.",
			metrics.ExpBuckets(1, 2, 14), nil),
		Queries: reg.NewCounter("waco_search_queries_total",
			"Completed ANNS queries.", nil),
		Pruned: reg.NewCounter("waco_search_pruned_total",
			"Candidates skipped by the asymptotic-cost pre-filter.", nil),
	}
}

// observe records one completed query's breakdown; a nil receiver is a no-op
// so uninstrumented indexes (offline experiments, tests) pay nothing.
func (m *Metrics) observe(res *Result) {
	if m == nil {
		return
	}
	m.FeatureSeconds.Observe(res.FeatureTime.Seconds())
	m.EvalSeconds.Observe(res.EvalTime.Seconds())
	m.TraversalSeconds.Observe((res.SearchTime - res.EvalTime - res.PrefilterTime).Seconds())
	m.PrefilterSeconds.Observe(res.PrefilterTime.Seconds())
	m.EvalsPerQuery.Observe(float64(res.Evals))
	m.PrunedPerQuery.Observe(float64(res.Pruned))
	m.Queries.Inc()
	m.Pruned.Add(float64(res.Pruned))
}
