package search

import (
	"context"
	"math/rand"
	"testing"

	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/hnsw"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
)

// benchQuerySetup builds the shared fixture of the query-path benchmarks: a
// full-size WACONet cost model, an index of 512 schedules, and one pattern
// whose caches are warmed so both paths measure steady-state queries. The
// forward and tape benchmarks use the identical fixture — their ratio is the
// speedup the BENCH_search.json baseline tracks.
func benchQuerySetup(b *testing.B) (*Index, *costmodel.Pattern) {
	b.Helper()
	cfg := costmodel.Config{
		Extractor: costmodel.KindWACONet,
		ConvCfg:   sparseconv.Config{Dim: 2, Channels: 8, Depth: 4, FirstKernel: 5, OutDim: 32},
		EmbDim:    32,
		HeadDims:  []int{64, 32},
		Seed:      1,
	}
	m, err := costmodel.New(schedule.DefaultSpace(schedule.SpMM), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := BuildIndex(m, sampleSchedules(512, 81), hnsw.Config{M: 12, EfConstruction: 64, Seed: 82})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	p := costmodel.NewPattern(generate.Uniform(rng, 256, 256, 4000))
	return ix, p
}

const (
	benchQueryK  = 10
	benchQueryEf = 64
)

// BenchmarkSearchQueryForward measures the production query path: forward-only
// inference with pooled scratch and batched head evaluation.
func BenchmarkSearchQueryForward(b *testing.B) {
	ix, p := benchQuerySetup(b)
	if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkSearchQueryTape measures the historical tape-path query the
// forward path replaced (and must stay bit-identical to); kept as the
// regression baseline for the speedup and allocation claims.
func BenchmarkSearchQueryTape(b *testing.B) {
	ix, p := benchQuerySetup(b)
	if _, err := searchTape(ix, p, benchQueryK, benchQueryEf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := searchTape(ix, p, benchQueryK, benchQueryEf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}
