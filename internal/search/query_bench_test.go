package search

import (
	"context"
	"math/rand"
	"testing"

	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/hnsw"
	"waco/internal/schedule"
	"waco/internal/sparseconv"
)

// benchQuerySetup builds the shared fixture of the query-path benchmarks: a
// full-size WACONet cost model, an index of 512 schedules, and one pattern
// whose caches are warmed so both paths measure steady-state queries. The
// forward and tape benchmarks use the identical fixture — their ratio is the
// speedup the BENCH_search.json baseline tracks.
func benchQuerySetup(b *testing.B) (*Index, *costmodel.Pattern) {
	b.Helper()
	cfg := costmodel.Config{
		Extractor: costmodel.KindWACONet,
		ConvCfg:   sparseconv.Config{Dim: 2, Channels: 8, Depth: 4, FirstKernel: 5, OutDim: 32},
		EmbDim:    32,
		HeadDims:  []int{64, 32},
		Seed:      1,
	}
	m, err := costmodel.New(schedule.DefaultSpace(schedule.SpMM), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := BuildIndex(m, sampleSchedules(512, 81), hnsw.Config{M: 12, EfConstruction: 64, Seed: 82})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	p := costmodel.NewPattern(generate.Uniform(rng, 256, 256, 4000))
	return ix, p
}

const (
	benchQueryK  = 10
	benchQueryEf = 64
)

// BenchmarkSearchQueryForward measures the production query path: forward-only
// inference with pooled scratch and batched head evaluation.
func BenchmarkSearchQueryForward(b *testing.B) {
	ix, p := benchQuerySetup(b)
	if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkSearchQueryQuantized measures the forward path with the int8
// predictor head: per-candidate work is int8 dot products on int32
// accumulators against pre-quantized stored embeddings.
func BenchmarkSearchQueryQuantized(b *testing.B) {
	ix, p := benchQuerySetup(b)
	if err := ix.EnableQuantized(calibratedHead(b, ix, p)); err != nil {
		b.Fatal(err)
	}
	if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}

// benchPrefilterMargin is the prune margin of the pre-filter benchmarks, in
// log2 units of asymptotic work.
const benchPrefilterMargin = 2.0

// BenchmarkSearchQueryPrefiltered measures the float path behind the
// asymptotic-cost pre-filter; pruned_frac reports the fraction of visited
// candidates the filter kept away from the predictor head.
func BenchmarkSearchQueryPrefiltered(b *testing.B) {
	ix, p := benchQuerySetup(b)
	ix.EnablePrefilter(benchPrefilterMargin)
	if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	evals, pruned := 0, 0
	for i := 0; i < b.N; i++ {
		res, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf)
		if err != nil {
			b.Fatal(err)
		}
		evals += res.Evals
		pruned += res.Pruned
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	if evals+pruned > 0 {
		b.ReportMetric(float64(pruned)/float64(evals+pruned), "pruned_frac")
	}
}

// BenchmarkSearchQueryQuantPrefilter measures the full fast path — int8 head
// plus asymptotic pre-filter — the configuration the 1.5x queries/sec gate in
// scripts/benchdiff.sh holds against the forward baseline.
func BenchmarkSearchQueryQuantPrefilter(b *testing.B) {
	ix, p := benchQuerySetup(b)
	if err := ix.EnableQuantized(calibratedHead(b, ix, p)); err != nil {
		b.Fatal(err)
	}
	ix.EnablePrefilter(benchPrefilterMargin)
	if _, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	evals, pruned := 0, 0
	for i := 0; i < b.N; i++ {
		res, err := ix.Search(context.Background(), p, benchQueryK, benchQueryEf)
		if err != nil {
			b.Fatal(err)
		}
		evals += res.Evals
		pruned += res.Pruned
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	if evals+pruned > 0 {
		b.ReportMetric(float64(pruned)/float64(evals+pruned), "pruned_frac")
	}
}

// BenchmarkSearchQueryTape measures the historical tape-path query the
// forward path replaced (and must stay bit-identical to); kept as the
// regression baseline for the speedup and allocation claims.
func BenchmarkSearchQueryTape(b *testing.B) {
	ix, p := benchQuerySetup(b)
	if _, err := searchTape(ix, p, benchQueryK, benchQueryEf); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := searchTape(ix, p, benchQueryK, benchQueryEf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
}
