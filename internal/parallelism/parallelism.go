// Package parallelism is the worker-pool and sharding layer behind WACO's
// multicore offline pipeline (training, index construction, dataset
// collection). Its design constraint is determinism: using N workers must
// produce bit-identical results to using 1 worker, so the layer never lets
// scheduling order leak into outputs. The rules it provides to callers:
//
//   - Work is identified by index. ForEach runs fn(worker, i) for every
//     i in [0, n); which worker runs which index is scheduling-dependent,
//     so fn must write only into its own index's output slot and draw
//     randomness only from a stream derived from i (ShardRand), never from
//     a stream shared across indices.
//   - Reductions happen after the pool drains, in index order, on the
//     caller's goroutine. Floating-point accumulation order is therefore
//     fixed regardless of worker count.
//   - Partition splits a range into contiguous near-equal shards whose
//     boundaries depend only on (n, parts) — never on worker availability.
//
// Cancellation flows through a context: once ctx is done, idle workers stop
// claiming indices, and ForEach returns ctx.Err() joined with any errors fn
// already produced. Errors are joined in index order so a failing run
// reports deterministically.
package parallelism

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values < 1 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)), matching the -workers flag
// defaults on waco-train and waco-datagen.
func Workers(requested int) int {
	if requested >= 1 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Span is one contiguous shard [Lo, Hi) of a partitioned range.
type Span struct {
	Lo, Hi int
}

// Len returns the number of indices in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Partition splits [0, n) into at most parts contiguous near-equal spans.
// The split depends only on (n, parts): the first n%parts spans hold one
// extra element. Empty spans are never returned, so len(result) =
// min(n, parts). Partition is the deterministic-chunking primitive: a
// caller that shards per-span state (an RNG stream, a gradient buffer) gets
// the same shard boundaries on every run.
func Partition(n, parts int) []Span {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Span, 0, parts)
	base := n / parts
	extra := n % parts
	lo := 0
	for p := 0; p < parts; p++ {
		size := base
		if p < extra {
			size++
		}
		out = append(out, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// ForEach runs fn(worker, i) for every i in [0, n) on up to workers
// goroutines, claiming indices dynamically from a shared counter. worker is
// a stable id in [0, workers): fn may use it to own per-worker scratch
// state (a model replica, a Tape). Determinism contract: fn must derive any
// randomness from i (see ShardRand) and must not let results depend on
// claim order; reductions belong after ForEach returns, in index order.
//
// The first fn error (or ctx cancellation) stops further claims; indices
// already claimed finish. All fn errors are returned joined in index order;
// a context error, if any, is joined last. With workers <= 1 the loop runs
// inline on the calling goroutine as worker 0 — the exact sequential
// semantics every parallel run must reproduce.
//
// m, when non-nil, observes pool activity (queue depth, busy workers) for
// the given phase; pass nil to run uninstrumented.
func ForEach(ctx context.Context, m *Metrics, phase Phase, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	run := m.begin(phase, n)
	if workers <= 1 {
		started := int64(0)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			started++
			t0 := run.itemStart()
			errs[i] = fn(0, i)
			run.itemEnd(t0)
			if errs[i] != nil {
				break
			}
		}
		run.end(started)
		return joinIndexed(errs, ctx.Err())
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				t0 := run.itemStart()
				err := fn(worker, i)
				run.itemEnd(t0)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	started := next.Load()
	if started > int64(n) {
		started = int64(n)
	}
	run.end(started)
	return joinIndexed(errs, ctx.Err())
}

// joinIndexed joins the non-nil errors in index order, appending ctxErr
// last. It returns nil when everything is nil.
func joinIndexed(errs []error, ctxErr error) error {
	var all []error
	for _, err := range errs {
		if err != nil {
			all = append(all, err)
		}
	}
	if ctxErr != nil {
		all = append(all, ctxErr)
	}
	return errors.Join(all...)
}

// ShardSeed derives the RNG seed for one shard of a seeded computation. The
// derivation is a SplitMix64 mix of (seed, shard), so neighboring shards get
// statistically independent streams (a plain seed+shard would make shard k
// of seed s collide with shard k-1 of seed s+1). The mapping is frozen: the
// shard-stream regression test pins its outputs, because changing it would
// silently change every "same seed" training run and dataset collection.
func ShardSeed(seed, shard int64) int64 {
	z := uint64(seed) ^ (uint64(shard)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ShardRand returns the per-shard random stream for (seed, shard): a fresh
// generator every call, so a shard replays identically no matter which
// worker runs it or what ran before it.
func ShardRand(seed, shard int64) *rand.Rand {
	return rand.New(rand.NewSource(ShardSeed(seed, shard)))
}
