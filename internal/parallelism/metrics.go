package parallelism

import (
	"time"

	"waco/internal/metrics"
)

// Phase names one offline pipeline stage for the per-phase series. The set
// is closed so every series is registered up front (the waco-vet metricreg
// convention: registration at init/constructor time, never per call).
type Phase string

const (
	// PhaseTrain is per-matrix gradient computation in costmodel.Train.
	PhaseTrain Phase = "train"
	// PhaseEval is the per-epoch validation loss pass.
	PhaseEval Phase = "eval"
	// PhaseIndex is schedule embedding in search.BuildIndex.
	PhaseIndex Phase = "index"
	// PhaseCollect is matrix measurement in dataset.Collect.
	PhaseCollect Phase = "collect"
)

// Phases lists every known phase in registration order.
var Phases = []Phase{PhaseTrain, PhaseEval, PhaseIndex, PhaseCollect}

// Metrics instruments the worker pool: queue depth and busy workers as
// gauges, plus per-phase wall-clock and cpu (summed per-item) seconds, so
// an operator can see where offline build time goes and how well it
// overlaps. A nil *Metrics disables instrumentation at zero cost.
type Metrics struct {
	QueueDepth *metrics.Gauge // indices submitted to ForEach but not yet claimed
	Busy       *metrics.Gauge // workers currently executing an index

	phases map[Phase]*phaseInstruments
}

type phaseInstruments struct {
	wall  *metrics.Counter
	cpu   *metrics.Counter
	items *metrics.Counter
}

// NewMetrics registers the pool instruments on reg. Call once at startup.
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		QueueDepth: reg.NewGauge("waco_pool_queue_depth",
			"Work items submitted to the offline worker pool and not yet claimed.", nil),
		Busy: reg.NewGauge("waco_pool_busy_workers",
			"Worker goroutines currently executing a work item.", nil),
		phases: map[Phase]*phaseInstruments{},
	}
	for _, p := range Phases {
		labels := metrics.Labels{"phase": string(p)}
		m.phases[p] = &phaseInstruments{
			wall: reg.NewCounter("waco_phase_wall_seconds_total",
				"Wall-clock seconds spent inside each offline pipeline phase.", labels),
			cpu: reg.NewCounter("waco_phase_cpu_seconds_total",
				"Per-item execution seconds summed across workers in each phase (cpu-seconds when workers run on distinct cores).", labels),
			items: reg.NewCounter("waco_phase_items_total",
				"Work items completed in each offline pipeline phase.", labels),
		}
	}
	return m
}

// PhaseWallSeconds returns the accumulated wall seconds for a phase (0 for
// a nil receiver or unknown phase) — the test- and report-facing read side.
func (m *Metrics) PhaseWallSeconds(p Phase) float64 {
	if m == nil || m.phases[p] == nil {
		return 0
	}
	return m.phases[p].wall.Value()
}

// PhaseCPUSeconds returns the accumulated per-item seconds for a phase.
func (m *Metrics) PhaseCPUSeconds(p Phase) float64 {
	if m == nil || m.phases[p] == nil {
		return 0
	}
	return m.phases[p].cpu.Value()
}

// PhaseItems returns the number of completed items for a phase.
func (m *Metrics) PhaseItems(p Phase) float64 {
	if m == nil || m.phases[p] == nil {
		return 0
	}
	return m.phases[p].items.Value()
}

// GobEncode makes Metrics persistence-inert: a Metrics handle is runtime
// wiring, not state, so configs embedding one (e.g. TrainConfig inside a
// saved tuner artifact) serialize it as nothing instead of dragging the
// instrument internals into gob.
func (m *Metrics) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode restores a persistence-inert Metrics as an inactive handle.
func (m *Metrics) GobDecode([]byte) error { return nil }

// phaseRun tracks one ForEach invocation against the instruments. All
// methods tolerate a nil receiver so the uninstrumented path stays free of
// branches at call sites.
type phaseRun struct {
	m    *Metrics
	inst *phaseInstruments
	n    int
	t0   time.Time
}

// begin opens a phase run covering n items. An inactive handle (nil, or one
// revived by GobDecode with no registered instruments) records nothing.
func (m *Metrics) begin(p Phase, n int) *phaseRun {
	if m == nil || m.QueueDepth == nil {
		return nil
	}
	m.QueueDepth.Add(float64(n))
	return &phaseRun{m: m, inst: m.phases[p], n: n, t0: time.Now()}
}

// itemStart marks one index claimed; the returned time feeds itemEnd.
func (r *phaseRun) itemStart() time.Time {
	if r == nil {
		return time.Time{}
	}
	r.m.QueueDepth.Dec()
	r.m.Busy.Inc()
	return time.Now()
}

// itemEnd marks one index finished, attributing its execution time.
func (r *phaseRun) itemEnd(start time.Time) {
	if r == nil {
		return
	}
	r.m.Busy.Dec()
	if r.inst != nil {
		r.inst.cpu.Add(time.Since(start).Seconds())
		r.inst.items.Inc()
	}
}

// end closes the run: records wall time and returns unclaimed indices to a
// zero queue contribution (an aborted run must not leave the gauge high).
func (r *phaseRun) end(started int64) {
	if r == nil {
		return
	}
	if leftover := int64(r.n) - started; leftover > 0 {
		r.m.QueueDepth.Add(-float64(leftover))
	}
	if r.inst != nil {
		r.inst.wall.Add(time.Since(r.t0).Seconds())
	}
}
