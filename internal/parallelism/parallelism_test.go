package parallelism

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"waco/internal/metrics"
)

func TestPartitionCoversRangeExactly(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {8, 3}, {9, 3}, {100, 7}, {5, 5}, {5, 100},
	} {
		spans := Partition(tc.n, tc.parts)
		if tc.n == 0 {
			if spans != nil {
				t.Errorf("Partition(0, %d) = %v, want nil", tc.parts, spans)
			}
			continue
		}
		want := tc.parts
		if want > tc.n {
			want = tc.n
		}
		if len(spans) != want {
			t.Errorf("Partition(%d, %d) has %d spans, want %d", tc.n, tc.parts, len(spans), want)
		}
		next := 0
		for _, s := range spans {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("Partition(%d, %d): bad span %+v after %d", tc.n, tc.parts, s, next)
			}
			next = s.Hi
		}
		if next != tc.n {
			t.Errorf("Partition(%d, %d) covers [0, %d)", tc.n, tc.parts, next)
		}
		// Near-equal: sizes differ by at most one.
		minLen, maxLen := spans[0].Len(), spans[0].Len()
		for _, s := range spans {
			if s.Len() < minLen {
				minLen = s.Len()
			}
			if s.Len() > maxLen {
				maxLen = s.Len()
			}
		}
		if maxLen-minLen > 1 {
			t.Errorf("Partition(%d, %d) spans range %d..%d in size", tc.n, tc.parts, minLen, maxLen)
		}
	}
}

func TestPartitionIsDeterministic(t *testing.T) {
	a := Partition(997, 13)
	b := Partition(997, 13)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 100
		var counts [n]atomic.Int32
		err := ForEach(context.Background(), nil, PhaseTrain, n, workers, func(worker, i int) error {
			if worker < 0 || worker >= workers {
				return fmt.Errorf("worker id %d out of range", worker)
			}
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachJoinsErrorsInIndexOrder(t *testing.T) {
	// With one worker, index 3 fails and stops the loop: exactly one error.
	errBoom := errors.New("boom")
	err := ForEach(context.Background(), nil, PhaseTrain, 10, 1, func(_, i int) error {
		if i >= 3 {
			return fmt.Errorf("index %d: %w", i, errBoom)
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("error lost: %v", err)
	}
	if got := err.Error(); got != "index 3: boom" {
		t.Fatalf("sequential failure should stop at the first error, got %q", got)
	}
}

func TestForEachCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEach(ctx, nil, PhaseTrain, 1000, 4, func(_, i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() >= 1000 {
		t.Fatal("cancellation did not stop the pool early")
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), nil, PhaseTrain, 0, 4, func(_, _ int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestShardSeedDerivationPinned is the shard-stream regression test: the
// (seed, shard) -> seed mapping is part of the determinism contract (it
// decides which schedule pairs a training run draws), so its outputs are
// pinned. If this test fails, the derivation changed and every "same seed"
// run in the wild silently changed with it.
func TestShardSeedDerivationPinned(t *testing.T) {
	pinned := []struct {
		seed, shard, want int64
	}{
		{1, 0, -1956407806741107680},
		{1, 1, -4689498862643123097},
		{1, 2, 4048727598324417001},
		{2, 0, -7541218347953203506},
		{42, 7, -5461621313036580413},
	}
	for _, p := range pinned {
		if got := ShardSeed(p.seed, p.shard); got != p.want {
			t.Errorf("ShardSeed(%d, %d) = %d, want %d", p.seed, p.shard, got, p.want)
		}
	}
}

func TestShardStreamsDifferAcrossShardsAndSeeds(t *testing.T) {
	seen := map[int64]string{}
	for seed := int64(0); seed < 8; seed++ {
		for shard := int64(0); shard < 64; shard++ {
			s := ShardSeed(seed, shard)
			key := fmt.Sprintf("seed=%d shard=%d", seed, shard)
			if prev, dup := seen[s]; dup {
				t.Fatalf("derived seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	// The additive failure mode ShardSeed exists to prevent: seed s, shard
	// k+1 must not equal seed s+1, shard k.
	if ShardSeed(1, 2) == ShardSeed(2, 1) {
		t.Fatal("shard streams collide across (seed, shard) diagonals")
	}
	// And replaying a shard yields the same stream.
	a, b := ShardRand(3, 7), ShardRand(3, 7)
	for i := 0; i < 16; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("ShardRand is not replayable")
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("defaulted worker count must be at least 1")
	}
}

func TestForEachRecordsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	if err := ForEach(context.Background(), m, PhaseIndex, 12, 3, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.PhaseItems(PhaseIndex); got != 12 {
		t.Fatalf("phase items %v, want 12", got)
	}
	if m.PhaseWallSeconds(PhaseIndex) <= 0 {
		t.Fatal("phase wall seconds not recorded")
	}
	if m.PhaseCPUSeconds(PhaseIndex) < 0 {
		t.Fatal("phase cpu seconds negative")
	}
	if q := m.QueueDepth.Value(); q != 0 {
		t.Fatalf("queue depth %v after drain, want 0", q)
	}
	if b := m.Busy.Value(); b != 0 {
		t.Fatalf("busy workers %v after drain, want 0", b)
	}
	// Other phases stay untouched.
	if m.PhaseItems(PhaseTrain) != 0 {
		t.Fatal("unrelated phase recorded items")
	}
}

func TestForEachAbortLeavesQueueDrained(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	errBoom := errors.New("boom")
	err := ForEach(context.Background(), m, PhaseCollect, 50, 2, func(_, i int) error {
		if i == 0 {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("error lost: %v", err)
	}
	if q := m.QueueDepth.Value(); q != 0 {
		t.Fatalf("queue depth %v after aborted run, want 0", q)
	}
}
