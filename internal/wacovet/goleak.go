package wacovet

// goleak flags fire-and-forget goroutines in the serving packages. A
// goroutine spawned on a request path that nobody joins, signals, or cancels
// outlives its request, leaks under load, and defeats graceful drain. The
// analyzer accepts a spawn when the spawned body — or a module function it
// calls, followed to a small depth — shows any lifecycle discipline:
//
//   - sync.WaitGroup.Done (someone Waits for it)
//   - a channel send or close (its completion is observable)
//   - a channel receive or select (it watches a done/ctx signal)
//   - context.Context use (ctx.Done/Err or a ctx-taking callee)
//   - a call into the parallelism pool (the pool owns the lifecycle)
//
// Anything else is a finding at the go statement. The depth-limited callee
// walk matters in practice: serve's async jobs spawn `go func() { defer
// s.end(); ... }` where end() hides the wg.Done one call away.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoleakConfig configures the goleak analyzer.
type GoleakConfig struct {
	// Packages are the package paths (or prefix/... patterns) whose go
	// statements are checked.
	Packages []string
	// PoolPkgs are packages whose calls count as lifecycle management (the
	// worker pool owns joining its goroutines).
	PoolPkgs []string
	// Depth is how many levels of module-internal calls to follow when
	// looking for a lifecycle signal (default 2).
	Depth int
}

// DefaultGoleakConfig covers the serving tier: the daemon, the router, and
// the packages behind them.
func DefaultGoleakConfig(module string) GoleakConfig {
	return GoleakConfig{
		Packages: []string{
			module + "/internal/serve",
			module + "/internal/cluster",
			module + "/cmd/...",
		},
		PoolPkgs: []string{module + "/internal/parallelism"},
	}
}

// NewGoleakAnalyzer builds the analyzer.
func NewGoleakAnalyzer(cfg GoleakConfig) *Analyzer {
	if cfg.Depth == 0 {
		cfg.Depth = 2
	}
	return &Analyzer{
		Name: "goleak",
		Doc:  "goroutines in serving packages must be joined (WaitGroup), signal completion (send/close), or watch cancellation (select/ctx) — no fire-and-forget spawns",
		Run:  func(m *Module) []Finding { return runGoleak(m, cfg) },
	}
}

// declSite is a module function declaration with the package that owns it
// (the package's Info is needed to resolve calls inside the body).
type declSite struct {
	decl *ast.FuncDecl
	pkg  *Package
}

func runGoleak(m *Module, cfg GoleakConfig) []Finding {
	// Module-wide map from the type-checker's view of a function to its
	// declaration, so the walk can follow calls across packages.
	decls := map[*types.Func]declSite{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = declSite{decl: fd, pkg: pkg}
				}
			}
		}
	}

	var findings []Finding
	for _, pkg := range m.Packages {
		if !pathApplies(pkg.Path, cfg.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				w := &goleakWalk{cfg: cfg, decls: decls, visited: map[*ast.FuncDecl]bool{}}
				if !w.spawnManaged(pkg, g.Call) {
					findings = append(findings, m.finding(g.Pos(), "goleak",
						"fire-and-forget goroutine: spawned body shows no WaitGroup.Done, channel signal, select/ctx cancellation, or pool handoff"))
				}
				return true
			})
		}
	}
	return findings
}

// goleakWalk carries the state of one spawn site's lifecycle search.
type goleakWalk struct {
	cfg     GoleakConfig
	decls   map[*types.Func]declSite
	visited map[*ast.FuncDecl]bool
}

// spawnManaged decides whether the goroutine spawned by `go call(...)`
// shows lifecycle discipline.
func (w *goleakWalk) spawnManaged(pkg *Package, call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return w.bodyManaged(pkg, lit.Body, w.cfg.Depth)
	}
	// `go s.run(ctx)` style: a spawned call taking a context is managed by
	// convention (the callee must watch it; ctxflow enforces use).
	if w.callIsLifecycle(pkg, call) {
		return true
	}
	if fn := calleeFunc(pkg.Info, call); fn != nil {
		if site, ok := w.decls[fn]; ok {
			return w.bodyManaged(site.pkg, site.decl.Body, w.cfg.Depth)
		}
	}
	return false
}

// bodyManaged scans one function body for a lifecycle signal, following
// module-internal calls depth levels deep.
func (w *goleakWalk) bodyManaged(pkg *Package, body *ast.BlockStmt, depth int) bool {
	if body == nil {
		return false
	}
	managed := false
	ast.Inspect(body, func(n ast.Node) bool {
		if managed {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			managed = true
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // channel receive
				managed = true
				return false
			}
		case *ast.RangeStmt:
			// ranging over a channel is a receive loop
			if t, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					managed = true
					return false
				}
			}
		case *ast.CallExpr:
			if w.callIsLifecycle(pkg, n) {
				managed = true
				return false
			}
			if depth > 0 {
				if fn := calleeFunc(pkg.Info, n); fn != nil {
					if site, ok := w.decls[fn]; ok && !w.visited[site.decl] {
						w.visited[site.decl] = true
						if w.bodyManaged(site.pkg, site.decl.Body, depth-1) {
							managed = true
							return false
						}
					}
				}
			}
		}
		return true
	})
	return managed
}

// callIsLifecycle reports whether one call is itself a lifecycle signal:
// WaitGroup.Done, close(), a ctx method, or a pool-package call.
func (w *goleakWalk) callIsLifecycle(pkg *Package, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	switch full {
	case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
		return true
	}
	// Any context.Context method (Done, Err, Deadline, Value) means the body
	// is at least looking at its cancellation signal.
	if strings.HasPrefix(full, "(context.Context).") {
		return true
	}
	if p := fn.Pkg(); p != nil && pathApplies(p.Path(), w.cfg.PoolPkgs) {
		return true
	}
	// A spawned call that accepts a context delegates cancellation to the
	// callee; ctxflow separately enforces that serving callees use it.
	if sig, ok := fn.Type().(*types.Signature); ok {
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if named, ok := params.At(i).Type().(*types.Named); ok {
				if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context" {
					return true
				}
			}
		}
	}
	return false
}
