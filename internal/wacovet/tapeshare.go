package wacovet

import (
	"go/ast"
	"go/types"
)

// TapeshareConfig scopes the tapeshare check.
type TapeshareConfig struct {
	// Packages are package paths (exact or "prefix/...") the check runs in.
	Packages []string
	// TapeType is the fully qualified named type ("pkg/path.Name") whose
	// values are single-goroutine: the autodiff tape, which appends backward
	// closures to an unguarded slice and writes shared gradient buffers.
	TapeType string
}

// DefaultTapeshareConfig guards nn.Tape across the entire module: parallel
// training hands every worker its own tape (and its own gradient buffers via
// a model replica), so a tape crossing a goroutine boundary is always a bug
// — a data race at best, silently corrupted gradients at worst.
func DefaultTapeshareConfig(module string) TapeshareConfig {
	return TapeshareConfig{
		Packages: []string{module, module + "/..."},
		TapeType: module + "/internal/nn.Tape",
	}
}

// NewTapeshareAnalyzer builds the tapeshare check.
func NewTapeshareAnalyzer(cfg TapeshareConfig) *Analyzer {
	return &Analyzer{
		Name: "tapeshare",
		Doc:  "an nn.Tape is single-goroutine state: never captured by a goroutine closure, passed to a spawned call, or sent over a channel",
		Run:  func(m *Module) []Finding { return runTapeshare(m, cfg) },
	}
}

func runTapeshare(m *Module, cfg TapeshareConfig) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		if !pathApplies(pkg.Path, cfg.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					out = append(out, tapesInGoStmt(m, pkg, n, cfg.TapeType)...)
				case *ast.SendStmt:
					if isTapeType(pkg.Info.TypeOf(n.Value), cfg.TapeType) {
						out = append(out, m.finding(n.Arrow, "tapeshare",
							"tape sent over a channel; a tape must stay on the goroutine that created it"))
					}
				}
				return true
			})
		}
	}
	return out
}

// tapesInGoStmt flags tape values crossing into a spawned goroutine, either
// as call arguments or as free variables of a function-literal body.
func tapesInGoStmt(m *Module, pkg *Package, g *ast.GoStmt, tapeType string) []Finding {
	var out []Finding
	for _, arg := range g.Call.Args {
		if isTapeType(pkg.Info.TypeOf(arg), tapeType) {
			out = append(out, m.finding(arg.Pos(), "tapeshare",
				"tape passed to a goroutine; give each worker its own tape"))
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return out
	}
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] || !isTapeType(v.Type(), tapeType) {
			return true
		}
		// A tape declared inside the literal belongs to the new goroutine.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		seen[v] = true
		out = append(out, m.finding(id.Pos(), "tapeshare",
			"goroutine closure captures tape %q declared outside it; give each worker its own tape", v.Name()))
		return true
	})
	return out
}

// isTapeType reports whether t (through any levels of pointer) is the named
// tape type.
func isTapeType(t types.Type, tapeType string) bool {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path()+"."+obj.Name() == tapeType
}
