package wacovet

import (
	"go/ast"
	"go/types"
)

// CtxflowConfig scopes the ctxflow check.
type CtxflowConfig struct {
	// Packages are the package paths the rule applies to (exact or
	// "prefix/..." entries): the layers between HTTP handlers and kernel
	// measurement where a dropped context would strand a request.
	Packages []string
	// Callees maps a package path to the function/method names whose call
	// sites measure candidates on the machine or traverse the HNSW index.
	// Any exported function in Packages that calls one of them must accept
	// a context.Context parameter and reference it in its body.
	Callees map[string][]string
}

// DefaultCtxflowConfig enforces the serving path of the real module:
// candidate measurement (kernel.Workload.Measure/MeasureSchedule) and index
// traversal (hnsw.Graph.Search/SearchL2, search.Index.Search) may only be
// reached from exported core/search/serve functions that take a context.
func DefaultCtxflowConfig(module string) CtxflowConfig {
	return CtxflowConfig{
		Packages: []string{
			module + "/internal/core",
			module + "/internal/search",
			module + "/internal/serve",
			module + "/internal/cluster",
		},
		Callees: map[string][]string{
			module + "/internal/kernel": {"Measure", "MeasureSchedule"},
			module + "/internal/hnsw":   {"Search", "SearchL2"},
			module + "/internal/search": {"Search"},
		},
	}
}

// NewCtxflowAnalyzer builds the ctxflow check.
func NewCtxflowAnalyzer(cfg CtxflowConfig) *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "exported serving-path functions that measure candidates or traverse the index must accept and use a context.Context",
		Run:  func(m *Module) []Finding { return runCtxflow(m, cfg) },
	}
}

func runCtxflow(m *Module, cfg CtxflowConfig) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		if !pathApplies(pkg.Path, cfg.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !fn.Name.IsExported() {
					continue
				}
				callee := measuringCallee(pkg.Info, fn.Body, cfg.Callees)
				if callee == "" {
					continue
				}
				params := ctxParams(pkg.Info, fn)
				switch {
				case len(params) == 0:
					out = append(out, m.finding(fn.Name.Pos(), "ctxflow",
						"exported %s calls %s but has no context.Context parameter; cancellation cannot reach the search", fn.Name.Name, callee))
				case !usesAny(pkg.Info, fn.Body, params):
					out = append(out, m.finding(fn.Name.Pos(), "ctxflow",
						"exported %s calls %s but never checks or propagates its context.Context parameter", fn.Name.Name, callee))
				}
			}
		}
	}
	return out
}

// measuringCallee returns "pkg.Name" for the first configured
// measurement/traversal callee invoked anywhere in body, or "".
func measuringCallee(info *types.Info, body *ast.BlockStmt, callees map[string][]string) string {
	found := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		for _, name := range callees[fn.Pkg().Path()] {
			if fn.Name() == name {
				found = fn.Pkg().Name() + "." + name
				return false
			}
		}
		return true
	})
	return found
}

// ctxParams returns the declared parameters of type context.Context.
func ctxParams(info *types.Info, fn *ast.FuncDecl) []types.Object {
	var out []types.Object
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && obj.Type().String() == "context.Context" {
				out = append(out, obj)
			}
		}
	}
	return out
}

// usesAny reports whether body references at least one of the objects.
func usesAny(info *types.Info, body *ast.BlockStmt, objs []types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		for _, o := range objs {
			if obj == o {
				used = true
				return false
			}
		}
		return true
	})
	return used
}
