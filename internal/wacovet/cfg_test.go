package wacovet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body from source and returns it with the fset.
func parseBody(t *testing.T, body string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, file.Decls[0].(*ast.FuncDecl).Body
}

// heldAt runs the canonical lock-style forward analysis over the body: a
// call to lock() adds fact "L", unlock() removes it. It returns, for each
// call to the probe functions, whether "L" may be held immediately before
// the call.
func heldAt(t *testing.T, body string) map[string]bool {
	t.Helper()
	_, blk := parseBody(t, body)
	cfg := BuildCFG(blk)
	callName := func(n ast.Node) string {
		// A SelectStmt node stands for the blocking select itself; its
		// clause bodies live in their own blocks, so don't descend into
		// them here (same rule a real CFG-based analyzer follows).
		if _, ok := n.(*ast.SelectStmt); ok {
			return ""
		}
		var name string
		ast.Inspect(n, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && name == "" {
					name = id.Name
				}
			}
			return true
		})
		return name
	}
	before := cfg.Forward(func(n ast.Node, facts Facts) {
		switch callName(n) {
		case "lock":
			facts["L"] = true
		case "unlock":
			delete(facts, "L")
		}
	})
	out := map[string]bool{}
	for n, facts := range before {
		name := callName(n)
		if strings.HasPrefix(name, "probe") {
			out[name] = out[name] || facts["L"]
		}
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	got := heldAt(t, `
		probeA()
		lock()
		probeB()
		unlock()
		probeC()
	`)
	want := map[string]bool{"probeA": false, "probeB": true, "probeC": false}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: held=%v, want %v", k, got[k], v)
		}
	}
}

func TestCFGIfJoin(t *testing.T) {
	// Lock taken on one branch only: at the join the fact MAY hold.
	got := heldAt(t, `
		if cond() {
			lock()
		}
		probeJoin()
	`)
	if !got["probeJoin"] {
		t.Error("probeJoin: lock taken on one if-branch must be may-held at the join")
	}
}

func TestCFGIfElseBothRelease(t *testing.T) {
	got := heldAt(t, `
		lock()
		if cond() {
			unlock()
		} else {
			unlock()
		}
		probeJoin()
	`)
	if got["probeJoin"] {
		t.Error("probeJoin: both branches unlock, so the join must be lock-free")
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	// Lock acquired inside the loop without release: the back edge must
	// propagate the fact to the loop head, so the second iteration's probe
	// sees it held even before the lock() call of that iteration.
	got := heldAt(t, `
		for i := 0; i < n; i++ {
			probeHead()
			lock()
		}
		probeExit()
	`)
	if !got["probeHead"] {
		t.Error("probeHead: fact from iteration k must reach iteration k+1 via the back edge")
	}
	if !got["probeExit"] {
		t.Error("probeExit: loop may execute, so the exit is may-held")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	// The labeled break jumps out of BOTH loops while holding the lock;
	// the unlock at the bottom of the outer body is skipped on that path.
	got := heldAt(t, `
	outer:
		for {
			lock()
			for range xs {
				if cond() {
					break outer
				}
			}
			unlock()
		}
		probeAfter()
	`)
	if !got["probeAfter"] {
		t.Error("probeAfter: labeled break path skips unlock, so lock is may-held")
	}
}

func TestCFGSelectIsOneNode(t *testing.T) {
	// The select statement appears as a single node; facts reach it and
	// each clause body independently.
	got := heldAt(t, `
		lock()
		select {
		case <-ch:
			unlock()
			probeGot()
		case <-done:
			probeDone()
		}
		probeAfter()
	`)
	if got["probeGot"] {
		t.Error("probeGot: runs after the clause's unlock")
	}
	if !got["probeDone"] {
		t.Error("probeDone: done-clause keeps the lock held")
	}
	if !got["probeAfter"] {
		t.Error("probeAfter: one clause path keeps the lock, join is may-held")
	}
}

func TestCFGSwitchNoDefaultFallsThrough(t *testing.T) {
	// With no default clause, control may skip every case; a lock taken in
	// one case is only may-held after, and the no-case path stays clean.
	got := heldAt(t, `
		switch v() {
		case 1:
			lock()
			probeInCase()
		}
		probeAfter()
	`)
	if !got["probeInCase"] {
		t.Error("probeInCase: lock precedes it in the same clause")
	}
	if !got["probeAfter"] {
		t.Error("probeAfter: case-1 path holds the lock into the join")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	// The early return holds the lock, but that path leaves the function;
	// the statement after the if only executes on the unlocked path.
	got := heldAt(t, `
		lock()
		if cond() {
			return
		}
		unlock()
		probeAfter()
	`)
	if got["probeAfter"] {
		t.Error("probeAfter: the held path returned; fall-through path unlocked")
	}
}

func TestCFGContinueSkipsTail(t *testing.T) {
	got := heldAt(t, `
		for i := 0; i < n; i++ {
			lock()
			if cond() {
				continue
			}
			unlock()
		}
		probeAfter()
	`)
	if !got["probeAfter"] {
		t.Error("probeAfter: continue path skips unlock and loops; exit is may-held")
	}
}

func TestCFGFallthrough(t *testing.T) {
	got := heldAt(t, `
		switch v() {
		case 1:
			lock()
			fallthrough
		case 2:
			probeCase2()
			unlock()
		default:
			probeDefault()
		}
		probeAfter()
	`)
	if !got["probeCase2"] {
		t.Error("probeCase2: fallthrough from case 1 carries the lock")
	}
	if got["probeDefault"] {
		t.Error("probeDefault: default clause is entered directly, lock-free")
	}
	if got["probeAfter"] {
		t.Error("probeAfter: every path through the switch released or never took the lock")
	}
}
