package wacovet

// lockhold flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held. Holding a lock across channel ops, time.Sleep,
// network or file IO, or pool waits turns a lock that should bound
// microseconds of map access into a convoy: every request behind it stalls
// for the duration of the slow operation, and under load the serving tier's
// tail latency explodes. The house style is snapshot-under-lock, act-after:
// copy what you need, unlock, then block.
//
// This is the first CFG-based analyzer: it runs the forward may-dataflow
// solver over each function body with a transfer function that adds a fact
// when a lock's Lock/RLock runs and removes it on Unlock/RUnlock, then
// reports any node that both carries a held-lock fact and performs a
// blocking operation. "May" analysis is deliberate — a lock released on only
// one branch still poisons the join, which is exactly the bug class worth
// surfacing. A deferred Unlock does NOT clear the fact (the lock stays held
// until return — that is the point of the check), and goroutine bodies are
// analyzed as their own functions, since their locks and blocking ops happen
// on another stack.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockholdConfig configures the lockhold analyzer.
type LockholdConfig struct {
	// Packages are the package paths (or prefix/... patterns) to analyze.
	Packages []string
	// ExtraBlocking adds types.Func FullNames to the built-in blocking set
	// (e.g. a project-local pool's acquire method).
	ExtraBlocking []string
}

// DefaultLockholdConfig analyzes the whole module: a lock convoy is a bug in
// any package, and the blocking set is narrow enough to stay precise.
func DefaultLockholdConfig(module string) LockholdConfig {
	return LockholdConfig{
		Packages: []string{module + "/internal/...", module + "/cmd/..."},
	}
}

// NewLockholdAnalyzer builds the analyzer.
func NewLockholdAnalyzer(cfg LockholdConfig) *Analyzer {
	return &Analyzer{
		Name: "lockhold",
		Doc:  "no blocking operation (channel op, select without default, sleep, IO, waits) while a sync.Mutex/RWMutex is held — snapshot under the lock, then act",
		Run:  func(m *Module) []Finding { return runLockhold(m, cfg) },
	}
}

// blockingCalls are the call targets treated as blocking, by FullName.
var blockingCalls = map[string]string{
	"time.Sleep":                      "time.Sleep",
	"(*sync.WaitGroup).Wait":          "WaitGroup.Wait",
	"(*sync.Cond).Wait":               "Cond.Wait",
	"(*net/http.Client).Do":           "HTTP round-trip",
	"(*net/http.Client).Get":          "HTTP round-trip",
	"(*net/http.Client).Post":         "HTTP round-trip",
	"(*net/http.Client).PostForm":     "HTTP round-trip",
	"(*net/http.Client).Head":         "HTTP round-trip",
	"net/http.Get":                    "HTTP round-trip",
	"net/http.Post":                   "HTTP round-trip",
	"net/http.PostForm":               "HTTP round-trip",
	"net/http.Head":                   "HTTP round-trip",
	"(net/http.ResponseWriter).Write": "response write",
	"io.Copy":                         "io.Copy",
	"io.CopyN":                        "io.CopyN",
	"io.ReadAll":                      "io.ReadAll",
	"io.ReadFull":                     "io.ReadFull",
	"os.ReadFile":                     "file IO",
	"os.WriteFile":                    "file IO",
	"os.Open":                         "file IO",
	"os.OpenFile":                     "file IO",
	"os.Create":                       "file IO",
	"(*os.File).Read":                 "file IO",
	"(*os.File).ReadAt":               "file IO",
	"(*os.File).Write":                "file IO",
	"(*os.File).WriteAt":              "file IO",
	"(*os.File).Sync":                 "file IO",
	"(*os/exec.Cmd).Run":              "subprocess wait",
	"(*os/exec.Cmd).Wait":             "subprocess wait",
	"(*os/exec.Cmd).Output":           "subprocess wait",
	"(*os/exec.Cmd).CombinedOutput":   "subprocess wait",
	"net.Dial":                        "network dial",
	"net.DialTimeout":                 "network dial",
	"(*net.Dialer).Dial":              "network dial",
	"(*net.Dialer).DialContext":       "network dial",
	"(net.Conn).Read":                 "network IO",
	"(net.Conn).Write":                "network IO",
}

// lock/unlock classification by method FullName.
var lockMethods = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}
var unlockMethods = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

func runLockhold(m *Module, cfg LockholdConfig) []Finding {
	extra := map[string]string{}
	for _, name := range cfg.ExtraBlocking {
		extra[name] = name
	}
	var findings []Finding
	for _, pkg := range m.Packages {
		if !pathApplies(pkg.Path, cfg.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					// FuncLit bodies run on their own stack (goroutines) or
					// with unknown caller lock state; analyze them alone and
					// don't let the outer walk revisit their contents.
					body = fn.Body
				default:
					return true
				}
				if body != nil {
					findings = append(findings, lockholdBody(m, pkg, body, extra)...)
				}
				// Still descend: nested FuncLits get their own pass.
				return true
			})
		}
	}
	return findings
}

// lockholdBody runs the dataflow over one function body.
func lockholdBody(m *Module, pkg *Package, body *ast.BlockStmt, extra map[string]string) []Finding {
	cfg := BuildCFG(body)
	before := cfg.Forward(func(n ast.Node, facts Facts) {
		scanShallow(n, func(c ast.Node) {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeFunc(pkg.Info, call)
			if fn == nil {
				return
			}
			full := fn.FullName()
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			key := types.ExprString(sel.X)
			switch {
			case lockMethods[full]:
				facts[key] = true
			case unlockMethods[full]:
				delete(facts, key)
			}
		})
	})

	var findings []Finding
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			facts := before[n]
			if len(facts) == 0 {
				continue
			}
			held := make([]string, 0, len(facts))
			for k := range facts {
				held = append(held, k)
			}
			sort.Strings(held)
			scanShallow(n, func(c ast.Node) {
				if desc, pos := blockingOp(pkg, c, extra); desc != "" {
					findings = append(findings, m.finding(pos, "lockhold",
						fmt.Sprintf("%s while holding lock %s; snapshot under the lock, release, then block", desc, strings.Join(held, ", "))))
				}
			})
		}
	}
	return findings
}

// blockingOp classifies one node as a blocking operation, returning a
// description and position, or "".
func blockingOp(pkg *Package, n ast.Node, extra map[string]string) (string, token.Pos) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", n.Pos()
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", n.Pos()
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				return "", token.NoPos // has default: non-blocking poll
			}
		}
		return "blocking select", n.Pos()
	case *ast.RangeStmt:
		if t, ok := pkg.Info.Types[n.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				return "range over channel", n.Pos()
			}
		}
	case *ast.CallExpr:
		fn := calleeFunc(pkg.Info, n)
		if fn == nil {
			return "", token.NoPos
		}
		full := fn.FullName()
		if desc, ok := blockingCalls[full]; ok {
			return "call to " + full + " (" + desc + ")", n.Pos()
		}
		if _, ok := extra[full]; ok {
			return "call to " + full, n.Pos()
		}
	}
	return "", token.NoPos
}

// scanShallow visits n and its subtree at the granularity the CFG exposes:
// it skips nested FuncLit bodies (their own CFG), go/defer statements (their
// effects happen on another stack or at return), select internals (the
// SelectStmt node itself is the blocking point; clause bodies are separate
// CFG nodes), and a RangeStmt's body (also separate nodes — only the range
// operand belongs to this node).
func scanShallow(n ast.Node, visit func(ast.Node)) {
	switch n := n.(type) {
	case *ast.SelectStmt:
		visit(n)
		return
	case *ast.RangeStmt:
		visit(n)
		if n.Key != nil {
			scanShallow(n.Key, visit)
		}
		if n.Value != nil {
			scanShallow(n.Value, visit)
		}
		scanShallow(n.X, visit)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SelectStmt, *ast.RangeStmt:
			if c != n {
				scanShallow(c, visit)
				return false
			}
		}
		visit(c)
		return true
	})
}
