// Package wacovet is WACO's project-specific static-analysis framework.
// It loads every package of the module with go/parser + go/types (stdlib
// only; export data for dependencies comes from `go list -export`) and runs
// a suite of analyzers that enforce the tuner's correctness invariants:
//
//	ctxflow    exported functions on the serving path that measure
//	           candidates or traverse the HNSW index must accept and use a
//	           context.Context, so cancellation propagates into the search
//	rngsource  library code must not call global math/rand functions —
//	           randomness comes from an injected, seeded *rand.Rand so
//	           training and search are reproducible
//	errdrop    no discarded or unchecked errors outside a small allowlist,
//	           and no side-effect-free blank assignments
//	paniccall  no panic in internal packages reachable from the serving
//	           path; return errors instead
//	floatcmp   no ==/!= on floating-point values in cost-model and neural
//	           network code (except the exact-zero sentinel idiom)
//	metricreg  instruments are registered once, at init or in a New*
//	           constructor — never on the request path, where a fresh
//	           series or a name collision would surface under load
//	tapeshare  an nn.Tape is single-goroutine state — never captured by a
//	           goroutine closure, passed to a spawned call, or sent over a
//	           channel; parallel training gives each worker its own tape
//	allocfree  functions annotated //waco:allocfree must have zero heap
//	           allocations attributed to their own source by the compiler's
//	           escape analysis (judged with inlining disabled) — the static
//	           form of the query path's AllocsPerRun==0 tests
//	goleak     goroutines in serving packages must be joined, signal
//	           completion, or watch cancellation — no fire-and-forget spawns
//	lockhold   no blocking operation (channel ops, selects without default,
//	           sleeps, IO, waits) while a sync.Mutex/RWMutex is held; built
//	           on the package's CFG + forward may-dataflow engine (cfg.go)
//
// Code can opt out of one or more checks with a suppression comment that
// names the checks and states a reason:
//
//	//waco:nolint paniccall -- shape-mismatch panics flag programmer error, not input
//
// Suppressions are scoped, never file-wide: a nolint in a declaration's doc
// comment covers exactly that declaration's source range, and a nolint
// anywhere else covers its own line and the next one. A nolint in the
// package doc comment, a suppression without a reason, or one naming an
// unknown check is itself reported as a finding, so suppressions stay
// narrow and auditable.
package wacovet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position. File is relative to
// the module root.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Package is one type-checked, non-test package of the module.
type Package struct {
	Path    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string
}

// Module is the loaded package set the analyzers run over.
type Module struct {
	Dir      string // module root directory
	Path     string // module path ("waco")
	Fset     *token.FileSet
	Packages []*Package
}

// Analyzer is one named check over the whole module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Module) []Finding
}

// DefaultAnalyzers returns the full suite configured for the module path
// (the real module passes "waco"; tests pass fixture-specific configs to the
// New*Analyzer constructors instead).
func DefaultAnalyzers(module string) []*Analyzer {
	return []*Analyzer{
		NewCtxflowAnalyzer(DefaultCtxflowConfig(module)),
		NewRngsourceAnalyzer(DefaultRngsourceConfig(module)),
		NewErrdropAnalyzer(DefaultErrdropConfig()),
		NewPaniccallAnalyzer(DefaultPaniccallConfig(module)),
		NewFloatcmpAnalyzer(DefaultFloatcmpConfig(module)),
		NewMetricregAnalyzer(DefaultMetricregConfig(module)),
		NewTapeshareAnalyzer(DefaultTapeshareConfig(module)),
		NewAllocfreeAnalyzer(DefaultAllocfreeConfig(module)),
		NewGoleakAnalyzer(DefaultGoleakConfig(module)),
		NewLockholdAnalyzer(DefaultLockholdConfig(module)),
	}
}

// RunAnalyzers runs every analyzer, applies scoped //waco:nolint
// suppressions, reports malformed suppressions, and returns the surviving
// findings sorted by position.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Finding {
	// A suppression is validated against the full default suite, not just the
	// analyzers in this run: `waco-vet -check allocfree` must not flag every
	// `//waco:nolint paniccall` in the tree as naming an unknown check.
	known := map[string]bool{}
	for _, a := range DefaultAnalyzers(m.Path) {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	suppressed, findings := m.collectNolint(known)
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if suppressedAt(suppressed[f.File], f.Check, f.Line) {
				continue
			}
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings
}

// nolintPrefix introduces a scoped suppression comment.
const nolintPrefix = "//waco:nolint"

// nolintRange is one suppression's scope: check is silenced on lines
// [from, to] of its file.
type nolintRange struct {
	check    string
	from, to int
}

// suppressedAt reports whether a finding for check at line falls inside one
// of the file's suppression ranges.
func suppressedAt(ranges []nolintRange, check string, line int) bool {
	for _, r := range ranges {
		if r.check == check && line >= r.from && line <= r.to {
			return true
		}
	}
	return false
}

// collectNolint gathers scoped suppressions per file and returns findings
// for malformed ones: a missing "-- reason" tail, an unknown check name, or
// a package-doc placement (file-wide suppression is not supported). A nolint
// inside a declaration's doc comment covers that declaration's source range;
// any other placement covers the comment's own line and the next.
func (m *Module) collectNolint(known map[string]bool) (map[string][]nolintRange, []Finding) {
	suppressed := map[string][]nolintRange{}
	var bad []Finding
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			declScope, pkgDoc := m.nolintScopes(file)
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, nolintPrefix) {
						continue
					}
					pos := m.position(c.Pos())
					if pkgDoc[c] {
						bad = append(bad, Finding{
							File: pos.File, Line: pos.Line, Col: pos.Col, Check: "nolint",
							Message: "file-wide suppression via the package doc is not allowed; attach //waco:nolint to the declaration or line it excuses",
						})
						continue
					}
					spec := strings.TrimSpace(strings.TrimPrefix(c.Text, nolintPrefix))
					checksPart, reason, found := strings.Cut(spec, "--")
					if !found || strings.TrimSpace(reason) == "" {
						bad = append(bad, Finding{
							File: pos.File, Line: pos.Line, Col: pos.Col, Check: "nolint",
							Message: `suppression needs a reason: "//waco:nolint <checks> -- <reason>"`,
						})
						continue
					}
					checks := strings.FieldsFunc(checksPart, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
					if len(checks) == 0 {
						bad = append(bad, Finding{
							File: pos.File, Line: pos.Line, Col: pos.Col, Check: "nolint",
							Message: "suppression names no checks",
						})
						continue
					}
					from, to := pos.Line, pos.Line+1
					if r, ok := declScope[c]; ok {
						from, to = r[0], r[1]
					}
					for _, check := range checks {
						if !known[check] {
							bad = append(bad, Finding{
								File: pos.File, Line: pos.Line, Col: pos.Col, Check: "nolint",
								Message: fmt.Sprintf("suppression names unknown check %q", check),
							})
							continue
						}
						suppressed[pos.File] = append(suppressed[pos.File], nolintRange{check: check, from: from, to: to})
					}
				}
			}
		}
	}
	return suppressed, bad
}

// nolintScopes classifies a file's comments for suppression scoping: comments
// that live in a top-level declaration's doc group map to that declaration's
// line range, and the package doc group's comments are flagged so a nolint
// there can be rejected.
func (m *Module) nolintScopes(file *ast.File) (map[*ast.Comment][2]int, map[*ast.Comment]bool) {
	declScope := map[*ast.Comment][2]int{}
	pkgDoc := map[*ast.Comment]bool{}
	if file.Doc != nil {
		for _, c := range file.Doc.List {
			pkgDoc[c] = true
		}
	}
	addDoc := func(doc *ast.CommentGroup, start, end token.Pos) {
		if doc == nil {
			return
		}
		from := m.Fset.Position(start).Line
		to := m.Fset.Position(end).Line
		for _, c := range doc.List {
			declScope[c] = [2]int{from, to}
		}
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			addDoc(d.Doc, d.Pos(), d.End())
		case *ast.GenDecl:
			addDoc(d.Doc, d.Pos(), d.End())
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					addDoc(s.Doc, s.Pos(), s.End())
				case *ast.TypeSpec:
					addDoc(s.Doc, s.Pos(), s.End())
				}
			}
		}
	}
	return declScope, pkgDoc
}

// position resolves a token.Pos to a module-relative file position.
func (m *Module) position(pos token.Pos) Finding {
	p := m.Fset.Position(pos)
	file := p.Filename
	if rel, ok := strings.CutPrefix(file, m.Dir+"/"); ok {
		file = rel
	}
	return Finding{File: file, Line: p.Line, Col: p.Column}
}

// finding builds a Finding at pos.
func (m *Module) finding(pos token.Pos, check, format string, args ...any) Finding {
	f := m.position(pos)
	f.Check = check
	f.Message = fmt.Sprintf(format, args...)
	return f
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pathApplies reports whether pkgPath equals one of the entries or sits
// beneath an entry ending in "/...".
func pathApplies(pkgPath string, entries []string) bool {
	for _, e := range entries {
		if sub, ok := strings.CutSuffix(e, "/..."); ok {
			if pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/") {
				return true
			}
		} else if pkgPath == e {
			return true
		}
	}
	return false
}
