// Package wacovet is WACO's project-specific static-analysis framework.
// It loads every package of the module with go/parser + go/types (stdlib
// only; export data for dependencies comes from `go list -export`) and runs
// a suite of analyzers that enforce the tuner's correctness invariants:
//
//	ctxflow    exported functions on the serving path that measure
//	           candidates or traverse the HNSW index must accept and use a
//	           context.Context, so cancellation propagates into the search
//	rngsource  library code must not call global math/rand functions —
//	           randomness comes from an injected, seeded *rand.Rand so
//	           training and search are reproducible
//	errdrop    no discarded or unchecked errors outside a small allowlist,
//	           and no side-effect-free blank assignments
//	paniccall  no panic in internal packages reachable from the serving
//	           path; return errors instead
//	floatcmp   no ==/!= on floating-point values in cost-model and neural
//	           network code (except the exact-zero sentinel idiom)
//	metricreg  instruments are registered once, at init or in a New*
//	           constructor — never on the request path, where a fresh
//	           series or a name collision would surface under load
//	tapeshare  an nn.Tape is single-goroutine state — never captured by a
//	           goroutine closure, passed to a spawned call, or sent over a
//	           channel; parallel training gives each worker its own tape
//
// A file can opt out of one or more checks with a suppression comment that
// names the checks and states a reason:
//
//	//waco:nolint paniccall -- shape-mismatch panics flag programmer error, not input
//
// The suppression applies to the whole file. A nolint comment without a
// reason, or naming an unknown check, is itself reported as a finding, so
// suppressions stay auditable.
package wacovet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position. File is relative to
// the module root.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Package is one type-checked, non-test package of the module.
type Package struct {
	Path    string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string
}

// Module is the loaded package set the analyzers run over.
type Module struct {
	Dir      string // module root directory
	Path     string // module path ("waco")
	Fset     *token.FileSet
	Packages []*Package
}

// Analyzer is one named check over the whole module.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Module) []Finding
}

// DefaultAnalyzers returns the full suite configured for the module path
// (the real module passes "waco"; tests pass fixture-specific configs to the
// New*Analyzer constructors instead).
func DefaultAnalyzers(module string) []*Analyzer {
	return []*Analyzer{
		NewCtxflowAnalyzer(DefaultCtxflowConfig(module)),
		NewRngsourceAnalyzer(DefaultRngsourceConfig(module)),
		NewErrdropAnalyzer(DefaultErrdropConfig()),
		NewPaniccallAnalyzer(DefaultPaniccallConfig(module)),
		NewFloatcmpAnalyzer(DefaultFloatcmpConfig(module)),
		NewMetricregAnalyzer(DefaultMetricregConfig(module)),
		NewTapeshareAnalyzer(DefaultTapeshareConfig(module)),
	}
}

// RunAnalyzers runs every analyzer, applies per-file //waco:nolint
// suppressions, reports malformed suppressions, and returns the surviving
// findings sorted by position.
func RunAnalyzers(m *Module, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	suppressed, findings := m.collectNolint(known)
	for _, a := range analyzers {
		for _, f := range a.Run(m) {
			if suppressed[f.File][f.Check] {
				continue
			}
			findings = append(findings, f)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return findings
}

// nolintPrefix introduces a per-file suppression comment.
const nolintPrefix = "//waco:nolint"

// collectNolint gathers per-file suppressions (file -> check -> true) and
// returns findings for malformed ones: a missing "-- reason" tail or an
// unknown check name.
func (m *Module) collectNolint(known map[string]bool) (map[string]map[string]bool, []Finding) {
	suppressed := map[string]map[string]bool{}
	var bad []Finding
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, nolintPrefix) {
						continue
					}
					pos := m.position(c.Pos())
					spec := strings.TrimSpace(strings.TrimPrefix(c.Text, nolintPrefix))
					checksPart, reason, found := strings.Cut(spec, "--")
					if !found || strings.TrimSpace(reason) == "" {
						bad = append(bad, Finding{
							File: pos.File, Line: pos.Line, Col: pos.Col, Check: "nolint",
							Message: `suppression needs a reason: "//waco:nolint <checks> -- <reason>"`,
						})
						continue
					}
					checks := strings.FieldsFunc(checksPart, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
					if len(checks) == 0 {
						bad = append(bad, Finding{
							File: pos.File, Line: pos.Line, Col: pos.Col, Check: "nolint",
							Message: "suppression names no checks",
						})
						continue
					}
					for _, check := range checks {
						if !known[check] {
							bad = append(bad, Finding{
								File: pos.File, Line: pos.Line, Col: pos.Col, Check: "nolint",
								Message: fmt.Sprintf("suppression names unknown check %q", check),
							})
							continue
						}
						if suppressed[pos.File] == nil {
							suppressed[pos.File] = map[string]bool{}
						}
						suppressed[pos.File][check] = true
					}
				}
			}
		}
	}
	return suppressed, bad
}

// position resolves a token.Pos to a module-relative file position.
func (m *Module) position(pos token.Pos) Finding {
	p := m.Fset.Position(pos)
	file := p.Filename
	if rel, ok := strings.CutPrefix(file, m.Dir+"/"); ok {
		file = rel
	}
	return Finding{File: file, Line: p.Line, Col: p.Column}
}

// finding builds a Finding at pos.
func (m *Module) finding(pos token.Pos, check, format string, args ...any) Finding {
	f := m.position(pos)
	f.Check = check
	f.Message = fmt.Sprintf(format, args...)
	return f
}

// calleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pathApplies reports whether pkgPath equals one of the entries or sits
// beneath an entry ending in "/...".
func pathApplies(pkgPath string, entries []string) bool {
	for _, e := range entries {
		if sub, ok := strings.CutSuffix(e, "/..."); ok {
			if pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/") {
				return true
			}
		} else if pkgPath == e {
			return true
		}
	}
	return false
}
