package wacovet

// allocfree proves the query path's zero-allocation invariant statically.
// A function annotated
//
//	//waco:allocfree
//
// in its doc comment promises that no heap allocation or escape is
// attributed to its own source. The analyzer shells out to the compiler's
// escape analysis (`go build -gcflags=<pkg>='-m=2 -l'`), parses the
// diagnostics, and reports every allocation the compiler attributes to an
// annotated function's source range.
//
// Inlining is disabled (-l) for the annotated packages on purpose: with
// inlining on, an inlined callee's allocations are reported at the CALLER's
// position, so a cold panic-path fmt.Sprintf three calls away would fail an
// innocent annotated function — and, symmetrically, an annotated function's
// own allocation could migrate out to its callers and go unseen. With -l
// every diagnostic lands on the line that declares it, which makes the
// contract crisp: "zero heap allocations attributed to this function's own
// body, judged with inlining disabled". Escapes caused by calling OTHER
// functions (interface boxing of arguments, variadic slices) still show up
// at the call site inside the annotated body, so the contract covers the
// whole local cost of the function — only the callee's internals need their
// own annotations.
//
// The `go build` runs against the build cache, which replays compile
// diagnostics verbatim on repeat runs, so the steady-state cost of the check
// is one cache probe per annotated package.

import (
	"bytes"
	"fmt"
	"go/ast"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// allocfreeMarker is the doc-comment annotation that opts a function into
// the static zero-allocation gate.
const allocfreeMarker = "//waco:allocfree"

// AllocfreeConfig configures the allocfree analyzer.
type AllocfreeConfig struct {
	// Gcflags is the per-package compiler flag string; the default enables
	// escape diagnostics and disables inlining so attribution is exact.
	Gcflags string
}

// DefaultAllocfreeConfig returns the production configuration. The module
// argument is unused (annotations mark the functions to gate) but kept for
// symmetry with the other analyzer constructors.
func DefaultAllocfreeConfig(module string) AllocfreeConfig {
	return AllocfreeConfig{}
}

// NewAllocfreeAnalyzer builds the analyzer.
func NewAllocfreeAnalyzer(cfg AllocfreeConfig) *Analyzer {
	if cfg.Gcflags == "" {
		cfg.Gcflags = "-m=2 -l"
	}
	return &Analyzer{
		Name: "allocfree",
		Doc:  "functions annotated //waco:allocfree must have no heap allocation attributed to their source by escape analysis (inlining disabled)",
		Run:  func(m *Module) []Finding { return runAllocfree(m, cfg) },
	}
}

// annotatedFunc is one //waco:allocfree function's source range.
type annotatedFunc struct {
	name     string // rendered name, e.g. "(*Linear).InferInto"
	file     string // module-relative path
	from, to int    // inclusive line range of the declaration
}

// escapeDiag matches one compiler diagnostic line.
var escapeDiag = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

func runAllocfree(m *Module, cfg AllocfreeConfig) []Finding {
	byPkg := map[string][]annotatedFunc{} // import path -> annotated funcs
	byFile := map[string][]annotatedFunc{}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasAllocfreeMarker(fd.Doc) {
					continue
				}
				pos := m.position(fd.Pos())
				af := annotatedFunc{
					name: funcDisplayName(fd),
					file: pos.File,
					from: pos.Line,
					to:   m.position(fd.End()).Line,
				}
				byPkg[pkg.Path] = append(byPkg[pkg.Path], af)
				byFile[af.file] = append(byFile[af.file], af)
			}
		}
	}
	if len(byPkg) == 0 {
		return nil
	}

	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	// One `go build` compiles every annotated package with escape diagnostics
	// on and inlining off. Each package gets its own -gcflags pattern so the
	// rest of the build (dependencies) compiles normally and stays cached.
	args := []string{"build"}
	for _, p := range pkgs {
		args = append(args, "-gcflags="+p+"="+cfg.Gcflags)
	}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = m.Dir
	var stderr bytes.Buffer
	cmd.Stdout = &stderr // diagnostics arrive on stderr; merge defensively
	cmd.Stderr = &stderr
	buildErr := cmd.Run()

	var findings []Finding
	seen := map[string]bool{}
	matchedAny := false
	for _, line := range strings.Split(stderr.String(), "\n") {
		d := escapeDiag.FindStringSubmatch(line)
		if d == nil {
			continue
		}
		matchedAny = true
		msg, isAlloc := classifyEscape(d[4])
		if !isAlloc {
			continue
		}
		file := d[1]
		if rel, ok := strings.CutPrefix(file, m.Dir+"/"); ok {
			file = rel
		}
		ln, err := strconv.Atoi(d[2])
		if err != nil {
			continue
		}
		col, err := strconv.Atoi(d[3])
		if err != nil {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d", file, ln, col)
		if seen[key] {
			// -m=2 reports most escapes more than once at the same position:
			// a bare form, a form with the flow explanation, and sometimes
			// both "escapes to heap" and "moved to heap" phrasings. One
			// finding per allocation site is enough.
			continue
		}
		seen[key] = true
		for _, af := range byFile[file] {
			if ln >= af.from && ln <= af.to {
				findings = append(findings, Finding{
					File: file, Line: ln, Col: col, Check: "allocfree",
					Message: fmt.Sprintf("heap allocation in //waco:allocfree function %s: %s", af.name, msg),
				})
				break
			}
		}
	}
	if buildErr != nil && !matchedAny {
		// The compile itself failed (it should have failed Load first, but a
		// bad Gcflags override or a vendor drift can get here): surface the
		// breakage instead of silently passing the gate.
		first := byPkg[pkgs[0]][0]
		findings = append(findings, Finding{
			File: first.file, Line: first.from, Col: 1, Check: "allocfree",
			Message: fmt.Sprintf("go build for escape analysis failed: %v: %s", buildErr, strings.TrimSpace(stderr.String())),
		})
	}
	return findings
}

// hasAllocfreeMarker reports whether a doc comment carries //waco:allocfree.
func hasAllocfreeMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == allocfreeMarker || strings.HasPrefix(text, allocfreeMarker+" ") {
			return true
		}
	}
	return false
}

// classifyEscape decides whether one -m=2 diagnostic message reports a heap
// allocation, returning a normalized message. Escape analysis also prints
// "does not escape", "leaking param", and inlining chatter — those are not
// allocations.
func classifyEscape(msg string) (string, bool) {
	switch {
	case strings.HasSuffix(msg, " escapes to heap"), strings.HasSuffix(msg, " escapes to heap:"):
		return strings.TrimSuffix(msg, ":"), true
	case strings.HasPrefix(msg, "moved to heap: "):
		return msg, true
	}
	return "", false
}

// funcDisplayName renders a FuncDecl's name with its receiver, matching how
// developers write it in docs: "(*Linear).InferInto" or "SearchWith".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	var b strings.Builder
	if star, ok := recv.(*ast.StarExpr); ok {
		b.WriteString("(*")
		writeTypeName(&b, star.X)
		b.WriteString(")")
	} else {
		writeTypeName(&b, recv)
	}
	b.WriteString(".")
	b.WriteString(fd.Name.Name)
	return b.String()
}

func writeTypeName(b *strings.Builder, e ast.Expr) {
	switch e := e.(type) {
	case *ast.Ident:
		b.WriteString(e.Name)
	case *ast.IndexExpr: // generic receiver T[P]
		writeTypeName(b, e.X)
	case *ast.IndexListExpr:
		writeTypeName(b, e.X)
	default:
		b.WriteString("?")
	}
}
