package wacovet

import (
	"go/ast"
	"go/types"
	"strings"
)

// MetricregConfig scopes the metricreg check.
type MetricregConfig struct {
	// Packages are package paths (exact or "prefix/...") whose code the
	// check inspects.
	Packages []string
	// MetricsPkg is the package whose exported New* methods mint and
	// register instruments (the real module passes "waco/internal/metrics").
	MetricsPkg string
}

// DefaultMetricregConfig confines instrument registration to initialization:
// metric families are a fixed vocabulary declared when a component is built,
// so every registration (a Registry.New* call) must happen in a package-level
// var initializer, an init function, or a New*/new* constructor. A
// registration reached per request would allocate a new series map entry on
// the hot path and, worse, silently alias or panic on a name collision under
// load instead of at startup.
func DefaultMetricregConfig(module string) MetricregConfig {
	return MetricregConfig{
		Packages:   []string{module, module + "/..."},
		MetricsPkg: module + "/internal/metrics",
	}
}

// NewMetricregAnalyzer builds the metricreg check.
func NewMetricregAnalyzer(cfg MetricregConfig) *Analyzer {
	return &Analyzer{
		Name: "metricreg",
		Doc:  "instruments are registered at init or construction (package-level var, init, or New*/new* functions), never on the request path",
		Run:  func(m *Module) []Finding { return runMetricreg(m, cfg) },
	}
}

// registrationAllowed reports whether a function name marks an
// initialization context: init, or an exported/unexported constructor.
func registrationAllowed(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") ||
		strings.HasPrefix(name, "new")
}

func runMetricreg(m *Module, cfg MetricregConfig) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		if !pathApplies(pkg.Path, cfg.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					// Package-level var initializers run once at program
					// start; any registration there is fine.
					continue
				}
				if registrationAllowed(fd.Name.Name) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := calleeFunc(pkg.Info, call)
					if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != cfg.MetricsPkg {
						return true
					}
					sig, _ := fn.Type().(*types.Signature)
					if sig == nil || sig.Recv() == nil || !strings.HasPrefix(fn.Name(), "New") {
						return true
					}
					out = append(out, m.finding(call.Pos(), "metricreg",
						"%s.%s called inside %s; register instruments once at init or in a New* constructor, not per request",
						fn.Pkg().Name(), fn.Name(), fd.Name.Name))
					return true
				})
			}
		}
	}
	return out
}
