package wacovet

import (
	"go/ast"
	"go/types"
)

// ErrdropConfig scopes the errdrop check.
type ErrdropConfig struct {
	// Allowed holds types.Func.FullName() strings whose error results may
	// be ignored — plus "<recv type>.<method>" entries matched against the
	// receiver's static type, so methods promoted from embedded interfaces
	// (hash.Hash's Write is io.Writer's) can be allowlisted without
	// exempting the embedded interface everywhere. Calls in defer
	// statements are always exempt (deferred cleanup has nowhere to report
	// to).
	Allowed map[string]bool
}

// DefaultErrdropConfig allowlists calls whose errors are either impossible
// by contract (hash.Hash.Write, in-memory builders/buffers) or routed to
// terminal/stdout streams where the process has no better channel to report
// the failure on than the one that just failed.
func DefaultErrdropConfig() ErrdropConfig {
	allowed := map[string]bool{
		"hash.Hash.Write":                true, // digest writes never fail by contract
		"(*text/tabwriter.Writer).Flush": true,
	}
	for _, name := range []string{"Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln"} {
		allowed["fmt."+name] = true
	}
	for _, recv := range []string{"(*strings.Builder)", "(*bytes.Buffer)"} {
		for _, name := range []string{"Write", "WriteString", "WriteByte", "WriteRune"} {
			allowed[recv+"."+name] = true
		}
	}
	return ErrdropConfig{Allowed: allowed}
}

// NewErrdropAnalyzer builds the errdrop check.
func NewErrdropAnalyzer(cfg ErrdropConfig) *Analyzer {
	return &Analyzer{
		Name: "errdrop",
		Doc:  "no `_ =` error discards, unchecked error-returning calls, or side-effect-free blank assignments outside the allowlist",
		Run:  func(m *Module) []Finding { return runErrdrop(m, cfg) },
	}
}

func runErrdrop(m *Module, cfg ErrdropConfig) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch stmt := n.(type) {
				case *ast.AssignStmt:
					out = append(out, checkAssign(m, pkg, cfg, stmt)...)
				case *ast.ExprStmt:
					if call, ok := stmt.X.(*ast.CallExpr); ok {
						out = append(out, checkCallStmt(m, pkg, cfg, call)...)
					}
				case *ast.DeferStmt, *ast.GoStmt:
					return false // deferred/async cleanup is exempt
				}
				return true
			})
		}
	}
	return out
}

// checkAssign flags blank assignments that discard an error value and blank
// assignments of side-effect-free expressions (dead assignments).
func checkAssign(m *Module, pkg *Package, cfg ErrdropConfig, stmt *ast.AssignStmt) []Finding {
	var out []Finding
	for i, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var rhs ast.Expr
		var typ types.Type
		if len(stmt.Rhs) == len(stmt.Lhs) {
			rhs = stmt.Rhs[i]
			typ = pkg.Info.Types[rhs].Type
		} else if len(stmt.Rhs) == 1 {
			rhs = stmt.Rhs[0]
			if tup, ok := pkg.Info.Types[rhs].Type.(*types.Tuple); ok && i < tup.Len() {
				typ = tup.At(i).Type()
			}
		}
		if typ != nil && isErrorType(typ) && !allowedCall(pkg.Info, rhs, cfg) {
			out = append(out, m.finding(id.Pos(), "errdrop",
				"error discarded with `_ =`; handle it or allowlist the callee"))
			continue
		}
		if sideEffectFree(rhs) {
			out = append(out, m.finding(id.Pos(), "errdrop",
				"dead assignment: `_ = %s` has no effect; use the value or delete it", exprString(rhs)))
		}
	}
	return out
}

// checkCallStmt flags expression statements whose call drops an error result.
func checkCallStmt(m *Module, pkg *Package, cfg ErrdropConfig, call *ast.CallExpr) []Finding {
	typ := pkg.Info.Types[call].Type
	if typ == nil || !resultHasError(typ) || allowedCall(pkg.Info, call, cfg) {
		return nil
	}
	name := "call"
	if fn := calleeFunc(pkg.Info, call); fn != nil {
		name = fn.FullName()
	}
	return []Finding{m.finding(call.Pos(), "errdrop",
		"unchecked error returned by %s", name)}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// resultHasError reports whether a call's result type is or contains error.
func resultHasError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// allowedCall reports whether expr is a call to an allowlisted function,
// matched by the callee's full name or by the receiver's static type.
func allowedCall(info *types.Info, expr ast.Expr, cfg ErrdropConfig) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if cfg.Allowed[fn.FullName()] {
		return true
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && cfg.Allowed[s.Recv().String()+"."+fn.Name()] {
			return true
		}
	}
	return false
}

// sideEffectFree reports whether discarding expr discards nothing but a
// value: bare identifiers and selector chains over them.
func sideEffectFree(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name != "_" // `_ = _` is not even legal; guard anyway
	case *ast.SelectorExpr:
		return sideEffectFree(e.X)
	}
	return false
}

// exprString renders the small expressions sideEffectFree accepts.
func exprString(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "..."
}
