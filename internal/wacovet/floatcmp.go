package wacovet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatcmpConfig scopes the floatcmp check.
type FloatcmpConfig struct {
	// Packages are package paths (exact or "prefix/...") in which ==/!= on
	// floating-point operands is banned.
	Packages []string
}

// DefaultFloatcmpConfig covers the numeric heart of the tuner: the neural
// network library and the cost model, where exact equality of computed
// floats is almost always a latent reproducibility bug. Comparison against
// an exact constant zero stays legal — skipping zero gradients and testing
// unset sentinels are well-defined.
func DefaultFloatcmpConfig(module string) FloatcmpConfig {
	return FloatcmpConfig{
		Packages: []string{
			module + "/internal/costmodel",
			module + "/internal/nn",
		},
	}
}

// NewFloatcmpAnalyzer builds the floatcmp check.
func NewFloatcmpAnalyzer(cfg FloatcmpConfig) *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "no ==/!= on floating-point values in cost-model/nn code (exact-zero comparisons excepted)",
		Run:  func(m *Module) []Finding { return runFloatcmp(m, cfg) },
	}
}

func runFloatcmp(m *Module, cfg FloatcmpConfig) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		if !pathApplies(pkg.Path, cfg.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
					return true
				}
				if !isFloat(pkg.Info, cmp.X) && !isFloat(pkg.Info, cmp.Y) {
					return true
				}
				if isExactZero(pkg.Info, cmp.X) || isExactZero(pkg.Info, cmp.Y) {
					return true
				}
				out = append(out, m.finding(cmp.OpPos, "floatcmp",
					"floating-point %s comparison; use a tolerance or compare ordinals", cmp.Op))
				return true
			})
		}
	}
	return out
}

func isFloat(info *types.Info, expr ast.Expr) bool {
	t := info.Types[expr].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isExactZero(info *types.Info, expr ast.Expr) bool {
	v := info.Types[expr].Value
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
