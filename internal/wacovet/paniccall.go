package wacovet

import (
	"go/ast"
	"go/types"
)

// PaniccallConfig scopes the paniccall check.
type PaniccallConfig struct {
	// Roots are the serving-path entry packages; every module package
	// reachable from them through imports is in scope.
	Roots []string
	// Within limits findings to packages matching these entries (exact or
	// "prefix/..."), so the rule stays about library code.
	Within []string
}

// DefaultPaniccallConfig bans panic in every internal package the serving
// daemon can reach: a panic in shared library code takes down the whole
// process, so request-dependent failures must surface as errors.
func DefaultPaniccallConfig(module string) PaniccallConfig {
	return PaniccallConfig{
		Roots: []string{
			module + "/internal/serve",
			module + "/internal/cluster",
		},
		Within: []string{module + "/internal/..."},
	}
}

// NewPaniccallAnalyzer builds the paniccall check.
func NewPaniccallAnalyzer(cfg PaniccallConfig) *Analyzer {
	return &Analyzer{
		Name: "paniccall",
		Doc:  "no panic in internal packages reachable from the serving path; return errors instead",
		Run:  func(m *Module) []Finding { return runPaniccall(m, cfg) },
	}
}

func runPaniccall(m *Module, cfg PaniccallConfig) []Finding {
	byPath := map[string]*Package{}
	for _, pkg := range m.Packages {
		byPath[pkg.Path] = pkg
	}
	// BFS over module-internal imports from the serving roots.
	reachable := map[string]bool{}
	queue := append([]string(nil), cfg.Roots...)
	for len(queue) > 0 {
		path := queue[0]
		queue = queue[1:]
		if reachable[path] || byPath[path] == nil {
			continue
		}
		reachable[path] = true
		queue = append(queue, byPath[path].Imports...)
	}

	var out []Finding
	for _, pkg := range m.Packages {
		if !reachable[pkg.Path] || !pathApplies(pkg.Path, cfg.Within) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				out = append(out, m.finding(call.Pos(), "paniccall",
					"panic in %s, which the serving path reaches; return an error instead", pkg.Path))
				return true
			})
		}
	}
	return out
}
