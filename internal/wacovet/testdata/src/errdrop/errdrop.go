// Package errdrop is a known-bad fixture for the errdrop analyzer.
package errdrop

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Bad collects every shape of dropped error plus a dead assignment.
func Bad() int {
	mayFail() // want errdrop

	_ = mayFail() // want errdrop

	n, _ := pair() // want errdrop

	_ = n // want errdrop

	var sb strings.Builder
	sb.WriteString("builder writes are allowlisted")
	fmt.Println(sb.String())

	defer mayFail() // deferred cleanup is exempt

	return n
}

// Good handles everything it calls.
func Good() error {
	if err := mayFail(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	_, _ = fmt.Println(n)
	return nil
}
