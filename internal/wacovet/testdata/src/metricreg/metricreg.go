// Package metricreg is a known-bad fixture for the metricreg analyzer. The
// Registry type stands in for waco/internal/metrics.Registry: the test points
// MetricsPkg at this package, and the analyzer recognizes registration as any
// exported New* method of that package.
package metricreg

// Registry mints named instruments; every New* method is a registration.
type Registry struct{}

// Counter is a minted instrument.
type Counter struct{}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name string) *Counter { return &Counter{} }

// NewRegistry constructs an empty registry (not itself a registration — it
// has no receiver).
func NewRegistry() *Registry { return &Registry{} }

// Package-level initializers run once at program start: allowed.
var pkgCounter = NewRegistry().NewCounter("ok_at_package_level")

var pkgReg = NewRegistry()

func init() {
	pkgReg.NewCounter("ok_in_init")
}

type server struct {
	reg  *Registry
	reqs *Counter
}

// NewServer registers at construction: allowed.
func NewServer() *server {
	s := &server{reg: NewRegistry()}
	s.reqs = s.reg.NewCounter("ok_in_constructor")
	return s
}

// newLocal is an unexported constructor: allowed.
func newLocal(r *Registry) *Counter { return r.NewCounter("ok_unexported_new") }

// HandleRequest registers on the request path: a fresh series per call, and a
// name collision surfaces under load instead of at startup.
func (s *server) HandleRequest() {
	c := s.reg.NewCounter("request_scoped") // want metricreg
	_ = c
	_ = pkgCounter
	_ = newLocal(s.reg)
}

// Observe hides the registration in a closure, but the enclosing function is
// still the request path: flagged.
func (s *server) Observe() func() {
	return func() {
		s.reg.NewCounter("closure_scoped") // want metricreg
	}
}
