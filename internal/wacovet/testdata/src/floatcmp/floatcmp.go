// Package floatcmp is a known-bad fixture for the floatcmp analyzer.
package floatcmp

// BadEqual compares computed floats exactly.
func BadEqual(a, b float64) bool {
	return a == b // want floatcmp
}

// BadNotEqual compares against a non-zero constant.
func BadNotEqual(x float32) bool {
	return x != 1.5 // want floatcmp
}

// GoodZeroSentinel compares against exact zero, the legal sentinel idiom.
func GoodZeroSentinel(gradient float64) bool {
	return gradient == 0
}

// GoodTolerance compares with an epsilon, as the rule wants.
func GoodTolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// GoodInts is out of the rule's type scope entirely.
func GoodInts(a, b int) bool {
	return a == b
}
