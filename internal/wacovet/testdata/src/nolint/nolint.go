// Package nolint exercises the scoped //waco:nolint suppression convention:
// a declaration-doc suppression that covers exactly its declaration, a
// line-scoped suppression covering the next line, an out-of-scope use of the
// same check that must still be reported, and three malformed suppressions
// (package-doc placement, missing reason, unknown check).
//
//waco:nolint rngsource -- package-doc placement is rejected; this line is the fixture's file-wide case
package nolint

import "math/rand"

// SuppressedDecl would be an rngsource finding; the doc-attached nolint
// covers the whole declaration, including the second call deeper inside.
//
//waco:nolint rngsource -- fixture: declaration-scoped suppression
func SuppressedDecl(n int) int {
	a := rand.Intn(n)
	b := rand.Intn(n + 1)
	return a + b
}

// SuppressedLine shows line scope: the first call is excused by the comment
// directly above it, the second sits outside the two-line window.
func SuppressedLine(n int) int {
	//waco:nolint rngsource -- fixture: line-scoped suppression
	a := rand.Intn(n)

	b := rand.Intn(n + 1) // want rngsource
	return a + b
}

//waco:nolint floatcmp

// Placeholder keeps the package non-trivial.
func Placeholder() int { return 42 }

//waco:nolint nosuchcheck -- the check name above is deliberately bogus
