// Package nolint exercises the //waco:nolint suppression convention: one
// well-formed suppression that must swallow the rngsource finding below, one
// missing its reason, and one naming a check that does not exist.
//
//waco:nolint rngsource -- fixture: this file exists to prove suppression works
package nolint

import "math/rand"

//waco:nolint floatcmp

// Suppressed would be an rngsource finding without the file-level comment.
func Suppressed(n int) int {
	return rand.Intn(n)
}

//waco:nolint nosuchcheck -- the check name above is deliberately bogus

// Placeholder keeps the package non-trivial.
func Placeholder() int { return 42 }
