// Package rngsource is a known-bad fixture for the rngsource analyzer.
package rngsource

import "math/rand"

// BadDraw taps the global generator, so runs cannot be replayed.
func BadDraw(n int) int {
	return rand.Intn(n) // want rngsource
}

// BadShuffle permutes through the global generator.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want rngsource
}

// GoodDraw draws from an injected generator.
func GoodDraw(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// GoodNew constructs a seeded generator, which stays legal: construction is
// how the seed gets injected in the first place.
func GoodNew(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
