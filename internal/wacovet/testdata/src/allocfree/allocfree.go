// Package allocfree exercises the static zero-allocation gate: annotated
// functions that stay on the stack pass, and each way an allocation can be
// attributed to an annotated body — an escaping make, a variable moved to
// the heap, interface boxing at a call site — is a finding. Unannotated
// functions may allocate freely.
package allocfree

import "fmt"

// Clean is allocation-free: it only writes through caller-owned slices.
//
//waco:allocfree
func Clean(dst, src []float64) {
	for i := range src {
		dst[i] = src[i] * 2
	}
}

// CleanScratch reuses a scratch struct's buffer without growing it, the
// hot-path idiom the annotation exists to protect.
//
//waco:allocfree
func CleanScratch(s *Scratch, xs []float64) float64 {
	var sum float64
	for i, x := range xs {
		if i < len(s.Buf) {
			s.Buf[i] = x
			sum += x
		}
	}
	return sum
}

// Scratch is reusable state allocated outside the annotated path.
type Scratch struct{ Buf []float64 }

// NewScratch allocates the scratch; it is deliberately unannotated.
func NewScratch(n int) *Scratch {
	return &Scratch{Buf: make([]float64, n)}
}

// EscapesSlice breaks the contract: the make escapes via the return value.
//
//waco:allocfree
func EscapesSlice(n int) []float64 {
	out := make([]float64, n) // want allocfree
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// EscapesVar breaks the contract: returning x's address moves it to the heap.
//
//waco:allocfree
func EscapesVar() *int {
	x := 42 // want allocfree
	return &x
}

// Boxes breaks the contract: passing n to fmt.Sprint boxes it into an
// interface, which escapes at the call site inside this body.
//
//waco:allocfree
func Boxes(n int) string {
	return fmt.Sprint(n) // want allocfree
}

// Unannotated allocates on purpose and must produce no finding.
func Unannotated(n int) []float64 {
	return make([]float64, n)
}
