// Package paniccall is a known-bad fixture for the paniccall analyzer: the
// test configures this package as its own serving root.
package paniccall

import "fmt"

// Explode panics on bad input instead of returning an error.
func Explode(n int) (int, error) {
	if n < 0 {
		panic("negative size") // want paniccall
	}
	if n > 1<<20 {
		return 0, fmt.Errorf("size %d too large", n)
	}
	return n * 2, nil
}

// Recoverable returns errors like serving-path code should.
func Recoverable(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("negative size %d", n)
	}
	return n * 2, nil
}
