// Package tapeshare is a known-bad fixture for the tapeshare analyzer: Tape
// stands in for nn.Tape (the analyzer is configured with this package's own
// type).
package tapeshare

import "sync"

// Tape mimics the autodiff tape: single-goroutine by contract.
type Tape struct {
	backs []func()
}

// Push records a backward step.
func (t *Tape) Push(f func()) { t.backs = append(t.backs, f) }

// BadCapture shares one tape with a spawned goroutine.
func BadCapture(wg *sync.WaitGroup) {
	var tape Tape
	wg.Add(1)
	go func() {
		defer wg.Done()
		tape.Push(nil) // want tapeshare
	}()
}

// BadPointerCapture captures a *Tape free variable, and only once per
// closure even though it is used twice.
func BadPointerCapture(wg *sync.WaitGroup) {
	tape := &Tape{}
	wg.Add(1)
	go func() {
		defer wg.Done()
		tape.Push(nil) // want tapeshare
		tape.Push(nil)
	}()
}

// BadArg hands a tape to a spawned call.
func BadArg(wg *sync.WaitGroup, consume func(*Tape)) {
	tape := &Tape{}
	wg.Add(1)
	go consume(tape) // want tapeshare
}

// BadSend pushes a tape across a channel to whoever is listening.
func BadSend(ch chan *Tape) {
	ch <- &Tape{} // want tapeshare
}

// GoodPerWorker gives every goroutine its own tape, the parallel-training
// pattern.
func GoodPerWorker(wg *sync.WaitGroup) {
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tape Tape
			tape.Push(nil)
		}()
	}
}

// GoodSequential uses a tape on its own goroutine.
func GoodSequential() {
	tape := &Tape{}
	tape.Push(func() {})
}

// GoodOtherCapture captures a non-tape variable, which is fine.
func GoodOtherCapture(wg *sync.WaitGroup) {
	n := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		n++
	}()
	_ = n
}
