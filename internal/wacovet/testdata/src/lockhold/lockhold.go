// Package lockhold exercises the held-lock dataflow check: blocking ops
// (channel send/receive, selects without default, sleeps, IO) under a held
// Mutex/RWMutex are findings — including on may-held joins where only one
// branch released — while snapshot-then-act, nonblocking polls, and
// goroutine bodies with their own locking stay clean.
package lockhold

import (
	"net/http"
	"sync"
	"time"
)

// Store is the fixture's lock-guarded state.
type Store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
	ch   chan int
}

// BadSleep sleeps while holding the mutex.
func (s *Store) BadSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want lockhold
	s.mu.Unlock()
}

// BadSendDeferred shows that a deferred unlock keeps the lock held: the
// send happens before the deferred release runs.
func (s *Store) BadSendDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want lockhold
}

// BadSelect blocks in a select with no default while holding the lock.
func (s *Store) BadSelect(done chan struct{}) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want lockhold
	case <-done:
		return 0
	case v := <-s.ch:
		return v
	}
}

// BadBranch releases on only one path; the receive after the join is
// may-held and must be flagged.
func (s *Store) BadBranch(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	}
	return <-s.ch // want lockhold
}

// BadReadLock holds a read lock across an HTTP round-trip.
func (s *Store) BadReadLock(c *http.Client, url string) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	resp, err := c.Get(url) // want lockhold
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// GoodSnapshot is the house idiom: copy under the lock, release, then block.
func (s *Store) GoodSnapshot() int {
	s.mu.Lock()
	v := s.data["k"]
	s.mu.Unlock()
	s.ch <- v
	return v
}

// GoodPoll holds the lock across a select with a default clause, which
// cannot block.
func (s *Store) GoodPoll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		return v
	default:
		return 0
	}
}

// GoodSpawn sends from a spawned goroutine: that send runs on another
// stack, after this function's lock scope is gone.
func (s *Store) GoodSpawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// GoodBothBranches releases on every path before blocking.
func (s *Store) GoodBothBranches(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return <-s.ch
	}
	s.mu.Unlock()
	return <-s.ch
}
