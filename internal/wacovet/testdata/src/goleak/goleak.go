// Package goleak exercises the fire-and-forget goroutine check: spawns with
// no lifecycle discipline are findings; WaitGroup joins, channel signals,
// select/ctx cancellation, and signals hidden one call deep are all accepted.
package goleak

import (
	"context"
	"sync"
)

// Server is the fixture's stand-in for the serving tier's state.
type Server struct {
	wg   sync.WaitGroup
	done chan struct{}
}

// end is the depth-2 case: the lifecycle signal lives one call away from
// the spawned body.
func (s *Server) end() {
	s.wg.Done()
}

// work has no lifecycle discipline of its own.
func work() {
	for i := 0; i < 10; i++ {
		_ = i * i
	}
}

// Spawns exercises every accepted shape and both rejected ones.
func (s *Server) Spawns(ctx context.Context, results chan int) {
	go work() // want goleak

	go func() { // want goleak
		work()
	}()

	// WaitGroup join: accepted.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()

	// Lifecycle signal one call deep (s.end -> wg.Done): accepted.
	s.wg.Add(1)
	go func() {
		defer s.end()
		work()
	}()

	// Channel send signals completion: accepted.
	go func() {
		results <- 42
	}()

	// close() signals completion: accepted.
	ch := make(chan struct{})
	go func() {
		work()
		close(ch)
	}()

	// Watching a done channel via select: accepted.
	go func() {
		select {
		case <-s.done:
		case <-ch:
		}
	}()

	// Watching ctx.Done directly: accepted.
	go func() {
		<-ctx.Done()
	}()

	// Spawned named function taking a context: accepted (the callee owns
	// cancellation; ctxflow enforces that it uses it).
	go s.run(ctx)
}

// run loops until cancelled.
func (s *Server) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.done:
			return
		}
	}
}
