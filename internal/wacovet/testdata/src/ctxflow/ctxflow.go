// Package ctxflow is a known-bad fixture for the ctxflow analyzer: the
// test configures this package as both the rule scope and the home of the
// "measuring" callees.
package ctxflow

import "context"

type meter struct{}

func (meter) Measure(candidate int) (float64, error) { return float64(candidate), nil }

func (meter) Search(k int) []int { return make([]int, k) }

// BadTune measures every candidate with no way to cancel mid-loop.
func BadTune(cands []int) (float64, error) { // want ctxflow
	var best float64
	m := meter{}
	for _, c := range cands {
		s, err := m.Measure(c)
		if err != nil {
			return 0, err
		}
		if s > best {
			best = s
		}
	}
	return best, nil
}

// BadIgnoresCtx accepts a context but never consults it.
func BadIgnoresCtx(ctx context.Context, k int) []int { // want ctxflow
	return meter{}.Search(k)
}

// GoodTune checks its context between measurements.
func GoodTune(ctx context.Context, cands []int) (float64, error) {
	var best float64
	m := meter{}
	for _, c := range cands {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		s, err := m.Measure(c)
		if err != nil {
			return 0, err
		}
		if s > best {
			best = s
		}
	}
	return best, nil
}

// GoodUnrelated calls nothing configured, so no context is required.
func GoodUnrelated(n int) int { return n * 2 }

// unexportedTune is out of the rule's scope even though it measures.
func unexportedTune(cands []int) {
	m := meter{}
	for _, c := range cands {
		if _, err := m.Measure(c); err != nil {
			return
		}
	}
}
