package wacovet

// This file is the analysis layer's control-flow backbone: an
// intra-procedural CFG over one function body plus a forward may-dataflow
// solver, both stdlib-only. The AST-walking analyzers (rngsource, errdrop,
// ...) answer "which identifiers appear"; the CFG lets an analyzer answer
// "what has happened by the time execution reaches this statement" — the
// question lockhold needs ("is a mutex still held here?") and that future
// flow-sensitive checks (resource leaks, use-after-reset) will share.
//
// The granularity is deliberately statement-level, not SSA: each basic block
// holds the ast.Nodes that execute in order (simple statements, plus the
// init/condition expressions of the control statements that end the block).
// That is exactly the resolution a vet-style analyzer needs, and it keeps
// the builder small enough to audit by eye.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: Nodes execute in order, then control transfers
// to one of Succs. A block with no successors ends the function (return,
// panic-free fallthrough to the exit, or an os.Exit-like tail).
type Block struct {
	// Nodes are statements and control-statement operands (an if condition,
	// a range operand, a select statement) in execution order.
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Blocks[0] is the
// entry; Blocks appear in construction order, which follows source order
// closely enough for deterministic iteration.
type CFG struct {
	Blocks []*Block
}

// cfgBuilder carries the loop/label context while walking a body.
type cfgBuilder struct {
	cfg *CFG
	// breakTargets / continueTargets are stacks: innermost last. Entries for
	// switch/select push only a break target.
	breakTargets    []*Block
	continueTargets []*Block
	// labeled maps a label name to its loop's break/continue targets (or
	// break-only for labeled switch/select).
	labeledBreak    map[string]*Block
	labeledContinue map[string]*Block
}

// BuildCFG builds the control-flow graph of a function body. It handles the
// statement forms that appear in this module (if/else chains, for and range
// loops, switch/type-switch/select, labeled break and continue, return,
// defer, go). Goto is treated as a block terminator — control conservatively
// stops there, which over-approximates nothing this module contains.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:             &CFG{},
		labeledBreak:    map[string]*Block{},
		labeledContinue: map[string]*Block{},
	}
	entry := b.newBlock()
	b.stmts(body.List, entry)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmts threads the statement list through cur and returns the block control
// falls out of (nil when every path returned or branched away).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/branch: give it its own block so
			// its nodes still exist for position queries, but nothing links in.
			cur = b.newBlock()
		}
		cur = b.stmt(s, "", cur)
	}
	return cur
}

// stmt appends one statement to cur and returns the fall-through block.
// label carries an enclosing LabeledStmt's name into loops and switches.
func (b *cfgBuilder) stmt(s ast.Stmt, label string, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, s.Label.Name, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		join := b.newBlock()
		then := b.newBlock()
		link(cur, then)
		if out := b.stmts(s.Body.List, then); out != nil {
			link(out, join)
		}
		if s.Else != nil {
			els := b.newBlock()
			link(cur, els)
			if out := b.stmt(s.Else, "", els); out != nil {
				link(out, join)
			}
		} else {
			link(cur, join)
		}
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		link(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		exit := b.newBlock()
		body := b.newBlock()
		link(head, body)
		if s.Cond != nil {
			link(head, exit)
		}
		// Post runs at the bottom of the body before looping back.
		b.pushLoop(label, exit, head)
		out := b.stmts(s.Body.List, body)
		b.popLoop(label)
		if out != nil {
			if s.Post != nil {
				out.Nodes = append(out.Nodes, s.Post)
			}
			link(out, head)
		}
		return exit

	case *ast.RangeStmt:
		head := b.newBlock()
		link(cur, head)
		// The range operand (and iteration vars) evaluate at the head.
		head.Nodes = append(head.Nodes, s)
		exit := b.newBlock()
		body := b.newBlock()
		link(head, body)
		link(head, exit)
		b.pushLoop(label, exit, head)
		out := b.stmts(s.Body.List, body)
		b.popLoop(label)
		link(out, head)
		return exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(s.Body, label, cur, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(s.Body, label, cur, true)

	case *ast.SelectStmt:
		// The select itself is one node (the blocking point); each comm
		// clause body is a branch. The comm statements belong to the select
		// node, so analyzers treat "select" as a single operation.
		cur.Nodes = append(cur.Nodes, s)
		join := b.newBlock()
		b.pushSwitch(label, join)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			clause := b.newBlock()
			link(cur, clause)
			if out := b.stmts(cc.Body, clause); out != nil {
				link(out, join)
			}
		}
		b.popSwitch(label)
		if len(s.Body.List) == 0 {
			link(cur, join)
		}
		return join

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		return nil

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s, b.breakTargets, b.labeledBreak); t != nil {
				link(cur, t)
			}
			return nil
		case token.CONTINUE:
			if t := b.branchTarget(s, b.continueTargets, b.labeledContinue); t != nil {
				link(cur, t)
			}
			return nil
		case token.GOTO, token.FALLTHROUGH:
			// Fallthrough is handled by switchBody; a stray one (or a goto)
			// terminates the block conservatively.
			return nil
		}
		return cur

	default:
		// Simple statements: expr, assign, incdec, send, decl, defer, go,
		// empty. They execute in order within the block.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody wires the case clauses of a switch/type-switch: every clause
// branches from cur and falls to join; fallthrough links a clause into the
// next one's body.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, label string, cur *Block, typeSwitch bool) *Block {
	join := b.newBlock()
	b.pushSwitch(label, join)
	hasDefault := false
	clauses := make([]*Block, len(body.List))
	outs := make([]*Block, len(body.List))
	falls := make([]bool, len(body.List))
	for i, c := range body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		clause := b.newBlock()
		clauses[i] = clause
		link(cur, clause)
		if !typeSwitch {
			clause.Nodes = append(clause.Nodes, exprNodes(cc.List)...)
		}
		stmts := cc.Body
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls[i] = true
				stmts = stmts[:n-1]
			}
		}
		outs[i] = b.stmts(stmts, clause)
	}
	for i := range clauses {
		if outs[i] == nil {
			continue
		}
		if falls[i] && i+1 < len(clauses) {
			link(outs[i], clauses[i+1])
		} else {
			link(outs[i], join)
		}
	}
	b.popSwitch(label)
	if !hasDefault {
		link(cur, join)
	}
	return join
}

func exprNodes(exprs []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		out[i] = e
	}
	return out
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if label != "" {
		b.labeledBreak[label] = brk
		b.labeledContinue[label] = cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
	if label != "" {
		delete(b.labeledBreak, label)
		delete(b.labeledContinue, label)
	}
}

func (b *cfgBuilder) pushSwitch(label string, brk *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	// continue skips switch/select scopes: push nothing on the continue
	// stack so an inner continue still reaches the enclosing loop.
	if label != "" {
		b.labeledBreak[label] = brk
	}
}

func (b *cfgBuilder) popSwitch(label string) {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	if label != "" {
		delete(b.labeledBreak, label)
	}
}

// branchTarget resolves a break/continue to its control-flow target, or nil
// for a label this builder never saw (malformed code — type checking rejects
// it before any analyzer runs).
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, stack []*Block, labeled map[string]*Block) *Block {
	if s.Label != nil {
		return labeled[s.Label.Name]
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// Facts is a may-set of string-keyed dataflow facts (for lockhold: the
// render of a held mutex's receiver expression).
type Facts map[string]bool

func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func (f Facts) equal(g Facts) bool {
	if len(f) != len(g) {
		return false
	}
	for k := range f {
		if !g[k] {
			return false
		}
	}
	return true
}

// union merges g into f, reporting whether f changed.
func (f Facts) union(g Facts) bool {
	changed := false
	for k := range g {
		if !f[k] {
			f[k] = true
			changed = true
		}
	}
	return changed
}

// Forward runs a forward may-dataflow analysis to fixpoint: facts merge by
// union at block joins, and transfer mutates the fact set in place for each
// node in execution order. It returns the facts in force immediately BEFORE
// each node — the state an analyzer checks an operation against. Loops are
// handled by iterating until no block's entry facts change.
func (g *CFG) Forward(transfer func(n ast.Node, facts Facts)) map[ast.Node]Facts {
	if len(g.Blocks) == 0 {
		return nil
	}
	in := make(map[*Block]Facts, len(g.Blocks))
	for _, blk := range g.Blocks {
		in[blk] = Facts{}
	}
	before := map[ast.Node]Facts{}
	// Worklist over block indices; seeded with every block so unreachable
	// blocks still get (empty) facts computed once.
	dirty := make([]bool, len(g.Blocks))
	index := make(map[*Block]int, len(g.Blocks))
	for i, blk := range g.Blocks {
		index[blk] = i
		dirty[i] = true
	}
	for {
		progress := false
		for i, blk := range g.Blocks {
			if !dirty[i] {
				continue
			}
			dirty[i] = false
			progress = true
			facts := in[blk].clone()
			for _, n := range blk.Nodes {
				// Record a copy only when the facts differ from what a prior
				// pass recorded, so the final map reflects the fixpoint union.
				if prev, ok := before[n]; ok {
					prev.union(facts)
				} else {
					before[n] = facts.clone()
				}
				transfer(n, facts)
			}
			for _, succ := range blk.Succs {
				if in[succ].union(facts) {
					dirty[index[succ]] = true
				}
			}
		}
		if !progress {
			break
		}
	}
	return before
}
