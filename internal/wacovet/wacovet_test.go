package wacovet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one fixture package under testdata/src by name.
func loadFixture(t *testing.T, name string) (*Module, *Package) {
	t.Helper()
	m, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(m.Packages) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", name, len(m.Packages))
	}
	return m, m.Packages[0]
}

// wantLines scans the fixture's source for "// want <check>" markers and
// returns the 1-based lines that must carry a finding.
func wantLines(t *testing.T, check string) map[int]bool {
	t.Helper()
	path := filepath.Join("testdata", "src", check, check+".go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	want := map[int]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "// want "+check) {
			want[i+1] = true
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no `// want %s` markers", path, check)
	}
	return want
}

// matchMarkers compares an analyzer's findings against the fixture markers,
// line by line.
func matchMarkers(t *testing.T, check string, got []Finding, want map[int]bool) {
	t.Helper()
	gotLines := map[int]bool{}
	for _, f := range got {
		if f.Check != check {
			t.Errorf("finding has check %q, want %q: %s", f.Check, check, f)
			continue
		}
		gotLines[f.Line] = true
	}
	for line := range want {
		if !gotLines[line] {
			t.Errorf("%s: fixture line %d has a want marker but no finding", check, line)
		}
	}
	for line := range gotLines {
		if !want[line] {
			t.Errorf("%s: unexpected finding on fixture line %d", check, line)
		}
	}
}

func TestCtxflowFixture(t *testing.T) {
	m, pkg := loadFixture(t, "ctxflow")
	cfg := CtxflowConfig{
		Packages: []string{pkg.Path},
		Callees:  map[string][]string{pkg.Path: {"Measure", "Search"}},
	}
	matchMarkers(t, "ctxflow", NewCtxflowAnalyzer(cfg).Run(m), wantLines(t, "ctxflow"))
}

func TestRngsourceFixture(t *testing.T) {
	m, pkg := loadFixture(t, "rngsource")
	cfg := DefaultRngsourceConfig("ignored")
	cfg.Packages = []string{pkg.Path}
	matchMarkers(t, "rngsource", NewRngsourceAnalyzer(cfg).Run(m), wantLines(t, "rngsource"))
}

func TestErrdropFixture(t *testing.T) {
	m, _ := loadFixture(t, "errdrop")
	cfg := DefaultErrdropConfig()
	matchMarkers(t, "errdrop", NewErrdropAnalyzer(cfg).Run(m), wantLines(t, "errdrop"))
}

func TestPaniccallFixture(t *testing.T) {
	m, pkg := loadFixture(t, "paniccall")
	cfg := PaniccallConfig{Roots: []string{pkg.Path}, Within: []string{pkg.Path}}
	matchMarkers(t, "paniccall", NewPaniccallAnalyzer(cfg).Run(m), wantLines(t, "paniccall"))
}

func TestPaniccallUnreachableRootIsSilent(t *testing.T) {
	m, pkg := loadFixture(t, "paniccall")
	cfg := PaniccallConfig{Roots: []string{pkg.Path + "/nosuch"}, Within: []string{pkg.Path}}
	if got := NewPaniccallAnalyzer(cfg).Run(m); len(got) != 0 {
		t.Errorf("package not reachable from any root still produced %d findings", len(got))
	}
}

func TestFloatcmpFixture(t *testing.T) {
	m, pkg := loadFixture(t, "floatcmp")
	cfg := FloatcmpConfig{Packages: []string{pkg.Path}}
	matchMarkers(t, "floatcmp", NewFloatcmpAnalyzer(cfg).Run(m), wantLines(t, "floatcmp"))
}

func TestMetricregFixture(t *testing.T) {
	m, pkg := loadFixture(t, "metricreg")
	cfg := MetricregConfig{Packages: []string{pkg.Path}, MetricsPkg: pkg.Path}
	matchMarkers(t, "metricreg", NewMetricregAnalyzer(cfg).Run(m), wantLines(t, "metricreg"))
}

func TestTapeshareFixture(t *testing.T) {
	m, pkg := loadFixture(t, "tapeshare")
	cfg := TapeshareConfig{Packages: []string{pkg.Path}, TapeType: pkg.Path + ".Tape"}
	matchMarkers(t, "tapeshare", NewTapeshareAnalyzer(cfg).Run(m), wantLines(t, "tapeshare"))
}

// TestNolintFixture checks the scoped suppression convention end to end: a
// declaration-doc suppression covers its whole declaration, a line-scoped
// one covers only the next line (the out-of-scope rand call survives), and
// the three malformed placements — package doc, missing reason, unknown
// check — each surface as "nolint" findings of their own.
func TestNolintFixture(t *testing.T) {
	m, pkg := loadFixture(t, "nolint")
	rng := DefaultRngsourceConfig("ignored")
	rng.Packages = []string{pkg.Path}
	analyzers := []*Analyzer{
		NewRngsourceAnalyzer(rng),
		NewFloatcmpAnalyzer(FloatcmpConfig{Packages: []string{pkg.Path}}),
	}
	got := RunAnalyzers(m, analyzers)
	var nolint, rngFindings []Finding
	for _, f := range got {
		switch f.Check {
		case "nolint":
			nolint = append(nolint, f)
		case "rngsource":
			rngFindings = append(rngFindings, f)
		default:
			t.Errorf("unexpected %q finding: %s", f.Check, f)
		}
	}
	if len(nolint) != 3 {
		t.Fatalf("got %d nolint findings, want package-doc + missing-reason + unknown-check:\n%s", len(nolint), renderFindings(got))
	}
	if !strings.Contains(nolint[0].Message, "file-wide") {
		t.Errorf("first finding should reject the package-doc placement, got: %s", nolint[0])
	}
	if !strings.Contains(nolint[1].Message, "reason") {
		t.Errorf("second finding should flag the missing reason, got: %s", nolint[1])
	}
	if !strings.Contains(nolint[2].Message, "unknown check") {
		t.Errorf("third finding should flag the unknown check name, got: %s", nolint[2])
	}
	// Exactly the out-of-scope rand call survives, at its // want marker.
	data, err := os.ReadFile(filepath.Join("testdata", "src", "nolint", "nolint.go"))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	want := map[int]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "// want rngsource") {
			want[i+1] = true
		}
	}
	matchMarkers(t, "rngsource", rngFindings, want)
}

// TestModuleIsVetClean is the repo-wide gate: the module's own code must run
// clean under the default analyzer suite.
func TestModuleIsVetClean(t *testing.T) {
	m, err := Load("../..")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if got := RunAnalyzers(m, DefaultAnalyzers(m.Path)); len(got) > 0 {
		t.Errorf("module has %d waco-vet findings:\n%s", len(got), renderFindings(got))
	}
}

func renderFindings(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}

// TestAllocfreeFixture runs the escape-analysis gate over the fixture: the
// three annotated offenders (escaping make, moved-to-heap variable,
// interface boxing) are findings at their allocation sites; the clean
// annotated functions and the deliberately allocating unannotated ones are
// not.
func TestAllocfreeFixture(t *testing.T) {
	m, _ := loadFixture(t, "allocfree")
	got := NewAllocfreeAnalyzer(DefaultAllocfreeConfig("ignored")).Run(m)
	matchMarkers(t, "allocfree", got, wantLines(t, "allocfree"))
}

// TestGoleakFixture checks the fire-and-forget goroutine analyzer: bare
// spawns are findings; WaitGroup joins, channel sends/close, select/ctx
// watching, depth-2 signals, and ctx-taking callees are accepted.
func TestGoleakFixture(t *testing.T) {
	m, pkg := loadFixture(t, "goleak")
	cfg := GoleakConfig{Packages: []string{pkg.Path}}
	matchMarkers(t, "goleak", NewGoleakAnalyzer(cfg).Run(m), wantLines(t, "goleak"))
}

// TestLockholdFixture checks the CFG-based held-lock analyzer: sleeps,
// sends, blocking selects, HTTP calls, and may-held joins under a Mutex or
// RWMutex are findings; snapshot-then-act, default-polls, and goroutine
// bodies are clean.
func TestLockholdFixture(t *testing.T) {
	m, pkg := loadFixture(t, "lockhold")
	cfg := LockholdConfig{Packages: []string{pkg.Path}}
	matchMarkers(t, "lockhold", NewLockholdAnalyzer(cfg).Run(m), wantLines(t, "lockhold"))
}
