package wacovet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads one fixture package under testdata/src by name.
func loadFixture(t *testing.T, name string) (*Module, *Package) {
	t.Helper()
	m, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(m.Packages) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", name, len(m.Packages))
	}
	return m, m.Packages[0]
}

// wantLines scans the fixture's source for "// want <check>" markers and
// returns the 1-based lines that must carry a finding.
func wantLines(t *testing.T, check string) map[int]bool {
	t.Helper()
	path := filepath.Join("testdata", "src", check, check+".go")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	want := map[int]bool{}
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "// want "+check) {
			want[i+1] = true
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no `// want %s` markers", path, check)
	}
	return want
}

// matchMarkers compares an analyzer's findings against the fixture markers,
// line by line.
func matchMarkers(t *testing.T, check string, got []Finding, want map[int]bool) {
	t.Helper()
	gotLines := map[int]bool{}
	for _, f := range got {
		if f.Check != check {
			t.Errorf("finding has check %q, want %q: %s", f.Check, check, f)
			continue
		}
		gotLines[f.Line] = true
	}
	for line := range want {
		if !gotLines[line] {
			t.Errorf("%s: fixture line %d has a want marker but no finding", check, line)
		}
	}
	for line := range gotLines {
		if !want[line] {
			t.Errorf("%s: unexpected finding on fixture line %d", check, line)
		}
	}
}

func TestCtxflowFixture(t *testing.T) {
	m, pkg := loadFixture(t, "ctxflow")
	cfg := CtxflowConfig{
		Packages: []string{pkg.Path},
		Callees:  map[string][]string{pkg.Path: {"Measure", "Search"}},
	}
	matchMarkers(t, "ctxflow", NewCtxflowAnalyzer(cfg).Run(m), wantLines(t, "ctxflow"))
}

func TestRngsourceFixture(t *testing.T) {
	m, pkg := loadFixture(t, "rngsource")
	cfg := DefaultRngsourceConfig("ignored")
	cfg.Packages = []string{pkg.Path}
	matchMarkers(t, "rngsource", NewRngsourceAnalyzer(cfg).Run(m), wantLines(t, "rngsource"))
}

func TestErrdropFixture(t *testing.T) {
	m, _ := loadFixture(t, "errdrop")
	cfg := DefaultErrdropConfig()
	matchMarkers(t, "errdrop", NewErrdropAnalyzer(cfg).Run(m), wantLines(t, "errdrop"))
}

func TestPaniccallFixture(t *testing.T) {
	m, pkg := loadFixture(t, "paniccall")
	cfg := PaniccallConfig{Roots: []string{pkg.Path}, Within: []string{pkg.Path}}
	matchMarkers(t, "paniccall", NewPaniccallAnalyzer(cfg).Run(m), wantLines(t, "paniccall"))
}

func TestPaniccallUnreachableRootIsSilent(t *testing.T) {
	m, pkg := loadFixture(t, "paniccall")
	cfg := PaniccallConfig{Roots: []string{pkg.Path + "/nosuch"}, Within: []string{pkg.Path}}
	if got := NewPaniccallAnalyzer(cfg).Run(m); len(got) != 0 {
		t.Errorf("package not reachable from any root still produced %d findings", len(got))
	}
}

func TestFloatcmpFixture(t *testing.T) {
	m, pkg := loadFixture(t, "floatcmp")
	cfg := FloatcmpConfig{Packages: []string{pkg.Path}}
	matchMarkers(t, "floatcmp", NewFloatcmpAnalyzer(cfg).Run(m), wantLines(t, "floatcmp"))
}

func TestMetricregFixture(t *testing.T) {
	m, pkg := loadFixture(t, "metricreg")
	cfg := MetricregConfig{Packages: []string{pkg.Path}, MetricsPkg: pkg.Path}
	matchMarkers(t, "metricreg", NewMetricregAnalyzer(cfg).Run(m), wantLines(t, "metricreg"))
}

func TestTapeshareFixture(t *testing.T) {
	m, pkg := loadFixture(t, "tapeshare")
	cfg := TapeshareConfig{Packages: []string{pkg.Path}, TapeType: pkg.Path + ".Tape"}
	matchMarkers(t, "tapeshare", NewTapeshareAnalyzer(cfg).Run(m), wantLines(t, "tapeshare"))
}

// TestNolintFixture checks the suppression convention end to end: a
// well-formed file-level suppression swallows the rngsource finding, while a
// reason-less comment and an unknown check name each surface as "nolint"
// findings of their own.
func TestNolintFixture(t *testing.T) {
	m, pkg := loadFixture(t, "nolint")
	rng := DefaultRngsourceConfig("ignored")
	rng.Packages = []string{pkg.Path}
	analyzers := []*Analyzer{
		NewRngsourceAnalyzer(rng),
		NewFloatcmpAnalyzer(FloatcmpConfig{Packages: []string{pkg.Path}}),
	}
	got := RunAnalyzers(m, analyzers)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want exactly the 2 malformed suppressions:\n%s", len(got), renderFindings(got))
	}
	for _, f := range got {
		if f.Check != "nolint" {
			t.Errorf("surviving finding is %q, want all malformed-suppression findings: %s", f.Check, f)
		}
	}
	if !strings.Contains(got[0].Message, "reason") {
		t.Errorf("first finding should flag the missing reason, got: %s", got[0])
	}
	if !strings.Contains(got[1].Message, "unknown check") {
		t.Errorf("second finding should flag the unknown check name, got: %s", got[1])
	}
}

// TestModuleIsVetClean is the repo-wide gate: the module's own code must run
// clean under the default analyzer suite.
func TestModuleIsVetClean(t *testing.T) {
	m, err := Load("../..")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if got := RunAnalyzers(m, DefaultAnalyzers(m.Path)); len(got) > 0 {
		t.Errorf("module has %d waco-vet findings:\n%s", len(got), renderFindings(got))
	}
}

func renderFindings(fs []Finding) string {
	var sb strings.Builder
	for _, f := range fs {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}
