package wacovet

import (
	"go/ast"
	"go/types"
)

// RngsourceConfig scopes the rngsource check.
type RngsourceConfig struct {
	// Packages are package paths (exact or "prefix/...") in which global
	// math/rand top-level functions are banned.
	Packages []string
	// Allowed names the math/rand package-level functions that construct
	// seedable generators and so stay legal.
	Allowed map[string]bool
}

// DefaultRngsourceConfig bans the global generator in the entire module:
// every draw must come through an injected *rand.Rand built from an explicit
// seed, so a training run, an index build, or a search can be replayed
// exactly.
func DefaultRngsourceConfig(module string) RngsourceConfig {
	return RngsourceConfig{
		Packages: []string{module, module + "/..."},
		Allowed: map[string]bool{
			"New":        true,
			"NewSource":  true,
			"NewZipf":    true,
			"NewPCG":     true,
			"NewChaCha8": true,
		},
	}
}

// NewRngsourceAnalyzer builds the rngsource check.
func NewRngsourceAnalyzer(cfg RngsourceConfig) *Analyzer {
	return &Analyzer{
		Name: "rngsource",
		Doc:  "library code must draw randomness from an injected seeded *rand.Rand, never the global math/rand generator",
		Run:  func(m *Module) []Finding { return runRngsource(m, cfg) },
	}
}

func runRngsource(m *Module, cfg RngsourceConfig) []Finding {
	var out []Finding
	for _, pkg := range m.Packages {
		if !pathApplies(pkg.Path, cfg.Packages) {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				if sig == nil || sig.Recv() != nil || cfg.Allowed[fn.Name()] {
					return true
				}
				out = append(out, m.finding(call.Pos(), "rngsource",
					"call to global %s.%s; inject a seeded *rand.Rand so runs are reproducible", path, fn.Name()))
				return true
			})
		}
	}
	return out
}
