package wacovet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
}

// Load type-checks the non-test Go files of every package matched by
// patterns (default "./..."), resolved relative to dir. It shells out to
// `go list -export -deps` once so dependency packages — including the
// standard library — are imported from compiled export data rather than
// re-checked from source; the matched module packages themselves are parsed
// and type-checked from source so analyzers get their ASTs.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(&out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("no module packages match %s", strings.Join(patterns, " "))
	}
	// -deps lists dependencies too; keep only packages the patterns matched,
	// which `go list` puts after their dependencies (the targets are exactly
	// the module packages when the pattern is ./..., so filtering by module
	// membership is sufficient and keeps fixture loads to the named dirs).
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	m := &Module{
		Dir:  targets[0].Module.Dir,
		Path: targets[0].Module.Path,
		Fset: token.NewFileSet(),
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	conf := types.Config{Importer: importer.ForCompiler(m.Fset, "gc", lookup)}
	var loadErrs []error
	for _, p := range targets {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(m.Fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				loadErrs = append(loadErrs, err)
				continue
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			loadErrs = append(loadErrs, fmt.Errorf("%s: no buildable Go files", p.ImportPath))
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tpkg, err := conf.Check(p.ImportPath, m.Fset, files, info)
		if err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", p.ImportPath, err))
			continue
		}
		m.Packages = append(m.Packages, &Package{
			Path:    p.ImportPath,
			Dir:     p.Dir,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Imports: p.Imports,
		})
	}
	if len(loadErrs) > 0 {
		return nil, errors.Join(loadErrs...)
	}
	return m, nil
}
