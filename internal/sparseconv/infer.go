package sparseconv

import "waco/internal/nn"

// Forward-only inference for the sparse convolution stacks: the same
// arithmetic as the nil-tape Apply path (shared via Conv.forward, so outputs
// are bit-identical), but feature buffers come from an nn.Arena instead of
// fresh make calls and activations are rectified in place. Rulebook geometry
// depends only on the input coordinates, never on feature values, so each
// map caches the geometry per conv layer: repeated extraction of the same
// pattern rebuilds nothing and allocates nothing after the first pass.

// convGeom is the cached geometry of one conv layer applied to one input
// map: the output site set and the gather-scatter rulebook. The output map
// object is reused across passes — only its feature buffer is reassigned.
type convGeom struct {
	out      *SparseMap
	rulebook [][]pair
}

// Infer runs the convolution forward-only; the returned map's F is arena
// scratch, valid until the arena resets, and the map object itself is cached
// geometry owned by in (also invalidated by reuse — callers keep neither
// across passes). The input's features are only read.
func (c *Conv) Infer(a *nn.Arena, in *SparseMap) *SparseMap {
	nn.CheckShape("conv input channels", in.C, c.Cin)
	g := in.geom[c]
	if g == nil {
		g = &convGeom{}
		if c.Stride == 1 {
			g.out, g.rulebook = c.buildSubmanifold(in)
		} else {
			g.out, g.rulebook = c.buildStrided(in)
		}
		if in.geom == nil {
			in.geom = make(map[*Conv]*convGeom, 1)
		}
		in.geom[c] = g
	}
	out := g.out
	out.F = a.Alloc(out.NumSites() * c.Cout)
	c.forward(in, out, g.rulebook)
	return out
}

// ReLUMapInPlace rectifies a sparse map's features in place and returns the
// map. Only for maps whose F the caller owns (conv outputs on an arena) —
// never a Pattern's cached conversion.
func ReLUMapInPlace(in *SparseMap) *SparseMap {
	nn.ReLUInPlace(in.F)
	return in
}

// GlobalAvgPoolInto averages features over all sites into dst (length C),
// the forward-only counterpart of GlobalAvgPool with the same accumulation
// order. dst is zeroed first.
func GlobalAvgPoolInto(dst []float32, in *SparseMap) {
	nn.CheckShape("pool output", len(dst), in.C)
	clear(dst)
	n := in.NumSites()
	if n == 0 {
		return
	}
	for s := 0; s < n; s++ {
		f := in.F[s*in.C : (s+1)*in.C]
		for c, v := range f {
			dst[c] += v
		}
	}
	inv := 1 / float32(n)
	for c := range dst {
		dst[c] *= inv
	}
}

// ExtractInfer is the forward-only Extract: identical output bits, arena
// scratch instead of per-layer allocations. sm's features are only read.
func (w *WACONet) ExtractInfer(a *nn.Arena, sm *SparseMap) []float32 {
	x := ReLUMapInPlace(w.First.Infer(a, sm))
	ch := w.Cfg.Channels
	pooled := a.Alloc(len(w.Convs) * ch)
	for i, c := range w.Convs {
		x = ReLUMapInPlace(c.Infer(a, x))
		GlobalAvgPoolInto(pooled[i*ch:(i+1)*ch], x)
	}
	return w.Proj.Infer(a, pooled)
}

// ExtractInfer is the forward-only Extract for the stride-1 comparison net.
func (m *MinkowskiLike) ExtractInfer(a *nn.Arena, sm *SparseMap) []float32 {
	x := ReLUMapInPlace(m.First.Infer(a, sm))
	for _, c := range m.Convs {
		x = ReLUMapInPlace(c.Infer(a, x))
	}
	pooled := a.Alloc(m.Cfg.Channels)
	GlobalAvgPoolInto(pooled, x)
	return m.Proj.Infer(a, pooled)
}
