// Package sparseconv implements submanifold and strided sparse convolution
// (Graham & van der Maaten; Choy et al.) for 2-D and 3-D sparsity patterns,
// plus the WACONet feature extractor architecture from the WACO paper
// (Figure 9): a 5x5 stride-1 submanifold layer followed by a stack of 3x3
// stride-2 convolutions with small channel counts, global average pooling
// after every strided layer, and concatenation of all intermediate pooled
// results.
//
// A sparse convolution computes outputs only at active (nonzero) sites, so
// the cost scales with the number of nonzeros rather than the tensor's
// shape — the property that lets WACO consume the raw sparsity pattern with
// no downsampling.
package sparseconv

import (
	"fmt"
	"math"

	"waco/internal/tensor"
)

// SparseMap is a sparse feature map: a set of active coordinate sites each
// carrying a C-channel feature vector, with an index for O(1) neighbor
// lookup. F and D (gradients) are site-major: site s's features occupy
// F[s*C : (s+1)*C].
type SparseMap struct {
	Dim     int
	Extents []int32
	C       int
	Coords  []int32 // flat, len n*Dim
	F       []float32
	D       []float32
	index   map[uint64]int32

	// geom caches, per conv layer, the output site set and rulebook derived
	// from this map's coordinates — pure geometry, independent of feature
	// values, so the forward-only path can skip rebuilding it on every pass.
	// Populated lazily by Conv.Infer; like a Pattern's caches this makes a
	// SparseMap single-goroutine on the inference path.
	geom map[*Conv]*convGeom
}

// NumSites returns the number of active sites.
func (m *SparseMap) NumSites() int { return len(m.Coords) / max(1, m.Dim) }

// key packs a coordinate tuple into a uint64 (21 bits per dim, supporting
// extents up to 2^21 — beyond the paper's 131,072-row limit).
func key(coord []int32) uint64 {
	var k uint64
	for _, c := range coord {
		k = k<<21 | uint64(uint32(c))&0x1FFFFF
	}
	return k
}

// newSparseMap allocates an empty map.
func newSparseMap(dim int, extents []int32, channels, capacity int) *SparseMap {
	return &SparseMap{
		Dim:     dim,
		Extents: append([]int32(nil), extents...),
		C:       channels,
		Coords:  make([]int32, 0, capacity*dim),
		index:   make(map[uint64]int32, capacity),
	}
}

// addSite registers a coordinate (must be new) and returns its site index.
func (m *SparseMap) addSite(coord []int32) int32 {
	s := int32(m.NumSites())
	m.Coords = append(m.Coords, coord...)
	m.index[key(coord)] = s
	return s
}

// Lookup returns the site index at coord, or -1.
func (m *SparseMap) Lookup(coord []int32) int32 {
	if s, ok := m.index[key(coord)]; ok {
		return s
	}
	return -1
}

// Site returns the coordinates of site s (a view into internal storage).
func (m *SparseMap) Site(s int32) []int32 {
	return m.Coords[int(s)*m.Dim : int(s)*m.Dim+m.Dim]
}

// EnsureGrad allocates the gradient buffer for training.
func (m *SparseMap) EnsureGrad() {
	if m.D == nil {
		m.D = make([]float32, len(m.F))
	}
}

// ShallowClone returns a copy sharing coordinates and the site index but
// with fresh feature and gradient buffers, so one immutable conversion can
// serve many training passes.
func (m *SparseMap) ShallowClone() *SparseMap {
	return &SparseMap{
		Dim:     m.Dim,
		Extents: m.Extents,
		C:       m.C,
		Coords:  m.Coords,
		F:       append([]float32(nil), m.F...),
		index:   m.index,
	}
}

// FromCOO builds a single-channel sparse map from a sparsity pattern; every
// stored coordinate becomes an active site with feature 1 (the pattern, not
// the values, is what WACONet consumes). Duplicate coordinates collapse to
// one site.
func FromCOO(c *tensor.COO) (*SparseMap, error) {
	if c.Order() < 2 || c.Order() > 3 {
		return nil, fmt.Errorf("sparseconv: order-%d tensor unsupported", c.Order())
	}
	for _, d := range c.Dims {
		if d >= 1<<21 {
			return nil, fmt.Errorf("sparseconv: extent %d exceeds coordinate packing range", d)
		}
	}
	ext := make([]int32, c.Order())
	for m, d := range c.Dims {
		ext[m] = int32(d)
	}
	sm := newSparseMap(c.Order(), ext, 1, c.NNZ())
	coord := make([]int32, c.Order())
	for p := 0; p < c.NNZ(); p++ {
		for m := 0; m < c.Order(); m++ {
			coord[m] = c.Coords[m][p]
		}
		if sm.Lookup(coord) < 0 {
			sm.addSite(coord)
		}
	}
	sm.F = make([]float32, sm.NumSites())
	for i := range sm.F {
		sm.F[i] = 1
	}
	return sm, nil
}

// Downsample pools a pattern onto a gridSize^order dense grid, each cell
// holding log1p of the nonzero count — the downsampled-CNN input of prior
// work (§3.2.1, DenseConv). Every grid cell is an active site, so a
// conventional dense CNN is expressible with the same conv layers.
func Downsample(c *tensor.COO, gridSize int) *SparseMap {
	order := c.Order()
	ext := make([]int32, order)
	for m := range ext {
		ext[m] = int32(gridSize)
	}
	counts := make(map[uint64]float32, c.NNZ())
	coord := make([]int32, order)
	for p := 0; p < c.NNZ(); p++ {
		for m := 0; m < order; m++ {
			x := int64(c.Coords[m][p]) * int64(gridSize) / int64(c.Dims[m])
			if x >= int64(gridSize) {
				x = int64(gridSize) - 1
			}
			coord[m] = int32(x)
		}
		counts[key(coord)]++
	}
	sm := newSparseMap(order, ext, 1, pow(gridSize, order))
	sm.F = make([]float32, 0, pow(gridSize, order))
	var walk func(d int)
	walk = func(d int) {
		if d == order {
			sm.addSite(coord)
			n := counts[key(coord)]
			sm.F = append(sm.F, log1p32(n))
			return
		}
		for x := int32(0); x < int32(gridSize); x++ {
			coord[d] = x
			walk(d + 1)
		}
	}
	walk(0)
	return sm
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func log1p32(x float32) float32 {
	return float32(math.Log1p(float64(x)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
