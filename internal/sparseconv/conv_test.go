package sparseconv

import (
	"math"
	"math/rand"
	"testing"

	"waco/internal/nn"
	"waco/internal/tensor"
)

func patternFromPoints(dims []int, pts [][]int32) *tensor.COO {
	c := tensor.NewCOO(dims, len(pts))
	for _, p := range pts {
		c.Append(1, p...)
	}
	return c
}

func TestKernelOffsets(t *testing.T) {
	if n := len(kernelOffsets(2, 3)); n != 9 {
		t.Fatalf("3x3 offsets = %d", n)
	}
	if n := len(kernelOffsets(2, 5)); n != 25 {
		t.Fatalf("5x5 offsets = %d", n)
	}
	if n := len(kernelOffsets(3, 3)); n != 27 {
		t.Fatalf("3x3x3 offsets = %d", n)
	}
}

func TestFromCOO(t *testing.T) {
	c := patternFromPoints([]int{8, 8}, [][]int32{{0, 0}, {3, 4}, {3, 4}, {7, 7}})
	sm, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	if sm.NumSites() != 3 { // duplicate collapsed
		t.Fatalf("sites = %d, want 3", sm.NumSites())
	}
	if sm.Lookup([]int32{3, 4}) < 0 {
		t.Fatal("site missing")
	}
	if sm.Lookup([]int32{1, 1}) != -1 {
		t.Fatal("phantom site")
	}
	for _, f := range sm.F {
		if f != 1 {
			t.Fatalf("feature %g, want 1", f)
		}
	}
	bad := tensor.NewCOO([]int{2, 2, 2, 2}, 0)
	if _, err := FromCOO(bad); err == nil {
		t.Fatal("accepted order-4 tensor")
	}
	big := tensor.NewCOO([]int{1 << 22, 4}, 0)
	if _, err := FromCOO(big); err == nil {
		t.Fatal("accepted out-of-range extent")
	}
}

func TestDownsample(t *testing.T) {
	c := patternFromPoints([]int{100, 100}, [][]int32{{0, 0}, {1, 1}, {99, 99}})
	sm := Downsample(c, 4)
	if sm.NumSites() != 16 {
		t.Fatalf("grid sites = %d, want 16", sm.NumSites())
	}
	// Cell (0,0) holds two nonzeros -> log1p(2); cell (3,3) one -> log1p(1).
	s00 := sm.Lookup([]int32{0, 0})
	s33 := sm.Lookup([]int32{3, 3})
	if math.Abs(float64(sm.F[s00])-math.Log1p(2)) > 1e-6 {
		t.Fatalf("cell(0,0) = %g", sm.F[s00])
	}
	if math.Abs(float64(sm.F[s33])-math.Log1p(1)) > 1e-6 {
		t.Fatalf("cell(3,3) = %g", sm.F[s33])
	}
}

func TestSubmanifoldKeepsSites(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := patternFromPoints([]int{16, 16}, [][]int32{{1, 1}, {1, 2}, {9, 9}})
	sm, _ := FromCOO(c)
	conv := NewConv("c", 2, 1, 4, 3, 1, rng)
	out := conv.Apply(nil, sm)
	if out.NumSites() != sm.NumSites() {
		t.Fatalf("submanifold changed site count %d -> %d", sm.NumSites(), out.NumSites())
	}
	if out.C != 4 {
		t.Fatalf("channels %d", out.C)
	}
}

func TestStridedHalvesExtents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := patternFromPoints([]int{17, 16}, [][]int32{{0, 0}, {16, 15}})
	sm, _ := FromCOO(c)
	conv := NewConv("c", 2, 1, 2, 3, 2, rng)
	out := conv.Apply(nil, sm)
	if out.Extents[0] != 9 || out.Extents[1] != 8 {
		t.Fatalf("extents %v, want [9 8]", out.Extents)
	}
	for s := int32(0); s < int32(out.NumSites()); s++ {
		site := out.Site(s)
		if site[0] >= 9 || site[1] >= 8 {
			t.Fatalf("site %v outside output extents", site)
		}
	}
}

// Figure 8 reproduction: with stride-1 submanifold convolutions, two distant
// nonzeros never exchange information (the feature at one site is identical
// whether or not the other exists); a stride-2 stack collapses them into a
// shared site.
func TestReceptiveFieldGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{64, 64}
	lone := patternFromPoints(dims, [][]int32{{0, 0}})
	both := patternFromPoints(dims, [][]int32{{0, 0}, {40, 40}})

	// Stride-1 stack.
	conv1 := []*Conv{}
	rng1 := rand.New(rand.NewSource(4))
	for i := 0; i < 4; i++ {
		cin := 1
		if i > 0 {
			cin = 3
		}
		conv1 = append(conv1, NewConv("s1", 2, cin, 3, 3, 1, rng1))
	}
	run1 := func(c *tensor.COO) *SparseMap {
		sm, _ := FromCOO(c)
		for _, cv := range conv1 {
			sm = ReLUMap(nil, cv.Apply(nil, sm))
		}
		return sm
	}
	outLone, outBoth := run1(lone), run1(both)
	sL := outLone.Lookup([]int32{0, 0})
	sB := outBoth.Lookup([]int32{0, 0})
	for ch := 0; ch < 3; ch++ {
		if outLone.F[int(sL)*3+ch] != outBoth.F[int(sB)*3+ch] {
			t.Fatal("stride-1 stack propagated information between distant nonzeros")
		}
	}

	// Stride-2 stack: after 6 halvings, 64x64 -> 1x1, both sites merge.
	sm, _ := FromCOO(both)
	x := sm
	rng2 := rand.New(rand.NewSource(5))
	for i := 0; i < 6; i++ {
		cin := 1
		if i > 0 {
			cin = 3
		}
		cv := NewConv("s2", 2, cin, 3, 3, 2, rng2)
		x = cv.Apply(nil, x)
	}
	if x.NumSites() != 1 {
		t.Fatalf("strided stack final sites = %d, want 1 (merged)", x.NumSites())
	}
	_ = rng
}

func convGradCheck(t *testing.T, stride int) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	c := patternFromPoints([]int{6, 6}, [][]int32{{0, 0}, {0, 1}, {2, 3}, {5, 5}})
	sm, _ := FromCOO(c)
	conv := NewConv("g", 2, 1, 2, 3, stride, rng)

	loss := func(tape *nn.Tape) float32 {
		in := &SparseMap{Dim: sm.Dim, Extents: sm.Extents, C: sm.C, Coords: sm.Coords,
			F: append([]float32(nil), sm.F...), index: sm.index}
		out := conv.Apply(tape, in)
		var s float32
		for i, v := range out.F {
			s += v * v
			if tape != nil {
				out.D[i] = 2 * v
			}
		}
		return s
	}
	var tape nn.Tape
	loss(&tape)
	tape.Backward()
	for _, p := range conv.Params() {
		for i := range p.W {
			const h = 1e-3
			orig := p.W[i]
			p.W[i] = orig + h
			lp := float64(loss(nil))
			p.W[i] = orig - h
			lm := float64(loss(nil))
			p.W[i] = orig
			want := (lp - lm) / (2 * h)
			got := float64(p.G[i])
			if math.Abs(got-want) > 2e-2*math.Max(1, math.Abs(want)) {
				t.Fatalf("stride %d %s[%d]: analytic %g numeric %g", stride, p.Name, i, got, want)
			}
		}
	}
}

func TestConvGradientCheckSubmanifold(t *testing.T) { convGradCheck(t, 1) }
func TestConvGradientCheckStrided(t *testing.T)     { convGradCheck(t, 2) }

func TestGlobalAvgPoolGradient(t *testing.T) {
	c := patternFromPoints([]int{4, 4}, [][]int32{{0, 0}, {1, 1}})
	sm, _ := FromCOO(c)
	var tape nn.Tape
	y := GlobalAvgPool(&tape, sm)
	if math.Abs(float64(y.V[0])-1) > 1e-6 {
		t.Fatalf("mean of ones = %g", y.V[0])
	}
	y.D[0] = 2
	tape.Backward()
	for s := 0; s < 2; s++ {
		if sm.D[s] != 1 { // 2 * 1/2
			t.Fatalf("pool gradient %v", sm.D)
		}
	}
	// Empty map pools to zeros.
	empty, _ := FromCOO(tensor.NewCOO([]int{4, 4}, 0))
	z := GlobalAvgPool(nil, empty)
	if z.V[0] != 0 {
		t.Fatal("empty pool nonzero")
	}
}

func TestWACONetShapesAndGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := Config{Dim: 2, Channels: 4, Depth: 3, FirstKernel: 3, OutDim: 8}
	net := NewWACONet(cfg, rng)
	c := patternFromPoints([]int{32, 32}, [][]int32{{0, 0}, {5, 7}, {20, 20}, {31, 31}})
	sm, _ := FromCOO(c)
	var tape nn.Tape
	feat := net.Extract(&tape, sm)
	if len(feat.V) != 8 {
		t.Fatalf("feature dim %d", len(feat.V))
	}
	for i := range feat.D {
		feat.D[i] = 1
	}
	tape.Backward()
	var nonzero int
	for _, p := range net.Params() {
		for _, g := range p.G {
			if math.IsNaN(float64(g)) || math.IsInf(float64(g), 0) {
				t.Fatal("bad gradient")
			}
			if g != 0 {
				nonzero++
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("no gradient reached parameters")
	}
}

func TestWACONetDeterministic(t *testing.T) {
	cfg := Config{Dim: 2, Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 6}
	c := patternFromPoints([]int{16, 16}, [][]int32{{0, 0}, {3, 3}, {9, 12}})
	a := NewWACONet(cfg, rand.New(rand.NewSource(8)))
	b := NewWACONet(cfg, rand.New(rand.NewSource(8)))
	smA, _ := FromCOO(c)
	smB, _ := FromCOO(c)
	fa := a.Extract(nil, smA)
	fb := b.Extract(nil, smB)
	for i := range fa.V {
		if fa.V[i] != fb.V[i] {
			t.Fatal("same seed produced different features")
		}
	}
}

func TestMinkowskiLike(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := Config{Dim: 2, Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 6}
	net := NewMinkowskiLike(cfg, rng)
	c := patternFromPoints([]int{16, 16}, [][]int32{{0, 0}, {3, 3}})
	sm, _ := FromCOO(c)
	var tape nn.Tape
	feat := net.Extract(&tape, sm)
	if len(feat.V) != 6 {
		t.Fatalf("feature dim %d", len(feat.V))
	}
	for i := range feat.D {
		feat.D[i] = 1
	}
	tape.Backward()
	if len(net.Params()) == 0 {
		t.Fatal("no params")
	}
}

func TestWACONet3D(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := Config{Dim: 3, Channels: 3, Depth: 2, FirstKernel: 3, OutDim: 5}
	net := NewWACONet(cfg, rng)
	c := tensor.NewCOO([]int{16, 16, 8}, 3)
	c.Append(1, 0, 0, 0)
	c.Append(1, 5, 5, 5)
	c.Append(1, 15, 15, 7)
	sm, err := FromCOO(c)
	if err != nil {
		t.Fatal(err)
	}
	feat := net.Extract(nil, sm)
	if len(feat.V) != 5 {
		t.Fatalf("3-D feature dim %d", len(feat.V))
	}
}
