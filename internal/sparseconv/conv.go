package sparseconv

import (
	"math/rand"

	"waco/internal/nn"
)

// Conv is a sparse convolution layer. With Stride 1 it is a *submanifold*
// convolution: outputs exist exactly at the input's active sites, so
// sparsity never dilates as layers stack (Figure 7 of the paper). With
// Stride 2 it is a strided sparse convolution: output sites are the
// downsampled images of input sites, which forces the receptive field to
// grow even when nonzeros sit far apart (Figure 8).
type Conv struct {
	Dim, Cin, Cout int
	Kernel, Stride int // Kernel is odd; Stride is 1 or 2
	W              *nn.Param
	B              *nn.Param

	offsets [][]int32 // kernel offset vectors, length nOffsets
}

// NewConv creates a He-initialized sparse convolution layer.
func NewConv(name string, dim, cin, cout, kernel, stride int, rng *rand.Rand) *Conv {
	c := &Conv{Dim: dim, Cin: cin, Cout: cout, Kernel: kernel, Stride: stride}
	c.offsets = kernelOffsets(dim, kernel)
	c.W = nn.NewParam(name+".W", len(c.offsets), cout*cin)
	c.W.InitHe(rng, len(c.offsets)*cin)
	c.B = nn.NewParam(name+".B", cout, 1)
	return c
}

// Params returns the trainable parameters.
func (c *Conv) Params() []*nn.Param { return []*nn.Param{c.W, c.B} }

// kernelOffsets enumerates {-r..r}^dim in row-major order.
func kernelOffsets(dim, kernel int) [][]int32 {
	r := int32(kernel / 2)
	var out [][]int32
	cur := make([]int32, dim)
	var walk func(d int)
	walk = func(d int) {
		if d == dim {
			out = append(out, append([]int32(nil), cur...))
			return
		}
		for x := -r; x <= r; x++ {
			cur[d] = x
			walk(d + 1)
		}
	}
	walk(0)
	return out
}

// pair is one rulebook entry: input site -> output site.
type pair struct{ in, out int32 }

// Apply runs the convolution, recording backward on the tape. The input's
// gradient buffer is allocated if a tape is supplied.
func (c *Conv) Apply(t *nn.Tape, in *SparseMap) *SparseMap {
	nn.CheckShape("conv input channels", in.C, c.Cin)
	var out *SparseMap
	var rulebook [][]pair
	if c.Stride == 1 {
		out, rulebook = c.buildSubmanifold(in)
	} else {
		out, rulebook = c.buildStrided(in)
	}
	out.F = make([]float32, out.NumSites()*c.Cout)
	c.forward(in, out, rulebook)
	if t != nil {
		in.EnsureGrad()
		out.EnsureGrad()
		t.Push(func() {
			for s := 0; s < out.NumSites(); s++ {
				dy := out.D[s*c.Cout : (s+1)*c.Cout]
				for o, d := range dy {
					c.B.G[o] += d
				}
			}
			for off, pairs := range rulebook {
				w := c.W.W[off*c.Cout*c.Cin : (off+1)*c.Cout*c.Cin]
				gw := c.W.G[off*c.Cout*c.Cin : (off+1)*c.Cout*c.Cin]
				for _, pr := range pairs {
					xi := in.F[int(pr.in)*c.Cin : int(pr.in)*c.Cin+c.Cin]
					dxi := in.D[int(pr.in)*c.Cin : int(pr.in)*c.Cin+c.Cin]
					dy := out.D[int(pr.out)*c.Cout : int(pr.out)*c.Cout+c.Cout]
					for o := 0; o < c.Cout; o++ {
						d := dy[o]
						if d == 0 {
							continue
						}
						row := w[o*c.Cin : o*c.Cin+c.Cin]
						grow := gw[o*c.Cin : o*c.Cin+c.Cin]
						for i, x := range xi {
							grow[i] += d * x
							dxi[i] += d * row[i]
						}
					}
				}
			}
		})
	}
	return out
}

// forward runs the convolution arithmetic into out.F (already sized and
// zeroed/bias-free): bias first, then gather-scatter per kernel offset. The
// tape and forward-only paths share it so their outputs are bit-identical.
func (c *Conv) forward(in, out *SparseMap, rulebook [][]pair) {
	// Bias.
	for s := 0; s < out.NumSites(); s++ {
		copy(out.F[s*c.Cout:(s+1)*c.Cout], c.B.W)
	}
	// Gather-scatter per kernel offset: out[o] += W[off] * in[i].
	for off, pairs := range rulebook {
		w := c.W.W[off*c.Cout*c.Cin : (off+1)*c.Cout*c.Cin]
		for _, pr := range pairs {
			xi := in.F[int(pr.in)*c.Cin : int(pr.in)*c.Cin+c.Cin]
			yo := out.F[int(pr.out)*c.Cout : int(pr.out)*c.Cout+c.Cout]
			for o := 0; o < c.Cout; o++ {
				row := w[o*c.Cin : o*c.Cin+c.Cin]
				acc := yo[o]
				for i, x := range xi {
					acc += row[i] * x
				}
				yo[o] = acc
			}
		}
	}
}

// buildSubmanifold: output sites = input sites; rulebook[off] pairs each
// output site with the input neighbor at coordinate(site)+offset, when
// active.
func (c *Conv) buildSubmanifold(in *SparseMap) (*SparseMap, [][]pair) {
	out := newSparseMap(in.Dim, in.Extents, c.Cout, in.NumSites())
	n := in.NumSites()
	for s := int32(0); s < int32(n); s++ {
		out.addSite(in.Site(s))
	}
	rulebook := make([][]pair, len(c.offsets))
	nb := make([]int32, in.Dim)
	for off, ov := range c.offsets {
		var pairs []pair
		for s := int32(0); s < int32(n); s++ {
			site := in.Site(s)
			ok := true
			for d := 0; d < in.Dim; d++ {
				nb[d] = site[d] + ov[d]
				if nb[d] < 0 || nb[d] >= in.Extents[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if j := in.Lookup(nb); j >= 0 {
				pairs = append(pairs, pair{in: j, out: s})
			}
		}
		rulebook[off] = pairs
	}
	return out, rulebook
}

// buildStrided: out[o] = sum_delta W[delta] * in[stride*o + delta]; output
// sites are every o receiving at least one contribution.
func (c *Conv) buildStrided(in *SparseMap) (*SparseMap, [][]pair) {
	stride := int32(c.Stride)
	outExt := make([]int32, in.Dim)
	for d, e := range in.Extents {
		outExt[d] = (e + stride - 1) / stride
		if outExt[d] < 1 {
			outExt[d] = 1
		}
	}
	out := newSparseMap(in.Dim, outExt, c.Cout, in.NumSites()/2+1)
	rulebook := make([][]pair, len(c.offsets))
	oc := make([]int32, in.Dim)
	for off, ov := range c.offsets {
		var pairs []pair
		for s := int32(0); s < int32(in.NumSites()); s++ {
			site := in.Site(s)
			ok := true
			for d := 0; d < in.Dim; d++ {
				t := site[d] - ov[d]
				if t < 0 || t%stride != 0 {
					ok = false
					break
				}
				oc[d] = t / stride
				if oc[d] >= outExt[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			j := out.Lookup(oc)
			if j < 0 {
				j = out.addSite(oc)
			}
			pairs = append(pairs, pair{in: s, out: j})
		}
		rulebook[off] = pairs
	}
	return out, rulebook
}

// ReLUMap applies elementwise ReLU to a sparse map's features.
func ReLUMap(t *nn.Tape, in *SparseMap) *SparseMap {
	out := &SparseMap{
		Dim: in.Dim, Extents: in.Extents, C: in.C,
		Coords: in.Coords, index: in.index,
		F: make([]float32, len(in.F)),
	}
	for i, v := range in.F {
		if v > 0 {
			out.F[i] = v
		}
	}
	if t != nil {
		in.EnsureGrad()
		out.EnsureGrad()
		t.Push(func() {
			for i, v := range in.F {
				if v > 0 {
					in.D[i] += out.D[i]
				}
			}
		})
	}
	return out
}

// GlobalAvgPool averages features over all sites, returning a C-vector.
func GlobalAvgPool(t *nn.Tape, in *SparseMap) *nn.Grad {
	n := in.NumSites()
	out := nn.NewGrad(make([]float32, in.C))
	if n == 0 {
		return out
	}
	for s := 0; s < n; s++ {
		f := in.F[s*in.C : (s+1)*in.C]
		for c, v := range f {
			out.V[c] += v
		}
	}
	inv := 1 / float32(n)
	for c := range out.V {
		out.V[c] *= inv
	}
	if t != nil {
		in.EnsureGrad()
		t.Push(func() {
			for s := 0; s < n; s++ {
				df := in.D[s*in.C : (s+1)*in.C]
				for c := range df {
					df[c] += out.D[c] * inv
				}
			}
		})
	}
	return out
}
