package sparseconv

import (
	"math/rand"

	"waco/internal/nn"
)

// Config sizes a WACONet. PaperConfig reproduces Figure 9 exactly; the
// default is reduced so CPU-only training stays fast. In both cases the
// architecture is: one 5x5 (3x3x3 for 3-D) stride-1 submanifold convolution,
// then Depth stride-2 3x3 convolutions with Channels channels each, global
// average pooling after every strided layer, all pooled vectors concatenated
// and projected to OutDim by linear-ReLU layers.
type Config struct {
	Dim         int // 2 for matrices, 3 for MTTKRP tensors
	Channels    int
	Depth       int // number of strided layers
	FirstKernel int
	OutDim      int
}

// DefaultConfig is the reduced-scale network for CPU training.
func DefaultConfig(dim int) Config {
	k := 5
	if dim == 3 {
		k = 3
	}
	return Config{Dim: dim, Channels: 16, Depth: 6, FirstKernel: k, OutDim: 64}
}

// PaperConfig is the full Figure 9 network: 32 channels, 14 strided layers,
// 128-d sparsity pattern feature.
func PaperConfig(dim int) Config {
	k := 5
	if dim == 3 {
		k = 3
	}
	return Config{Dim: dim, Channels: 32, Depth: 14, FirstKernel: k, OutDim: 128}
}

// WACONet is the paper's sparsity-pattern feature extractor.
type WACONet struct {
	Cfg   Config
	First *Conv
	Convs []*Conv
	Proj  *nn.MLP
}

// NewWACONet constructs the network with He initialization.
func NewWACONet(cfg Config, rng *rand.Rand) *WACONet {
	w := &WACONet{Cfg: cfg}
	w.First = NewConv("waconet.first", cfg.Dim, 1, cfg.Channels, cfg.FirstKernel, 1, rng)
	for i := 0; i < cfg.Depth; i++ {
		w.Convs = append(w.Convs, NewConv("waconet.conv"+itoa(i), cfg.Dim, cfg.Channels, cfg.Channels, 3, 2, rng))
	}
	w.Proj = nn.NewMLP("waconet.proj", []int{cfg.Depth * cfg.Channels, cfg.OutDim, cfg.OutDim}, rng)
	return w
}

// Params returns all trainable parameters.
func (w *WACONet) Params() []*nn.Param {
	out := w.First.Params()
	for _, c := range w.Convs {
		out = append(out, c.Params()...)
	}
	return append(out, w.Proj.Params()...)
}

// Extract produces the OutDim-dimensional sparsity pattern feature.
func (w *WACONet) Extract(t *nn.Tape, sm *SparseMap) *nn.Grad {
	x := ReLUMap(t, w.First.Apply(t, sm))
	pools := make([]*nn.Grad, 0, len(w.Convs))
	for _, c := range w.Convs {
		x = ReLUMap(t, c.Apply(t, x))
		pools = append(pools, GlobalAvgPool(t, x))
	}
	return w.Proj.Apply(t, nn.Concat(t, pools...))
}

// OutDim returns the feature dimensionality.
func (w *WACONet) OutDim() int { return w.Cfg.OutDim }

// MinkowskiLike is the comparison network of Figure 15: the same sparse
// convolution machinery but with stride-1 submanifold layers throughout and
// only the final layer pooled — so when nonzeros are far apart, information
// cannot propagate between them (Figure 8-(a)).
type MinkowskiLike struct {
	Cfg   Config
	First *Conv
	Convs []*Conv
	Proj  *nn.MLP
}

// NewMinkowskiLike constructs the stride-1 comparison network.
func NewMinkowskiLike(cfg Config, rng *rand.Rand) *MinkowskiLike {
	m := &MinkowskiLike{Cfg: cfg}
	m.First = NewConv("mink.first", cfg.Dim, 1, cfg.Channels, cfg.FirstKernel, 1, rng)
	for i := 0; i < cfg.Depth; i++ {
		m.Convs = append(m.Convs, NewConv("mink.conv"+itoa(i), cfg.Dim, cfg.Channels, cfg.Channels, 3, 1, rng))
	}
	m.Proj = nn.NewMLP("mink.proj", []int{cfg.Channels, cfg.OutDim, cfg.OutDim}, rng)
	return m
}

// Params returns all trainable parameters.
func (m *MinkowskiLike) Params() []*nn.Param {
	out := m.First.Params()
	for _, c := range m.Convs {
		out = append(out, c.Params()...)
	}
	return append(out, m.Proj.Params()...)
}

// Extract produces the OutDim-dimensional feature from the final layer only.
func (m *MinkowskiLike) Extract(t *nn.Tape, sm *SparseMap) *nn.Grad {
	x := ReLUMap(t, m.First.Apply(t, sm))
	for _, c := range m.Convs {
		x = ReLUMap(t, c.Apply(t, x))
	}
	return m.Proj.Apply(t, GlobalAvgPool(t, x))
}

// OutDim returns the feature dimensionality.
func (m *MinkowskiLike) OutDim() int { return m.Cfg.OutDim }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
