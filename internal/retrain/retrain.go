// Package retrain closes the online learning loop: it replays the
// serving-observed measurement log (internal/obslog) into dataset entries,
// fine-tunes the sealed cost model on them with the deterministic worker-pool
// trainer, and promotes the candidate into a versioned artifact directory —
// but only when it passes the rank-quality gates against the incumbent on a
// held-out log slice. cmd/waco-retrain is the CLI wrapper; the CI retrain-e2e
// job drives the whole loop in-process.
//
// Two modes:
//
//   - Full retrain: every weight adapts, and the HNSW index is rebuilt (the
//     embedder moved, so the frozen graph embeddings are stale).
//   - Transfer (COGNATE-style few-shot): the extractor and embedder freeze and
//     only the predictor head adapts from a small measurement budget — the
//     bring-up path on a new machine. A frozen embedder keeps the incumbent's
//     graph embeddings valid, so the index is reused, not rebuilt.
package retrain

import (
	"context"
	"fmt"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/obslog"
	"waco/internal/search"
	"waco/internal/tensor"
)

// Config controls one retrain run.
type Config struct {
	// LogPath is the obslog file to replay.
	LogPath string
	// ArtifactPath is the incumbent sealed artifact — the model to fine-tune
	// and the baseline the candidate must beat on the held-out slice.
	ArtifactPath string
	// ModelDir, when set, is the versioned artifact directory (core.Manifest)
	// a gate-passing candidate is promoted into. Empty skips promotion (dry
	// run: gates still evaluate and Result reports them).
	ModelDir string
	// Transfer freezes the extractor and embedder and adapts only the head.
	Transfer bool
	// Budget, when > 0, uses only the most recent Budget log records — the
	// few-shot measurement budget of the transfer experiments.
	Budget int
	// Quantize recalibrates an int8 head for the candidate and gates its
	// promotion on quantized/float rank fidelity >= QuantGate.
	Quantize bool
	// MinRecords is the fewest intact log records required to attempt a
	// retrain. Default 16.
	MinRecords int
	// HoldoutFrac is the fraction of replayed entries held out for the
	// promotion gate (never trained on). Default 0.34.
	HoldoutFrac float64
	// GateSlack is how far (absolute Spearman) the candidate may fall below
	// the incumbent on the held-out slice and still promote — measured
	// runtimes are noisy, and both models are scored on the same slice, so a
	// small slack rejects regressions without flapping on noise. Default 0.02.
	GateSlack float64
	// QuantGate is the quantized/float rank-fidelity floor. Default 0.98,
	// matching the established serving gate.
	QuantGate float64
	// Epochs, LR, Seed, Workers parameterize the fine-tune. Epochs default 4,
	// LR 1e-3, Seed 1.
	Epochs  int
	LR      float32
	Seed    int64
	Workers int
	// Verbose, if non-nil, receives progress lines.
	Verbose func(string)
}

func (c Config) withDefaults() Config {
	if c.MinRecords <= 0 {
		c.MinRecords = 16
	}
	if c.HoldoutFrac <= 0 || c.HoldoutFrac >= 1 {
		c.HoldoutFrac = 0.34
	}
	if c.GateSlack < 0 {
		c.GateSlack = 0
	} else if c.GateSlack == 0 {
		c.GateSlack = 0.02
	}
	if c.QuantGate <= 0 {
		c.QuantGate = 0.98
	}
	if c.Epochs <= 0 {
		c.Epochs = 4
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result reports one retrain run: the data volume, both gate scores, and the
// promotion outcome. Promoted=false with an empty Err means the gate rejected
// the candidate — an expected outcome, not a failure.
type Result struct {
	Records        int     `json:"records"`
	Used           int     `json:"used"`
	SkippedRecords int     `json:"skipped_records"`
	TrainEntries   int     `json:"train_entries"`
	HoldoutEntries int     `json:"holdout_entries"`
	Transfer       bool    `json:"transfer"`
	IncumbentRank  float64 `json:"incumbent_rank"`
	CandidateRank  float64 `json:"candidate_rank"`
	QuantFidelity  float64 `json:"quant_fidelity,omitempty"`
	Promoted       bool    `json:"promoted"`
	Reason         string  `json:"reason"`
	Version        int     `json:"version,omitempty"`
	Stamp          string  `json:"stamp,omitempty"`
	PromotedPath   string  `json:"promoted_path,omitempty"`
}

// Run executes one observe→retrain→gate→promote cycle. The returned Result
// is non-nil whenever the run reached the gates, including gate rejections;
// errors are reserved for operational failures (unreadable log or artifact,
// training errors).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	logf := func(format string, args ...any) {
		if cfg.Verbose != nil {
			cfg.Verbose(fmt.Sprintf(format, args...))
		}
	}

	recs, err := obslog.ReadFile(cfg.LogPath)
	if err != nil {
		return nil, err
	}
	res := &Result{Records: len(recs), Transfer: cfg.Transfer}
	if len(recs) < cfg.MinRecords {
		return nil, fmt.Errorf("retrain: log %s holds %d records, need at least %d", cfg.LogPath, len(recs), cfg.MinRecords)
	}
	used := recs
	if cfg.Budget > 0 && cfg.Budget < len(recs) {
		used = recs[len(recs)-cfg.Budget:]
	}
	res.Used = len(used)

	entries, skipped := obslog.Entries(used)
	res.SkippedRecords = skipped
	train, holdout, err := obslog.SplitHoldout(entries, cfg.HoldoutFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res.TrainEntries, res.HoldoutEntries = len(train), len(holdout)
	logf("replayed %d/%d records into %d entries (%d train, %d holdout, %d skipped)",
		len(used), len(recs), len(entries), len(train), len(holdout), skipped)

	incumbent, err := core.LoadTunerFile(cfg.ArtifactPath)
	if err != nil {
		return nil, err
	}
	cand, err := incumbent.Model.Clone()
	if err != nil {
		return nil, err
	}

	tc := incumbent.Cfg.Train
	tc.Epochs = cfg.Epochs
	tc.LR = cfg.LR
	tc.Seed = cfg.Seed
	tc.Workers = cfg.Workers
	tc.HeadOnly = cfg.Transfer
	tc.Verbose = nil
	if cfg.Verbose != nil {
		tc.Verbose = func(line string) { logf("train: %s", line) }
	}
	if _, err := costmodel.TrainContext(ctx, cand, train, holdout, tc); err != nil {
		return nil, fmt.Errorf("retrain: fine-tune: %w", err)
	}

	// Promotion gate: both models scored on the same held-out slice —
	// data neither fine-tuned on — so measurement noise hits both equally.
	res.IncumbentRank, err = costmodel.RankQuality(incumbent.Model, holdout)
	if err != nil {
		return nil, fmt.Errorf("retrain: scoring incumbent: %w", err)
	}
	res.CandidateRank, err = costmodel.RankQuality(cand, holdout)
	if err != nil {
		return nil, fmt.Errorf("retrain: scoring candidate: %w", err)
	}
	logf("holdout rank quality: candidate %.4f vs incumbent %.4f (slack %.3f)",
		res.CandidateRank, res.IncumbentRank, cfg.GateSlack)
	if res.CandidateRank+cfg.GateSlack < res.IncumbentRank {
		res.Promoted = false
		res.Reason = fmt.Sprintf("gate rejected: candidate rank %.4f below incumbent %.4f - slack %.3f",
			res.CandidateRank, res.IncumbentRank, cfg.GateSlack)
		return res, nil
	}

	tuner, err := candidateTuner(ctx, incumbent, cand, cfg)
	if err != nil {
		return nil, err
	}

	if cfg.Quantize {
		if err := tuner.Quantize(calibrationPatterns(train)); err != nil {
			return nil, fmt.Errorf("retrain: quantizing candidate head: %w", err)
		}
		res.QuantFidelity, err = costmodel.QuantRankFidelity(cand, tuner.Quantized, holdout)
		if err != nil {
			return nil, fmt.Errorf("retrain: quantized fidelity: %w", err)
		}
		logf("quantized/float rank fidelity: %.4f (gate %.2f)", res.QuantFidelity, cfg.QuantGate)
		if res.QuantFidelity < cfg.QuantGate {
			res.Promoted = false
			res.Reason = fmt.Sprintf("gate rejected: quantized fidelity %.4f below %.2f", res.QuantFidelity, cfg.QuantGate)
			return res, nil
		}
	}

	res.Promoted = true
	res.Reason = "gates passed"
	if cfg.ModelDir == "" {
		res.Reason = "gates passed (dry run: no -modeldir, nothing promoted)"
		return res, nil
	}
	man, err := core.OpenManifest(cfg.ModelDir)
	if err != nil {
		return nil, err
	}
	mode := "full"
	if cfg.Transfer {
		mode = "transfer"
	}
	entry, err := man.Promote(tuner, fmt.Sprintf("%s retrain over %d records: rank %.4f vs %.4f",
		mode, len(used), res.CandidateRank, res.IncumbentRank))
	if err != nil {
		return nil, err
	}
	res.Version = entry.Version
	res.Stamp = entry.Stamp
	res.PromotedPath = man.VersionPath(entry.Version)
	logf("promoted model.v%d.waco (stamp %.16s)", entry.Version, entry.Stamp)
	return res, nil
}

// candidateTuner assembles the candidate's serving tuner. Transfer mode
// reuses the incumbent's graph and schedules: the embedder is frozen, so
// every stored embedding is still exactly what the candidate would compute.
// A full retrain moved the embedder and must re-embed and rebuild.
func candidateTuner(ctx context.Context, incumbent *core.Tuner, cand *costmodel.Model, cfg Config) (*core.Tuner, error) {
	t := &core.Tuner{
		Cfg:          incumbent.Cfg,
		Model:        cand,
		BuildSeconds: incumbent.BuildSeconds,
	}
	if cfg.Transfer {
		t.Index = &search.Index{Model: cand, Schedules: incumbent.Index.Schedules, Graph: incumbent.Index.Graph}
		return t, nil
	}
	ix, err := search.BuildIndexContext(ctx, cand, incumbent.Index.Schedules, incumbent.Cfg.HNSW,
		search.BuildOptions{Workers: cfg.Workers})
	if err != nil {
		return nil, fmt.Errorf("retrain: rebuilding index: %w", err)
	}
	t.Index = ix
	return t, nil
}

// calibrationPatterns collects the replayed patterns for int8 calibration.
func calibrationPatterns(entries []*dataset.Entry) []*tensor.COO {
	out := make([]*tensor.COO, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.COO)
	}
	return out
}
