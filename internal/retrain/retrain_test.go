package retrain

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/obslog"
	"waco/internal/schedule"
	"waco/internal/serve"
	"waco/internal/sparseconv"
)

// The incumbent fixture: one small sealed SpMM tuner shared by every test,
// the artifact a serving fleet would have deployed before the first retrain.
var (
	seedOnce   sync.Once
	seedSealed []byte
	seedErr    error
)

func sealedSeedBytes(t *testing.T) []byte {
	t.Helper()
	seedOnce.Do(func() {
		cfg := core.DefaultConfig(schedule.SpMM)
		cfg.Collect.SchedulesPerMatrix = 8
		cfg.Collect.Repeats = 1
		cfg.Collect.DenseN = 8
		sp := schedule.DefaultSpace(schedule.SpMM)
		sp.SplitChoices = []int32{1, 2, 4, 8}
		sp.ThreadChoices = []int{1, 2}
		cfg.Collect.Space = sp
		cfg.Model = costmodel.Config{
			Extractor: costmodel.KindHumanFeature,
			ConvCfg:   sparseconv.Config{Dim: 2, Channels: 4, Depth: 2, FirstKernel: 3, OutDim: 12},
			EmbDim:    12,
			HeadDims:  []int{16},
			Seed:      1,
		}
		cfg.Train = costmodel.TrainConfig{Epochs: 3, PairsPerMatrix: 8, LR: 1e-3, Seed: 2, Loss: costmodel.LossRank}
		cfg.TopK = 3
		cfg.SearchEf = 24
		cc := generate.DefaultCorpusConfig()
		cc.Count = 5
		cc.MinDim, cc.MaxDim, cc.MaxNNZ = 64, 160, 2500
		var tuner *core.Tuner
		tuner, _, seedErr = core.Build(generate.Corpus(cc), cfg)
		if seedErr != nil {
			return
		}
		var buf bytes.Buffer
		seedErr = core.SaveTuner(&buf, tuner)
		seedSealed = buf.Bytes()
	})
	if seedErr != nil {
		t.Fatal(seedErr)
	}
	return seedSealed
}

func sealedSeedFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seed.tuner")
	if err := os.WriteFile(path, sealedSeedBytes(t), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPromotionGateRejection: a candidate that regresses on the held-out
// slice never rotates in. The log is constructed so the incumbent ranks the
// holdout perfectly (its labels follow the incumbent's own predictions)
// while the training slice is labeled with the inverse ordering — the
// fine-tune can only move the candidate away from the incumbent, and the
// gate must catch that.
func TestPromotionGateRejection(t *testing.T) {
	artifact := sealedSeedFile(t)
	incumbent, err := core.LoadTunerFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if len(incumbent.Index.Schedules) < 5 {
		t.Fatalf("fixture index holds %d schedules, need 5", len(incumbent.Index.Schedules))
	}
	scheds := incumbent.Index.Schedules[:5]

	// First pass with placeholder runtimes, just to learn which entries the
	// seeded split holds out (grouping and the split ignore the runtimes).
	const nEntries, seed, frac = 6, int64(1), 0.34
	rng := rand.New(rand.NewSource(7))
	var draft []*obslog.Record
	type entrySpec struct {
		fp    string
		dims  []int
		crd   [][]int32
		preds []float64
	}
	specs := make([]entrySpec, nEntries)
	for i := range specs {
		coo := generate.Uniform(rng, 48, 48, 300)
		pat := costmodel.NewPattern(coo)
		sp := entrySpec{fp: fmt.Sprintf("fp-%02d", i), dims: coo.Dims, crd: coo.Coords}
		for _, ss := range scheds {
			p, err := incumbent.Model.Cost(pat, ss)
			if err != nil {
				t.Fatal(err)
			}
			sp.preds = append(sp.preds, p)
		}
		specs[i] = sp
		for range scheds {
			draft = append(draft, &obslog.Record{
				Fingerprint: sp.fp, Dims: sp.dims, Coords: sp.crd,
				Schedule: scheds[0], Seconds: 1,
			})
		}
	}
	entries, skipped := obslog.Entries(draft)
	if skipped != 0 || len(entries) != nEntries {
		t.Fatalf("draft replay: %d entries, %d skipped", len(entries), skipped)
	}
	_, holdout, err := obslog.SplitHoldout(entries, frac, seed)
	if err != nil {
		t.Fatal(err)
	}
	held := make(map[string]bool)
	for _, e := range holdout {
		// Entry names are derived from the fingerprint prefix.
		held[e.Name] = true
	}

	// Second pass: holdout entries labeled by the incumbent's own ordering
	// (incumbent Spearman = 1 by construction), training entries inverted.
	logPath := filepath.Join(t.TempDir(), "obs.log")
	l, err := obslog.Open(logPath, obslog.Options{Host: "gate-test"})
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		lo, hi := sp.preds[0], sp.preds[0]
		for _, p := range sp.preds {
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		inverted := !held["obs-"+sp.fp] // fingerprints here are short, names keep them whole
		for j, ss := range scheds {
			secs := 1e-3 + (sp.preds[j] - lo)
			if inverted {
				secs = 1e-3 + (hi - sp.preds[j])
			}
			if ok := l.Append(obslog.Record{
				Fingerprint: sp.fp, Dims: sp.dims, Coords: sp.crd,
				Schedule: ss, Decomp: ss.Decomp.String(), Seconds: secs,
			}); !ok {
				t.Fatalf("append %d/%d refused", i, j)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	modelDir := filepath.Join(t.TempDir(), "models")
	res, err := Run(context.Background(), Config{
		LogPath:      logPath,
		ArtifactPath: artifact,
		ModelDir:     modelDir,
		MinRecords:   8,
		HoldoutFrac:  frac,
		GateSlack:    0.001,
		Epochs:       8,
		LR:           5e-2,
		Seed:         seed,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Promoted {
		t.Fatalf("regressed candidate promoted: candidate %.4f vs incumbent %.4f",
			res.CandidateRank, res.IncumbentRank)
	}
	if res.IncumbentRank < 0.999 {
		t.Fatalf("incumbent should rank its own labels perfectly, got %.4f", res.IncumbentRank)
	}
	if res.CandidateRank+0.001 >= res.IncumbentRank {
		t.Fatalf("rejection without a regression? candidate %.4f incumbent %.4f",
			res.CandidateRank, res.IncumbentRank)
	}
	// Nothing rotated: the model directory was never even created.
	if _, err := os.Stat(modelDir); !os.IsNotExist(err) {
		ents, _ := os.ReadDir(modelDir)
		if len(ents) != 0 {
			t.Fatalf("gate rejection left artifacts in %s: %v", modelDir, ents)
		}
	}
}

func tuneBody(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coo := generate.Uniform(rng, 96, 96, 900)
	m := serve.MatrixJSON{Dims: coo.Dims, Coords: coo.Coords, Vals: coo.Vals}
	body, err := json.Marshal(serve.TuneRequest{Matrix: &m})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestRetrainE2E drives the whole online learning loop in-process: a serving
// replica observes real tunes into the measurement log, a full retrain and a
// budgeted transfer retrain replay it through the gates and rotate versioned
// artifacts, and /admin/reload hot-swaps the promoted artifact under
// concurrent traffic with zero 5xx responses. This is the test the CI
// retrain-e2e job runs under -race.
func TestRetrainE2E(t *testing.T) {
	artifact := sealedSeedFile(t)
	tuner, err := core.LoadTunerFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "obs.log")
	l, err := obslog.Open(logPath, obslog.Options{Host: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.NewServer(tuner, serve.Options{
		MaxWorkers:   2,
		ArtifactPath: artifact,
		ObsLog:       l,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Observe: real tunes through the HTTP surface, each probing several
	// candidates — the log accumulates rankable per-candidate measurements.
	const matrices = 8
	for i := int64(0); i < matrices; i++ {
		resp, err := http.Post(ts.URL+"/v1/tune", "application/json", bytes.NewReader(tuneBody(t, 500+i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tune %d: status %d", i, resp.StatusCode)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Dropped() != 0 {
		t.Fatalf("%d observations dropped", l.Dropped())
	}
	if got := l.Appended(); got < matrices {
		t.Fatalf("only %d records for %d tunes", got, matrices)
	}

	// Retrain (full): replay the log, gate, promote v1.
	modelDir := filepath.Join(t.TempDir(), "models")
	full, err := Run(context.Background(), Config{
		LogPath:      logPath,
		ArtifactPath: artifact,
		ModelDir:     modelDir,
		MinRecords:   int(matrices),
		GateSlack:    0.5, // kernel probes are noisy at this fixture scale
		Epochs:       2,
		Seed:         3,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Promoted || full.Version != 1 || full.Stamp == "" {
		t.Fatalf("full retrain did not promote v1: %+v", full)
	}
	if _, err := os.Stat(full.PromotedPath); err != nil {
		t.Fatal(err)
	}

	// Retrain (transfer): frozen backbone, measurement budget, promote v2.
	transfer, err := Run(context.Background(), Config{
		LogPath:      logPath,
		ArtifactPath: artifact,
		ModelDir:     modelDir,
		Transfer:     true,
		Budget:       64,
		MinRecords:   int(matrices),
		GateSlack:    0.5,
		Epochs:       2,
		Seed:         3,
		Workers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !transfer.Promoted || transfer.Version != 2 {
		t.Fatalf("transfer retrain did not promote v2: %+v", transfer)
	}
	if transfer.Used > 64 {
		t.Fatalf("budget ignored: used %d records", transfer.Used)
	}

	// Reload under traffic: hot-swap to the promoted artifact while cached
	// tunes keep flowing; not a single request may see a 5xx.
	before := srv.Artifact().Stamp
	var fails atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/tune", "application/json",
					bytes.NewReader(tuneBody(t, 500+int64(i%matrices))))
				if err != nil {
					fails.Add(1)
					return
				}
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					fails.Add(1)
				}
			}
		}(g)
	}
	body, _ := json.Marshal(map[string]string{"artifact": transfer.PromotedPath})
	resp, err := http.Post(ts.URL+"/admin/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Version int    `json:"version"`
		Stamp   string `json:"stamp"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload returned %d", resp.StatusCode)
	}
	close(stop)
	wg.Wait()
	if n := fails.Load(); n != 0 {
		t.Fatalf("%d requests failed or saw 5xx during the reload", n)
	}
	if info.Stamp != transfer.Stamp {
		t.Fatalf("reload swapped to stamp %.16s, promoted %.16s", info.Stamp, transfer.Stamp)
	}
	if got := srv.Artifact().Stamp; got != transfer.Stamp || got == before {
		t.Fatalf("serving stamp %.16s after reload (was %.16s, promoted %.16s)", got, before, transfer.Stamp)
	}

	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
