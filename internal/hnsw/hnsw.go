// Package hnsw implements the Hierarchical Navigable Small World graph
// (Malkov & Yashunin) used by WACO's search strategy (§4.2): the graph is
// *built* on the L2 distance between program embeddings, and *searched* with
// an arbitrary distance function — in WACO, the cost model's predicted
// runtime for the query matrix — exploiting the property that a KNN graph
// built on L2 supports retrieval under generic query metrics (Tan et al.).
package hnsw

import (
	"math"
	"math/rand"
	"sync"

	"waco/internal/parallelism"
)

// Config sizes the graph.
type Config struct {
	M              int // neighbors per node per layer (layer 0 keeps 2M)
	EfConstruction int // beam width during insertion
	Seed           int64

	// Workers bounds the goroutines used to batch L2 distance evaluations
	// of a popped candidate's unvisited neighbors during insertion. It
	// affects build speed only, never graph structure: the batch computes a
	// pure function and its results are consumed in neighbor order, so any
	// Workers value yields a bit-identical graph. <= 1 evaluates inline.
	Workers int
}

// DefaultConfig returns typical HNSW parameters.
func DefaultConfig() Config { return Config{M: 12, EfConstruction: 64, Seed: 1} }

// Graph is an HNSW index over dense float32 vectors.
type Graph struct {
	cfg   Config
	mL    float64
	rng   *rand.Rand
	vecs  [][]float32
	nodes []node
	entry int
	top   int // highest occupied layer
}

type node struct {
	level int
	links [][]int32 // links[l] = neighbor ids at layer l, l <= level
}

// New creates an empty graph.
func New(cfg Config) *Graph {
	if cfg.M < 2 {
		cfg.M = 2
	}
	if cfg.EfConstruction < cfg.M {
		cfg.EfConstruction = cfg.M * 4
	}
	return &Graph{
		cfg:   cfg,
		mL:    1 / math.Log(float64(cfg.M)),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		entry: -1,
	}
}

// Len returns the number of indexed vectors.
func (g *Graph) Len() int { return len(g.vecs) }

// Vector returns the stored vector for id (shared storage; do not modify).
func (g *Graph) Vector(id int) []float32 { return g.vecs[id] }

// EntryPoint returns the id of the graph's entry node (-1 when empty).
func (g *Graph) EntryPoint() int { return g.entry }

// Level returns the highest layer node id participates in.
func (g *Graph) Level(id int) int { return g.nodes[id].level }

// Neighbors returns a copy of id's adjacency list at the given layer (nil
// above the node's level). The equivalence suite uses Level and Neighbors to
// assert that worker counts never change graph structure.
func (g *Graph) Neighbors(id, layer int) []int32 {
	return append([]int32(nil), g.linksAt(id, layer)...)
}

func (g *Graph) l2(a []float32, id int) float64 {
	b := g.vecs[id]
	var s float64
	for i, x := range a {
		d := float64(x - b[i])
		s += d * d
	}
	return s
}

// Add inserts a vector and returns its id.
func (g *Graph) Add(vec []float32) int {
	id := len(g.vecs)
	g.vecs = append(g.vecs, vec)
	level := int(math.Floor(-math.Log(1-g.rng.Float64()) * g.mL))
	n := node{level: level, links: make([][]int32, level+1)}
	g.nodes = append(g.nodes, n)

	if g.entry < 0 {
		g.entry = id
		g.top = level
		return id
	}

	cur := g.entry
	curDist := g.l2(vec, cur)
	// Greedy descent through layers above the new node's level.
	for l := g.top; l > level; l-- {
		cur, curDist = g.greedyStep(vec, cur, curDist, l)
	}
	// Insert at each layer from min(top, level) down to 0.
	maxL := level
	if maxL > g.top {
		maxL = g.top
	}
	for l := maxL; l >= 0; l-- {
		cands := g.searchLayerL2(vec, cur, l, g.cfg.EfConstruction)
		m := g.cfg.M
		if l == 0 {
			m = 2 * g.cfg.M
		}
		if len(cands) > m {
			cands = cands[:m]
		}
		for _, c := range cands {
			g.nodes[id].links[l] = append(g.nodes[id].links[l], int32(c.id))
			g.nodes[c.id].links[l] = append(g.nodes[c.id].links[l], int32(id))
			g.pruneNode(c.id, l, m)
		}
		if len(cands) > 0 {
			cur = cands[0].id
		}
	}
	if level > g.top {
		g.top = level
		g.entry = id
	}
	return id
}

// greedyStep moves to the closest improving neighbor at layer l until a
// local minimum is reached.
func (g *Graph) greedyStep(vec []float32, cur int, curDist float64, l int) (int, float64) {
	for {
		improved := false
		for _, nb := range g.linksAt(cur, l) {
			if d := g.l2(vec, int(nb)); d < curDist {
				cur, curDist = int(nb), d
				improved = true
			}
		}
		if !improved {
			return cur, curDist
		}
	}
}

func (g *Graph) linksAt(id, l int) []int32 {
	n := &g.nodes[id]
	if l > n.level {
		return nil
	}
	return n.links[l]
}

// pruneNode keeps only the m closest (by L2 to the node's own vector)
// neighbors of id at layer l.
func (g *Graph) pruneNode(id, l, m int) {
	links := g.nodes[id].links[l]
	if len(links) <= m {
		return
	}
	self := g.vecs[id]
	type nd struct {
		id int32
		d  float64
	}
	ds := make([]nd, len(links))
	for i, nb := range links {
		ds[i] = nd{nb, g.l2(self, int(nb))}
	}
	// Partial selection sort of the m closest.
	for i := 0; i < m; i++ {
		best := i
		for j := i + 1; j < len(ds); j++ {
			if ds[j].d < ds[best].d {
				best = j
			}
		}
		ds[i], ds[best] = ds[best], ds[i]
	}
	out := make([]int32, m)
	for i := 0; i < m; i++ {
		out[i] = ds[i].id
	}
	g.nodes[id].links[l] = out
}

type cand struct {
	id int
	d  float64
}

// searchLayer is the ef-bounded best-first search at one layer under an
// arbitrary distance; returns candidates sorted ascending by distance, in a
// slice owned by sc (valid until its next use).
//
// batch, when non-nil, fills out[i] with the distance of ids[i] for a whole
// unvisited-neighbor set at once; otherwise dist evaluates one id at a time.
// Either way the distances of a popped candidate's neighbors are consumed in
// adjacency-list order, so a parallel batch evaluator cannot change which
// nodes are pushed — only how fast the distances arrive.
//
//waco:allocfree
func (g *Graph) searchLayer(dist func(id int) float64, batch func(ids []int32, out []float64), entry, l, ef int, sc *Scratch) []cand {
	visited := sc.visited
	clear(visited)
	entryDist := dist(entry)
	cands := sc.cands[:0]
	results := sc.results[:0]
	pushMin(&cands, cand{entry, entryDist})
	pushMax(&results, cand{entry, entryDist})
	visited[entry] = true
	nbuf := sc.nbuf[:0]
	for len(cands) > 0 {
		c := popMin(&cands)
		if c.d > results[0].d && len(results) >= ef {
			break
		}
		nbuf = nbuf[:0]
		for _, nb := range g.linksAt(c.id, l) {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			nbuf = append(nbuf, nb)
		}
		sc.dbuf = growF64(sc.dbuf, len(nbuf))
		ds := sc.dbuf
		if batch != nil {
			batch(nbuf, ds)
		} else {
			for i, nb := range nbuf {
				ds[i] = dist(int(nb))
			}
		}
		for i, nb := range nbuf {
			if d := ds[i]; len(results) < ef || d < results[0].d {
				pushMin(&cands, cand{int(nb), d})
				pushMax(&results, cand{int(nb), d})
				if len(results) > ef {
					popMax(&results)
				}
			}
		}
	}
	out := growCands(sc.sorted, len(results))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = popMax(&results)
	}
	sc.cands, sc.results, sc.nbuf, sc.sorted = cands, results, nbuf, out
	return out
}

// l2BatchGrain is the minimum batch size worth fanning out: below it the
// goroutine handoff costs more than the distance arithmetic it parallelizes.
const l2BatchGrain = 16

func (g *Graph) searchLayerL2(vec []float32, entry, l, ef int) []cand {
	sc := &Scratch{}
	sc.ensure(len(g.vecs))
	dist := func(id int) float64 { return g.l2(vec, id) }
	var batch func(ids []int32, out []float64)
	if g.cfg.Workers > 1 {
		batch = func(ids []int32, out []float64) { g.l2Batch(vec, ids, out) }
	}
	return g.searchLayer(dist, batch, entry, l, ef, sc)
}

// l2Batch fills out[i] = ||vec - vecs[ids[i]]||^2, splitting the batch over
// up to cfg.Workers goroutines when it is large enough to amortize them.
// Each worker writes only its own span of out, and out is read strictly
// after Wait, so the result is identical to the sequential loop.
func (g *Graph) l2Batch(vec []float32, ids []int32, out []float64) {
	workers := g.cfg.Workers
	if len(ids) < l2BatchGrain || workers <= 1 {
		for i, id := range ids {
			out[i] = g.l2(vec, int(id))
		}
		return
	}
	var wg sync.WaitGroup
	for _, sp := range parallelism.Partition(len(ids), workers) {
		wg.Add(1)
		go func(sp parallelism.Span) {
			defer wg.Done()
			for i := sp.Lo; i < sp.Hi; i++ {
				out[i] = g.l2(vec, int(ids[i]))
			}
		}(sp)
	}
	wg.Wait()
}

// SearchL2 returns the ids of the k nearest stored vectors to query.
func (g *Graph) SearchL2(query []float32, k, ef int) []int {
	ids, _ := g.Search(func(id int) float64 { return g.l2(query, id) }, k, ef)
	return ids
}

// Search retrieves the k stored items minimizing an arbitrary distance
// function, navigating the L2-built graph (WACO's two-metric trick). It
// returns the ids (ascending by distance) and the number of distance
// evaluations performed — the "trials" axis of Figure 16.
//
// Search is the convenient wrapper: it memoizes dist behind a map and
// allocates its own scratch per call. The query path in search.Index uses
// SearchWith directly with a slice-backed memo, reused scratch, and a batch
// evaluator; both traverse identically.
func (g *Graph) Search(dist func(id int) float64, k, ef int) ([]int, int) {
	if g.entry < 0 {
		return nil, 0
	}
	evals := 0
	memo := make(map[int]float64, 4*max(ef, k))
	cached := func(id int) float64 {
		if d, ok := memo[id]; ok {
			return d
		}
		d := dist(id)
		evals++
		memo[id] = d
		return d
	}
	ids := g.SearchWith(cached, nil, k, ef, nil)
	out := make([]int, len(ids))
	copy(out, ids)
	return out, evals
}
