package hnsw

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds Load corrupt, truncated, and bit-flipped graph files. The
// contract under fuzz: Load either succeeds or returns an error — it never
// panics — and a graph it accepts is safe to search (every link and the
// entry point are in range).
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	if err := buildGraph(Config{M: 4, EfConstruction: 16, Seed: 3}, testVectors(7, 40, 4)).Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:8])  // magic only
	f.Add(valid[:11]) // magic + partial version
	f.Add([]byte("WACOHNSWgarbage"))
	f.Add([]byte("NOTMAGIC"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[20] ^= 0xff
	f.Add(mutated)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.Len() == 0 {
			return
		}
		if e := g.EntryPoint(); e < 0 || e >= g.Len() {
			t.Fatalf("Load accepted a graph with entry point %d of %d nodes", e, g.Len())
		}
		for id := 0; id < g.Len(); id++ {
			for l := 0; l <= g.Level(id); l++ {
				for _, nb := range g.Neighbors(id, l) {
					if nb < 0 || int(nb) >= g.Len() {
						t.Fatalf("Load accepted node %d with out-of-range link %d", id, nb)
					}
				}
			}
		}
		// A loaded graph must answer searches without panicking.
		g.SearchL2(g.Vector(g.EntryPoint()), 3, 8)
	})
}
