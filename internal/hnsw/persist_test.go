package hnsw

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vecs := randomVecs(rng, 400, 6)
	g := New(Config{M: 10, EfConstruction: 48, Seed: 3})
	for _, v := range vecs {
		g.Add(v)
	}

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != g.Len() {
		t.Fatalf("loaded %d vectors, want %d", loaded.Len(), g.Len())
	}

	// L2 search must be identical: same graph, same traversal, same results.
	for q := 0; q < 20; q++ {
		query := randomVecs(rng, 1, 6)[0]
		a := g.SearchL2(query, 8, 40)
		b := loaded.SearchL2(query, 8, 40)
		if len(a) != len(b) {
			t.Fatalf("query %d: result lengths %d vs %d", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %d: result %d differs: %d vs %d", q, i, a[i], b[i])
			}
		}
	}

	// Generic-metric search (the WACO query path) must also be identical,
	// including the evaluation count.
	w := randomVecs(rng, 1, 6)[0]
	cost := func(id int) float64 {
		var s float64
		for j, x := range vecs[id] {
			s += float64(w[j]) * float64(x)
		}
		return s
	}
	aIDs, aEvals := g.Search(cost, 5, 48)
	bIDs, bEvals := loaded.Search(cost, 5, 48)
	if aEvals != bEvals {
		t.Fatalf("eval counts differ: %d vs %d", aEvals, bEvals)
	}
	for i := range aIDs {
		if aIDs[i] != bIDs[i] {
			t.Fatalf("generic search result %d differs: %d vs %d", i, aIDs[i], bIDs[i])
		}
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := Load(bytes.NewReader([]byte("NOTAGRAPHFILE___"))); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Valid magic, wrong version.
	var buf bytes.Buffer
	buf.WriteString(persistMagic)
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Load(&buf); err == nil {
		t.Fatal("accepted bad version")
	}
}

func TestSaveLoadEmptyGraph(t *testing.T) {
	g := New(DefaultConfig())
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("loaded empty graph has %d vectors", loaded.Len())
	}
	if ids, _ := loaded.Search(func(int) float64 { return 0 }, 3, 8); ids != nil {
		t.Fatal("search on loaded empty graph returned results")
	}
}
