package hnsw

import (
	"reflect"
	"testing"
)

// graphShape flattens everything structural about a graph — entry point,
// top layer, per-node level, and per-node per-layer adjacency — through the
// exported accessors, so two graphs can be compared without peeking at
// internals.
type graphShape struct {
	entry, n int
	levels   []int
	links    [][][]int32
}

func shapeOf(g *Graph) graphShape {
	s := graphShape{entry: g.EntryPoint(), n: g.Len()}
	for id := 0; id < g.Len(); id++ {
		lv := g.Level(id)
		s.levels = append(s.levels, lv)
		layers := make([][]int32, lv+1)
		for l := 0; l <= lv; l++ {
			layers[l] = g.Neighbors(id, l)
		}
		s.links = append(s.links, layers)
	}
	return s
}

// TestBuildWorkersIdenticalGraph is the HNSW half of the equivalence suite:
// the batched L2 evaluator must be invisible in the built structure, so
// sequential and multi-worker builds over the same vectors and seed agree on
// every level and every link. M is set high enough (2M = 32 >= l2BatchGrain)
// that layer-0 neighbor batches actually cross the fan-out threshold.
func TestBuildWorkersIdenticalGraph(t *testing.T) {
	vecs := testVectors(17, 400, 8)
	var want graphShape
	for _, workers := range []int{1, 2, 8} {
		g := buildGraph(Config{M: 16, EfConstruction: 48, Seed: 9, Workers: workers}, vecs)
		got := shapeOf(g)
		if workers == 1 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			for id := range got.links {
				if got.levels[id] != want.levels[id] || !reflect.DeepEqual(got.links[id], want.links[id]) {
					t.Fatalf("workers=%d: node %d diverged from sequential build:\n%v (level %d)\nvs\n%v (level %d)",
						workers, id, got.links[id], got.levels[id], want.links[id], want.levels[id])
				}
			}
			t.Fatalf("workers=%d: graph diverged (entry %d vs %d, top via levels)", workers, got.entry, want.entry)
		}
	}
}

// TestNeighborsAccessor pins the accessor contract: a copy (mutating the
// return must not corrupt the graph) and nil above the node's level.
func TestNeighborsAccessor(t *testing.T) {
	g := buildGraph(Config{M: 4, EfConstruction: 16, Seed: 2}, testVectors(3, 50, 4))
	id := g.EntryPoint()
	nbs := g.Neighbors(id, 0)
	if len(nbs) == 0 {
		t.Fatal("entry node has no layer-0 neighbors in a 50-node graph")
	}
	nbs[0] = -7
	if g.Neighbors(id, 0)[0] == -7 {
		t.Fatal("Neighbors returned shared storage, not a copy")
	}
	if got := g.Neighbors(id, g.Level(id)+1); got != nil {
		t.Fatalf("Neighbors above node level = %v, want nil", got)
	}
}
