package hnsw

// This file is the query-path side of the graph: a reusable Scratch so a
// steady-state search allocates nothing, hand-rolled binary heaps (the
// container/heap interface boxes every pushed candidate into an allocation,
// which at hundreds of pushes per query was a measurable share of the query
// path's garbage), and SearchWith, the batched generic-distance search that
// lets the caller score a whole adjacency list per callback.
//
// The hand-rolled sift functions mirror container/heap's algorithm exactly
// (same swap sequence, same tie behavior), so SearchWith returns the same
// ids in the same order as the historical heap-based implementation.

// Scratch holds the reusable buffers of one search. The zero value is ready;
// buffers size themselves on first use and are recycled across queries. A
// Scratch is single-goroutine, like the nn.Arena it typically rides next to,
// and every slice returned by SearchWith is valid only until the next
// SearchWith call with the same Scratch.
type Scratch struct {
	visited []bool
	cands   []cand // min-heap of candidates to expand
	results []cand // max-heap of the dynamic result set
	dbuf    []float64
	nbuf    []int32
	sorted  []cand
	ids     []int
}

// ensure sizes the visited bitmap for a graph of n nodes.
func (sc *Scratch) ensure(n int) {
	if cap(sc.visited) < n {
		sc.visited = make([]bool, n)
	}
	sc.visited = sc.visited[:n]
}

// growF64 returns buf resized to n, reallocating only when capacity is
// short. Contents are unspecified; callers overwrite every element. Growth
// lives here — outside the //waco:allocfree functions — so the escape
// analysis gate attributes the (warmup-only) allocation to this helper.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growCands is growF64 for candidate slices.
func growCands(buf []cand, n int) []cand {
	if cap(buf) < n {
		return make([]cand, n)
	}
	return buf[:n]
}

// pushMin appends c and sifts it up, exactly as container/heap.Push would.
//
//waco:allocfree
func pushMin(h *[]cand, c cand) {
	s := append(*h, c)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].d < s[i].d) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

// popMin removes and returns the minimum, exactly as container/heap.Pop.
//
//waco:allocfree
func popMin(h *[]cand) cand {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].d < s[j1].d {
			j = j2
		}
		if !(s[j].d < s[i].d) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	c := s[n]
	*h = s[:n]
	return c
}

// pushMax / popMax are the max-heap twins for the dynamic result set.
//
//waco:allocfree
func pushMax(h *[]cand, c cand) {
	s := append(*h, c)
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].d > s[i].d) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
	*h = s
}

//waco:allocfree
func popMax(h *[]cand) cand {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].d > s[j1].d {
			j = j2
		}
		if !(s[j].d > s[i].d) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	c := s[n]
	*h = s[:n]
	return c
}

// SearchWith retrieves the k stored items minimizing an arbitrary distance,
// like Search, but built for a hot query path: batch — when non-nil — is
// handed whole adjacency lists to score in one call (out[i] receives the
// distance of ids[i]), and all working memory comes from sc, so a warmed-up
// search allocates nothing.
//
// batch must be equivalent to calling dist on each id in order; it may
// receive ids it has already scored (the greedy descent re-reads its
// neighborhood every hop), so callers that count evaluations should memoize —
// search.Index keys a slice-backed memo on graph id. The returned slice is
// owned by sc and valid until its next use; callers that keep it copy it out.
//
//waco:allocfree
func (g *Graph) SearchWith(dist func(id int) float64, batch func(ids []int32, out []float64), k, ef int, sc *Scratch) []int {
	if g.entry < 0 {
		return nil
	}
	if ef < k {
		ef = k
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(len(g.vecs))

	evalList := func(ids []int32) []float64 {
		sc.dbuf = growF64(sc.dbuf, len(ids))
		ds := sc.dbuf
		if batch != nil {
			batch(ids, ds)
		} else {
			for i, nb := range ids {
				ds[i] = dist(int(nb))
			}
		}
		return ds
	}

	cur := g.entry
	curDist := dist(cur)
	// Greedy descent through the upper layers. The sequential loop scores
	// every neighbor of the pass-start node anyway, so handing batch the
	// whole links list changes nothing about which nodes are evaluated or in
	// what order — it only collapses the per-id callback overhead.
	for l := g.top; l > 0; l-- {
		for {
			links := g.linksAt(cur, l)
			ds := evalList(links)
			improved := false
			for i, nb := range links {
				if d := ds[i]; d < curDist {
					cur, curDist = int(nb), d
					improved = true
				}
			}
			if !improved {
				break
			}
		}
	}
	cands := g.searchLayer(dist, batch, cur, 0, ef, sc)
	if len(cands) > k {
		cands = cands[:k]
	}
	ids := sc.ids[:0]
	for _, c := range cands {
		ids = append(ids, c.id)
	}
	sc.ids = ids
	return ids
}
