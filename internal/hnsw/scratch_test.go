package hnsw

import (
	"math/rand"
	"testing"
)

func buildRandomGraph(t testing.TB, n, dim int) (*Graph, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := New(Config{M: 8, EfConstruction: 32, Seed: 9})
	for i := 0; i < n; i++ {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32()
		}
		g.Add(v)
	}
	return g, rng
}

// TestSearchWithMatchesSearch pins the batched scratch-based path against the
// map-memoized wrapper: same ids, same order, same evaluation count, across
// queries that reuse one Scratch.
func TestSearchWithMatchesSearch(t *testing.T) {
	g, rng := buildRandomGraph(t, 400, 6)
	sc := &Scratch{}
	seen := make([]bool, g.Len())
	memo := make([]float64, g.Len())
	for trial := 0; trial < 20; trial++ {
		q := make([]float32, 6)
		for d := range q {
			q[d] = rng.Float32()
		}
		dist := func(id int) float64 { return g.l2(q, id) }
		want, wantEvals := g.Search(dist, 10, 24)

		clear(seen)
		evals := 0
		cached := func(id int) float64 {
			if !seen[id] {
				seen[id] = true
				memo[id] = dist(id)
				evals++
			}
			return memo[id]
		}
		batch := func(ids []int32, out []float64) {
			for i, id := range ids {
				out[i] = cached(int(id))
			}
		}
		got := g.SearchWith(cached, batch, 10, 24, sc)
		if len(got) != len(want) {
			t.Fatalf("trial %d: SearchWith returned %d ids, Search %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: id %d = %d, want %d (full: %v vs %v)", trial, i, got[i], want[i], got, want)
			}
		}
		if evals != wantEvals {
			t.Fatalf("trial %d: SearchWith performed %d evals, Search %d", trial, evals, wantEvals)
		}
	}
}

// TestSearchWithSteadyStateAllocs verifies a warmed-up SearchWith query
// allocates nothing: scratch, memo, and heaps are all reused.
func TestSearchWithSteadyStateAllocs(t *testing.T) {
	g, rng := buildRandomGraph(t, 300, 5)
	sc := &Scratch{}
	seen := make([]bool, g.Len())
	memo := make([]float64, g.Len())
	q := make([]float32, 5)
	for d := range q {
		q[d] = rng.Float32()
	}
	cached := func(id int) float64 {
		if !seen[id] {
			seen[id] = true
			memo[id] = g.l2(q, id)
		}
		return memo[id]
	}
	batch := func(ids []int32, out []float64) {
		for i, id := range ids {
			out[i] = cached(int(id))
		}
	}
	query := func() {
		clear(seen)
		g.SearchWith(cached, batch, 10, 32, sc)
	}
	query() // warmup sizes the scratch
	if allocs := testing.AllocsPerRun(20, query); allocs > 0 {
		t.Fatalf("steady-state SearchWith allocates %.1f times per query, want 0", allocs)
	}
}
