package hnsw

import (
	"math/rand"
	"sort"
	"testing"
)

func randomVecs(rng *rand.Rand, n, dim int) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for d := range v {
			v[d] = rng.Float32()*2 - 1
		}
		out[i] = v
	}
	return out
}

func bruteForceKNN(vecs [][]float32, q []float32, k int) []int {
	type nd struct {
		id int
		d  float64
	}
	ds := make([]nd, len(vecs))
	for i, v := range vecs {
		var s float64
		for j := range q {
			diff := float64(q[j] - v[j])
			s += diff * diff
		}
		ds[i] = nd{i, s}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].id
	}
	return out
}

func TestEmptyGraph(t *testing.T) {
	g := New(DefaultConfig())
	if ids, evals := g.Search(func(int) float64 { return 0 }, 3, 8); ids != nil || evals != 0 {
		t.Fatal("search on empty graph returned results")
	}
	if g.Len() != 0 {
		t.Fatal("empty graph has length")
	}
}

func TestSingleElement(t *testing.T) {
	g := New(DefaultConfig())
	g.Add([]float32{1, 2})
	ids := g.SearchL2([]float32{0, 0}, 1, 4)
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestRecallAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vecs := randomVecs(rng, 500, 8)
	g := New(Config{M: 12, EfConstruction: 80, Seed: 2})
	for _, v := range vecs {
		g.Add(v)
	}
	if g.Len() != 500 {
		t.Fatalf("len %d", g.Len())
	}
	const k = 10
	var hit, total int
	for q := 0; q < 30; q++ {
		query := randomVecs(rng, 1, 8)[0]
		want := bruteForceKNN(vecs, query, k)
		got := g.SearchL2(query, k, 64)
		wantSet := map[int]bool{}
		for _, id := range want {
			wantSet[id] = true
		}
		for _, id := range got {
			if wantSet[id] {
				hit++
			}
		}
		total += k
	}
	recall := float64(hit) / float64(total)
	if recall < 0.85 {
		t.Fatalf("recall %.3f, want >= 0.85", recall)
	}
}

func TestSearchResultsSortedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := randomVecs(rng, 200, 4)
	g := New(DefaultConfig())
	for _, v := range vecs {
		g.Add(v)
	}
	q := randomVecs(rng, 1, 4)[0]
	dist := func(id int) float64 {
		var s float64
		for j := range q {
			d := float64(q[j] - vecs[id][j])
			s += d * d
		}
		return s
	}
	ids, evals := g.Search(dist, 8, 32)
	if evals <= 0 {
		t.Fatal("no distance evaluations counted")
	}
	for i := 1; i < len(ids); i++ {
		if dist(ids[i-1]) > dist(ids[i]) {
			t.Fatal("results not sorted by distance")
		}
	}
}

// The WACO property: search with a *different* metric than the build metric
// still finds low-cost items, because graph neighborhoods under L2 remain
// navigable for related metrics.
func TestGenericMetricSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vecs := randomVecs(rng, 600, 6)
	g := New(Config{M: 12, EfConstruction: 80, Seed: 5})
	for _, v := range vecs {
		g.Add(v)
	}
	// Cost = a fixed random linear function of the embedding (a stand-in for
	// the cost model head).
	w := randomVecs(rng, 1, 6)[0]
	cost := func(id int) float64 {
		var s float64
		for j, x := range vecs[id] {
			s += float64(w[j]) * float64(x)
		}
		return s
	}
	ids, evals := g.Search(cost, 5, 64)
	if len(ids) != 5 {
		t.Fatalf("got %d results", len(ids))
	}
	// Rank of the best found among all items must be near the top.
	best := cost(ids[0])
	rank := 0
	for id := range vecs {
		if cost(id) < best {
			rank++
		}
	}
	if rank > 30 { // top 5% of 600
		t.Fatalf("generic-metric search found rank-%d item", rank)
	}
	if evals >= len(vecs) {
		t.Fatalf("search evaluated %d >= n distances (not sublinear)", evals)
	}
}

func TestEvalsMuchSmallerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	vecs := randomVecs(rng, 2000, 8)
	g := New(Config{M: 10, EfConstruction: 60, Seed: 7})
	for _, v := range vecs {
		g.Add(v)
	}
	q := randomVecs(rng, 1, 8)[0]
	_, evals := g.Search(func(id int) float64 {
		var s float64
		for j := range q {
			d := float64(q[j] - vecs[id][j])
			s += d * d
		}
		return s
	}, 10, 50)
	if evals > 1200 {
		t.Fatalf("evals = %d for n=2000; expected strongly sublinear", evals)
	}
}

func TestDeterministicBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vecs := randomVecs(rng, 100, 4)
	build := func() []int {
		g := New(Config{M: 8, EfConstruction: 32, Seed: 9})
		for _, v := range vecs {
			g.Add(v)
		}
		return g.SearchL2(vecs[3], 5, 16)
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("build not deterministic")
		}
	}
}

func TestKLargerThanGraph(t *testing.T) {
	g := New(DefaultConfig())
	g.Add([]float32{0})
	g.Add([]float32{1})
	ids := g.SearchL2([]float32{0.2}, 10, 20)
	if len(ids) != 2 {
		t.Fatalf("got %d ids for k=10 over 2 items", len(ids))
	}
}
