package hnsw

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// persistMagic identifies a serialized HNSW graph; persistVersion is bumped
// on any incompatible layout change so stale artifacts fail loudly instead
// of deserializing garbage.
const (
	persistMagic   = "WACOHNSW"
	persistVersion = uint32(1)
)

// graphDisk is the on-disk mirror of Graph. Links are flattened per node so
// gob does not pay per-slice overhead on the (node x layer) nesting.
type graphDisk struct {
	Cfg    Config
	Vecs   [][]float32
	Levels []int32
	Links  [][][]int32
	Entry  int
	Top    int
}

// Save writes the graph — vectors, every layer's adjacency, and the entry
// point — in a versioned binary format readable by Load. A loaded graph
// answers searches identically to the original; the insertion RNG is
// re-seeded from Cfg.Seed, so subsequent Adds may diverge (sealed artifacts
// are read-only, which is the intended use).
func (g *Graph) Save(w io.Writer) error {
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, persistVersion); err != nil {
		return err
	}
	d := graphDisk{
		Cfg:    g.cfg,
		Vecs:   g.vecs,
		Levels: make([]int32, len(g.nodes)),
		Links:  make([][][]int32, len(g.nodes)),
		Entry:  g.entry,
		Top:    g.top,
	}
	for i := range g.nodes {
		d.Levels[i] = int32(g.nodes[i].level)
		d.Links[i] = g.nodes[i].links
	}
	return gob.NewEncoder(w).Encode(d)
}

// Load reconstructs a graph written by Save.
func Load(r io.Reader) (*Graph, error) {
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("hnsw: reading magic: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("hnsw: bad magic %q (not an HNSW graph file)", magic)
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("hnsw: reading version: %w", err)
	}
	if version != persistVersion {
		return nil, fmt.Errorf("hnsw: format version %d, this build reads %d", version, persistVersion)
	}
	var d graphDisk
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("hnsw: decoding graph: %w", err)
	}
	if len(d.Levels) != len(d.Vecs) || len(d.Links) != len(d.Vecs) {
		return nil, fmt.Errorf("hnsw: inconsistent graph: %d vecs, %d levels, %d link sets",
			len(d.Vecs), len(d.Levels), len(d.Links))
	}
	g := New(d.Cfg)
	g.rng = rand.New(rand.NewSource(d.Cfg.Seed))
	g.vecs = d.Vecs
	g.entry = d.Entry
	g.top = d.Top
	g.nodes = make([]node, len(d.Vecs))
	maxLevel := 0
	for i, v := range d.Vecs {
		// Ragged vectors would index out of range inside l2 at search time.
		if len(v) != len(d.Vecs[0]) {
			return nil, fmt.Errorf("hnsw: vector %d has dim %d, vector 0 has %d", i, len(v), len(d.Vecs[0]))
		}
	}
	for i := range g.nodes {
		level := int(d.Levels[i])
		if level < 0 {
			return nil, fmt.Errorf("hnsw: node %d: negative level %d", i, level)
		}
		links := d.Links[i]
		if len(links) != level+1 {
			return nil, fmt.Errorf("hnsw: node %d: %d link layers for level %d", i, len(links), level)
		}
		// A link to an id outside the graph would turn the first search
		// into an out-of-range panic; reject the artifact instead.
		for l, layer := range links {
			for _, nb := range layer {
				if nb < 0 || int(nb) >= len(d.Vecs) {
					return nil, fmt.Errorf("hnsw: node %d layer %d links to %d, graph has %d nodes",
						i, l, nb, len(d.Vecs))
				}
			}
		}
		g.nodes[i] = node{level: level, links: links}
		if level > maxLevel {
			maxLevel = level
		}
	}
	if len(g.vecs) > 0 {
		if g.entry < 0 || g.entry >= len(g.vecs) {
			return nil, fmt.Errorf("hnsw: entry point %d out of range", g.entry)
		}
		// An inflated top would make every search walk the phantom layers.
		if g.top < 0 || g.top > maxLevel {
			return nil, fmt.Errorf("hnsw: top layer %d, highest node level is %d", g.top, maxLevel)
		}
	}
	return g, nil
}
