package hnsw

import (
	"math/rand"
	"reflect"
	"testing"
)

// testVectors builds a deterministic cloud of vectors from an explicit seed.
func testVectors(seed int64, n, dim int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float32, n)
	for i := range vecs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = v
	}
	return vecs
}

func buildGraph(cfg Config, vecs [][]float32) *Graph {
	g := New(cfg)
	for _, v := range vecs {
		g.Add(v)
	}
	return g
}

// TestSameSeedBuildsIdenticalGraph locks in build determinism: level
// assignment draws only from the Config.Seed-derived generator, so two
// builds over the same vectors must agree on every level and every link.
func TestSameSeedBuildsIdenticalGraph(t *testing.T) {
	vecs := testVectors(11, 300, 8)
	cfg := Config{M: 8, EfConstruction: 32, Seed: 5}
	g1 := buildGraph(cfg, vecs)
	g2 := buildGraph(cfg, vecs)

	if g1.entry != g2.entry || g1.top != g2.top {
		t.Fatalf("entry/top diverged: (%d,%d) vs (%d,%d)", g1.entry, g1.top, g2.entry, g2.top)
	}
	if !reflect.DeepEqual(g1.nodes, g2.nodes) {
		for i := range g1.nodes {
			if !reflect.DeepEqual(g1.nodes[i], g2.nodes[i]) {
				t.Fatalf("node %d diverged between same-seed builds:\n%v\nvs\n%v", i, g1.nodes[i], g2.nodes[i])
			}
		}
		t.Fatal("graphs diverged")
	}

	q := testVectors(99, 1, 8)[0]
	r1 := g1.SearchL2(q, 10, 32)
	r2 := g2.SearchL2(q, 10, 32)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same-seed graphs answered differently: %v vs %v", r1, r2)
	}
}

// TestDifferentSeedChangesLevels guards against the seed being ignored: with
// 300 nodes the probability of two independent geometric level sequences
// coinciding is negligible, so identical levels would mean the generator is
// not actually driven by Config.Seed.
func TestDifferentSeedChangesLevels(t *testing.T) {
	vecs := testVectors(11, 300, 8)
	g1 := buildGraph(Config{M: 8, EfConstruction: 32, Seed: 5}, vecs)
	g2 := buildGraph(Config{M: 8, EfConstruction: 32, Seed: 6}, vecs)
	for i := range g1.nodes {
		if g1.nodes[i].level != g2.nodes[i].level {
			return // seeds observably differ, as they must
		}
	}
	t.Fatal("300 level draws identical across different seeds; Config.Seed is not reaching the generator")
}
