package experiments

import (
	"fmt"
	"math"

	"waco/internal/schedule"
)

// overheadStats aggregates, for one method over the test corpus, the mean
// tuning+conversion overhead expressed in naive-kernel invocations and the
// geomean speedup over the naive kernel — the two axes of Figure 17.
type overheadStats struct {
	OverheadCalls float64 // (T_tuning + T_convert) / T_naive
	Speedup       float64 // T_naive / T_tuned
	Count         int
}

// computeOverheads derives Figure 17's data from a comparison result, using
// FixedCSR as the "naive MKL" reference implementation.
func computeOverheads(cmp *ComparisonResult) map[string]overheadStats {
	sums := map[string]*struct {
		overhead float64
		logSp    float64
		n        int
	}{}
	for _, r := range cmp.Results {
		naive, ok := r["FixedCSR"]
		if !ok || naive.KernelSeconds <= 0 {
			continue
		}
		for method, mr := range r {
			if method == "FixedCSR" || mr.KernelSeconds <= 0 {
				continue
			}
			s := sums[method]
			if s == nil {
				s = &struct {
					overhead float64
					logSp    float64
					n        int
				}{}
				sums[method] = s
			}
			s.overhead += (mr.TuningSeconds + mr.ConvertSeconds) / naive.KernelSeconds
			s.logSp += math.Log(naive.KernelSeconds / mr.KernelSeconds)
			s.n++
		}
	}
	out := map[string]overheadStats{}
	for method, s := range sums {
		if s.n == 0 {
			continue
		}
		out[method] = overheadStats{
			OverheadCalls: s.overhead / float64(s.n),
			Speedup:       math.Exp(s.logSp / float64(s.n)),
			Count:         s.n,
		}
	}
	return out
}

// Fig17TuningOverhead reproduces Figure 17: tuning overhead (in units of
// naive kernel invocations) versus achieved speedup, for MKL, BestFormat and
// WACO on SpMV and SpMM.
func Fig17TuningOverhead(s Scale) (*Table, map[schedule.Algorithm]*ComparisonResult, error) {
	results := map[schedule.Algorithm]*ComparisonResult{}
	t := &Table{
		Title:  "Figure 17: tuning overhead vs speedup (reference: naive FixedCSR kernel)",
		Header: []string{"Algorithm", "Method", "overhead (naive calls)", "geomean speedup", "amortize after N runs"},
	}
	for _, alg := range []schedule.Algorithm{schedule.SpMV, schedule.SpMM} {
		cmp, err := RunComparison(alg, s)
		if err != nil {
			return nil, nil, err
		}
		results[alg] = cmp
		ov := computeOverheads(cmp)
		for _, method := range []string{"MKL", "BestFormat", "WACO"} {
			st, ok := ov[method]
			if !ok {
				continue
			}
			amortize := "-"
			if st.Speedup > 1 {
				// Overhead is paid back when N*(1 - 1/speedup) > overhead.
				amortize = fmt.Sprintf("%.0f", st.OverheadCalls/(1-1/st.Speedup))
			}
			t.AddRow(alg.String(), method, fmt.Sprintf("%.1f", st.OverheadCalls), speedupStr(st.Speedup), amortize)
		}
	}
	t.AddNote("paper: WACO amortizes after ~919 SpMV / ~101 SpMM runs; BestFormat tunes fastest, WACO trades search time for the best speedup")
	return t, results, nil
}

// Scenario is one Table 8 application with its kernel-invocation count.
type Scenario struct {
	Label string
	Alg   schedule.Algorithm
	NRuns float64
}

// PaperScenarios lists the applications of Table 8.
func PaperScenarios() []Scenario {
	return []Scenario{
		{"PageRank", schedule.SpMV, 50},
		{"GMRES", schedule.SpMV, 517_000},
		{"Mesh simulation", schedule.SpMV, 1_800_000},
		{"GNN", schedule.SpMM, 10_000},
		{"Pruned NN", schedule.SpMM, 1_000_000},
	}
}

// Table8EndToEnd reproduces Table 8: end-to-end execution time
// (T_tuning + T_convert + N * T_kernel) in units of naive kernel calls for
// the real-world scenarios, plus the measured break-even N where WACO
// overtakes MKL and BestFormat.
func Table8EndToEnd(results map[schedule.Algorithm]*ComparisonResult) *Table {
	t := &Table{
		Title:  "Table 8: end-to-end execution time in naive-kernel-call units (lower is better; * marks the winner)",
		Header: []string{"Scenario", "N_runs", "WACO", "BestFormat", "MKL"},
	}
	methods := []string{"WACO", "BestFormat", "MKL"}
	for _, sc := range PaperScenarios() {
		cmp := results[sc.Alg]
		if cmp == nil {
			continue
		}
		ov := computeOverheads(cmp)
		cost := map[string]float64{}
		bestMethod, bestCost := "", math.Inf(1)
		for _, m := range methods {
			st, ok := ov[m]
			if !ok {
				continue
			}
			c := st.OverheadCalls + sc.NRuns/st.Speedup
			cost[m] = c
			if c < bestCost {
				bestMethod, bestCost = m, c
			}
		}
		row := []string{sc.Label + " (" + sc.Alg.String() + ")", fmt.Sprintf("%.0f", sc.NRuns)}
		for _, m := range methods {
			c, ok := cost[m]
			if !ok {
				row = append(row, "Not Impl.")
				continue
			}
			cell := fmt.Sprintf("%.0f", c)
			if m == bestMethod {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	// Break-even rows (the paper's "WACO=MKL" / "WACO=BestFormat" N).
	for _, alg := range []schedule.Algorithm{schedule.SpMV, schedule.SpMM} {
		cmp := results[alg]
		if cmp == nil {
			continue
		}
		ov := computeOverheads(cmp)
		w, okW := ov["WACO"]
		if !okW {
			continue
		}
		for _, other := range []string{"MKL", "BestFormat"} {
			o, ok := ov[other]
			if !ok {
				continue
			}
			if 1/w.Speedup < 1/o.Speedup {
				n := (w.OverheadCalls - o.OverheadCalls) / (1/o.Speedup - 1/w.Speedup)
				t.AddNote("%v: WACO overtakes %s after N = %.0f runs (paper: %s)", alg, other,
					math.Max(0, n), paperBreakEven(alg, other))
			} else {
				t.AddNote("%v: WACO never overtakes %s at this scale (per-run time not smaller)", alg, other)
			}
		}
	}
	return t
}

func paperBreakEven(alg schedule.Algorithm, other string) string {
	switch {
	case alg == schedule.SpMV && other == "MKL":
		return "1,546"
	case alg == schedule.SpMV && other == "BestFormat":
		return "3,627"
	case alg == schedule.SpMM && other == "MKL":
		return "115"
	case alg == schedule.SpMM && other == "BestFormat":
		return "412"
	}
	return "?"
}
