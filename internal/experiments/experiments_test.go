package experiments

import (
	"bytes"
	"strings"
	"testing"

	"waco/internal/schedule"
)

// microScale is even smaller than QuickScale, for unit tests.
func microScale() Scale {
	s := QuickScale()
	s.TrainMatrices = 5
	s.TestMatrices = 4
	s.MaxDim = 160
	s.MaxNNZ = 2500
	s.Repeats = 1
	s.DenseN = 8
	s.SchedulesPerMatrix = 8
	s.Epochs = 1
	s.Pairs = 4
	s.Channels = 3
	s.ConvDepth = 2
	s.FeatDim = 8
	s.EmbDim = 8
	s.TuneSamples = 10
	s.SearchBudget = 60
	s.TopK = 2
	return s
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("n=%d", 3)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Fatalf("geomean %g", g)
	}
	if Geomean(nil) != 1 {
		t.Fatal("empty geomean")
	}
	if Geomean([]float64{-1, 0}) != 1 {
		t.Fatal("non-positive geomean")
	}
}

func TestScaleByName(t *testing.T) {
	if ScaleByName("paper").Name != "paper" || ScaleByName("default").Name != "default" || ScaleByName("x").Name != "quick" {
		t.Fatal("scale resolution wrong")
	}
}

func TestTables1And2(t *testing.T) {
	s := microScale()
	tables, err := Tables1And2(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	if len(tables[0].Rows) != 3 || len(tables[1].Rows) != 3 {
		t.Fatalf("row counts %d/%d", len(tables[0].Rows), len(tables[1].Rows))
	}
	// Table 1: F.+S. must be at least as fast as the base (the base
	// configuration is included in the candidate set).
	for _, row := range tables[0].Rows {
		fs := row[len(row)-1]
		if !strings.HasSuffix(fs, "x") {
			t.Fatalf("bad cell %q", fs)
		}
	}
}

func TestFig14(t *testing.T) {
	s := microScale()
	tab, err := Fig14BlockSizeHeuristic(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestRunComparisonSpMM(t *testing.T) {
	s := microScale()
	cmp, err := RunComparison(schedule.SpMM, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Results) != s.TestMatrices {
		t.Fatalf("%d results", len(cmp.Results))
	}
	// All five methods must be present for SpMM.
	want := map[string]bool{"FixedCSR": true, "MKL": true, "BestFormat": true, "ASpT": true, "WACO": true}
	for _, m := range cmp.Methods {
		delete(want, m)
	}
	if len(want) != 0 {
		t.Fatalf("missing methods %v", want)
	}
	sp := cmp.Speedups("FixedCSR")
	if len(sp) == 0 {
		t.Fatal("no speedups computed")
	}
	for i := 1; i < len(sp); i++ {
		if sp[i] < sp[i-1] {
			t.Fatal("speedups not sorted")
		}
	}
}

func TestFig13AndTable6(t *testing.T) {
	s := microScale()
	tables, cmp, err := Fig13SpMMCurves(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 { // one curve per baseline
		t.Fatalf("%d figure tables", len(tables))
	}
	t6 := Table6SpeedupFactors(map[schedule.Algorithm]*ComparisonResult{schedule.SpMM: cmp})
	if len(t6.Rows) == 0 {
		t.Fatal("empty table 6")
	}
}

func TestFig15(t *testing.T) {
	s := microScale()
	tab, err := Fig15FeatureExtractors(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d extractor rows", len(tab.Rows))
	}
}

func TestFig16(t *testing.T) {
	s := microScale()
	a, err := Fig16aSearchStrategies(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("%d strategy rows", len(a.Rows))
	}
	b, err := Fig16bSearchBreakdown(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 5 {
		t.Fatalf("%d breakdown rows", len(b.Rows))
	}
}

func TestTable7(t *testing.T) {
	s := microScale()
	tab, err := Table7CrossHardware(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Rows[0]) != 3 {
		t.Fatalf("shape %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
}

func TestFig17AndTable8(t *testing.T) {
	s := microScale()
	tab, results, err := Fig17TuningOverhead(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty overhead table")
	}
	t8 := Table8EndToEnd(results)
	if len(t8.Rows) != len(PaperScenarios()) {
		t.Fatalf("%d scenario rows", len(t8.Rows))
	}
}

func TestAblations(t *testing.T) {
	s := microScale()
	if _, err := AblationExecutorOverhead(s); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationRankingVsMSE(s); err != nil {
		t.Fatal(err)
	}
	if _, err := AblationANNSRecall(s); err != nil {
		t.Fatal(err)
	}
}

func TestQueryPathThroughput(t *testing.T) {
	tab, err := QueryPathThroughput(microScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want forward and tape", len(tab.Rows))
	}
}
