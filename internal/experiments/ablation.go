package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/search"
)

// AblationExecutorOverhead measures the cost of the generic schedule-directed
// executor against a hand-written CSR SpMV — the interpretation overhead the
// DESIGN.md design decision #2 accepts in exchange for covering the whole
// format x schedule space with one engine.
func AblationExecutorOverhead(s Scale) (*Table, error) {
	rng := rand.New(rand.NewSource(s.Seed + 61))
	dim := s.MaxDim
	coo := generate.Uniform(rng, dim, dim, s.MaxNNZ)
	csr, err := coo.Clone().ToCSR()
	if err != nil {
		return nil, err
	}
	wl, err := kernel.NewWorkload(schedule.SpMV, coo, 0)
	if err != nil {
		return nil, err
	}
	ss := schedule.DefaultSchedule(schedule.SpMV, 1) // serial for apples-to-apples
	plan, err := wl.Compile(ss, kernel.DefaultProfile(), 0)
	if err != nil {
		return nil, err
	}

	reps := s.Repeats * 3
	median := func(f func()) time.Duration {
		times := make([]time.Duration, reps)
		for i := range times {
			t0 := time.Now()
			f()
			times[i] = time.Since(t0)
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		return times[len(times)/2]
	}
	out := make([]float32, dim)
	handWritten := median(func() { csr.SpMV(wl.BVec(), out) })
	var runErr error
	generic := median(func() {
		if _, err := wl.Run(plan); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		return nil, runErr
	}

	t := &Table{
		Title:  "Ablation: generic executor vs hand-written CSR SpMV (serial)",
		Header: []string{"Kernel", "median time", "relative"},
	}
	t.AddRow("hand-written CSR", handWritten.String(), "1.00")
	t.AddRow("generic executor (CSR schedule)", generic.String(), f2(generic.Seconds()/handWritten.Seconds()))
	t.AddNote("%d rows, %d nnz; the overhead is uniform across schedules, so relative rankings are preserved", dim, coo.NNZ())
	return t, nil
}

// AblationRankingVsMSE compares the paper's pairwise ranking loss against
// plain runtime regression, by the metric that matters for search: the
// fraction of schedule pairs ranked correctly on held-out matrices.
func AblationRankingVsMSE(s Scale) (*Table, error) {
	ds, err := collectSpMM(s)
	if err != nil {
		return nil, err
	}
	train, val := ds.Split(0.25, s.Seed)
	if len(val) == 0 {
		return nil, fmt.Errorf("experiments: empty validation split")
	}
	t := &Table{
		Title:  "Ablation: ranking loss vs MSE regression (SpMM cost model)",
		Header: []string{"Objective", "val pair accuracy"},
	}
	for _, loss := range []costmodel.LossKind{costmodel.LossRank, costmodel.LossMSE} {
		cfg := s.pipelineConfig(schedule.SpMM, kernel.DefaultProfile())
		m, err := costmodel.New(cfg.Collect.Space, cfg.Model)
		if err != nil {
			return nil, err
		}
		tc := cfg.Train
		tc.Loss = loss
		if _, err := costmodel.Train(m, train, val, tc); err != nil {
			return nil, err
		}
		acc, err := costmodel.PairAccuracy(m, val, 32, s.Seed+62)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(loss), fmt.Sprintf("%.1f%%", 100*acc))
	}
	return t, nil
}

// AblationANNSRecall quantifies how close the ANNS retrieval gets to an
// exhaustive scan of the index under the trained cost model — the retrieval
// quality that justifies searching a KNN graph instead of scoring every
// indexed SuperSchedule.
func AblationANNSRecall(s Scale) (*Table, error) {
	profile := kernel.DefaultProfile()
	tuner, ds, err := core.Build(s.TrainCorpus(), s.pipelineConfig(schedule.SpMM, profile))
	if err != nil {
		return nil, err
	}
	test := s.TestCorpus()
	if len(test) > 6 {
		test = test[:6]
	}
	t := &Table{
		Title:  "Ablation: ANNS retrieval vs exhaustive cost-model scan over the index",
		Header: []string{"Matrix", "index size", "evals", "best rank (exhaustive)", "cost gap"},
	}
	for _, mat := range test {
		p := costmodel.NewPattern(mat.COO)
		res, err := tuner.Index.Search(context.Background(), p, s.TopK, 8*s.TopK)
		if err != nil {
			return nil, err
		}
		if len(res.Candidates) == 0 {
			continue
		}
		ev, err := search.NewEvaluator(tuner.Model, p)
		if err != nil {
			return nil, err
		}
		best := res.Candidates[0].Cost
		rank := 0
		minCost := best
		for _, ss := range tuner.Index.Schedules {
			c := ev.Cost(ss)
			if c < best-1e-9 {
				rank++
			}
			if c < minCost {
				minCost = c
			}
		}
		t.AddRow(mat.Name, fmt.Sprint(len(tuner.Index.Schedules)), fmt.Sprint(res.Evals),
			fmt.Sprint(rank), fmt.Sprintf("%.4f", best-minCost))
	}
	t.AddNote("index built from %s", datasetStats(ds))
	t.AddNote("rank 0 = ANNS found the exhaustive optimum; evals << index size is the speed win")
	return t, nil
}

// AblationConcordantSampling validates the stratified-sampling adaptation
// (DESIGN.md #2): two identical pipelines, one collecting its dataset with
// purely uniform SuperSchedule sampling and one mixing in format-concordant
// traversals, compared by end-to-end tuned speedup over FixedCSR.
func AblationConcordantSampling(s Scale) (*Table, error) {
	profile := kernel.DefaultProfile()
	t := &Table{
		Title:  "Ablation: uniform vs stratified (concordant-mixed) dataset sampling, SpMM",
		Header: []string{"Sampling", "dataset size", "geomean speedup vs FixedCSR"},
	}
	test := TestCorporaFor(schedule.SpMM, s)
	for _, frac := range []float64{0, 0.34} {
		cfg := s.pipelineConfig(schedule.SpMM, profile)
		cfg.Collect.ConcordantFrac = frac
		tuner, ds, err := core.Build(CorporaFor(schedule.SpMM, s), cfg)
		if err != nil {
			return nil, err
		}
		var sp []float64
		for _, m := range test {
			wl, err := kernel.NewWorkload(schedule.SpMM, m.COO, s.denseNFor(schedule.SpMM))
			if err != nil {
				return nil, err
			}
			w, err := tuner.Tune(wl, profile, baselinesConfig(s))
			if err != nil {
				continue
			}
			f, err := baselinesFixed{}.kernelSeconds(wl, profile, s.Repeats)
			if err != nil {
				continue
			}
			sp = append(sp, f/w.KernelSeconds)
		}
		label := "uniform"
		if frac > 0 {
			label = fmt.Sprintf("stratified (%.0f%% concordant)", 100*frac)
		}
		t.AddRow(label, datasetStats(ds), speedupStr(Geomean(sp)))
	}
	return t, nil
}

// datasetStats summarizes a dataset (used by cmd tools).
func datasetStats(ds *dataset.Dataset) string {
	return fmt.Sprintf("%d matrices, %d samples", len(ds.Entries), ds.NumSamples())
}
