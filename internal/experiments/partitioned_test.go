package experiments

import (
	"strings"
	"testing"

	"waco/internal/format"
	"waco/internal/schedule"
)

func TestSkewedFixtureDecomposes(t *testing.T) {
	s := microScale()
	coo := SkewedFixture(s)
	if coo.NNZ() == 0 {
		t.Fatal("empty fixture")
	}
	// The fixture must actually populate all three region archetypes under
	// the full preset — otherwise the comparison is not exercising the
	// composable path it claims to showcase.
	part, err := format.Decompose(coo.Clone(), schedule.DecompFull.Rule())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range part.Regions {
		if r.COO.NNZ() == 0 {
			t.Fatalf("region %d (%v) empty: fixture does not cover all archetypes", i, r.Class)
		}
	}
}

func TestPartitionedComparison(t *testing.T) {
	s := microScale()
	tab, err := PartitionedComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	// FixedCSR, BCSR, three decomposition presets, and the learned row.
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tab.Rows))
	}
	if tab.Rows[0][0] != "FixedCSR" || tab.Rows[5][0] != "WACO (learned)" {
		t.Fatalf("unexpected row order: %v", tab.Rows)
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[len(row)-1], "x") {
			t.Fatalf("bad speedup cell %q", row[len(row)-1])
		}
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "learned schedule:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing learned-schedule note: %v", tab.Notes)
	}
}
