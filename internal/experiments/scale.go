// Package experiments reproduces every table and figure of the WACO paper's
// motivation and evaluation sections on the Go substrate. Each experiment is
// a function returning renderable Tables; bench_test.go at the module root
// wraps each in a testing.B benchmark, and cmd/waco-bench runs them at
// larger scales and writes the results used in EXPERIMENTS.md.
package experiments

import (
	"runtime"

	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/generate"
	"waco/internal/hnsw"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/sparseconv"

	"waco/internal/core"
)

// Scale bundles every knob that trades fidelity for wall-clock time.
type Scale struct {
	Name string

	// Corpus sizes.
	TrainMatrices int
	TestMatrices  int
	MinDim        int
	MaxDim        int
	MaxNNZ        int

	// Measurement.
	Repeats int
	DenseN  int // dense inner dimension for SpMM/SDDMM (MTTKRP uses half)

	// Dataset collection.
	SchedulesPerMatrix int

	// Cost model.
	Extractor costmodel.ExtractorKind
	Channels  int
	ConvDepth int
	FeatDim   int
	EmbDim    int
	Epochs    int
	Pairs     int
	LR        float32

	// Tuning-time search.
	TuneSamples  int // direct-measurement samples for Table 1/2 tuning
	SearchBudget int // cost-model evaluations for Figure 16
	TopK         int

	Seed int64
}

// QuickScale finishes in seconds to a couple of minutes per experiment —
// used by `go test -bench`.
func QuickScale() Scale {
	return Scale{
		Name:          "quick",
		TrainMatrices: 12, TestMatrices: 6,
		MinDim: 64, MaxDim: 320, MaxNNZ: 6000,
		Repeats: 3, DenseN: 16,
		SchedulesPerMatrix: 24,
		Extractor:          costmodel.KindWACONet,
		Channels:           4, ConvDepth: 3, FeatDim: 16, EmbDim: 16,
		Epochs: 30, Pairs: 32, LR: 1e-3,
		TuneSamples: 24, SearchBudget: 300, TopK: 10,
		Seed: 1,
	}
}

// DefaultScale finishes in minutes per experiment — cmd/waco-bench default.
func DefaultScale() Scale {
	return Scale{
		Name:          "default",
		TrainMatrices: 24, TestMatrices: 12,
		MinDim: 128, MaxDim: 768, MaxNNZ: 25000,
		Repeats: 3, DenseN: 32,
		SchedulesPerMatrix: 28,
		Extractor:          costmodel.KindWACONet,
		Channels:           8, ConvDepth: 5, FeatDim: 32, EmbDim: 32,
		Epochs: 25, Pairs: 32, LR: 1e-3,
		TuneSamples: 80, SearchBudget: 1000, TopK: 10,
		Seed: 1,
	}
}

// PaperScale approaches the paper's configuration (hours to days on CPU).
func PaperScale() Scale {
	return Scale{
		Name:          "paper",
		TrainMatrices: 400, TestMatrices: 100,
		MinDim: 256, MaxDim: 65536, MaxNNZ: 2_000_000,
		Repeats: 9, DenseN: 256,
		SchedulesPerMatrix: 100,
		Extractor:          costmodel.KindWACONet,
		Channels:           32, ConvDepth: 14, FeatDim: 128, EmbDim: 128,
		Epochs: 70, Pairs: 32, LR: 1e-4,
		TuneSamples: 400, SearchBudget: 3000, TopK: 10,
		Seed: 1,
	}
}

// ScaleByName resolves quick/default/paper.
func ScaleByName(name string) Scale {
	switch name {
	case "default":
		return DefaultScale()
	case "paper":
		return PaperScale()
	default:
		return QuickScale()
	}
}

// corpusConfig derives the corpus parameters for a seed offset.
func (s Scale) corpusConfig(count int, seedOffset int64) generate.CorpusConfig {
	cfg := generate.DefaultCorpusConfig()
	cfg.Count = count
	cfg.Seed = s.Seed + seedOffset
	cfg.MinDim = s.MinDim
	cfg.MaxDim = s.MaxDim
	cfg.MaxNNZ = s.MaxNNZ
	return cfg
}

// TrainCorpus returns the training matrix population.
func (s Scale) TrainCorpus() []generate.Matrix {
	return generate.Corpus(s.corpusConfig(s.TrainMatrices, 0))
}

// TestCorpus returns a disjoint test population.
func (s Scale) TestCorpus() []generate.Matrix {
	return generate.Corpus(s.corpusConfig(s.TestMatrices, 7_000_003))
}

// denseNFor returns the algorithm's dense inner dimension (the paper uses
// 256 for SpMM/SDDMM and 16 for MTTKRP; scaled proportionally here).
func (s Scale) denseNFor(alg schedule.Algorithm) int {
	switch alg {
	case schedule.SpMV:
		return 0
	case schedule.MTTKRP:
		n := s.DenseN / 2
		if n < 4 {
			n = 4
		}
		return n
	default:
		return s.DenseN
	}
}

// space returns the SuperSchedule search space for the scale.
func (s Scale) space(alg schedule.Algorithm) schedule.Space {
	sp := schedule.DefaultSpace(alg)
	if s.MaxDim <= 256 {
		sp.SplitChoices = []int32{1, 2, 4, 8, 16, 32, 64}
	}
	threads := runtime.NumCPU()
	if threads >= 8 {
		sp.ThreadChoices = []int{1, 2, 4, 8}
	} else if threads >= 4 {
		sp.ThreadChoices = []int{1, 2, 4}
	} else {
		sp.ThreadChoices = []int{1, 2}
	}
	return sp
}

// collectConfig builds the dataset collection settings.
func (s Scale) collectConfig(alg schedule.Algorithm, profile kernel.MachineProfile) dataset.CollectConfig {
	cfg := dataset.DefaultCollectConfig(alg)
	cfg.Space = s.space(alg)
	cfg.SchedulesPerMatrix = s.SchedulesPerMatrix
	if alg == schedule.SpMV {
		// SpMV kernels are microseconds-cheap; a denser sample of its space
		// costs little and the 4-variable template benefits from coverage.
		cfg.SchedulesPerMatrix *= 2
	}
	cfg.Repeats = s.Repeats
	cfg.DenseN = s.denseNFor(alg)
	cfg.Seed = s.Seed
	cfg.Profile = profile
	return cfg
}

// pipelineConfig assembles the full core.Config for the scale.
func (s Scale) pipelineConfig(alg schedule.Algorithm, profile kernel.MachineProfile) core.Config {
	cfg := core.DefaultConfig(alg)
	cfg.Collect = s.collectConfig(alg, profile)
	cfg.Model = costmodel.Config{
		Extractor: s.Extractor,
		ConvCfg: sparseconv.Config{
			Dim:         alg.SparseOrder(),
			Channels:    s.Channels,
			Depth:       s.ConvDepth,
			FirstKernel: firstKernel(alg),
			OutDim:      s.FeatDim,
		},
		EmbDim:   s.EmbDim,
		HeadDims: []int{2 * s.FeatDim, s.FeatDim},
		Seed:     s.Seed,
	}
	cfg.Train = costmodel.TrainConfig{
		Epochs: s.Epochs, PairsPerMatrix: s.Pairs, LR: s.LR, Seed: s.Seed,
		Loss: costmodel.LossRank, MinRatio: 1.1, BatchMatrices: 8,
	}
	cfg.HNSW = hnsw.DefaultConfig()
	cfg.TopK = 0 // adaptive: max(10, indexSize/25)
	cfg.SearchEf = 8 * s.TopK
	return cfg
}

// CorporaFor returns the scale's training corpus for the algorithm
// (converted to 3-D tensors for MTTKRP).
func CorporaFor(alg schedule.Algorithm, s Scale) []generate.Matrix {
	train, _ := s.corpora(alg)
	return train
}

// TestCorporaFor returns the disjoint test corpus for the algorithm.
func TestCorporaFor(alg schedule.Algorithm, s Scale) []generate.Matrix {
	_, test := s.corpora(alg)
	return test
}

// CollectConfigFor exposes the scale's dataset-collection settings.
func CollectConfigFor(alg schedule.Algorithm, s Scale, profile kernel.MachineProfile) dataset.CollectConfig {
	return s.collectConfig(alg, profile)
}

// PipelineConfigFor exposes the scale's full pipeline configuration.
func PipelineConfigFor(alg schedule.Algorithm, s Scale, profile kernel.MachineProfile) core.Config {
	return s.pipelineConfig(alg, profile)
}

func firstKernel(alg schedule.Algorithm) int {
	if alg.SparseOrder() == 3 {
		return 3
	}
	return 5
}
