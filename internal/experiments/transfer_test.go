package experiments

import (
	"bytes"
	"strings"
	"testing"

	"waco/internal/dataset"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

// relabelAnalytic replaces every measured runtime in ds with a deterministic
// analytic proxy: the compiled plan's loop-nest work estimate, divided by the
// schedule's thread count when the simulated machine is parallel. The two
// proxies order schedules differently in exactly the way a serial "new
// machine" does (parallel schedules lose their edge), and — unlike wall-clock
// kernel timings — they are bit-identical on every run, so the acceptance
// ratio below cannot flake on measurement noise.
func relabelAnalytic(t *testing.T, ds *dataset.Dataset, profile kernel.MachineProfile, parallel bool) {
	t.Helper()
	for _, e := range ds.Entries {
		wl, err := kernel.NewWorkload(schedule.SpMM, e.COO, ds.DenseN)
		if err != nil {
			t.Fatal(err)
		}
		for i := range e.Samples {
			ss := e.Samples[i].SS
			plan, err := wl.Compile(ss, profile, 0)
			if err != nil {
				t.Fatal(err)
			}
			secs := plan.EstimateWork() * 1e-9
			if parallel && ss.Threads > 1 {
				secs /= float64(ss.Threads)
			}
			e.Samples[i].Seconds = secs
		}
	}
}

// TestTransferComparison pins the few-shot transfer claim the online
// learning loop rests on: with a budget of 64 target-machine measurements,
// frozen-backbone (head-only) adaptation reaches at least 90% of the full
// fine-tune's holdout rank quality — while keeping the index reusable.
func TestTransferComparison(t *testing.T) {
	s := microScale()
	// The claim needs a base model worth transferring from: still well under
	// two seconds total at this scale.
	s.TrainMatrices = 10
	s.TestMatrices = 8
	s.SchedulesPerMatrix = 12
	s.Epochs = 20
	s.Pairs = 16
	s.Repeats = 1 // timings are replaced with the analytic proxy below

	base, err := collectSpMM(s)
	if err != nil {
		t.Fatal(err)
	}
	relabelAnalytic(t, base, kernel.DefaultProfile(), true)

	target := kernel.MachineProfile{Name: "target-serial", ThreadCap: 1}
	tcfg := s.collectConfig(schedule.SpMM, target)
	tcfg.Seed = s.Seed + 31
	obs, err := dataset.Collect(s.TestCorpus(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	relabelAnalytic(t, obs, target, false)

	tab, points, err := TransferComparisonOn(s, base, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no budget points")
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	if !strings.Contains(buf.String(), "budget") {
		t.Fatalf("table missing budget column:\n%s", buf.String())
	}
	var at64 *TransferPoint
	for i := range points {
		p := &points[i]
		if p.FullRank < -1.001 || p.FullRank > 1.001 || p.TransferRank < -1.001 || p.TransferRank > 1.001 {
			t.Fatalf("rank out of Spearman range: %+v", *p)
		}
		if p.Budget == 64 {
			at64 = p
		}
	}
	if at64 == nil {
		t.Fatalf("no budget-64 point in %+v", points)
	}
	// The acceptance bar: transfer at budget 64 within 90% of full retrain.
	// Labels are the deterministic analytic proxy and the trainer is
	// deterministic, so this ratio is reproducible run to run.
	if at64.TransferRank < 0.9*at64.FullRank {
		t.Fatalf("budget-64 transfer rank %.4f below 0.9 x full %.4f", at64.TransferRank, at64.FullRank)
	}
	t.Logf("budget 64: full %.4f transfer %.4f", at64.FullRank, at64.TransferRank)
}

func TestBudgetEntries(t *testing.T) {
	mk := func(n int) *dataset.Entry {
		e := &dataset.Entry{Name: "e"}
		for i := 0; i < n; i++ {
			e.Samples = append(e.Samples, dataset.Sample{Seconds: float64(i + 1)})
		}
		return e
	}
	pool := []*dataset.Entry{mk(5), mk(1), mk(5), mk(5)}
	got := budgetEntries(pool, 8)
	if len(got) != 2 || len(got[0].Samples) != 5 || len(got[1].Samples) != 3 {
		t.Fatalf("budget 8 gave %d entries", len(got))
	}
	// Single-sample entries are skipped: they yield no ranking pairs.
	if budgetEntries([]*dataset.Entry{mk(1), mk(1)}, 10) != nil {
		t.Fatal("single-sample entries should be dropped")
	}
	// The originals are never truncated in place.
	if len(pool[2].Samples) != 5 {
		t.Fatal("budgetEntries mutated the pool")
	}
	if budgetEntries(pool, 1) != nil {
		t.Fatal("budget below a pair should yield nothing")
	}
}
