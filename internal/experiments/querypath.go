package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"waco/internal/costmodel"
	"waco/internal/generate"
	"waco/internal/hnsw"
	"waco/internal/nn"
	"waco/internal/schedule"
	"waco/internal/search"
	"waco/internal/sparseconv"
)

// QueryPathThroughput measures the serving query path (§5.4): the
// forward-only batched ANNS query against the historical tape-path query it
// replaced. Both run the same model, index, and pattern and — by the parity
// contract pinned in the test suites — retrieve identical candidates with
// bit-identical predicted costs; the table records what the forward path
// buys in throughput and allocation pressure. Weights are untrained (query
// cost is independent of weight values), so this experiment needs no
// measurement or training phase.
func QueryPathThroughput(s Scale) (*Table, error) {
	cfg := costmodel.Config{
		Extractor: s.Extractor,
		ConvCfg: sparseconv.Config{
			Dim:         2,
			Channels:    s.Channels,
			Depth:       s.ConvDepth,
			FirstKernel: firstKernel(schedule.SpMM),
			OutDim:      s.FeatDim,
		},
		EmbDim:   s.EmbDim,
		HeadDims: []int{2 * s.FeatDim, s.FeatDim},
		Seed:     s.Seed,
	}
	sp := s.space(schedule.SpMM)
	m, err := costmodel.New(sp, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 57))
	scheds := make([]*schedule.SuperSchedule, s.SearchBudget)
	for i := range scheds {
		scheds[i] = sp.Sample(rng)
	}
	ix, err := search.BuildIndex(m, scheds, hnsw.DefaultConfig())
	if err != nil {
		return nil, err
	}
	coo := generate.Uniform(rng, s.MaxDim, s.MaxDim, s.MaxNNZ)
	p := costmodel.NewPattern(coo)
	k, ef := s.TopK, 8*s.TopK

	const queries = 24
	run := func(query func() (*search.Result, error)) (time.Duration, float64, int, error) {
		if _, err := query(); err != nil { // warmup: caches, pools, arenas
			return 0, 0, 0, err
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		evals := 0
		t0 := time.Now()
		for i := 0; i < queries; i++ {
			res, err := query()
			if err != nil {
				return 0, 0, 0, err
			}
			evals += res.Evals
		}
		el := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		return el, float64(ms1.Mallocs-ms0.Mallocs) / queries, evals / queries, nil
	}

	forward := func() (*search.Result, error) { return ix.Search(context.Background(), p, k, ef) }
	tape := func() (*search.Result, error) { return tapeQuery(ix, p, k, ef) }

	fwdTime, fwdAllocs, fwdEvals, err := run(forward)
	if err != nil {
		return nil, err
	}
	tapeTime, tapeAllocs, tapeEvals, err := run(tape)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Query-path throughput: forward-only batched search vs tape path",
		Header: []string{"Path", "queries/sec", "evals/query", "allocs/query"},
	}
	qps := func(el time.Duration) float64 { return queries / el.Seconds() }
	t.AddRow("forward (serving)", fmt.Sprintf("%.1f", qps(fwdTime)), fmt.Sprint(fwdEvals), fmt.Sprintf("%.0f", fwdAllocs))
	t.AddRow("tape (historical)", fmt.Sprintf("%.1f", qps(tapeTime)), fmt.Sprint(tapeEvals), fmt.Sprintf("%.0f", tapeAllocs))
	t.AddNote("speedup %.2fx, %.1f%% fewer allocations; results are bit-identical (parity-pinned); index %d schedules, %d nnz pattern",
		qps(fwdTime)/qps(tapeTime), 100*(1-fwdAllocs/tapeAllocs), ix.Graph.Len(), coo.NNZ())
	return t, nil
}

// tapeQuery is the historical query implementation on the autodiff layers
// with a nil tape: map-backed memo, one PredictWith per candidate.
func tapeQuery(ix *search.Index, p *costmodel.Pattern, k, ef int) (*search.Result, error) {
	feat, err := ix.Model.Extractor.Extract(nil, p)
	if err != nil {
		return nil, err
	}
	res := &search.Result{}
	costs := make(map[int]float64, ef)
	dist := func(id int) float64 {
		if c, ok := costs[id]; ok {
			return c
		}
		c := float64(ix.Model.PredictWith(nil, feat, nn.NewGrad(ix.Graph.Vector(id))).V[0])
		costs[id] = c
		return c
	}
	ids, _ := ix.Graph.Search(dist, k, ef)
	res.Evals = len(costs)
	for _, id := range ids {
		res.Candidates = append(res.Candidates, search.Candidate{SS: ix.Schedules[id], Cost: costs[id]})
	}
	return res, nil
}
