package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"waco/internal/core"
	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// SkewedFixture generates the composable-format showcase matrix: most of the
// mass in fully dense 8x8 tiles, a few very heavy rows (well past the 4x-mean
// heavy cutoff), and a uniform scatter tail. No single format serves all
// three populations — BCSR pays padding blowup on the scatter and heavy rows,
// CSR pays per-entry overhead on the dense mass — which is exactly the
// workload the partitioned decomposition targets.
func SkewedFixture(s Scale) *tensor.COO {
	rng := rand.New(rand.NewSource(s.Seed + 90001))
	dim := s.MaxDim
	if dim < 64 {
		dim = 64
	}
	blocks := dim / 5
	if blocks < 4 {
		blocks = 4
	}
	c := generate.BlockDense(rng, dim, dim, 8, blocks, 1.0)
	heavy := dim / 128
	if heavy < 2 {
		heavy = 2
	}
	for r := 0; r < heavy; r++ {
		row := int32((2*r + 1) * dim / (2 * heavy))
		for k := int32(0); k < int32(dim); k += 2 {
			c.Append(float32(k%11)+1, row, k)
		}
	}
	sc := generate.Uniform(rng, dim, dim, 3*dim)
	for p := 0; p < sc.NNZ(); p++ {
		c.Append(sc.Vals[p], sc.Coords[0][p], sc.Coords[1][p])
	}
	c.SortRowMajor()
	c.Dedup()
	return c
}

// PartitionedComparison measures SpMM on the skewed fixture under the fixed
// single formats (CSR, BCSR 8x8), each partitioned decomposition preset, and
// the learned WACO choice from a tuner trained on a skew-biased corpus. The
// composable-format claim is that the partitioned plan beats the best fixed
// single format here, and that the tuner learns to pick it.
func PartitionedComparison(s Scale) (*Table, error) {
	profile := kernel.DefaultProfile()
	coo := SkewedFixture(s)
	wl, err := kernel.NewWorkload(schedule.SpMM, coo, s.denseNFor(schedule.SpMM))
	if err != nil {
		return nil, err
	}
	sp := s.space(schedule.SpMM)
	threads := sp.ThreadChoices[len(sp.ThreadChoices)-1]
	repeats := s.Repeats
	if repeats < 3 {
		repeats = 3
	}

	type candidate struct {
		name string
		ss   *schedule.SuperSchedule
	}
	cands := []candidate{
		{"FixedCSR", schedule.DefaultSchedule(schedule.SpMM, threads)},
		{"BCSR 8x8", schedule.BestEffortSchedule(schedule.SpMM, format.BCSR(8, 8), threads, 32)},
	}
	for _, dec := range schedule.Decompositions[1:] {
		ss := schedule.DefaultSchedule(schedule.SpMM, threads)
		ss.Decomp = dec
		cands = append(cands, candidate{"partitioned " + dec.String(), ss})
	}

	// Learned row: train a tuner on a corpus biased toward the fixture's
	// families (dense blocks, skewed rows, clusters, scatter), then let it
	// pick from the widened space. The tuned schedule is re-measured under
	// the same protocol as the fixed candidates so the rows are comparable.
	ccfg := s.corpusConfig(s.TrainMatrices, 90007)
	ccfg.Include = []string{"blockdense", "powerlaw", "clustered", "uniform"}
	tuner, _, err := core.Build(generate.Corpus(ccfg), s.pipelineConfig(schedule.SpMM, profile))
	if err != nil {
		return nil, fmt.Errorf("experiments: building tuner for partitioned comparison: %w", err)
	}
	tuned, err := tuner.TuneTensor(coo)
	if err != nil {
		return nil, fmt.Errorf("experiments: tuning skewed fixture: %w", err)
	}
	cands = append(cands, candidate{"WACO (learned)", tuned.Schedule})

	t := &Table{
		Title:  "Composable formats: partitioned vs single-format SpMM on the skewed fixture",
		Header: []string{"method", "kernel time", "stored bytes", "vs FixedCSR"},
	}
	times := make([]float64, len(cands))
	var csrSecs float64
	for i, c := range cands {
		d, bytes, err := wl.MeasureSchedule(c.ss, profile, 0, repeats)
		if err != nil {
			return nil, fmt.Errorf("experiments: measuring %s: %w", c.name, err)
		}
		times[i] = d.Seconds()
		if i == 0 {
			csrSecs = times[0]
		}
		t.AddRow(c.name, formatDuration(d), fmt.Sprint(bytes), speedupStr(csrSecs/times[i]))
	}

	bestSingle, bestPart := times[0], times[2]
	if times[1] < bestSingle {
		bestSingle = times[1]
	}
	for _, v := range times[3:5] {
		if v < bestPart {
			bestPart = v
		}
	}
	t.AddNote("fixture: dims=%v nnz=%d (dense 8x8 tiles + %d heavy rows + scatter)",
		coo.Dims, coo.NNZ(), s.MaxDim/128)
	t.AddNote("best partitioned preset %.2fx over best single format", bestSingle/bestPart)
	t.AddNote("learned schedule: %s (%.2fx over best single format)",
		tuned.Schedule, bestSingle/times[len(times)-1])
	return t, nil
}

func formatDuration(d time.Duration) string {
	return fmt.Sprintf("%.4gms", float64(d.Nanoseconds())/1e6)
}
