package experiments

import (
	"fmt"

	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

// TransferPoint is one row of the transfer comparison: rank quality on the
// target machine's held-out measurements after adapting under a measurement
// budget, full fine-tune vs frozen-backbone (head-only) transfer.
type TransferPoint struct {
	Budget       int     // measurements the adaptation was allowed to see
	FullRank     float64 // holdout Spearman after full fine-tune
	TransferRank float64 // holdout Spearman after head-only transfer
}

// TransferComparison reproduces the COGNATE-style few-shot transfer study
// behind `waco-retrain -transfer`: a cost model trained on one machine
// profile adapts to a "new machine" (a serial profile — parallel schedules
// lose their advantage, so the runtime ordering genuinely shifts) from a
// small budget of target-machine measurements. At each budget the full
// fine-tune (every weight moves, index must rebuild) races the transfer
// fine-tune (extractor and embedder frozen, only the predictor head adapts,
// index reused); the metric is Spearman rank quality on held-out
// target-machine measurements. The paper-level claim: a few dozen
// measurements of head-only adaptation recover most of a full retrain.
func TransferComparison(s Scale) (*Table, []TransferPoint, error) {
	// The shipped model's training data: the default (parallel) machine.
	ds, err := collectSpMM(s)
	if err != nil {
		return nil, nil, err
	}
	// The new machine: a serial profile over a disjoint matrix population.
	target := kernel.MachineProfile{Name: "target-serial", ThreadCap: 1}
	tcfg := s.collectConfig(schedule.SpMM, target)
	tcfg.Seed = s.Seed + 31
	obs, err := dataset.Collect(s.TestCorpus(), tcfg)
	if err != nil {
		return nil, nil, err
	}
	return TransferComparisonOn(s, ds, obs)
}

// TransferComparisonOn runs the transfer comparison against caller-provided
// datasets: ds trains the shipped base model, obs holds the target machine's
// observations. The tests label both deterministically (an analytic work
// proxy) so the 90%-of-full-retrain acceptance bar is not smeared by
// kernel-timing noise, while TransferComparison measures for real.
func TransferComparisonOn(s Scale, ds, obs *dataset.Dataset) (*Table, []TransferPoint, error) {
	train, val := ds.Split(0.25, s.Seed)
	base, err := costmodel.New(s.space(schedule.SpMM), costmodel.Config{
		Extractor: s.Extractor,
		ConvCfg:   s.pipelineConfig(schedule.SpMM, kernel.DefaultProfile()).Model.ConvCfg,
		EmbDim:    s.EmbDim,
		HeadDims:  []int{2 * s.FeatDim, s.FeatDim},
		Seed:      s.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := costmodel.Train(base, train, val, costmodel.TrainConfig{
		Epochs: s.Epochs, PairsPerMatrix: s.Pairs, LR: s.LR, Seed: s.Seed, Loss: costmodel.LossRank,
	}); err != nil {
		return nil, nil, err
	}

	adapt, holdout := obs.Split(0.4, s.Seed+1)
	if len(adapt) == 0 || len(holdout) == 0 {
		return nil, nil, fmt.Errorf("experiments: target dataset too small to split (%d adapt, %d holdout)", len(adapt), len(holdout))
	}

	budgets := []int{8, 16, 32, 64}
	points := make([]TransferPoint, 0, len(budgets))
	t := &Table{
		Title:  "Transfer: rank quality on a new machine vs measurement budget (full fine-tune vs frozen-backbone transfer)",
		Header: []string{"budget", "full retrain", "transfer (head-only)", "transfer/full"},
	}
	for _, budget := range budgets {
		entries := budgetEntries(adapt, budget)
		if len(entries) == 0 {
			continue
		}
		pt := TransferPoint{Budget: budget}
		for _, headOnly := range []bool{false, true} {
			c, err := base.Clone()
			if err != nil {
				return nil, nil, err
			}
			lr := s.LR
			if headOnly {
				// With the backbone frozen, only the small head adapts: far
				// fewer trainable parameters tolerate (and need) much larger
				// steps to move in a few-shot budget.
				lr = 8 * s.LR
			}
			if _, err := costmodel.Train(c, entries, nil, costmodel.TrainConfig{
				Epochs: s.Epochs, PairsPerMatrix: s.Pairs, LR: lr, Seed: s.Seed + 2,
				Loss: costmodel.LossRank, HeadOnly: headOnly,
			}); err != nil {
				return nil, nil, err
			}
			rank, err := costmodel.RankQuality(c, holdout)
			if err != nil {
				return nil, nil, err
			}
			if headOnly {
				pt.TransferRank = rank
			} else {
				pt.FullRank = rank
			}
		}
		points = append(points, pt)
		ratio := "—"
		if pt.FullRank > 0.05 {
			ratio = fmt.Sprintf("%.2f", pt.TransferRank/pt.FullRank)
		}
		t.AddRow(fmt.Sprint(budget), f2(pt.FullRank), f2(pt.TransferRank), ratio)
	}
	t.AddNote("Spearman on %d held-out target-machine entries; adaptation pool %d entries (serial target profile)",
		len(holdout), len(adapt))
	t.AddNote("transfer freezes extractor+embedder: the HNSW index stays valid, no rebuild on the new machine")
	return t, points, nil
}

// budgetEntries truncates the adaptation pool to at most budget measurements
// (samples), keeping entries in order and requiring at least two samples per
// kept entry so every entry still yields ranking pairs.
func budgetEntries(pool []*dataset.Entry, budget int) []*dataset.Entry {
	var out []*dataset.Entry
	remaining := budget
	for _, e := range pool {
		if remaining < 2 {
			break
		}
		n := len(e.Samples)
		if n > remaining {
			n = remaining
		}
		if n < 2 {
			continue
		}
		cp := *e
		cp.Samples = append([]dataset.Sample(nil), e.Samples[:n]...)
		out = append(out, &cp)
		remaining -= n
	}
	return out
}
