package experiments

import (
	"testing"

	"waco/internal/kernel"
	"waco/internal/schedule"
)

func TestScalePresetsAreOrdered(t *testing.T) {
	q, d, p := QuickScale(), DefaultScale(), PaperScale()
	if !(q.TrainMatrices < d.TrainMatrices && d.TrainMatrices < p.TrainMatrices) {
		t.Fatal("corpus sizes not increasing across presets")
	}
	if !(q.MaxNNZ < d.MaxNNZ && d.MaxNNZ < p.MaxNNZ) {
		t.Fatal("matrix sizes not increasing across presets")
	}
	if p.Channels != 32 || p.ConvDepth != 14 || p.FeatDim != 128 {
		t.Fatal("paper preset does not match Figure 9 WACONet")
	}
	if p.SchedulesPerMatrix != 100 {
		t.Fatal("paper preset should sample 100 schedules per matrix")
	}
}

func TestCorporaForAdjustsPerAlgorithm(t *testing.T) {
	s := QuickScale()
	s.TrainMatrices = 4

	mm := CorporaFor(schedule.SpMM, s)
	mv := CorporaFor(schedule.SpMV, s)
	tk := CorporaFor(schedule.MTTKRP, s)
	if len(mm) != 4 || len(mv) != 4 || len(tk) != 4 {
		t.Fatalf("corpus sizes %d/%d/%d", len(mm), len(mv), len(tk))
	}
	for _, m := range tk {
		if m.COO.Order() != 3 {
			t.Fatal("MTTKRP corpus not 3-D")
		}
	}
	// SpMV corpora are scaled up.
	var mvNNZ, mmNNZ int
	for i := range mm {
		mmNNZ += mm[i].COO.NNZ()
		mvNNZ += mv[i].COO.NNZ()
	}
	if mvNNZ <= mmNNZ {
		t.Fatalf("SpMV corpus (%d nnz) not larger than SpMM corpus (%d nnz)", mvNNZ, mmNNZ)
	}
	// Train and test corpora are disjoint populations (different seeds).
	test := TestCorporaFor(schedule.SpMM, s)
	if test[0].COO.NNZ() == mm[0].COO.NNZ() && test[0].Name == mm[0].Name {
		t.Fatal("test corpus identical to train corpus")
	}
}

func TestCollectConfigForDoublesSpMV(t *testing.T) {
	s := QuickScale()
	prof := kernel.DefaultProfile()
	mv := CollectConfigFor(schedule.SpMV, s, prof)
	mm := CollectConfigFor(schedule.SpMM, s, prof)
	if mv.SchedulesPerMatrix != 2*mm.SchedulesPerMatrix {
		t.Fatalf("SpMV schedules %d, SpMM %d", mv.SchedulesPerMatrix, mm.SchedulesPerMatrix)
	}
	if mv.DenseN != 0 {
		t.Fatal("SpMV should have no dense inner dimension")
	}
	if mm.DenseN != s.DenseN {
		t.Fatalf("SpMM denseN %d", mm.DenseN)
	}
}

func TestDenseNFor(t *testing.T) {
	s := QuickScale()
	if s.denseNFor(schedule.SpMV) != 0 {
		t.Fatal("SpMV denseN")
	}
	if s.denseNFor(schedule.MTTKRP) >= s.DenseN {
		t.Fatal("MTTKRP denseN should be reduced")
	}
}

func TestPipelineConfigForConsistency(t *testing.T) {
	s := QuickScale()
	for _, alg := range schedule.Algorithms {
		cfg := PipelineConfigFor(alg, s, kernel.DefaultProfile())
		if cfg.Model.ConvCfg.Dim != alg.SparseOrder() {
			t.Fatalf("%v: conv dim %d", alg, cfg.Model.ConvCfg.Dim)
		}
		if cfg.Collect.Space.Alg != alg {
			t.Fatalf("%v: space algorithm mismatch", alg)
		}
		if cfg.TopK != 0 {
			t.Fatalf("%v: TopK should be adaptive (0)", alg)
		}
		if cfg.Train.MinRatio <= 1 {
			t.Fatalf("%v: noise filter disabled", alg)
		}
	}
}
