package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
)

// motivationMatrices builds the three §2 motivating patterns at the scale's
// size: a pli-like clustered matrix, a TSOPF-like dense-block matrix, and a
// sparsine-like scattered matrix.
func motivationMatrices(s Scale) []generate.Matrix {
	dim := s.MaxDim
	if dim > 2048 {
		dim = 2048
	}
	nnz := s.MaxNNZ
	rngA := rand.New(rand.NewSource(s.Seed + 11))
	rngB := rand.New(rand.NewSource(s.Seed + 12))
	rngC := rand.New(rand.NewSource(s.Seed + 13))
	per := 96
	ncl := nnz / per
	if ncl < 1 {
		ncl = 1
	}
	nb := nnz / 256
	if nb < 1 {
		nb = 1
	}
	return []generate.Matrix{
		{Name: "pli-like", Family: "clustered", COO: generate.Clustered(rngA, dim, dim, ncl, per, 4)},
		{Name: "TSOPF-like", Family: "blockdense", COO: generate.BlockDense(rngB, dim, dim, 16, nb, 0.95)},
		{Name: "sparsine-like", Family: "uniform", COO: generate.Uniform(rngC, dim, dim, nnz)},
	}
}

// measureBest returns the fastest measured schedule among the candidates.
func measureBest(wl *kernel.Workload, profile kernel.MachineProfile, repeats int, cands []*schedule.SuperSchedule) (*schedule.SuperSchedule, time.Duration) {
	var best *schedule.SuperSchedule
	var bestTime time.Duration
	for _, ss := range cands {
		d, _, err := wl.MeasureSchedule(ss, profile, 0, repeats)
		if err != nil {
			continue // excluded (storage limit) or invalid
		}
		if best == nil || d < bestTime {
			best, bestTime = ss, d
		}
	}
	return best, bestTime
}

// tuningSpaces generates the three restricted candidate sets of Table 1.
func tuningSpaces(s Scale, sp schedule.Space, rng *rand.Rand) (formatOnly, scheduleOnly, both []*schedule.SuperSchedule) {
	threads := sp.ThreadChoices[len(sp.ThreadChoices)-1]
	defaultChunk := 32
	csr := format.CSR()
	for n := 0; n < s.TuneSamples; n++ {
		full := sp.Sample(rng)
		// Format-only: the sampled format with a traversal concordant with
		// it (paper: "traversing order to be concordant with how the tuned
		// format is aligned"), default parallelism.
		formatOnly = append(formatOnly, schedule.BestEffortSchedule(sp.Alg, full.AFormat, threads, defaultChunk))

		// Schedule-only: the sampled compute schedule pinned to CSR.
		so := full.Clone()
		so.AFormat = csr.Clone()
		if so.Parallel.Inner {
			// With splits of 1 an inner parallel loop has extent 1; use the
			// outer counterpart instead.
			par := schedule.IVar{Mode: so.Parallel.Mode}
			for i, v := range so.ComputeOrder {
				if v == par {
					copy(so.ComputeOrder[1:i+1], so.ComputeOrder[:i])
					so.ComputeOrder[0] = par
					break
				}
			}
			so.Parallel = par
		}
		scheduleOnly = append(scheduleOnly, so)

		// Co-optimization: the full sample.
		both = append(both, full)
	}
	return formatOnly, scheduleOnly, both
}

// Table1CoOptImpact reproduces Table 1: SpMM speedup over the CSR-default
// baseline when tuning the format only, the schedule only, and both.
// It also returns the per-matrix co-optimized schedules for Table 2.
func Table1CoOptImpact(s Scale) (*Table, []generate.Matrix, []*schedule.SuperSchedule, error) {
	profile := kernel.DefaultProfile()
	sp := s.space(schedule.SpMM)
	mats := motivationMatrices(s)
	t := &Table{
		Title:  "Table 1: SpMM speedup over CSR-default after auto-tuning (F=format-only, S=schedule-only, F.+S.=co-optimization)",
		Header: []string{"Matrix", "NNZ", "Base", "F.", "S.", "F.+S."},
	}
	var winners []*schedule.SuperSchedule
	for i, m := range mats {
		wl, err := kernel.NewWorkload(schedule.SpMM, m.COO, s.denseNFor(schedule.SpMM))
		if err != nil {
			return nil, nil, nil, err
		}
		base := schedule.DefaultSchedule(schedule.SpMM, sp.ThreadChoices[len(sp.ThreadChoices)-1])
		baseTime, _, err := wl.MeasureSchedule(base, profile, 0, s.Repeats)
		if err != nil {
			return nil, nil, nil, err
		}
		rng := rand.New(rand.NewSource(s.Seed + int64(i)*101))
		fOnly, sOnly, both := tuningSpaces(s, sp, rng)
		// The baseline configuration participates in every space, and the
		// co-optimization space is a superset of both restricted spaces.
		fOnly = append(fOnly, base)
		sOnly = append(sOnly, base)
		both = append(both, base)
		both = append(both, fOnly...)
		both = append(both, sOnly...)

		repeats := s.Repeats + 4 // motivation tables are noise-sensitive
		_, fTime := measureBest(wl, profile, repeats, fOnly)
		_, sTime := measureBest(wl, profile, repeats, sOnly)
		win, fsTime := measureBest(wl, profile, repeats, both)
		winners = append(winners, win)
		t.AddRow(m.Name, fmt.Sprint(m.COO.NNZ()), "1.00x",
			speedupStr(baseTime.Seconds()/fTime.Seconds()),
			speedupStr(baseTime.Seconds()/sTime.Seconds()),
			speedupStr(baseTime.Seconds()/fsTime.Seconds()))
	}
	t.AddNote("%d sampled configurations per tuning space, %d repeats, scale=%s", s.TuneSamples, s.Repeats, s.Name)
	return t, mats, winners, nil
}

// Tables1And2 runs the motivation study once and derives both tables.
func Tables1And2(s Scale) ([]*Table, error) {
	t1, mats, winners, err := Table1CoOptImpact(s)
	if err != nil {
		return nil, err
	}
	t2, err := table2From(s, mats, winners)
	if err != nil {
		return nil, err
	}
	return []*Table{t1, t2}, nil
}

// table2From reproduces Table 2: applying the format+schedule co-optimized
// for matrix X to matrix Y.
func table2From(s Scale, mats []generate.Matrix, winners []*schedule.SuperSchedule) (*Table, error) {
	profile := kernel.DefaultProfile()
	sp := s.space(schedule.SpMM)
	t := &Table{
		Title:  "Table 2: SpMM speedup over CSR-default applying opt-X to matrix Y",
		Header: []string{"Matrix"},
	}
	for _, m := range mats {
		t.Header = append(t.Header, "opt-"+m.Name)
	}
	for _, m := range mats {
		wl, err := kernel.NewWorkload(schedule.SpMM, m.COO, s.denseNFor(schedule.SpMM))
		if err != nil {
			return nil, err
		}
		base := schedule.DefaultSchedule(schedule.SpMM, sp.ThreadChoices[len(sp.ThreadChoices)-1])
		baseTime, _, err := wl.MeasureSchedule(base, profile, 0, s.Repeats+4)
		if err != nil {
			return nil, err
		}
		row := []string{m.Name}
		for _, win := range winners {
			if win == nil {
				row = append(row, "n/a")
				continue
			}
			d, _, err := wl.MeasureSchedule(win, profile, 0, s.Repeats+4)
			if err != nil {
				row = append(row, "n/a") // e.g. storage blowup on this matrix
				continue
			}
			row = append(row, speedupStr(baseTime.Seconds()/d.Seconds()))
		}
		t.AddRow(row...)
	}
	t.AddNote("diagonal = matched optimization; off-diagonal shows pattern sensitivity (paper §2.2)")
	return t, nil
}

// Table2PatternSensitivity runs the full motivation study and returns only
// Table 2.
func Table2PatternSensitivity(s Scale) (*Table, error) {
	ts, err := Tables1And2(s)
	if err != nil {
		return nil, err
	}
	return ts[1], nil
}

// Fig14BlockSizeHeuristic reproduces Figure 14's experiment on this backend:
// SpMV runtime of a banded matrix stored as UCU (one-dimensional dense
// blocks of size b) versus b. The paper found icc enables SIMD at b >= 16;
// here the table documents where this backend's dense-block economics turn
// profitable.
func Fig14BlockSizeHeuristic(s Scale) (*Table, error) {
	dim := s.MaxDim * 4 // a microbenchmark: use a larger matrix than the corpus
	if dim > 8192 {
		dim = 8192
	}
	if dim < 1024 {
		dim = 1024
	}
	rng := rand.New(rand.NewSource(s.Seed + 21))
	coo := generate.Banded(rng, dim, dim, 8, 0.7)
	wl, err := kernel.NewWorkload(schedule.SpMV, coo, 0)
	if err != nil {
		return nil, err
	}
	profile := kernel.DefaultProfile()
	sp := s.space(schedule.SpMV)
	threads := sp.ThreadChoices[len(sp.ThreadChoices)-1]

	t := &Table{
		Title:  "Figure 14: SpMV runtime vs 1-D dense block size b (format i1:U k1:C i0:U, split i=b)",
		Header: []string{"b", "runtime", "vs b=1"},
	}
	var baseline float64
	for _, b := range []int32{1, 2, 4, 8, 16, 32, 64} {
		f := format.Format{
			Splits: []int32{b, 1},
			Levels: []format.Level{
				{Mode: 0, Kind: format.Uncompressed},
				{Mode: 1, Kind: format.Compressed},
				{Mode: 0, Inner: true, Kind: format.Uncompressed},
				{Mode: 1, Inner: true, Kind: format.Uncompressed},
			},
		}
		ss := schedule.BestEffortSchedule(schedule.SpMV, f, threads, 128)
		d, _, err := wl.MeasureSchedule(ss, profile, 0, s.Repeats+6)
		if err != nil {
			t.AddRow(fmt.Sprint(b), "excluded", "-")
			continue
		}
		if b == 1 {
			baseline = d.Seconds()
		}
		rel := "-"
		if baseline > 0 {
			rel = f2(baseline / d.Seconds())
		}
		t.AddRow(fmt.Sprint(b), d.String(), rel)
	}
	t.AddNote("half-bandwidth-8 banded matrix, %d rows, %d nnz", dim, coo.NNZ())
	return t, nil
}
