package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a renderable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wdt := 0
			if i < len(widths) {
				wdt = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", wdt, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Geomean returns the geometric mean of positive values (1 on empty input).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s float64
	var n int
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return math.Exp(s / float64(n))
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func speedupStr(x float64) string { return fmt.Sprintf("%.2fx", x) }
