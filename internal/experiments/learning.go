package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"waco/internal/core"
	"waco/internal/costmodel"
	"waco/internal/dataset"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/search"
	"waco/internal/sparseconv"
)

// collectSpMM gathers one shared SpMM dataset for the learning experiments.
func collectSpMM(s Scale) (*dataset.Dataset, error) {
	return dataset.Collect(s.TrainCorpus(), s.collectConfig(schedule.SpMM, kernel.DefaultProfile()))
}

// Fig15FeatureExtractors reproduces Figure 15: train/validation loss of the
// SpMM cost model under the four feature extractors (HumanFeature,
// DenseConv, MinkowskiNet-like, WACONet) on a shared dataset.
func Fig15FeatureExtractors(s Scale) (*Table, error) {
	// The extractor comparison is about generalization across patterns, so
	// it uses a larger corpus than the tuning pipelines.
	sBig := s
	sBig.TrainMatrices = 2 * s.TrainMatrices
	ds, err := collectSpMM(sBig)
	if err != nil {
		return nil, err
	}
	train, val := ds.Split(0.25, s.Seed)
	if len(val) == 0 && len(train) > 1 {
		val = train[:1]
		train = train[1:]
	}
	t := &Table{
		Title:  "Figure 15: train/validation ranking loss per feature extractor (SpMM cost model)",
		Header: []string{"Extractor", "epoch0 train", "final train", "epoch0 val", "best val", "final val"},
	}
	for _, kind := range costmodel.ExtractorKinds {
		cfg := costmodel.Config{
			Extractor: kind,
			ConvCfg: sparseconv.Config{
				Dim: 2, Channels: s.Channels, Depth: s.ConvDepth, FirstKernel: 5, OutDim: s.FeatDim,
			},
			EmbDim:   s.EmbDim,
			HeadDims: []int{2 * s.FeatDim, s.FeatDim},
			Seed:     s.Seed,
		}
		m, err := costmodel.New(s.space(schedule.SpMM), cfg)
		if err != nil {
			return nil, err
		}
		res, err := costmodel.Train(m, train, val, costmodel.TrainConfig{
			Epochs: s.Epochs, PairsPerMatrix: s.Pairs, LR: s.LR, Seed: s.Seed, Loss: costmodel.LossRank,
		})
		if err != nil {
			return nil, err
		}
		first := res.Epochs[0]
		last := res.Epochs[len(res.Epochs)-1]
		bestVal := first.ValLoss
		for _, ep := range res.Epochs {
			if ep.ValLoss < bestVal {
				bestVal = ep.ValLoss
			}
		}
		t.AddRow(string(kind), f2(first.TrainLoss), f2(last.TrainLoss), f2(first.ValLoss), f2(bestVal), f2(last.ValLoss))
	}
	t.AddNote("%d train / %d val matrices, %d epochs (paper: WACONet & MinkowskiNet < DenseConv < HumanFeature)", len(train), len(val), s.Epochs)
	return t, nil
}

// Fig16aSearchStrategies reproduces Figure 16-(a): best predicted cost
// versus number of cost evaluations and total search time for ANNS and the
// black-box baselines, on one structured matrix (a bcsstk29 stand-in).
func Fig16aSearchStrategies(s Scale) (*Table, error) {
	profile := kernel.DefaultProfile()
	tuner, _, err := core.Build(s.TrainCorpus(), s.pipelineConfig(schedule.SpMM, profile))
	if err != nil {
		return nil, err
	}
	// bcsstk29 is a blocked structural-stiffness matrix; use the banded
	// block generator as its stand-in.
	rng := rand.New(rand.NewSource(s.Seed + 51))
	dim := s.MaxDim
	coo := generate.Banded(rng, dim, dim, 12, 0.55)
	pattern := costmodel.NewPattern(coo)

	sp := s.space(schedule.SpMM)
	budget := s.SearchBudget
	t := &Table{
		Title:  "Figure 16-(a): search strategies on the SpMM cost model",
		Header: []string{"Strategy", "best@10%", "best@25%", "best@100%", "evals", "total", "eval-time share"},
	}
	at := func(trace []float64, frac float64) string {
		if len(trace) == 0 {
			return "-"
		}
		i := int(frac*float64(len(trace))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(trace) {
			i = len(trace) - 1
		}
		return fmt.Sprintf("%.3f", trace[i])
	}
	strategies := []search.Strategy{
		search.ANNSStrategy{Index: tuner.Index, P: pattern, K: s.TopK},
		search.RandomSearch{},
		search.Annealing{},
		search.TPE{},
	}
	for _, st := range strategies {
		ev, err := search.NewEvaluator(tuner.Model, pattern)
		if err != nil {
			return nil, err
		}
		tr := st.Run(context.Background(), ev, sp, budget, s.Seed+52)
		t.AddRow(tr.Name, at(tr.Best, 0.1), at(tr.Best, 0.25), at(tr.Best, 1.0),
			fmt.Sprint(tr.Evals), tr.Total.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f%%", 100*tr.EvalFraction()))
	}
	t.AddNote("budget %d evaluations; paper: ANNS reaches the lowest cost fastest, eval share 93.9%% vs 3.9%%/8.1%%", budget)
	return t, nil
}

// Fig16bSearchBreakdown reproduces Figure 16-(b): the split of WACO's query
// time between sparsity-feature extraction and ANNS, for matrices of
// increasing nonzero count (feature extraction dominates as nnz grows
// because sparse convolution cost scales with nnz).
func Fig16bSearchBreakdown(s Scale) (*Table, error) {
	profile := kernel.DefaultProfile()
	tuner, _, err := core.Build(s.TrainCorpus(), s.pipelineConfig(schedule.SpMM, profile))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 16-(b): search time breakdown vs matrix size",
		Header: []string{"NNZ", "feature extraction", "ANNS", "feature share"},
	}
	rng := rand.New(rand.NewSource(s.Seed + 53))
	for i := 0; i < 5; i++ {
		nnz := s.MaxNNZ / 8 << i
		dim := s.MaxDim
		coo := generate.Uniform(rng, dim, dim, nnz)
		res, err := tuner.Index.Search(context.Background(), costmodel.NewPattern(coo), s.TopK, 8*s.TopK)
		if err != nil {
			return nil, err
		}
		share := float64(res.FeatureTime) / float64(res.FeatureTime+res.SearchTime)
		t.AddRow(fmt.Sprint(coo.NNZ()),
			res.FeatureTime.Round(time.Microsecond).String(),
			res.SearchTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f%%", 100*share))
	}
	t.AddNote("paper: ANNS dominates below ~1.5M nnz, feature extraction beyond")
	return t, nil
}

// Table7CrossHardware reproduces §5.5: train the SpMM pipeline under two
// machine profiles (stand-ins for the Intel and AMD testbeds) and evaluate
// each tuner on each machine, reporting geomean speedup over that machine's
// FixedCSR.
func Table7CrossHardware(s Scale) (*Table, error) {
	// Two machine profiles standing in for the paper's Intel vs AMD
	// testbeds: machine-A uses all physical CPUs; machine-B caps workers at
	// a different count (on small hosts this oversubscribes, on large hosts
	// it undersubscribes), shifting which load-balancing configurations win.
	big := kernel.DefaultProfile()
	big.Name = "machine-A"
	smallCap := runtime.NumCPU() / 4
	if smallCap < 2 {
		smallCap = 2
	}
	small := kernel.MachineProfile{Name: "machine-B", ThreadCap: smallCap}

	tuners := map[string]*core.Tuner{}
	for _, prof := range []kernel.MachineProfile{big, small} {
		tuner, _, err := core.Build(s.TrainCorpus(), s.pipelineConfig(schedule.SpMM, prof))
		if err != nil {
			return nil, err
		}
		tuners[prof.Name] = tuner
	}
	test := s.TestCorpus()
	t := &Table{
		Title:  "Table 7: SpMM geomean speedup over FixedCSR, cost model trained on one machine profile and tested on another",
		Header: []string{"Tested \\ Trained", "machine-A", "machine-B"},
	}
	cells := map[[2]string][]float64{}
	for _, testProf := range []kernel.MachineProfile{big, small} {
		for _, mat := range test {
			wl, err := kernel.NewWorkload(schedule.SpMM, mat.COO, s.denseNFor(schedule.SpMM))
			if err != nil {
				return nil, err
			}
			fixed, err := (baselinesFixed{}).kernelSeconds(wl, testProf, s.Repeats)
			if err != nil {
				continue
			}
			for trainName, tuner := range tuners {
				tuned, err := tuner.Tune(wl, testProf, baselinesConfig(s))
				if err != nil {
					continue
				}
				key := [2]string{testProf.Name, trainName}
				cells[key] = append(cells[key], fixed/tuned.KernelSeconds)
			}
		}
	}
	for _, testProf := range []string{"machine-A", "machine-B"} {
		row := []string{testProf}
		for _, trainProf := range []string{"machine-A", "machine-B"} {
			row = append(row, speedupStr(Geomean(cells[[2]string{testProf, trainProf}])))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper (Intel/AMD): diagonal 1.26x/1.21x, off-diagonal 1.12x/1.08x — matched training wins but transfer retains most of the benefit")
	return t, nil
}
