package experiments

import (
	"waco/internal/baselines"
	"waco/internal/kernel"
)

// baselinesConfig derives the baseline measurement config from the scale.
func baselinesConfig(s Scale) baselines.Config {
	return baselines.Config{Repeats: s.Repeats}
}

// baselinesFixed is a tiny adapter for measuring the FixedCSR reference time.
type baselinesFixed struct{}

func (baselinesFixed) kernelSeconds(wl *kernel.Workload, profile kernel.MachineProfile, repeats int) (float64, error) {
	tuned, err := (baselines.FixedCSR{}).Tune(wl, profile, baselines.Config{Repeats: repeats})
	if err != nil {
		return 0, err
	}
	return tuned.KernelSeconds, nil
}
