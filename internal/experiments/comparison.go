package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"waco/internal/baselines"
	"waco/internal/core"
	"waco/internal/format"
	"waco/internal/generate"
	"waco/internal/kernel"
	"waco/internal/schedule"
	"waco/internal/tensor"
)

// MethodResult is one method's tuned outcome on one matrix.
type MethodResult struct {
	KernelSeconds  float64
	TuningSeconds  float64
	ConvertSeconds float64
	Schedule       *schedule.SuperSchedule
	Info           string
}

// ComparisonResult holds the full WACO-vs-baselines measurement for one
// algorithm over the test corpus (the data behind Figure 13 and Tables 4-6).
type ComparisonResult struct {
	Alg      schedule.Algorithm
	Methods  []string
	Matrices []generate.Matrix
	// Results[i][method] is the outcome on matrix i; a method may be absent
	// when it does not support the algorithm or failed on the matrix.
	Results []map[string]MethodResult
}

// Speedups returns WACO's per-matrix speedup over the named baseline,
// ascending, for matrices where both ran.
func (c *ComparisonResult) Speedups(baseline string) []float64 {
	var out []float64
	for _, r := range c.Results {
		w, okW := r["WACO"]
		b, okB := r[baseline]
		if okW && okB && w.KernelSeconds > 0 {
			out = append(out, b.KernelSeconds/w.KernelSeconds)
		}
	}
	sort.Float64s(out)
	return out
}

// to3D converts a 2-D corpus into 3-D tensors for MTTKRP.
func to3D(mats []generate.Matrix, seed int64, depth int) []generate.Matrix {
	rng := rand.New(rand.NewSource(seed))
	out := make([]generate.Matrix, 0, len(mats))
	for _, m := range mats {
		if m.COO.Order() != 2 {
			continue
		}
		out = append(out, generate.Matrix{
			Name:   m.Name + "-3d",
			Family: m.Family,
			COO:    generate.Tensor3D(rng, m.COO, depth, 2),
		})
	}
	return out
}

// corpora returns train/test corpora with per-algorithm size adjustments:
// SpMV touches each nonzero once (no dense inner dimension), so its matrices
// are scaled up to keep kernel times well above timer resolution; MTTKRP
// gets 3-D conversion.
func (s Scale) corpora(alg schedule.Algorithm) (train, test []generate.Matrix) {
	if alg == schedule.SpMV {
		sv := s
		sv.MinDim *= 2
		sv.MaxDim *= 2
		sv.MaxNNZ *= 8
		s = sv
	}
	train, test = s.TrainCorpus(), s.TestCorpus()
	if alg.SparseOrder() == 3 {
		depth := s.MaxDim / 16
		if depth < 8 {
			depth = 8
		}
		if depth > 64 {
			depth = 64
		}
		train = to3D(train, s.Seed+31, depth)
		test = to3D(test, s.Seed+32, depth)
	}
	return train, test
}

// RunComparison trains WACO and all applicable baselines for the algorithm
// and measures every method on every test matrix.
func RunComparison(alg schedule.Algorithm, s Scale) (*ComparisonResult, error) {
	profile := kernel.DefaultProfile()
	train, test := s.corpora(alg)

	tuner, _, err := core.Build(train, s.pipelineConfig(alg, profile))
	if err != nil {
		return nil, fmt.Errorf("experiments: building WACO for %v: %w", alg, err)
	}

	bf := baselines.NewBestFormat(alg, s.Seed+41)
	bfTrain := train
	if len(bfTrain) > 12 {
		bfTrain = bfTrain[:12] // classifier labeling measures 5 formats per matrix
	}
	if err := bf.Train(bfTrain, baselines.TrainConfig{
		DenseN:  s.denseNFor(alg),
		Repeats: 1,
		Epochs:  20,
		LR:      1e-2,
		Seed:    s.Seed + 42,
		Profile: profile,
	}); err != nil {
		return nil, fmt.Errorf("experiments: training BestFormat: %w", err)
	}

	methods := []baselines.Method{baselines.FixedCSR{}, baselines.NewMKLLike(), bf, baselines.NewASpT(), tuner}
	res := &ComparisonResult{Alg: alg}
	for _, m := range methods {
		if m.Supports(alg) {
			res.Methods = append(res.Methods, m.Name())
		}
	}

	cfg := baselines.Config{Repeats: s.Repeats}
	if alg == schedule.SpMV && cfg.Repeats < 5 {
		cfg.Repeats = 5 // microsecond kernels need more repeats for a stable median
	}
	for _, mat := range test {
		wl, err := kernel.NewWorkload(alg, mat.COO, s.denseNFor(alg))
		if err != nil {
			return nil, err
		}
		row := map[string]MethodResult{}
		for _, m := range methods {
			if !m.Supports(alg) {
				continue
			}
			tuned, err := m.Tune(wl, profile, cfg)
			if err != nil {
				continue // method failed on this matrix; leave absent
			}
			row[m.Name()] = MethodResult{
				KernelSeconds:  tuned.KernelSeconds,
				TuningSeconds:  tuned.TuningSeconds,
				ConvertSeconds: tuned.ConvertSeconds,
				Schedule:       tuned.Schedule,
				Info:           tuned.Info,
			}
		}
		res.Matrices = append(res.Matrices, mat)
		res.Results = append(res.Results, row)
	}
	return res, nil
}

// Fig13SpMMCurves reproduces Figure 13: WACO's per-matrix speedup over each
// baseline on SpMM, sorted ascending, with the geomean.
func Fig13SpMMCurves(s Scale) ([]*Table, *ComparisonResult, error) {
	cmp, err := RunComparison(schedule.SpMM, s)
	if err != nil {
		return nil, nil, err
	}
	var tables []*Table
	for _, baseline := range cmp.Methods {
		if baseline == "WACO" {
			continue
		}
		sp := cmp.Speedups(baseline)
		t := &Table{
			Title:  fmt.Sprintf("Figure 13: WACO speedup over %s on SpMM (sorted)", baseline),
			Header: []string{"rank", "speedup"},
		}
		for i, v := range sp {
			t.AddRow(fmt.Sprint(i+1), speedupStr(v))
		}
		wins := 0
		for _, v := range sp {
			if v > 1 {
				wins++
			}
		}
		t.AddNote("geomean %.2fx; WACO faster on %d/%d matrices", Geomean(sp), wins, len(sp))
		tables = append(tables, t)
	}
	return tables, cmp, nil
}

// Tables4And5 reproduces the headline speedup tables: geomean WACO speedup
// versus the auto-tuning baselines (Table 4) and the fixed implementations
// (Table 5), across all four algorithms.
func Tables4And5(s Scale) ([]*Table, map[schedule.Algorithm]*ComparisonResult, error) {
	results := map[schedule.Algorithm]*ComparisonResult{}
	for _, alg := range schedule.Algorithms {
		cmp, err := RunComparison(alg, s)
		if err != nil {
			return nil, nil, err
		}
		results[alg] = cmp
	}
	t4 := &Table{
		Title:  "Table 4: Geomean WACO speedup vs auto-tuning baselines",
		Header: []string{"Algorithm", "vs Format-only (BestFormat)", "vs Schedule-only (MKL)"},
	}
	t5 := &Table{
		Title:  "Table 5: Geomean WACO speedup vs fixed implementations",
		Header: []string{"Algorithm", "vs FixedCSR", "vs ASpT"},
	}
	cell := func(cmp *ComparisonResult, baseline string) string {
		for _, m := range cmp.Methods {
			if m == baseline {
				sp := cmp.Speedups(baseline)
				if len(sp) == 0 {
					return "n/a"
				}
				return speedupStr(Geomean(sp))
			}
		}
		return "Not Impl."
	}
	for _, alg := range schedule.Algorithms {
		cmp := results[alg]
		t4.AddRow(alg.String(), cell(cmp, "BestFormat"), cell(cmp, "MKL"))
		t5.AddRow(alg.String(), cell(cmp, "FixedCSR"), cell(cmp, "ASpT"))
	}
	t4.AddNote("paper: SpMV 1.43x/2.32x, SpMM 1.18x/1.68x, MTTKRP 1.27x/-")
	t5.AddNote("paper: SpMV 1.54x/-, SpMM 1.26x/1.36x, SDDMM 1.29x/1.14x, MTTKRP 1.35x/-")
	return []*Table{t4, t5}, results, nil
}

// speedupFactor classifies why a WACO schedule beats FixedCSR (Table 6).
func speedupFactor(alg schedule.Algorithm, ss *schedule.SuperSchedule, coo *tensor.COO) string {
	if alg == schedule.SDDMM && ss.Parallel.Mode == 1 {
		return "Parallelize over Column"
	}
	hasInnerC, hasInnerU := false, false
	for _, l := range ss.AFormat.Levels {
		if l.Inner && ss.AFormat.Splits[l.Mode] > 1 {
			if l.Kind == format.Compressed {
				hasInnerC = true
			} else {
				hasInnerU = true
			}
		}
	}
	if hasInnerC && !hasInnerU {
		return "Sparse Block"
	}
	if hasInnerU {
		// Dense-block fill: stored entries vs actual nonzeros.
		st, err := format.Assemble(coo.Clone(), ss.AFormat, format.AssembleOptions{})
		if err == nil && st.NNZStored() > 0 {
			if float64(coo.NNZ())/float64(st.NNZStored()) >= 0.5 {
				return "Dense Block >50% Filled"
			}
			return "Dense Block <50% Filled"
		}
		return "Dense Block >50% Filled"
	}
	def := schedule.DefaultSchedule(alg, ss.Threads)
	if ss.Chunk != def.Chunk || ss.Threads != def.Threads {
		return "OpenMP Chunk Size"
	}
	return "Loop Reordering"
}

// Table6SpeedupFactors classifies the source of WACO's speedup for matrices
// beating FixedCSR by more than 1.5x, per algorithm (the paper covers SpMV,
// SpMM, SDDMM).
func Table6SpeedupFactors(results map[schedule.Algorithm]*ComparisonResult) *Table {
	factors := []string{
		"OpenMP Chunk Size",
		"Dense Block >50% Filled",
		"Dense Block <50% Filled",
		"Sparse Block",
		"Parallelize over Column",
		"Loop Reordering",
	}
	algs := []schedule.Algorithm{schedule.SpMV, schedule.SpMM, schedule.SDDMM}
	counts := map[schedule.Algorithm]map[string]int{}
	totals := map[schedule.Algorithm]int{}
	for _, alg := range algs {
		cmp := results[alg]
		if cmp == nil {
			continue
		}
		counts[alg] = map[string]int{}
		for i, r := range cmp.Results {
			w, okW := r["WACO"]
			b, okB := r["FixedCSR"]
			if !okW || !okB || w.KernelSeconds <= 0 {
				continue
			}
			if b.KernelSeconds/w.KernelSeconds <= 1.5 {
				continue
			}
			f := speedupFactor(alg, w.Schedule, cmp.Matrices[i].COO)
			counts[alg][f]++
			totals[alg]++
		}
	}
	t := &Table{
		Title:  "Table 6: Speedup-factor classification among matrices >1.5x over FixedCSR",
		Header: []string{"Factor", "SpMV", "SpMM", "SDDMM"},
	}
	for _, f := range factors {
		row := []string{f}
		for _, alg := range algs {
			if totals[alg] == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%d%%", 100*counts[alg][f]/totals[alg]))
		}
		t.AddRow(row...)
	}
	for _, alg := range algs {
		t.AddNote("%v: %d matrices above the 1.5x threshold", alg, totals[alg])
	}
	return t
}
