// Package metrics is WACO's stdlib-only observability layer: a Registry of
// named counters, gauges, and fixed-bucket histograms rendered in the
// Prometheus text exposition format. Instruments are lock-free on the
// observation path (sync/atomic only), so they are safe inside the serving
// hot path — the tune/predict handlers, the HNSW traversal's predictor-head
// evaluations, and the kernel measurement loop all record into them.
//
// Registration is a startup-time activity: instruments are created once, in
// package init or a New* constructor, and then only observed. The waco-vet
// metricreg check enforces that convention, because per-request registration
// would both allocate on the hot path and silently fork time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are constant key=value pairs attached to an instrument at
// registration time. Prometheus treats each distinct label set as its own
// time series within the metric family.
type Labels map[string]string

// Registry holds the registered instruments and renders them. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	series map[string]*series
}

type series struct {
	labels string // canonical rendered label block, "" or `{k="v",...}`
	value  func() float64
	hist   *Histogram
	metric any // returned instrument, for idempotent re-registration
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter is a monotonically nondecreasing value. All methods are atomic.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters only go
// up).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down. All methods are atomic.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by v (negative to decrease).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc and Dec shift by ±1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec shifts by -1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// NewCounter registers (or returns the previously registered) counter.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	got := r.register(name, help, "counter", labels, c.Value, nil, c)
	return got.(*Counter)
}

// NewGauge registers (or returns the previously registered) gauge.
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	got := r.register(name, help, "gauge", labels, g.Value, nil, g)
	return got.(*Gauge)
}

// NewCounterFunc registers a counter whose value is read from fn at render
// time — the bridge for components that already keep their own atomic
// counters (the serve.Cache hit/miss totals, the server's request atomics),
// so /metrics and /v1/stats can never disagree about a shared total.
func (r *Registry) NewCounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "counter", labels, fn, nil, fn)
}

// NewGaugeFunc registers a gauge read from fn at render time.
func (r *Registry) NewGaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, fn, nil, fn)
}

// NewHistogram registers (or returns the previously registered) histogram
// with the given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64, labels Labels) *Histogram {
	h := newHistogram(buckets)
	got := r.register(name, help, "histogram", labels, nil, h, h)
	return got.(*Histogram)
}

// register adds one series, enforcing name/type/label discipline. Exact
// re-registration of the same series returns the existing instrument (so a
// constructor can be called twice against the same registry in tests);
// conflicting re-registration panics — a startup programming error that must
// not be papered over.
//
//waco:nolint paniccall -- misregistration (duplicate or malformed metric names) is a programmer error surfaced at startup, never reachable from request input
func (r *Registry) register(name, help, typ string, labels Labels, value func() float64, hist *Histogram, metric any) any {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for k := range labels {
		if !validName(k) || k == "le" {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", k, name))
		}
	}
	key := renderLabels(labels, "", "")
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("metrics: %s re-registered as %s, was %s", name, typ, fam.typ))
	}
	if s, ok := fam.series[key]; ok {
		if fmt.Sprintf("%T", s.metric) != fmt.Sprintf("%T", metric) {
			panic(fmt.Sprintf("metrics: duplicate series %s%s with different instrument type", name, key))
		}
		return s.metric
	}
	fam.series[key] = &series{labels: key, value: value, hist: hist, metric: metric}
	return metric
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels builds the canonical `{k="v",...}` block with keys sorted,
// optionally appending one extra pair (used for histogram le buckets).
func renderLabels(labels Labels, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[k]))
		sb.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraKey)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraVal))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(c)
		}
	}
	return sb.String()
}
