package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this is the lock-freedom audit, and the exact
// totals prove no increment is lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("waco_test_ops_total", "ops", nil)
	g := r.NewGauge("waco_test_depth", "depth", nil)
	h := r.NewHistogram("waco_test_seconds", "latency", []float64{0.25, 0.5, 0.75}, nil)

	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j%4) / 4) // 0, 0.25, 0.5, 0.75
			}
		}(i)
	}
	wg.Wait()

	const total = goroutines * perG
	if got := c.Value(); got != total {
		t.Fatalf("counter = %v, want %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != total {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	wantSum := float64(total) / 4 * (0 + 0.25 + 0.5 + 0.75)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Fatalf("histogram sum = %v, want %v", got, wantSum)
	}
	// le semantics (v <= upper) put both 0 and 0.25 in the first bucket;
	// 0.5 and 0.75 get one each; the +Inf overflow bucket stays empty.
	cum := h.snapshot()
	for i, want := range []uint64{total / 2, 3 * total / 4, total, total} {
		if cum[i] != want {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, cum[i], want)
		}
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	c.Add(math.NaN())
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %v, want 5 (negative and NaN adds ignored)", got)
	}
}

func TestReregistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("waco_test_total", "h", Labels{"endpoint": "tune"})
	b := r.NewCounter("waco_test_total", "h", Labels{"endpoint": "tune"})
	if a != b {
		t.Fatal("exact re-registration returned a different instrument")
	}
	other := r.NewCounter("waco_test_total", "h", Labels{"endpoint": "predict"})
	if other == a {
		t.Fatal("different label set shares an instrument")
	}
	a.Inc()
	if v, ok := r.Value("waco_test_total", Labels{"endpoint": "tune"}); !ok || v != 1 {
		t.Fatalf("Value = %v/%v, want 1/true", v, ok)
	}
	if v, ok := r.Value("waco_test_total", Labels{"endpoint": "predict"}); !ok || v != 0 {
		t.Fatalf("Value(predict) = %v/%v, want 0/true", v, ok)
	}
	if _, ok := r.Value("waco_absent_total", nil); ok {
		t.Fatal("Value found an unregistered series")
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	for name, reg := range map[string]func(r *Registry){
		"type change": func(r *Registry) {
			r.NewCounter("waco_x_total", "h", nil)
			r.NewGauge("waco_x_total", "h", nil)
		},
		"invalid name": func(r *Registry) { r.NewCounter("waco bad", "h", nil) },
		"reserved le":  func(r *Registry) { r.NewHistogram("waco_h", "h", DefBuckets(), Labels{"le": "x"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			reg(NewRegistry())
		}()
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 2, 1}) // unsorted + duplicate input
	if len(h.upper) != 2 {
		t.Fatalf("buckets = %v, want deduped [1 2]", h.upper)
	}
	h.Observe(1) // on the boundary: le="1" includes it
	h.Observe(1.5)
	h.Observe(99) // overflow bucket
	cum := h.snapshot()
	if cum[0] != 1 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("cumulative = %v, want [1 2 3]", cum)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
