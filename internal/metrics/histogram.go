package metrics

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets (cumulative `le` upper
// bounds in the rendered form) and tracks their sum. Observe is lock-free:
// one binary search plus three atomic adds, cheap enough for per-eval
// recording inside the HNSW traversal.
//
// A scrape that races Observe may see a bucket increment before the matching
// sum/count update (or vice versa); Prometheus histograms are by convention
// eventually consistent across a scrape, never torn within one atomic.
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; +Inf is counts[len(upper)]
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	// Drop duplicates: two identical le bounds render an invalid exposition.
	dedup := upper[:0]
	for i, b := range upper {
		if i == 0 || b != upper[i-1] {
			dedup = append(dedup, b)
		}
	}
	upper = dedup
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with upper (+Inf last).
func (h *Histogram) snapshot() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// DefBuckets are general latency buckets in seconds (Prometheus' defaults):
// 5ms to 10s, suited to tune/predict request latencies.
func DefBuckets() []float64 {
	return []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
}

// MicroBuckets are fine-grained sub-second buckets (1µs to ~1s) for hot-path
// stages: predictor-head evaluation time, feature extraction, queue waits,
// and single kernel measurements.
func MicroBuckets() []float64 {
	return []float64{1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 1}
}

// ExpBuckets returns count buckets starting at start and growing by factor —
// e.g. ExpBuckets(1, 2, 12) covers 1..2048 for evals-per-query counts.
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
