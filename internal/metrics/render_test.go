package metrics

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition: family ordering by
// name, series ordering by label block, cumulative le buckets, escaping.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("waco_requests_total", "Requests by endpoint.", Labels{"endpoint": "tune"})
	c.Add(3)
	r.NewCounter("waco_requests_total", "Requests by endpoint.", Labels{"endpoint": "predict"}).Inc()
	g := r.NewGauge("waco_in_flight", "In-flight requests.", nil)
	g.Set(2)
	h := r.NewHistogram("waco_request_seconds", "Latency.", []float64{0.1, 1}, Labels{"endpoint": "tune"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.NewGaugeFunc("waco_uptime_seconds", `Uptime "so far"`+"\nsecond line.", nil, func() float64 { return 12.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP waco_in_flight In-flight requests.
# TYPE waco_in_flight gauge
waco_in_flight 2
# HELP waco_request_seconds Latency.
# TYPE waco_request_seconds histogram
waco_request_seconds_bucket{endpoint="tune",le="0.1"} 1
waco_request_seconds_bucket{endpoint="tune",le="1"} 2
waco_request_seconds_bucket{endpoint="tune",le="+Inf"} 3
waco_request_seconds_sum{endpoint="tune"} 5.55
waco_request_seconds_count{endpoint="tune"} 3
# HELP waco_requests_total Requests by endpoint.
# TYPE waco_requests_total counter
waco_requests_total{endpoint="predict"} 1
waco_requests_total{endpoint="tune"} 3
# HELP waco_uptime_seconds Uptime "so far"\nsecond line.
# TYPE waco_uptime_seconds gauge
waco_uptime_seconds 12.5
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("waco_ok_total", "ok", nil).Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "waco_ok_total 1") {
		t.Fatalf("body missing sample:\n%s", body)
	}

	post, err := http.Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", post.StatusCode)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("waco_esc_total", "h", Labels{"path": "a\\b\"c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `waco_esc_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped sample %q not found in:\n%s", want, sb.String())
	}
}
