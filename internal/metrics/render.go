package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, series within
// a family sorted by label block, histograms as cumulative le buckets plus
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		r.mu.Lock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			if s.hist != nil {
				writeHistogram(&sb, f.name, s)
				continue
			}
			fmt.Fprintf(&sb, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func writeHistogram(sb *strings.Builder, name string, s *series) {
	h := s.hist
	cum := h.snapshot()
	for i, upper := range h.upper {
		fmt.Fprintf(sb, "%s_bucket%s %d\n", name, withLE(s.labels, formatValue(upper)), cum[i])
	}
	fmt.Fprintf(sb, "%s_bucket%s %d\n", name, withLE(s.labels, "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(sb, "%s_sum%s %s\n", name, s.labels, formatValue(h.Sum()))
	fmt.Fprintf(sb, "%s_count%s %d\n", name, s.labels, h.Count())
}

// withLE splices the le label into an already rendered label block.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves GET /metrics for the registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// The status line is already written; nothing to send the client.
			return
		}
	})
}

// Value returns the current value of a counter or gauge series, or false if
// the series does not exist or is a histogram. Intended for tests and
// in-process assertions, not the scrape path.
func (r *Registry) Value(name string, labels Labels) (float64, bool) {
	key := renderLabels(labels, "", "")
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		return 0, false
	}
	s, ok := fam.series[key]
	if !ok || s.value == nil {
		return 0, false
	}
	return s.value(), true
}
