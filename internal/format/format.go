// Package format implements the TACO-style sparse tensor format abstraction
// from Chou et al. (OOPSLA 2018) that WACO searches over: a tensor is viewed
// as a coordinate hierarchy in which each original mode is split once into an
// (outer, inner) pair of levels, the levels are stored in an arbitrary order,
// and each level is stored in either the Uncompressed (U) or Compressed (C)
// level format.
//
// A split size of 1 collapses the inner level (extent 1), so the same
// template expresses CSR (i:U, k:C with splits 1), CSC (k:U, i:C), BCSR
// (i1:U, k1:C, i0:U, k0:U with block splits), sparse-block formats such as
// k1:U, i:U, k0:C, and their higher-order analogs like CSF for 3-D tensors —
// the representation space of Figure 3 in the WACO paper.
package format

import (
	"fmt"
	"strings"
)

// LevelKind is the storage discipline of one hierarchy level.
type LevelKind uint8

const (
	// Uncompressed stores a dense coordinate interval [0, N): positions are
	// computed arithmetically and absent coordinates occupy real storage in
	// descendant levels.
	Uncompressed LevelKind = iota
	// Compressed stores only coordinates that contain nonzeros, as a
	// (pos, crd) segment array.
	Compressed
)

// String returns "U" or "C", the paper's abbreviations.
func (k LevelKind) String() string {
	if k == Compressed {
		return "C"
	}
	return "U"
}

// Level identifies one level of the coordinate hierarchy: a (mode, part)
// pair plus its storage kind. Inner selects the low-order part of the split
// (x % split) rather than the high-order part (x / split).
type Level struct {
	Mode  int
	Inner bool
	Kind  LevelKind
}

// Format describes a complete storage format for a tensor of a given order:
// the per-mode split sizes and the ordered, formatted hierarchy levels.
type Format struct {
	// Splits[m] is the inner extent of mode m's split; 1 means unsplit.
	Splits []int32
	// Levels is a permutation of the 2*order (mode, part) pairs with their
	// storage kinds. Levels[0] is the root of the hierarchy.
	Levels []Level
}

// Order returns the tensor order this format applies to.
func (f Format) Order() int { return len(f.Splits) }

// Validate checks that Levels is a permutation of all (mode, part) pairs and
// splits are positive.
func (f Format) Validate() error {
	n := f.Order()
	if len(f.Levels) != 2*n {
		return fmt.Errorf("format: %d levels for order-%d tensor, want %d", len(f.Levels), n, 2*n)
	}
	for m, s := range f.Splits {
		if s < 1 {
			return fmt.Errorf("format: mode %d split %d < 1", m, s)
		}
	}
	seen := make(map[Level]bool, 2*n)
	for _, l := range f.Levels {
		if l.Mode < 0 || l.Mode >= n {
			return fmt.Errorf("format: level mode %d out of range", l.Mode)
		}
		key := Level{Mode: l.Mode, Inner: l.Inner}
		if seen[key] {
			return fmt.Errorf("format: duplicate level (mode %d, inner %v)", l.Mode, l.Inner)
		}
		seen[key] = true
	}
	return nil
}

// LevelExtent returns the coordinate extent of hierarchy level l for a tensor
// with the given mode dims: split size for inner levels, ceil(dim/split) for
// outer levels.
func (f Format) LevelExtent(l int, dims []int) int32 {
	lv := f.Levels[l]
	s := f.Splits[lv.Mode]
	if lv.Inner {
		return s
	}
	return int32((int64(dims[lv.Mode]) + int64(s) - 1) / int64(s))
}

// String renders the format compactly, e.g. "i1:U k1:C i0:U k0:U /split i=8 k=8"
// using mode names m0, m1, ... unless names are supplied via StringNamed.
func (f Format) String() string { return f.StringNamed(nil) }

// StringNamed renders the format with the given mode names (e.g. ["i","k"]).
func (f Format) StringNamed(names []string) string {
	name := func(m int) string {
		if m < len(names) {
			return names[m]
		}
		return fmt.Sprintf("m%d", m)
	}
	var b strings.Builder
	for i, l := range f.Levels {
		if i > 0 {
			b.WriteByte(' ')
		}
		part := "1"
		if l.Inner {
			part = "0"
		}
		fmt.Fprintf(&b, "%s%s:%s", name(l.Mode), part, l.Kind)
	}
	b.WriteString(" /split")
	for m, s := range f.Splits {
		fmt.Fprintf(&b, " %s=%d", name(m), s)
	}
	return b.String()
}

// Equal reports structural equality.
func (f Format) Equal(o Format) bool {
	if len(f.Splits) != len(o.Splits) || len(f.Levels) != len(o.Levels) {
		return false
	}
	for i := range f.Splits {
		if f.Splits[i] != o.Splits[i] {
			return false
		}
	}
	for i := range f.Levels {
		if f.Levels[i] != o.Levels[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (f Format) Clone() Format {
	return Format{
		Splits: append([]int32(nil), f.Splits...),
		Levels: append([]Level(nil), f.Levels...),
	}
}

// outerInner builds the canonical (outer levels first, mode order) level list.
func outerInner(kinds []LevelKind) []Level {
	n := len(kinds) / 2
	out := make([]Level, 0, 2*n)
	for m := 0; m < n; m++ {
		out = append(out, Level{Mode: m, Kind: kinds[m]})
	}
	for m := 0; m < n; m++ {
		out = append(out, Level{Mode: m, Inner: true, Kind: kinds[n+m]})
	}
	return out
}

// CSR returns the canonical UC row-major matrix format (splits 1).
func CSR() Format {
	return Format{
		Splits: []int32{1, 1},
		Levels: []Level{
			{Mode: 0, Kind: Uncompressed},
			{Mode: 1, Kind: Compressed},
			{Mode: 0, Inner: true, Kind: Uncompressed},
			{Mode: 1, Inner: true, Kind: Uncompressed},
		},
	}
}

// CSC returns the UC column-major matrix format.
func CSC() Format {
	return Format{
		Splits: []int32{1, 1},
		Levels: []Level{
			{Mode: 1, Kind: Uncompressed},
			{Mode: 0, Kind: Compressed},
			{Mode: 1, Inner: true, Kind: Uncompressed},
			{Mode: 0, Inner: true, Kind: Uncompressed},
		},
	}
}

// BCSR returns the UCUU blocked row-major format with br x bc dense blocks
// (Figure 3-(b) in the paper).
func BCSR(br, bc int32) Format {
	return Format{
		Splits: []int32{br, bc},
		Levels: []Level{
			{Mode: 0, Kind: Uncompressed},
			{Mode: 1, Kind: Compressed},
			{Mode: 0, Inner: true, Kind: Uncompressed},
			{Mode: 1, Inner: true, Kind: Uncompressed},
		},
	}
}

// COOLike returns the all-compressed row-major format (splits 1): one
// coordinate path per nonzero, analogous to sorted COO / DCSR.
func COOLike(order int) Format {
	kinds := make([]LevelKind, 2*order)
	for m := 0; m < order; m++ {
		kinds[m] = Compressed
		kinds[order+m] = Uncompressed
	}
	f := Format{Splits: make([]int32, order), Levels: outerInner(kinds)}
	for m := range f.Splits {
		f.Splits[m] = 1
	}
	return f
}

// CSF returns the compressed sparse fiber format for an order-n tensor:
// every outer level Compressed, splits 1 (the paper's CCC / "Fixed CSR"
// baseline format for MTTKRP).
func CSF(order int) Format {
	f := COOLike(order)
	// CSF and sorted-COO share the same level skeleton under this
	// abstraction; the root level of CSF is conventionally Uncompressed in
	// TACO's CSF-with-dense-root variant, but the paper's CCC uses all
	// compressed levels, which COOLike already provides.
	return f
}

// Dense returns the all-Uncompressed row-major format (splits 1).
func Dense(order int) Format {
	kinds := make([]LevelKind, 2*order)
	f := Format{Splits: make([]int32, order), Levels: outerInner(kinds)}
	for m := range f.Splits {
		f.Splits[m] = 1
	}
	return f
}
